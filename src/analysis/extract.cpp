#include <array>
#include <map>
#include <optional>
#include <set>

#include "analysis/analyze.h"
#include "analysis/poly.h"
#include "support/env.h"
#include "support/error.h"

namespace polypart::analysis {

bool defaultAllowMayAccess() {
  return !env::flag("POLYPART_STRICT_AFFINE", false);
}

namespace {

using ir::Expr;
using ir::ExprPtr;
using ir::Stmt;
using ir::StmtPtr;
using pset::BasicSet;
using pset::Constraint;
using pset::DimId;
using pset::DimKind;
using pset::LinExpr;
using pset::Map;
using pset::Space;

/// Affine condition in the polynomial domain: expr >= 0 (or == 0).
struct CondRow {
  Poly expr;
  bool isEq = false;
};

/// Conjunction of affine conditions.
using Conj = std::vector<CondRow>;
/// Disjunctive normal form: OR of conjunctions.  Negated conjunctions (the
/// else-branch of a stencil's interior guard) and != comparisons produce
/// genuine unions of Z-polyhedra.
using Disj = std::vector<Conj>;

/// Caps DNF growth; regular kernels stay tiny, so exceeding this means the
/// condition should be treated as non-affine.
constexpr std::size_t kMaxDisjuncts = 64;

struct LoopCtx {
  std::optional<Poly> lo;  // affine bounds, or nullopt when unanalyzable
  std::optional<Poly> hi;
};

/// One collected memory access at thread level, before projections.
struct RawAccess {
  std::size_t argIndex = 0;
  bool isWrite = false;
  BasicSet rel;               // space: params -> [9 grid dims + loop dims] -> [a*]
  std::size_t numLoops = 0;   // loop dims present in `rel`
  bool approximate = false;   // guarded by a dropped non-affine condition
};

constexpr std::size_t kGridDims = 9;  // box,boy,boz,bx,by,bz,tx,ty,tz

std::vector<std::string> gridInNames(std::size_t numLoops) {
  std::vector<std::string> ins = {"box", "boy", "boz", "bx", "by",
                                  "bz",  "tx",  "ty",  "tz"};
  for (std::size_t i = 0; i < numLoops; ++i) ins.push_back("l" + std::to_string(i));
  return ins;
}

std::vector<std::string> outNames(std::size_t rank) {
  std::vector<std::string> outs;
  for (std::size_t i = 0; i < rank; ++i) outs.push_back("a" + std::to_string(i));
  return outs;
}

struct Extractor {
  const ir::Kernel& kernel;
  const AnalysisOptions& options;
  Space paramSpace;
  // Kernel argument index -> model parameter index (npos for non-i64/arrays).
  std::vector<std::size_t> argToParam;
  // Per argument: declared shape as polynomials over parameters (empty for
  // scalars and undeclared/1-D arrays).
  std::vector<std::vector<Poly>> shapes;

  std::vector<LoopCtx> loops;
  std::map<std::string, std::size_t> loopVarIndex;
  std::vector<Disj> condStack;
  int approxDepth = 0;
  std::map<std::string, std::optional<Poly>> locals;
  std::vector<RawAccess> accesses;
  std::array<bool, 3> axisUsesBlockIdx{false, false, false};
  std::array<bool, 3> axisUsesThreadIdx{false, false, false};
  // Arguments that fell back to the dynamic/conservative paths.
  std::set<std::size_t> instrumentedWriteArgs;
  std::set<std::size_t> wholeArrayReadArgs;
  // Arguments demoted to the may-access tier, with the first demotion
  // diagnostic per argument (ArrayModel::mayAccessWhy).
  std::set<std::size_t> mayReadArgs;
  std::set<std::size_t> mayWriteArgs;
  std::map<std::size_t, std::string> mayAccessWhy;

  Extractor(const ir::Kernel& k, const AnalysisOptions& opts)
      : kernel(k), options(opts), paramSpace(modelParamSpace(k)) {
    argToParam.assign(k.numParams(), Space::npos);
    std::size_t next = kFixedParams;
    for (std::size_t i = 0; i < k.numParams(); ++i) {
      const ir::Param& p = k.param(i);
      if (!p.isArray && p.type == ir::Type::I64) argToParam[i] = next++;
    }
    shapes.resize(k.numParams());
    for (std::size_t i = 0; i < k.numParams(); ++i) {
      for (const ExprPtr& dim : k.param(i).shape) {
        auto poly = toPoly(*dim);
        if (!poly)
          throw UnsupportedKernelError("kernel '" + k.name() + "': shape of '" +
                                       k.param(i).name + "' is not affine");
        shapes[i].push_back(std::move(*poly));
      }
    }
  }

  // -- expression -> polynomial ---------------------------------------------

  std::optional<Poly> toPoly(const Expr& e) {
    switch (e.kind()) {
      case Expr::Kind::IntConst:
        return Poly::constant(e.intValue());
      case Expr::Kind::Arg: {
        std::size_t p = argToParam[e.argIndex()];
        if (p == Space::npos) return std::nullopt;
        return Poly::var(PVar{PVar::Kind::Param, static_cast<unsigned>(p)});
      }
      case Expr::Kind::Local: {
        auto it = locals.find(e.localName());
        if (it == locals.end() || !it->second) {
          auto lv = loopVarIndex.find(e.localName());
          if (lv != loopVarIndex.end())
            return Poly::var(PVar{PVar::Kind::Loop, static_cast<unsigned>(lv->second)});
          return std::nullopt;
        }
        return it->second;
      }
      case Expr::Kind::BuiltinVar: {
        using B = ir::Builtin;
        switch (e.builtin()) {
          case B::ThreadIdxX: return Poly::var({PVar::Kind::Tid, 0});
          case B::ThreadIdxY: return Poly::var({PVar::Kind::Tid, 1});
          case B::ThreadIdxZ: return Poly::var({PVar::Kind::Tid, 2});
          case B::BlockIdxX: return Poly::var({PVar::Kind::Bid, 0});
          case B::BlockIdxY: return Poly::var({PVar::Kind::Bid, 1});
          case B::BlockIdxZ: return Poly::var({PVar::Kind::Bid, 2});
          case B::BlockDimX: return Poly::var({PVar::Kind::Param, 0});
          case B::BlockDimY: return Poly::var({PVar::Kind::Param, 1});
          case B::BlockDimZ: return Poly::var({PVar::Kind::Param, 2});
          case B::GridDimX: return Poly::var({PVar::Kind::Param, 3});
          case B::GridDimY: return Poly::var({PVar::Kind::Param, 4});
          case B::GridDimZ: return Poly::var({PVar::Kind::Param, 5});
        }
        return std::nullopt;
      }
      case Expr::Kind::Binary: {
        auto a = toPoly(*e.operands()[0]);
        auto b = toPoly(*e.operands()[1]);
        if (!a || !b) return std::nullopt;
        switch (e.binOp()) {
          case ir::BinOp::Add: return *a + *b;
          case ir::BinOp::Sub: return *a - *b;
          case ir::BinOp::Mul: return *a * *b;
          default: return std::nullopt;
        }
      }
      case Expr::Kind::Unary:
        if (e.unOp() == ir::UnOp::Neg) {
          auto a = toPoly(*e.operands()[0]);
          return a ? std::optional<Poly>(-*a) : std::nullopt;
        }
        return std::nullopt;
      default:
        return std::nullopt;
    }
  }

  // -- conditions ------------------------------------------------------------

  /// Cross product of two DNFs (logical AND); respects kMaxDisjuncts.
  static std::optional<Disj> dnfAnd(const Disj& a, const Disj& b) {
    if (a.size() * b.size() > kMaxDisjuncts) return std::nullopt;
    Disj out;
    for (const Conj& ca : a)
      for (const Conj& cb : b) {
        Conj c = ca;
        c.insert(c.end(), cb.begin(), cb.end());
        out.push_back(std::move(c));
      }
    return out;
  }

  static std::optional<Disj> dnfOr(Disj a, const Disj& b) {
    if (a.size() + b.size() > kMaxDisjuncts) return std::nullopt;
    a.insert(a.end(), b.begin(), b.end());
    return a;
  }

  /// Converts a condition expression (optionally negated) to disjunctive
  /// normal form; nullopt when some atom is not affine.
  std::optional<Disj> condToDnf(const Expr& cond, bool negate) {
    if (cond.kind() != Expr::Kind::Binary) return std::nullopt;
    ir::BinOp op = cond.binOp();
    if (op == ir::BinOp::And || op == ir::BinOp::Or) {
      auto a = condToDnf(*cond.operands()[0], negate);
      auto b = condToDnf(*cond.operands()[1], negate);
      if (!a || !b) return std::nullopt;
      // De Morgan: !(x && y) == !x || !y.
      bool isAnd = (op == ir::BinOp::And) != negate;
      return isAnd ? dnfAnd(*a, *b) : dnfOr(std::move(*a), *b);
    }
    if (cond.operands()[0]->type() != ir::Type::I64) return std::nullopt;
    auto lhs = toPoly(*cond.operands()[0]);
    auto rhs = toPoly(*cond.operands()[1]);
    if (!lhs || !rhs) return std::nullopt;
    Poly a = *lhs, b = *rhs;
    if (negate) {
      switch (op) {
        case ir::BinOp::Lt: op = ir::BinOp::Ge; break;
        case ir::BinOp::Le: op = ir::BinOp::Gt; break;
        case ir::BinOp::Gt: op = ir::BinOp::Le; break;
        case ir::BinOp::Ge: op = ir::BinOp::Lt; break;
        case ir::BinOp::Eq: op = ir::BinOp::Ne; break;
        case ir::BinOp::Ne: op = ir::BinOp::Eq; break;
        default: return std::nullopt;
      }
    }
    switch (op) {
      case ir::BinOp::Lt: return Disj{{{b - a - Poly::constant(1), false}}};
      case ir::BinOp::Le: return Disj{{{b - a, false}}};
      case ir::BinOp::Gt: return Disj{{{a - b - Poly::constant(1), false}}};
      case ir::BinOp::Ge: return Disj{{{a - b, false}}};
      case ir::BinOp::Eq: return Disj{{{a - b, true}}};
      case ir::BinOp::Ne:
        // a != b is the union a < b or a > b.
        return Disj{{{b - a - Poly::constant(1), false}},
                    {{a - b - Poly::constant(1), false}}};
      default: return std::nullopt;
    }
  }

  // -- polynomial -> constraint row -----------------------------------------

  /// Converts an affine polynomial (after blockOff substitution) to a row in
  /// `space`; returns false when a non-affine monomial remains.
  bool polyToRow(const Poly& p, const Space& space, std::size_t numLoops,
                 LinExpr& out) const {
    out = LinExpr(space);
    for (const auto& [m, c] : p.terms()) {
      if (m.empty()) {
        out.addConstant(c);
        continue;
      }
      if (m.size() > 1) return false;
      const PVar& v = m[0];
      DimId d = DimId::param(0);
      switch (v.kind) {
        case PVar::Kind::Boff: d = DimId::in(v.index); break;
        case PVar::Kind::Bid: d = DimId::in(3 + v.index); break;
        case PVar::Kind::Tid: d = DimId::in(6 + v.index); break;
        case PVar::Kind::Loop:
          if (v.index >= numLoops) return false;
          d = DimId::in(kGridDims + v.index);
          break;
        case PVar::Kind::Param: d = DimId::param(v.index); break;
      }
      out.setCoef(space, d, checkedAdd(out.coef(space, d), c));
    }
    return true;
  }

  // -- access collection ------------------------------------------------------

  void recordAccess(std::size_t argIndex, bool isWrite, const Expr& flatIndex) {
    // Expand the path condition (a stack of DNFs) into its conjunctions and
    // emit one access relation per conjunction.
    std::vector<Conj> pathConjs{{}};
    for (const Disj& d : condStack) {
      std::vector<Conj> next;
      if (pathConjs.size() * d.size() > kMaxDisjuncts)
        throw UnsupportedKernelError("kernel '" + kernel.name() +
                                     "': path condition is too disjunctive");
      for (const Conj& base : pathConjs)
        for (const Conj& extra : d) {
          Conj c = base;
          c.insert(c.end(), extra.begin(), extra.end());
          next.push_back(std::move(c));
        }
      pathConjs = std::move(next);
    }
    for (const Conj& conj : pathConjs)
      recordAccessConj(argIndex, isWrite, flatIndex, conj);
  }

  /// Handles an access the polyhedral model cannot represent: route it to
  /// the instrumented-write or whole-array-read fallback when enabled, then
  /// to the may-access tier, otherwise reject the kernel (the paper's base
  /// behaviour, restored by POLYPART_STRICT_AFFINE=1).  The diagnostic — in
  /// both the demotion record and the rejection — names the argument and
  /// the offending subscript expression.
  void unsupportedAccess(std::size_t argIndex, bool isWrite,
                         const std::string& why) {
    const std::string diag =
        why + " on '" + kernel.param(argIndex).name + "'";
    if (isWrite && options.allowInstrumentedWrites) {
      instrumentedWriteArgs.insert(argIndex);
      return;
    }
    if (!isWrite && options.allowWholeArrayReadFallback &&
        !shapes[argIndex].empty()) {
      wholeArrayReadArgs.insert(argIndex);
      return;
    }
    if (options.allowMayAccess &&
        (isWrite || !shapes[argIndex].empty())) {
      // May-reads need a declared shape for the whole-extent box; may-writes
      // demote unconditionally (the runtime observes the written ranges).
      (isWrite ? mayWriteArgs : mayReadArgs).insert(argIndex);
      mayAccessWhy.emplace(argIndex, diag);  // keep the first reason
      return;
    }
    throw UnsupportedKernelError("kernel '" + kernel.name() + "': " + diag);
  }

  void recordAccessConj(std::size_t argIndex, bool isWrite, const Expr& flatIndex,
                        const Conj& conds) {
    const std::size_t numLoops = loops.size();
    auto flat = toPoly(flatIndex);
    if (!flat) {
      unsupportedAccess(argIndex, isWrite,
                        std::string(isWrite ? "non-affine write index '"
                                            : "non-affine read index '") +
                            flatIndex.str() + "'");
      return;
    }
    Poly indexPoly = flat->substituteBlockOffsets();

    std::vector<Poly> shape;
    for (const Poly& s : shapes[argIndex]) shape.push_back(s.substituteBlockOffsets());
    auto subs = delinearize(indexPoly, shape);
    if (!subs) {
      unsupportedAccess(argIndex, isWrite,
                        "cannot delinearize access '" + flatIndex.str() + "'");
      return;
    }
    const std::size_t rank = subs->size();

    Space space = Space::map(paramSpace.paramNames(), gridInNames(numLoops),
                             outNames(rank));
    BasicSet rel(space);
    bool approx = approxDepth > 0;

    auto addRow = [&](const Poly& p, bool isEq) -> bool {
      LinExpr row;
      if (!polyToRow(p.substituteBlockOffsets(), space, numLoops, row)) return false;
      rel.add(Constraint{std::move(row), isEq});
      return true;
    };

    // Grid context: 0 <= tid < blockDim, 0 <= bid < gridDim, blockOff >= 0,
    // blockDim >= 1, gridDim >= 1.
    for (unsigned a = 0; a < 3; ++a) {
      LinExpr tid = LinExpr::dim(space, DimId::in(6 + a));
      LinExpr bid = LinExpr::dim(space, DimId::in(3 + a));
      LinExpr boff = LinExpr::dim(space, DimId::in(a));
      LinExpr bd = LinExpr::dim(space, DimId::param(a));
      LinExpr gd = LinExpr::dim(space, DimId::param(3 + a));
      rel.addGe(tid);
      rel.addGe(bd - tid + LinExpr::constant(space, -1));
      rel.addGe(bid);
      rel.addGe(gd - bid + LinExpr::constant(space, -1));
      rel.addGe(boff);
      rel.addGe(bd + LinExpr::constant(space, -1));
      rel.addGe(gd + LinExpr::constant(space, -1));
    }

    // Enclosing loop bounds (when affine).
    for (std::size_t j = 0; j < numLoops; ++j) {
      LinExpr lv = LinExpr::dim(space, DimId::in(kGridDims + j));
      if (loops[j].lo) {
        LinExpr row;
        if (polyToRow(*loops[j].lo, space, numLoops, row))
          rel.addGe(lv - row);
        else
          approx = true;
      } else {
        approx = true;
      }
      if (loops[j].hi) {
        LinExpr row;
        if (polyToRow(*loops[j].hi, space, numLoops, row))
          rel.addGe(row - lv + LinExpr::constant(space, -1));
        else
          approx = true;
      } else {
        approx = true;
      }
    }

    // Affine guards collected on the path.
    for (const CondRow& c : conds) {
      if (!addRow(c.expr, c.isEq)) approx = true;
    }

    // Subscript equalities a_j == sub_j.
    for (std::size_t j = 0; j < rank; ++j) {
      LinExpr row;
      if (!polyToRow((*subs)[j], space, numLoops, row)) {
        unsupportedAccess(argIndex, isWrite,
                          "non-affine subscript '" + flatIndex.str() + "'");
        return;
      }
      rel.add(Constraint{LinExpr::dim(space, DimId::out(j)) - row, true});
    }

    // Declared shape bounds 0 <= a_j < shape_j.
    for (std::size_t j = 0; j < shape.size(); ++j) {
      rel.addGe(LinExpr::dim(space, DimId::out(j)));
      LinExpr row;
      if (polyToRow(shape[j], space, numLoops, row))
        rel.addGe(row - LinExpr::dim(space, DimId::out(j)) +
                  LinExpr::constant(space, -1));
    }
    if (shape.empty()) rel.addGe(LinExpr::dim(space, DimId::out(0)));

    if (isWrite && approx) {
      unsupportedAccess(argIndex, true,
                        "write of '" + flatIndex.str() +
                            "' under a non-affine guard cannot be modeled "
                            "accurately");
      return;
    }

    rel.simplify();
    accesses.push_back(RawAccess{argIndex, isWrite, std::move(rel), numLoops, approx});
  }

  // -- traversal ---------------------------------------------------------------

  void scanExprForReads(const Expr& e) {
    if (e.kind() == Expr::Kind::Load) {
      scanExprForReads(*e.operands()[0]);
      recordAccess(e.argIndex(), /*isWrite=*/false, *e.operands()[0]);
      return;
    }
    if (e.kind() == Expr::Kind::BuiltinVar) {
      if (e.builtin() == ir::Builtin::BlockIdxX) axisUsesBlockIdx[0] = true;
      if (e.builtin() == ir::Builtin::BlockIdxY) axisUsesBlockIdx[1] = true;
      if (e.builtin() == ir::Builtin::BlockIdxZ) axisUsesBlockIdx[2] = true;
      if (e.builtin() == ir::Builtin::ThreadIdxX) axisUsesThreadIdx[0] = true;
      if (e.builtin() == ir::Builtin::ThreadIdxY) axisUsesThreadIdx[1] = true;
      if (e.builtin() == ir::Builtin::ThreadIdxZ) axisUsesThreadIdx[2] = true;
    }
    for (const ExprPtr& k : e.operands()) scanExprForReads(*k);
  }

  void visit(const Stmt& s) {
    switch (s.kind()) {
      case Stmt::Kind::Block:
        for (const StmtPtr& c : s.body()) visit(*c);
        break;
      case Stmt::Kind::Let: {
        scanExprForReads(*s.value());
        locals[s.varName()] = s.value()->type() == ir::Type::I64
                                  ? toPoly(*s.value())
                                  : std::nullopt;
        break;
      }
      case Stmt::Kind::Assign: {
        scanExprForReads(*s.value());
        // Reassigned locals lose their affine meaning (conservative).
        locals[s.varName()] = std::nullopt;
        break;
      }
      case Stmt::Kind::Store:
        scanExprForReads(*s.index());
        scanExprForReads(*s.value());
        recordAccess(s.arrayArg(), /*isWrite=*/true, *s.index());
        break;
      case Stmt::Kind::For: {
        scanExprForReads(*s.lo());
        scanExprForReads(*s.hi());
        LoopCtx lc{toPoly(*s.lo()), toPoly(*s.hi())};
        std::size_t idx = loops.size();
        loops.push_back(std::move(lc));
        auto prev = loopVarIndex.find(s.varName());
        std::optional<std::size_t> saved;
        if (prev != loopVarIndex.end()) saved = prev->second;
        loopVarIndex[s.varName()] = idx;
        visit(*s.body()[0]);
        if (saved)
          loopVarIndex[s.varName()] = *saved;
        else
          loopVarIndex.erase(s.varName());
        loops.pop_back();
        break;
      }
      case Stmt::Kind::If: {
        scanExprForReads(*s.cond());
        std::optional<Disj> thenDnf = condToDnf(*s.cond(), false);
        std::optional<Disj> elseDnf = condToDnf(*s.cond(), true);

        std::size_t mark = condStack.size();
        if (thenDnf)
          condStack.push_back(std::move(*thenDnf));
        else
          ++approxDepth;
        visit(*s.body()[0]);
        condStack.resize(mark);
        if (!thenDnf) --approxDepth;

        if (s.body()[1]) {
          if (elseDnf)
            condStack.push_back(std::move(*elseDnf));
          else
            ++approxDepth;
          visit(*s.body()[1]);
          condStack.resize(mark);
          if (!elseDnf) --approxDepth;
        }
        break;
      }
    }
  }
};

/// Thread-level injectivity check with the blockOff/blockIdx linkage
/// (Section 4.1: write maps must be injective across threads).  The linkage
/// boff_w = bid_w * bdim_w is non-affine; its affine consequences are:
///   bid_w == bid'_w  implies boff_w == boff'_w, and
///   bid_w <  bid'_w  implies boff'_w >= boff_w + bdim_w.
/// Every true thread conflict satisfies one of the resulting 3^3 axis case
/// combinations, so emptiness of all of them proves injectivity.
bool isThreadInjective(const Map& writeMap) {
  const Space& mapSpace = writeMap.space();
  const std::size_t nIn = mapSpace.numIn();  // 9 grid dims
  PP_ASSERT(nIn == kGridDims);
  std::vector<std::string> ins2 = mapSpace.inNames();
  for (const std::string& n : mapSpace.inNames()) ins2.push_back(n + "'");
  Space cs = Space::map(mapSpace.paramNames(), std::move(ins2), mapSpace.outNames());

  auto embed = [&](const BasicSet& part, std::size_t offset) {
    static constexpr std::size_t npos = static_cast<std::size_t>(-1);
    std::vector<std::size_t> colMap(mapSpace.cols(), npos);
    colMap[0] = 0;
    for (std::size_t p = 0; p < mapSpace.numParams(); ++p)
      colMap[mapSpace.col(DimId::param(p))] = cs.col(DimId::param(p));
    for (std::size_t i = 0; i < nIn; ++i)
      colMap[mapSpace.col(DimId::in(i))] = cs.col(DimId::in(i + offset));
    for (std::size_t o = 0; o < mapSpace.numOut(); ++o)
      colMap[mapSpace.col(DimId::out(o))] = cs.col(DimId::out(o));
    BasicSet out(cs);
    for (const Constraint& c : part.constraints())
      out.add(Constraint{c.expr.remapped(colMap, cs.cols()), c.isEquality});
    return out;
  };

  // Dims within the conflict space.
  auto boff = [&](unsigned a, bool primed) { return DimId::in(a + (primed ? nIn : 0)); };
  auto bid = [&](unsigned a, bool primed) { return DimId::in(3 + a + (primed ? nIn : 0)); };
  auto tid = [&](unsigned a, bool primed) { return DimId::in(6 + a + (primed ? nIn : 0)); };

  for (std::size_t pa = 0; pa < writeMap.parts().size(); ++pa) {
    for (std::size_t pb = pa; pb < writeMap.parts().size(); ++pb) {
      BasicSet base = embed(writeMap.parts()[pa], 0)
                          .intersect(embed(writeMap.parts()[pb], nIn));
      // Axis cases: 0 = equal blocks, 1 = bid < bid', 2 = bid > bid'.
      for (int cx = 0; cx < 3; ++cx) {
        for (int cy = 0; cy < 3; ++cy) {
          for (int cz = 0; cz < 3; ++cz) {
            const int cases[3] = {cx, cy, cz};
            BasicSet q = base;
            bool blocksAllEqual = true;
            for (unsigned a = 0; a < 3; ++a) {
              LinExpr bo = LinExpr::dim(cs, boff(a, false));
              LinExpr bo2 = LinExpr::dim(cs, boff(a, true));
              LinExpr bi = LinExpr::dim(cs, bid(a, false));
              LinExpr bi2 = LinExpr::dim(cs, bid(a, true));
              LinExpr bd = LinExpr::dim(cs, DimId::param(a));
              switch (cases[a]) {
                case 0:
                  q.addEq(bi2 - bi);
                  q.addEq(bo2 - bo);
                  break;
                case 1:
                  q.addGe(bi2 - bi + LinExpr::constant(cs, -1));
                  q.addGe(bo2 - bo - bd);
                  blocksAllEqual = false;
                  break;
                case 2:
                  q.addGe(bi - bi2 + LinExpr::constant(cs, -1));
                  q.addGe(bo - bo2 - bd);
                  blocksAllEqual = false;
                  break;
              }
            }
            if (!blocksAllEqual) {
              q.simplify();
              if (q.markedEmpty()) continue;
              if (q.feasibility() != BasicSet::Feas::Empty) return false;
              continue;
            }
            // Same block on every axis: a conflict needs differing threads.
            for (unsigned a = 0; a < 3; ++a) {
              for (int dir = 0; dir < 2; ++dir) {
                BasicSet qq = q;
                LinExpr t = LinExpr::dim(cs, tid(a, false));
                LinExpr t2 = LinExpr::dim(cs, tid(a, true));
                LinExpr diff = dir == 0 ? t2 - t : t - t2;
                diff.addConstant(-1);
                qq.addGe(std::move(diff));
                qq.simplify();
                if (qq.markedEmpty()) continue;
                if (qq.feasibility() != BasicSet::Feas::Empty) return false;
              }
            }
          }
        }
      }
    }
  }
  return true;
}

PartitionStrategy chooseStrategy(const std::vector<ArrayModel>& arrays) {
  // Split along the grid axis that drives the outermost written array
  // dimension: that keeps each partition's write set a contiguous block of
  // rows (Section 8.1 discusses why this limits tracker fragmentation).
  for (const ArrayModel& am : arrays) {
    for (const BasicSet& part : am.write.parts()) {
      const Space& s = part.space();
      for (const Constraint& c : part.constraints()) {
        if (c.expr.coef(s, DimId::out(0)) == 0) continue;
        // Axis order: check y (1), z (2), then x (0): a 2-D kernel writing
        // rows by blockIdx.y should split y.
        for (unsigned axis : {1u, 2u, 0u}) {
          if (c.expr.coef(s, DimId::in(axis)) != 0 ||
              c.expr.coef(s, DimId::in(3 + axis)) != 0) {
            switch (axis) {
              case 0: return PartitionStrategy::SplitX;
              case 1: return PartitionStrategy::SplitY;
              case 2: return PartitionStrategy::SplitZ;
            }
          }
        }
      }
    }
  }
  return PartitionStrategy::SplitX;
}

}  // namespace

KernelModel analyzeKernel(const ir::Kernel& kernel, const AnalysisOptions& options) {
  Extractor ex(kernel, options);
  ex.visit(*kernel.body());

  KernelModel model;
  model.kernel = kernel.name();

  for (std::size_t i = 0; i < kernel.numParams(); ++i) {
    const ir::Param& p = kernel.param(i);
    model.params.push_back(ParamInfo{p.name, p.isArray, p.type, ex.argToParam[i]});
  }
  for (unsigned a = 0; a < 3; ++a) {
    model.requiresUnitGrid[a] = !ex.axisUsesBlockIdx[a];
    model.requiresUnitBlock[a] = !ex.axisUsesThreadIdx[a];
  }

  // Group raw accesses per array argument.
  for (std::size_t argIndex : kernel.arrayParamIndices()) {
    const std::size_t rank = std::max<std::size_t>(1, ex.shapes[argIndex].size());
    Space mapSpace = accessMapSpace(ex.paramSpace, rank);
    Space threadSpace =
        Space::map(ex.paramSpace.paramNames(), gridInNames(0), outNames(rank));

    Map readThread(threadSpace), writeThread(threadSpace);
    bool readApprox = false;

    for (const RawAccess& acc : ex.accesses) {
      if (acc.argIndex != argIndex) continue;
      // Arrays on a fallback path ignore their (partial) static accesses.
      if (acc.isWrite && ex.instrumentedWriteArgs.count(argIndex)) continue;
      if (!acc.isWrite && ex.wholeArrayReadArgs.count(argIndex)) continue;
      if (acc.isWrite && ex.mayWriteArgs.count(argIndex)) continue;
      if (!acc.isWrite && ex.mayReadArgs.count(argIndex)) continue;
      // Project out loop dimensions first.
      pset::Proj p = acc.rel.projectOut(DimKind::In, kGridDims, acc.numLoops);
      bool exact = p.exact && !acc.approximate;
      BasicSet aligned(threadSpace);
      for (const Constraint& c : p.set.constraints()) aligned.add(c);
      if (p.set.markedEmpty()) continue;
      if (acc.isWrite) {
        if (!exact) {
          if (options.allowInstrumentedWrites) {
            ex.instrumentedWriteArgs.insert(argIndex);
            writeThread = Map(threadSpace);
            continue;
          }
          throw UnsupportedKernelError(
              "kernel '" + kernel.name() + "': write map of '" +
              kernel.param(argIndex).name + "' lost accuracy under projection");
        }
        if (!ex.instrumentedWriteArgs.count(argIndex))
          writeThread.addPart(std::move(aligned));
      } else {
        readApprox = readApprox || !exact;
        readThread.addPart(std::move(aligned));
      }
    }

    // For unit-grid axes (blockIdx never used), pin bid and boff to zero so
    // the injectivity check does not see phantom cross-block conflicts.  The
    // runtime validates the launch configuration against requiresUnitGrid.
    auto pinUnitAxes = [&](Map& m) {
      BasicSet pins(threadSpace);
      for (unsigned a = 0; a < 3; ++a) {
        if (model.requiresUnitGrid[a]) {
          pins.addEq(LinExpr::dim(threadSpace, DimId::in(3 + a)));  // bid = 0
          pins.addEq(LinExpr::dim(threadSpace, DimId::in(a)));      // boff = 0
          // gridDim_a == 1.
          pins.addEq(LinExpr::dim(threadSpace, DimId::param(3 + a)) +
                     LinExpr::constant(threadSpace, -1));
        }
        if (model.requiresUnitBlock[a]) {
          pins.addEq(LinExpr::dim(threadSpace, DimId::in(6 + a)));  // tid = 0
          // blockDim_a == 1.
          pins.addEq(LinExpr::dim(threadSpace, DimId::param(a)) +
                     LinExpr::constant(threadSpace, -1));
        }
      }
      return m.intersect(pins);
    };
    readThread = pinUnitAxes(readThread);
    writeThread = pinUnitAxes(writeThread);

    if (!writeThread.isEmpty() && !ex.instrumentedWriteArgs.count(argIndex) &&
        !isThreadInjective(writeThread)) {
      if (options.allowInstrumentedWrites) {
        ex.instrumentedWriteArgs.insert(argIndex);
        writeThread = Map(threadSpace);
      } else {
        throw UnsupportedKernelError(
            "kernel '" + kernel.name() + "': write map of '" +
            kernel.param(argIndex).name +
            "' is not injective; write-after-write hazards prohibit "
            "multi-GPU execution");
      }
    }

    // Eliminate the threadIdx dimensions (Section 4.1).
    auto dropTids = [&](const Map& m, bool isWrite) {
      Map out(mapSpace);
      for (const BasicSet& part : m.parts()) {
        pset::Proj p = part.projectOut(DimKind::In, 6, 3);
        if (isWrite && !p.exact)
          throw UnsupportedKernelError(
              "kernel '" + kernel.name() + "': write map of '" +
              kernel.param(argIndex).name +
              "' lost accuracy eliminating threadIdx");
        if (!p.exact) out.markInexact();
        if (p.set.markedEmpty()) continue;
        BasicSet aligned(mapSpace);
        for (const Constraint& c : p.set.constraints()) aligned.add(c);
        out.addPart(std::move(aligned));
      }
      return out;
    };

    ArrayModel am;
    am.argIndex = argIndex;
    am.name = kernel.param(argIndex).name;
    am.elemType = kernel.param(argIndex).type;
    am.read = dropTids(readThread, false);
    if (readApprox) am.read.markInexact();
    try {
      am.write = dropTids(writeThread, true);
    } catch (const UnsupportedKernelError&) {
      // Exactness lost while eliminating threadIdx (e.g. strided writes):
      // fall back to instrumentation when permitted.
      if (!options.allowInstrumentedWrites) throw;
      ex.instrumentedWriteArgs.insert(argIndex);
      am.write = Map(mapSpace);
    }
    am.writeInstrumented = ex.instrumentedWriteArgs.count(argIndex) > 0;
    if (am.writeInstrumented) am.write = Map(mapSpace);
    am.readWholeArray = ex.wholeArrayReadArgs.count(argIndex) > 0;
    am.readMayAccess = ex.mayReadArgs.count(argIndex) > 0;
    am.writeMayAccess = ex.mayWriteArgs.count(argIndex) > 0;
    if (am.writeMayAccess) am.write = Map(mapSpace);
    if (auto it = ex.mayAccessWhy.find(argIndex); it != ex.mayAccessWhy.end())
      am.mayAccessWhy = it->second;

    // Shape rows over the parameter space.
    for (const Poly& s : ex.shapes[argIndex]) {
      LinExpr row(ex.paramSpace);
      bool ok = true;
      for (const auto& [m, c] : s.terms()) {
        if (m.empty()) {
          row.addConstant(c);
        } else if (m.size() == 1 && m[0].kind == PVar::Kind::Param) {
          row.setCoef(ex.paramSpace, DimId::param(m[0].index), c);
        } else {
          ok = false;
        }
      }
      if (!ok)
        throw UnsupportedKernelError("kernel '" + kernel.name() + "': shape of '" +
                                     am.name + "' is not affine in parameters");
      am.shape.push_back(std::move(row));
    }

    // Whole-array read fallback and may-access reads: the read set is the
    // full declared extent, independent of the partition (sound
    // over-approximation; the inspector–executor may tighten may-access
    // reads per launch at runtime).
    if (am.readWholeArray || am.readMayAccess) {
      PP_ASSERT_MSG(!am.shape.empty(), "whole-array fallback requires a shape");
      BasicSet box(mapSpace);
      for (std::size_t j = 0; j < am.shape.size(); ++j) {
        LinExpr a = LinExpr::dim(mapSpace, DimId::out(j));
        box.addGe(a);
        LinExpr bound(mapSpace);
        bound.row()[0] = am.shape[j].constantTerm();
        for (std::size_t p = 0; p < ex.paramSpace.numParams(); ++p)
          bound.setCoef(mapSpace, DimId::param(p), am.shape[j][p + 1]);
        box.addGe(bound - a + LinExpr::constant(mapSpace, -1));
      }
      Map whole(mapSpace);
      whole.addPart(std::move(box));
      whole.markInexact();
      am.read = std::move(whole);
    }

    // Source annotations override the extracted maps (conclusion option 3).
    if (options.annotations) {
      if (const pset::Map* r = options.annotations->readFor(argIndex)) {
        PP_ASSERT_MSG(r->space() == mapSpace,
                      "annotated read map has the wrong space");
        am.read = *r;
        am.readMayAccess = false;
      }
      if (const pset::Map* w = options.annotations->writeFor(argIndex)) {
        PP_ASSERT_MSG(w->space() == mapSpace,
                      "annotated write map has the wrong space");
        am.write = *w;
        am.writeInstrumented = false;
        am.writeMayAccess = false;
      }
    }

    if (am.hasReads() || am.hasWrites() || am.writeInstrumented ||
        am.writeMayAccess)
      model.arrays.push_back(std::move(am));
  }

  model.strategy = chooseStrategy(model.arrays);
  return model;
}

ApplicationModel analyzeModule(const ir::Module& module,
                               const AnalysisOptions& options) {
  ApplicationModel app;
  for (const ir::KernelPtr& k : module.kernels())
    app.kernels.push_back(analyzeKernel(*k, options));
  return app;
}

}  // namespace polypart::analysis
