#include "analysis/poly.h"

#include <algorithm>

#include "support/error.h"
#include "support/str.h"

namespace polypart::analysis {

void Poly::addTerm(Monomial m, i64 c) {
  if (c == 0) return;
  auto [it, inserted] = terms_.try_emplace(std::move(m), c);
  if (!inserted) {
    it->second = checkedAdd(it->second, c);
    if (it->second == 0) terms_.erase(it);
  }
}

Poly Poly::constant(i64 c) {
  Poly p;
  p.addTerm({}, c);
  return p;
}

Poly Poly::var(PVar v) {
  Poly p;
  p.addTerm({v}, 1);
  return p;
}

std::optional<i64> Poly::asConstant() const {
  if (terms_.empty()) return 0;
  if (terms_.size() == 1 && terms_.begin()->first.empty())
    return terms_.begin()->second;
  return std::nullopt;
}

Poly Poly::operator+(const Poly& o) const {
  Poly out = *this;
  for (const auto& [m, c] : o.terms_) out.addTerm(m, c);
  return out;
}

Poly Poly::operator-(const Poly& o) const {
  Poly out = *this;
  for (const auto& [m, c] : o.terms_) out.addTerm(m, checkedNeg(c));
  return out;
}

Poly Poly::operator-() const {
  Poly out;
  for (const auto& [m, c] : terms_) out.addTerm(m, checkedNeg(c));
  return out;
}

Poly Poly::operator*(const Poly& o) const {
  Poly out;
  for (const auto& [ma, ca] : terms_) {
    for (const auto& [mb, cb] : o.terms_) {
      Monomial m;
      m.reserve(ma.size() + mb.size());
      std::merge(ma.begin(), ma.end(), mb.begin(), mb.end(), std::back_inserter(m));
      out.addTerm(std::move(m), checkedMul(ca, cb));
    }
  }
  return out;
}

Poly Poly::substituteBlockOffsets() const {
  Poly out;
  for (const auto& [m, c] : terms_) {
    Monomial cur = m;
    bool changed = true;
    while (changed) {
      changed = false;
      for (unsigned axis = 0; axis < 3 && !changed; ++axis) {
        PVar bid{PVar::Kind::Bid, axis};
        PVar bdim{PVar::Kind::Param, axis};  // params 0..2 are blockDim x/y/z
        auto itBid = std::find(cur.begin(), cur.end(), bid);
        if (itBid == cur.end()) continue;
        auto itDim = std::find(cur.begin(), cur.end(), bdim);
        if (itDim == cur.end()) continue;
        // Remove the later iterator first so the earlier stays valid.
        if (itBid < itDim) std::swap(itBid, itDim);
        cur.erase(itBid);
        cur.erase(itDim);
        cur.push_back(PVar{PVar::Kind::Boff, axis});
        std::sort(cur.begin(), cur.end());
        changed = true;
      }
    }
    out.addTerm(std::move(cur), c);
  }
  return out;
}

bool Poly::isAffine() const {
  for (const auto& [m, c] : terms_)
    if (m.size() > 1) return false;
  return true;
}

Poly::DivResult Poly::divideByMonomial(const Monomial& stride, i64 coef) const {
  PP_ASSERT(coef != 0);
  DivResult out;
  for (const auto& [m, c] : terms_) {
    // Is `stride` a sub-multiset of m and c divisible by coef?
    Monomial rest;
    rest.reserve(m.size());
    std::size_t si = 0;
    for (const PVar& v : m) {
      if (si < stride.size() && stride[si] == v) {
        ++si;
      } else {
        rest.push_back(v);
      }
    }
    if (si == stride.size() && c % coef == 0) {
      out.quotient.addTerm(std::move(rest), c / coef);
    } else {
      out.remainder.addTerm(m, c);
    }
  }
  return out;
}

std::optional<std::pair<Monomial, i64>> Poly::asSingleTerm() const {
  if (terms_.size() != 1) return std::nullopt;
  return std::make_pair(terms_.begin()->first, terms_.begin()->second);
}

std::string Poly::str() const {
  if (terms_.empty()) return "0";
  auto varStr = [](PVar v) -> std::string {
    const char* axes = "xyz";
    switch (v.kind) {
      case PVar::Kind::Tid: return std::string("t") + axes[v.index];
      case PVar::Kind::Bid: return std::string("b") + axes[v.index];
      case PVar::Kind::Boff: return std::string("bo") + axes[v.index];
      case PVar::Kind::Param: return "p" + std::to_string(v.index);
      case PVar::Kind::Loop: return "L" + std::to_string(v.index);
    }
    return "?";
  };
  std::vector<std::string> parts;
  for (const auto& [m, c] : terms_) {
    std::string t = std::to_string(c);
    for (const PVar& v : m) t += "*" + varStr(v);
    parts.push_back(std::move(t));
  }
  return join(parts, " + ");
}

std::optional<std::vector<Poly>> delinearize(const Poly& flatIndex,
                                             const std::vector<Poly>& shape) {
  const std::size_t d = shape.size();
  if (d <= 1) {
    if (!flatIndex.isAffine()) return std::nullopt;
    return std::vector<Poly>{flatIndex};
  }

  // Strides: stride[d-1] = 1, stride[i] = shape[i+1] * ... * shape[d-1].
  // Every shape dimension must be a single monomial for monomial division.
  std::vector<Poly> strides(d);
  strides[d - 1] = Poly::constant(1);
  for (std::size_t i = d - 1; i-- > 0;) strides[i] = strides[i + 1] * shape[i + 1];

  std::vector<Poly> subs(d);
  Poly rest = flatIndex;
  for (std::size_t i = 0; i + 1 < d; ++i) {
    auto term = strides[i].asSingleTerm();
    if (!term) return std::nullopt;
    // A constant stride of 1 would make every remaining term "divisible";
    // that only happens with degenerate shapes, which we do not factor.
    auto dv = rest.divideByMonomial(term->first, term->second);
    subs[i] = std::move(dv.quotient);
    rest = std::move(dv.remainder);
    if (!subs[i].isAffine()) return std::nullopt;
  }
  subs[d - 1] = std::move(rest);
  if (!subs[d - 1].isAffine()) return std::nullopt;
  return subs;
}

}  // namespace polypart::analysis
