#pragma once

// Entry points of the polyhedral access analysis (paper Section 4).
//
// analyzeKernel builds the KernelModel for one kernel:
//   1. abstract interpretation of index expressions into the polynomial
//      domain (analysis/poly.h) with the blockOff substitution (Eq. 6),
//   2. delinearization against declared array shapes,
//   3. construction of thread-level access relations with the full domain
//      constraints (thread/block bounds, loop bounds, affine guards),
//   4. projection of loop and threadIdx dimensions (Section 4.1),
//   5. soundness checks: write maps must stay exact under projection and be
//      thread-injective (write-after-write hazards prohibit multi-GPU
//      execution, Section 4.1),
//   6. the partitioning-strategy heuristic.
//
// Throws UnsupportedKernelError when the kernel cannot be modeled soundly.

#include <map>

#include "analysis/model.h"

namespace polypart::analysis {

/// Default for AnalysisOptions::allowMayAccess:
/// `!POLYPART_STRICT_AFFINE` (the env knob restores the paper's hard-reject
/// behaviour for non-affine subscripts).
bool defaultAllowMayAccess();

/// Fallback policies for kernels the purely static analysis rejects.  The
/// first two implement directions the paper's conclusion names explicitly:
/// "this limitation can be remedied by using instrumentation to collect
/// write patterns ... or annotation of the source code with write patterns".
struct AnalysisOptions {
  /// Writes the polyhedral model cannot capture accurately (non-affine
  /// indices, non-affine guards, inexact projections, unprovable
  /// injectivity) mark the array `writeInstrumented` instead of rejecting
  /// the kernel; the runtime then collects the write pattern by executing
  /// an instrumented kernel (Functional mode only).
  bool allowInstrumentedWrites = false;
  /// Reads the model cannot capture fall back to the array's full extent
  /// (requires a declared shape) — a sound over-approximation that forces a
  /// whole-buffer synchronization.
  bool allowWholeArrayReadFallback = false;
  /// May-access tier (DESIGN.md "May-access tier & inspector–executor"):
  /// when a subscript is not affine (indirect indexing — x[idx[i]]), demote
  /// the access to a conservative MayAccess record instead of rejecting the
  /// kernel.  May-reads over-approximate to the array's whole declared
  /// extent (readMayAccess); may-writes drop their static map entirely and
  /// the runtime derives the written ranges by observed execution
  /// (writeMayAccess, Functional mode only).  Checked after the two opt-in
  /// fallbacks above, so enabling those keeps their behaviour.  Scoped to
  /// non-affine subscripts: inexact projections and unprovable injectivity
  /// of otherwise-affine writes still reject.
  bool allowMayAccess = defaultAllowMayAccess();
  /// User-supplied access maps overriding the extraction per (kernel
  /// argument); see KernelAnnotations.
  const class KernelAnnotations* annotations = nullptr;
};

/// Source-level access-pattern annotations (conclusion option 3): exact
/// read/write maps the programmer asserts for specific array arguments, in
/// the model's Z^6 -> Z^d space.  Annotated write maps are still checked
/// for thread-level consistency by the runtime's instrumentation tests, but
/// are trusted by the analysis.
class KernelAnnotations {
 public:
  void annotateRead(std::size_t argIndex, pset::Map map) {
    reads_[argIndex] = std::move(map);
  }
  void annotateWrite(std::size_t argIndex, pset::Map map) {
    writes_[argIndex] = std::move(map);
  }
  const pset::Map* readFor(std::size_t argIndex) const {
    auto it = reads_.find(argIndex);
    return it == reads_.end() ? nullptr : &it->second;
  }
  const pset::Map* writeFor(std::size_t argIndex) const {
    auto it = writes_.find(argIndex);
    return it == writes_.end() ? nullptr : &it->second;
  }

 private:
  std::map<std::size_t, pset::Map> reads_;
  std::map<std::size_t, pset::Map> writes_;
};

KernelModel analyzeKernel(const ir::Kernel& kernel,
                          const AnalysisOptions& options = {});

/// Analyzes every kernel of a module.
ApplicationModel analyzeModule(const ir::Module& module,
                               const AnalysisOptions& options = {});

}  // namespace polypart::analysis
