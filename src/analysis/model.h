#pragma once

// The polyhedral application model (paper Section 4).
//
// For each kernel, the model records the suggested partitioning strategy,
// the argument list, and per array argument the read and write access maps
// Z^6 -> Z^d over the thread-grid dimensions (blockOff, blockIdx) x (x,y,z).
//
// Space conventions (shared by analysis, codegen, and runtime):
//
//   parameters: [bdx, bdy, bdz, gdx, gdy, gdz, <i64 scalar args in kernel
//               declaration order>]
//   map inputs: [box, boy, boz, bx, by, bz]    (blockOff then blockIdx)
//   map outputs: [a0 .. a{d-1}]                (outermost array dim first;
//                                              a{d-1} is row-major contiguous)
//
// During analysis, thread-level maps additionally carry inputs
// [tx, ty, tz] at positions 6..8 plus one dimension per enclosing loop;
// those are projected away before the model is emitted (Section 4.1:
// "eliminating the threadId dimension").

#include <array>
#include <string>
#include <vector>

#include "ir/kernel.h"
#include "pset/map.h"
#include "support/json.h"

namespace polypart::analysis {

/// Number of fixed model parameters before the scalar kernel arguments.
inline constexpr std::size_t kFixedParams = 6;  // bd{x,y,z}, gd{x,y,z}

/// Grid axis along which the launcher should split the thread grid
/// (Section 4: "suggested partitioning strategy").
enum class PartitionStrategy { SplitX, SplitY, SplitZ };

const char* strategyName(PartitionStrategy s);

struct ParamInfo {
  std::string name;
  bool isArray = false;
  ir::Type type = ir::Type::I64;
  /// For i64 scalars: index into the model parameter space; npos otherwise.
  std::size_t modelParamIndex = static_cast<std::size_t>(-1);
};

/// Per-array-argument access model.
struct ArrayModel {
  std::size_t argIndex = 0;
  std::string name;
  ir::Type elemType = ir::Type::F64;
  /// Array shape, outermost dimension first, as affine rows over the model
  /// *parameter* space (set space with zero dims).  Empty when the array was
  /// declared without a shape (treated as one-dimensional).
  std::vector<pset::LinExpr> shape;
  /// Read map Z^6 -> Z^d; may be an over-approximation (exact() == false).
  pset::Map read;
  /// Write map Z^6 -> Z^d; guaranteed exact and thread-injective.
  pset::Map write;
  /// The static model could not capture the writes: the runtime must
  /// collect them by instrumented execution (paper Section 11).
  bool writeInstrumented = false;
  /// The read map is the array's whole extent (conservative fallback).
  bool readWholeArray = false;
  /// May-access tier (indirect subscripts, AnalysisOptions::allowMayAccess).
  /// readMayAccess: `read` is the whole-extent over-approximation of an
  /// unprovable read; the runtime may tighten it per launch with the
  /// inspector–executor.  writeMayAccess: `write` is empty and the runtime
  /// derives the written ranges from observed execution, merging
  /// owner-writes in ascending device order (Functional mode only).
  bool readMayAccess = false;
  bool writeMayAccess = false;
  /// Demotion diagnostic: why the access left the affine tier ("<reason> on
  /// '<param>'", naming the subscript expression).  Empty without demotion.
  std::string mayAccessWhy;

  bool hasReads() const { return !read.isEmpty(); }
  bool hasWrites() const { return !write.isEmpty(); }
  std::size_t rank() const { return shape.empty() ? 1 : shape.size(); }
};

struct KernelModel {
  std::string kernel;
  PartitionStrategy strategy = PartitionStrategy::SplitX;
  std::vector<ParamInfo> params;
  std::vector<ArrayModel> arrays;
  /// Axes whose blockIdx the kernel never reads.  Such kernels duplicate
  /// work across blocks in that axis, so the model is only valid for
  /// launches with gridDim == 1 there; the runtime validates this.
  std::array<bool, 3> requiresUnitGrid{false, false, false};
  /// Same for threadIdx: axes the kernel ignores require blockDim == 1.
  std::array<bool, 3> requiresUnitBlock{false, false, false};

  /// The model parameter space (set space, no dims).
  pset::Space paramSpace() const;

  /// Returns the array model for a given kernel argument, or nullptr.
  const ArrayModel* arrayFor(std::size_t argIndex) const;

  json::Value toJson() const;
  static KernelModel fromJson(const json::Value& v);
};

/// An application's models keyed by kernel name (the on-disk artifact that
/// pass 1 writes and pass 2 reads; paper Section 4.1: "the application model
/// is saved to disk").
struct ApplicationModel {
  std::vector<KernelModel> kernels;

  const KernelModel* find(const std::string& name) const;

  json::Value toJson() const;
  static ApplicationModel fromJson(const json::Value& v);

  void saveTo(const std::string& path) const;
  static ApplicationModel loadFrom(const std::string& path);
};

/// Builds the model parameter space for a kernel.
pset::Space modelParamSpace(const ir::Kernel& kernel);

/// Builds the Z^6 -> Z^d map space for an array of rank `d`.
pset::Space accessMapSpace(const pset::Space& paramSpace, std::size_t rank);

}  // namespace polypart::analysis
