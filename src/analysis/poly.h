#pragma once

// Polynomial abstract domain for the access analysis (paper Section 4.1).
//
// Index expressions in CUDA kernels are polynomials over thread coordinates,
// scalar arguments, and loop variables: the global thread position contains
// the non-affine product blockIdx.w * blockDim.w (Eq. 5), and flattened
// multi-dimensional indexing contributes dim*param products like row*N.
// The analysis therefore evaluates index expressions into this polynomial
// domain first, then
//   1. rewrites blockIdx.w * blockDim.w into the fresh blockOff.w dimension
//      (Eq. 6), and
//   2. delinearizes remaining dim*param products against the declared array
//      shape,
// after which every subscript must be affine to enter the polyhedral model.

#include <compare>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "support/arith.h"

namespace polypart::analysis {

/// Basis variable of the polynomial domain.
///
/// For Tid/Bid/Boff, `index` is the axis (0 = x, 1 = y, 2 = z).  For Param it
/// is the index into the model parameter space (0..2 blockDim x/y/z, 3..5
/// gridDim x/y/z, 6.. scalar kernel arguments).  For Loop it is the loop
/// depth at the access.
struct PVar {
  enum class Kind : unsigned char { Tid, Bid, Boff, Param, Loop };
  Kind kind;
  unsigned index;

  auto operator<=>(const PVar&) const = default;
};

/// Product of basis variables, kept sorted; the empty monomial is the
/// constant term.
using Monomial = std::vector<PVar>;

/// Sparse multivariate polynomial with 64-bit integer coefficients.
class Poly {
 public:
  Poly() = default;

  static Poly constant(i64 c);
  static Poly var(PVar v);

  bool isZero() const { return terms_.empty(); }
  std::optional<i64> asConstant() const;

  Poly operator+(const Poly& o) const;
  Poly operator-(const Poly& o) const;
  Poly operator*(const Poly& o) const;
  Poly operator-() const;

  const std::map<Monomial, i64>& terms() const { return terms_; }

  /// Applies Eq. (6): every monomial containing both Bid(w) and the
  /// blockDim parameter of axis w has that pair replaced by Boff(w),
  /// repeatedly until no such pair remains.
  Poly substituteBlockOffsets() const;

  /// True when every monomial has degree <= 1 (affine over all basis vars,
  /// parameters included).
  bool isAffine() const;

  /// Splits the polynomial into (quotient, remainder) by a divisor monomial
  /// with coefficient: terms divisible by `stride` contribute to the
  /// quotient.  Used by delinearization.  (DivResult is defined after the
  /// class because it holds Poly by value.)
  struct DivResult;
  DivResult divideByMonomial(const Monomial& stride, i64 coef) const;

  /// Is the polynomial a single monomial (stride candidate)?  Returns the
  /// monomial and coefficient.
  std::optional<std::pair<Monomial, i64>> asSingleTerm() const;

  std::string str() const;

 private:
  void addTerm(Monomial m, i64 c);
  std::map<Monomial, i64> terms_;
};

struct Poly::DivResult {
  Poly quotient;
  Poly remainder;
};

/// Delinearizes a flat index polynomial against a shape whose dimensions are
/// single-term polynomials (constants, scalar parameters, or products).
/// Returns the subscript polynomials (outermost first) or nullopt when the
/// factorization fails or leaves a non-affine subscript.
std::optional<std::vector<Poly>> delinearize(const Poly& flatIndex,
                                             const std::vector<Poly>& shape);

}  // namespace polypart::analysis
