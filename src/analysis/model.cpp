#include "analysis/model.h"

#include "support/str.h"

namespace polypart::analysis {

using pset::BasicSet;
using pset::Constraint;
using pset::LinExpr;
using pset::Map;
using pset::Space;

const char* strategyName(PartitionStrategy s) {
  switch (s) {
    case PartitionStrategy::SplitX: return "x";
    case PartitionStrategy::SplitY: return "y";
    case PartitionStrategy::SplitZ: return "z";
  }
  return "?";
}

namespace {

PartitionStrategy strategyFromName(const std::string& s) {
  if (s == "x") return PartitionStrategy::SplitX;
  if (s == "y") return PartitionStrategy::SplitY;
  if (s == "z") return PartitionStrategy::SplitZ;
  throw ModelFormatError("unknown partition strategy: " + s);
}

json::Value rowToJson(const LinExpr& e) {
  json::Value arr = json::Value::array();
  for (const i64 v : e.row()) arr.push(v);
  return arr;
}

LinExpr rowFromJson(const json::Value& v, std::size_t cols) {
  const json::Array& a = v.asArray();
  if (a.size() != cols) throw ModelFormatError("constraint row width mismatch");
  LinExpr e;
  e.row().resize(cols);
  for (std::size_t i = 0; i < cols; ++i) e.row()[i] = a[i].asInt();
  return e;
}

json::Value mapToJson(const Map& m) {
  json::Value out = json::Value::object();
  json::Value ins = json::Value::array();
  for (const std::string& n : m.space().inNames()) ins.push(n);
  json::Value outs = json::Value::array();
  for (const std::string& n : m.space().outNames()) outs.push(n);
  out["in"] = std::move(ins);
  out["out"] = std::move(outs);
  out["exact"] = m.exact();
  json::Value parts = json::Value::array();
  for (const BasicSet& bs : m.parts()) {
    json::Value cons = json::Value::array();
    for (const Constraint& c : bs.constraints()) {
      json::Value cv = json::Value::object();
      cv["eq"] = c.isEquality;
      cv["row"] = rowToJson(c.expr);
      cons.push(std::move(cv));
    }
    parts.push(std::move(cons));
  }
  out["parts"] = std::move(parts);
  return out;
}

Map mapFromJson(const json::Value& v, const Space& paramSpace) {
  std::vector<std::string> ins, outs;
  for (const json::Value& n : v.at("in").asArray()) ins.push_back(n.asString());
  for (const json::Value& n : v.at("out").asArray()) outs.push_back(n.asString());
  Space space = Space::map(paramSpace.paramNames(), std::move(ins), std::move(outs));
  Map m(space);
  if (!v.at("exact").asBool()) m.markInexact();
  for (const json::Value& pv : v.at("parts").asArray()) {
    BasicSet bs(space);
    for (const json::Value& cv : pv.asArray()) {
      bs.add(Constraint{rowFromJson(cv.at("row"), space.cols()),
                        cv.at("eq").asBool()});
    }
    m.addPart(std::move(bs));
  }
  return m;
}

}  // namespace

Space modelParamSpace(const ir::Kernel& kernel) {
  std::vector<std::string> params = {"bdx", "bdy", "bdz", "gdx", "gdy", "gdz"};
  for (const ir::Param& p : kernel.params())
    if (!p.isArray && p.type == ir::Type::I64) params.push_back(p.name);
  return Space::set(std::move(params), {});
}

Space accessMapSpace(const Space& paramSpace, std::size_t rank) {
  std::vector<std::string> outs;
  for (std::size_t i = 0; i < rank; ++i) outs.push_back("a" + std::to_string(i));
  return Space::map(paramSpace.paramNames(),
                    {"box", "boy", "boz", "bx", "by", "bz"}, std::move(outs));
}

Space KernelModel::paramSpace() const {
  std::vector<std::string> names = {"bdx", "bdy", "bdz", "gdx", "gdy", "gdz"};
  for (const ParamInfo& p : params)
    if (!p.isArray && p.type == ir::Type::I64) names.push_back(p.name);
  return Space::set(std::move(names), {});
}

const ArrayModel* KernelModel::arrayFor(std::size_t argIndex) const {
  for (const ArrayModel& a : arrays)
    if (a.argIndex == argIndex) return &a;
  return nullptr;
}

json::Value KernelModel::toJson() const {
  json::Value out = json::Value::object();
  out["kernel"] = kernel;
  out["strategy"] = strategyName(strategy);
  json::Value unitGrid = json::Value::array();
  for (bool b : requiresUnitGrid) unitGrid.push(b);
  out["requires_unit_grid"] = std::move(unitGrid);
  json::Value unitBlock = json::Value::array();
  for (bool b : requiresUnitBlock) unitBlock.push(b);
  out["requires_unit_block"] = std::move(unitBlock);

  json::Value ps = json::Value::array();
  for (const ParamInfo& p : params) {
    json::Value pv = json::Value::object();
    pv["name"] = p.name;
    pv["kind"] = p.isArray ? "array" : "scalar";
    pv["type"] = ir::typeName(p.type);
    if (p.modelParamIndex != static_cast<std::size_t>(-1))
      pv["param_index"] = static_cast<i64>(p.modelParamIndex);
    ps.push(std::move(pv));
  }
  out["params"] = std::move(ps);

  json::Value as = json::Value::array();
  for (const ArrayModel& a : arrays) {
    json::Value av = json::Value::object();
    av["arg"] = static_cast<i64>(a.argIndex);
    av["name"] = a.name;
    av["elem"] = ir::typeName(a.elemType);
    json::Value shape = json::Value::array();
    for (const LinExpr& s : a.shape) shape.push(rowToJson(s));
    av["shape"] = std::move(shape);
    av["read"] = mapToJson(a.read);
    av["write"] = mapToJson(a.write);
    av["write_instrumented"] = a.writeInstrumented;
    av["read_whole_array"] = a.readWholeArray;
    av["read_may_access"] = a.readMayAccess;
    av["write_may_access"] = a.writeMayAccess;
    if (!a.mayAccessWhy.empty()) av["may_access_why"] = a.mayAccessWhy;
    as.push(std::move(av));
  }
  out["arrays"] = std::move(as);
  return out;
}

KernelModel KernelModel::fromJson(const json::Value& v) {
  KernelModel m;
  m.kernel = v.at("kernel").asString();
  m.strategy = strategyFromName(v.at("strategy").asString());
  const json::Array& unit = v.at("requires_unit_grid").asArray();
  if (unit.size() != 3) throw ModelFormatError("requires_unit_grid must have 3 entries");
  for (std::size_t i = 0; i < 3; ++i) m.requiresUnitGrid[i] = unit[i].asBool();
  const json::Array& unitB = v.at("requires_unit_block").asArray();
  if (unitB.size() != 3) throw ModelFormatError("requires_unit_block must have 3 entries");
  for (std::size_t i = 0; i < 3; ++i) m.requiresUnitBlock[i] = unitB[i].asBool();

  for (const json::Value& pv : v.at("params").asArray()) {
    ParamInfo p;
    p.name = pv.at("name").asString();
    p.isArray = pv.at("kind").asString() == "array";
    p.type = pv.at("type").asString() == "i64" ? ir::Type::I64 : ir::Type::F64;
    if (const json::Value* idx = pv.asObject().find("param_index"))
      p.modelParamIndex = static_cast<std::size_t>(idx->asInt());
    m.params.push_back(std::move(p));
  }

  Space paramSpace = m.paramSpace();
  for (const json::Value& av : v.at("arrays").asArray()) {
    ArrayModel a;
    a.argIndex = static_cast<std::size_t>(av.at("arg").asInt());
    a.name = av.at("name").asString();
    a.elemType = av.at("elem").asString() == "i64" ? ir::Type::I64 : ir::Type::F64;
    for (const json::Value& sv : av.at("shape").asArray())
      a.shape.push_back(rowFromJson(sv, paramSpace.cols()));
    a.read = mapFromJson(av.at("read"), paramSpace);
    a.write = mapFromJson(av.at("write"), paramSpace);
    a.writeInstrumented = av.at("write_instrumented").asBool();
    a.readWholeArray = av.at("read_whole_array").asBool();
    // May-access fields are absent in pre-tier model files (still loadable).
    if (const json::Value* rm = av.asObject().find("read_may_access"))
      a.readMayAccess = rm->asBool();
    if (const json::Value* wm = av.asObject().find("write_may_access"))
      a.writeMayAccess = wm->asBool();
    if (const json::Value* why = av.asObject().find("may_access_why"))
      a.mayAccessWhy = why->asString();
    m.arrays.push_back(std::move(a));
  }
  return m;
}

const KernelModel* ApplicationModel::find(const std::string& name) const {
  for (const KernelModel& k : kernels)
    if (k.kernel == name) return &k;
  return nullptr;
}

json::Value ApplicationModel::toJson() const {
  json::Value out = json::Value::object();
  out["format"] = "polypart-model-v1";
  json::Value ks = json::Value::array();
  for (const KernelModel& k : kernels) ks.push(k.toJson());
  out["kernels"] = std::move(ks);
  return out;
}

ApplicationModel ApplicationModel::fromJson(const json::Value& v) {
  if (v.at("format").asString() != "polypart-model-v1")
    throw ModelFormatError("unsupported model format");
  ApplicationModel app;
  for (const json::Value& kv : v.at("kernels").asArray())
    app.kernels.push_back(KernelModel::fromJson(kv));
  return app;
}

void ApplicationModel::saveTo(const std::string& path) const {
  writeFile(path, toJson().dump(2));
}

ApplicationModel ApplicationModel::loadFrom(const std::string& path) {
  return fromJson(json::Value::parse(readFile(path)));
}

}  // namespace polypart::analysis
