#include "tool/compiler.h"

#include <chrono>

#include "ir/optimize.h"
#include "ir/transform.h"
#include "ir/verify.h"

namespace polypart::tool {

namespace {

using Clock = std::chrono::steady_clock;

double secondsSince(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// The work one device-compiler invocation performs regardless of the
/// partitioning machinery: verification, middle-end optimization, and code
/// emission.  Returns the emitted size so the compiler cannot drop the work.
std::size_t baselineCompile(const ir::Module& module) {
  std::size_t emitted = 0;
  ir::Module optimized = ir::optimizeModule(module);
  for (const ir::KernelPtr& k : optimized.kernels()) {
    ir::verify(*k);
    emitted += k->str().size();  // stand-in for machine-code emission
  }
  return emitted;
}

}  // namespace

std::unique_ptr<rt::Runtime> CompiledApplication::makeRuntime(
    rt::RuntimeConfig config) const {
  return std::make_unique<rt::Runtime>(config, model_, original_);
}

CompiledApplication Compiler::compile(const ir::Module& deviceCode,
                                      const std::string& hostSource) const {
  CompiledApplication app;
  app.original_ = deviceCode;

  // Reference: a single device-compiler invocation.  In the real toolchain
  // one gpucc run (front-end + middle-end with the analysis pass registered
  // + back-end) is the unit of work that gets duplicated; here the
  // polyhedral analysis dominates that pipeline, so the reference runs it
  // once just as a single gpucc invocation would.
  {
    auto t0 = Clock::now();
    baselineCompile(deviceCode);
    analysis::analyzeModule(deviceCode);
    app.referenceSeconds_ = secondsSince(t0);
  }

  // Pass 1: compile + analyze; only the application model survives
  // (Section 3: "other results, e.g. object files, are discarded").
  {
    auto t0 = Clock::now();
    baselineCompile(deviceCode);
    app.model_ = analysis::analyzeModule(deviceCode);
    if (!options_.modelPath.empty()) app.model_.saveTo(options_.modelPath);
    app.pass1Seconds_ = secondsSince(t0);
  }

  // Source-to-source rewrite of the host code (Section 5).
  {
    auto t0 = Clock::now();
    rewrite::Rewriter rw(options_.modelPath.empty() ? "app.model.json"
                                                    : options_.modelPath);
    app.hostSource_ = rw.rewrite(hostSource, &app.report_);
    app.rewriteSeconds_ = secondsSince(t0);
  }

  // Pass 2: compile again — the second gpucc invocation runs the same pass
  // pipeline (this duplication is the paper's 1.9x - 2.2x compile-time
  // overhead) — then clone + partition the kernels (Section 7) and generate
  // the enumerators from the reloaded model (Section 6).
  {
    auto t0 = Clock::now();
    baselineCompile(deviceCode);
    analysis::analyzeModule(deviceCode);
    analysis::ApplicationModel model =
        options_.modelPath.empty()
            ? app.model_
            : analysis::ApplicationModel::loadFrom(options_.modelPath);
    for (const ir::KernelPtr& k : deviceCode.kernels())
      app.partitioned_.addKernel(ir::partitionKernel(*k));
    for (const analysis::KernelModel& km : model.kernels) {
      std::vector<codegen::Enumerator> es = codegen::buildEnumerators(km);
      for (codegen::Enumerator& e : es) app.enumerators_.push_back(std::move(e));
    }
    app.model_ = std::move(model);
    app.pass2Seconds_ = secondsSince(t0);
  }

  return app;
}

}  // namespace polypart::tool
