#pragma once

// The compilation toolchain (paper Section 3, Figure 2).
//
// Compiling a CUDA application takes two passes of the device compiler plus
// a source-to-source rewrite of the host code:
//
//   pass 1:  compile the kernels once, run the polyhedral analysis, and save
//            the application model to disk; all other results are discarded.
//   rewrite: transform the host code to reference the multi-GPU primitives.
//   pass 2:  compile again: create the partitioned kernel clones
//            (Section 7), generate the enumerators from the model
//            (Section 6), and link against the runtime library.
//
// The duplicated device compilation is why the paper reports a compile-time
// increase of 1.9x - 2.2x; compileTimeRatio() measures the same quantity
// against a single reference compilation.

#include <map>
#include <string>

#include "analysis/analyze.h"
#include "codegen/enumerator.h"
#include "rewrite/rewriter.h"
#include "rt/runtime.h"

namespace polypart::tool {

struct CompileOptions {
  /// Where pass 1 persists the application model ("the application model is
  /// saved to disk", Section 4.1).  Empty keeps the model in memory only.
  std::string modelPath;
};

/// Everything pass 2 produces: the model, the partitioned kernels, the
/// generated enumerators, and the rewritten host source.
class CompiledApplication {
 public:
  const analysis::ApplicationModel& model() const { return model_; }
  const ir::Module& originalKernels() const { return original_; }
  const ir::Module& partitionedKernels() const { return partitioned_; }
  const std::string& rewrittenHostSource() const { return hostSource_; }
  const rewrite::RewriteReport& rewriteReport() const { return report_; }
  const std::vector<codegen::Enumerator>& enumerators() const { return enumerators_; }

  double pass1Seconds() const { return pass1Seconds_; }
  double rewriteSeconds() const { return rewriteSeconds_; }
  double pass2Seconds() const { return pass2Seconds_; }
  double referenceCompileSeconds() const { return referenceSeconds_; }

  /// Total toolchain time over a single reference compilation — the paper's
  /// compile-time overhead metric (Section 3: 1.9x - 2.2x).
  double compileTimeRatio() const {
    return (pass1Seconds_ + rewriteSeconds_ + pass2Seconds_) / referenceSeconds_;
  }

  /// Instantiates the runtime for this application ("linking" of Figure 2).
  std::unique_ptr<rt::Runtime> makeRuntime(rt::RuntimeConfig config) const;

 private:
  friend class Compiler;
  analysis::ApplicationModel model_;
  ir::Module original_;
  ir::Module partitioned_;
  std::string hostSource_;
  rewrite::RewriteReport report_;
  std::vector<codegen::Enumerator> enumerators_;
  double pass1Seconds_ = 0;
  double rewriteSeconds_ = 0;
  double pass2Seconds_ = 0;
  double referenceSeconds_ = 0;
};

class Compiler {
 public:
  explicit Compiler(CompileOptions options = {}) : options_(std::move(options)) {}

  /// Runs the full pipeline on one application (device module + host source).
  CompiledApplication compile(const ir::Module& deviceCode,
                              const std::string& hostSource) const;

 private:
  CompileOptions options_;
};

}  // namespace polypart::tool
