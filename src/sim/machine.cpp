#include "sim/machine.h"

#include <algorithm>
#include <cstring>
#include <limits>

#include "support/error.h"
#include "support/trace.h"

namespace polypart::sim {

Machine::Machine(MachineSpec spec, ExecutionMode mode)
    : spec_(spec), mode_(mode), devices_(static_cast<std::size_t>(spec.numDevices)) {
  PP_ASSERT(spec.numDevices >= 1);
  const std::size_t n = static_cast<std::size_t>(spec.numDevices);
  peerLinkReady_.assign(n * n, 0);
  peerLinkBusy_.assign(n * n, 0);
}

double Machine::linkBusySeconds(int src, int dst) const {
  PP_ASSERT(src >= 0 && src < spec_.numDevices && dst >= 0 &&
            dst < spec_.numDevices);
  return peerLinkBusy_[static_cast<std::size_t>(src) *
                           static_cast<std::size_t>(spec_.numDevices) +
                       static_cast<std::size_t>(dst)];
}

void Machine::setTracer(trace::Tracer* tracer) {
  tracer_ = tracer;
  if (tracer == nullptr) return;
  tracer->nameSimTrack(kSimHostTrack, "host resolution (modeled)");
  for (int d = 0; d < spec_.numDevices; ++d) {
    const std::string dev = "gpu" + std::to_string(d);
    tracer->nameSimTrack(simComputeTrack(d), dev + " compute");
    tracer->nameSimTrack(simCopyInTrack(d), dev + " copy-in");
    tracer->nameSimTrack(simCopyOutTrack(d), dev + " copy-out");
  }
}

void Machine::advanceHost(double seconds) {
  PP_ASSERT(seconds >= 0);
  hostNow_ += seconds;
}

void Machine::chargeApiCall() {
  hostNow_ += spec_.host.apiOverhead;
  ++stats_.apiCalls;
}

double Machine::completionTime() const {
  double t = std::max(hostNow_, fabricReady_);
  for (const Device& d : devices_) {
    t = std::max(t, d.computeReady);
    t = std::max(t, d.copyInReady);
    t = std::max(t, d.copyOutReady);
  }
  return t;
}

void Machine::synchronizeAll() {
  chargeApiCall();
  hostNow_ = completionTime();
}

Machine::Storage& Machine::storage(DevBuffer b) {
  PP_ASSERT(b.valid() && b.device < spec_.numDevices);
  Device& d = devices_[static_cast<std::size_t>(b.device)];
  PP_ASSERT(b.id < d.buffers.size() && d.buffers[b.id].live);
  return d.buffers[b.id];
}

const Machine::Storage& Machine::storage(DevBuffer b) const {
  return const_cast<Machine*>(this)->storage(b);
}

void Machine::failDevice(int device) {
  PP_ASSERT(device >= 0 && device < spec_.numDevices);
  Device& d = devices_[static_cast<std::size_t>(device)];
  PP_ASSERT_MSG(!d.failed, "device already failed");
  d.failed = true;
  // Poison, don't clear: a failed device's memory is gone, and any read of
  // lost data must produce visibly wrong results rather than silently stale
  // ones.  Handles stay live so the runtime can release them during recovery.
  if (mode_ == ExecutionMode::Functional) {
    for (Storage& s : d.buffers) {
      if (!s.live) continue;
      std::fill(s.data.begin(), s.data.end(),
                std::numeric_limits<double>::quiet_NaN());
    }
  }
}

bool Machine::deviceFailed(int device) const {
  PP_ASSERT(device >= 0 && device < spec_.numDevices);
  return devices_[static_cast<std::size_t>(device)].failed;
}

int Machine::liveDeviceCount() const {
  int n = 0;
  for (const Device& d : devices_)
    if (!d.failed) ++n;
  return n;
}

double Machine::kernelBusySecondsForDevice(int device) const {
  PP_ASSERT(device >= 0 && device < spec_.numDevices);
  return devices_[static_cast<std::size_t>(device)].kernelBusy;
}

DevBuffer Machine::alloc(int device, i64 bytes) {
  PP_ASSERT(device >= 0 && device < spec_.numDevices && bytes >= 0);
  PP_ASSERT_MSG(!devices_[static_cast<std::size_t>(device)].failed,
                "alloc on a failed device");
  chargeApiCall();
  Device& d = devices_[static_cast<std::size_t>(device)];
  Storage s;
  s.bytes = bytes;
  s.live = true;
  if (mode_ == ExecutionMode::Functional)
    s.data.assign(static_cast<std::size_t>((bytes + 7) / 8), 0.0);
  // Reuse a dead slot when available.
  for (std::size_t i = 0; i < d.buffers.size(); ++i) {
    if (!d.buffers[i].live) {
      d.buffers[i] = std::move(s);
      return DevBuffer{device, i};
    }
  }
  d.buffers.push_back(std::move(s));
  return DevBuffer{device, d.buffers.size() - 1};
}

void Machine::free(DevBuffer b) {
  chargeApiCall();
  Storage& s = storage(b);
  s.live = false;
  s.data.clear();
  s.data.shrink_to_fit();
}

i64 Machine::bufferBytes(DevBuffer b) const { return storage(b).bytes; }

void* Machine::bufferData(DevBuffer b) {
  PP_ASSERT_MSG(mode_ == ExecutionMode::Functional,
                "buffer contents exist only in Functional mode");
  return storage(b).data.data();
}

double Machine::reserveFabric(double earliestStart, double bytes) {
  // The shared fabric caps aggregate transfer throughput: each transfer
  // appends its byte time to a backlog that drains from the current host
  // time onward.  A transfer may start no earlier than the backlog position,
  // but a transfer that is late for other reasons (busy destination engine)
  // does not block the fabric for others — only byte time accumulates.
  double avail = std::max(fabricReady_, hostNow_);
  fabricReady_ = avail + bytes / spec_.fabricBandwidth;
  return std::max(earliestStart, avail);
}

double Machine::modeledBytes(i64 storageBytes) const {
  // Functional storage is 8 bytes per element while the modeled workloads
  // are single-precision; timing and byte counters use the modeled width.
  return static_cast<double>(storageBytes) * (spec_.bytesPerElement / 8.0);
}

void Machine::copyHostToDevice(DevBuffer dst, i64 dstOff, const void* src, i64 bytes) {
  chargeApiCall();
  if (bytes <= 0) return;
  PP_ASSERT_MSG(!devices_[static_cast<std::size_t>(dst.device)].failed,
                "copy to a failed device");
  Storage& s = storage(dst);
  PP_ASSERT(dstOff >= 0 && dstOff + bytes <= s.bytes);
  if (mode_ == ExecutionMode::Functional && src != nullptr)
    std::memcpy(reinterpret_cast<char*>(s.data.data()) + dstOff, src,
                static_cast<std::size_t>(bytes));
  Device& d = devices_[static_cast<std::size_t>(dst.device)];
  double mb = modeledBytes(bytes);
  double start = reserveFabric(std::max(hostNow_, d.copyInReady), mb);
  double duration = spec_.hostLink.latency + mb / spec_.hostLink.bandwidth;
  d.copyInReady = start + duration;
  stats_.transferBusySeconds += duration;
  ++stats_.transfers;
  stats_.bytesHostToDevice += mb;
  trace::simSpan(tracer_, "sim.copy", "h2d", simCopyInTrack(dst.device), start,
                 duration, {{"dst", dst.device}, {"bytes", bytes}});
}

void Machine::copyDeviceToHost(void* dst, DevBuffer src, i64 srcOff, i64 bytes) {
  chargeApiCall();
  if (bytes <= 0) return;
  PP_ASSERT_MSG(!devices_[static_cast<std::size_t>(src.device)].failed,
                "copy from a failed device");
  Storage& s = storage(src);
  PP_ASSERT(srcOff >= 0 && srcOff + bytes <= s.bytes);
  if (mode_ == ExecutionMode::Functional && dst != nullptr)
    std::memcpy(dst, reinterpret_cast<const char*>(s.data.data()) + srcOff,
                static_cast<std::size_t>(bytes));
  Device& d = devices_[static_cast<std::size_t>(src.device)];
  double mb = modeledBytes(bytes);
  double start = reserveFabric(std::max(hostNow_, d.copyOutReady), mb);
  double duration = spec_.hostLink.latency + mb / spec_.hostLink.bandwidth;
  d.copyOutReady = start + duration;
  stats_.transferBusySeconds += duration;
  ++stats_.transfers;
  stats_.bytesDeviceToHost += mb;
  trace::simSpan(tracer_, "sim.copy", "d2h", simCopyOutTrack(src.device), start,
                 duration, {{"src", src.device}, {"bytes", bytes}});
}

double Machine::copyPeer(DevBuffer dst, i64 dstOff, DevBuffer src, i64 srcOff,
                         i64 bytes, double notBefore) {
  chargeApiCall();
  if (bytes <= 0) return hostNow_;
  PP_ASSERT_MSG(!devices_[static_cast<std::size_t>(dst.device)].failed &&
                    !devices_[static_cast<std::size_t>(src.device)].failed,
                "peer copy touching a failed device");
  Storage& sd = storage(dst);
  Storage& ss = storage(src);
  PP_ASSERT(dstOff >= 0 && dstOff + bytes <= sd.bytes);
  PP_ASSERT(srcOff >= 0 && srcOff + bytes <= ss.bytes);
  if (mode_ == ExecutionMode::Functional)
    std::memcpy(reinterpret_cast<char*>(sd.data.data()) + dstOff,
                reinterpret_cast<const char*>(ss.data.data()) + srcOff,
                static_cast<std::size_t>(bytes));
  // A peer transfer is driven by the destination's DMA engine
  // (cudaMemcpyPeerAsync semantics): the source's memory is read directly,
  // its copy engine stays free.  Aggregate pressure is captured by the
  // shared fabric.  With spec_.modelPeerLinks the topology is tighter: the
  // directed link serializes its own transfers, and the source's copy-out
  // engine is occupied streaming its memory out.
  Device& dDst = devices_[static_cast<std::size_t>(dst.device)];
  Device& dSrc = devices_[static_cast<std::size_t>(src.device)];
  const std::size_t link = static_cast<std::size_t>(src.device) *
                               static_cast<std::size_t>(spec_.numDevices) +
                           static_cast<std::size_t>(dst.device);
  double mb = modeledBytes(bytes);
  double duration = spec_.peerLink.latency + mb / spec_.peerLink.bandwidth;
  double start = std::max({hostNow_, dDst.copyInReady, notBefore});
  if (spec_.modelPeerLinks)
    start = std::max({start, dSrc.copyOutReady, peerLinkReady_[link]});
  if (deviceOrdering_)
    // No global barrier ordered this copy after the kernels that produced
    // (src) or consumed (dst) the bytes; wait on both compute engines, and
    // occupy the source's copy-out engine so a later kernel there cannot be
    // modeled to overwrite memory still streaming out (see setDeviceOrdering).
    start = std::max({start, dSrc.computeReady, dDst.computeReady,
                      dSrc.copyOutReady});
  start = reserveFabric(start, mb);
  dDst.copyInReady = start + duration;
  if (spec_.modelPeerLinks || deviceOrdering_) dSrc.copyOutReady = start + duration;
  if (spec_.modelPeerLinks) peerLinkReady_[link] = start + duration;
  peerLinkBusy_[link] += duration;
  stats_.transferBusySeconds += duration;
  ++stats_.transfers;
  stats_.bytesPeerToPeer += mb;
  trace::simSpan(tracer_, "sim.copy", "p2p", simCopyInTrack(dst.device), start,
                 duration,
                 {{"src", src.device}, {"dst", dst.device}, {"bytes", bytes}});
  return start + duration;
}

void Machine::setLaunchTag(int tag) {
  PP_ASSERT_MSG(tag >= 0, "launch tags are non-negative client ordinals");
  launchTag_ = tag;
}

double Machine::kernelBusySecondsForTag(int tag) const {
  if (tag < 0 || tag >= static_cast<int>(kernelBusyByTag_.size())) return 0.0;
  return kernelBusyByTag_[static_cast<std::size_t>(tag)];
}

double Machine::launchKernel(int device, const ir::Kernel& kernel,
                             const ir::LaunchConfig& cfg,
                             std::span<const KernelArg> args,
                             const LaunchOptions& options) {
  PP_ASSERT(device >= 0 && device < spec_.numDevices);
  PP_ASSERT_MSG(!devices_[static_cast<std::size_t>(device)].failed,
                "kernel launch on a failed device");
  chargeApiCall();
  ++stats_.kernelLaunches;

  // Bind arguments for the interpreter / cost model.
  std::vector<ir::ArgValue> bound;
  bound.reserve(args.size());
  for (const KernelArg& a : args) {
    if (a.isBuffer) {
      PP_ASSERT_MSG(a.buffer.device == device,
                    "kernel argument buffer lives on a different device");
      Storage& s = storage(a.buffer);
      void* data = mode_ == ExecutionMode::Functional ? s.data.data() : nullptr;
      bound.push_back(ir::ArgValue::ofBuffer(data, s.bytes / 8));
    } else {
      bound.push_back(ir::ArgValue{a.scalar, nullptr, 0});
    }
  }

  // Timing: per-thread cost scaled by thread count, roofline-style.  A
  // heterogeneous spec (MachineSpec::perDevice) gives each device its own
  // throughput numbers.
  const DeviceSpec& dev = spec_.deviceSpec(device);
  ir::ThreadCost tc = ir::estimateThreadCost(kernel, cfg, bound);
  double threads = static_cast<double>(cfg.grid.count()) *
                   static_cast<double>(cfg.block.count());
  double flopTime = tc.flops * threads / dev.flops;
  // Loads are divided by the kernel's declared on-chip reuse (tiling /
  // cache hits); stores always reach DRAM.
  double memTime = (tc.loads / kernel.loadReuse() + tc.stores) * threads *
                   spec_.bytesPerElement / dev.memBandwidth;
  double duration =
      dev.launchLatency + options.costMultiplier * std::max(flopTime, memTime);

  Device& d = devices_[static_cast<std::size_t>(device)];
  double start = std::max(hostNow_, d.computeReady);
  if (deviceOrdering_)
    // Without the global barriers, in-flight copies into/out of this device
    // carry the launch's RAW/WAR edges (see setDeviceOrdering).
    start = std::max({start, d.copyInReady, d.copyOutReady});
  d.computeReady = start + duration;
  stats_.kernelBusySeconds += duration;
  d.kernelBusy += duration;
  if (launchTag_ >= static_cast<int>(kernelBusyByTag_.size()))
    kernelBusyByTag_.resize(static_cast<std::size_t>(launchTag_) + 1, 0.0);
  kernelBusyByTag_[static_cast<std::size_t>(launchTag_)] += duration;
  trace::simSpan(tracer_, "sim.kernel", kernel.name(), simComputeTrack(device),
                 start, duration,
                 {{"device", device},
                  {"blocks", cfg.grid.count()},
                  {"tenant", launchTag_}});

  if (mode_ == ExecutionMode::Functional)
    ir::execute(kernel, cfg, bound,
                options.observer ? *options.observer : ir::AccessObserver());
  return start + duration;
}

}  // namespace polypart::sim
