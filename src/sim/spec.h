#pragma once

// Performance model of the simulated multi-GPU node.
//
// The paper evaluates on a Supermicro X10DRG with eight NVIDIA K80 boards
// (16 GK210 GPUs) on PCIe (Section 9).  No such machine is available here,
// so the simulator reproduces its first-order behaviour: per-GPU compute
// and memory throughput, per-link bandwidth and latency, and host-side API
// call overhead.  k80Node() carries the calibrated defaults; absolute times
// are approximate by design — the reproduction targets speedup *shapes*,
// not wall-clock equality (see EXPERIMENTS.md).

#include <vector>

#include "support/arith.h"

namespace polypart::sim {

struct DeviceSpec {
  double flops = 1.2e12;         // sustained FLOP/s per GPU (GK210, fp32)
  double memBandwidth = 160e9;   // sustained GB/s of device memory
  double launchLatency = 8e-6;   // device-side launch latency (s)
};

struct LinkSpec {
  double bandwidth = 10e9;  // B/s per direction (PCIe gen3 x16, effective)
  double latency = 25e-6;   // per-transfer latency (s)
};

struct HostSpec {
  double apiOverhead = 6e-6;  // host time consumed per driver API call (s)
};

struct MachineSpec {
  int numDevices = 1;
  DeviceSpec device;
  LinkSpec hostLink{10e9, 20e-6};  // host <-> device
  LinkSpec peerLink{8e9, 80e-6};   // device <-> device (two switch hops + P2P setup)
  HostSpec host;
  /// Aggregate bandwidth of the PCIe fabric shared by *all* transfers
  /// (host links and peer links).  Models root-complex/QPI contention on
  /// the paper's dual-socket 8x K80 node: individual links reach their own
  /// bandwidth, but the sum across concurrent transfers cannot exceed this.
  double fabricBandwidth = 15e9;

  /// Models peer-to-peer topology contention beyond the shared fabric: each
  /// directed (src, dst) link is a serial resource, and a peer read also
  /// occupies the source's copy-out engine (its memory is being streamed
  /// out, like a D2H gather would).  Off by default — the seed model charges
  /// only the destination's copy-in engine plus the fabric, which makes a
  /// one-to-many broadcast from a single owner look free on the source side.
  /// The transfer scheduler's link-spreading and broadcast chaining are
  /// observable in modeled time only with this on (bench/transfer_scheduler).
  bool modelPeerLinks = false;

  /// Bytes per modeled array element for the timing model.  The paper's
  /// benchmarks are single-precision, so kernels move 4 bytes per element
  /// even though functional storage uses 8-byte doubles.
  double bytesPerElement = 4.0;

  /// Per-device spec overrides for heterogeneous nodes (mixed GPU
  /// generations).  Devices beyond the vector's length — including all of
  /// them when it is empty, the homogeneous default — use `device`.
  std::vector<DeviceSpec> perDevice;

  const DeviceSpec& deviceSpec(int d) const {
    return static_cast<std::size_t>(d) < perDevice.size() ? perDevice[d]
                                                          : device;
  }

  /// The paper's testbed: K80-class GPUs behind PCIe switches.
  static MachineSpec k80Node(int gpus) {
    MachineSpec s;
    s.numDevices = gpus;
    return s;
  }
};

}  // namespace polypart::sim
