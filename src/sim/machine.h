#pragma once

// The multi-GPU machine simulator.
//
// Functional state and timing are decoupled, the standard full-system
// simulator design: operations execute eagerly in host issue order (so
// results are exact), while completion times are computed against per-engine
// availability — one compute engine and one copy engine per direction per
// device, mirroring how CUDA overlaps kernels with DMA transfers.
//
// In TimingOnly mode no bytes move and kernels do not execute; durations
// come from the static cost model (ir/cost.h).  Benches use TimingOnly to
// run the paper's full problem sizes; correctness tests use Functional.

#include <optional>
#include <vector>

#include "ir/cost.h"
#include "ir/interp.h"
#include "sim/spec.h"

namespace polypart::trace {
class Tracer;
}

namespace polypart::sim {

// Sim-domain trace tracks (trace.h pid 2): one per engine, plus track 0 for
// the host-side dependency-resolution cost the runtime models.
inline constexpr int kSimHostTrack = 0;
inline constexpr int simComputeTrack(int device) { return 1 + 3 * device; }
inline constexpr int simCopyInTrack(int device) { return 2 + 3 * device; }
inline constexpr int simCopyOutTrack(int device) { return 3 + 3 * device; }

enum class ExecutionMode { Functional, TimingOnly };

/// Handle to a device-memory allocation.
struct DevBuffer {
  int device = -1;
  std::size_t id = static_cast<std::size_t>(-1);
  bool valid() const { return device >= 0; }
};

/// Argument for a simulated kernel launch.
struct KernelArg {
  ir::Value scalar;
  DevBuffer buffer;
  bool isBuffer = false;

  static KernelArg ofInt(i64 v) { return {ir::Value::ofInt(v), {}, false}; }
  static KernelArg ofFloat(double v) { return {ir::Value::ofFloat(v), {}, false}; }
  static KernelArg ofBuffer(DevBuffer b) { return {{}, b, true}; }
};

/// Options for one simulated kernel launch.
struct LaunchOptions {
  /// Invoked on every global access during Functional execution (used by
  /// the instrumented-write fallback, paper Section 11 future work).
  const ir::AccessObserver* observer = nullptr;
  /// Scales the modeled kernel duration (instrumented kernels pay the
  /// "significant runtime overhead" the paper attributes to dynamic
  /// write-pattern collection).
  double costMultiplier = 1.0;
};

/// Aggregate counters for the evaluation section.
struct MachineStats {
  i64 apiCalls = 0;
  i64 kernelLaunches = 0;
  i64 transfers = 0;
  /// Modeled traffic per direction.  Accumulated as double: modeled bytes
  /// are fractional when the modeled element width differs from the 8-byte
  /// storage width, and truncating per transfer would under-report workloads
  /// made of many small copies.
  double bytesHostToDevice = 0;
  double bytesDeviceToHost = 0;
  double bytesPeerToPeer = 0;
  double kernelBusySeconds = 0;    // summed across devices
  double transferBusySeconds = 0;  // summed across engines

  /// Field-wise equality (doubles compared exactly): two runs match only
  /// when their operation sequences were identical, which is what the
  /// runtime's determinism tests assert.
  bool operator==(const MachineStats&) const = default;
};

class Machine {
 public:
  Machine(MachineSpec spec, ExecutionMode mode);

  const MachineSpec& spec() const { return spec_; }
  ExecutionMode mode() const { return mode_; }
  int deviceCount() const { return spec_.numDevices; }

  // -- simulated clock -------------------------------------------------------
  /// Current host time (seconds of simulated execution).
  double now() const { return hostNow_; }
  /// Adds host-side work (e.g. dependency-resolution cost) to the clock.
  void advanceHost(double seconds);
  /// Charges one driver API call of host overhead.
  void chargeApiCall();
  /// Blocks the host until all engines of all devices are idle
  /// (cudaDeviceSynchronize semantics).
  void synchronizeAll();
  /// Completion time of all outstanding work.
  double completionTime() const;

  // -- memory ----------------------------------------------------------------
  DevBuffer alloc(int device, i64 bytes);
  void free(DevBuffer b);
  i64 bufferBytes(DevBuffer b) const;
  /// Raw storage pointer (Functional mode only).
  void* bufferData(DevBuffer b);

  /// Asynchronous copies; `bytes` counted against link bandwidth.  Offsets
  /// are in bytes.  In Functional mode data moves immediately (issue order).
  void copyHostToDevice(DevBuffer dst, i64 dstOff, const void* src, i64 bytes);
  void copyDeviceToHost(void* dst, DevBuffer src, i64 srcOff, i64 bytes);
  /// Peer copy; returns the modeled completion time of the transfer.
  /// `notBefore` is an extra lower bound on the modeled start — the transfer
  /// scheduler passes the parent copy's completion so a chained broadcast
  /// copy never reads a replica before the model says it exists.
  double copyPeer(DevBuffer dst, i64 dstOff, DevBuffer src, i64 srcOff,
                  i64 bytes, double notBefore = 0);

  /// Accumulated busy seconds of the directed peer link src -> dst (pure
  /// bookkeeping: recorded in every mode, independent of modelPeerLinks).
  double linkBusySeconds(int src, int dst) const;

  // -- kernels ----------------------------------------------------------------
  /// Launches `kernel` asynchronously on `device`.  Buffer args must live on
  /// that device.  Timing uses the static cost model; Functional mode also
  /// interprets the kernel against device storage.  Returns the modeled
  /// completion time of the kernel (the dataflow planner passes it as the
  /// `notBefore` floor of eagerly issued downstream copies).
  double launchKernel(int device, const ir::Kernel& kernel,
                      const ir::LaunchConfig& cfg, std::span<const KernelArg> args,
                      const LaunchOptions& options = {});

  /// Device-ordering mode: the relaxed dependency discipline of planned
  /// launches.  The reactive runtime brackets every launch with
  /// synchronizeAll(), so engine readiness never has to encode cross-engine
  /// hazards.  A planned launch skips those global barriers; instead, while
  /// this mode is on, (a) kernels additionally wait for their own device's
  /// copy engines (transfers into the device land before compute reads
  /// them — RAW — and transfers out drain before compute overwrites the
  /// source — WAR), and (b) peer copies additionally wait for both endpoint
  /// devices' compute (the producing kernel finished writing the bytes) and
  /// occupy the source's copy-out engine.  Per-device ordering replaces the
  /// global barrier, which is exactly what lets transfers overlap *other*
  /// devices' kernels.  Functional results are unaffected (timing only).
  void setDeviceOrdering(bool on) { deviceOrdering_ = on; }
  bool deviceOrdering() const { return deviceOrdering_; }

  const MachineStats& stats() const { return stats_; }
  void resetStats() {
    stats_ = {};
    kernelBusyByTag_.clear();
    for (Device& d : devices_) d.kernelBusy = 0;
  }

  /// Tags subsequent launchKernel() calls with a client (tenant) ordinal:
  /// the tag is attached to kernel sim spans and accumulates into a per-tag
  /// kernel busy-seconds ledger, so a multi-tenant run can attribute the one
  /// shared machine's compute time to the client that consumed it.  The
  /// default tag 0 is the single-client convention.
  void setLaunchTag(int tag);
  /// Kernel busy seconds accumulated under `tag` (0 for a tag never used).
  double kernelBusySecondsForTag(int tag) const;

  /// Attaches a tracer: every kernel and copy thereafter emits a sim-domain
  /// span on its engine's track (timestamps are simulated seconds, so the
  /// modeled compute/copy overlap is visible on a timeline).  Null detaches.
  /// Tracing never touches the clock, storage, or stats.
  void setTracer(trace::Tracer* tracer);

  // -- failure injection ------------------------------------------------------
  /// Marks `device` as failed.  Subsequent allocs, copies, and launches
  /// targeting it assert; its live Functional storage is poisoned with NaN
  /// so any read of lost data produces visibly wrong results instead of
  /// silently stale ones.  free() of its buffers stays permitted (the
  /// runtime releases handles during recovery).
  void failDevice(int device);
  bool deviceFailed(int device) const;
  /// Devices not marked failed.
  int liveDeviceCount() const;

  /// Kernel busy seconds accumulated on `device` (the load-rebalancing
  /// signal: modeled compute time actually consumed per device).
  double kernelBusySecondsForDevice(int device) const;

 private:
  struct Storage {
    i64 bytes = 0;
    std::vector<double> data;  // allocated in Functional mode only
    bool live = false;
  };
  struct Device {
    double computeReady = 0;
    double copyInReady = 0;
    double copyOutReady = 0;
    bool failed = false;
    double kernelBusy = 0;
    std::vector<Storage> buffers;
  };

  Storage& storage(DevBuffer b);
  const Storage& storage(DevBuffer b) const;
  double modeledBytes(i64 storageBytes) const;

  /// Reserves fabric time for a transfer; returns the earliest start.
  double reserveFabric(double earliestStart, double bytes);

  MachineSpec spec_;
  ExecutionMode mode_;
  double hostNow_ = 0;
  double fabricReady_ = 0;
  /// Per directed (src, dst) peer link, indexed src * numDevices + dst:
  /// ready time (used only when spec_.modelPeerLinks) and accumulated busy
  /// seconds (always recorded, for benches/tests observing link balance).
  std::vector<double> peerLinkReady_;
  std::vector<double> peerLinkBusy_;
  std::vector<Device> devices_;
  MachineStats stats_;
  bool deviceOrdering_ = false;
  int launchTag_ = 0;
  /// Kernel busy seconds per launch tag, indexed by tag (grown on demand).
  std::vector<double> kernelBusyByTag_;
  trace::Tracer* tracer_ = nullptr;
};

}  // namespace polypart::sim
