#pragma once

// Affine (linear + constant) expressions over a Space.
//
// A LinExpr is a dense row of coefficients following the Space column layout
// (constant, parameters, input dims, output dims).  All arithmetic is
// overflow-checked.
//
// Rows are stored in a SmallVec with inline capacity covering every space
// this system builds (the widest is an access map aligned to the extended
// 12-partition-parameter space), so the row combinations inside
// Fourier-Motzkin elimination never allocate.

#include <vector>

#include "pset/space.h"
#include "support/arith.h"
#include "support/small_vec.h"

namespace polypart::pset {

/// Coefficient row storage; 32 inline slots (see the header comment).
using CoeffRow = support::SmallVec<i64, 32>;

class LinExpr {
 public:
  LinExpr() = default;

  /// The zero expression for `space`.
  explicit LinExpr(const Space& space) : row_(space.cols(), 0) {}

  static LinExpr constant(const Space& space, i64 c) {
    LinExpr e(space);
    e.row_[0] = c;
    return e;
  }

  static LinExpr dim(const Space& space, DimId d, i64 coef = 1) {
    LinExpr e(space);
    e.row_[space.col(d)] = coef;
    return e;
  }

  std::size_t cols() const { return row_.size(); }
  i64 operator[](std::size_t col) const { return row_[col]; }
  i64& operator[](std::size_t col) { return row_[col]; }
  i64 constantTerm() const { return row_[0]; }

  i64 coef(const Space& space, DimId d) const { return row_[space.col(d)]; }
  void setCoef(const Space& space, DimId d, i64 v) { row_[space.col(d)] = v; }

  LinExpr& addInPlace(const LinExpr& o) {
    PP_ASSERT(o.cols() == cols());
    for (std::size_t i = 0; i < row_.size(); ++i)
      row_[i] = checkedAdd(row_[i], o.row_[i]);
    return *this;
  }

  LinExpr& subInPlace(const LinExpr& o) {
    PP_ASSERT(o.cols() == cols());
    for (std::size_t i = 0; i < row_.size(); ++i)
      row_[i] = checkedSub(row_[i], o.row_[i]);
    return *this;
  }

  LinExpr& scaleInPlace(i64 f) {
    for (auto& v : row_) v = checkedMul(v, f);
    return *this;
  }

  LinExpr& addConstant(i64 c) {
    row_[0] = checkedAdd(row_[0], c);
    return *this;
  }

  friend LinExpr operator+(LinExpr a, const LinExpr& b) { return a.addInPlace(b); }
  friend LinExpr operator-(LinExpr a, const LinExpr& b) { return a.subInPlace(b); }
  friend LinExpr operator*(LinExpr a, i64 f) { return a.scaleInPlace(f); }
  friend LinExpr operator-(LinExpr a) { return a.scaleInPlace(-1); }

  bool isZero() const {
    for (i64 v : row_) if (v != 0) return false;
    return true;
  }

  bool isConstant() const {
    for (std::size_t i = 1; i < row_.size(); ++i)
      if (row_[i] != 0) return false;
    return true;
  }

  /// Rewrites the row for a space with dimensions removed; `colMap[i]` gives
  /// the new column of old column i, or npos when dropped (must be zero).
  LinExpr remapped(const std::vector<std::size_t>& colMap, std::size_t newCols) const;

  const CoeffRow& row() const { return row_; }
  CoeffRow& row() { return row_; }

  bool operator==(const LinExpr&) const = default;

 private:
  CoeffRow row_;
};

inline LinExpr LinExpr::remapped(const std::vector<std::size_t>& colMap,
                                 std::size_t newCols) const {
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
  LinExpr out;
  out.row_.assign(newCols, 0);
  PP_ASSERT(colMap.size() == row_.size());
  for (std::size_t i = 0; i < row_.size(); ++i) {
    if (colMap[i] == npos) {
      PP_ASSERT_MSG(row_[i] == 0, "dropping a dimension with nonzero coefficient");
    } else {
      out.row_[colMap[i]] = row_[i];
    }
  }
  return out;
}

/// One affine constraint: `expr == 0` (equality) or `expr >= 0` (inequality).
struct Constraint {
  LinExpr expr;
  bool isEquality = false;

  static Constraint eq(LinExpr e) { return {std::move(e), true}; }
  static Constraint ge(LinExpr e) { return {std::move(e), false}; }

  bool operator==(const Constraint&) const = default;
};

}  // namespace polypart::pset
