#pragma once

// Dimension spaces for polyhedral sets and maps.
//
// A Space names three groups of dimensions:
//   - parameters: symbolic constants (block dimensions, scalar kernel
//     arguments, partition bounds),
//   - input dimensions: for sets these are the set dimensions; for maps the
//     domain (thread-grid coordinates),
//   - output dimensions: the map range (array subscripts); empty for sets.
//
// Constraint rows are stored over a fixed column layout:
//   column 0            : the constant term
//   columns 1..p        : parameters
//   columns p+1..p+n    : input dimensions
//   columns p+n+1..     : output dimensions

#include <cstddef>
#include <string>
#include <vector>

#include "support/error.h"

namespace polypart::pset {

enum class DimKind { Param, In, Out };

/// Identifies one dimension within a space.
struct DimId {
  DimKind kind;
  std::size_t index;

  static DimId param(std::size_t i) { return {DimKind::Param, i}; }
  static DimId in(std::size_t i) { return {DimKind::In, i}; }
  static DimId out(std::size_t i) { return {DimKind::Out, i}; }

  bool operator==(const DimId&) const = default;
};

class Space {
 public:
  Space() = default;

  /// Creates a set space: `params` and set dimensions `ins`.
  static Space set(std::vector<std::string> params, std::vector<std::string> ins) {
    Space s;
    s.params_ = std::move(params);
    s.ins_ = std::move(ins);
    return s;
  }

  /// Creates a map space.
  static Space map(std::vector<std::string> params, std::vector<std::string> ins,
                   std::vector<std::string> outs) {
    Space s;
    s.params_ = std::move(params);
    s.ins_ = std::move(ins);
    s.outs_ = std::move(outs);
    return s;
  }

  std::size_t numParams() const { return params_.size(); }
  std::size_t numIn() const { return ins_.size(); }
  std::size_t numOut() const { return outs_.size(); }
  std::size_t numDims() const { return ins_.size() + outs_.size(); }
  bool isSet() const { return outs_.empty(); }

  /// Total number of row columns including the constant column.
  std::size_t cols() const { return 1 + numParams() + numDims(); }

  /// Column index of a dimension in constraint rows.
  std::size_t col(DimId d) const {
    switch (d.kind) {
      case DimKind::Param:
        PP_ASSERT(d.index < numParams());
        return 1 + d.index;
      case DimKind::In:
        PP_ASSERT(d.index < numIn());
        return 1 + numParams() + d.index;
      case DimKind::Out:
        PP_ASSERT(d.index < numOut());
        return 1 + numParams() + numIn() + d.index;
    }
    PP_ASSERT(false);
    return 0;
  }

  /// Inverse of col() for non-constant columns.
  DimId dimAt(std::size_t column) const {
    PP_ASSERT(column >= 1 && column < cols());
    std::size_t i = column - 1;
    if (i < numParams()) return DimId::param(i);
    i -= numParams();
    if (i < numIn()) return DimId::in(i);
    return DimId::out(i - numIn());
  }

  const std::string& name(DimId d) const {
    switch (d.kind) {
      case DimKind::Param: return params_[d.index];
      case DimKind::In: return ins_[d.index];
      case DimKind::Out: return outs_[d.index];
    }
    PP_ASSERT(false);
    return params_[0];
  }

  const std::vector<std::string>& paramNames() const { return params_; }
  const std::vector<std::string>& inNames() const { return ins_; }
  const std::vector<std::string>& outNames() const { return outs_; }

  /// Index of a parameter by name, or npos.
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
  std::size_t paramIndex(const std::string& name) const {
    for (std::size_t i = 0; i < params_.size(); ++i)
      if (params_[i] == name) return i;
    return npos;
  }

  /// Returns a copy with `extra` parameters appended.
  Space addParams(const std::vector<std::string>& extra) const {
    Space s = *this;
    s.params_.insert(s.params_.end(), extra.begin(), extra.end());
    return s;
  }

  /// Returns the set space over this map's output dimensions (same params).
  Space rangeSpace() const {
    Space s;
    s.params_ = params_;
    s.ins_ = outs_;
    return s;
  }

  /// Returns the set space over this map's input dimensions (same params).
  Space domainSpace() const {
    Space s;
    s.params_ = params_;
    s.ins_ = ins_;
    return s;
  }

  bool operator==(const Space&) const = default;

 private:
  std::vector<std::string> params_;
  std::vector<std::string> ins_;
  std::vector<std::string> outs_;
};

}  // namespace polypart::pset
