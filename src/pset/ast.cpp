#include "pset/ast.h"

#include <algorithm>

#include "support/str.h"

namespace polypart::pset {

AstExpr AstExpr::constant(i64 v) {
  AstExpr e;
  e.kind_ = Kind::Const;
  e.value_ = v;
  return e;
}

AstExpr AstExpr::param(std::size_t index) {
  AstExpr e;
  e.kind_ = Kind::Param;
  e.index_ = index;
  return e;
}

AstExpr AstExpr::loopVar(std::size_t level) {
  AstExpr e;
  e.kind_ = Kind::LoopVar;
  e.index_ = level;
  return e;
}

AstExpr AstExpr::add(AstExpr a, AstExpr b) {
  if (a.isConst() && b.isConst()) return constant(checkedAdd(a.value_, b.value_));
  if (a.isConst() && a.value_ == 0) return b;
  if (b.isConst() && b.value_ == 0) return a;
  AstExpr e;
  e.kind_ = Kind::Add;
  e.kids_ = {std::move(a), std::move(b)};
  return e;
}

AstExpr AstExpr::sub(AstExpr a, AstExpr b) {
  if (a.isConst() && b.isConst()) return constant(checkedSub(a.value_, b.value_));
  if (b.isConst() && b.value_ == 0) return a;
  AstExpr e;
  e.kind_ = Kind::Sub;
  e.kids_ = {std::move(a), std::move(b)};
  return e;
}

AstExpr AstExpr::mul(AstExpr a, AstExpr b) {
  if (a.isConst() && b.isConst()) return constant(checkedMul(a.value_, b.value_));
  if (a.isConst() && a.value_ == 1) return b;
  if (b.isConst() && b.value_ == 1) return a;
  if ((a.isConst() && a.value_ == 0) || (b.isConst() && b.value_ == 0))
    return constant(0);
  AstExpr e;
  e.kind_ = Kind::Mul;
  e.kids_ = {std::move(a), std::move(b)};
  return e;
}

AstExpr AstExpr::floorDiv(AstExpr a, i64 d) {
  PP_ASSERT(d > 0);
  if (d == 1) return a;
  if (a.isConst()) return constant(polypart::floorDiv(a.value_, d));
  AstExpr e;
  e.kind_ = Kind::FloorDiv;
  e.kids_ = {std::move(a), constant(d)};
  return e;
}

AstExpr AstExpr::ceilDiv(AstExpr a, i64 d) {
  PP_ASSERT(d > 0);
  if (d == 1) return a;
  if (a.isConst()) return constant(polypart::ceilDiv(a.value_, d));
  AstExpr e;
  e.kind_ = Kind::CeilDiv;
  e.kids_ = {std::move(a), constant(d)};
  return e;
}

AstExpr AstExpr::neg(AstExpr a) {
  if (a.isConst()) return constant(checkedNeg(a.value_));
  AstExpr e;
  e.kind_ = Kind::Neg;
  e.kids_ = {std::move(a)};
  return e;
}

AstExpr AstExpr::maxOf(std::vector<AstExpr> exprs) {
  PP_ASSERT(!exprs.empty());
  if (exprs.size() == 1) return std::move(exprs[0]);
  AstExpr e;
  e.kind_ = Kind::Max;
  e.kids_ = std::move(exprs);
  return e;
}

AstExpr AstExpr::minOf(std::vector<AstExpr> exprs) {
  PP_ASSERT(!exprs.empty());
  if (exprs.size() == 1) return std::move(exprs[0]);
  AstExpr e;
  e.kind_ = Kind::Min;
  e.kids_ = std::move(exprs);
  return e;
}

bool AstExpr::independentOfLoopsFrom(std::size_t minLevel) const {
  if (kind_ == Kind::LoopVar) return index_ < minLevel;
  for (const AstExpr& k : kids_)
    if (!k.independentOfLoopsFrom(minLevel)) return false;
  return true;
}

i64 AstExpr::eval(std::span<const i64> params, std::span<const i64> loopVars) const {
  switch (kind_) {
    case Kind::Const: return value_;
    case Kind::Param:
      PP_ASSERT(index_ < params.size());
      return params[index_];
    case Kind::LoopVar:
      PP_ASSERT(index_ < loopVars.size());
      return loopVars[index_];
    case Kind::Add:
      return checkedAdd(kids_[0].eval(params, loopVars), kids_[1].eval(params, loopVars));
    case Kind::Sub:
      return checkedSub(kids_[0].eval(params, loopVars), kids_[1].eval(params, loopVars));
    case Kind::Mul:
      return checkedMul(kids_[0].eval(params, loopVars), kids_[1].eval(params, loopVars));
    case Kind::FloorDiv:
      return polypart::floorDiv(kids_[0].eval(params, loopVars),
                                kids_[1].eval(params, loopVars));
    case Kind::CeilDiv:
      return polypart::ceilDiv(kids_[0].eval(params, loopVars),
                               kids_[1].eval(params, loopVars));
    case Kind::Neg: return checkedNeg(kids_[0].eval(params, loopVars));
    case Kind::Min: {
      i64 v = kids_[0].eval(params, loopVars);
      for (std::size_t i = 1; i < kids_.size(); ++i)
        v = std::min(v, kids_[i].eval(params, loopVars));
      return v;
    }
    case Kind::Max: {
      i64 v = kids_[0].eval(params, loopVars);
      for (std::size_t i = 1; i < kids_.size(); ++i)
        v = std::max(v, kids_[i].eval(params, loopVars));
      return v;
    }
  }
  PP_ASSERT(false);
  return 0;
}

std::string AstExpr::str(const std::vector<std::string>& paramNames) const {
  auto nary = [&](const char* fn) {
    std::vector<std::string> parts;
    parts.reserve(kids_.size());
    for (const AstExpr& k : kids_) parts.push_back(k.str(paramNames));
    return std::string(fn) + "(" + join(parts, ", ") + ")";
  };
  switch (kind_) {
    case Kind::Const: return std::to_string(value_);
    case Kind::Param:
      return index_ < paramNames.size() ? paramNames[index_]
                                        : "p" + std::to_string(index_);
    case Kind::LoopVar: return "d" + std::to_string(index_);
    case Kind::Add:
      return "(" + kids_[0].str(paramNames) + " + " + kids_[1].str(paramNames) + ")";
    case Kind::Sub:
      return "(" + kids_[0].str(paramNames) + " - " + kids_[1].str(paramNames) + ")";
    case Kind::Mul:
      return "(" + kids_[0].str(paramNames) + " * " + kids_[1].str(paramNames) + ")";
    case Kind::FloorDiv: return nary("floord");
    case Kind::CeilDiv: return nary("ceild");
    case Kind::Neg: return "-(" + kids_[0].str(paramNames) + ")";
    case Kind::Min: return nary("min");
    case Kind::Max: return nary("max");
  }
  PP_ASSERT(false);
  return {};
}

namespace {

/// Converts an affine row restricted to outer dims/params into an AstExpr.
/// `dimLevel[col]` maps a column to its loop level, or npos for params.
AstExpr rowToExpr(const Space& space, const LinExpr& row, std::size_t skipCol) {
  AstExpr acc = AstExpr::constant(row.constantTerm());
  for (std::size_t c = 1; c < space.cols(); ++c) {
    if (c == skipCol || row[c] == 0) continue;
    DimId d = space.dimAt(c);
    AstExpr term = d.kind == DimKind::Param ? AstExpr::param(d.index)
                                            : AstExpr::loopVar(d.index);
    acc = AstExpr::add(std::move(acc),
                       AstExpr::mul(AstExpr::constant(row[c]), std::move(term)));
  }
  return acc;
}

}  // namespace

ScanNest buildScan(const BasicSet& set) {
  const Space& space = set.space();
  PP_ASSERT_MSG(space.numOut() == 0, "scan over a set, not a map");
  const std::size_t n = space.numIn();
  PP_ASSERT_MSG(n > 0, "cannot scan a zero-dimensional set");

  // Collect constraint rows from the set itself and from the projections onto
  // every prefix of dimensions; assign each row to the level of its deepest
  // dimension.  Applying every original row at its own level keeps the scan
  // exact even when intermediate projections over-approximate.
  std::vector<std::vector<Constraint>> rowsAtLevel(n);
  std::vector<Constraint> paramGuards;

  auto classify = [&](const Constraint& c) {
    std::size_t deepest = Space::npos;
    for (std::size_t i = 0; i < n; ++i)
      if (c.expr.coef(space, DimId::in(i)) != 0) deepest = i;
    if (deepest == Space::npos) {
      paramGuards.push_back(c);
    } else {
      rowsAtLevel[deepest].push_back(c);
    }
  };

  BasicSet simplified = set;
  simplified.simplify();
  if (simplified.markedEmpty()) {
    // Emit a nest guarded by an always-false condition.
    ScanNest nest;
    nest.guards.push_back(AstExpr::constant(-1));
    nest.levels.resize(n, ScanLevel{AstExpr::constant(0), AstExpr::constant(-1)});
    return nest;
  }
  for (const Constraint& c : simplified.constraints()) classify(c);

  // Projections supply derived bounds for outer dimensions.
  BasicSet current = simplified;
  for (std::size_t i = n; i-- > 1;) {
    // Project out dimension i, leaving dims 0..i-1.
    Proj p = current.projectOut(DimKind::In, i, current.space().numIn() - i);
    current = std::move(p.set);
    // `current` has dims 0..i-1 with the same names; its constraints align
    // with the original space on those columns.  Re-embed.
    for (const Constraint& c : current.constraints()) {
      LinExpr wide(space);
      wide.row()[0] = c.expr[0];
      const Space& cs = current.space();
      for (std::size_t pc = 0; pc < cs.numParams(); ++pc)
        wide.setCoef(space, DimId::param(pc), c.expr.coef(cs, DimId::param(pc)));
      for (std::size_t dc = 0; dc < cs.numIn(); ++dc)
        wide.setCoef(space, DimId::in(dc), c.expr.coef(cs, DimId::in(dc)));
      classify(Constraint{std::move(wide), c.isEquality});
    }
  }

  ScanNest nest;
  for (const Constraint& g : paramGuards) {
    if (g.isEquality) {
      // e == 0 as two guards: e >= 0 and -e >= 0.
      nest.guards.push_back(rowToExpr(space, g.expr, 0));
      nest.guards.push_back(rowToExpr(space, -g.expr, 0));
    } else {
      nest.guards.push_back(rowToExpr(space, g.expr, 0));
    }
  }

  nest.levels.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<AstExpr> lowers, uppers;
    const std::size_t col = space.col(DimId::in(i));
    for (const Constraint& c : rowsAtLevel[i]) {
      i64 a = c.expr[col];
      PP_ASSERT(a != 0);
      // a*x + rest >= 0  (or == 0).
      if (a > 0 || c.isEquality) {
        // x >= ceil(-rest / a)   [for equalities with a < 0, negate first]
        LinExpr rest = c.expr;
        i64 coef = a;
        if (coef < 0) {
          rest = -rest;
          coef = -coef;
        }
        rest[col] = 0;
        lowers.push_back(AstExpr::ceilDiv(AstExpr::neg(rowToExpr(space, rest, col)),
                                          coef));
      }
      if (a < 0 || c.isEquality) {
        // x <= floor(rest / -a)  (with rest excluding the x term)
        LinExpr rest = c.expr;
        i64 coef = a;
        if (coef > 0) {
          rest = -rest;
          coef = -coef;
        }
        rest[col] = 0;
        uppers.push_back(AstExpr::floorDiv(rowToExpr(space, rest, col), -coef));
      }
    }
    if (lowers.empty() || uppers.empty())
      throw UnsupportedKernelError(
          "cannot enumerate unbounded set dimension '" +
          space.name(DimId::in(i)) + "' in " + set.str());
    nest.levels.push_back(
        ScanLevel{AstExpr::maxOf(std::move(lowers)), AstExpr::minOf(std::move(uppers))});
  }
  return nest;
}

namespace {

void scanRec(const ScanNest& nest, std::span<const i64> params,
             std::vector<i64>& coords, std::size_t level, const RowCallback& cb) {
  const ScanLevel& L = nest.levels[level];
  i64 lo = L.lower.eval(params, coords);
  i64 hi = L.upper.eval(params, coords);
  if (lo > hi) return;
  if (level + 1 == nest.levels.size()) {
    cb(std::span<const i64>(coords.data(), coords.size()), lo, hi);
    return;
  }
  coords.push_back(lo);
  for (i64 v = lo; v <= hi; ++v) {
    coords.back() = v;
    scanRec(nest, params, coords, level + 1, cb);
  }
  coords.pop_back();
}

}  // namespace

void scanRows(const ScanNest& nest, std::span<const i64> params,
              const RowCallback& cb) {
  for (const AstExpr& g : nest.guards)
    if (g.eval(params, {}) < 0) return;
  std::vector<i64> coords;
  coords.reserve(nest.levels.size());
  scanRec(nest, params, coords, 0, cb);
}

std::string scanToC(const ScanNest& nest,
                    const std::vector<std::string>& paramNames,
                    const std::string& callbackName) {
  std::string out;
  int indent = 0;
  auto line = [&](const std::string& s) {
    out.append(static_cast<std::size_t>(indent) * 2, ' ');
    out += s;
    out += '\n';
  };
  if (!nest.guards.empty()) {
    std::vector<std::string> conds;
    for (const AstExpr& g : nest.guards)
      conds.push_back("(" + g.str(paramNames) + ") >= 0");
    line("if (" + join(conds, " && ") + ") {");
    ++indent;
  }
  const std::size_t n = nest.levels.size();
  for (std::size_t i = 0; i + 1 < n; ++i) {
    const ScanLevel& L = nest.levels[i];
    std::string v = "d" + std::to_string(i);
    line("for (int64_t " + v + " = " + L.lower.str(paramNames) + "; " + v +
         " <= " + L.upper.str(paramNames) + "; ++" + v + ") {");
    ++indent;
  }
  const ScanLevel& last = nest.levels[n - 1];
  line("int64_t lo = " + last.lower.str(paramNames) + ";");
  line("int64_t hi = " + last.upper.str(paramNames) + ";");
  line("if (lo <= hi) " + callbackName + "(ctx, " +
       [&] {
         std::string args;
         for (std::size_t i = 0; i + 1 < n; ++i)
           args += "d" + std::to_string(i) + ", ";
         return args;
       }() +
       "lo, hi);");
  for (std::size_t i = 0; i + 1 < n; ++i) {
    --indent;
    line("}");
  }
  if (!nest.guards.empty()) {
    --indent;
    line("}");
  }
  return out;
}

}  // namespace polypart::pset
