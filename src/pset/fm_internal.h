#pragma once

// Internal row-level machinery shared by BasicSet simplification and
// Fourier-Motzkin elimination.  Not part of the public pset API.

#include <vector>

#include "pset/linexpr.h"

namespace polypart::pset::detail {

struct Rows {
  std::vector<Constraint> rows;
  bool empty = false;  // a constant contradiction was found
};

/// Normalizes rows in place: gcd tightening, constant-row elimination,
/// duplicate/parallel-bound merging, opposite-inequality -> equality
/// promotion.  Sets `empty` on contradiction.
void simplifyRows(Rows& r);

struct ElimResult {
  std::vector<Constraint> rows;
  bool exact = true;
  bool empty = false;
};

/// Existentially eliminates every column `c` with `elim[c]` set (column 0,
/// the constant, must never be set).  Elimination order is chosen greedily
/// to limit constraint growth.  `exact` is cleared when the integer
/// projection had to be over-approximated.
ElimResult eliminateColumns(std::vector<Constraint> rows,
                            const std::vector<bool>& elim);

/// Evaluates a constraint row against a concrete column assignment
/// (`values[0]` must be 1 for the constant column).
i64 evalRow(const LinExpr& e, const std::vector<i64>& values);

}  // namespace polypart::pset::detail
