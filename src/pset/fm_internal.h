#pragma once

// Internal row-level machinery shared by BasicSet simplification and
// Fourier-Motzkin elimination.  Not part of the public pset API.

#include <vector>

#include "pset/linexpr.h"

namespace polypart::pset::detail {

struct Rows {
  std::vector<Constraint> rows;
  bool empty = false;  // a constant contradiction was found
};

/// Normalizes rows in place: gcd tightening, constant-row elimination,
/// duplicate/parallel-bound merging, opposite-inequality -> equality
/// promotion.  Sets `empty` on contradiction.
void simplifyRows(Rows& r);

struct ElimResult {
  std::vector<Constraint> rows;
  bool exact = true;
  bool empty = false;
};

/// Existentially eliminates every column `c` with `elim[c]` set (column 0,
/// the constant, must never be set).  Elimination order is chosen greedily
/// to limit constraint growth.  `exact` is cleared when the integer
/// projection had to be over-approximated.
ElimResult eliminateColumns(std::vector<Constraint> rows,
                            const std::vector<bool>& elim);

/// Evaluates a constraint row against a concrete column assignment
/// (`values[0]` must be 1 for the constant column).
i64 evalRow(const LinExpr& e, const std::vector<i64>& values);

}  // namespace polypart::pset::detail

namespace polypart::pset {

/// Process-wide counters of the Fourier-Motzkin projection memo table
/// (fm.cpp).  Monotone over the process lifetime; the runtime samples them
/// as deltas from a construction-time baseline to expose per-runtime cache
/// behaviour through RuntimeStats.  Racing misses on one key each count as a
/// miss (both threads did the work), so the counts are observational, not
/// byte-deterministic across thread interleavings.
struct FmMemoCounters {
  i64 hits = 0;
  i64 misses = 0;
  i64 evictions = 0;
};

FmMemoCounters fmMemoCounters();

}  // namespace polypart::pset
