#pragma once

// Loop-nest generation from polyhedral sets (the isl AST analogue, paper
// Section 6.1).
//
// A ScanNest enumerates the integer points of one BasicSet over its set
// dimensions: every dimension but the innermost becomes a `for` loop with
// affine lower/upper bound expressions (max of lowers / min of uppers,
// with ceil/floor divisions for non-unit coefficients); the innermost
// dimension is emitted as a contiguous [lo, hi] range, which is exactly the
// paper's "enumerate only the first and last element of each row" scheme.
//
// All expressions are closed-form (Section 6.1: "polyhedral expressions ...
// can be computed in constant time") and are evaluated against a runtime
// parameter vector.  Scanning is exact: every original constraint of the set
// is applied at the level of its deepest dimension, so over-approximate
// intermediate projections only cost empty iterations, never wrong points.

#include <functional>
#include <span>
#include <string>
#include <vector>

#include "pset/basic_set.h"

namespace polypart::pset {

/// Closed-form integer expression tree over runtime parameters and the
/// enclosing loop variables.
class AstExpr {
 public:
  enum class Kind {
    Const,     // value
    Param,     // params[index]
    LoopVar,   // loop variable of nest level `index`
    Add, Sub, Mul,
    FloorDiv, CeilDiv,  // kids[0] / kids[1] with floor/ceil rounding
    Neg,
    Min, Max,  // n-ary
  };

  AstExpr() : kind_(Kind::Const), value_(0) {}

  static AstExpr constant(i64 v);
  static AstExpr param(std::size_t index);
  static AstExpr loopVar(std::size_t level);
  static AstExpr add(AstExpr a, AstExpr b);
  static AstExpr sub(AstExpr a, AstExpr b);
  static AstExpr mul(AstExpr a, AstExpr b);
  static AstExpr floorDiv(AstExpr a, i64 d);
  static AstExpr ceilDiv(AstExpr a, i64 d);
  static AstExpr neg(AstExpr a);
  /// max(exprs...) — used for lower bounds; must be non-empty.
  static AstExpr maxOf(std::vector<AstExpr> exprs);
  /// min(exprs...) — used for upper bounds; must be non-empty.
  static AstExpr minOf(std::vector<AstExpr> exprs);

  Kind kind() const { return kind_; }
  i64 value() const { return value_; }
  std::size_t index() const { return index_; }
  const std::vector<AstExpr>& kids() const { return kids_; }

  bool isConst() const { return kind_ == Kind::Const; }

  /// True when no LoopVar node with level >= `minLevel` occurs; used by the
  /// full-row coalescing optimization.
  bool independentOfLoopsFrom(std::size_t minLevel) const;

  i64 eval(std::span<const i64> params, std::span<const i64> loopVars) const;

  /// C-like rendering, e.g. "max(0, p3 - 1)"; loop vars print as d0, d1, ...
  std::string str(const std::vector<std::string>& paramNames = {}) const;

 private:
  Kind kind_;
  i64 value_ = 0;
  std::size_t index_ = 0;
  std::vector<AstExpr> kids_;
};

/// One loop level: the variable ranges over [max(lowers), min(uppers)]
/// (inclusive).
struct ScanLevel {
  AstExpr lower;
  AstExpr upper;
};

/// Loop nest scanning one BasicSet.
struct ScanNest {
  /// Parameter-only conditions; the nest runs only when all evaluate >= 0.
  std::vector<AstExpr> guards;
  /// One level per set dimension, outermost first.  The last level is not a
  /// loop: its bounds delimit the emitted row range.
  std::vector<ScanLevel> levels;
};

/// Builds the scan nest for a basic set over its input (set) dimensions.
/// Output dimensions must have been projected away.  Throws
/// UnsupportedKernelError when some dimension has no lower or no upper bound
/// (the set is unbounded and cannot be enumerated).
ScanNest buildScan(const BasicSet& set);

/// Row callback: coordinates of the outer dimensions plus the inclusive
/// [lo, hi] range of the innermost dimension.
using RowCallback =
    std::function<void(std::span<const i64> outerCoords, i64 lo, i64 hi)>;

/// Executes the nest, invoking `cb` once per non-empty row.
void scanRows(const ScanNest& nest, std::span<const i64> params,
              const RowCallback& cb);

/// Renders the nest as C source (used by the enumerator pretty-printer and
/// for debugging generated "code").
std::string scanToC(const ScanNest& nest,
                    const std::vector<std::string>& paramNames,
                    const std::string& callbackName);

}  // namespace polypart::pset
