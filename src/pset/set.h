#pragma once

// A Set is a union of BasicSets over a common space (paper Section 2.4:
// "unions of Z-Polyhedra").  Exactness is tracked through projections so
// clients can distinguish precise results from sound over-approximations.

#include <string>
#include <vector>

#include "pset/basic_set.h"

namespace polypart::pset {

enum class Tri { No, Yes, Unknown };

class Set {
 public:
  Set() = default;
  explicit Set(Space space) : space_(std::move(space)) {}

  static Set empty(Space space) { return Set(std::move(space)); }
  static Set universe(Space space) {
    Set s(space);
    s.parts_.emplace_back(std::move(space));
    return s;
  }

  const Space& space() const { return space_; }
  const std::vector<BasicSet>& parts() const { return parts_; }
  bool exact() const { return exact_; }
  void markInexact() { exact_ = false; }

  void addPart(BasicSet bs);

  /// Union (concatenation of disjuncts).
  Set unionWith(const Set& o) const;

  /// Pairwise intersection of disjuncts.
  Set intersect(const Set& o) const;
  Set intersect(const BasicSet& bs) const;

  /// Projects the given dimensions out of every disjunct.
  Set projectOut(DimKind kind, std::size_t first, std::size_t count) const;

  /// Set difference `this \ o` by exact complement splitting: every
  /// subtrahend disjunct with constraints c_0..c_{k-1} splits each remaining
  /// disjunct A into the pairwise-disjoint pieces
  /// A ∩ c_0 ∩ .. ∩ c_{j-1} ∩ ¬c_j (over the integers ¬(e >= 0) is
  /// -e - 1 >= 0; an equality contributes both of its inequalities).  The
  /// disjunct count is capped; past the cap the offending subtrahend part is
  /// skipped and the result marked inexact — a sound *over*-approximation,
  /// which is the safe direction for dead-transfer elision (clients prefetch
  /// a superset of the live flow).
  Set subtract(const Set& o) const;

  /// Empty (definitely), NonEmpty (definitely over Z), or Unknown.
  Tri emptiness() const;

  bool containsPoint(std::span<const i64> params, std::span<const i64> ins,
                     std::span<const i64> outs = {}) const;

  /// Drops disjuncts whose infeasibility is certain.
  void pruneEmptyParts();

  std::string str() const;

 private:
  Space space_;
  std::vector<BasicSet> parts_;
  bool exact_ = true;
};

}  // namespace polypart::pset
