#include "pset/lex.h"

#include <algorithm>

#include "support/error.h"

namespace polypart::pset {
namespace {

// Backtracking leaves scale with the product of per-dimension bound widths;
// the cap matches the spirit of fm.cpp's kMaxRows blowup guard.
constexpr i64 kMaxSteps = 4'000'000;

/// floor(a / b) for b > 0.
i64 floorDiv(i64 a, i64 b) {
  i64 q = a / b;
  if ((a % b) != 0 && ((a < 0) != (b < 0))) --q;
  return q;
}

/// ceil(a / b) for b > 0.
i64 ceilDiv(i64 a, i64 b) { return -floorDiv(-a, b); }

struct Search {
  const BasicSet& bs;
  std::span<const i64> params;
  bool maximize;
  std::vector<DimId> dims;          // set dims in column order (ins, then outs)
  std::vector<BasicSet> projected;  // projected[d]: dims d+1.. eliminated
  std::vector<i64> point;
  i64 steps = 0;

  /// Integer bounds on dims[depth] with the prefix point[0..depth) and the
  /// parameters substituted into projected[depth]'s constraints.  Returns
  /// false when some constraint is already violated (prune).  Throws Error
  /// when the dimension has no finite lower or upper bound.
  bool bounds(std::size_t depth, i64& lo, i64& hi) const {
    const BasicSet& b = projected[depth];
    const Space& sp = b.space();
    bool haveLo = false, haveHi = false;
    for (const Constraint& c : b.constraints()) {
      i64 a = 0;
      i64 rest = c.expr.constantTerm();
      for (std::size_t col = 1; col < sp.cols(); ++col) {
        i64 coef = c.expr[col];
        if (coef == 0) continue;
        DimId d = sp.dimAt(col);
        if (d.kind == DimKind::Param) {
          PP_ASSERT_MSG(d.index < params.size(),
                        "lexMin/lexMax: missing parameter value");
          rest = checkedAdd(rest, checkedMul(coef, params[d.index]));
          continue;
        }
        // The projected space retains exactly dims 0..depth, so any
        // non-param column is either a fixed prefix dim or the scan dim.
        std::size_t flat =
            d.kind == DimKind::In ? d.index : b.space().numIn() + d.index;
        if (flat == depth) {
          a = coef;
        } else {
          PP_ASSERT(flat < depth);
          rest = checkedAdd(rest, checkedMul(coef, point[flat]));
        }
      }
      if (a == 0) {
        if (c.isEquality ? rest != 0 : rest < 0) return false;
        continue;
      }
      if (c.isEquality) {
        // a*x + rest == 0: a single candidate value, or infeasible.
        if (rest % a != 0) return false;
        i64 v = -rest / a;
        if (!haveLo || v > lo) lo = v;
        if (!haveHi || v < hi) hi = v;
        haveLo = haveHi = true;
      } else if (a > 0) {
        // a*x + rest >= 0  =>  x >= ceil(-rest / a)
        i64 v = ceilDiv(-rest, a);
        if (!haveLo || v > lo) lo = v;
        haveLo = true;
      } else {
        // a*x + rest >= 0, a < 0  =>  x <= floor(rest / -a)
        i64 v = floorDiv(rest, -a);
        if (!haveHi || v < hi) hi = v;
        haveHi = true;
      }
    }
    if (!haveLo || !haveHi)
      throw Error("lexMin/lexMax of a set unbounded in dimension '" +
                  bs.space().name(dims[depth]) + "'");
    return lo <= hi;
  }

  bool leaf() const {
    std::span<const i64> all(point);
    std::size_t nIn = bs.space().numIn();
    return bs.containsPoint(params, all.subspan(0, nIn), all.subspan(nIn));
  }

  std::optional<std::vector<i64>> descend(std::size_t depth) {
    if (depth == dims.size())
      return leaf() ? std::optional(point) : std::nullopt;
    i64 lo = 0, hi = 0;
    if (!bounds(depth, lo, hi)) return std::nullopt;
    for (i64 k = 0; k <= hi - lo; ++k) {
      if (++steps > kMaxSteps)
        throw OverflowError("lexMin/lexMax search exceeded its step budget");
      point[depth] = maximize ? hi - k : lo + k;
      if (auto found = descend(depth + 1)) return found;
    }
    return std::nullopt;
  }
};

std::optional<std::vector<i64>> lexExtreme(const BasicSet& bs,
                                           std::span<const i64> params,
                                           bool maximize) {
  if (bs.markedEmpty()) return std::nullopt;
  const Space& sp = bs.space();
  Search s{bs, params, maximize, {}, {}, {}, 0};
  for (std::size_t i = 0; i < sp.numIn(); ++i) s.dims.push_back(DimId::in(i));
  for (std::size_t i = 0; i < sp.numOut(); ++i) s.dims.push_back(DimId::out(i));
  if (s.dims.empty()) {
    return bs.containsPoint(params, {}, {}) ? std::optional(std::vector<i64>{})
                                            : std::nullopt;
  }
  // Outer bounds per depth from one FM projection each.  Over-approximation
  // is sound here: the projected constraints hold for every true point, so
  // the scan window can only be too wide, never too narrow.
  s.projected.resize(s.dims.size());
  BasicSet cur = bs;
  cur.simplify();
  if (cur.markedEmpty()) return std::nullopt;
  for (std::size_t depth = s.dims.size(); depth-- > 0;) {
    s.projected[depth] = cur;
    DimId d = s.dims[depth];
    cur = cur.projectOut(d.kind, d.index, 1).set;
    if (cur.markedEmpty()) return std::nullopt;
  }
  s.point.assign(s.dims.size(), 0);
  return s.descend(0);
}

}  // namespace

int lexCompare(std::span<const i64> a, std::span<const i64> b) {
  PP_ASSERT(a.size() == b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] < b[i]) return -1;
    if (a[i] > b[i]) return 1;
  }
  return 0;
}

std::optional<std::vector<i64>> lexMin(const BasicSet& bs,
                                       std::span<const i64> params) {
  return lexExtreme(bs, params, /*maximize=*/false);
}

std::optional<std::vector<i64>> lexMax(const BasicSet& bs,
                                       std::span<const i64> params) {
  return lexExtreme(bs, params, /*maximize=*/true);
}

std::optional<std::vector<i64>> lexMin(const Set& s,
                                       std::span<const i64> params) {
  std::optional<std::vector<i64>> best;
  for (const BasicSet& part : s.parts()) {
    auto m = lexMin(part, params);
    if (m && (!best || lexCompare(*m, *best) < 0)) best = std::move(m);
  }
  return best;
}

std::optional<std::vector<i64>> lexMax(const Set& s,
                                       std::span<const i64> params) {
  std::optional<std::vector<i64>> best;
  for (const BasicSet& part : s.parts()) {
    auto m = lexMax(part, params);
    if (m && (!best || lexCompare(*m, *best) > 0)) best = std::move(m);
  }
  return best;
}

}  // namespace polypart::pset
