#pragma once

// A Map is a union of basic relations (BasicSets whose space has output
// dimensions).  Memory access maps take thread-grid coordinates to array
// subscripts: Z^6 -> Z^d (paper Section 4.1).

#include <string>
#include <vector>

#include "pset/set.h"

namespace polypart::pset {

class Map {
 public:
  Map() = default;
  explicit Map(Space space) : space_(std::move(space)) {
    PP_ASSERT(!space_.isSet());
  }

  const Space& space() const { return space_; }
  const std::vector<BasicSet>& parts() const { return parts_; }
  bool exact() const { return exact_; }
  void markInexact() { exact_ = false; }
  bool isEmpty() const { return parts_.empty(); }

  void addPart(BasicSet bs);

  Map unionWith(const Map& o) const;

  /// Intersects every disjunct with extra constraints (e.g. a partition box
  /// over the input dimensions, or a parameter context).
  Map intersect(const BasicSet& bs) const;

  /// The image of the map's domain: projects out the input dimensions,
  /// yielding a Set over the output (array) dimensions.
  Set range() const;

  /// The concrete image of a partition box: pins every parameter to
  /// `paramValues`, restricts each input dimension i to
  /// [boxLo[i], boxHi[i]), and Fourier-Motzkin-projects inputs and
  /// parameters away.  The result is a parameter-free Set over the output
  /// (array) dimensions — the exact element footprint one device touches,
  /// directly intersectable/subtractable against another kernel's footprint
  /// of the same array.  This is the flow-set primitive of the cross-launch
  /// dataflow planner: producer writes composed with consumer reads reduce
  /// to intersections of these concrete ranges.
  Set rangeUnderBox(std::span<const i64> paramValues,
                    std::span<const i64> boxLo,
                    std::span<const i64> boxHi) const;

  /// The domain as a Set over the input dimensions.
  Set domain() const;

  /// Checks that no two distinct domain points map to the same range point
  /// (required for write maps, paper Section 4.1).  `context` constrains the
  /// parameters (e.g. positive sizes); pass a universe set when unneeded.
  /// Conservative: `Unknown` must be treated as "not injective".
  Tri isInjective(const BasicSet& context) const;

  /// Membership test for a concrete (params, in, out) triple.
  bool contains(std::span<const i64> params, std::span<const i64> ins,
                std::span<const i64> outs) const;

  std::string str() const;

 private:
  Space space_;
  std::vector<BasicSet> parts_;
  bool exact_ = true;
};

}  // namespace polypart::pset
