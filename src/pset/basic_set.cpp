#include "pset/basic_set.h"

#include <algorithm>

#include "pset/fm_internal.h"
#include "support/str.h"

namespace polypart::pset {

BasicSet BasicSet::empty(Space space) {
  BasicSet s(std::move(space));
  // 0 >= 1 is unsatisfiable.
  LinExpr e(s.space_);
  e.addConstant(-1);
  s.addGe(std::move(e));
  s.markedEmpty_ = true;
  return s;
}

void BasicSet::add(Constraint c) {
  PP_ASSERT(c.expr.cols() == space_.cols());
  constraints_.push_back(std::move(c));
}

void BasicSet::addBounds(DimId d, const LinExpr& lo, const LinExpr& hi) {
  LinExpr dim = LinExpr::dim(space_, d);
  addGe(dim - lo);                      // dim - lo >= 0
  addGe(hi - dim + LinExpr::constant(space_, -1));  // hi - dim - 1 >= 0  (dim < hi)
}

void BasicSet::simplify() {
  detail::Rows r{std::move(constraints_), markedEmpty_};
  detail::simplifyRows(r);
  constraints_ = std::move(r.rows);
  markedEmpty_ = r.empty;
  if (markedEmpty_) {
    constraints_.clear();
    LinExpr e(space_);
    e.addConstant(-1);
    constraints_.push_back(Constraint::ge(std::move(e)));
  }
}

BasicSet BasicSet::intersect(const BasicSet& o) const {
  PP_ASSERT(space_ == o.space_);
  BasicSet out = *this;
  out.constraints_.insert(out.constraints_.end(), o.constraints_.begin(),
                          o.constraints_.end());
  out.markedEmpty_ = markedEmpty_ || o.markedEmpty_;
  return out;
}

Proj BasicSet::projectOut(DimKind kind, std::size_t first,
                                    std::size_t count) const {
  std::vector<bool> elim(space_.cols(), false);
  for (std::size_t i = 0; i < count; ++i)
    elim[space_.col(DimId{kind, first + i})] = true;

  detail::ElimResult er = detail::eliminateColumns(constraints_, elim);

  // Build the reduced space and the column remapping.
  auto dropRange = [&](const std::vector<std::string>& names, DimKind k) {
    std::vector<std::string> kept;
    for (std::size_t i = 0; i < names.size(); ++i)
      if (k != kind || i < first || i >= first + count) kept.push_back(names[i]);
    return kept;
  };
  Space reduced = Space::map(dropRange(space_.paramNames(), DimKind::Param),
                             dropRange(space_.inNames(), DimKind::In),
                             dropRange(space_.outNames(), DimKind::Out));

  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
  std::vector<std::size_t> colMap(space_.cols(), npos);
  colMap[0] = 0;
  std::size_t nextCol = 1;
  for (std::size_t c = 1; c < space_.cols(); ++c)
    if (!elim[c]) colMap[c] = nextCol++;
  PP_ASSERT(nextCol == reduced.cols());

  BasicSet out(reduced);
  out.markedEmpty_ = er.empty;
  if (er.empty) {
    out = BasicSet::empty(reduced);
  } else {
    for (const Constraint& c : er.rows)
      out.constraints_.push_back(
          Constraint{c.expr.remapped(colMap, reduced.cols()), c.isEquality});
  }
  return {std::move(out), er.exact};
}

Proj BasicSet::projectOutAllDims() const {
  Proj p = projectOut(DimKind::Out, 0, space_.numOut());
  Proj q = p.set.projectOut(DimKind::In, 0, p.set.space().numIn());
  return {std::move(q.set), p.exact && q.exact};
}

BasicSet::Feas BasicSet::feasibility() const {
  std::vector<bool> elim(space_.cols(), false);
  for (std::size_t c = 1; c < space_.cols(); ++c) elim[c] = true;
  detail::ElimResult er = detail::eliminateColumns(constraints_, elim);
  if (er.empty) return Feas::Empty;
  return er.exact ? Feas::NonEmpty : Feas::Unknown;
}

void BasicSet::fixDim(DimId d, i64 value) {
  LinExpr e = LinExpr::dim(space_, d);
  e.addConstant(checkedNeg(value));
  addEq(std::move(e));
}

bool BasicSet::containsPoint(std::span<const i64> params,
                             std::span<const i64> ins,
                             std::span<const i64> outs) const {
  PP_ASSERT(params.size() == space_.numParams() && ins.size() == space_.numIn() &&
            outs.size() == space_.numOut());
  std::vector<i64> values;
  values.reserve(space_.cols());
  values.push_back(1);
  values.insert(values.end(), params.begin(), params.end());
  values.insert(values.end(), ins.begin(), ins.end());
  values.insert(values.end(), outs.begin(), outs.end());
  for (const Constraint& c : constraints_) {
    i64 v = detail::evalRow(c.expr, values);
    if (c.isEquality ? v != 0 : v < 0) return false;
  }
  return true;
}

BasicSet BasicSet::alignToSpace(const Space& wider) const {
  PP_ASSERT(wider.numIn() == space_.numIn() && wider.numOut() == space_.numOut());
  PP_ASSERT(wider.numParams() >= space_.numParams());
  // Existing parameters must map to the leading parameters of `wider`.
  for (std::size_t i = 0; i < space_.numParams(); ++i)
    PP_ASSERT(wider.paramNames()[i] == space_.paramNames()[i]);

  std::vector<std::size_t> colMap(space_.cols());
  colMap[0] = 0;
  for (std::size_t c = 1; c < space_.cols(); ++c) {
    DimId d = space_.dimAt(c);
    colMap[c] = wider.col(d);
  }
  BasicSet out(wider);
  out.markedEmpty_ = markedEmpty_;
  for (const Constraint& c : constraints_)
    out.constraints_.push_back(
        Constraint{c.expr.remapped(colMap, wider.cols()), c.isEquality});
  return out;
}

namespace {

std::string exprStr(const Space& space, const LinExpr& e) {
  std::string out;
  bool first = true;
  for (std::size_t c = 1; c < space.cols(); ++c) {
    i64 v = e[c];
    if (v == 0) continue;
    const std::string& name = space.name(space.dimAt(c));
    if (first) {
      if (v == -1) out += "-";
      else if (v != 1) out += std::to_string(v) + "*";
      first = false;
    } else {
      out += v > 0 ? " + " : " - ";
      i64 mag = v > 0 ? v : -v;
      if (mag != 1) out += std::to_string(mag) + "*";
    }
    out += name;
  }
  i64 k = e.constantTerm();
  if (first) {
    out += std::to_string(k);
  } else if (k != 0) {
    out += k > 0 ? " + " : " - ";
    out += std::to_string(k > 0 ? k : -k);
  }
  return out;
}

}  // namespace

std::string BasicSet::str() const {
  std::string out;
  if (space_.numParams() > 0)
    out += "[" + join(space_.paramNames(), ", ") + "] -> ";
  out += "{ [" + join(space_.inNames(), ", ") + "]";
  if (!space_.isSet()) out += " -> [" + join(space_.outNames(), ", ") + "]";
  if (!constraints_.empty()) {
    out += " : ";
    std::vector<std::string> parts;
    for (const Constraint& c : constraints_)
      parts.push_back(exprStr(space_, c.expr) + (c.isEquality ? " = 0" : " >= 0"));
    out += join(parts, " and ");
  }
  out += " }";
  return out;
}

}  // namespace polypart::pset
