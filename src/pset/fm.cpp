#include <algorithm>
#include <atomic>
#include <deque>
#include <map>
#include <mutex>
#include <unordered_map>

#include "pset/fm_internal.h"
#include "support/arith.h"
#include "support/error.h"

namespace polypart::pset::detail {

namespace {

/// Hard cap on constraint growth during elimination; regular GPU access
/// patterns stay far below this, so hitting it indicates a degenerate input.
constexpr std::size_t kMaxRows = 4096;

/// Divides an inequality/equality row by the gcd of its non-constant
/// coefficients, tightening integer bounds.  Returns false when the row is a
/// contradiction.
bool normalizeRow(Constraint& c) {
  auto& row = c.expr.row();
  i64 g = 0;
  for (std::size_t i = 1; i < row.size(); ++i) g = gcd(g, row[i]);
  if (g == 0) {
    // Constant row: `const == 0` or `const >= 0`.
    if (c.isEquality ? row[0] != 0 : row[0] < 0) return false;
    // Trivially true; normalize to the canonical `0 >= 0` so dedup drops it.
    row.assign(row.size(), 0);
    return true;
  }
  if (g > 1) {
    for (std::size_t i = 1; i < row.size(); ++i) row[i] /= g;
    if (c.isEquality) {
      if (row[0] % g != 0) return false;  // no integer solutions
      row[0] /= g;
    } else {
      row[0] = floorDiv(row[0], g);
    }
  }
  if (c.isEquality) {
    // Canonical sign: first nonzero coefficient positive.
    for (std::size_t i = 1; i < row.size(); ++i) {
      if (row[i] == 0) continue;
      if (row[i] < 0)
        for (auto& v : row) v = checkedNeg(v);
      break;
    }
  }
  return true;
}

std::vector<i64> coeffKey(const Constraint& c) {
  std::vector<i64> key(c.expr.row().begin() + 1, c.expr.row().end());
  return key;
}

}  // namespace

void simplifyRows(Rows& r) {
  std::vector<Constraint> out;
  out.reserve(r.rows.size());
  // Strongest inequality per coefficient vector: expr0 + c >= 0 is strongest
  // for the smallest c.  Equalities keyed separately.
  std::map<std::vector<i64>, std::size_t> geIndex;
  std::map<std::vector<i64>, std::size_t> eqIndex;

  for (Constraint& c : r.rows) {
    if (!normalizeRow(c)) {
      r.empty = true;
      return;
    }
    std::vector<i64> key = coeffKey(c);
    bool allZero = std::all_of(key.begin(), key.end(), [](i64 v) { return v == 0; });
    if (allZero) continue;  // trivially true after normalization
    if (c.isEquality) {
      auto [it, inserted] = eqIndex.try_emplace(key, out.size());
      if (inserted) {
        out.push_back(c);
      } else if (out[it->second].expr.constantTerm() != c.expr.constantTerm()) {
        r.empty = true;  // e = c1 and e = c2 with c1 != c2
        return;
      }
    } else {
      auto [it, inserted] = geIndex.try_emplace(key, out.size());
      if (inserted) {
        out.push_back(c);
      } else {
        Constraint& prev = out[it->second];
        prev.expr.row()[0] = std::min(prev.expr.constantTerm(), c.expr.constantTerm());
      }
    }
  }

  // Promote opposite inequality pairs to equalities and detect empty bands:
  //   e + a >= 0 and -e + b >= 0  mean  -a <= e <= b.
  for (auto& [key, idx] : geIndex) {
    std::vector<i64> negKey(key.size());
    for (std::size_t i = 0; i < key.size(); ++i) negKey[i] = checkedNeg(key[i]);
    auto it = geIndex.find(negKey);
    if (it == geIndex.end() || it->second <= idx) continue;  // visit each pair once
    i64 a = out[idx].expr.constantTerm();
    i64 b = out[it->second].expr.constantTerm();
    i64 width = checkedAdd(a, b);
    if (width < 0) {
      r.empty = true;
      return;
    }
    if (width == 0) {
      out[idx].isEquality = true;
      // Keep the twin; the dedup pass below would be needed to drop it, but a
      // redundant inequality is harmless and the equality now dominates.
    }
  }

  r.rows = std::move(out);
}

i64 evalRow(const LinExpr& e, const std::vector<i64>& values) {
  PP_ASSERT(values.size() == e.cols() && values[0] == 1);
  i64 acc = 0;
  for (std::size_t i = 0; i < values.size(); ++i)
    acc = checkedAdd(acc, checkedMul(e[i], values[i]));
  return acc;
}

namespace {

/// Eliminates a single column from normalized rows.  Returns false (empty)
/// when a contradiction is found.
void eliminateOne(Rows& r, std::size_t col, bool& exact) {
  // Prefer an equality substitution; pick the smallest |coefficient|.
  std::size_t eqIdx = static_cast<std::size_t>(-1);
  i64 eqCoef = 0;
  for (std::size_t i = 0; i < r.rows.size(); ++i) {
    const Constraint& c = r.rows[i];
    i64 a = c.expr[col];
    if (!c.isEquality || a == 0) continue;
    if (eqIdx == static_cast<std::size_t>(-1) || std::abs(a) < std::abs(eqCoef)) {
      eqIdx = i;
      eqCoef = a;
    }
  }

  std::vector<Constraint> next;
  if (eqIdx != static_cast<std::size_t>(-1)) {
    // Substitute using the equality E: eqCoef * x + rest == 0.
    const Constraint E = r.rows[eqIdx];
    const i64 mag = std::abs(eqCoef);
    const i64 sign = eqCoef > 0 ? 1 : -1;
    if (mag != 1) exact = false;  // divisibility of `rest` by eqCoef is lost
    for (std::size_t i = 0; i < r.rows.size(); ++i) {
      if (i == eqIdx) continue;
      Constraint c = r.rows[i];
      i64 a = c.expr[col];
      if (a != 0) {
        // c*mag - E*(a*sign) cancels x and preserves inequality direction.
        LinExpr scaled = c.expr * mag;
        LinExpr corr = E.expr * checkedMul(a, sign);
        c.expr = scaled - corr;
        PP_ASSERT(c.expr[col] == 0);
      }
      next.push_back(std::move(c));
    }
  } else {
    std::vector<const Constraint*> lowers, uppers;
    for (const Constraint& c : r.rows) {
      i64 a = c.expr[col];
      if (a == 0) {
        next.push_back(c);
      } else if (a > 0) {
        lowers.push_back(&c);
      } else {
        uppers.push_back(&c);
      }
    }
    // One-sided bounds project away exactly.
    if (!lowers.empty() && !uppers.empty()) {
      if (next.size() + lowers.size() * uppers.size() > kMaxRows)
        throw OverflowError("Fourier-Motzkin constraint blowup");
      for (const Constraint* l : lowers) {
        for (const Constraint* u : uppers) {
          i64 a = l->expr[col];        // a > 0
          i64 b = checkedNeg(u->expr[col]);  // b > 0
          // Real shadow: b*L + a*U >= 0.  Exact over Z when a==1 or b==1
          // (Omega test exact-shadow condition).
          if (a != 1 && b != 1) exact = false;
          LinExpr combined = l->expr * b + u->expr * a;
          PP_ASSERT(combined[col] == 0);
          next.push_back(Constraint::ge(std::move(combined)));
        }
      }
    }
  }
  r.rows = std::move(next);
  simplifyRows(r);
}

// -- projection memoization ---------------------------------------------------
//
// eliminateColumns is a pure function of (rows, elim), and the toolchain
// calls it with heavily repeated inputs: buildScan projects every dimension
// prefix of the same set, and every enumerator of a kernel intersects the
// same access map with the same partition box.  A process-wide bounded memo
// table replays the result instead of re-running the elimination.  The table
// is guarded by a mutex because the Runtime constructor analyzes kernels in
// parallel; entries are evicted FIFO.

struct MemoKey {
  std::vector<i64> words;
  bool operator==(const MemoKey&) const = default;
};

struct MemoKeyHash {
  std::size_t operator()(const MemoKey& k) const {
    u64 h = 1469598103934665603ull;
    for (i64 w : k.words) {
      h ^= static_cast<u64>(w);
      h *= 1099511628211ull;
    }
    return static_cast<std::size_t>(h);
  }
};

constexpr std::size_t kMemoEntries = 512;
std::mutex memoMutex;
std::unordered_map<MemoKey, ElimResult, MemoKeyHash> memoTable;  // NOLINT
std::deque<MemoKey> memoOrder;                                   // NOLINT

// Observational counters (see FmMemoCounters in fm_internal.h); relaxed
// atomics because only monotonicity matters, not ordering.
std::atomic<i64> memoHits{0};       // NOLINT
std::atomic<i64> memoMisses{0};     // NOLINT
std::atomic<i64> memoEvictions{0};  // NOLINT

MemoKey memoKeyFor(const std::vector<Constraint>& rows,
                   const std::vector<bool>& elim) {
  MemoKey k;
  k.words.reserve(2 + elim.size() + rows.size() * (1 + elim.size()));
  k.words.push_back(static_cast<i64>(elim.size()));
  k.words.push_back(static_cast<i64>(rows.size()));
  for (bool b : elim) k.words.push_back(b ? 1 : 0);
  for (const Constraint& c : rows) {
    k.words.push_back(c.isEquality ? 1 : 0);
    for (i64 v : c.expr.row()) k.words.push_back(v);
  }
  return k;
}

ElimResult eliminateColumnsImpl(std::vector<Constraint> rows,
                                const std::vector<bool>& elim) {
  ElimResult res;
  Rows r{std::move(rows), false};
  simplifyRows(r);

  std::vector<std::size_t> pending;
  for (std::size_t c = 1; c < elim.size(); ++c)
    if (elim[c]) pending.push_back(c);

  while (!r.empty && !pending.empty()) {
    // Greedy order: eliminate the column with the smallest lower*upper
    // product to limit growth.
    std::size_t bestPos = 0;
    long bestScore = -1;
    for (std::size_t p = 0; p < pending.size(); ++p) {
      std::size_t col = pending[p];
      long lo = 0, hi = 0;
      bool hasEq = false;
      for (const Constraint& c : r.rows) {
        i64 a = c.expr[col];
        if (a == 0) continue;
        if (c.isEquality) hasEq = true;
        else if (a > 0) ++lo;
        else ++hi;
      }
      long score = hasEq ? 0 : lo * hi;
      if (bestScore < 0 || score < bestScore) {
        bestScore = score;
        bestPos = p;
      }
    }
    std::size_t col = pending[bestPos];
    pending.erase(pending.begin() + static_cast<std::ptrdiff_t>(bestPos));
    eliminateOne(r, col, res.exact);
  }

  res.empty = r.empty;
  res.rows = std::move(r.rows);
  if (res.empty) {
    res.rows.clear();
    res.exact = true;  // the empty set is represented exactly
  }
  return res;
}

}  // namespace

ElimResult eliminateColumns(std::vector<Constraint> rows,
                            const std::vector<bool>& elim) {
  PP_ASSERT(elim.empty() || !elim[0]);
  MemoKey key = memoKeyFor(rows, elim);
  {
    std::lock_guard<std::mutex> lock(memoMutex);
    auto it = memoTable.find(key);
    if (it != memoTable.end()) {
      memoHits.fetch_add(1, std::memory_order_relaxed);
      return it->second;
    }
  }
  // Computed outside the lock: concurrent misses on the same key merely
  // duplicate the (pure) work; the first insert wins.
  memoMisses.fetch_add(1, std::memory_order_relaxed);
  ElimResult res = eliminateColumnsImpl(std::move(rows), elim);
  std::lock_guard<std::mutex> lock(memoMutex);
  auto [it, inserted] = memoTable.try_emplace(std::move(key), res);
  if (inserted) {
    memoOrder.push_back(it->first);
    while (memoOrder.size() > kMemoEntries) {
      memoTable.erase(memoOrder.front());
      memoOrder.pop_front();
      memoEvictions.fetch_add(1, std::memory_order_relaxed);
    }
  }
  return it->second;
}

}  // namespace polypart::pset::detail

namespace polypart::pset {

FmMemoCounters fmMemoCounters() {
  return {detail::memoHits.load(std::memory_order_relaxed),
          detail::memoMisses.load(std::memory_order_relaxed),
          detail::memoEvictions.load(std::memory_order_relaxed)};
}

}  // namespace polypart::pset
