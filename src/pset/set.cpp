#include "pset/set.h"

#include "support/str.h"

namespace polypart::pset {

void Set::addPart(BasicSet bs) {
  PP_ASSERT(bs.space() == space_);
  if (bs.markedEmpty()) return;
  parts_.push_back(std::move(bs));
}

Set Set::unionWith(const Set& o) const {
  PP_ASSERT(space_ == o.space_);
  Set out = *this;
  out.parts_.insert(out.parts_.end(), o.parts_.begin(), o.parts_.end());
  out.exact_ = exact_ && o.exact_;
  return out;
}

Set Set::intersect(const Set& o) const {
  PP_ASSERT(space_ == o.space_);
  Set out(space_);
  out.exact_ = exact_ && o.exact_;
  for (const BasicSet& a : parts_)
    for (const BasicSet& b : o.parts_) {
      BasicSet c = a.intersect(b);
      c.simplify();
      if (!c.markedEmpty()) out.parts_.push_back(std::move(c));
    }
  return out;
}

Set Set::intersect(const BasicSet& bs) const {
  Set out(space_);
  out.exact_ = exact_;
  for (const BasicSet& a : parts_) {
    BasicSet c = a.intersect(bs);
    c.simplify();
    if (!c.markedEmpty()) out.parts_.push_back(std::move(c));
  }
  return out;
}

Set Set::projectOut(DimKind kind, std::size_t first, std::size_t count) const {
  Set out;
  out.exact_ = exact_;
  bool spaceSet = false;
  for (const BasicSet& part : parts_) {
    Proj p = part.projectOut(kind, first, count);
    if (!spaceSet) {
      out.space_ = p.set.space();
      spaceSet = true;
    }
    out.exact_ = out.exact_ && p.exact;
    if (!p.set.markedEmpty()) out.parts_.push_back(std::move(p.set));
  }
  if (!spaceSet) {
    // No disjuncts: still compute the reduced space from an empty part.
    Proj p = BasicSet(space_).projectOut(kind, first, count);
    out.space_ = p.set.space();
  }
  return out;
}

Tri Set::emptiness() const {
  bool definite = true;
  for (const BasicSet& part : parts_) {
    switch (part.feasibility()) {
      case BasicSet::Feas::NonEmpty: return Tri::No;
      case BasicSet::Feas::Unknown: definite = false; break;
      case BasicSet::Feas::Empty: break;
    }
  }
  return definite ? Tri::Yes : Tri::Unknown;
}

bool Set::containsPoint(std::span<const i64> params, std::span<const i64> ins,
                        std::span<const i64> outs) const {
  for (const BasicSet& part : parts_)
    if (part.containsPoint(params, ins, outs)) return true;
  return false;
}

void Set::pruneEmptyParts() {
  std::erase_if(parts_, [](const BasicSet& p) {
    return p.markedEmpty() || p.feasibility() == BasicSet::Feas::Empty;
  });
}

std::string Set::str() const {
  if (parts_.empty()) {
    std::string out;
    if (space_.numParams() > 0) out += "[" + join(space_.paramNames(), ", ") + "] -> ";
    return out + "{ }";
  }
  std::vector<std::string> parts;
  for (const BasicSet& p : parts_) parts.push_back(p.str());
  return join(parts, " union ");
}

}  // namespace polypart::pset
