#include "pset/set.h"

#include "support/str.h"

namespace polypart::pset {

void Set::addPart(BasicSet bs) {
  PP_ASSERT(bs.space() == space_);
  if (bs.markedEmpty()) return;
  parts_.push_back(std::move(bs));
}

Set Set::unionWith(const Set& o) const {
  PP_ASSERT(space_ == o.space_);
  Set out = *this;
  out.parts_.insert(out.parts_.end(), o.parts_.begin(), o.parts_.end());
  out.exact_ = exact_ && o.exact_;
  return out;
}

Set Set::intersect(const Set& o) const {
  PP_ASSERT(space_ == o.space_);
  Set out(space_);
  out.exact_ = exact_ && o.exact_;
  for (const BasicSet& a : parts_)
    for (const BasicSet& b : o.parts_) {
      BasicSet c = a.intersect(b);
      c.simplify();
      if (!c.markedEmpty()) out.parts_.push_back(std::move(c));
    }
  return out;
}

Set Set::intersect(const BasicSet& bs) const {
  Set out(space_);
  out.exact_ = exact_;
  for (const BasicSet& a : parts_) {
    BasicSet c = a.intersect(bs);
    c.simplify();
    if (!c.markedEmpty()) out.parts_.push_back(std::move(c));
  }
  return out;
}

Set Set::projectOut(DimKind kind, std::size_t first, std::size_t count) const {
  Set out;
  out.exact_ = exact_;
  bool spaceSet = false;
  for (const BasicSet& part : parts_) {
    Proj p = part.projectOut(kind, first, count);
    if (!spaceSet) {
      out.space_ = p.set.space();
      spaceSet = true;
    }
    out.exact_ = out.exact_ && p.exact;
    if (!p.set.markedEmpty()) out.parts_.push_back(std::move(p.set));
  }
  if (!spaceSet) {
    // No disjuncts: still compute the reduced space from an empty part.
    Proj p = BasicSet(space_).projectOut(kind, first, count);
    out.space_ = p.set.space();
  }
  return out;
}

Set Set::subtract(const Set& o) const {
  PP_ASSERT(space_ == o.space_);
  // Complement splitting multiplies disjuncts; past this cap the subtrahend
  // part is skipped, leaving a sound over-approximation (see set.h).
  constexpr std::size_t kMaxParts = 256;
  Set out = *this;
  out.exact_ = exact_ && o.exact_;
  out.pruneEmptyParts();
  for (const BasicSet& b : o.parts_) {
    if (out.parts_.empty()) break;
    if (b.markedEmpty()) continue;
    // The complement of b as a sequence of negatable inequalities; an
    // equality e == 0 contributes e >= 0 and -e >= 0.
    std::vector<LinExpr> ineqs;
    for (const Constraint& c : b.constraints()) {
      ineqs.push_back(c.expr);
      if (c.isEquality) ineqs.push_back(-c.expr);
    }
    std::vector<BasicSet> next;
    bool overflow = false;
    for (const BasicSet& a : out.parts_) {
      BasicSet prefix = a;  // a ∩ c_0 ∩ .. ∩ c_{j-1}
      for (std::size_t j = 0; j < ineqs.size(); ++j) {
        BasicSet piece = prefix;
        LinExpr neg = -ineqs[j];
        neg.addConstant(-1);  // ¬(e >= 0)  ≡  -e - 1 >= 0 over Z
        piece.addGe(std::move(neg));
        piece.simplify();
        if (!piece.markedEmpty() &&
            piece.feasibility() != BasicSet::Feas::Empty)
          next.push_back(std::move(piece));
        if (j + 1 < ineqs.size()) {
          prefix.addGe(ineqs[j]);
          prefix.simplify();
          if (prefix.markedEmpty()) break;
        }
      }
      if (next.size() > kMaxParts) {
        overflow = true;
        break;
      }
    }
    if (overflow) {
      out.exact_ = false;  // keep the remainder un-split for this b
      continue;
    }
    out.parts_ = std::move(next);
  }
  // A subtrahend part with no constraints (the universe) leaves no pieces;
  // the loop above handles it uniformly (ineqs is empty, nothing survives).
  return out;
}

Tri Set::emptiness() const {
  bool definite = true;
  for (const BasicSet& part : parts_) {
    switch (part.feasibility()) {
      case BasicSet::Feas::NonEmpty: return Tri::No;
      case BasicSet::Feas::Unknown: definite = false; break;
      case BasicSet::Feas::Empty: break;
    }
  }
  return definite ? Tri::Yes : Tri::Unknown;
}

bool Set::containsPoint(std::span<const i64> params, std::span<const i64> ins,
                        std::span<const i64> outs) const {
  for (const BasicSet& part : parts_)
    if (part.containsPoint(params, ins, outs)) return true;
  return false;
}

void Set::pruneEmptyParts() {
  std::erase_if(parts_, [](const BasicSet& p) {
    return p.markedEmpty() || p.feasibility() == BasicSet::Feas::Empty;
  });
}

std::string Set::str() const {
  if (parts_.empty()) {
    std::string out;
    if (space_.numParams() > 0) out += "[" + join(space_.paramNames(), ", ") + "] -> ";
    return out + "{ }";
  }
  std::vector<std::string> parts;
  for (const BasicSet& p : parts_) parts.push_back(p.str());
  return join(parts, " union ");
}

}  // namespace polypart::pset
