#include "pset/map.h"

#include "support/str.h"

namespace polypart::pset {

void Map::addPart(BasicSet bs) {
  PP_ASSERT(bs.space() == space_);
  if (bs.markedEmpty()) return;
  parts_.push_back(std::move(bs));
}

Map Map::unionWith(const Map& o) const {
  PP_ASSERT(space_ == o.space_);
  Map out = *this;
  out.parts_.insert(out.parts_.end(), o.parts_.begin(), o.parts_.end());
  out.exact_ = exact_ && o.exact_;
  return out;
}

Map Map::intersect(const BasicSet& bs) const {
  Map out(space_);
  out.exact_ = exact_;
  for (const BasicSet& part : parts_) {
    BasicSet c = part.intersect(bs);
    c.simplify();
    if (!c.markedEmpty()) out.parts_.push_back(std::move(c));
  }
  return out;
}

Set Map::range() const {
  Set out(space_.rangeSpace());
  if (!exact_) out.markInexact();
  for (const BasicSet& part : parts_) {
    Proj p = part.projectOut(DimKind::In, 0, space_.numIn());
    if (!p.exact) out.markInexact();
    // The projected space still carries empty "in" lists; rebuild over the
    // canonical range space.
    if (!p.set.markedEmpty()) {
      BasicSet aligned(out.space());
      for (const Constraint& c : p.set.constraints())
        aligned.add(c);
      out.addPart(std::move(aligned));
    }
  }
  return out;
}

Set Map::rangeUnderBox(std::span<const i64> paramValues,
                       std::span<const i64> boxLo,
                       std::span<const i64> boxHi) const {
  const std::size_t nParams = space_.numParams();
  const std::size_t nIn = space_.numIn();
  PP_ASSERT(paramValues.size() == nParams);
  PP_ASSERT(boxLo.size() == nIn && boxHi.size() == nIn);
  Set out(Space::set({}, space_.outNames()));
  if (!exact_) out.markInexact();
  for (const BasicSet& part : parts_) {
    BasicSet c = part;
    for (std::size_t p = 0; p < nParams; ++p)
      c.fixDim(DimId::param(p), paramValues[p]);
    for (std::size_t i = 0; i < nIn; ++i)
      c.addBounds(DimId::in(i), LinExpr::constant(space_, boxLo[i]),
                  LinExpr::constant(space_, boxHi[i]));
    c.simplify();
    if (c.markedEmpty()) continue;
    Proj pin = c.projectOut(DimKind::In, 0, nIn);
    if (!pin.exact) out.markInexact();
    if (pin.set.markedEmpty()) continue;
    // Parameters are pinned by equalities, so eliminating them is pure
    // substitution (always exact in practice; track the flag regardless).
    Proj pall = pin.set.projectOut(DimKind::Param, 0, nParams);
    if (!pall.exact) out.markInexact();
    if (pall.set.markedEmpty()) continue;
    // The projected space has no parameters and no inputs left; its column
    // layout matches the canonical parameter-free set space, so constraints
    // carry over verbatim (same trick as range()).
    BasicSet aligned(out.space());
    for (const Constraint& cc : pall.set.constraints()) aligned.add(cc);
    aligned.simplify();
    if (!aligned.markedEmpty()) out.addPart(std::move(aligned));
  }
  return out;
}

Set Map::domain() const {
  Set out(space_.domainSpace());
  if (!exact_) out.markInexact();
  for (const BasicSet& part : parts_) {
    Proj p = part.projectOut(DimKind::Out, 0, space_.numOut());
    if (!p.exact) out.markInexact();
    if (!p.set.markedEmpty()) {
      BasicSet aligned(out.space());
      for (const Constraint& c : p.set.constraints())
        aligned.add(c);
      out.addPart(std::move(aligned));
    }
  }
  return out;
}

Tri Map::isInjective(const BasicSet& context) const {
  const std::size_t nIn = space_.numIn();
  const std::size_t nOut = space_.numOut();

  // Conflict space: params -> [in, in'] -> [out].
  std::vector<std::string> ins2 = space_.inNames();
  for (const std::string& n : space_.inNames()) ins2.push_back(n + "'");
  Space conflictSpace =
      Space::map(space_.paramNames(), std::move(ins2), space_.outNames());

  // Re-embeds a part's constraints with its input dims shifted by `offset`.
  auto embed = [&](const BasicSet& part, std::size_t offset) {
    static constexpr std::size_t npos = static_cast<std::size_t>(-1);
    std::vector<std::size_t> colMap(space_.cols(), npos);
    colMap[0] = 0;
    for (std::size_t p = 0; p < space_.numParams(); ++p)
      colMap[space_.col(DimId::param(p))] = conflictSpace.col(DimId::param(p));
    for (std::size_t i = 0; i < nIn; ++i)
      colMap[space_.col(DimId::in(i))] = conflictSpace.col(DimId::in(i + offset));
    for (std::size_t o = 0; o < nOut; ++o)
      colMap[space_.col(DimId::out(o))] = conflictSpace.col(DimId::out(o));
    BasicSet out(conflictSpace);
    for (const Constraint& c : part.constraints())
      out.add(Constraint{c.expr.remapped(colMap, conflictSpace.cols()), c.isEquality});
    return out;
  };

  BasicSet contextEmbedded(conflictSpace);
  {
    static constexpr std::size_t npos = static_cast<std::size_t>(-1);
    std::vector<std::size_t> colMap(context.space().cols(), npos);
    colMap[0] = 0;
    for (std::size_t p = 0; p < context.space().numParams(); ++p) {
      std::size_t idx = conflictSpace.paramIndex(context.space().paramNames()[p]);
      PP_ASSERT_MSG(idx != Space::npos, "context parameter missing from map space");
      colMap[context.space().col(DimId::param(p))] =
          conflictSpace.col(DimId::param(idx));
    }
    for (const Constraint& c : context.constraints())
      contextEmbedded.add(
          Constraint{c.expr.remapped(colMap, conflictSpace.cols()), c.isEquality});
  }

  for (std::size_t a = 0; a < parts_.size(); ++a) {
    for (std::size_t b = a; b < parts_.size(); ++b) {
      BasicSet base = embed(parts_[a], 0)
                          .intersect(embed(parts_[b], nIn))
                          .intersect(contextEmbedded);
      // Distinct inputs: some dimension differs.  Check each strict
      // difference disjunct separately.
      for (std::size_t d = 0; d < nIn; ++d) {
        for (int dir = 0; dir < 2; ++dir) {
          BasicSet q = base;
          LinExpr diff = LinExpr::dim(conflictSpace, DimId::in(d)) -
                         LinExpr::dim(conflictSpace, DimId::in(d + nIn));
          // dir 0: in_d <= in'_d - 1; dir 1: in_d >= in'_d + 1.
          if (dir == 0) diff = -std::move(diff);
          diff.addConstant(-1);
          q.addGe(std::move(diff));
          q.simplify();
          if (q.markedEmpty()) continue;
          switch (q.feasibility()) {
            case BasicSet::Feas::Empty: break;
            case BasicSet::Feas::NonEmpty: return Tri::No;
            case BasicSet::Feas::Unknown: return Tri::Unknown;
          }
        }
      }
    }
  }
  return Tri::Yes;
}

bool Map::contains(std::span<const i64> params, std::span<const i64> ins,
                   std::span<const i64> outs) const {
  for (const BasicSet& part : parts_)
    if (part.containsPoint(params, ins, outs)) return true;
  return false;
}

std::string Map::str() const {
  if (parts_.empty()) {
    std::string out;
    if (space_.numParams() > 0) out += "[" + join(space_.paramNames(), ", ") + "] -> ";
    return out + "{ }";
  }
  std::vector<std::string> parts;
  for (const BasicSet& p : parts_) parts.push_back(p.str());
  return join(parts, " union ");
}

}  // namespace polypart::pset
