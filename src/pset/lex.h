#pragma once

// Lexicographic extrema of bounded Z-polyhedra.
//
// lexMin/lexMax return the lexicographically smallest/largest integer point
// of a set, over its non-parameter dimensions in column order (inputs, then
// outputs for map-shaped sets), with parameters fixed to concrete values.
//
// The implementation is exact: Fourier-Motzkin projection supplies *outer*
// bounds per dimension (sound even when the elimination loses integer
// exactness — every true point still satisfies the projected constraints),
// and a depth-first scan over those bounds fixes one dimension at a time,
// validating leaves with containsPoint().  The first point found in scan
// order is the extremum.  For a union, the extremum is the lex-best over the
// per-disjunct extrema.
//
// Requirements: the set must be bounded in every dimension (box-constrained);
// an unbounded dimension raises Error.  A step budget guards against
// pathological scan spaces and raises OverflowError, mirroring fm.cpp's
// constraint-blowup guard.

#include <optional>
#include <span>
#include <vector>

#include "pset/set.h"

namespace polypart::pset {

/// Lexicographically smallest integer point, or nullopt when empty.
std::optional<std::vector<i64>> lexMin(const Set& s,
                                       std::span<const i64> params = {});
std::optional<std::vector<i64>> lexMax(const Set& s,
                                       std::span<const i64> params = {});

std::optional<std::vector<i64>> lexMin(const BasicSet& bs,
                                       std::span<const i64> params = {});
std::optional<std::vector<i64>> lexMax(const BasicSet& bs,
                                       std::span<const i64> params = {});

/// Three-way lexicographic comparison of equal-length tuples.
int lexCompare(std::span<const i64> a, std::span<const i64> b);

}  // namespace polypart::pset
