#pragma once

// A BasicSet is a conjunction of affine constraints over a Space: the integer
// points of one Z-polyhedron (paper Section 2.4).  Map semantics are obtained
// by giving the space output dimensions; a "point" is then an (in, out) pair.
//
// Projection uses Fourier-Motzkin elimination.  Eliminating an existentially
// quantified integer dimension is not always exactly representable without
// divisibility constraints, so projection reports whether the result is exact
// or a (sound) over-approximation.  The analysis uses this to accept
// over-approximated *read* maps but reject kernels whose *write* maps would
// become approximate (paper Section 4.1).

#include <span>
#include <string>
#include <vector>

#include "pset/linexpr.h"
#include "pset/space.h"

namespace polypart::pset {

class BasicSet;

/// Result of a projection: the reduced set plus whether it is integer-exact.
struct Proj;

class BasicSet {
 public:
  BasicSet() = default;

  /// The universe set (no constraints) over `space`.
  explicit BasicSet(Space space) : space_(std::move(space)) {}

  /// A trivially empty set over `space`.
  static BasicSet empty(Space space);

  const Space& space() const { return space_; }
  const std::vector<Constraint>& constraints() const { return constraints_; }
  std::size_t numConstraints() const { return constraints_.size(); }

  /// Adds a constraint (no simplification).
  void add(Constraint c);
  void addEq(LinExpr e) { add(Constraint::eq(std::move(e))); }
  /// Adds `e >= 0`.
  void addGe(LinExpr e) { add(Constraint::ge(std::move(e))); }
  /// Adds `lo <= dim < hi` where lo/hi are affine expressions.
  void addBounds(DimId d, const LinExpr& lo, const LinExpr& hi);

  /// True when simplification detected a constant contradiction.
  bool markedEmpty() const { return markedEmpty_; }

  /// Normalizes constraints: gcd reduction with integer bound tightening,
  /// duplicate removal, parallel-bound strengthening, contradiction marking.
  void simplify();

  /// Conjunction of two basic sets over the same space.
  BasicSet intersect(const BasicSet& o) const;

  /// Existentially projects out `count` dimensions of `kind` starting at
  /// `first`.  The dimensions are removed from the resulting space.
  Proj projectOut(DimKind kind, std::size_t first, std::size_t count) const;

  /// Projects away *all* input and output dimensions, keeping parameters.
  Proj projectOutAllDims() const;

  enum class Feas { Empty, NonEmpty, Unknown };

  /// Decides feasibility over the integers where possible.  `Empty` and
  /// `NonEmpty` are definite; `Unknown` means rationally feasible but the
  /// elimination lost integer exactness.
  Feas feasibility() const;

  /// Substitutes dimension `d := value` (a constant) and removes nothing;
  /// the dimension keeps existing but is pinned by an equality.
  void fixDim(DimId d, i64 value);

  /// Evaluates membership of a concrete point (test/verification helper).
  bool containsPoint(std::span<const i64> params, std::span<const i64> ins,
                     std::span<const i64> outs) const;

  /// Replaces the space with an extended one that has extra parameters
  /// appended; constraint rows are widened with zero coefficients.
  BasicSet alignToSpace(const Space& wider) const;

  /// isl-style textual form, e.g. "[N] -> { [i] : 0 <= i and i < N }".
  std::string str() const;

 private:
  Space space_;
  std::vector<Constraint> constraints_;
  bool markedEmpty_ = false;
};

struct Proj {
  BasicSet set;
  bool exact;
};

}  // namespace polypart::pset
