#include "apps/reference.h"

#include <cmath>

#include "support/error.h"

namespace polypart::apps {

void refSaxpy(double a, std::span<const double> x, std::span<double> y) {
  PP_ASSERT(x.size() == y.size());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] = a * x[i] + y[i];
}

void refHotspotStep(i64 n, double k, double dt, std::span<const double> tin,
                    std::span<const double> power, std::span<double> tout) {
  auto at = [n](std::span<const double> g, i64 y, i64 x) {
    return g[static_cast<std::size_t>(y * n + x)];
  };
  for (i64 y = 0; y < n; ++y) {
    for (i64 x = 0; x < n; ++x) {
      std::size_t idx = static_cast<std::size_t>(y * n + x);
      double c = tin[idx];
      if (x >= 1 && x <= n - 2 && y >= 1 && y <= n - 2) {
        double lap = at(tin, y - 1, x) + at(tin, y + 1, x) + at(tin, y, x - 1) +
                     at(tin, y, x + 1) - 4.0 * c;
        tout[idx] = c + k * lap + power[idx] * dt;
      } else {
        tout[idx] = c;
      }
    }
  }
}

void refNBodyForces(i64 n, std::span<const double> px, std::span<const double> py,
                    std::span<const double> pz, std::span<const double> mass,
                    std::span<double> ax, std::span<double> ay, std::span<double> az) {
  for (i64 i = 0; i < n; ++i) {
    std::size_t si = static_cast<std::size_t>(i);
    double xi = px[si], yi = py[si], zi = pz[si];
    double fx = 0, fy = 0, fz = 0;
    for (i64 j = 0; j < n; ++j) {
      std::size_t sj = static_cast<std::size_t>(j);
      double dx = px[sj] - xi;
      double dy = py[sj] - yi;
      double dz = pz[sj] - zi;
      double r2 = dx * dx + dy * dy + dz * dz + 1e-9;
      double inv = 1.0 / std::sqrt(r2);
      double inv3 = inv * inv * inv;
      double s = mass[sj] * inv3;
      fx += dx * s;
      fy += dy * s;
      fz += dz * s;
    }
    ax[si] = fx;
    ay[si] = fy;
    az[si] = fz;
  }
}

void refNBodyUpdate(i64 n, double dt, std::span<double> px, std::span<double> py,
                    std::span<double> pz, std::span<double> vx, std::span<double> vy,
                    std::span<double> vz, std::span<const double> ax,
                    std::span<const double> ay, std::span<const double> az) {
  for (i64 i = 0; i < n; ++i) {
    std::size_t s = static_cast<std::size_t>(i);
    double nvx = vx[s] + ax[s] * dt;
    double nvy = vy[s] + ay[s] * dt;
    double nvz = vz[s] + az[s] * dt;
    vx[s] = nvx;
    vy[s] = nvy;
    vz[s] = nvz;
    px[s] = px[s] + nvx * dt;
    py[s] = py[s] + nvy * dt;
    pz[s] = pz[s] + nvz * dt;
  }
}

void refMatmul(i64 n, std::span<const double> a, std::span<const double> b,
               std::span<double> c) {
  for (i64 i = 0; i < n; ++i) {
    for (i64 j = 0; j < n; ++j) {
      double acc = 0;
      for (i64 k = 0; k < n; ++k)
        acc += a[static_cast<std::size_t>(i * n + k)] *
               b[static_cast<std::size_t>(k * n + j)];
      c[static_cast<std::size_t>(i * n + j)] = acc;
    }
  }
}

void refSpmv(std::span<const i64> rowPtr, std::span<const i64> colIdx,
             std::span<const double> vals, std::span<const double> x,
             std::span<double> y) {
  PP_ASSERT(rowPtr.size() == y.size() + 1);
  for (std::size_t r = 0; r < y.size(); ++r) {
    double acc = 0.0;
    for (i64 j = rowPtr[r]; j < rowPtr[r + 1]; ++j) {
      const std::size_t sj = static_cast<std::size_t>(j);
      acc = acc + vals[sj] * x[static_cast<std::size_t>(colIdx[sj])];
    }
    y[r] = acc;
  }
}

void refBfsPush(std::span<const i64> rowPtr, std::span<const i64> colIdx,
                std::span<const i64> front, std::span<double> next) {
  for (const i64 u : front) {
    const std::size_t su = static_cast<std::size_t>(u);
    PP_ASSERT(su + 1 < rowPtr.size());
    for (i64 j = rowPtr[su]; j < rowPtr[su + 1]; ++j)
      next[static_cast<std::size_t>(colIdx[static_cast<std::size_t>(j)])] = 1.0;
  }
}

void refHistogram(std::span<const i64> keys, std::span<double> hist) {
  for (const i64 k : keys)
    hist[static_cast<std::size_t>(k)] = hist[static_cast<std::size_t>(k)] + 1.0;
}

}  // namespace polypart::apps
