#pragma once

// The paper's three proxy applications (Section 9.1, Table 1) expressed in
// the kernel IR, plus a saxpy quickstart kernel.  CPU reference
// implementations live in reference.h; host-side drivers using the runtime
// live in the examples and benches.

#include "ir/kernel.h"

namespace polypart::apps {

/// y[i] = a * x[i] + y[i] — the quickstart kernel.
ir::KernelPtr buildSaxpy();

/// Hotspot proxy: 5-point stencil on a quadratic n x n grid (Figure 3).
/// Interior cells relax toward their neighbours plus a power term; border
/// cells copy through.  Args: (n, tin[n][n], power[n][n], tout[n][n]).
ir::KernelPtr buildHotspot();

/// N-Body force pass: direct O(n^2) gravitational acceleration.
/// Args: (n, posx, posy, posz, mass, accx, accy, accz), all length n.
ir::KernelPtr buildNBodyForces();

/// N-Body integration pass: velocity/position update.
/// Args: (n, dt, posx, posy, posz, velx, vely, velz, accx, accy, accz).
ir::KernelPtr buildNBodyUpdate();

/// Matmul: C = A * B on dense quadratic n x n matrices; one thread per
/// output element.  Args: (n, a[n][n], b[n][n], c[n][n]).
ir::KernelPtr buildMatmul();

/// All benchmark kernels as one module (the "device code" of the app suite).
ir::Module buildBenchmarkModule();

// -- irregular workloads (may-access tier; DESIGN.md "May-access tier") -------

/// CSR sparse matrix-vector product: y[r] = sum_j vals[j] * x[col_idx[j]]
/// over row r's nonzeros.  The gather x[col_idx[j]] is non-affine, so x
/// demotes to a may-access read (the inspector–executor target); vals and
/// col_idx reads over-approximate to their whole extent (dynamic loop
/// bounds); y stays affine and injective.
/// Args: (nrows, ncols, nnz, row_ptr[nrows+1], col_idx[nnz], vals[nnz],
///        x[ncols], y[nrows]).
ir::KernelPtr buildCsrSpmv();

/// BFS/PageRank-style push sweep: for each frontier node u = front[t], mark
/// next[v] = 1 for every neighbour v.  rowptr is indexed through front
/// (may-access read) and the scatter next[col_idx[j]] is a may-access write.
/// Args: (nfront, nnodes, nedges, front[nfront], row_ptr[nnodes+1],
///        col_idx[nedges], next[nnodes]).
ir::KernelPtr buildBfsPush();

/// Histogram with data-dependent bins: hist[keys[i]] += 1.  The read and
/// write of hist are both non-affine — a read-modify-write may-access array,
/// executed with pre-partition gathers.  Args: (n, nbins, keys[n],
/// hist[nbins]).
ir::KernelPtr buildHistogram();

/// The three irregular kernels as one module.
ir::Module buildIrregularModule();

}  // namespace polypart::apps
