#pragma once

// The paper's three proxy applications (Section 9.1, Table 1) expressed in
// the kernel IR, plus a saxpy quickstart kernel.  CPU reference
// implementations live in reference.h; host-side drivers using the runtime
// live in the examples and benches.

#include "ir/kernel.h"

namespace polypart::apps {

/// y[i] = a * x[i] + y[i] — the quickstart kernel.
ir::KernelPtr buildSaxpy();

/// Hotspot proxy: 5-point stencil on a quadratic n x n grid (Figure 3).
/// Interior cells relax toward their neighbours plus a power term; border
/// cells copy through.  Args: (n, tin[n][n], power[n][n], tout[n][n]).
ir::KernelPtr buildHotspot();

/// N-Body force pass: direct O(n^2) gravitational acceleration.
/// Args: (n, posx, posy, posz, mass, accx, accy, accz), all length n.
ir::KernelPtr buildNBodyForces();

/// N-Body integration pass: velocity/position update.
/// Args: (n, dt, posx, posy, posz, velx, vely, velz, accx, accy, accz).
ir::KernelPtr buildNBodyUpdate();

/// Matmul: C = A * B on dense quadratic n x n matrices; one thread per
/// output element.  Args: (n, a[n][n], b[n][n], c[n][n]).
ir::KernelPtr buildMatmul();

/// All benchmark kernels as one module (the "device code" of the app suite).
ir::Module buildBenchmarkModule();

}  // namespace polypart::apps
