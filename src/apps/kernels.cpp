#include "apps/kernels.h"

#include "ir/builder.h"

namespace polypart::apps {

using namespace ir;

KernelPtr buildSaxpy() {
  KernelBuilder b("saxpy");
  auto n = b.scalar("n", Type::I64);
  auto a = b.scalar("a", Type::F64);
  auto x = b.array("x", Type::F64, {n});
  auto y = b.array("y", Type::F64, {n});
  auto i = b.let("i", b.globalId(Axis::X));
  b.iff(lt(i, n), [&] { b.store(y, i, a * b.load(x, i) + b.load(y, i)); });
  return b.build();
}

KernelPtr buildHotspot() {
  KernelBuilder b("hotspot");
  auto n = b.scalar("n", Type::I64);
  auto k = b.scalar("k", Type::F64);   // diffusion coefficient
  auto dt = b.scalar("dt", Type::F64); // time step scaling of the power term
  auto tin = b.array("tin", Type::F64, {n, n});
  auto power = b.array("power", Type::F64, {n, n});
  auto tout = b.array("tout", Type::F64, {n, n});

  // K80-class caches are tiny and non-coherent for global loads: every
  // stencil access pays DRAM bandwidth (reuse 1.0, the builder default).
  auto x = b.let("x", b.globalId(Axis::X));
  auto y = b.let("y", b.globalId(Axis::Y));
  b.iff(land(lt(x, n), lt(y, n)), [&] {
    auto idx = b.let("idx", y * n + x);
    // Centre temperature and power are read unconditionally (as in the
    // Rodinia kernel this proxies), which keeps the read sets full rows.
    auto c = b.let("c", b.load(tin, idx));
    auto p = b.let("p", b.load(power, idx));
    b.iff(land(land(ge(x, iconst(1)), le(x, n - iconst(2))),
               land(ge(y, iconst(1)), le(y, n - iconst(2)))),
          [&] {
            // Interior: 5-point relaxation plus power injection (Figure 3).
            auto up = b.load(tin, (y - iconst(1)) * n + x);
            auto down = b.load(tin, (y + iconst(1)) * n + x);
            auto left = b.load(tin, y * n + (x - iconst(1)));
            auto right = b.load(tin, y * n + (x + iconst(1)));
            auto lap = up + down + left + right - fconst(4.0) * c;
            b.store(tout, idx, c + k * lap + p * dt);
          },
          [&] {
            // Border: isothermal copy-through.
            b.store(tout, idx, c);
          });
  });
  return b.build();
}

KernelPtr buildNBodyForces() {
  KernelBuilder b("nbody_forces");
  auto n = b.scalar("n", Type::I64);
  auto px = b.array("posx", Type::F64, {n});
  auto py = b.array("posy", Type::F64, {n});
  auto pz = b.array("posz", Type::F64, {n});
  auto mass = b.array("mass", Type::F64, {n});
  auto ax = b.array("accx", Type::F64, {n});
  auto ay = b.array("accy", Type::F64, {n});
  auto az = b.array("accz", Type::F64, {n});

  // Real N-Body kernels stage body tiles in shared memory: every thread of
  // a block reads the same j sequence, one DRAM access serving the block.
  b.setLoadReuse(64.0);
  auto i = b.let("i", b.globalId(Axis::X));
  b.iff(lt(i, n), [&] {
    auto xi = b.let("xi", b.load(px, i));
    auto yi = b.let("yi", b.load(py, i));
    auto zi = b.let("zi", b.load(pz, i));
    auto fx = b.let("fx", fconst(0.0));
    auto fy = b.let("fy", fconst(0.0));
    auto fz = b.let("fz", fconst(0.0));
    b.forLoop("j", iconst(0), n, [&](ExprPtr j) {
      auto dx = b.let("dx", b.load(px, j) - xi);
      auto dy = b.let("dy", b.load(py, j) - yi);
      auto dz = b.let("dz", b.load(pz, j) - zi);
      // Softened distance avoids the i == j singularity.
      auto r2 = b.let("r2", dx * dx + dy * dy + dz * dz + fconst(1e-9));
      auto inv = b.let("inv", Expr::math(MathFn::Rsqrt, r2));
      auto inv3 = b.let("inv3", inv * inv * inv);
      auto s = b.let("s", b.load(mass, j) * inv3);
      b.assign(fx, fx + dx * s);
      b.assign(fy, fy + dy * s);
      b.assign(fz, fz + dz * s);
    });
    b.store(ax, i, fx);
    b.store(ay, i, fy);
    b.store(az, i, fz);
  });
  return b.build();
}

KernelPtr buildNBodyUpdate() {
  KernelBuilder b("nbody_update");
  auto n = b.scalar("n", Type::I64);
  auto dt = b.scalar("dt", Type::F64);
  auto px = b.array("posx", Type::F64, {n});
  auto py = b.array("posy", Type::F64, {n});
  auto pz = b.array("posz", Type::F64, {n});
  auto vx = b.array("velx", Type::F64, {n});
  auto vy = b.array("vely", Type::F64, {n});
  auto vz = b.array("velz", Type::F64, {n});
  auto ax = b.array("accx", Type::F64, {n});
  auto ay = b.array("accy", Type::F64, {n});
  auto az = b.array("accz", Type::F64, {n});

  auto i = b.let("i", b.globalId(Axis::X));
  b.iff(lt(i, n), [&] {
    auto nvx = b.let("nvx", b.load(vx, i) + b.load(ax, i) * dt);
    auto nvy = b.let("nvy", b.load(vy, i) + b.load(ay, i) * dt);
    auto nvz = b.let("nvz", b.load(vz, i) + b.load(az, i) * dt);
    b.store(vx, i, nvx);
    b.store(vy, i, nvy);
    b.store(vz, i, nvz);
    b.store(px, i, b.load(px, i) + nvx * dt);
    b.store(py, i, b.load(py, i) + nvy * dt);
    b.store(pz, i, b.load(pz, i) + nvz * dt);
  });
  return b.build();
}

KernelPtr buildMatmul() {
  KernelBuilder b("matmul");
  auto n = b.scalar("n", Type::I64);
  auto a = b.array("a", Type::F64, {n, n});
  auto mb = b.array("b", Type::F64, {n, n});
  auto c = b.array("c", Type::F64, {n, n});

  // "Basic tiled implementation" (Section 9.1): 16x16 shared-memory tiles
  // turn 2n loads per thread into 2n/16 DRAM accesses.
  b.setLoadReuse(16.0);
  auto col = b.let("col", b.globalId(Axis::X));
  auto row = b.let("row", b.globalId(Axis::Y));
  b.iff(land(lt(col, n), lt(row, n)), [&] {
    auto acc = b.let("acc", fconst(0.0));
    b.forLoop("kk", iconst(0), n, [&](ExprPtr kk) {
      // Row of A, column of B (Section 9.1: the column-wise read of B is
      // what mismatches the linear host-to-device distribution).
      b.assign(acc, acc + b.load(a, row * n + kk) * b.load(mb, kk * n + col));
    });
    b.store(c, row * n + col, acc);
  });
  return b.build();
}

ir::Module buildBenchmarkModule() {
  ir::Module m;
  m.addKernel(buildSaxpy());
  m.addKernel(buildHotspot());
  m.addKernel(buildNBodyForces());
  m.addKernel(buildNBodyUpdate());
  m.addKernel(buildMatmul());
  return m;
}

KernelPtr buildCsrSpmv() {
  KernelBuilder b("spmv");
  auto nrows = b.scalar("nrows", Type::I64);
  auto ncols = b.scalar("ncols", Type::I64);
  auto nnz = b.scalar("nnz", Type::I64);
  auto rowPtr = b.array("row_ptr", Type::I64, {nrows + iconst(1)});
  auto colIdx = b.array("col_idx", Type::I64, {nnz});
  auto vals = b.array("vals", Type::F64, {nnz});
  auto x = b.array("x", Type::F64, {ncols});
  auto y = b.array("y", Type::F64, {nrows});

  auto r = b.let("r", b.globalId(Axis::X));
  b.iff(lt(r, nrows), [&] {
    auto lo = b.let("lo", b.load(rowPtr, r));
    auto hi = b.let("hi", b.load(rowPtr, r + iconst(1)));
    auto acc = b.let("acc", fconst(0.0));
    // Dynamic loop bounds: the analysis clamps j's accesses to the declared
    // extents (inexact whole-array reads of vals/col_idx); the gather
    // x[col_idx[j]] demotes x to the may-access tier.
    b.forLoop("j", lo, hi, [&](ExprPtr j) {
      b.assign(acc, acc + b.load(vals, j) * b.load(x, b.load(colIdx, j)));
    });
    b.store(y, r, acc);
  });
  return b.build();
}

KernelPtr buildBfsPush() {
  KernelBuilder b("bfs_push");
  auto nfront = b.scalar("nfront", Type::I64);
  auto nnodes = b.scalar("nnodes", Type::I64);
  auto nedges = b.scalar("nedges", Type::I64);
  auto front = b.array("front", Type::I64, {nfront});
  auto rowPtr = b.array("row_ptr", Type::I64, {nnodes + iconst(1)});
  auto colIdx = b.array("col_idx", Type::I64, {nedges});
  auto next = b.array("next", Type::F64, {nnodes});

  auto t = b.let("t", b.globalId(Axis::X));
  b.iff(lt(t, nfront), [&] {
    auto u = b.let("u", b.load(front, t));
    // row_ptr indexed through the frontier: a may-access read the inspector
    // tightens to the frontier nodes' rows.
    auto lo = b.let("lo", b.load(rowPtr, u));
    auto hi = b.let("hi", b.load(rowPtr, u + iconst(1)));
    b.forLoop("j", lo, hi, [&](ExprPtr j) {
      // Scatter: a may-access write (overlaps between partitions are legal —
      // every writer stores the same 1.0).
      b.store(next, b.load(colIdx, j), fconst(1.0));
    });
  });
  return b.build();
}

KernelPtr buildHistogram() {
  KernelBuilder b("histogram");
  auto n = b.scalar("n", Type::I64);
  auto nbins = b.scalar("nbins", Type::I64);
  auto keys = b.array("keys", Type::I64, {n});
  auto hist = b.array("hist", Type::F64, {nbins});

  auto i = b.let("i", b.globalId(Axis::X));
  b.iff(lt(i, n), [&] {
    auto k = b.let("k", b.load(keys, i));
    // Data-dependent read-modify-write: hist demotes to may-access on both
    // sides, which forces the serialized pre-partition gather path.
    b.store(hist, k, b.load(hist, k) + fconst(1.0));
  });
  return b.build();
}

ir::Module buildIrregularModule() {
  ir::Module m;
  m.addKernel(buildCsrSpmv());
  m.addKernel(buildBfsPush());
  m.addKernel(buildHistogram());
  return m;
}

}  // namespace polypart::apps
