#pragma once

// Host-side drivers for the benchmark applications.
//
// Each benchmark has two drivers:
//  - run*(rt::Runtime&, ...): the "transformed" multi-GPU application — host
//    logic as the source-to-source rewriter would emit it, calling the
//    runtime's CUDA-replacement primitives (Sections 5, 8),
//  - reference*(sim::Machine&, ...): the single-device binary the paper
//    compares against (NVCC-compiled original), launching the unpartitioned
//    kernels directly on device 0.
//
// Host pointers may be null in TimingOnly mode; data then never moves and
// only the simulated clock advances.

#include "rt/runtime.h"
#include "sim/machine.h"

namespace polypart::apps {

/// Launch geometry used by all drivers (K80-era defaults).
inline constexpr i64 kBlock1D = 256;
inline constexpr i64 kBlock2D = 16;

// -- saxpy ---------------------------------------------------------------------
void runSaxpy(rt::Runtime& rt, i64 n, double a, const double* x, double* yInOut);
void referenceSaxpy(sim::Machine& m, i64 n, double a, const double* x, double* yInOut);

// -- Hotspot (iterative 5-point stencil, ping-pong buffers) --------------------
void runHotspot(rt::Runtime& rt, i64 n, int iterations, double* tempInOut,
                const double* power);
void referenceHotspot(sim::Machine& m, i64 n, int iterations, double* tempInOut,
                      const double* power);

// -- N-Body (force pass + integration per iteration) ---------------------------
struct NBodyState {
  double* posx;
  double* posy;
  double* posz;
  double* velx;
  double* vely;
  double* velz;
  const double* mass;
};
void runNBody(rt::Runtime& rt, i64 n, int iterations, const NBodyState& state);
void referenceNBody(sim::Machine& m, i64 n, int iterations, const NBodyState& state);

// -- Matmul ---------------------------------------------------------------------
void runMatmul(rt::Runtime& rt, i64 n, const double* a, const double* b, double* c);
void referenceMatmul(sim::Machine& m, i64 n, const double* a, const double* b,
                     double* c);

// -- irregular workloads (may-access tier) --------------------------------------

/// A CSR matrix plus dense operand dimensions (host-side views).
struct CsrMatrix {
  i64 nrows = 0;
  i64 ncols = 0;
  i64 nnz = 0;
  const i64* rowPtr = nullptr;  // nrows + 1 entries
  const i64* colIdx = nullptr;  // nnz entries
  const double* vals = nullptr; // nnz entries
};

/// y = A * x for a CSR matrix A.
void runSpmv(rt::Runtime& rt, const CsrMatrix& a, const double* x, double* y);
void referenceSpmv(sim::Machine& m, const CsrMatrix& a, const double* x,
                   double* y);

/// One BFS push sweep over `front` (nfront node ids): nextInOut[v] = 1.0 for
/// every neighbour v of a frontier node.
void runBfsPush(rt::Runtime& rt, i64 nnodes, i64 nedges, const i64* rowPtr,
                const i64* colIdx, i64 nfront, const i64* front,
                double* nextInOut);
void referenceBfsPush(sim::Machine& m, i64 nnodes, i64 nedges, const i64* rowPtr,
                      const i64* colIdx, i64 nfront, const i64* front,
                      double* nextInOut);

/// histInOut[keys[i]] += 1.0 over all n keys (bins in [0, nbins)).
void runHistogram(rt::Runtime& rt, i64 n, i64 nbins, const i64* keys,
                  double* histInOut);
void referenceHistogram(sim::Machine& m, i64 n, i64 nbins, const i64* keys,
                        double* histInOut);

}  // namespace polypart::apps
