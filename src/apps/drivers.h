#pragma once

// Host-side drivers for the benchmark applications.
//
// Each benchmark has two drivers:
//  - run*(rt::Runtime&, ...): the "transformed" multi-GPU application — host
//    logic as the source-to-source rewriter would emit it, calling the
//    runtime's CUDA-replacement primitives (Sections 5, 8),
//  - reference*(sim::Machine&, ...): the single-device binary the paper
//    compares against (NVCC-compiled original), launching the unpartitioned
//    kernels directly on device 0.
//
// Host pointers may be null in TimingOnly mode; data then never moves and
// only the simulated clock advances.

#include "rt/runtime.h"
#include "sim/machine.h"

namespace polypart::apps {

/// Launch geometry used by all drivers (K80-era defaults).
inline constexpr i64 kBlock1D = 256;
inline constexpr i64 kBlock2D = 16;

// -- saxpy ---------------------------------------------------------------------
void runSaxpy(rt::Runtime& rt, i64 n, double a, const double* x, double* yInOut);
void referenceSaxpy(sim::Machine& m, i64 n, double a, const double* x, double* yInOut);

// -- Hotspot (iterative 5-point stencil, ping-pong buffers) --------------------
void runHotspot(rt::Runtime& rt, i64 n, int iterations, double* tempInOut,
                const double* power);
void referenceHotspot(sim::Machine& m, i64 n, int iterations, double* tempInOut,
                      const double* power);

// -- N-Body (force pass + integration per iteration) ---------------------------
struct NBodyState {
  double* posx;
  double* posy;
  double* posz;
  double* velx;
  double* vely;
  double* velz;
  const double* mass;
};
void runNBody(rt::Runtime& rt, i64 n, int iterations, const NBodyState& state);
void referenceNBody(sim::Machine& m, i64 n, int iterations, const NBodyState& state);

// -- Matmul ---------------------------------------------------------------------
void runMatmul(rt::Runtime& rt, i64 n, const double* a, const double* b, double* c);
void referenceMatmul(sim::Machine& m, i64 n, const double* a, const double* b,
                     double* c);

}  // namespace polypart::apps
