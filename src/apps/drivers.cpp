#include "apps/drivers.h"

#include "apps/kernels.h"
#include "support/arith.h"

namespace polypart::apps {

using ir::Dim3;
using rt::LaunchArg;
using rt::MemcpyKind;
using rt::Runtime;
using rt::VirtualBuffer;
using sim::DevBuffer;
using sim::KernelArg;
using sim::Machine;

namespace {

constexpr i64 kElem = 8;  // storage bytes per element

i64 ceilBlocks(i64 elems, i64 block) { return ceilDiv(elems, block); }

/// Hotspot model constants (arbitrary but shared with the CPU reference).
constexpr double kHotspotK = 0.175;
constexpr double kHotspotDt = 0.05;
constexpr double kNBodyDt = 0.01;

}  // namespace

// ===== saxpy ===================================================================

void runSaxpy(Runtime& rt, i64 n, double a, const double* x, double* yInOut) {
  VirtualBuffer* dx = rt.malloc(n * kElem);
  VirtualBuffer* dy = rt.malloc(n * kElem);
  rt.memcpy(dx, x, n * kElem, MemcpyKind::HostToDevice);
  rt.memcpy(dy, yInOut, n * kElem, MemcpyKind::HostToDevice);
  LaunchArg args[] = {LaunchArg::ofInt(n), LaunchArg::ofFloat(a),
                      LaunchArg::ofBuffer(dx), LaunchArg::ofBuffer(dy)};
  rt.launch("saxpy", Dim3{ceilBlocks(n, kBlock1D), 1, 1}, Dim3{kBlock1D, 1, 1}, args);
  rt.memcpy(yInOut, dy, n * kElem, MemcpyKind::DeviceToHost);
  rt.deviceSynchronize();
  rt.free(dx);
  rt.free(dy);
}

void referenceSaxpy(Machine& m, i64 n, double a, const double* x, double* yInOut) {
  DevBuffer dx = m.alloc(0, n * kElem);
  DevBuffer dy = m.alloc(0, n * kElem);
  m.copyHostToDevice(dx, 0, x, n * kElem);
  m.copyHostToDevice(dy, 0, yInOut, n * kElem);
  m.synchronizeAll();  // cudaMemcpy is blocking
  ir::KernelPtr k = buildSaxpy();
  KernelArg args[] = {KernelArg::ofInt(n), KernelArg::ofFloat(a),
                      KernelArg::ofBuffer(dx), KernelArg::ofBuffer(dy)};
  m.launchKernel(0, *k, {{ceilBlocks(n, kBlock1D), 1, 1}, {kBlock1D, 1, 1}}, args);
  m.synchronizeAll();
  m.copyDeviceToHost(yInOut, dy, 0, n * kElem);
  m.synchronizeAll();
  m.free(dx);
  m.free(dy);
}

// ===== Hotspot ==================================================================

void runHotspot(Runtime& rt, i64 n, int iterations, double* tempInOut,
                const double* power) {
  const i64 cells = n * n;
  VirtualBuffer* t0 = rt.malloc(cells * kElem);
  VirtualBuffer* t1 = rt.malloc(cells * kElem);
  VirtualBuffer* pw = rt.malloc(cells * kElem);
  rt.memcpy(t0, tempInOut, cells * kElem, MemcpyKind::HostToDevice);
  rt.memcpy(pw, power, cells * kElem, MemcpyKind::HostToDevice);

  const i64 blocks = ceilBlocks(n, kBlock2D);
  Dim3 grid{blocks, blocks, 1};
  Dim3 block{kBlock2D, kBlock2D, 1};
  VirtualBuffer* src = t0;
  VirtualBuffer* dst = t1;
  for (int it = 0; it < iterations; ++it) {
    LaunchArg args[] = {LaunchArg::ofInt(n), LaunchArg::ofFloat(kHotspotK),
                        LaunchArg::ofFloat(kHotspotDt), LaunchArg::ofBuffer(src),
                        LaunchArg::ofBuffer(pw), LaunchArg::ofBuffer(dst)};
    rt.launch("hotspot", grid, block, args);
    std::swap(src, dst);
  }
  rt.memcpy(tempInOut, src, cells * kElem, MemcpyKind::DeviceToHost);
  rt.deviceSynchronize();
  rt.free(t0);
  rt.free(t1);
  rt.free(pw);
}

void referenceHotspot(Machine& m, i64 n, int iterations, double* tempInOut,
                      const double* power) {
  const i64 cells = n * n;
  DevBuffer t0 = m.alloc(0, cells * kElem);
  DevBuffer t1 = m.alloc(0, cells * kElem);
  DevBuffer pw = m.alloc(0, cells * kElem);
  m.copyHostToDevice(t0, 0, tempInOut, cells * kElem);
  m.copyHostToDevice(pw, 0, power, cells * kElem);
  m.synchronizeAll();  // cudaMemcpy is blocking

  ir::KernelPtr k = buildHotspot();
  const i64 blocks = ceilBlocks(n, kBlock2D);
  ir::LaunchConfig cfg{{blocks, blocks, 1}, {kBlock2D, kBlock2D, 1}};
  DevBuffer src = t0, dst = t1;
  for (int it = 0; it < iterations; ++it) {
    KernelArg args[] = {KernelArg::ofInt(n), KernelArg::ofFloat(kHotspotK),
                        KernelArg::ofFloat(kHotspotDt), KernelArg::ofBuffer(src),
                        KernelArg::ofBuffer(pw), KernelArg::ofBuffer(dst)};
    m.launchKernel(0, *k, cfg, args);
    std::swap(src, dst);
  }
  m.synchronizeAll();
  m.copyDeviceToHost(tempInOut, src, 0, cells * kElem);
  m.synchronizeAll();
  m.free(t0);
  m.free(t1);
  m.free(pw);
}

// ===== N-Body ===================================================================

void runNBody(Runtime& rt, i64 n, int iterations, const NBodyState& s) {
  const i64 bytes = n * kElem;
  VirtualBuffer* px = rt.malloc(bytes);
  VirtualBuffer* py = rt.malloc(bytes);
  VirtualBuffer* pz = rt.malloc(bytes);
  VirtualBuffer* vx = rt.malloc(bytes);
  VirtualBuffer* vy = rt.malloc(bytes);
  VirtualBuffer* vz = rt.malloc(bytes);
  VirtualBuffer* ax = rt.malloc(bytes);
  VirtualBuffer* ay = rt.malloc(bytes);
  VirtualBuffer* az = rt.malloc(bytes);
  VirtualBuffer* ms = rt.malloc(bytes);
  rt.memcpy(px, s.posx, bytes, MemcpyKind::HostToDevice);
  rt.memcpy(py, s.posy, bytes, MemcpyKind::HostToDevice);
  rt.memcpy(pz, s.posz, bytes, MemcpyKind::HostToDevice);
  rt.memcpy(vx, s.velx, bytes, MemcpyKind::HostToDevice);
  rt.memcpy(vy, s.vely, bytes, MemcpyKind::HostToDevice);
  rt.memcpy(vz, s.velz, bytes, MemcpyKind::HostToDevice);
  rt.memcpy(ms, s.mass, bytes, MemcpyKind::HostToDevice);

  Dim3 grid{ceilBlocks(n, kBlock1D), 1, 1};
  Dim3 block{kBlock1D, 1, 1};
  for (int it = 0; it < iterations; ++it) {
    LaunchArg fArgs[] = {LaunchArg::ofInt(n), LaunchArg::ofBuffer(px),
                         LaunchArg::ofBuffer(py), LaunchArg::ofBuffer(pz),
                         LaunchArg::ofBuffer(ms), LaunchArg::ofBuffer(ax),
                         LaunchArg::ofBuffer(ay), LaunchArg::ofBuffer(az)};
    rt.launch("nbody_forces", grid, block, fArgs);
    LaunchArg uArgs[] = {LaunchArg::ofInt(n), LaunchArg::ofFloat(kNBodyDt),
                         LaunchArg::ofBuffer(px), LaunchArg::ofBuffer(py),
                         LaunchArg::ofBuffer(pz), LaunchArg::ofBuffer(vx),
                         LaunchArg::ofBuffer(vy), LaunchArg::ofBuffer(vz),
                         LaunchArg::ofBuffer(ax), LaunchArg::ofBuffer(ay),
                         LaunchArg::ofBuffer(az)};
    rt.launch("nbody_update", grid, block, uArgs);
  }
  rt.memcpy(s.posx, px, bytes, MemcpyKind::DeviceToHost);
  rt.memcpy(s.posy, py, bytes, MemcpyKind::DeviceToHost);
  rt.memcpy(s.posz, pz, bytes, MemcpyKind::DeviceToHost);
  rt.memcpy(s.velx, vx, bytes, MemcpyKind::DeviceToHost);
  rt.memcpy(s.vely, vy, bytes, MemcpyKind::DeviceToHost);
  rt.memcpy(s.velz, vz, bytes, MemcpyKind::DeviceToHost);
  rt.deviceSynchronize();
  for (VirtualBuffer* b : {px, py, pz, vx, vy, vz, ax, ay, az, ms}) rt.free(b);
}

void referenceNBody(Machine& m, i64 n, int iterations, const NBodyState& s) {
  const i64 bytes = n * kElem;
  DevBuffer px = m.alloc(0, bytes), py = m.alloc(0, bytes), pz = m.alloc(0, bytes);
  DevBuffer vx = m.alloc(0, bytes), vy = m.alloc(0, bytes), vz = m.alloc(0, bytes);
  DevBuffer ax = m.alloc(0, bytes), ay = m.alloc(0, bytes), az = m.alloc(0, bytes);
  DevBuffer ms = m.alloc(0, bytes);
  m.copyHostToDevice(px, 0, s.posx, bytes);
  m.copyHostToDevice(py, 0, s.posy, bytes);
  m.copyHostToDevice(pz, 0, s.posz, bytes);
  m.copyHostToDevice(vx, 0, s.velx, bytes);
  m.copyHostToDevice(vy, 0, s.vely, bytes);
  m.copyHostToDevice(vz, 0, s.velz, bytes);
  m.copyHostToDevice(ms, 0, s.mass, bytes);
  m.synchronizeAll();  // cudaMemcpy is blocking

  ir::KernelPtr forces = buildNBodyForces();
  ir::KernelPtr update = buildNBodyUpdate();
  ir::LaunchConfig cfg{{ceilBlocks(n, kBlock1D), 1, 1}, {kBlock1D, 1, 1}};
  for (int it = 0; it < iterations; ++it) {
    KernelArg fArgs[] = {KernelArg::ofInt(n), KernelArg::ofBuffer(px),
                         KernelArg::ofBuffer(py), KernelArg::ofBuffer(pz),
                         KernelArg::ofBuffer(ms), KernelArg::ofBuffer(ax),
                         KernelArg::ofBuffer(ay), KernelArg::ofBuffer(az)};
    m.launchKernel(0, *forces, cfg, fArgs);
    KernelArg uArgs[] = {KernelArg::ofInt(n), KernelArg::ofFloat(kNBodyDt),
                         KernelArg::ofBuffer(px), KernelArg::ofBuffer(py),
                         KernelArg::ofBuffer(pz), KernelArg::ofBuffer(vx),
                         KernelArg::ofBuffer(vy), KernelArg::ofBuffer(vz),
                         KernelArg::ofBuffer(ax), KernelArg::ofBuffer(ay),
                         KernelArg::ofBuffer(az)};
    m.launchKernel(0, *update, cfg, uArgs);
  }
  m.synchronizeAll();
  m.copyDeviceToHost(s.posx, px, 0, bytes);
  m.copyDeviceToHost(s.posy, py, 0, bytes);
  m.copyDeviceToHost(s.posz, pz, 0, bytes);
  m.copyDeviceToHost(s.velx, vx, 0, bytes);
  m.copyDeviceToHost(s.vely, vy, 0, bytes);
  m.copyDeviceToHost(s.velz, vz, 0, bytes);
  m.synchronizeAll();
  for (DevBuffer b : {px, py, pz, vx, vy, vz, ax, ay, az, ms}) m.free(b);
}

// ===== Matmul ===================================================================

void runMatmul(Runtime& rt, i64 n, const double* a, const double* b, double* c) {
  const i64 bytes = n * n * kElem;
  VirtualBuffer* da = rt.malloc(bytes);
  VirtualBuffer* db = rt.malloc(bytes);
  VirtualBuffer* dc = rt.malloc(bytes);
  rt.memcpy(da, a, bytes, MemcpyKind::HostToDevice);
  rt.memcpy(db, b, bytes, MemcpyKind::HostToDevice);
  const i64 blocks = ceilBlocks(n, kBlock2D);
  LaunchArg args[] = {LaunchArg::ofInt(n), LaunchArg::ofBuffer(da),
                      LaunchArg::ofBuffer(db), LaunchArg::ofBuffer(dc)};
  rt.launch("matmul", Dim3{blocks, blocks, 1}, Dim3{kBlock2D, kBlock2D, 1}, args);
  rt.memcpy(c, dc, bytes, MemcpyKind::DeviceToHost);
  rt.deviceSynchronize();
  rt.free(da);
  rt.free(db);
  rt.free(dc);
}

void referenceMatmul(Machine& m, i64 n, const double* a, const double* b,
                     double* c) {
  const i64 bytes = n * n * kElem;
  DevBuffer da = m.alloc(0, bytes);
  DevBuffer db = m.alloc(0, bytes);
  DevBuffer dc = m.alloc(0, bytes);
  m.copyHostToDevice(da, 0, a, bytes);
  m.copyHostToDevice(db, 0, b, bytes);
  m.synchronizeAll();  // cudaMemcpy is blocking
  ir::KernelPtr k = buildMatmul();
  const i64 blocks = ceilBlocks(n, kBlock2D);
  KernelArg args[] = {KernelArg::ofInt(n), KernelArg::ofBuffer(da),
                      KernelArg::ofBuffer(db), KernelArg::ofBuffer(dc)};
  m.launchKernel(0, *k, {{blocks, blocks, 1}, {kBlock2D, kBlock2D, 1}}, args);
  m.synchronizeAll();
  m.copyDeviceToHost(c, dc, 0, bytes);
  m.synchronizeAll();
  m.free(da);
  m.free(db);
  m.free(dc);
}

// ===== CSR spmv =================================================================

void runSpmv(Runtime& rt, const CsrMatrix& a, const double* x, double* y) {
  VirtualBuffer* drp = rt.malloc((a.nrows + 1) * kElem);
  VirtualBuffer* dci = rt.malloc(a.nnz * kElem);
  VirtualBuffer* dva = rt.malloc(a.nnz * kElem);
  VirtualBuffer* dx = rt.malloc(a.ncols * kElem);
  VirtualBuffer* dy = rt.malloc(a.nrows * kElem);
  rt.memcpy(drp, a.rowPtr, (a.nrows + 1) * kElem, MemcpyKind::HostToDevice);
  rt.memcpy(dci, a.colIdx, a.nnz * kElem, MemcpyKind::HostToDevice);
  rt.memcpy(dva, a.vals, a.nnz * kElem, MemcpyKind::HostToDevice);
  rt.memcpy(dx, x, a.ncols * kElem, MemcpyKind::HostToDevice);
  LaunchArg args[] = {LaunchArg::ofInt(a.nrows),   LaunchArg::ofInt(a.ncols),
                      LaunchArg::ofInt(a.nnz),     LaunchArg::ofBuffer(drp),
                      LaunchArg::ofBuffer(dci),    LaunchArg::ofBuffer(dva),
                      LaunchArg::ofBuffer(dx),     LaunchArg::ofBuffer(dy)};
  rt.launch("spmv", Dim3{ceilBlocks(a.nrows, kBlock1D), 1, 1},
            Dim3{kBlock1D, 1, 1}, args);
  rt.memcpy(y, dy, a.nrows * kElem, MemcpyKind::DeviceToHost);
  rt.deviceSynchronize();
  for (VirtualBuffer* b : {drp, dci, dva, dx, dy}) rt.free(b);
}

void referenceSpmv(Machine& m, const CsrMatrix& a, const double* x, double* y) {
  DevBuffer drp = m.alloc(0, (a.nrows + 1) * kElem);
  DevBuffer dci = m.alloc(0, a.nnz * kElem);
  DevBuffer dva = m.alloc(0, a.nnz * kElem);
  DevBuffer dx = m.alloc(0, a.ncols * kElem);
  DevBuffer dy = m.alloc(0, a.nrows * kElem);
  m.copyHostToDevice(drp, 0, a.rowPtr, (a.nrows + 1) * kElem);
  m.copyHostToDevice(dci, 0, a.colIdx, a.nnz * kElem);
  m.copyHostToDevice(dva, 0, a.vals, a.nnz * kElem);
  m.copyHostToDevice(dx, 0, x, a.ncols * kElem);
  m.synchronizeAll();  // cudaMemcpy is blocking
  ir::KernelPtr k = buildCsrSpmv();
  KernelArg args[] = {KernelArg::ofInt(a.nrows),   KernelArg::ofInt(a.ncols),
                      KernelArg::ofInt(a.nnz),     KernelArg::ofBuffer(drp),
                      KernelArg::ofBuffer(dci),    KernelArg::ofBuffer(dva),
                      KernelArg::ofBuffer(dx),     KernelArg::ofBuffer(dy)};
  m.launchKernel(0, *k,
                 {{ceilBlocks(a.nrows, kBlock1D), 1, 1}, {kBlock1D, 1, 1}},
                 args);
  m.synchronizeAll();
  m.copyDeviceToHost(y, dy, 0, a.nrows * kElem);
  m.synchronizeAll();
  for (DevBuffer b : {drp, dci, dva, dx, dy}) m.free(b);
}

// ===== BFS push sweep ===========================================================

void runBfsPush(Runtime& rt, i64 nnodes, i64 nedges, const i64* rowPtr,
                const i64* colIdx, i64 nfront, const i64* front,
                double* nextInOut) {
  VirtualBuffer* dfr = rt.malloc(nfront * kElem);
  VirtualBuffer* drp = rt.malloc((nnodes + 1) * kElem);
  VirtualBuffer* dci = rt.malloc(nedges * kElem);
  VirtualBuffer* dnx = rt.malloc(nnodes * kElem);
  rt.memcpy(dfr, front, nfront * kElem, MemcpyKind::HostToDevice);
  rt.memcpy(drp, rowPtr, (nnodes + 1) * kElem, MemcpyKind::HostToDevice);
  rt.memcpy(dci, colIdx, nedges * kElem, MemcpyKind::HostToDevice);
  rt.memcpy(dnx, nextInOut, nnodes * kElem, MemcpyKind::HostToDevice);
  LaunchArg args[] = {LaunchArg::ofInt(nfront), LaunchArg::ofInt(nnodes),
                      LaunchArg::ofInt(nedges), LaunchArg::ofBuffer(dfr),
                      LaunchArg::ofBuffer(drp), LaunchArg::ofBuffer(dci),
                      LaunchArg::ofBuffer(dnx)};
  rt.launch("bfs_push", Dim3{ceilBlocks(nfront, kBlock1D), 1, 1},
            Dim3{kBlock1D, 1, 1}, args);
  rt.memcpy(nextInOut, dnx, nnodes * kElem, MemcpyKind::DeviceToHost);
  rt.deviceSynchronize();
  for (VirtualBuffer* b : {dfr, drp, dci, dnx}) rt.free(b);
}

void referenceBfsPush(Machine& m, i64 nnodes, i64 nedges, const i64* rowPtr,
                      const i64* colIdx, i64 nfront, const i64* front,
                      double* nextInOut) {
  DevBuffer dfr = m.alloc(0, nfront * kElem);
  DevBuffer drp = m.alloc(0, (nnodes + 1) * kElem);
  DevBuffer dci = m.alloc(0, nedges * kElem);
  DevBuffer dnx = m.alloc(0, nnodes * kElem);
  m.copyHostToDevice(dfr, 0, front, nfront * kElem);
  m.copyHostToDevice(drp, 0, rowPtr, (nnodes + 1) * kElem);
  m.copyHostToDevice(dci, 0, colIdx, nedges * kElem);
  m.copyHostToDevice(dnx, 0, nextInOut, nnodes * kElem);
  m.synchronizeAll();  // cudaMemcpy is blocking
  ir::KernelPtr k = buildBfsPush();
  KernelArg args[] = {KernelArg::ofInt(nfront), KernelArg::ofInt(nnodes),
                      KernelArg::ofInt(nedges), KernelArg::ofBuffer(dfr),
                      KernelArg::ofBuffer(drp), KernelArg::ofBuffer(dci),
                      KernelArg::ofBuffer(dnx)};
  m.launchKernel(0, *k, {{ceilBlocks(nfront, kBlock1D), 1, 1}, {kBlock1D, 1, 1}},
                 args);
  m.synchronizeAll();
  m.copyDeviceToHost(nextInOut, dnx, 0, nnodes * kElem);
  m.synchronizeAll();
  for (DevBuffer b : {dfr, drp, dci, dnx}) m.free(b);
}

// ===== Histogram ================================================================

void runHistogram(Runtime& rt, i64 n, i64 nbins, const i64* keys,
                  double* histInOut) {
  VirtualBuffer* dk = rt.malloc(n * kElem);
  VirtualBuffer* dh = rt.malloc(nbins * kElem);
  rt.memcpy(dk, keys, n * kElem, MemcpyKind::HostToDevice);
  rt.memcpy(dh, histInOut, nbins * kElem, MemcpyKind::HostToDevice);
  LaunchArg args[] = {LaunchArg::ofInt(n), LaunchArg::ofInt(nbins),
                      LaunchArg::ofBuffer(dk), LaunchArg::ofBuffer(dh)};
  rt.launch("histogram", Dim3{ceilBlocks(n, kBlock1D), 1, 1},
            Dim3{kBlock1D, 1, 1}, args);
  rt.memcpy(histInOut, dh, nbins * kElem, MemcpyKind::DeviceToHost);
  rt.deviceSynchronize();
  rt.free(dk);
  rt.free(dh);
}

void referenceHistogram(Machine& m, i64 n, i64 nbins, const i64* keys,
                        double* histInOut) {
  DevBuffer dk = m.alloc(0, n * kElem);
  DevBuffer dh = m.alloc(0, nbins * kElem);
  m.copyHostToDevice(dk, 0, keys, n * kElem);
  m.copyHostToDevice(dh, 0, histInOut, nbins * kElem);
  m.synchronizeAll();  // cudaMemcpy is blocking
  ir::KernelPtr k = buildHistogram();
  KernelArg args[] = {KernelArg::ofInt(n), KernelArg::ofInt(nbins),
                      KernelArg::ofBuffer(dk), KernelArg::ofBuffer(dh)};
  m.launchKernel(0, *k, {{ceilBlocks(n, kBlock1D), 1, 1}, {kBlock1D, 1, 1}}, args);
  m.synchronizeAll();
  m.copyDeviceToHost(histInOut, dh, 0, nbins * kElem);
  m.synchronizeAll();
  m.free(dk);
  m.free(dh);
}

}  // namespace polypart::apps
