#pragma once

// Plain CPU reference implementations of the benchmark computations.  The
// integration tests compare multi-GPU partitioned execution against these
// bit-for-bit (the IR interpreter and these loops perform the same double
// arithmetic in the same order per element).

#include <span>

#include "support/arith.h"

namespace polypart::apps {

/// y[i] += a * x[i].
void refSaxpy(double a, std::span<const double> x, std::span<double> y);

/// One Hotspot step on an n x n grid (interior 5-point relaxation with power
/// injection, borders copied).
void refHotspotStep(i64 n, double k, double dt, std::span<const double> tin,
                    std::span<const double> power, std::span<double> tout);

/// Direct O(n^2) gravitational accelerations with softening 1e-9.
void refNBodyForces(i64 n, std::span<const double> px, std::span<const double> py,
                    std::span<const double> pz, std::span<const double> mass,
                    std::span<double> ax, std::span<double> ay, std::span<double> az);

/// Velocity/position integration.
void refNBodyUpdate(i64 n, double dt, std::span<double> px, std::span<double> py,
                    std::span<double> pz, std::span<double> vx, std::span<double> vy,
                    std::span<double> vz, std::span<const double> ax,
                    std::span<const double> ay, std::span<const double> az);

/// C = A * B (n x n, row-major).
void refMatmul(i64 n, std::span<const double> a, std::span<const double> b,
               std::span<double> c);

/// CSR sparse matvec: y[r] = sum over row r of vals[j] * x[colIdx[j]],
/// nonzeros in j-ascending order (the accumulation order the IR kernel uses).
void refSpmv(std::span<const i64> rowPtr, std::span<const i64> colIdx,
             std::span<const double> vals, std::span<const double> x,
             std::span<double> y);

/// BFS push sweep: next[colIdx[j]] = 1.0 for every edge j of every frontier
/// node front[t].
void refBfsPush(std::span<const i64> rowPtr, std::span<const i64> colIdx,
                std::span<const i64> front, std::span<double> next);

/// Histogram: hist[keys[i]] += 1.0, keys in ascending i order.
void refHistogram(std::span<const i64> keys, std::span<double> hist);

}  // namespace polypart::apps
