#pragma once

// Benchmark configurations from the paper (Table 1).

#include <string>
#include <vector>

#include "support/arith.h"

namespace polypart::apps {

enum class Benchmark { Hotspot, NBody, Matmul };

inline const char* benchmarkName(Benchmark b) {
  switch (b) {
    case Benchmark::Hotspot: return "Hotspot";
    case Benchmark::NBody: return "N-Body";
    case Benchmark::Matmul: return "Matmul";
  }
  return "?";
}

enum class ProblemSize { Small, Medium, Large };

inline const char* problemSizeName(ProblemSize s) {
  switch (s) {
    case ProblemSize::Small: return "Small";
    case ProblemSize::Medium: return "Medium";
    case ProblemSize::Large: return "Large";
  }
  return "?";
}

/// One row of Table 1.
struct WorkloadConfig {
  Benchmark benchmark;
  ProblemSize size;
  i64 problemSize;  // grid side length / body count / matrix side length
  i64 iterations;   // outer host iterations (1 for Matmul)
};

/// Table 1: Configurations of the benchmark applications.
inline std::vector<WorkloadConfig> table1Configs() {
  return {
      {Benchmark::Hotspot, ProblemSize::Small, 8192, 1500},
      {Benchmark::Hotspot, ProblemSize::Medium, 16384, 1500},
      {Benchmark::Hotspot, ProblemSize::Large, 36864, 1500},
      {Benchmark::NBody, ProblemSize::Small, 65536, 96},
      {Benchmark::NBody, ProblemSize::Medium, 131072, 96},
      {Benchmark::NBody, ProblemSize::Large, 327680, 96},
      {Benchmark::Matmul, ProblemSize::Small, 8192, 1},
      {Benchmark::Matmul, ProblemSize::Medium, 16384, 1},
      {Benchmark::Matmul, ProblemSize::Large, 30656, 1},
  };
}

inline WorkloadConfig configFor(Benchmark b, ProblemSize s) {
  for (const WorkloadConfig& c : table1Configs())
    if (c.benchmark == b && c.size == s) return c;
  return {};
}

/// GPU counts evaluated in the paper's figures.
inline std::vector<int> paperGpuCounts() { return {1, 2, 4, 6, 8, 10, 12, 14, 16}; }

}  // namespace polypart::apps
