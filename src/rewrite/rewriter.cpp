#include "rewrite/rewriter.h"

#include <cctype>
#include <map>

#include "support/error.h"
#include "support/str.h"

namespace polypart::rewrite {

namespace {

/// Identifier-for-identifier API substitutions (Section 8.4: replacements
/// have identical prototypes).
const std::map<std::string, std::string>& apiSubstitutions() {
  static const std::map<std::string, std::string> subs = {
      {"cudaMalloc", "gpartMalloc"},
      {"cudaFree", "gpartFree"},
      {"cudaMemcpy", "gpartMemcpy"},
      {"cudaMemcpyAsync", "gpartMemcpyAsync"},
      {"cudaGetDeviceCount", "gpartGetDeviceCount"},
      {"cudaDeviceSynchronize", "gpartDeviceSynchronize"},
      {"cudaMemcpyHostToDevice", "gpartMemcpyHostToDevice"},
      {"cudaMemcpyDeviceToHost", "gpartMemcpyDeviceToHost"},
      {"cudaMemcpyDeviceToDevice", "gpartMemcpyDeviceToDevice"},
      {"cudaMemcpyHostToHost", "gpartMemcpyHostToHost"},
      {"cudaSuccess", "gpartSuccess"},
      {"cudaError_t", "gpartError"},
  };
  return subs;
}

/// Scanner over the source that understands comments, string and character
/// literals, and identifiers; everything it does not need to understand is
/// copied through verbatim.
class Scanner {
 public:
  explicit Scanner(const std::string& src) : src_(src) {}

  bool atEnd() const { return pos_ >= src_.size(); }
  std::size_t pos() const { return pos_; }
  void seek(std::size_t p) { pos_ = p; }

  /// Skips (returns) one lexical element starting at the cursor: a comment,
  /// a literal, an identifier, or a single character.  Returns the source
  /// text of the element.
  std::string next() {
    std::size_t start = pos_;
    char c = src_[pos_];
    if (c == '/' && pos_ + 1 < src_.size() && src_[pos_ + 1] == '/') {
      while (pos_ < src_.size() && src_[pos_] != '\n') ++pos_;
    } else if (c == '/' && pos_ + 1 < src_.size() && src_[pos_ + 1] == '*') {
      pos_ += 2;
      while (pos_ + 1 < src_.size() && !(src_[pos_] == '*' && src_[pos_ + 1] == '/'))
        ++pos_;
      pos_ = std::min(pos_ + 2, src_.size());
    } else if (c == '"' || c == '\'') {
      ++pos_;
      while (pos_ < src_.size() && src_[pos_] != c) {
        if (src_[pos_] == '\\') ++pos_;
        ++pos_;
      }
      if (pos_ < src_.size()) ++pos_;
    } else if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      while (pos_ < src_.size() &&
             (std::isalnum(static_cast<unsigned char>(src_[pos_])) || src_[pos_] == '_'))
        ++pos_;
    } else {
      ++pos_;
    }
    return src_.substr(start, pos_ - start);
  }

  static bool isIdentifier(const std::string& tok) {
    return !tok.empty() &&
           (std::isalpha(static_cast<unsigned char>(tok[0])) || tok[0] == '_');
  }

  /// Peeks past whitespace for a literal string match at the cursor.
  bool lookingAt(const std::string& text) const {
    std::size_t p = pos_;
    while (p < src_.size() && std::isspace(static_cast<unsigned char>(src_[p]))) ++p;
    return src_.compare(p, text.size(), text) == 0;
  }

  void skipWhitespace() {
    while (pos_ < src_.size() && std::isspace(static_cast<unsigned char>(src_[pos_])))
      ++pos_;
  }

  /// Consumes a literal (after whitespace); returns false when absent.
  bool consume(const std::string& text) {
    skipWhitespace();
    if (src_.compare(pos_, text.size(), text) != 0) return false;
    pos_ += text.size();
    return true;
  }

  /// Reads up to a top-level occurrence of one of `stops` (not inside
  /// parentheses/brackets, comments, or literals).  The stop character is
  /// not consumed.  Returns the collected text.
  std::string readBalancedUntil(const std::string& stops) {
    std::string out;
    int depth = 0;
    while (!atEnd()) {
      char c = src_[pos_];
      if (depth == 0 && stops.find(c) != std::string::npos) break;
      if (c == '(' || c == '[' || c == '{') ++depth;
      if (c == ')' || c == ']' || c == '}') --depth;
      out += next();
    }
    return out;
  }

 private:
  const std::string& src_;
  std::size_t pos_ = 0;
};

/// Splits a top-level comma-separated argument list.
std::vector<std::string> splitArgs(const std::string& text) {
  std::vector<std::string> out;
  Scanner s(text);
  std::string cur;
  while (!s.atEnd()) {
    std::string piece = s.readBalancedUntil(",");
    cur += piece;
    if (!s.atEnd()) {
      s.next();  // the comma
      out.push_back(polypart::trim(cur));
      cur.clear();
    }
  }
  cur = polypart::trim(cur);
  if (!cur.empty()) out.push_back(cur);
  return out;
}

std::string prologue(const std::string& modelPath) {
  return
      "// --- begin polypart prologue (inserted by the source rewriter) ---\n"
      "#include \"gpart_runtime.h\"\n"
      "// Application model produced by compiler pass 1 (kernel access maps,\n"
      "// partitioning strategies); loaded by the runtime at startup.\n"
      "GPART_REGISTER_MODEL(\"" + modelPath + "\");\n"
      "// --- end polypart prologue ---\n\n";
}

}  // namespace

std::string Rewriter::rewrite(const std::string& source, RewriteReport* report) const {
  RewriteReport localReport;
  std::string out = prologue(modelPath_);

  Scanner s(source);
  while (!s.atEnd()) {
    std::size_t mark = s.pos();
    std::string tok = s.next();
    if (!Scanner::isIdentifier(tok)) {
      out += tok;
      continue;
    }

    // Substitution class 2: API identifiers.
    auto it = apiSubstitutions().find(tok);
    if (it != apiSubstitutions().end()) {
      out += it->second;
      ++localReport.apiSubstitutions;
      continue;
    }

    // Substitution class 3: kernel launches `name<<<grid, block>>>(args);`.
    if (s.lookingAt("<<<")) {
      Scanner probe(source);
      probe.seek(s.pos());
      if (probe.consume("<<<")) {
        std::string launchConfig = probe.readBalancedUntil(">");
        if (probe.consume(">>>")) {
          probe.skipWhitespace();
          if (probe.consume("(")) {
            std::string argText = probe.readBalancedUntil(")");
            if (probe.consume(")")) {
              probe.consume(";");
              std::vector<std::string> cfg = splitArgs(launchConfig);
              std::vector<std::string> args = splitArgs(argText);
              if (cfg.size() >= 2) {
                // Expanded launch: the primitive implements the Fig. 4
                // sequence (synchronize reads / launch partitions / update
                // trackers) against the partitioned kernel clones.
                std::vector<std::string> wrapped;
                wrapped.reserve(args.size());
                for (const std::string& a : args)
                  wrapped.push_back("gpartArgOf(" + a + ")");
                out += "/* partitioned launch (paper Fig. 4) */ "
                       "gpartLaunchKernel(\"" + tok + "\", " + cfg[0] + ", " +
                       cfg[1] + ", {" + join(wrapped, ", ") + "});";
                ++localReport.launchesRewritten;
                localReport.kernelsLaunched.push_back(tok);
                s.seek(probe.pos());
                continue;
              }
            }
          }
        }
      }
      // Malformed launch syntax: fall through and copy verbatim.
      s.seek(mark);
      out += s.next();
      continue;
    }

    out += tok;
  }

  if (report) *report = localReport;
  return out;
}

}  // namespace polypart::rewrite
