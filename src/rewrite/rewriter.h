#pragma once

// Source-to-source host code rewriter (paper Section 5).
//
// The paper transforms CUDA host code with text substitutions ("We decided
// to use text substitutions ... This allows for a simple implementation at
// the cost of not supporting all possible CUDA applications"); the original
// used a lua preprocessor, this is the C++ equivalent with a small scanner
// that is comment- and string-literal-aware.
//
// Three substitution classes are applied:
//   1. a prologue inserted at the top of the file (runtime header include
//      and the application-model reference),
//   2. CUDA memory/device API calls and memcpy-kind constants redirected to
//      the gpart replacements with identical prototypes (Section 8.4),
//   3. kernel launches `k<<<grid, block>>>(args);` expanded into the
//      partitioned-launch primitive, whose implementation performs the
//      three loops of Fig. 4 (synchronize read sets, launch partitions,
//      update trackers).

#include <string>
#include <vector>

namespace polypart::rewrite {

struct RewriteReport {
  int apiSubstitutions = 0;
  int launchesRewritten = 0;
  std::vector<std::string> kernelsLaunched;
};

class Rewriter {
 public:
  /// `modelPath` is embedded into the prologue so the runtime can locate the
  /// serialized application model of pass 1.
  explicit Rewriter(std::string modelPath = "app.model.json")
      : modelPath_(std::move(modelPath)) {}

  /// Rewrites one CUDA host source file.  Unrecognized constructs pass
  /// through untouched; comments and string literals are never altered.
  std::string rewrite(const std::string& source, RewriteReport* report = nullptr) const;

 private:
  std::string modelPath_;
};

}  // namespace polypart::rewrite
