#pragma once

// In-memory B+ tree map.
//
// The paper's buffer tracker keeps its segment list "based on a B-Tree map
// using the start of each segment as the key" (Section 8.1).  This is that
// data structure: internal nodes route by key, all entries live in leaves,
// and leaves are linked for in-order traversal — exactly the access pattern
// the tracker needs (predecessor search, then a short ordered walk).
//
// bench/ablation_tracker compares it against a std::map-backed tracker.

#include <array>
#include <memory>
#include <utility>

#include "support/error.h"

namespace polypart::rt {

template <typename Key, typename Value, int Order = 16>
class BTreeMap {
  static_assert(Order >= 4, "B-tree order must be at least 4");

  struct Node;
  struct Leaf;
  struct Inner;

 public:
  BTreeMap() = default;
  ~BTreeMap() { destroy(root_); }

  BTreeMap(const BTreeMap&) = delete;
  BTreeMap& operator=(const BTreeMap&) = delete;
  BTreeMap(BTreeMap&& o) noexcept { swap(o); }
  BTreeMap& operator=(BTreeMap&& o) noexcept {
    if (this != &o) {
      destroy(root_);
      root_ = nullptr;
      size_ = 0;
      swap(o);
    }
    return *this;
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Position within the tree; iterates leaf-to-leaf in key order.
  class Iterator {
   public:
    Iterator() = default;
    bool atEnd() const { return leaf_ == nullptr; }
    const Key& key() const { return leaf_->keys[idx_]; }
    Value& value() { return leaf_->values[idx_]; }
    const Value& value() const { return leaf_->values[idx_]; }

    void next() {
      PP_ASSERT(leaf_);
      if (++idx_ >= leaf_->count) {
        leaf_ = leaf_->next;
        idx_ = 0;
      }
    }

    bool operator==(const Iterator&) const = default;

   private:
    friend class BTreeMap;
    Iterator(Leaf* leaf, int idx) : leaf_(leaf), idx_(idx) {}
    Leaf* leaf_ = nullptr;
    int idx_ = 0;
  };

  Iterator begin() const {
    Leaf* l = firstLeaf();
    return (l && l->count > 0) ? Iterator(l, 0) : Iterator();
  }
  Iterator end() const { return Iterator(); }

  /// First entry with key >= k.
  Iterator lowerBound(const Key& k) const {
    if (!root_) return end();
    Node* n = root_;
    while (!n->isLeaf) {
      Inner* in = static_cast<Inner*>(n);
      int i = 0;
      while (i < in->count && !(k < in->keys[i])) ++i;
      n = in->children[i];
    }
    Leaf* l = static_cast<Leaf*>(n);
    int i = 0;
    while (i < l->count && l->keys[i] < k) ++i;
    if (i == l->count) {
      l = l->next;
      i = 0;
      if (!l) return end();
    }
    return Iterator(l, i);
  }

  /// Last entry with key <= k, or end().
  Iterator floorEntry(const Key& k) const {
    Iterator it = lowerBound(k);
    if (!it.atEnd() && !(k < it.key())) return it;  // exact match
    return predecessor(it);
  }

  /// The entry just before `it` in key order (end() when none).
  Iterator predecessor(const Iterator& it) const {
    if (!root_) return end();
    if (it.atEnd()) {
      Leaf* l = lastLeaf();
      return (l && l->count > 0) ? Iterator(l, l->count - 1) : end();
    }
    if (it.idx_ > 0) return Iterator(it.leaf_, it.idx_ - 1);
    Leaf* prev = it.leaf_->prev;
    return prev ? Iterator(prev, prev->count - 1) : end();
  }

  Iterator find(const Key& k) const {
    Iterator it = lowerBound(k);
    if (!it.atEnd() && !(k < it.key())) return it;
    return end();
  }

  /// Inserts or overwrites.
  void insert(const Key& k, Value v) {
    if (!root_) {
      Leaf* l = new Leaf();
      l->keys[0] = k;
      l->values[0] = std::move(v);
      l->count = 1;
      root_ = l;
      size_ = 1;
      return;
    }
    SplitResult split = insertRec(root_, k, std::move(v));
    if (split.happened) {
      Inner* newRoot = new Inner();
      newRoot->keys[0] = split.separator;
      newRoot->children[0] = root_;
      newRoot->children[1] = split.right;
      newRoot->count = 1;
      root_ = newRoot;
    }
  }

  /// Removes the entry with key k; returns false when absent.
  bool erase(const Key& k) {
    if (!root_) return false;
    bool removed = eraseRec(root_, k);
    if (!removed) return false;
    --size_;
    // Shrink the root when it becomes trivial.
    if (!root_->isLeaf) {
      Inner* in = static_cast<Inner*>(root_);
      if (in->count == 0) {
        root_ = in->children[0];
        in->count = -1;  // prevent child destruction
        deleteInnerShallow(in);
      }
    } else if (static_cast<Leaf*>(root_)->count == 0) {
      delete static_cast<Leaf*>(root_);
      root_ = nullptr;
    }
    return true;
  }

  void clear() {
    destroy(root_);
    root_ = nullptr;
    size_ = 0;
  }

  /// Height of the tree (0 when empty); exercised by tests to check balance.
  int height() const {
    int h = 0;
    for (Node* n = root_; n; ++h) {
      if (n->isLeaf) break;
      n = static_cast<Inner*>(n)->children[0];
    }
    return root_ ? h + (root_->isLeaf ? 1 : 0) : 0;
  }

 private:
  struct Node {
    bool isLeaf;
    explicit Node(bool leaf) : isLeaf(leaf) {}
  };

  struct Leaf : Node {
    Leaf() : Node(true) {}
    std::array<Key, Order> keys;
    std::array<Value, Order> values;
    int count = 0;
    Leaf* next = nullptr;
    Leaf* prev = nullptr;
  };

  struct Inner : Node {
    Inner() : Node(false) {}
    std::array<Key, Order> keys;                  // count separators
    std::array<Node*, Order + 1> children{};      // count + 1 children
    int count = 0;
  };

  struct SplitResult {
    bool happened = false;
    Key separator{};
    Node* right = nullptr;
  };

  Node* root_ = nullptr;
  std::size_t size_ = 0;

  void swap(BTreeMap& o) {
    std::swap(root_, o.root_);
    std::swap(size_, o.size_);
  }

  Leaf* firstLeaf() const {
    Node* n = root_;
    if (!n) return nullptr;
    while (!n->isLeaf) n = static_cast<Inner*>(n)->children[0];
    return static_cast<Leaf*>(n);
  }

  Leaf* lastLeaf() const {
    Node* n = root_;
    if (!n) return nullptr;
    while (!n->isLeaf) {
      Inner* in = static_cast<Inner*>(n);
      n = in->children[in->count];
    }
    return static_cast<Leaf*>(n);
  }

  static void destroy(Node* n) {
    if (!n) return;
    if (n->isLeaf) {
      delete static_cast<Leaf*>(n);
      return;
    }
    Inner* in = static_cast<Inner*>(n);
    for (int i = 0; i <= in->count; ++i) destroy(in->children[i]);
    delete in;
  }

  static void deleteInnerShallow(Inner* in) {
    in->count = 0;
    in->children[0] = nullptr;
    delete in;
  }

  SplitResult insertRec(Node* n, const Key& k, Value v) {
    if (n->isLeaf) return insertLeaf(static_cast<Leaf*>(n), k, std::move(v));
    Inner* in = static_cast<Inner*>(n);
    int i = 0;
    while (i < in->count && !(k < in->keys[i])) ++i;
    SplitResult childSplit = insertRec(in->children[i], k, std::move(v));
    if (!childSplit.happened) return {};
    // Insert separator + right child at position i.
    if (in->count < Order) {
      for (int j = in->count; j > i; --j) {
        in->keys[j] = in->keys[j - 1];
        in->children[j + 1] = in->children[j];
      }
      in->keys[i] = childSplit.separator;
      in->children[i + 1] = childSplit.right;
      ++in->count;
      return {};
    }
    // Split the inner node.
    std::array<Key, Order + 1> keys;
    std::array<Node*, Order + 2> children;
    for (int j = 0; j < i; ++j) keys[j] = in->keys[j];
    keys[i] = childSplit.separator;
    for (int j = i; j < Order; ++j) keys[j + 1] = in->keys[j];
    for (int j = 0; j <= i; ++j) children[j] = in->children[j];
    children[i + 1] = childSplit.right;
    for (int j = i + 1; j <= Order; ++j) children[j + 1] = in->children[j];

    const int total = Order + 1;  // separators
    const int leftCount = total / 2;
    Key up = keys[leftCount];
    Inner* right = new Inner();
    right->count = total - leftCount - 1;
    for (int j = 0; j < right->count; ++j) right->keys[j] = keys[leftCount + 1 + j];
    for (int j = 0; j <= right->count; ++j)
      right->children[j] = children[leftCount + 1 + j];
    in->count = leftCount;
    for (int j = 0; j < leftCount; ++j) in->keys[j] = keys[j];
    for (int j = 0; j <= leftCount; ++j) in->children[j] = children[j];
    return {true, up, right};
  }

  SplitResult insertLeaf(Leaf* l, const Key& k, Value v) {
    int i = 0;
    while (i < l->count && l->keys[i] < k) ++i;
    if (i < l->count && !(k < l->keys[i])) {
      l->values[i] = std::move(v);  // overwrite
      return {};
    }
    ++size_;
    if (l->count < Order) {
      for (int j = l->count; j > i; --j) {
        l->keys[j] = l->keys[j - 1];
        l->values[j] = std::move(l->values[j - 1]);
      }
      l->keys[i] = k;
      l->values[i] = std::move(v);
      ++l->count;
      return {};
    }
    // Split the leaf.
    std::array<Key, Order + 1> keys;
    std::array<Value, Order + 1> values;
    for (int j = 0; j < i; ++j) {
      keys[j] = l->keys[j];
      values[j] = std::move(l->values[j]);
    }
    keys[i] = k;
    values[i] = std::move(v);
    for (int j = i; j < Order; ++j) {
      keys[j + 1] = l->keys[j];
      values[j + 1] = std::move(l->values[j]);
    }
    const int total = Order + 1;
    const int leftCount = total / 2;
    Leaf* right = new Leaf();
    right->count = total - leftCount;
    for (int j = 0; j < right->count; ++j) {
      right->keys[j] = keys[leftCount + j];
      right->values[j] = std::move(values[leftCount + j]);
    }
    l->count = leftCount;
    for (int j = 0; j < leftCount; ++j) {
      l->keys[j] = keys[j];
      l->values[j] = std::move(values[j]);
    }
    right->next = l->next;
    right->prev = l;
    if (l->next) l->next->prev = right;
    l->next = right;
    return {true, right->keys[0], right};
  }

  // Deletion: remove from the leaf; rebalance by borrowing from or merging
  // with a sibling when a node underflows (< Order/2 entries).
  bool eraseRec(Node* n, const Key& k) {
    if (n->isLeaf) {
      Leaf* l = static_cast<Leaf*>(n);
      int i = 0;
      while (i < l->count && l->keys[i] < k) ++i;
      if (i == l->count || k < l->keys[i]) return false;
      for (int j = i; j + 1 < l->count; ++j) {
        l->keys[j] = l->keys[j + 1];
        l->values[j] = std::move(l->values[j + 1]);
      }
      --l->count;
      return true;
    }
    Inner* in = static_cast<Inner*>(n);
    int i = 0;
    while (i < in->count && !(k < in->keys[i])) ++i;
    if (!eraseRec(in->children[i], k)) return false;
    rebalanceChild(in, i);
    return true;
  }

  void rebalanceChild(Inner* parent, int i) {
    Node* child = parent->children[i];
    const int minEntries = Order / 2;
    int childCount = child->isLeaf ? static_cast<Leaf*>(child)->count
                                   : static_cast<Inner*>(child)->count;
    if (childCount >= minEntries) return;

    Node* left = i > 0 ? parent->children[i - 1] : nullptr;
    Node* right = i < parent->count ? parent->children[i + 1] : nullptr;

    auto countOf = [](Node* n) {
      return n->isLeaf ? static_cast<Leaf*>(n)->count : static_cast<Inner*>(n)->count;
    };

    if (left && countOf(left) > minEntries) {
      borrowFromLeft(parent, i);
    } else if (right && countOf(right) > minEntries) {
      borrowFromRight(parent, i);
    } else if (left) {
      mergeChildren(parent, i - 1);
    } else if (right) {
      mergeChildren(parent, i);
    }
  }

  void borrowFromLeft(Inner* parent, int i) {
    Node* ln = parent->children[i - 1];
    Node* rn = parent->children[i];
    if (ln->isLeaf) {
      Leaf* l = static_cast<Leaf*>(ln);
      Leaf* r = static_cast<Leaf*>(rn);
      for (int j = r->count; j > 0; --j) {
        r->keys[j] = r->keys[j - 1];
        r->values[j] = std::move(r->values[j - 1]);
      }
      r->keys[0] = l->keys[l->count - 1];
      r->values[0] = std::move(l->values[l->count - 1]);
      ++r->count;
      --l->count;
      parent->keys[i - 1] = r->keys[0];
    } else {
      Inner* l = static_cast<Inner*>(ln);
      Inner* r = static_cast<Inner*>(rn);
      for (int j = r->count; j > 0; --j) r->keys[j] = r->keys[j - 1];
      for (int j = r->count + 1; j > 0; --j) r->children[j] = r->children[j - 1];
      r->keys[0] = parent->keys[i - 1];
      r->children[0] = l->children[l->count];
      ++r->count;
      parent->keys[i - 1] = l->keys[l->count - 1];
      --l->count;
    }
  }

  void borrowFromRight(Inner* parent, int i) {
    Node* ln = parent->children[i];
    Node* rn = parent->children[i + 1];
    if (ln->isLeaf) {
      Leaf* l = static_cast<Leaf*>(ln);
      Leaf* r = static_cast<Leaf*>(rn);
      l->keys[l->count] = r->keys[0];
      l->values[l->count] = std::move(r->values[0]);
      ++l->count;
      for (int j = 0; j + 1 < r->count; ++j) {
        r->keys[j] = r->keys[j + 1];
        r->values[j] = std::move(r->values[j + 1]);
      }
      --r->count;
      parent->keys[i] = r->keys[0];
    } else {
      Inner* l = static_cast<Inner*>(ln);
      Inner* r = static_cast<Inner*>(rn);
      l->keys[l->count] = parent->keys[i];
      l->children[l->count + 1] = r->children[0];
      ++l->count;
      parent->keys[i] = r->keys[0];
      for (int j = 0; j + 1 < r->count; ++j) r->keys[j] = r->keys[j + 1];
      for (int j = 0; j < r->count; ++j) r->children[j] = r->children[j + 1];
      --r->count;
    }
  }

  /// Merges children i and i+1 into child i and drops separator i.
  void mergeChildren(Inner* parent, int i) {
    Node* ln = parent->children[i];
    Node* rn = parent->children[i + 1];
    if (ln->isLeaf) {
      Leaf* l = static_cast<Leaf*>(ln);
      Leaf* r = static_cast<Leaf*>(rn);
      for (int j = 0; j < r->count; ++j) {
        l->keys[l->count + j] = r->keys[j];
        l->values[l->count + j] = std::move(r->values[j]);
      }
      l->count += r->count;
      l->next = r->next;
      if (r->next) r->next->prev = l;
      delete r;
    } else {
      Inner* l = static_cast<Inner*>(ln);
      Inner* r = static_cast<Inner*>(rn);
      l->keys[l->count] = parent->keys[i];
      for (int j = 0; j < r->count; ++j) l->keys[l->count + 1 + j] = r->keys[j];
      for (int j = 0; j <= r->count; ++j)
        l->children[l->count + 1 + j] = r->children[j];
      l->count += r->count + 1;
      r->count = -1;
      deleteInnerShallow(r);
    }
    for (int j = i; j + 1 < parent->count; ++j) parent->keys[j] = parent->keys[j + 1];
    for (int j = i + 1; j < parent->count; ++j)
      parent->children[j] = parent->children[j + 1];
    --parent->count;
  }
};

}  // namespace polypart::rt
