// Runtime halves of the checkpoint/recovery extension (rt/checkpoint.h):
// Runtime::checkpoint() and Runtime::recoverDevice().

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "rt/checkpoint.h"
#include "rt/dataflow_plan.h"
#include "rt/runtime.h"
#include "support/error.h"
#include "support/trace.h"

namespace polypart::rt {

Checkpoint Runtime::checkpoint() {
  drain();
  machine_->synchronizeAll();  // snapshots must see settled device data
  trace::Span span(config_.tracer, "runtime", "checkpoint");
  Checkpoint cp;
  for (const std::unique_ptr<VirtualBuffer>& buf : buffers_) {
    Checkpoint::BufferImage image;
    image.buf = buf.get();
    buf->tracker_.querySharers(
        0, buf->bytes(), [&](i64 b, i64 e, Owner owner, u64 sharers) {
          if (owner < 0) return;  // never written: nothing to lose
          // A range with a second valid replica survives any single device
          // failure without the checkpoint; only exclusive ranges are saved.
          if ((sharers & ~(u64{1} << owner)) != 0) return;
          if (machine_->deviceFailed(owner)) return;  // already lost
          Checkpoint::Segment seg;
          seg.begin = b;
          seg.end = e;
          seg.owner = owner;
          if (machine_->mode() == sim::ExecutionMode::Functional) {
            seg.data.resize(static_cast<std::size_t>(e - b));
            machine_->copyDeviceToHost(
                seg.data.data(),
                buf->instances_[static_cast<std::size_t>(owner)], b, e - b);
          } else {
            machine_->copyDeviceToHost(
                nullptr, buf->instances_[static_cast<std::size_t>(owner)], b,
                e - b);
          }
          stats_.bytesCheckpointed += e - b;
          image.segments.push_back(std::move(seg));
        });
    if (!image.segments.empty()) cp.images_.push_back(std::move(image));
  }
  machine_->synchronizeAll();
  ++stats_.checkpoints;
  return cp;
}

void Runtime::recoverDevice(int device, const Checkpoint& cp,
                            const Partitioning& next) {
  if (!config_.allowRepartitioning)
    throw Error(
        "device recovery requires repartitioning "
        "(RuntimeConfig::allowRepartitioning / POLYPART_ALLOW_REPARTITIONING)");
  if (device < 0 || device >= config_.numGpus)
    throw Error("recoverDevice: device ordinal " + std::to_string(device) +
                " out of range");
  if (!machine_->deviceFailed(device))
    throw Error("recoverDevice: device " + std::to_string(device) +
                " has not failed");
  drain();
  validatePartitioning(next);  // rejects any weight on the failed device
  trace::Span span(config_.tracer, "runtime", "recover-device", {},
                   {{"device", device}});
  // Stale compiled cycles would replay transfers sourced from the dead
  // device; recovery invalidates every tenant's plan (repartition() below
  // does too, but the restores must not race a planner either).
  for (auto& p : planners_)
    if (p) p->reset();

  // Restore target: the lowest-ordinal survivor with a share under `next`.
  int target = -1;
  for (int d = 0; d < config_.numGpus && target < 0; ++d)
    if (next.weights[static_cast<std::size_t>(d)] > 0) target = d;
  PP_ASSERT(target >= 0);  // validatePartitioning guarantees a nonzero total

  for (const std::unique_ptr<VirtualBuffer>& buf : buffers_) {
    // The checkpoint image recorded for this buffer, if any.
    const Checkpoint::BufferImage* image = nullptr;
    for (const Checkpoint::BufferImage& bi : cp.images_)
      if (bi.buf == buf.get()) {
        image = &bi;
        break;
      }

    // Pass 1 (collect, then apply): ranges the dead device owned.
    struct Lost {
      i64 begin, end;
      int adopt = -1;  // surviving sharer to re-own the range, -1 = restore
    };
    std::vector<Lost> lost;
    buf->tracker_.querySharers(
        0, buf->bytes(), [&](i64 b, i64 e, Owner owner, u64 sharers) {
          if (owner != device) return;
          Lost l{b, e, -1};
          for (int d = 0; d < config_.numGpus && d < 64; ++d) {
            if (d == device || machine_->deviceFailed(d)) continue;
            if ((sharers & (u64{1} << d)) != 0) {
              l.adopt = d;
              break;
            }
          }
          lost.push_back(l);
        });

    for (const Lost& l : lost) {
      if (l.adopt >= 0) {
        // A live replica already holds the bytes: flip ownership, no copy.
        buf->tracker_.update(l.begin, l.end, l.adopt);
        stats_.bytesAdopted += l.end - l.begin;
        continue;
      }
      // Restore [begin, end) from the checkpoint's segments for this owner.
      i64 pos = l.begin;
      while (pos < l.end) {
        const Checkpoint::Segment* seg = nullptr;
        if (image != nullptr)
          for (const Checkpoint::Segment& s : image->segments)
            if (s.owner == device && s.begin <= pos && pos < s.end) {
              seg = &s;
              break;
            }
        if (seg == nullptr)
          throw Error("recoverDevice: bytes [" + std::to_string(pos) + ", " +
                      std::to_string(l.end) +
                      ") lost with device " + std::to_string(device) +
                      " are covered by neither a live replica nor the "
                      "checkpoint");
        const i64 e = std::min(l.end, seg->end);
        machine_->copyHostToDevice(
            buf->instances_[static_cast<std::size_t>(target)], pos,
            seg->data.empty() ? nullptr
                              : seg->data.data() + (pos - seg->begin),
            e - pos);
        buf->tracker_.update(pos, e, target);
        ++stats_.restoreCopies;
        stats_.bytesRestored += e - pos;
        trace::instant(config_.tracer, "transfer", "restore-copy",
                       {{"dst", target}, {"bytes", e - pos}});
        pos = e;
      }
    }

    // Forget every replica the dead device held on surviving owners' ranges.
    buf->tracker_.dropSharer(device);
  }
  machine_->synchronizeAll();
  ++stats_.recoveries;

  // Finally move every kernel onto the survivors.  The migration reads only
  // live owners (the tracker no longer names the dead device anywhere).
  repartitionAll(next);
}

}  // namespace polypart::rt
