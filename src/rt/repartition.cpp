// Elastic runtime repartitioning (extension; see DESIGN.md "Elastic
// repartitioning").
//
// The paper fixes the grid partitioning at construction.  repartition()
// changes a kernel's per-device weights between launches and migrates only
// the *transition set*: per destination device, the pset difference of its
// new and old write footprints under the kernel's last launch signature,
// clipped against live tracker ownership.  Correctness never depends on the
// migration — reads resolve against the tracker, so launches under the new
// geometry are byte-identical whether or not the transition bytes moved
// ahead of time — migration is what keeps the *first* post-transition launch
// from re-pulling a device's whole new share reactively.

#include <algorithm>
#include <cmath>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "codegen/enumerator.h"
#include "rt/dataflow_plan.h"
#include "rt/footprint.h"
#include "rt/runtime.h"
#include "rt/transfer_plan.h"
#include "support/error.h"
#include "support/trace.h"

namespace polypart::rt {

using analysis::ArrayModel;
using codegen::PartitionTuple;
using ir::GridPartition;

namespace {

/// Storage element size (matches runtime.cpp: buffers hold 8-byte elements).
constexpr i64 kElemBytes = 8;

/// Flattened-range explosion guard per (array, device) footprint; beyond it
/// the migration falls back to the device's full new footprint (still
/// clipped against the tracker, so only a cost, never a correctness issue).
constexpr std::size_t kMaxTransitionRanges = 4096;

/// Weights and totals are bounded so partitionWith's extent * (pre + w)
/// products keep the same overflow envelope as the seed's extent * numGpus.
constexpr i64 kMaxTotalWeight = i64{1} << 20;

}  // namespace

const Partitioning& Runtime::partitioning(const std::string& kernelName) const {
  return entry(kernelName).partitioning;
}

void Runtime::validatePartitioning(const Partitioning& next) const {
  if (next.weights.size() != static_cast<std::size_t>(config_.numGpus))
    throw Error("partitioning has " + std::to_string(next.weights.size()) +
                " weights for " + std::to_string(config_.numGpus) +
                " devices");
  i64 total = 0;
  for (int d = 0; d < config_.numGpus; ++d) {
    const i64 w = next.weights[static_cast<std::size_t>(d)];
    if (w < 0)
      throw Error("partitioning weight for device " + std::to_string(d) +
                  " is negative");
    if (w > 0 && machine_->deviceFailed(d))
      throw Error("partitioning assigns weight to failed device " +
                  std::to_string(d));
    total += w;
  }
  if (total <= 0) throw Error("partitioning total weight is zero");
  if (total > kMaxTotalWeight)
    throw Error("partitioning total weight " + std::to_string(total) +
                " exceeds the supported maximum " +
                std::to_string(kMaxTotalWeight));
}

RepartitionResult Runtime::repartition(const std::string& kernelName,
                                       const Partitioning& next) {
  if (!config_.allowRepartitioning)
    throw Error(
        "runtime repartitioning is disabled "
        "(RuntimeConfig::allowRepartitioning / POLYPART_ALLOW_REPARTITIONING)");
  drain();  // the transition must see settled trackers and machine state
  KernelEntry& ke = entry(kernelName);
  validatePartitioning(next);
  // A geometry change invalidates every tenant's compiled dataflow cycle:
  // the flow edges were composed under partitionFor() of the *old* weights,
  // and a kernel is shared across tenants, so resetting only one tenant's
  // planner would leave the others replaying stale transfer sets.
  for (auto& p : planners_)
    if (p) p->reset();
  if (ke.partitioning == next) return {};  // no-op: weights unchanged
  trace::Span span(config_.tracer, "runtime", "repartition");
  const Partitioning prev = ke.partitioning;
  ke.partitioning = next;
  RepartitionResult res = migrateKernel(ke, prev, next);
  ++stats_.repartitions;
  stats_.repartitionCopies += res.copies;
  stats_.bytesRepartitioned += res.bytesMoved;
  stats_.bytesRepartitionFootprint += res.bytesFootprint;
  return res;
}

RepartitionResult Runtime::repartitionAll(const Partitioning& next) {
  RepartitionResult sum;
  for (auto& [name, ke] : kernels_) {
    RepartitionResult r = repartition(name, next);
    sum.bytesMoved += r.bytesMoved;
    sum.bytesFootprint += r.bytesFootprint;
    sum.copies += r.copies;
  }
  return sum;
}

Partitioning Runtime::loadBalancedPartitioning(const std::string& kernelName,
                                               i64 scale) const {
  const Partitioning& cur = entry(kernelName).partitioning;
  Partitioning out = cur;
  // Per-device speed estimate: a device that needed `busy` seconds for a
  // `w`-weighted share sustains w / busy weight units per second.  Weights
  // proportional to that equalize the modeled per-device kernel time.
  std::vector<double> speed(cur.weights.size(), 0.0);
  double sum = 0;
  for (int d = 0; d < config_.numGpus; ++d) {
    const std::size_t i = static_cast<std::size_t>(d);
    if (machine_->deviceFailed(d)) {
      out.weights[i] = 0;
      continue;
    }
    if (cur.weights[i] <= 0) continue;  // inactive: growth is explicit
    const double busy = machine_->kernelBusySecondsForDevice(d);
    if (busy <= 0) return cur;  // no measured load yet: keep the status quo
    speed[i] = static_cast<double>(cur.weights[i]) / busy;
    sum += speed[i];
  }
  if (sum <= 0) return cur;
  for (std::size_t i = 0; i < speed.size(); ++i)
    if (speed[i] > 0)
      out.weights[i] = std::max<i64>(
          1, std::llround(static_cast<double>(scale) * speed[i] / sum));
  return out;
}

RepartitionResult Runtime::migrateKernel(KernelEntry& ke,
                                         const Partitioning& prev,
                                         const Partitioning& next) {
  RepartitionResult res;
  // Without a recorded launch there is no concrete footprint to migrate;
  // the new weights simply apply to the next launch (its reads resolve
  // reactively against whatever layout H2D scatters produced).
  if (!ke.hasLastLaunch) return res;
  machine_->synchronizeAll();  // writers of the migrating bytes must land

  const std::vector<i64> params =
      footprint::paramVec(ke.lastCfg.grid, ke.lastCfg.block, ke.lastScalars);

  // Collected first, applied after: copies read pre-transition owners, and
  // tracker updates must not mutate segment maps a query is still walking.
  struct Move {
    VirtualBuffer* buf;
    i64 begin, end;
    int dst, src;
  };
  struct Assign {  // ownership change without a copy (dst already a sharer)
    VirtualBuffer* buf;
    i64 begin, end;
    int dst;
  };
  std::vector<Move> moves;
  std::vector<Assign> flips;

  for (const ArrayModel& wa : ke.model->arrays) {
    // May-access writes have no static map (hasWrites() is already false);
    // their bytes stay where the observed-write tracker updates put them and
    // the next launch's reads resolve reactively.
    if (!wa.hasWrites() || wa.writeInstrumented || wa.writeMayAccess) continue;
    VirtualBuffer* buf = ke.lastBuffers[wa.argIndex];
    if (buf == nullptr) continue;
    std::optional<std::vector<i64>> dims =
        footprint::evalShape(wa, params, buf->bytes(), kElemBytes);
    if (!dims) continue;
    i64 totalElems = 1;
    try {
      for (i64 d : *dims) totalElems = checkedMul(totalElems, d);
    } catch (...) {
      continue;
    }
    totalElems = std::min(totalElems, buf->bytes() / kElemBytes);
    const pset::Space canon = footprint::canonSpace(dims->size());

    for (int d = 0; d < config_.numGpus; ++d) {
      GridPartition gpNew = partitionWith(*ke.model, ke.lastCfg.grid, d, next);
      if (gpNew.blockCount() == 0) continue;  // no new share: nothing arrives
      PartitionTuple tn = PartitionTuple::fromBlocks(gpNew, ke.lastCfg.block);
      pset::Set newSet = footprint::rebase(
          wa.write.rangeUnderBox(params, tn.lo, tn.hi), canon);
      std::optional<footprint::Flattened> newFlat =
          footprint::flatten(newSet, *dims, totalElems, kMaxTransitionRanges);
      res.bytesFootprint +=
          (newFlat ? newFlat->elems : totalElems) * kElemBytes;

      // Transition set: what the device will own under `next` but did not
      // own under `prev`.  The subtraction is an over-approximation-safe
      // upper bound on what must arrive; the tracker clip below discards
      // ranges the device already holds.
      GridPartition gpOld = partitionWith(*ke.model, ke.lastCfg.grid, d, prev);
      pset::Set diff = newSet;
      if (gpOld.blockCount() != 0) {
        PartitionTuple to = PartitionTuple::fromBlocks(gpOld, ke.lastCfg.block);
        diff = newSet.subtract(footprint::rebase(
            wa.write.rangeUnderBox(params, to.lo, to.hi), canon));
        diff.pruneEmptyParts();
      }
      std::optional<footprint::Flattened> diffFlat =
          footprint::flatten(diff, *dims, totalElems, kMaxTransitionRanges);
      // Fall back to the full new footprint (or the whole array) when the
      // difference cannot be flattened — conservative, never wrong.
      const std::vector<std::pair<i64, i64>> whole{{i64{0}, totalElems}};
      const std::vector<std::pair<i64, i64>>& ranges =
          diffFlat ? diffFlat->ranges : (newFlat ? newFlat->ranges : whole);

      for (const auto& [rb, re] : ranges) {
        buf->tracker_.querySharers(
            rb * kElemBytes, re * kElemBytes,
            [&](i64 b, i64 e, Owner owner, u64 sharers) {
              ++stats_.trackerSegmentsVisited;
              if (owner < 0 || owner == d) return;  // undefined / already here
              if (d < 64 && (sharers & (u64{1} << d)) != 0) {
                flips.push_back(Assign{buf, b, e, d});  // replica: no copy
                return;
              }
              moves.push_back(Move{buf, b, e, d, owner});
            });
      }
    }
  }

  i64 bytesQueued = 0;
  for (const Move& m : moves) bytesQueued += m.end - m.begin;
  res.bytesMoved = bytesQueued;
  if (config_.enableTransfers && !moves.empty()) {
    if (config_.transferScheduling) {
      TransferPlan::Options opts;
      opts.mergeRanges = true;
      opts.chainBroadcasts = false;  // transitions are already per-destination
      TransferPlan plan(opts);
      for (const Move& m : moves) plan.add(m.buf, m.dst, m.src, m.begin, m.end);
      const TransferPlanStats& ps = plan.issue(*machine_, config_.tracer);
      res.copies = ps.issued;
      res.bytesMoved = bytesQueued - ps.bytesSaved;
    } else {
      for (const Move& m : moves) {
        machine_->copyPeer(
            m.buf->instances_[static_cast<std::size_t>(m.dst)], m.begin,
            m.buf->instances_[static_cast<std::size_t>(m.src)], m.begin,
            m.end - m.begin);
        trace::instant(config_.tracer, "transfer", "repartition-copy",
                       {{"src", m.src}, {"dst", m.dst}, {"bytes", m.end - m.begin}});
      }
      res.copies = static_cast<i64>(moves.size());
    }
  }

  // Ownership reflects the new layout only after the copies were issued
  // (they read the pre-transition owners).  In the β configuration
  // (enableTransfers off) the tracker still flips — mirroring how launches
  // update trackers without moving data there.
  for (const Assign& a : flips) a.buf->tracker_.update(a.begin, a.end, a.dst);
  for (const Move& m : moves) m.buf->tracker_.update(m.begin, m.end, m.dst);

  // Modeled host cost of assembling/issuing the transition, charged with the
  // same per-row coefficient as reactive transfer creation.
  const double cost = config_.transferIssueCostPerRow *
                      static_cast<double>(moves.size() + flips.size());
  const double simStart = machine_->now();
  machine_->advanceHost(cost);
  trace::simSpan(config_.tracer, "sim.pattern", "repartition-issue",
                 sim::kSimHostTrack, simStart, cost,
                 {{"copies", static_cast<i64>(moves.size())}});
  machine_->synchronizeAll();
  return res;
}

}  // namespace polypart::rt
