#pragma once

// CUDA Runtime API replacement surface (paper Section 8.4).
//
// "The CUDA replacement functions have identical prototypes to their CUDA
// API counterparts to ease code transformation and provide a stable
// interface."  The source-to-source rewriter (src/rewrite) substitutes
// cudaMalloc -> gpartMalloc and so on; the rewritten host code then links
// against these functions, which dispatch to the active Runtime.
//
// A current runtime is installed with ScopedGpartRuntime (the generated
// prologue does this from main()).

#include <cstddef>

#include "rt/runtime.h"

namespace polypart::rt {

enum gpartError { gpartSuccess = 0, gpartErrorInvalidValue = 1 };

enum gpartMemcpyKind {
  gpartMemcpyHostToHost = 0,
  gpartMemcpyHostToDevice = 1,
  gpartMemcpyDeviceToHost = 2,
  gpartMemcpyDeviceToDevice = 3,
};

/// Installs `rt` as the process-wide runtime for the gpart* functions.
class ScopedGpartRuntime {
 public:
  explicit ScopedGpartRuntime(Runtime& rt);
  ~ScopedGpartRuntime();
  ScopedGpartRuntime(const ScopedGpartRuntime&) = delete;
  ScopedGpartRuntime& operator=(const ScopedGpartRuntime&) = delete;

 private:
  Runtime* previous_;
};

/// The active runtime; asserts when none is installed.
Runtime& gpartCurrentRuntime();

// -- cudaMalloc / cudaFree ----------------------------------------------------
gpartError gpartMalloc(void** devPtr, std::size_t size);
gpartError gpartFree(void* devPtr);

// -- cudaMemcpy / cudaMemcpyAsync ---------------------------------------------
gpartError gpartMemcpy(void* dst, const void* src, std::size_t count,
                       gpartMemcpyKind kind);
gpartError gpartMemcpyAsync(void* dst, const void* src, std::size_t count,
                            gpartMemcpyKind kind);

// -- cudaGetDeviceCount / cudaDeviceSynchronize --------------------------------
gpartError gpartGetDeviceCount(int* count);
gpartError gpartDeviceSynchronize();

// -- kernel launch primitive inserted by the rewriter ---------------------------
gpartError gpartLaunchKernel(const char* kernelName, ir::Dim3 grid, ir::Dim3 block,
                             std::span<const LaunchArg> args);
gpartError gpartLaunchKernel(const char* kernelName, ir::Dim3 grid, ir::Dim3 block,
                             std::initializer_list<LaunchArg> args);

/// Overload set the rewriter relies on: wraps any launch argument into a
/// LaunchArg without the rewriter having to know scalar/array kinds.
inline LaunchArg gpartArgOf(void* devPtr) {
  return LaunchArg::ofBuffer(static_cast<VirtualBuffer*>(devPtr));
}
inline LaunchArg gpartArgOf(VirtualBuffer* devPtr) { return LaunchArg::ofBuffer(devPtr); }
inline LaunchArg gpartArgOf(double v) { return LaunchArg::ofFloat(v); }
inline LaunchArg gpartArgOf(float v) { return LaunchArg::ofFloat(v); }
inline LaunchArg gpartArgOf(i64 v) { return LaunchArg::ofInt(v); }
inline LaunchArg gpartArgOf(int v) { return LaunchArg::ofInt(v); }

}  // namespace polypart::rt
