#pragma once

// Host-side checkpoints for device-failure recovery (extension; see
// DESIGN.md "Elastic repartitioning").
//
// A checkpoint snapshots every byte range that exists on exactly one live
// device: replicated ranges (sharer-tracked copies, prefetched replicas)
// survive a single device failure without help, so only exclusive ranges
// cost host memory and D2H bandwidth.  On partitioned workloads each device
// exclusively owns ~1/N of the data, which is what makes the checkpoint
// cheap relative to a full dump.
//
// Recovery (Runtime::recoverDevice) consumes a checkpoint: ranges the failed
// device owned are restored onto a survivor from the snapshot — unless a
// live replica exists, which is adopted without a copy — and the kernels are
// repartitioned onto the surviving devices.

#include <cstddef>
#include <vector>

#include "rt/tracker.h"
#include "support/arith.h"

namespace polypart::rt {

class VirtualBuffer;

/// An immutable host-side snapshot produced by Runtime::checkpoint().
/// Only meaningful for the runtime that produced it, and only while the
/// buffers it references stay allocated.
class Checkpoint {
 public:
  /// Total snapshotted payload bytes.
  i64 payloadBytes() const {
    i64 n = 0;
    for (const BufferImage& bi : images_)
      for (const Segment& s : bi.segments) n += s.end - s.begin;
    return n;
  }
  std::size_t segmentCount() const {
    std::size_t n = 0;
    for (const BufferImage& bi : images_) n += bi.segments.size();
    return n;
  }
  std::size_t bufferCount() const { return images_.size(); }

 private:
  friend class Runtime;
  struct Segment {
    i64 begin = 0;
    i64 end = 0;
    Owner owner = kOwnerUndefined;  // the only device holding the bytes
    std::vector<char> data;        // empty in TimingOnly mode
  };
  struct BufferImage {
    const VirtualBuffer* buf = nullptr;
    std::vector<Segment> segments;
  };
  std::vector<BufferImage> images_;
};

}  // namespace polypart::rt
