#pragma once

// Buffer ownership tracking (paper Section 8.1).
//
// The tracker is "a sorted list of non-overlapping segments, each containing
// a reference to the buffer instance that holds the most recently updated
// copy of that segment", stored in a B-tree map keyed by segment start.
// update() records writes (kernel partitions, memcopies); query() resolves
// which device owns each sub-range of a read set.  Adjacent segments with
// the same owner are coalesced, which keeps regular kernels at one segment
// per partition (Section 8.1).
//
// The map implementation is a template parameter so the tracker ablation can
// compare the paper's B-tree against std::map (bench/ablation_tracker).

#include <algorithm>
#include <functional>
#include <map>
#include <vector>

#include "rt/btree.h"
#include "support/arith.h"

namespace polypart::rt {

/// Owner of a segment: a device ordinal, or the sentinel below.
/// There is deliberately no "host owns" sentinel: HostToDevice scatters
/// assign device owners immediately, and DeviceToHost gathers leave the
/// device instances current (copying data out does not invalidate them),
/// so no tracker state ever needs to name the host as the freshest copy.
using Owner = int;
inline constexpr Owner kOwnerUndefined = -1;  // never written

/// std::map with the subset of the BTreeMap interface the tracker uses;
/// exists for the tracker-data-structure ablation.
template <typename Key, typename Value>
class StdMapAdapter {
 public:
  class Iterator {
   public:
    Iterator() = default;
    bool atEnd() const { return !valid_; }
    const Key& key() const { return it_->first; }
    Value& value() const { return it_->second; }
    void next() {
      ++it_;
      valid_ = it_ != map_->end();
    }
    bool operator==(const Iterator&) const = default;

   private:
    friend class StdMapAdapter;
    Iterator(std::map<Key, Value>* m, typename std::map<Key, Value>::iterator it)
        : map_(m), it_(it), valid_(m && it != m->end()) {}
    std::map<Key, Value>* map_ = nullptr;
    typename std::map<Key, Value>::iterator it_{};
    bool valid_ = false;
  };

  std::size_t size() const { return map_.size(); }
  bool empty() const { return map_.empty(); }
  Iterator begin() const { return Iterator(&map_, map_.begin()); }
  Iterator end() const { return Iterator(); }
  Iterator lowerBound(const Key& k) const { return Iterator(&map_, map_.lower_bound(k)); }
  Iterator find(const Key& k) const {
    auto it = map_.find(k);
    return it == map_.end() ? Iterator() : Iterator(&map_, it);
  }
  Iterator floorEntry(const Key& k) const {
    auto it = map_.upper_bound(k);
    if (it == map_.begin()) return Iterator();
    return Iterator(&map_, std::prev(it));
  }
  void insert(const Key& k, Value v) { map_[k] = std::move(v); }
  bool erase(const Key& k) { return map_.erase(k) > 0; }
  void clear() { map_.clear(); }

 private:
  mutable std::map<Key, Value> map_;
};

/// Callback per resolved segment: [begin, end) owned by `owner`.
using SegmentFn = std::function<void(i64 begin, i64 end, Owner owner)>;

/// Extended callback carrying the sharer set (bit i set = device i holds a
/// valid copy).  Used by the shared-copy extension (see below).
using SharedSegmentFn =
    std::function<void(i64 begin, i64 end, Owner owner, u64 sharers)>;

template <template <typename, typename> class MapT>
class SegmentTrackerT {
 public:
  /// Creates a tracker for a buffer of `size` units (bytes in the runtime);
  /// everything starts as kOwnerUndefined.
  explicit SegmentTrackerT(i64 size) : size_(size) {
    PP_ASSERT(size >= 0);
    if (size > 0) segments_.insert(0, Seg{size, kOwnerUndefined});
  }

  i64 size() const { return size_; }
  std::size_t segmentCount() const { return segments_.size(); }

  /// Mutation counter: bumped by every update()/addSharer() that reached the
  /// segment map.  Cheap cross-launch fingerprint — the pipelined-launch
  /// tests compare versions (and dump()s) to prove two interleavings drove a
  /// tracker through the same state without walking it after every launch.
  u64 version() const { return version_; }

  /// Content counter: bumped only by update() — writes to the tracked
  /// buffer — never by sharer bookkeeping.  The inspector–executor keys its
  /// footprint cache on this: update() sequences are byte-identical across
  /// the resolution engines, while addSharer() patterns vary with
  /// trackSharedCopies/dataflowPlanning, so caching on version() would make
  /// cache hits (and the modeled inspection cost) knob-dependent.
  u64 contentVersion() const { return contentVersion_; }

  /// One resolved segment of a dump(): [begin, end) owned by `owner`, valid
  /// replicas on `sharers`.
  struct DumpSegment {
    i64 begin = 0;
    i64 end = 0;
    Owner owner = kOwnerUndefined;
    u64 sharers = 0;
    bool operator==(const DumpSegment&) const = default;
  };

  /// The full segment list in address order; equality of two dumps is
  /// equality of the tracked ownership state.
  std::vector<DumpSegment> dump() const {
    std::vector<DumpSegment> out;
    for (auto it = segments_.begin(); !it.atEnd(); it.next())
      out.push_back(DumpSegment{it.key(), it.value().end, it.value().owner,
                                it.value().sharers});
    return out;
  }

  /// Records that [begin, end) now has its most recent copy on `owner`.
  /// A write invalidates every other copy: the sharer set collapses to the
  /// owner alone.
  void update(i64 begin, i64 end, Owner owner) {
    clamp(begin, end);
    if (begin >= end) return;
    ++version_;
    ++contentVersion_;

    // Split the segment containing `begin` when it straddles the boundary.
    splitAt(begin);
    splitAt(end);

    // Remove all segments fully inside [begin, end).
    eraseScratch_.clear();
    for (auto it = segments_.lowerBound(begin); !it.atEnd() && it.key() < end;
         it.next())
      eraseScratch_.push_back(it.key());
    for (i64 k : eraseScratch_) segments_.erase(k);

    segments_.insert(begin, Seg{end, owner, sharerBit(owner)});
    coalesceAround(begin);
  }

  /// Shared-copy extension (addresses the limitation Section 8.3 states:
  /// "the tracker of a virtual buffer does not support shared copies,
  /// resulting in redundant transfers"): records that `device` now holds a
  /// valid replica of [begin, end) without becoming its owner.
  void addSharer(i64 begin, i64 end, int device) {
    clamp(begin, end);
    if (begin >= end) return;
    // Devices outside the 64-bit sharer bitmap cannot be recorded; splitting
    // anyway would create adjacent segments with identical (owner, sharers)
    // state and rely on coalesceRange to re-merge every one of them.
    if (sharerBit(device) == 0) return;
    ++version_;
    splitAt(begin);
    splitAt(end);
    for (auto it = segments_.lowerBound(begin); !it.atEnd() && it.key() < end;
         it.next())
      it.value().sharers |= sharerBit(device);
    coalesceRange(begin, end);
  }

  /// Forgets every replica `device` holds without disturbing ownership:
  /// clears its sharer bit on all segments it does not own.  Segments it
  /// *owns* are left alone — the caller (device-failure recovery) reassigns
  /// those with update() as it restores or adopts each range.  No-op for
  /// devices outside the sharer bitmap.
  void dropSharer(int device) {
    const u64 bit = sharerBit(device);
    if (bit == 0) return;
    bool changed = false;
    for (auto it = segments_.begin(); !it.atEnd(); it.next()) {
      if (it.value().owner == device) continue;
      if ((it.value().sharers & bit) == 0) continue;
      it.value().sharers &= ~bit;
      changed = true;
    }
    if (!changed) return;
    ++version_;
    coalesceRange(0, size_);
  }

  /// Like query() but also reports the sharer set of each segment.
  void querySharers(i64 begin, i64 end, const SharedSegmentFn& fn) const {
    clamp(begin, end);
    if (begin >= end) return;
    auto it = segments_.floorEntry(begin);
    PP_ASSERT_MSG(!it.atEnd(), "tracker coverage hole");
    for (; !it.atEnd() && it.key() < end; it.next()) {
      i64 b = std::max(begin, it.key());
      i64 e = std::min(end, it.value().end);
      if (b < e) fn(b, e, it.value().owner, it.value().sharers);
    }
  }

  /// Reports the ownership of every sub-segment of [begin, end) in order.
  void query(i64 begin, i64 end, const SegmentFn& fn) const {
    clamp(begin, end);
    if (begin >= end) return;
    auto it = segments_.floorEntry(begin);
    PP_ASSERT_MSG(!it.atEnd(), "tracker coverage hole");
    for (; !it.atEnd() && it.key() < end; it.next()) {
      i64 b = std::max(begin, it.key());
      i64 e = std::min(end, it.value().end);
      if (b < e) fn(b, e, it.value().owner);
    }
  }

  /// Owner at a single position (test helper).
  Owner ownerAt(i64 pos) const {
    Owner o = kOwnerUndefined;
    query(pos, pos + 1, [&](i64, i64, Owner owner) { o = owner; });
    return o;
  }

  /// Invariant check: segments tile [0, size) without gaps or overlaps, no
  /// two adjacent segments have identical (owner, sharers), and owners are
  /// always members of their own sharer sets.  Used by property tests.
  bool checkInvariants() const {
    i64 expect = 0;
    Owner prevOwner = kOwnerUndefined;
    u64 prevSharers = ~u64{0};
    bool first = true;
    for (auto it = segments_.begin(); !it.atEnd(); it.next()) {
      if (it.key() != expect) return false;
      if (it.value().end <= it.key()) return false;
      if (!first && it.value().owner == prevOwner &&
          it.value().sharers == prevSharers)
        return false;
      if (it.value().owner >= 0 &&
          (it.value().sharers & sharerBit(it.value().owner)) == 0)
        return false;
      prevOwner = it.value().owner;
      prevSharers = it.value().sharers;
      expect = it.value().end;
      first = false;
    }
    return expect == size_;
  }

 private:
  struct Seg {
    i64 end = 0;
    Owner owner = kOwnerUndefined;
    /// Devices holding a valid copy (bit per device; owner's bit included).
    u64 sharers = 0;
  };

  static u64 sharerBit(Owner device) {
    return device >= 0 && device < 64 ? (u64{1} << device) : 0;
  }

  void clamp(i64& begin, i64& end) const {
    begin = std::max<i64>(begin, 0);
    end = std::min<i64>(end, size_);
  }

  /// Ensures a segment boundary exists at `pos` (splits the covering
  /// segment when needed).
  void splitAt(i64 pos) {
    if (pos <= 0 || pos >= size_) return;
    auto it = segments_.floorEntry(pos);
    PP_ASSERT(!it.atEnd());
    if (it.key() == pos) return;
    Seg s = it.value();
    if (s.end <= pos) return;  // boundary already at or before pos
    // Shrink the left part and insert the right part (same owner/sharers).
    it.value().end = pos;
    segments_.insert(pos, Seg{s.end, s.owner, s.sharers});
  }

  /// Re-establishes maximal coalescing across [begin, end) plus one segment
  /// of slack on each side: successive segments with identical
  /// (owner, sharers) state are merged.
  void coalesceRange(i64 begin, i64 end) {
    auto it = segments_.floorEntry(std::max<i64>(begin - 1, 0));
    if (it.atEnd()) it = segments_.begin();
    i64 key = it.key();
    while (true) {
      auto cur = segments_.find(key);
      if (cur.atEnd()) break;
      Seg seg = cur.value();
      auto succ = segments_.lowerBound(seg.end);
      if (!succ.atEnd() && succ.key() == seg.end && succ.value().owner == seg.owner &&
          succ.value().sharers == seg.sharers) {
        seg.end = succ.value().end;
        segments_.erase(succ.key());
        segments_.insert(key, seg);
        continue;  // try to absorb the next one too
      }
      if (seg.end > end || succ.atEnd()) break;
      key = succ.key();
    }
  }

  /// Merges the segment starting at `key` with neighbours of identical
  /// (owner, sharers) state.
  void coalesceAround(i64 key) {
    auto it = segments_.find(key);
    PP_ASSERT(!it.atEnd());
    Seg cur = it.value();

    // Merge with successor.
    auto succ = segments_.lowerBound(cur.end);
    if (!succ.atEnd() && succ.key() == cur.end && succ.value().owner == cur.owner &&
        succ.value().sharers == cur.sharers) {
      cur.end = succ.value().end;
      segments_.erase(succ.key());
      segments_.insert(key, cur);
    }

    // Merge with predecessor.
    if (key > 0) {
      auto pred = segments_.floorEntry(key - 1);
      if (!pred.atEnd() && pred.value().end == key &&
          pred.value().owner == cur.owner && pred.value().sharers == cur.sharers) {
        i64 predKey = pred.key();
        Seg merged{cur.end, cur.owner, cur.sharers};
        segments_.erase(key);
        segments_.erase(predKey);
        segments_.insert(predKey, merged);
      }
    }
  }

  i64 size_ = 0;
  u64 version_ = 0;
  u64 contentVersion_ = 0;
  MapT<i64, Seg> segments_;
  mutable std::vector<i64> eraseScratch_;
};

/// The production tracker (B-tree backed, as in the paper).
using SegmentTracker = SegmentTrackerT<BTreeMap>;
/// std::map-backed variant for the ablation bench.
using SegmentTrackerStdMap = SegmentTrackerT<StdMapAdapter>;

}  // namespace polypart::rt
