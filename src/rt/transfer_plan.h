#pragma once

// Topology-aware transfer scheduler (extension; see DESIGN.md "Transfer
// plan").
//
// The paper's runtime issues one peer copy per (GPU, enumerator, tracker
// segment) the moment the tracker query yields it (Section 8.3).  Molly
// (arXiv:1409.2088) shows that batching polyhedrally-derived communication
// per link, and Ferry et al. (arXiv:2312.03646) that eliminating redundant
// copies of data flowing to multiple consumers, is where distributed-memory
// transfer performance comes from.  When RuntimeConfig::transferScheduling is
// on, both resolution engines collect their per-launch transfer *decisions*
// into a TransferPlan instead of issuing them, and the plan then
//   (a) merges adjacent/overlapping byte ranges with the same (src, dst),
//   (b) chains one-to-many reads: when >= 2 GPUs pull the same range from an
//       oversubscribed owner (one carrying more than twice the plan's
//       per-device average copy count), later copies source from the
//       freshest replica (binomial broadcast); balanced all-to-all traffic
//       is left direct, where chaining would only add dependency latency,
//   (c) issues wave by wave, round-robin across (src, dst) links, so
//       transfers spread over distinct engines instead of serializing.
//
// Equivalence: decisions are recorded in the canonical serial resolution
// order (GPU ascending, enumerator ascending, tracker-walk order), the same
// order at every resolutionThreads value, so the schedule — and therefore
// functional results, tracker state, and byte counters — is identical across
// thread counts.  Scheduling changes only *how* the decided bytes move, never
// which bytes land where (transfer_plan_test.cpp holds this against the
// unscheduled path too).

#include <cstddef>
#include <vector>

#include "sim/machine.h"

namespace polypart::trace {
class Tracer;
}

namespace polypart::rt {

class VirtualBuffer;

/// One recorded transfer decision: bytes [begin, end) of `buffer` must move
/// from device `src`'s instance to device `dst`'s instance.
struct TransferRecord {
  VirtualBuffer* buffer = nullptr;
  int dst = -1;
  int src = -1;
  i64 begin = 0;
  i64 end = 0;
};

/// One copy after scheduling.  `parent` is the index (into the scheduled
/// sequence) of the copy that produces this one's source replica, or -1 when
/// it reads the owner directly; `wave` is the broadcast-tree depth (parents
/// always sit in an earlier wave, so issue order respects data readiness).
struct ScheduledTransfer {
  VirtualBuffer* buffer = nullptr;
  int dst = -1;
  int src = -1;
  i64 begin = 0;
  i64 end = 0;
  int wave = 0;
  std::ptrdiff_t parent = -1;
};

struct TransferPlanStats {
  i64 recorded = 0;    // raw decisions collected
  i64 issued = 0;      // copyPeer calls after scheduling
  i64 merged = 0;      // records eliminated by same-link range merging
  i64 chains = 0;      // broadcast copies re-sourced from a fresh replica
  i64 bytesSaved = 0;  // storage bytes deduplicated by overlap merging
};

class TransferPlan {
 public:
  struct Options {
    /// Merge adjacent/overlapping same-(src,dst) ranges per buffer.
    bool mergeRanges = true;
    /// Chain one-to-many reads through fresh replicas when the source is
    /// oversubscribed (> 2x the plan's per-device average copy count).  Only
    /// sound when the runtime records those replicas as sharers
    /// (trackSharedCopies), the same condition under which the paper-mode
    /// tracker would reuse them.
    bool chainBroadcasts = false;
  };

  TransferPlan();  // defined below: default arguments for nested classes
  explicit TransferPlan(Options opts);  // with NSDMIs must be out-of-line

  /// Records one decision.  Call order must be the canonical serial
  /// resolution order; the schedule is deterministic given that order.
  void add(VirtualBuffer* buffer, int dst, int src, i64 begin, i64 end);

  bool empty() const { return records_.empty(); }
  std::size_t recordCount() const { return records_.size(); }

  /// Merges, chains, and orders the recorded decisions.  Idempotent; the
  /// returned sequence is the exact machine issue order.
  const std::vector<ScheduledTransfer>& schedule();

  /// schedule() + replay into the machine model: waves in order, round-robin
  /// across links inside each wave, chained copies carrying their parent's
  /// modeled completion as earliest start.  Functional data movement is
  /// correct by construction: a parent is always issued (and in Functional
  /// mode eagerly memcpy'd) before its children.
  const TransferPlanStats& issue(sim::Machine& machine, trace::Tracer* tracer);

  const TransferPlanStats& stats() const { return stats_; }

  /// Tags this plan's trace output with the launch that issues it: the wave
  /// instants carry the launch `epoch`, and a tenant-domain summary instant
  /// attributes the issued copies to `tenant`'s track (trace.h kTenantPid).
  /// Untagged plans (epoch < 0, the default) emit the classic events only —
  /// the pipelined runtime tags, the serial paper path does not.
  void setIssueTag(i64 epoch, int tenant);

  /// Per-source-device earliest-start floors, indexed by device ordinal:
  /// every copy sourcing from device `d` starts no earlier than
  /// `srcFloors[d]` (in addition to its chain parent's completion).  The
  /// dataflow planner passes the producing kernels' modeled completion times
  /// so an eagerly issued prefetch never reads bytes the model says are
  /// still being computed.  Devices beyond the span get floor 0.
  void setSrcFloors(std::vector<double> srcFloors);

  /// Labels this plan's per-copy trace instants "prefetch-copy" instead of
  /// "peer-copy", putting eagerly planned traffic on its own visual track in
  /// the trace viewer (the dataflow planner's prefetch track).
  void markPrefetch() { prefetch_ = true; }

 private:
  Options opts_;
  i64 issueEpoch_ = -1;
  int issueTenant_ = 0;
  bool prefetch_ = false;
  std::vector<double> srcFloors_;
  std::vector<TransferRecord> records_;
  std::vector<ScheduledTransfer> scheduled_;
  bool scheduled_valid_ = false;
  TransferPlanStats stats_;
};

inline TransferPlan::TransferPlan() : TransferPlan(Options{}) {}
inline TransferPlan::TransferPlan(Options opts) : opts_(opts) {}

}  // namespace polypart::rt
