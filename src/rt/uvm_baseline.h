#pragma once

// Page-migration (shared-virtual-memory) baseline runtime.
//
// The paper's related work contrasts compiler-directed bulk transfers with
// runtime page migration (Li & Hudak's SVM, NUMA page migration, CUDA
// unified memory): "these concepts rely on page migration and perform all
// tasks at execution time.  Instead, we exploit knowledge generated at
// compile time to optimize data movements" (Section 10).
//
// UvmRuntime implements that comparator: buffers are backed by pages with a
// single owner each; kernels launch immediately with no pre-synchronization,
// and every access to a non-resident page triggers a demand fault that
// migrates the page (read AND write — the classic migrate-on-touch policy
// that thrashes on read-shared data, which is exactly where the paper's
// bulk-transfer scheme wins).  The access footprints come from the same
// kernel models, so both runtimes move data for identical access patterns.
//
// Timing-only: the baseline exists for the bench/baseline_uvm comparison.

#include "analysis/model.h"
#include "codegen/enumerator.h"
#include "ir/transform.h"
#include "sim/machine.h"

namespace polypart::rt {

struct UvmConfig {
  int numGpus = 1;
  sim::MachineSpec machine = sim::MachineSpec::k80Node(1);
  i64 pageBytes = 64 << 10;        // CUDA UM granularity class
  double faultLatency = 40e-6;     // GPU page-fault + driver handling
  /// Faults are replayed in batches by the driver; the effective per-page
  /// latency of a streak of misses is faultLatency / batchFactor.  Fault
  /// servicing is single-threaded in the driver, so this cost serializes
  /// across all devices (the well-known UM bottleneck).
  double faultBatchFactor = 4.0;
};

struct UvmStats {
  i64 launches = 0;
  i64 pageFaults = 0;
  i64 pagesMigrated = 0;
  i64 bytesMigrated = 0;
};

class UvmBuffer {
 public:
  i64 bytes() const { return bytes_; }

 private:
  friend class UvmRuntime;
  UvmBuffer(i64 bytes, i64 pageBytes, std::vector<sim::DevBuffer> instances)
      : bytes_(bytes),
        instances_(std::move(instances)),
        pageOwner_(static_cast<std::size_t>((bytes + pageBytes - 1) / pageBytes),
                   -1) {}
  i64 bytes_;
  std::vector<sim::DevBuffer> instances_;
  std::vector<int> pageOwner_;  // -1: host/unpopulated
};

class UvmRuntime {
 public:
  UvmRuntime(UvmConfig config, analysis::ApplicationModel model,
             const ir::Module& kernels);
  ~UvmRuntime();

  UvmBuffer* malloc(i64 bytes);
  void free(UvmBuffer* buf);

  /// Unified memory: host writes populate host-resident pages; no explicit
  /// copies are modeled (first-touch faults pay for the movement).
  void populate(UvmBuffer* buf, i64 bytes);

  /// Launches the kernel UM-style: partitions run immediately; page faults
  /// for non-resident reads/writes are charged against the owning engines.
  void launch(const std::string& kernelName, const ir::Dim3& grid,
              const ir::Dim3& block, std::span<UvmBuffer* const> arrayArgs,
              std::span<const i64> scalarArgs);

  void synchronize();
  double elapsedSeconds() const;
  const UvmStats& stats() const { return stats_; }

 private:
  struct KernelEntry {
    const analysis::KernelModel* model = nullptr;
    ir::KernelPtr partitioned;
    std::vector<codegen::Enumerator> enumerators;
  };

  UvmConfig config_;
  analysis::ApplicationModel model_;
  std::unique_ptr<sim::Machine> machine_;
  std::map<std::string, KernelEntry> kernels_;
  std::vector<std::unique_ptr<UvmBuffer>> buffers_;
  UvmStats stats_;
};

}  // namespace polypart::rt
