#include "rt/cuda_api.h"

namespace polypart::rt {

namespace {
Runtime* g_current = nullptr;
}

ScopedGpartRuntime::ScopedGpartRuntime(Runtime& rt) : previous_(g_current) {
  g_current = &rt;
}

ScopedGpartRuntime::~ScopedGpartRuntime() { g_current = previous_; }

Runtime& gpartCurrentRuntime() {
  PP_ASSERT_MSG(g_current != nullptr, "no gpart runtime installed");
  return *g_current;
}

gpartError gpartMalloc(void** devPtr, std::size_t size) {
  if (!devPtr) return gpartErrorInvalidValue;
  *devPtr = gpartCurrentRuntime().malloc(static_cast<i64>(size));
  return gpartSuccess;
}

gpartError gpartFree(void* devPtr) {
  if (!devPtr) return gpartErrorInvalidValue;
  gpartCurrentRuntime().free(static_cast<VirtualBuffer*>(devPtr));
  return gpartSuccess;
}

namespace {

MemcpyKind toKind(gpartMemcpyKind k) {
  switch (k) {
    case gpartMemcpyHostToHost: return MemcpyKind::HostToHost;
    case gpartMemcpyHostToDevice: return MemcpyKind::HostToDevice;
    case gpartMemcpyDeviceToHost: return MemcpyKind::DeviceToHost;
    case gpartMemcpyDeviceToDevice: return MemcpyKind::DeviceToDevice;
  }
  PP_ASSERT(false);
  return MemcpyKind::HostToHost;
}

}  // namespace

gpartError gpartMemcpy(void* dst, const void* src, std::size_t count,
                       gpartMemcpyKind kind) {
  gpartCurrentRuntime().memcpy(dst, src, static_cast<i64>(count), toKind(kind));
  return gpartSuccess;
}

gpartError gpartMemcpyAsync(void* dst, const void* src, std::size_t count,
                            gpartMemcpyKind kind) {
  // The simulator models the asynchrony internally; the replacement issues
  // the same translated movement as the synchronous variant.
  return gpartMemcpy(dst, src, count, kind);
}

gpartError gpartGetDeviceCount(int* count) {
  if (!count) return gpartErrorInvalidValue;
  // Section 8.4: the replacement "always returns 1" so single-GPU host logic
  // keeps working unchanged.
  *count = gpartCurrentRuntime().getDeviceCount();
  return gpartSuccess;
}

gpartError gpartDeviceSynchronize() {
  gpartCurrentRuntime().deviceSynchronize();
  return gpartSuccess;
}

gpartError gpartLaunchKernel(const char* kernelName, ir::Dim3 grid, ir::Dim3 block,
                             std::span<const LaunchArg> args) {
  gpartCurrentRuntime().launch(kernelName, grid, block, args);
  return gpartSuccess;
}

gpartError gpartLaunchKernel(const char* kernelName, ir::Dim3 grid, ir::Dim3 block,
                             std::initializer_list<LaunchArg> args) {
  return gpartLaunchKernel(kernelName, grid, block,
                           std::span<const LaunchArg>(args.begin(), args.size()));
}

}  // namespace polypart::rt
