#include "rt/transfer_plan.h"

#include <algorithm>
#include <deque>
#include <unordered_map>
#include <unordered_set>

#include "rt/runtime.h"
#include "support/trace.h"

namespace polypart::rt {

void TransferPlan::add(VirtualBuffer* buffer, int dst, int src, i64 begin,
                       i64 end) {
  PP_ASSERT(buffer != nullptr && begin < end && dst != src);
  records_.push_back(TransferRecord{buffer, dst, src, begin, end});
  scheduled_valid_ = false;
}

namespace {

/// (src, dst) pair with a deterministic first-seen ordinal.
struct LinkTable {
  std::vector<std::pair<int, int>> links;

  std::size_t ordinal(int src, int dst) {
    for (std::size_t i = 0; i < links.size(); ++i)
      if (links[i] == std::pair{src, dst}) return i;
    links.emplace_back(src, dst);
    return links.size() - 1;
  }
};

}  // namespace

const std::vector<ScheduledTransfer>& TransferPlan::schedule() {
  if (scheduled_valid_) return scheduled_;
  stats_ = {};
  stats_.recorded = static_cast<i64>(records_.size());

  // Group records by buffer, then by (src, dst) link, both in first-seen
  // order — a pure function of the canonical decision order, so the schedule
  // is identical no matter which engine recorded the decisions.
  std::vector<VirtualBuffer*> buffers;
  std::unordered_map<VirtualBuffer*, std::size_t> bufferIndex;
  std::vector<LinkTable> bufferLinks;
  std::vector<std::vector<std::vector<std::pair<i64, i64>>>> ranges;
  for (const TransferRecord& r : records_) {
    auto [it, fresh] = bufferIndex.try_emplace(r.buffer, buffers.size());
    if (fresh) {
      buffers.push_back(r.buffer);
      bufferLinks.emplace_back();
      ranges.emplace_back();
    }
    std::size_t bi = it->second;
    std::size_t li = bufferLinks[bi].ordinal(r.src, r.dst);
    if (li == ranges[bi].size()) ranges[bi].emplace_back();
    ranges[bi][li].emplace_back(r.begin, r.end);
  }

  // (a) Per-link range merging: adjacent or overlapping ranges between the
  // same pair of instances carry the same bytes from the same (static during
  // the sync phase) source, so their union moved once is byte-identical.
  if (opts_.mergeRanges) {
    for (auto& perLink : ranges) {
      for (auto& rs : perLink) {
        std::sort(rs.begin(), rs.end());
        std::vector<std::pair<i64, i64>> out;
        for (const auto& [b, e] : rs) {
          stats_.bytesSaved += e - b;  // minus the merged lengths below
          if (!out.empty() && b <= out.back().second)
            out.back().second = std::max(out.back().second, e);
          else
            out.emplace_back(b, e);
        }
        stats_.merged += static_cast<i64>(rs.size() - out.size());
        for (const auto& [b, e] : out) stats_.bytesSaved -= e - b;
        rs = std::move(out);
      }
    }
  }

  // Chaining pays only when a source engine is oversubscribed: binomial
  // fan-out shortens a hot owner's serial send queue, but in a balanced
  // all-to-all exchange (every device both sends and receives about the
  // same amount, e.g. matmul's panel broadcast) it merely adds replica
  // dependencies — a chained copy cannot start before its parent lands.
  // Gate per source: chain only sources carrying more than twice this
  // plan's per-device average copy count.  The gate is a pure function of
  // the merged ranges, so it is deterministic across resolution engines.
  std::unordered_map<int, i64> outgoing;
  std::unordered_set<int> devices;
  i64 totalCopies = 0;
  for (std::size_t bi = 0; bi < buffers.size(); ++bi) {
    for (std::size_t li = 0; li < ranges[bi].size(); ++li) {
      if (ranges[bi][li].empty()) continue;
      auto [src, dst] = bufferLinks[bi].links[li];
      const i64 count = static_cast<i64>(ranges[bi][li].size());
      outgoing[src] += count;
      totalCopies += count;
      devices.insert(src);
      devices.insert(dst);
    }
  }
  auto oversubscribed = [&](int src) {
    return outgoing[src] * static_cast<i64>(devices.size()) > 2 * totalCopies;
  };

  // (b) Broadcast chaining: group equal (src, range) pulls across
  // destinations; a binomial FIFO re-sources later copies from replicas the
  // earlier copies create, spreading a one-to-many read over multiple
  // source engines instead of the owner's alone.
  struct Prov {
    VirtualBuffer* buffer;
    int dst, src;
    i64 begin, end;
    int wave;
    std::ptrdiff_t parent;
  };
  std::vector<Prov> prov;
  for (std::size_t bi = 0; bi < buffers.size(); ++bi) {
    struct Group {
      int src;
      i64 begin, end;
      std::vector<int> dsts;
    };
    std::vector<Group> groups;
    for (std::size_t li = 0; li < ranges[bi].size(); ++li) {
      auto [src, dst] = bufferLinks[bi].links[li];
      for (const auto& [b, e] : ranges[bi][li]) {
        Group* g = nullptr;
        if (opts_.chainBroadcasts && oversubscribed(src))
          for (Group& cand : groups)
            if (cand.src == src && cand.begin == b && cand.end == e) {
              g = &cand;
              break;
            }
        if (g == nullptr) {
          groups.push_back(Group{src, b, e, {}});
          g = &groups.back();
        }
        g->dsts.push_back(dst);
      }
    }
    for (const Group& g : groups) {
      // FIFO of replica holders; popping rotates through them, which yields
      // a binomial tree: round k doubles the number of sources.
      std::deque<std::pair<int, std::ptrdiff_t>> holders;
      holders.emplace_back(g.src, -1);
      for (int dst : g.dsts) {
        int s = holders.front().first;
        std::ptrdiff_t pidx = holders.front().second;
        holders.pop_front();
        if (s == dst) {  // duplicate pull (unmerged plans): never self-copy
          holders.emplace_back(s, pidx);
          s = holders.front().first;
          pidx = holders.front().second;
          holders.pop_front();
        }
        int wave = pidx < 0 ? 0 : prov[static_cast<std::size_t>(pidx)].wave + 1;
        if (s != g.src) ++stats_.chains;
        prov.push_back(Prov{buffers[bi], dst, s, g.begin, g.end, wave, pidx});
        holders.emplace_back(s, pidx);
        holders.emplace_back(dst, static_cast<std::ptrdiff_t>(prov.size()) - 1);
      }
    }
  }

  // (c) Issue order: waves ascending (a parent is always in an earlier wave
  // than its children), round-robin across links inside a wave so
  // consecutive copies land on distinct engines.
  LinkTable order;
  int maxWave = 0;
  for (const Prov& p : prov) {
    order.ordinal(p.src, p.dst);
    maxWave = std::max(maxWave, p.wave);
  }
  scheduled_.clear();
  scheduled_.reserve(prov.size());
  std::vector<std::size_t> finalIndex(prov.size());
  for (int wave = 0; wave <= maxWave; ++wave) {
    std::vector<std::vector<std::size_t>> queues(order.links.size());
    std::size_t remaining = 0;
    for (std::size_t i = 0; i < prov.size(); ++i) {
      if (prov[i].wave != wave) continue;
      queues[order.ordinal(prov[i].src, prov[i].dst)].push_back(i);
      ++remaining;
    }
    std::vector<std::size_t> cursor(queues.size(), 0);
    while (remaining > 0) {
      for (std::size_t li = 0; li < queues.size(); ++li) {
        if (cursor[li] >= queues[li].size()) continue;
        std::size_t i = queues[li][cursor[li]++];
        finalIndex[i] = scheduled_.size();
        const Prov& p = prov[i];
        scheduled_.push_back(ScheduledTransfer{p.buffer, p.dst, p.src, p.begin,
                                               p.end, p.wave, p.parent});
        --remaining;
      }
    }
  }
  for (ScheduledTransfer& t : scheduled_)
    if (t.parent >= 0)
      t.parent = static_cast<std::ptrdiff_t>(
          finalIndex[static_cast<std::size_t>(t.parent)]);

  stats_.issued = static_cast<i64>(scheduled_.size());
  scheduled_valid_ = true;
  return scheduled_;
}

void TransferPlan::setIssueTag(i64 epoch, int tenant) {
  issueEpoch_ = epoch;
  issueTenant_ = tenant;
}

void TransferPlan::setSrcFloors(std::vector<double> srcFloors) {
  srcFloors_ = std::move(srcFloors);
}

const TransferPlanStats& TransferPlan::issue(sim::Machine& machine,
                                             trace::Tracer* tracer) {
  schedule();
  std::vector<double> completion(scheduled_.size(), 0);
  int wave = -1;
  i64 waveCopies = 0;
  auto flushWave = [&] {
    if (wave < 0) return;
    if (issueEpoch_ >= 0)
      trace::instant(tracer, "transfer", "plan-wave",
                     {{"wave", wave}, {"copies", waveCopies},
                      {"epoch", issueEpoch_}});
    else
      trace::instant(tracer, "transfer", "plan-wave",
                     {{"wave", wave}, {"copies", waveCopies}});
  };
  for (std::size_t i = 0; i < scheduled_.size(); ++i) {
    const ScheduledTransfer& t = scheduled_[i];
    if (t.wave != wave) {
      flushWave();
      wave = t.wave;
      waveCopies = 0;
    }
    ++waveCopies;
    double notBefore =
        t.parent >= 0 ? completion[static_cast<std::size_t>(t.parent)] : 0;
    if (t.src >= 0 && static_cast<std::size_t>(t.src) < srcFloors_.size())
      notBefore = std::max(notBefore, srcFloors_[static_cast<std::size_t>(t.src)]);
    completion[i] = machine.copyPeer(
        t.buffer->instances_[static_cast<std::size_t>(t.dst)], t.begin,
        t.buffer->instances_[static_cast<std::size_t>(t.src)], t.begin,
        t.end - t.begin, notBefore);
    trace::instant(tracer, "transfer", prefetch_ ? "prefetch-copy" : "peer-copy",
                   {{"src", t.src}, {"dst", t.dst}, {"bytes", t.end - t.begin}});
  }
  flushWave();
  if (issueEpoch_ >= 0 && !scheduled_.empty())
    trace::tenantInstant(tracer, issueTenant_, "transfer", "plan-issued",
                         {{"epoch", issueEpoch_},
                          {"copies", static_cast<i64>(scheduled_.size())}});
  return stats_;
}

}  // namespace polypart::rt
