#pragma once

// Shared concrete-footprint machinery: evaluating an ArrayModel's access
// maps for one launch into flattened element ranges of the backing buffer.
//
// Both consumers compute per-device footprints of a concrete (grid, block,
// scalars) launch by boxing an access map with `Map::rangeUnderBox`, rebasing
// the result into a canonical element space, and scanning it into merged
// row-major ranges:
//   - the cross-launch dataflow planner (dataflow_plan.cpp) intersects
//     producer write sets with consumer read sets into flow edges;
//   - runtime repartitioning (repartition.cpp) subtracts the old partition's
//     write footprint from the new one to get the minimal transition set.

#include <algorithm>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "analysis/model.h"
#include "ir/type.h"
#include "pset/ast.h"
#include "pset/set.h"
#include "support/arith.h"
#include "support/error.h"

namespace polypart::rt::footprint {

/// Model-parameter values of one launch: [bd.x, bd.y, bd.z, gd.x, gd.y,
/// gd.z, <i64 scalars in declaration order>] — the model param space layout.
inline std::vector<i64> paramVec(const ir::Dim3& grid, const ir::Dim3& block,
                                 std::span<const i64> scalars) {
  std::vector<i64> v{block.x, block.y, block.z, grid.x, grid.y, grid.z};
  v.insert(v.end(), scalars.begin(), scalars.end());
  return v;
}

/// Canonical rank-r element space all footprint sets of one array are
/// rebased into: access maps of different kernels name their output dims
/// differently, and Space equality includes names.
inline pset::Space canonSpace(std::size_t rank) {
  std::vector<std::string> names;
  names.reserve(rank);
  for (std::size_t i = 0; i < rank; ++i) names.push_back("d" + std::to_string(i));
  return pset::Space::set({}, names);
}

/// Copies a set into `canon` (same rank, zero params on both sides, so the
/// column layouts match and constraints transfer verbatim).
inline pset::Set rebase(const pset::Set& s, const pset::Space& canon) {
  pset::Set out(canon);
  if (!s.exact()) out.markInexact();
  for (const pset::BasicSet& part : s.parts()) {
    if (part.markedEmpty()) continue;
    pset::BasicSet aligned(canon);
    for (const pset::Constraint& c : part.constraints()) aligned.add(c);
    aligned.simplify();
    if (!aligned.markedEmpty()) out.addPart(std::move(aligned));
  }
  return out;
}

/// Concrete array extents for one launch, outermost first; rank-1 arrays
/// without a declared shape span the whole buffer (`bufBytes / elemBytes`
/// elements).  nullopt when a shape row does not evaluate to a positive
/// extent.
inline std::optional<std::vector<i64>> evalShape(const analysis::ArrayModel& a,
                                                 std::span<const i64> params,
                                                 i64 bufBytes, i64 elemBytes) {
  std::vector<i64> dims;
  if (a.shape.empty()) {
    dims.push_back(bufBytes / elemBytes);
  } else {
    try {
      for (const pset::LinExpr& row : a.shape) {
        i64 v = row.constantTerm();
        for (std::size_t p = 0; p < params.size(); ++p)
          v = checkedAdd(v, checkedMul(row[p + 1], params[p]));
        dims.push_back(v);
      }
    } catch (...) {
      return std::nullopt;
    }
  }
  for (i64 d : dims)
    if (d <= 0) return std::nullopt;
  return dims;
}

struct Flattened {
  std::vector<std::pair<i64, i64>> ranges;  // merged half-open element ranges
  i64 elems = 0;
};

/// Scans every part of a concrete (parameter-free) footprint set into
/// flattened element ranges under row-major `dims`, merged and clipped to
/// the array.  nullopt when a part cannot be scanned or the range count
/// explodes.
inline std::optional<Flattened> flatten(const pset::Set& s,
                                        const std::vector<i64>& dims,
                                        i64 totalElems, std::size_t maxRanges) {
  const std::size_t rank = dims.size();
  std::vector<i64> strides(rank, 1);
  for (std::size_t i = rank - 1; i > 0; --i)
    strides[i - 1] = strides[i] * dims[i];
  std::vector<std::pair<i64, i64>> raw;
  try {
    for (const pset::BasicSet& part : s.parts()) {
      if (part.markedEmpty()) continue;
      pset::ScanNest nest = pset::buildScan(part);
      pset::scanRows(nest, {}, [&](std::span<const i64> coords, i64 lo, i64 hi) {
        i64 base = 0;
        for (std::size_t i = 0; i < coords.size(); ++i)
          base = checkedAdd(base, checkedMul(coords[i], strides[i]));
        i64 b = std::max<i64>(checkedAdd(base, lo), 0);
        i64 e = std::min<i64>(checkedAdd(checkedAdd(base, hi), 1), totalElems);
        if (b < e) raw.emplace_back(b, e);
      });
      if (raw.size() > maxRanges) throw OverflowError("footprint too fragmented");
    }
  } catch (...) {
    return std::nullopt;
  }
  std::sort(raw.begin(), raw.end());
  Flattened out;
  for (const auto& [b, e] : raw) {
    if (!out.ranges.empty() && b <= out.ranges.back().second)
      out.ranges.back().second = std::max(out.ranges.back().second, e);
    else
      out.ranges.emplace_back(b, e);
  }
  for (const auto& [b, e] : out.ranges) out.elems += e - b;
  return out;
}

}  // namespace polypart::rt::footprint
