#pragma once

// The header the source-to-source rewriter's prologue references
// (`#include "gpart_runtime.h"`).  Rewritten host code compiles against the
// CUDA-replacement surface and registers the pass-1 application model.

#include "rt/cuda_api.h"

/// Emitted by the rewriter prologue: records where pass 1 stored the
/// serialized application model so the runtime can be constructed from it
/// at startup (tool::CompiledApplication::makeRuntime does this for
/// in-process use; standalone builds load the file).
#define GPART_REGISTER_MODEL(path)                                     \
  namespace {                                                          \
  [[maybe_unused]] const char* gpart_registered_model_path__ = (path); \
  }                                                                    \
  static_assert(true, "")

namespace polypart::rt {

/// Loads a serialized application model (the pass-1 artifact) and builds a
/// runtime for it over the given kernels.
inline std::unique_ptr<Runtime> gpartLoadRuntime(const std::string& modelPath,
                                                 const ir::Module& kernels,
                                                 RuntimeConfig config) {
  analysis::ApplicationModel model = analysis::ApplicationModel::loadFrom(modelPath);
  return std::make_unique<Runtime>(config, std::move(model), kernels);
}

}  // namespace polypart::rt
