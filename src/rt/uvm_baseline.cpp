#include "rt/uvm_baseline.h"

#include <algorithm>

#include "support/error.h"

namespace polypart::rt {

using analysis::KernelModel;
using codegen::Enumerator;
using codegen::PartitionTuple;
using ir::Dim3;
using ir::GridPartition;
using ir::LaunchConfig;

namespace {
constexpr i64 kElemBytes = 8;
}

UvmRuntime::UvmRuntime(UvmConfig config, analysis::ApplicationModel model,
                       const ir::Module& kernels)
    : config_(config), model_(std::move(model)) {
  config_.machine.numDevices = config_.numGpus;
  machine_ = std::make_unique<sim::Machine>(config_.machine,
                                            sim::ExecutionMode::TimingOnly);
  for (const KernelModel& km : model_.kernels) {
    ir::KernelPtr k = kernels.find(km.kernel);
    PP_ASSERT(k != nullptr);
    KernelEntry ke;
    ke.model = &km;
    ke.partitioned = ir::partitionKernel(*k);
    ke.enumerators = codegen::buildEnumerators(km);
    kernels_.emplace(km.kernel, std::move(ke));
  }
}

UvmRuntime::~UvmRuntime() = default;

UvmBuffer* UvmRuntime::malloc(i64 bytes) {
  std::vector<sim::DevBuffer> instances;
  for (int d = 0; d < config_.numGpus; ++d)
    instances.push_back(machine_->alloc(d, bytes));
  buffers_.push_back(std::unique_ptr<UvmBuffer>(
      new UvmBuffer(bytes, config_.pageBytes, std::move(instances))));
  return buffers_.back().get();
}

void UvmRuntime::free(UvmBuffer* buf) {
  for (auto it = buffers_.begin(); it != buffers_.end(); ++it) {
    if (it->get() == buf) {
      for (const sim::DevBuffer& b : buf->instances_) machine_->free(b);
      buffers_.erase(it);
      return;
    }
  }
  PP_ASSERT(false);
}

void UvmRuntime::populate(UvmBuffer* buf, i64 bytes) {
  const i64 pages = (std::min(bytes, buf->bytes_) + config_.pageBytes - 1) /
                    config_.pageBytes;
  for (i64 p = 0; p < pages; ++p)
    buf->pageOwner_[static_cast<std::size_t>(p)] = -1;  // host-resident
  machine_->chargeApiCall();
}

void UvmRuntime::launch(const std::string& kernelName, const Dim3& grid,
                        const Dim3& block, std::span<UvmBuffer* const> arrayArgs,
                        std::span<const i64> scalarArgs) {
  auto it = kernels_.find(kernelName);
  PP_ASSERT_MSG(it != kernels_.end(), "launch of unknown kernel");
  const KernelEntry& ke = it->second;
  const KernelModel& model = *ke.model;
  ++stats_.launches;

  // Map model array arguments to the caller's UvmBuffers in order.
  std::map<std::size_t, UvmBuffer*> byArg;
  std::size_t next = 0;
  for (const analysis::ArrayModel& am : model.arrays) {
    PP_ASSERT(next < arrayArgs.size());
    byArg[am.argIndex] = arrayArgs[next++];
  }

  // Kernels must not start before the pages they fault on have been written
  // by their producers: unified memory serializes through the fault handler,
  // which is modeled by draining outstanding work first.
  machine_->synchronizeAll();

  const int g = config_.numGpus;
  for (int gpu = 0; gpu < g; ++gpu) {
    GridPartition gp{{0, 0, 0}, grid};
    auto chunk = [&](i64 extent, i64& lo, i64& hi) {
      lo = extent * gpu / g;
      hi = extent * (gpu + 1) / g;
    };
    switch (model.strategy) {
      case analysis::PartitionStrategy::SplitX: chunk(grid.x, gp.lo.x, gp.hi.x); break;
      case analysis::PartitionStrategy::SplitY: chunk(grid.y, gp.lo.y, gp.hi.y); break;
      case analysis::PartitionStrategy::SplitZ: chunk(grid.z, gp.lo.z, gp.hi.z); break;
    }
    if (gp.blockCount() == 0) continue;
    PartitionTuple tuple = PartitionTuple::fromBlocks(gp, block);
    LaunchConfig cfg{grid, block};

    // Demand faults: every page the partition touches migrates to this GPU
    // (migrate-on-touch; reads steal pages from other readers too).
    i64 faults = 0;
    for (const Enumerator& e : ke.enumerators) {
      UvmBuffer* vb = byArg[e.argIndex()];
      PP_ASSERT(vb != nullptr);
      e.enumerate(tuple, cfg, scalarArgs, [&](i64 elemB, i64 elemE) {
        i64 firstPage = elemB * kElemBytes / config_.pageBytes;
        i64 lastPage = (elemE * kElemBytes - 1) / config_.pageBytes;
        for (i64 p = firstPage; p <= lastPage; ++p) {
          int& owner = vb->pageOwner_[static_cast<std::size_t>(p)];
          if (owner == gpu) continue;
          // The final page of a buffer may be partial.
          i64 pageLen = std::min(config_.pageBytes,
                                 vb->bytes_ - p * config_.pageBytes);
          ++faults;
          ++stats_.pageFaults;
          ++stats_.pagesMigrated;
          stats_.bytesMigrated += pageLen;
          if (owner < 0) {
            machine_->copyHostToDevice(vb->instances_[static_cast<std::size_t>(gpu)],
                                       p * config_.pageBytes, nullptr, pageLen);
          } else {
            machine_->copyPeer(vb->instances_[static_cast<std::size_t>(gpu)],
                               p * config_.pageBytes,
                               vb->instances_[static_cast<std::size_t>(owner)],
                               p * config_.pageBytes, pageLen);
          }
          owner = gpu;
        }
      });
    }
    // Fault-handling latency, batched by the driver, stalls the kernel.
    machine_->advanceHost(static_cast<double>(faults) * config_.faultLatency /
                          config_.faultBatchFactor);

    LaunchConfig partCfg{{gp.hi.x - gp.lo.x, gp.hi.y - gp.lo.y, gp.hi.z - gp.lo.z},
                         block};
    std::vector<sim::KernelArg> kargs;
    std::size_t arrIdx = 0;
    for (const analysis::ParamInfo& p : model.params) {
      if (p.isArray) {
        UvmBuffer* vb = arrayArgs[arrIdx++];
        kargs.push_back(sim::KernelArg::ofBuffer(
            vb->instances_[static_cast<std::size_t>(gpu)]));
      } else if (p.type == ir::Type::I64) {
        kargs.push_back(sim::KernelArg::ofInt(
            scalarArgs[p.modelParamIndex - analysis::kFixedParams]));
      } else {
        kargs.push_back(sim::KernelArg::ofFloat(0.0));
      }
    }
    for (i64 v : {gp.lo.x, gp.lo.y, gp.lo.z, gp.hi.x, gp.hi.y, gp.hi.z})
      kargs.push_back(sim::KernelArg::ofInt(v));
    machine_->launchKernel(gpu, *ke.partitioned, partCfg, kargs);
  }
}

void UvmRuntime::synchronize() { machine_->synchronizeAll(); }

double UvmRuntime::elapsedSeconds() const { return machine_->completionTime(); }

}  // namespace polypart::rt
