#include "rt/dataflow_plan.h"

#include <algorithm>
#include <optional>
#include <string>
#include <utility>

#include "codegen/enumerator.h"
#include "pset/ast.h"
#include "rt/footprint.h"
#include "rt/runtime.h"
#include "support/arith.h"

namespace polypart::rt {

using analysis::ArrayModel;
using analysis::KernelModel;
using codegen::PartitionTuple;
using pset::BasicSet;
using pset::Constraint;
using pset::Set;
using pset::Space;

DataflowPlanner::DataflowPlanner(int numGpus, i64 elemBytes,
                                 PartitionFn partitionFor)
    : numGpus_(numGpus),
      elemBytes_(elemBytes),
      partitionFor_(std::move(partitionFor)) {
  PP_ASSERT(numGpus_ >= 1 && elemBytes_ > 0 && partitionFor_ != nullptr);
}

DataflowPlanner::~DataflowPlanner() = default;

bool DataflowPlanner::Step::matches(const Step& o) const {
  return kernelTag == o.kernelTag && grid == o.grid && block == o.block &&
         scalars == o.scalars && buffers == o.buffers;
}

DataflowPlanner::Step DataflowPlanner::makeStep(
    const KernelModel& model, const void* kernelTag,
    const ir::LaunchConfig& cfg, std::span<VirtualBuffer* const> buffers,
    std::span<const i64> scalars) const {
  Step st;
  st.model = &model;
  st.kernelTag = kernelTag;
  st.grid = cfg.grid;
  st.block = cfg.block;
  st.scalars.assign(scalars.begin(), scalars.end());
  st.buffers.assign(buffers.begin(), buffers.end());
  return st;
}

std::size_t DataflowPlanner::detectPeriod() const {
  for (std::size_t p = 1; p <= kMaxPeriod; ++p) {
    if (history_.size() < 2 * p) break;
    bool match = true;
    const std::size_t n = history_.size();
    for (std::size_t i = 0; i < p && match; ++i)
      match = history_[n - p + i].matches(history_[n - 2 * p + i]);
    if (match) return p;
  }
  return 0;
}

// The concrete-footprint helpers (paramVec/canonSpace/rebase/evalShape/
// flatten) live in rt/footprint.h, shared with runtime repartitioning.
using footprint::canonSpace;
using footprint::evalShape;
using footprint::flatten;
using footprint::Flattened;
using footprint::paramVec;
using footprint::rebase;

bool DataflowPlanner::compilePlan() {
  const std::size_t p = cycle_.size();
  edgesByStep_.assign(p, {});
  // Kernels whose write patterns only instrumentation can observe have no
  // static write map to compose — the whole cycle stays reactive.  Same for
  // the may-access tier: its write sets are observed, not modeled, and its
  // read over-approximations would compile into whole-buffer prefetches that
  // defeat the inspector's exact footprints.
  for (const Step& st : cycle_)
    for (const ArrayModel& a : st.model->arrays)
      if (a.writeInstrumented || a.writeMayAccess || a.readMayAccess)
        return false;

  for (std::size_t s = 0; s < p; ++s) {
    const Step& prod = cycle_[s];
    const std::vector<i64> prodParams =
        paramVec(prod.grid, prod.block, prod.scalars);
    for (const ArrayModel& wa : prod.model->arrays) {
      if (!wa.hasWrites()) continue;
      VirtualBuffer* buf = prod.buffers[wa.argIndex];
      if (buf == nullptr) continue;
      std::optional<std::vector<i64>> prodDims =
          evalShape(wa, prodParams, buf->bytes(), elemBytes_);
      if (!prodDims) continue;
      i64 totalElems = 1;
      try {
        for (i64 d : *prodDims) totalElems = checkedMul(totalElems, d);
      } catch (...) {
        continue;
      }
      totalElems = std::min(totalElems, buf->bytes() / elemBytes_);
      const Space canon = canonSpace(prodDims->size());

      // This step's concrete write set per producing device.
      std::vector<Set> wsets;
      wsets.reserve(static_cast<std::size_t>(numGpus_));
      for (int g = 0; g < numGpus_; ++g) {
        ir::GridPartition gp = partitionFor_(*prod.model, prod.grid, g);
        if (gp.blockCount() == 0) {
          wsets.emplace_back(canon);
          continue;
        }
        PartitionTuple t = PartitionTuple::fromBlocks(gp, prod.block);
        wsets.push_back(
            rebase(wa.write.rangeUnderBox(prodParams, t.lo, t.hi), canon));
      }

      // Walk the downstream steps cyclically.  Reads at distance d consume
      // against the writes accumulated at distances 1..d-1 (the kill set);
      // d == p wraps to the producer's own next iteration (its re-reads are
      // flow too; its writes are this step's own, not a kill).
      Set kill(canon);
      for (std::size_t d = 1; d <= p; ++d) {
        const std::size_t c = (s + d) % p;
        const Step& cons = cycle_[c];
        const std::vector<i64> consParams =
            paramVec(cons.grid, cons.block, cons.scalars);

        for (const ArrayModel& ra : cons.model->arrays) {
          if (!ra.hasReads()) continue;
          if (cons.buffers[ra.argIndex] != buf) continue;
          std::optional<std::vector<i64>> consDims =
              evalShape(ra, consParams, buf->bytes(), elemBytes_);
          // Incompatible flattening geometries cannot be related statically;
          // skip the edge (the reactive path still moves the bytes).
          if (!consDims || *consDims != *prodDims) continue;

          FlowEdge edge;
          edge.producerStep = s;
          edge.consumerStep = c;
          edge.argIndex = wa.argIndex;
          bool ok = true;
          for (int gDst = 0; gDst < numGpus_ && gDst < 64 && ok; ++gDst) {
            ir::GridPartition gp = partitionFor_(*cons.model, cons.grid, gDst);
            if (gp.blockCount() == 0) continue;
            PartitionTuple t = PartitionTuple::fromBlocks(gp, cons.block);
            Set rset =
                rebase(ra.read.rangeUnderBox(consParams, t.lo, t.hi), canon);
            if (rset.parts().empty()) continue;
            for (int gSrc = 0; gSrc < numGpus_ && ok; ++gSrc) {
              if (gSrc == gDst) continue;
              Set flow = wsets[static_cast<std::size_t>(gSrc)].intersect(rset);
              flow.pruneEmptyParts();
              if (flow.parts().empty()) continue;
              Set live = flow.subtract(kill);
              live.pruneEmptyParts();
              std::optional<Flattened> flowFlat =
                  flatten(flow, *prodDims, totalElems, kMaxRangesPerEdge);
              std::optional<Flattened> liveFlat =
                  flatten(live, *prodDims, totalElems, kMaxRangesPerEdge);
              if (!flowFlat || !liveFlat) {
                ok = false;
                break;
              }
              edge.elidedBytes +=
                  (flowFlat->elems - liveFlat->elems) * elemBytes_;
              if (!liveFlat->ranges.empty()) {
                PlannedTransfer pt;
                pt.src = gSrc;
                pt.dst = gDst;
                pt.byteRanges.reserve(liveFlat->ranges.size());
                for (const auto& [b, e] : liveFlat->ranges)
                  pt.byteRanges.emplace_back(b * elemBytes_, e * elemBytes_);
                edge.transfers.push_back(std::move(pt));
              }
            }
          }
          if (ok && (!edge.transfers.empty() || edge.elidedBytes > 0))
            edgesByStep_[s].push_back(std::move(edge));
        }

        if (d == p) break;
        for (const ArrayModel& wa2 : cons.model->arrays) {
          if (!wa2.hasWrites()) continue;
          if (cons.buffers[wa2.argIndex] != buf) continue;
          std::optional<std::vector<i64>> killDims =
              evalShape(wa2, consParams, buf->bytes(), elemBytes_);
          // A write we cannot relate to the producer's geometry is simply
          // not subtracted — elision only ever under-fires (safe: the
          // tracker clip at issue time discards any stale prefetch).
          if (!killDims || *killDims != *prodDims) continue;
          for (int g = 0; g < numGpus_; ++g) {
            ir::GridPartition gp = partitionFor_(*cons.model, cons.grid, g);
            if (gp.blockCount() == 0) continue;
            PartitionTuple t = PartitionTuple::fromBlocks(gp, cons.block);
            kill = kill.unionWith(
                rebase(wa2.write.rangeUnderBox(consParams, t.lo, t.hi), canon));
          }
        }
      }
    }
  }
  return true;
}

DataflowPlanner::Observation DataflowPlanner::observe(
    const KernelModel& model, const void* kernelTag,
    const ir::LaunchConfig& cfg, std::span<VirtualBuffer* const> buffers,
    std::span<const i64> scalars) {
  Observation obs;
  Step sig = makeStep(model, kernelTag, cfg, buffers, scalars);

  if (active_) {
    if (sig.matches(cycle_[pos_])) {
      obs.planned = true;
      obs.step = pos_;
      pos_ = (pos_ + 1) % cycle_.size();
      return obs;
    }
    // Off-plan launch: degrade to reactive and start recording afresh (the
    // application may settle into a new cycle, e.g. after a phase change).
    obs.diverged = true;
    active_ = false;
    cycle_.clear();
    edgesByStep_.clear();
    history_.clear();
    history_.push_back(std::move(sig));
    return obs;
  }

  history_.push_back(std::move(sig));
  if (history_.size() > kMaxHistory)
    history_.erase(history_.begin());
  const std::size_t p = detectPeriod();
  if (p == 0) return obs;
  cycle_.assign(history_.end() - static_cast<std::ptrdiff_t>(p),
                history_.end());
  if (!compilePlan()) {
    cycle_.clear();
    edgesByStep_.clear();
    return obs;
  }
  active_ = true;
  pos_ = 0;  // the activating launch ran reactively; the next one is step 0
  history_.clear();
  obs.activated = true;
  return obs;
}

const std::vector<FlowEdge>& DataflowPlanner::edgesFor(std::size_t step) const {
  PP_ASSERT(active_ && step < edgesByStep_.size());
  return edgesByStep_[step];
}

void DataflowPlanner::reset() {
  history_.clear();
  cycle_.clear();
  edgesByStep_.clear();
  active_ = false;
  pos_ = 0;
}

}  // namespace polypart::rt
