#pragma once

// The runtime library (paper Section 8).
//
// Implements the multi-GPU primitives the rewritten host code calls:
//  - virtual buffers: one device-local instance per GPU plus a B-tree
//    segment tracker recording which instance holds the most recent copy of
//    each byte range (Section 8.1),
//  - memcpy translation: host-to-device scatters linearly across GPUs,
//    device-to-host gathers via the tracker, device-to-device is rejected
//    (Section 8.2),
//  - partitioned kernel launches following the Fig. 4 pseudo-code:
//    synchronize read sets, barrier, launch the partitioned clones, update
//    the trackers from the write sets (Sections 5, 8.3),
//  - the CUDA Runtime replacement surface (Section 8.4), including
//    getDeviceCount() == 1 so applications keep their single-GPU logic.
//
// The configuration carries the α/β/γ switches of the overhead analysis
// (Section 9.2): disable transfers, or disable dependency resolution
// entirely.
//
// Beyond the paper, RuntimeConfig::resolutionThreads enables a host-side
// parallel resolution engine (see DESIGN.md "Parallel dependency-resolution
// engine"): plan materialization fans out over (GPU, enumerator) pairs,
// tracker work is sharded per destination buffer, and transfer decisions are
// replayed into the machine model in the canonical serial order, keeping
// results and modeled timing byte-identical with threads on or off.

#include <chrono>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "analysis/model.h"
#include "codegen/enumerator.h"
#include "ir/transform.h"
#include "rt/tracker.h"
#include "sim/machine.h"

namespace polypart::support {
class ThreadPool;
}

namespace polypart::trace {
class Tracer;
}

namespace polypart::rt {

class TransferPlan;

/// Host-to-device distribution pattern (Section 8.2: "data is distributed
/// in a predefined pattern, hoping that this pattern matches the read
/// pattern of the following kernels.  Currently, this pattern is a linear
/// distribution").  RoundRobinPages exists for the ablation bench.
enum class H2DDistribution { Linear, RoundRobinPages };

struct RuntimeConfig {
  int numGpus = 1;
  sim::ExecutionMode mode = sim::ExecutionMode::Functional;
  sim::MachineSpec machine = sim::MachineSpec::k80Node(1);

  /// β configuration: dependency resolution and tracker updates run, but no
  /// data moves (Section 9.2).
  bool enableTransfers = true;
  /// γ configuration: no resolution, no tracker updates, no transfers.
  bool enableDependencyResolution = true;

  /// Enumerator full-row coalescing (ablation knob).
  bool coalesceEnumerators = true;
  /// Distribution pattern for host-to-device memcopies (ablation knob).
  H2DDistribution h2dDistribution = H2DDistribution::Linear;
  /// Shared-copy tracking: remember which devices already hold a valid
  /// replica of a segment and skip their re-synchronization.  Extends the
  /// paper's tracker, which "does not support shared copies, resulting in
  /// redundant transfers for applications with large amounts of shared
  /// data" (Section 8.3).  Off by default (paper behaviour).
  bool trackSharedCopies = false;
  /// Topology-aware transfer scheduling (extension; see DESIGN.md "Transfer
  /// plan").  Off (default): the paper's behaviour — each resolved segment is
  /// copied the moment the tracker query yields it.  On: both resolution
  /// engines collect the per-launch transfer decisions into a TransferPlan
  /// that merges adjacent/overlapping same-link ranges, chains one-to-many
  /// reads through fresh replicas (when trackSharedCopies provides the
  /// sharer bookkeeping), and issues round-robin across (src, dst) links.
  /// Functional results, tracker state, and gather bytes are byte-identical
  /// with scheduling on or off, at every resolutionThreads value;
  /// bytesPeerToPeer can only shrink (tests/transfer_plan_test.cpp).
  bool transferScheduling = false;
  /// Page size for the round-robin distribution (bytes).
  i64 h2dPageBytes = 65536;
  /// Launch-plan enumeration cache: memoizes, per kernel, the coalesced
  /// element ranges the enumerators produce for a given (partition tuple,
  /// grid, block, scalars) key.  The ranges are a pure function of that key,
  /// so iterative applications that relaunch the same configuration replay
  /// the recorded plan instead of re-running the polyhedral enumeration.
  /// Tracker queries, transfer decisions, and tracker updates stay live
  /// either way — only the pure enumeration is memoized — so functional
  /// results and transfer counts are identical with the cache on or off.
  bool enableEnumerationCache = true;
  /// Bounded cache size: retained launch plans per kernel, evicted FIFO.
  /// Values < 1 mean unbounded.
  i64 enumerationCachePlansPerKernel = 64;
  /// Modeled host cost per *logical row* of dependency bookkeeping: the
  /// paper's runtime enumerates the first/last element of every array row
  /// and performs a tracker operation per row (Sections 6.1, 8.3).  This
  /// part runs in the β configuration too, so it is what the paper's
  /// "patterns" overhead measures (median 0.51 %, max 6.8 %).
  double resolutionCostPerRow = 3e-9;
  /// Modeled host cost per logical row when a launch plan is replayed from
  /// the enumeration cache.  The per-row charging structure of the
  /// β-overhead model is preserved — every row still pays a tracker
  /// bookkeeping step — but the polyhedral enumeration of the row is gone,
  /// so the coefficient is smaller than resolutionCostPerRow.
  double cachedResolutionCostPerRow = 1e-9;
  /// Modeled host cost per row of *transfer creation* (assembling and
  /// issuing the memcpy for a resolved row range).  Skipped when transfers
  /// are disabled, so it shows up in the α-β "transfers" share, where the
  /// paper attributes the majority of the overhead.
  double transferIssueCostPerRow = 35e-9;
  /// Fixed modeled host cost per (array, partition) resolution step.
  double resolutionCostPerArray = 2e-6;
  /// Worker threads for the host-side parallel resolution engine.  0 keeps
  /// the paper's serial loop over every (GPU partition, array) pair
  /// (Section 8.3); N > 0 runs a three-phase engine on an N-thread pool:
  /// parallel plan materialization, per-buffer sharded tracker phases, and a
  /// deterministic ordered commit into the machine model.  Results, modeled
  /// timing, and RuntimeStats (minus the wall-clock/task meta-counters) are
  /// byte-identical for every value of this knob.
  int resolutionThreads = 0;
  /// Slowdown factor applied to kernels whose write patterns must be
  /// collected by instrumentation (paper Section 11 future work; dynamic
  /// collection "yields accurate results at the expense of significant
  /// runtime overhead").
  double instrumentationSlowdown = 2.0;
  /// Launch-pipeline tracer (support/trace.h).  When set, the runtime, the
  /// machine model, and the resolution thread pool record structured events
  /// — launch/sync/update spans, plan-cache hit/miss/evict, per-transfer
  /// src/dst/bytes, virtual-time engine spans — exportable as a Chrome
  /// trace.  Must outlive the Runtime.  Null (the default) disables tracing;
  /// results, modeled timing, RuntimeStats, and MachineStats are identical
  /// with tracing on or off (tests/trace_test.cpp).  Examples and benches
  /// wire this to the POLYPART_TRACE=<path> environment hook
  /// (trace::EnvTraceSession).
  trace::Tracer* tracer = nullptr;
};

/// A "virtual buffer": per-device instances + ownership tracker.
class VirtualBuffer {
 public:
  i64 bytes() const { return bytes_; }
  const SegmentTracker& tracker() const { return tracker_; }

 private:
  friend class Runtime;
  friend class TransferPlan;  // issues scheduled copies between instances
  VirtualBuffer(i64 bytes, std::vector<sim::DevBuffer> instances)
      : bytes_(bytes), instances_(std::move(instances)), tracker_(bytes) {}
  i64 bytes_ = 0;
  std::vector<sim::DevBuffer> instances_;  // one per device
  SegmentTracker tracker_;
};

enum class MemcpyKind { HostToHost, HostToDevice, DeviceToHost, DeviceToDevice };

/// Kernel launch argument: a scalar or a virtual buffer.
struct LaunchArg {
  ir::Value scalar;
  VirtualBuffer* buffer = nullptr;

  static LaunchArg ofInt(i64 v) { return {ir::Value::ofInt(v), nullptr}; }
  static LaunchArg ofFloat(double v) { return {ir::Value::ofFloat(v), nullptr}; }
  static LaunchArg ofBuffer(VirtualBuffer* b) { return {{}, b}; }
};

/// Counters for the overhead analysis (Section 9.2).
struct RuntimeStats {
  i64 launches = 0;
  i64 rangesResolved = 0;       // enumerated ranges over all launches
  i64 logicalRowsResolved = 0;  // paper-equivalent per-row resolution steps
  i64 trackerSegmentsVisited = 0;
  i64 peerCopies = 0;
  i64 sharedCopyHits = 0;  // transfers avoided by shared-copy tracking
  i64 enumCacheHits = 0;       // launch plans replayed from the cache
  i64 enumCacheMisses = 0;     // launch plans materialized by enumeration
  i64 enumCacheEvictions = 0;  // plans dropped by the bounded-size FIFO
  // Transfer-scheduler counters (all 0 with transferScheduling off).
  i64 transfersMerged = 0;    // decisions folded away by same-link merging
  i64 broadcastChains = 0;    // copies re-sourced from a fresh replica
  i64 bytesSavedByDedup = 0;  // storage bytes not re-moved thanks to merging
  // Engine meta-counters.  These describe *how* the resolution executed, not
  // what it computed: wall-clock fields are nondeterministic by nature and
  // resolutionTasks is 0 in serial mode, so the determinism guarantee of
  // RuntimeConfig::resolutionThreads covers every field above this line and
  // excludes the three below (tests/parallel_resolution_test.cpp).
  i64 resolutionTasks = 0;           // tasks executed by the parallel engine
  double resolutionWallSeconds = 0;  // real host time spent resolving
  double parallelWallSeconds = 0;    // real time inside parallel phases

  bool operator==(const RuntimeStats&) const = default;
};

class Runtime {
 public:
  /// Builds the runtime for an application: partitions every kernel
  /// (Section 7) and generates its enumerators (Section 6).
  Runtime(RuntimeConfig config, analysis::ApplicationModel model,
          const ir::Module& kernels);
  ~Runtime();

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  const RuntimeConfig& config() const { return config_; }
  sim::Machine& machine() { return *machine_; }

  // -- CUDA Runtime replacement (Section 8.4) --------------------------------
  VirtualBuffer* malloc(i64 bytes);
  /// Releases a buffer obtained from malloc().  Freeing the same buffer
  /// twice, or a pointer this runtime never allocated, is a contract
  /// violation and raises a diagnosable assertion instead of corrupting the
  /// buffer table.
  void free(VirtualBuffer* buf);
  /// cudaMemcpy replacement; dst/src are host pointers or VirtualBuffer*
  /// depending on `kind`.  Device-to-device throws (Section 8.2).
  void memcpy(void* dst, const void* src, i64 bytes, MemcpyKind kind);
  /// cudaGetDeviceCount replacement: "always returns 1" (Section 8.4).
  int getDeviceCount() const { return 1; }
  /// cudaDeviceSynchronize replacement: synchronizes all devices.
  void deviceSynchronize();

  /// Partitioned kernel launch (Fig. 4).  `grid`/`block` are the original
  /// single-GPU configuration.
  void launch(const std::string& kernelName, const ir::Dim3& grid,
              const ir::Dim3& block, std::span<const LaunchArg> args);

  /// End-to-end simulated time including outstanding asynchronous work.
  double elapsedSeconds() const;

  const RuntimeStats& stats() const { return stats_; }
  const sim::MachineStats& machineStats() const { return machine_->stats(); }

  /// The partitioned clone of a kernel (for inspection/tests).
  const ir::Kernel& partitionedKernel(const std::string& name) const;
  /// The grid partition assigned to `gpu` for a launch of `grid` blocks.
  ir::GridPartition partitionFor(const analysis::KernelModel& model,
                                 const ir::Dim3& grid, int gpu) const;

 private:
  /// A cached launch plan: the materialized output of every enumerator of a
  /// kernel (indexed like KernelEntry::enumerators) for one EnumerationKey.
  using LaunchPlan = std::vector<codegen::MaterializedRanges>;

  struct KernelEntry {
    const analysis::KernelModel* model = nullptr;
    ir::KernelPtr partitioned;
    std::vector<codegen::Enumerator> enumerators;
    /// Enumeration cache (one plan per launch configuration seen, FIFO
    /// bounded by RuntimeConfig::enumerationCachePlansPerKernel).  Plans are
    /// held by shared_ptr so the parallel engine can keep using an acquired
    /// plan after a later insertion of the same pass evicts it.
    std::unordered_map<codegen::EnumerationKey, std::shared_ptr<const LaunchPlan>,
                       codegen::EnumerationKeyHash>
        planCache;
    std::deque<codegen::EnumerationKey> planCacheOrder;
  };

  /// One GPU partition's launch plan for the current pass: the materialized
  /// enumerator output (owned by the cache, or pass-local when the cache is
  /// off) plus whether it was replayed (cache hit → cheaper modeled cost).
  struct PlanAcquisition {
    int gpu = 0;
    codegen::PartitionTuple tuple;
    std::shared_ptr<const LaunchPlan> plan;
    bool cached = false;
  };

  /// RAII wall-clock window accumulating into stats_.resolutionWallSeconds.
  /// Windows must not nest: each launch phase (read sync, tracker update)
  /// opens exactly one, so a launch's resolution wall time is counted once.
  /// Nesting would double-count real time and is asserted against.
  class ResolutionTimer;

  const KernelEntry& entry(const std::string& name) const;
  KernelEntry& entry(const std::string& name);
  /// Returns the cached launch plan for one (kernel, partition) pair,
  /// materializing it on a miss; nullptr when the cache is disabled.
  /// `wasHit` reports whether the plan was replayed rather than built.
  const LaunchPlan* resolvePlan(KernelEntry& ke,
                                const codegen::PartitionTuple& tuple,
                                const ir::LaunchConfig& cfg,
                                std::span<const i64> scalars, bool& wasHit);
  void synchronizeReads(KernelEntry& ke, const ir::LaunchConfig& cfg,
                        std::span<const LaunchArg> args,
                        std::span<const i64> scalars);
  /// Returns the per-launch plan for the read-sync phase when
  /// transferScheduling is on, or nullptr (paper behaviour: copies are
  /// issued inline by the tracker-query callback).
  std::unique_ptr<TransferPlan> makeTransferPlan() const;
  /// Schedules + issues a collected plan and folds its stats into stats_
  /// (peerCopies counts the post-merge copies actually issued).
  void issueTransferPlan(TransferPlan& plan);
  void updateTrackers(KernelEntry& ke, const ir::LaunchConfig& cfg,
                      std::span<const LaunchArg> args,
                      std::span<const i64> scalars);

  // -- parallel resolution engine (RuntimeConfig::resolutionThreads > 0) -----
  /// Phase 1: acquires one launch plan per non-empty GPU partition,
  /// materializing cache misses concurrently on the pool (pure work) and
  /// committing them to the plan cache single-producer on this thread with
  /// the exact hit/miss/eviction accounting of the serial resolvePlan path.
  std::vector<PlanAcquisition> acquirePlans(KernelEntry& ke,
                                            const ir::LaunchConfig& cfg,
                                            std::span<const i64> scalars);
  /// Phases 2+3 for the read sets: per-buffer sharded tracker queries with
  /// task-local sharer scratch, then a deterministic ordered commit of the
  /// collected transfer decisions into the machine model.
  void synchronizeReadsParallel(KernelEntry& ke, const ir::LaunchConfig& cfg,
                                std::span<const LaunchArg> args,
                                std::span<const i64> scalars);
  /// Phases 2+3 for the write sets: per-buffer sharded tracker updates, then
  /// the ordered commit of the modeled bookkeeping costs.
  void updateTrackersParallel(KernelEntry& ke, const ir::LaunchConfig& cfg,
                              std::span<const LaunchArg> args,
                              std::span<const i64> scalars);
  /// Runs `n` tasks on the pool and accounts them in RuntimeStats; `label`
  /// names the enclosing trace span (must be a string literal).
  void runResolutionTasks(const char* label, i64 n,
                          const std::function<void(i64)>& body);

  RuntimeConfig config_;
  analysis::ApplicationModel model_;
  std::unique_ptr<sim::Machine> machine_;
  std::unique_ptr<support::ThreadPool> pool_;  // null in serial paper mode
  std::map<std::string, KernelEntry> kernels_;
  std::vector<std::unique_ptr<VirtualBuffer>> buffers_;
  /// Addresses of buffers released through free(): distinguishes a double
  /// free from a free of a pointer this runtime never allocated.
  std::vector<const VirtualBuffer*> freedBuffers_;
  RuntimeStats stats_;
  bool resolutionTimerActive_ = false;  // ResolutionTimer non-overlap guard
};

}  // namespace polypart::rt
