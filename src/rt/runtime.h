#pragma once

// The runtime library (paper Section 8).
//
// Implements the multi-GPU primitives the rewritten host code calls:
//  - virtual buffers: one device-local instance per GPU plus a B-tree
//    segment tracker recording which instance holds the most recent copy of
//    each byte range (Section 8.1),
//  - memcpy translation: host-to-device scatters linearly across GPUs,
//    device-to-host gathers via the tracker, device-to-device is rejected
//    (Section 8.2),
//  - partitioned kernel launches following the Fig. 4 pseudo-code:
//    synchronize read sets, barrier, launch the partitioned clones, update
//    the trackers from the write sets (Sections 5, 8.3),
//  - the CUDA Runtime replacement surface (Section 8.4), including
//    getDeviceCount() == 1 so applications keep their single-GPU logic.
//
// The configuration carries the α/β/γ switches of the overhead analysis
// (Section 9.2): disable transfers, or disable dependency resolution
// entirely.
//
// Beyond the paper, RuntimeConfig::resolutionThreads enables a host-side
// parallel resolution engine (see DESIGN.md "Parallel dependency-resolution
// engine"): plan materialization fans out over (GPU, enumerator) pairs,
// tracker work is sharded per destination buffer, and transfer decisions are
// replayed into the machine model in the canonical serial order, keeping
// results and modeled timing byte-identical with threads on or off.
//
// RuntimeConfig::pipelineDepth adds an asynchronous pipelined launch engine
// on top (see DESIGN.md "Pipelined launches & tenancy"): submit() prepares
// and pre-materializes launch N+1 on the calling thread while a dedicated
// engine thread commits launch N, with per-launch epochs keeping the commit
// strictly in submission order so results stay byte-identical to the serial
// path.  RuntimeConfig::numTenants shards the runtime into client contexts
// multiplexed onto the one machine, with per-tenant stats and admission
// control (maxInFlightPerTenant).

#include <chrono>
#include <condition_variable>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "analysis/model.h"
#include "codegen/enumerator.h"
#include "ir/transform.h"
#include "rt/tracker.h"
#include "sim/machine.h"

namespace polypart::support {
class ThreadPool;
}

namespace polypart::trace {
class Tracer;
}

namespace polypart::rt {

class Checkpoint;
class DataflowPlanner;
class TransferPlan;

/// Host-to-device distribution pattern (Section 8.2: "data is distributed
/// in a predefined pattern, hoping that this pattern matches the read
/// pattern of the following kernels.  Currently, this pattern is a linear
/// distribution").  RoundRobinPages exists for the ablation bench.
enum class H2DDistribution { Linear, RoundRobinPages };

/// Process-default enumerator execution tier: POLYPART_ENUMERATOR_TIER
/// (interpret|bytecode|specialized) when set, else Interpret.  Used as the
/// RuntimeConfig default so suites can be re-run under another tier without
/// overriding configs that set the knob explicitly.
codegen::EnumTier defaultEnumeratorTier();

/// Process-default for RuntimeConfig::dataflowPlanning: the
/// POLYPART_DATAFLOW_PLANNING environment flag when set (strictly parsed:
/// 0/1/on/off/true/false/yes/no; anything else throws naming the variable),
/// else false.  Mirrors POLYPART_ENUMERATOR_TIER so suites can be re-run
/// with planning forced on without touching configs.
bool defaultDataflowPlanning();

/// Process-default for RuntimeConfig::allowRepartitioning: the
/// POLYPART_ALLOW_REPARTITIONING environment flag when set (same strict
/// parse as POLYPART_DATAFLOW_PLANNING), else false.  Forcing it on
/// globally is behaviour-neutral for applications that never call
/// repartition(), which is what lets check.sh re-run whole suites with the
/// knob enabled.
bool defaultAllowRepartitioning();

/// Process-default for RuntimeConfig::inspectorExecutor: the
/// POLYPART_INSPECTOR_EXECUTOR environment flag when set (same strict parse
/// as POLYPART_DATAFLOW_PLANNING), else false.  Behaviour-neutral for
/// kernels without may-access reads, which is what lets check.sh re-run
/// whole suites with the knob enabled.
bool defaultInspectorExecutor();

/// A weighted grid partitioning along a kernel's split axis: device d gets
/// the block range [extent * prefix(d) / total, extent * (prefix(d) +
/// weights[d]) / total).  All-equal weights reproduce the paper's even
/// split bit-for-bit; a zero weight gives the device an empty partition
/// (elasticity: the device is excluded from compute without being removed
/// from the machine).
struct Partitioning {
  std::vector<i64> weights;  // one non-negative weight per GPU

  /// The paper's even split over `numGpus` devices (weight 1 each).
  static Partitioning even(int numGpus) {
    return Partitioning{std::vector<i64>(static_cast<std::size_t>(numGpus), 1)};
  }

  i64 totalWeight() const {
    i64 t = 0;
    for (i64 w : weights) t += w;
    return t;
  }
  /// Devices with a non-zero share.
  int activeDevices() const {
    int n = 0;
    for (i64 w : weights)
      if (w > 0) ++n;
    return n;
  }

  bool operator==(const Partitioning&) const = default;
};

/// Outcome of one Runtime::repartition() call.
struct RepartitionResult {
  /// Bytes actually copied between devices (the pset old/new difference,
  /// clipped against live tracker ownership).
  i64 bytesMoved = 0;
  /// Full write footprint of the new partitioning — what a naive
  /// re-distribution of everything the kernel touches would move.  The
  /// minimality guarantee is bytesMoved <= bytesFootprint.
  i64 bytesFootprint = 0;
  /// Peer copies issued for the transition.
  i64 copies = 0;
};

struct RuntimeConfig {
  int numGpus = 1;
  sim::ExecutionMode mode = sim::ExecutionMode::Functional;
  sim::MachineSpec machine = sim::MachineSpec::k80Node(1);

  /// β configuration: dependency resolution and tracker updates run, but no
  /// data moves (Section 9.2).
  bool enableTransfers = true;
  /// γ configuration: no resolution, no tracker updates, no transfers.
  bool enableDependencyResolution = true;

  /// Enumerator full-row coalescing (ablation knob).
  bool coalesceEnumerators = true;
  /// Enumerator execution tier (see DESIGN.md "Execution tiers"):
  /// `Interpret` walks the scan-nest ASTs (paper mode), `Bytecode` runs the
  /// register bytecode compiled once per kernel, `Specialized` additionally
  /// constant-folds each (launch config, scalars, partition 6-tuple) vector
  /// on first sight and caches the folded program under the same key as the
  /// enumeration cache.  Every tier produces byte-identical results, stats,
  /// and modeled timing.  Defaults to POLYPART_ENUMERATOR_TIER
  /// (interpret|bytecode|specialized) when set, else Interpret.
  codegen::EnumTier enumeratorTier = defaultEnumeratorTier();
  /// Distribution pattern for host-to-device memcopies (ablation knob).
  H2DDistribution h2dDistribution = H2DDistribution::Linear;
  /// Shared-copy tracking: remember which devices already hold a valid
  /// replica of a segment and skip their re-synchronization.  Extends the
  /// paper's tracker, which "does not support shared copies, resulting in
  /// redundant transfers for applications with large amounts of shared
  /// data" (Section 8.3).  Off by default (paper behaviour).
  bool trackSharedCopies = false;
  /// Topology-aware transfer scheduling (extension; see DESIGN.md "Transfer
  /// plan").  Off (default): the paper's behaviour — each resolved segment is
  /// copied the moment the tracker query yields it.  On: both resolution
  /// engines collect the per-launch transfer decisions into a TransferPlan
  /// that merges adjacent/overlapping same-link ranges, chains one-to-many
  /// reads through fresh replicas (when trackSharedCopies provides the
  /// sharer bookkeeping), and issues round-robin across (src, dst) links.
  /// Functional results, tracker state, and gather bytes are byte-identical
  /// with scheduling on or off, at every resolutionThreads value;
  /// bytesPeerToPeer can only shrink (tests/transfer_plan_test.cpp).
  bool transferScheduling = false;
  /// Cross-launch dataflow planning (extension; see DESIGN.md "Cross-launch
  /// dataflow planning").  Off (default): the paper's reactive behaviour.
  /// On: the runtime records launch signatures, detects the steady-state
  /// launch cycle of iterative applications, composes producer write maps
  /// with downstream read maps into exact inter-launch flow sets (with
  /// dead-transfer elision), and eagerly prefetches the live bytes right
  /// after the producing launch — floored at the producer kernels' modeled
  /// completion — instead of copying them reactively at the consumer.
  /// Planned launches drop the global barriers around read synchronization
  /// in favour of per-device engine ordering (sim::Machine device-ordering
  /// mode), which is where the modeled-time win comes from.  The segment
  /// tracker stays the source of truth — planned copies are clipped against
  /// it and recorded as shared replicas, and any divergence falls back to
  /// the reactive path — so functional results are byte-identical with
  /// planning on or off (tests/dataflow_plan_test.cpp).  Defaults to the
  /// POLYPART_DATAFLOW_PLANNING environment override, else off.  Requires
  /// dependency resolution and transfers to be enabled to take effect.
  bool dataflowPlanning = defaultDataflowPlanning();
  /// Runtime repartitioning (extension; see DESIGN.md "Elastic
  /// repartitioning").  Off (default): the paper's behaviour — the grid
  /// partitioning chosen at construction is fixed for the life of the run,
  /// and repartition()/recoverDevice() throw.  On: Runtime::repartition()
  /// may change a kernel's per-device weights between launches, migrating
  /// only the pset difference of the old and new write footprints;
  /// checkpoint()/recoverDevice() add device-failure recovery on top.
  /// Behaviour-neutral until repartition() is actually called.  Defaults to
  /// the POLYPART_ALLOW_REPARTITIONING environment override, else off.
  bool allowRepartitioning = defaultAllowRepartitioning();
  /// Inspector–executor for may-access reads (extension; see DESIGN.md
  /// "May-access tier & inspector–executor").  Off (default): reads the
  /// analysis demoted to the may-access tier synchronize the whole declared
  /// extent of the array (conservative whole-buffer sharing).  On: before
  /// the read synchronization, the runtime runs a host-side inspection walk
  /// of the partitioned kernel over mirrors of the current buffer contents
  /// and records the exact per-device element footprints of every
  /// may-access read, then synchronizes only those.  Footprints are cached
  /// per kernel, keyed by (launch geometry, scalars, buffer identities,
  /// buffer content versions, partitioning) and invalidated when any
  /// inspected buffer's content changes.  Requires Functional mode when a
  /// launched kernel actually has may-access reads; functional results are
  /// byte-identical with the inspector on or off.  Defaults to the
  /// POLYPART_INSPECTOR_EXECUTOR environment override, else off.
  bool inspectorExecutor = defaultInspectorExecutor();
  /// Modeled host cost per may-read access observed by an inspection walk
  /// (charged on cache misses only; the walk re-executes the kernel's
  /// address arithmetic on the host).
  double inspectorCostPerElement = 1e-9;
  /// Bounded inspection cache size: retained footprint sets per kernel,
  /// evicted FIFO.  Values < 1 mean unbounded.
  i64 inspectionCacheEntriesPerKernel = 8;
  /// Page size for the round-robin distribution (bytes).
  i64 h2dPageBytes = 65536;
  /// Launch-plan enumeration cache: memoizes, per kernel, the coalesced
  /// element ranges the enumerators produce for a given (partition tuple,
  /// grid, block, scalars) key.  The ranges are a pure function of that key,
  /// so iterative applications that relaunch the same configuration replay
  /// the recorded plan instead of re-running the polyhedral enumeration.
  /// Tracker queries, transfer decisions, and tracker updates stay live
  /// either way — only the pure enumeration is memoized — so functional
  /// results and transfer counts are identical with the cache on or off.
  bool enableEnumerationCache = true;
  /// Bounded cache size: retained launch plans per kernel, evicted FIFO.
  /// Values < 1 mean unbounded.
  i64 enumerationCachePlansPerKernel = 64;
  /// Modeled host cost per *logical row* of dependency bookkeeping: the
  /// paper's runtime enumerates the first/last element of every array row
  /// and performs a tracker operation per row (Sections 6.1, 8.3).  This
  /// part runs in the β configuration too, so it is what the paper's
  /// "patterns" overhead measures (median 0.51 %, max 6.8 %).
  double resolutionCostPerRow = 3e-9;
  /// Modeled host cost per logical row when a launch plan is replayed from
  /// the enumeration cache.  The per-row charging structure of the
  /// β-overhead model is preserved — every row still pays a tracker
  /// bookkeeping step — but the polyhedral enumeration of the row is gone,
  /// so the coefficient is smaller than resolutionCostPerRow.
  double cachedResolutionCostPerRow = 1e-9;
  /// Modeled host cost per row of *transfer creation* (assembling and
  /// issuing the memcpy for a resolved row range).  Skipped when transfers
  /// are disabled, so it shows up in the α-β "transfers" share, where the
  /// paper attributes the majority of the overhead.
  double transferIssueCostPerRow = 35e-9;
  /// Fixed modeled host cost per (array, partition) resolution step.
  double resolutionCostPerArray = 2e-6;
  /// Worker threads for the host-side parallel resolution engine.  0 keeps
  /// the paper's serial loop over every (GPU partition, array) pair
  /// (Section 8.3); N > 0 runs a three-phase engine on an N-thread pool:
  /// parallel plan materialization, per-buffer sharded tracker phases, and a
  /// deterministic ordered commit into the machine model.  Results, modeled
  /// timing, and RuntimeStats (minus the wall-clock/task meta-counters) are
  /// byte-identical for every value of this knob.
  int resolutionThreads = 0;
  /// Slowdown factor applied to kernels whose write patterns must be
  /// collected by instrumentation (paper Section 11 future work; dynamic
  /// collection "yields accurate results at the expense of significant
  /// runtime overhead").
  double instrumentationSlowdown = 2.0;
  /// Asynchronous pipelined launch engine (see DESIGN.md "Pipelined launches
  /// & tenancy").  0 (default): the paper's synchronous path — launch()
  /// resolves, transfers, and executes before returning, bit-for-bit
  /// today's behaviour.  N > 0: submit() enqueues launches onto a dedicated
  /// engine thread and may run up to N launches ahead of the in-order
  /// commit, pre-materializing their launch plans (the pure polyhedral
  /// enumeration) on the submitting thread so resolution of launch N+1
  /// overlaps execution of launch N.  Functional results, tracker state,
  /// modeled timing, and RuntimeStats (minus the wall-clock/task
  /// meta-counters) are byte-identical at every depth.
  int pipelineDepth = 0;
  /// Client contexts sharded onto this runtime (>= 1).  Each tenant owns the
  /// buffers it allocates (malloc(bytes, tenant)); a launch may only
  /// reference its own tenant's buffers, and per-tenant counters accumulate
  /// into tenantStats().  1 (default): the classic single-client runtime.
  int numTenants = 1;
  /// Admission control: maximum launches a tenant may have in flight
  /// (submitted but not yet committed) before trySubmit() rejects and
  /// submit() blocks.  0 (default) = unbounded.  Only meaningful with
  /// pipelineDepth > 0 (the serial path commits within submit()).
  i64 maxInFlightPerTenant = 0;
  /// Launch-pipeline tracer (support/trace.h).  When set, the runtime, the
  /// machine model, and the resolution thread pool record structured events
  /// — launch/sync/update spans, plan-cache hit/miss/evict, per-transfer
  /// src/dst/bytes, virtual-time engine spans — exportable as a Chrome
  /// trace.  Must outlive the Runtime.  Null (the default) disables tracing;
  /// results, modeled timing, RuntimeStats, and MachineStats are identical
  /// with tracing on or off (tests/trace_test.cpp).  Examples and benches
  /// wire this to the POLYPART_TRACE=<path> environment hook
  /// (trace::EnvTraceSession).
  trace::Tracer* tracer = nullptr;
};

/// Client context ordinal of the multi-tenant runtime; tenant 0 is the
/// default used by every single-client entry point.
using TenantId = int;

/// A "virtual buffer": per-device instances + ownership tracker.
class VirtualBuffer {
 public:
  i64 bytes() const { return bytes_; }
  const SegmentTracker& tracker() const { return tracker_; }
  /// The client context that allocated this buffer (sharding invariant:
  /// only that tenant's launches may reference it).
  TenantId tenant() const { return tenant_; }

 private:
  friend class Runtime;
  friend class TransferPlan;  // issues scheduled copies between instances
  VirtualBuffer(i64 bytes, std::vector<sim::DevBuffer> instances,
                TenantId tenant)
      : bytes_(bytes),
        tenant_(tenant),
        instances_(std::move(instances)),
        tracker_(bytes) {}
  i64 bytes_ = 0;
  TenantId tenant_ = 0;
  std::vector<sim::DevBuffer> instances_;  // one per device
  SegmentTracker tracker_;
};

enum class MemcpyKind { HostToHost, HostToDevice, DeviceToHost, DeviceToDevice };

/// Kernel launch argument: a scalar or a virtual buffer.
struct LaunchArg {
  ir::Value scalar;
  VirtualBuffer* buffer = nullptr;

  static LaunchArg ofInt(i64 v) { return {ir::Value::ofInt(v), nullptr}; }
  static LaunchArg ofFloat(double v) { return {ir::Value::ofFloat(v), nullptr}; }
  static LaunchArg ofBuffer(VirtualBuffer* b) { return {{}, b}; }
};

/// Counters for the overhead analysis (Section 9.2).
struct RuntimeStats {
  i64 launches = 0;
  i64 rangesResolved = 0;       // enumerated ranges over all launches
  i64 logicalRowsResolved = 0;  // paper-equivalent per-row resolution steps
  i64 trackerSegmentsVisited = 0;
  i64 peerCopies = 0;
  i64 sharedCopyHits = 0;  // transfers avoided by shared-copy tracking
  i64 enumCacheHits = 0;       // launch plans replayed from the cache
  i64 enumCacheMisses = 0;     // launch plans materialized by enumeration
  i64 enumCacheEvictions = 0;  // plans dropped by the bounded-size FIFO
  // Transfer-scheduler counters (all 0 with transferScheduling off).
  i64 transfersMerged = 0;    // decisions folded away by same-link merging
  i64 broadcastChains = 0;    // copies re-sourced from a fresh replica
  i64 bytesSavedByDedup = 0;  // storage bytes not re-moved thanks to merging
  // Dataflow-planner counters (all 0 with dataflowPlanning off).
  i64 planActivations = 0;  // launch cycles detected and compiled to a plan
  i64 planDivergences = 0;  // active plans abandoned by an off-cycle launch
  i64 plannedLaunches = 0;  // launches that matched the active plan
  i64 prefetchCopies = 0;   // eager copies issued from compiled flow edges
  i64 bytesPrefetched = 0;  // bytes moved by those copies (post-merge)
  i64 bytesElided = 0;      // flow bytes proved dead before their next read
  i64 prefetchHits = 0;     // reactive copies skipped via prefetched replicas
  // Elastic-repartitioning counters (all 0 unless repartition()/checkpoint()/
  // recoverDevice() are called).
  i64 repartitions = 0;             // repartition() calls that changed weights
  i64 repartitionCopies = 0;        // peer copies issued by transitions
  i64 bytesRepartitioned = 0;       // bytes those copies moved
  i64 bytesRepartitionFootprint = 0;  // full new-footprint upper bound
  i64 checkpoints = 0;              // checkpoint() calls
  i64 bytesCheckpointed = 0;        // exclusive bytes snapshotted to the host
  i64 recoveries = 0;               // recoverDevice() calls
  i64 restoreCopies = 0;            // H2D copies restoring checkpointed ranges
  i64 bytesRestored = 0;            // bytes those copies restored
  i64 bytesAdopted = 0;             // lost bytes re-owned from live replicas
  // May-access tier counters (all 0 for purely affine kernels).
  i64 mayAccessLaunches = 0;   // launches of kernels with may-access arrays
  i64 inspectorRuns = 0;       // host-side inspection walks executed
  i64 inspectorCacheHits = 0;  // launches served by a cached footprint set
  i64 inspectorCacheMisses = 0;
  i64 inspectorCacheInvalidations = 0;  // stale footprints dropped: an
                                        // inspected buffer's content changed
  i64 inspectedElements = 0;   // may-read accesses observed by the walks
  // Engine meta-counters.  These describe *how* the resolution executed, not
  // what it computed: wall-clock fields are nondeterministic by nature and
  // resolutionTasks is 0 in serial mode, so the determinism guarantee of
  // RuntimeConfig::resolutionThreads covers every field above this line and
  // excludes the three below (tests/parallel_resolution_test.cpp).
  i64 resolutionTasks = 0;           // tasks executed by the parallel engine
  double resolutionWallSeconds = 0;  // real host time spent resolving
  double parallelWallSeconds = 0;    // real time inside parallel phases
  // Cache-telemetry meta-counters, sampled at the end of every launch.  The
  // FM-memoization counters are process-wide (pset's projection memo is one
  // table per process) diffed against a baseline taken at Runtime
  // construction; the specialized-program counters sum over this runtime's
  // enumerators.  Both are observational: parallel resolution can race two
  // misses on one key, so they are monotone telemetry, not byte-deterministic
  // state — like the fields above, they are excluded from the determinism
  // guarantee (tests/cache_counters_test.cpp asserts monotonicity and
  // hit/miss consistency instead).
  i64 fmMemoHits = 0;
  i64 fmMemoMisses = 0;
  i64 fmMemoEvictions = 0;
  i64 specProgramHits = 0;
  i64 specProgramMisses = 0;
  i64 specProgramEvictions = 0;

  bool operator==(const RuntimeStats&) const = default;
};

/// Per-tenant slice of the runtime's accounting (Runtime::tenantStats).
struct TenantStats {
  i64 submitted = 0;  // launches accepted (serial launches included)
  i64 rejected = 0;   // trySubmit() admission-control rejections
  i64 completed = 0;  // launches committed by the engine
  /// This tenant's share of the RuntimeStats counters: the difference of the
  /// aggregate counters across each of its launches, accumulated at commit.
  /// The wall-clock meta-counters follow the same caveat as RuntimeStats —
  /// submit-side pre-materialization windows of *other* tenants that overlap
  /// a commit land in whichever launch is committing, so only the fields
  /// above the meta-counter line are deterministic.
  RuntimeStats resolved;

  bool operator==(const TenantStats&) const = default;
};

class Runtime {
 public:
  /// Builds the runtime for an application: partitions every kernel
  /// (Section 7) and generates its enumerators (Section 6).
  Runtime(RuntimeConfig config, analysis::ApplicationModel model,
          const ir::Module& kernels);
  ~Runtime();

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  const RuntimeConfig& config() const { return config_; }
  sim::Machine& machine() { return *machine_; }

  // -- CUDA Runtime replacement (Section 8.4) --------------------------------
  /// Allocates a virtual buffer owned by `tenant` (0 = the single-client
  /// default).  In pipelined mode allocation drains the pipeline first, so
  /// machine operations keep program order.
  VirtualBuffer* malloc(i64 bytes, TenantId tenant = 0);
  /// Releases a buffer obtained from malloc().  Freeing the same buffer
  /// twice, or a pointer this runtime never allocated, is a contract
  /// violation and raises a diagnosable assertion instead of corrupting the
  /// buffer table.
  void free(VirtualBuffer* buf);
  /// cudaMemcpy replacement; dst/src are host pointers or VirtualBuffer*
  /// depending on `kind`.  Device-to-device throws (Section 8.2).
  void memcpy(void* dst, const void* src, i64 bytes, MemcpyKind kind);
  /// cudaGetDeviceCount replacement: "always returns 1" (Section 8.4).
  int getDeviceCount() const { return 1; }
  /// cudaDeviceSynchronize replacement: synchronizes all devices.
  void deviceSynchronize();

  /// Partitioned kernel launch (Fig. 4).  `grid`/`block` are the original
  /// single-GPU configuration.  In pipelined mode this is submit() + wait():
  /// synchronous semantics, pipelined machinery.
  void launch(const std::string& kernelName, const ir::Dim3& grid,
              const ir::Dim3& block, std::span<const LaunchArg> args,
              TenantId tenant = 0);

  // -- pipelined submission (RuntimeConfig::pipelineDepth > 0) ---------------
  /// Enqueues a launch and returns its epoch (a ticket for wait()).  The
  /// launch is validated and its plans pre-materialized on this thread; the
  /// engine thread commits epochs strictly in submission order.  Blocks on
  /// admission control (maxInFlightPerTenant) and on a full pipeline.  With
  /// pipelineDepth == 0 the launch commits before returning (the ticket is
  /// already retired).  Thread-safe: multiple tenants may submit
  /// concurrently; the relative order of concurrent submissions is decided
  /// by the epoch each one is assigned.
  i64 submit(const std::string& kernelName, const ir::Dim3& grid,
             const ir::Dim3& block, std::span<const LaunchArg> args,
             TenantId tenant = 0);
  /// submit() that rejects instead of blocking when the tenant is at its
  /// admission limit; nullopt = rejected (counted in TenantStats::rejected).
  std::optional<i64> trySubmit(const std::string& kernelName,
                               const ir::Dim3& grid, const ir::Dim3& block,
                               std::span<const LaunchArg> args,
                               TenantId tenant = 0);
  /// Blocks until `ticket` (a submit() epoch) has committed, then rethrows
  /// the first pipeline failure if one occurred.
  void wait(i64 ticket);
  /// Blocks until every submitted launch has committed (no-op when serial).
  void drain();
  /// True when no submitted launch is outstanding (always true when serial).
  bool pipelineIdle() const;
  /// Per-tenant counters; drains first so the numbers are settled.
  TenantStats tenantStats(TenantId tenant);
  /// Test hook: invoked on the engine thread immediately before each epoch
  /// commits.  Set only while the pipeline is idle; pass nullptr to clear.
  /// Blocking inside the observer stalls the commit stream deterministically
  /// — that is exactly what the admission-control tests use it for.
  void setCommitObserver(std::function<void(i64 epoch, TenantId tenant)> fn);

  /// End-to-end simulated time including outstanding asynchronous work.
  double elapsedSeconds() const;

  /// Aggregate counters.  In pipelined mode, read these only while the
  /// pipeline is idle (after drain(); the engine thread owns them while
  /// launches are in flight).
  const RuntimeStats& stats() const { return stats_; }
  const sim::MachineStats& machineStats() const { return machine_->stats(); }

  /// The partitioned clone of a kernel (for inspection/tests).
  const ir::Kernel& partitionedKernel(const std::string& name) const;
  /// The grid partition assigned to `gpu` for a launch of `grid` blocks.
  ir::GridPartition partitionFor(const analysis::KernelModel& model,
                                 const ir::Dim3& grid, int gpu) const;

  // -- elastic repartitioning (RuntimeConfig::allowRepartitioning) -----------
  /// The current weighted partitioning of `kernelName` (even at start).
  const Partitioning& partitioning(const std::string& kernelName) const;
  /// Changes `kernelName`'s partitioning to `next` between launches.  Drains
  /// the pipeline, then migrates only the difference of the old and new
  /// write footprints (a per-device pset subtraction over the kernel's last
  /// launch signature, clipped against live tracker ownership) and updates
  /// the trackers, so subsequent launches resolve against the new layout
  /// with byte-identical results.  Invalidates every tenant's dataflow plan.
  /// Throws Error when repartitioning is disabled or `next` is invalid
  /// (wrong arity, negative weights, zero total, weight on a failed device).
  RepartitionResult repartition(const std::string& kernelName,
                                const Partitioning& next);
  /// repartition() over every kernel (one shared new partitioning);
  /// returns the summed result.
  RepartitionResult repartitionAll(const Partitioning& next);
  /// Load-rebalancing policy: new weights proportional to current weight
  /// divided by measured per-device kernel busy seconds
  /// (sim::Machine::kernelBusySecondsForDevice), normalized to integer
  /// weights summing to ~`scale`.  Failed devices get 0; active devices
  /// never drop below 1.  Returns the current partitioning unchanged when
  /// any active device has no measured load yet.
  Partitioning loadBalancedPartitioning(const std::string& kernelName,
                                        i64 scale = 1024) const;

  // -- device-failure recovery (rt/checkpoint.h) -----------------------------
  /// Host-side snapshot of every byte range that exists on exactly one live
  /// device (replicated ranges survive a single failure without help).
  /// Drains and synchronizes first.  Cheap relative to a full dump: on
  /// partitioned workloads each device exclusively owns ~1/N of the data.
  Checkpoint checkpoint();
  /// Recovers from the failure of `device` (after sim::Machine::failDevice):
  /// lost exclusive ranges are restored from `cp` onto a surviving device
  /// (ranges with a live replica are adopted without a copy), the failed
  /// device's sharer bits are dropped, and every kernel is repartitioned to
  /// `next` (which must give `device` weight 0).  Throws Error when a lost
  /// range is covered by neither a replica nor the checkpoint.
  void recoverDevice(int device, const Checkpoint& cp, const Partitioning& next);

  /// Test hook for the free() bookkeeping: retained freed-buffer records.
  std::size_t freedRecordCount() const { return freedBuffers_.size(); }

 private:
  /// A cached launch plan: the materialized output of every enumerator of a
  /// kernel (indexed like KernelEntry::enumerators) for one EnumerationKey.
  using LaunchPlan = std::vector<codegen::MaterializedRanges>;

  /// One inspection result: exact per-device element footprints of a
  /// kernel's may-access reads, plus everything the walk depended on (the
  /// cache key).  Entries go stale when any recorded buffer's
  /// Tracker::contentVersion() moves — update() bumps it, addSharer() does
  /// not, so replication-pattern differences between the resolution engines
  /// cannot thrash the cache.
  struct InspectedFootprints {
    ir::LaunchConfig cfg;
    std::vector<i64> scalars;
    std::vector<const VirtualBuffer*> buffers;  // array args, in arg order
    std::vector<u64> contentVersions;           // parallel to `buffers`
    std::vector<i64> weights;                   // partitioning when inspected
    /// ranges[i][gpu] -> coalesced half-open element ranges read by `gpu`
    /// through inspectable arg mayReadArgs[i].
    std::vector<std::vector<std::vector<std::pair<i64, i64>>>> ranges;
  };

  struct KernelEntry {
    const analysis::KernelModel* model = nullptr;
    ir::KernelPtr partitioned;
    std::vector<codegen::Enumerator> enumerators;
    /// Current weighted grid partitioning (even(numGpus) at construction).
    Partitioning partitioning;
    /// Signature of the most recent launch, recorded by executeLaunch():
    /// repartition() re-evaluates the kernel's concrete write footprints
    /// under it to compute the old/new difference.  Cleared when a referenced
    /// buffer is freed.
    bool hasLastLaunch = false;
    ir::LaunchConfig lastCfg;
    std::vector<VirtualBuffer*> lastBuffers;
    std::vector<i64> lastScalars;
    /// Enumeration cache (one plan per launch configuration seen, FIFO
    /// bounded by RuntimeConfig::enumerationCachePlansPerKernel).  Plans are
    /// held by shared_ptr so the parallel engine can keep using an acquired
    /// plan after a later insertion of the same pass evicts it.
    std::unordered_map<codegen::EnumerationKey, std::shared_ptr<const LaunchPlan>,
                       codegen::EnumerationKeyHash>
        planCache;
    std::deque<codegen::EnumerationKey> planCacheOrder;
    /// Pipelined-mode prediction of the cache's future contents: submission
    /// replays the FIFO admission/eviction logic ahead of the commits that
    /// will actually perform it, so the submitting thread pre-materializes
    /// exactly the plans the committing launch would miss.  Guarded by
    /// submitMutex_ (prediction must advance in epoch order).
    std::unordered_set<codegen::EnumerationKey, codegen::EnumerationKeyHash>
        predictedPresent;
    std::deque<codegen::EnumerationKey> predictedOrder;
    /// May-access tier metadata, precomputed at construction.
    /// Args whose writes left the static model (ArrayModel::writeMayAccess):
    /// executeLaunch() observes their stores like instrumented writes, but
    /// overlaps between partitions are legal (merged in ascending device
    /// order, which reproduces the sequential interpreter's last-write-wins).
    std::vector<std::size_t> mayWriteArgs;
    /// May-written args the kernel also reads (read-modify-write): every
    /// partition must see its predecessors' merged writes, so the runtime
    /// gathers the whole buffer to each device right before its partition.
    std::vector<std::size_t> rmwMayArgs;
    /// May-read args eligible for inspection (readMayAccess and not
    /// may-written; RMW args are covered wholly by the pre-partition
    /// gather).  Index i here owns InspectedFootprints::ranges[i].
    std::vector<std::size_t> mayReadArgs;
    /// Per enumerators[] entry: it realizes the whole-extent read of an
    /// inspectable arg, so both sync engines skip it while the inspector is
    /// active (the footprint sync replaces it).
    std::vector<char> enumIsMayRead;
    /// Inspection cache, FIFO bounded by
    /// RuntimeConfig::inspectionCacheEntriesPerKernel.  Engine thread only.
    std::deque<std::shared_ptr<const InspectedFootprints>> inspections;
  };

  /// One GPU partition's launch plan for the current pass: the materialized
  /// enumerator output (owned by the cache, or pass-local when the cache is
  /// off) plus whether it was replayed (cache hit → cheaper modeled cost).
  struct PlanAcquisition {
    int gpu = 0;
    codegen::PartitionTuple tuple;
    std::shared_ptr<const LaunchPlan> plan;
    bool cached = false;
  };

  /// RAII wall-clock window accumulating into stats_.resolutionWallSeconds
  /// (under statsMutex_: pipelined mode opens windows on the submitting
  /// thread — pre-materialization — concurrently with the engine thread's
  /// launch phases).  Windows may overlap across threads but must not nest
  /// on one thread for the same runtime: that would double-count the same
  /// real time, and is asserted against via a thread-local active-window
  /// marker (the fix for the old per-runtime flag, which would have fired
  /// spuriously on legitimate cross-thread overlap).
  class ResolutionTimer;

  /// A validated launch waiting in the pipeline: everything executeLaunch()
  /// needs, plus the plans pre-materialized at submission.
  struct PendingLaunch {
    i64 epoch = -1;
    TenantId tenant = 0;
    KernelEntry* ke = nullptr;
    ir::LaunchConfig cfg;
    std::vector<LaunchArg> args;
    std::vector<i64> scalars;
    /// Plans materialized on the submitting thread, keyed by enumeration
    /// key.  With the cache on these are the *predicted* misses of the
    /// cache-FIFO replay; with it off, every non-empty partition's plan.
    /// Consulted by resolvePlan()/acquirePlans() during commit; a mispredict
    /// merely falls back to materializing there (correctness never depends
    /// on the prediction).
    std::vector<std::pair<codegen::EnumerationKey,
                          std::shared_ptr<const LaunchPlan>>>
        prebuilt;
  };

  /// Pipeline machinery (queue, epoch clock, engine thread); null when
  /// pipelineDepth == 0.  Defined in runtime.cpp.
  struct Pipeline;

  const KernelEntry& entry(const std::string& name) const;
  KernelEntry& entry(const std::string& name);
  /// partitionFor under an explicit weighted partitioning (partitionFor
  /// itself delegates here with the kernel's current weights).
  static ir::GridPartition partitionWith(const analysis::KernelModel& model,
                                         const ir::Dim3& grid, int gpu,
                                         const Partitioning& part);
  /// Validates arity/range/total of `next` against this runtime's devices
  /// (failed devices must have weight 0); throws Error otherwise.
  void validatePartitioning(const Partitioning& next) const;
  /// The footprint-difference migration of one kernel's transition
  /// prev -> next (repartition.cpp).  Caller has drained and validated.
  RepartitionResult migrateKernel(KernelEntry& ke, const Partitioning& prev,
                                  const Partitioning& next);
  /// Returns the cached launch plan for one (kernel, partition) pair,
  /// materializing it on a miss; nullptr when the cache is disabled.
  /// `wasHit` reports whether the plan was replayed rather than built.
  const LaunchPlan* resolvePlan(KernelEntry& ke,
                                const codegen::PartitionTuple& tuple,
                                const ir::LaunchConfig& cfg,
                                std::span<const i64> scalars, bool& wasHit);
  void synchronizeReads(KernelEntry& ke, const ir::LaunchConfig& cfg,
                        std::span<const LaunchArg> args,
                        std::span<const i64> scalars);
  /// True when this launch should run the inspector–executor: the knob is
  /// on and the kernel has inspectable may-access reads.
  bool inspectorActiveFor(const KernelEntry& ke) const;
  /// Returns the (possibly cached) inspection of this launch: a host-side
  /// walk of the partitioned kernel over mirrors of the current buffer
  /// contents that records the exact per-device element footprint of every
  /// inspectable may-access read.  Functional mode only (the walk needs the
  /// buffer bytes).  Engine thread.
  std::shared_ptr<const InspectedFootprints> inspectFootprints(
      KernelEntry& ke, const ir::LaunchConfig& cfg,
      std::span<const LaunchArg> args, std::span<const i64> scalars);
  /// Read synchronization for the inspected footprints, replacing the
  /// skipped whole-extent enumerators with the same tracker-query /
  /// sharer-skip / transfer-plan / modeled-cost sequence as the regular
  /// paths (called identically by both engines, keeping them
  /// byte-identical).
  void synchronizeMayAccessReads(KernelEntry& ke,
                                 std::span<const LaunchArg> args,
                                 const InspectedFootprints& fp);
  /// The pre-partition gather for read-modify-write may-access args: before
  /// partition `gpu` launches, every byte of each rmwMayArgs buffer owned
  /// elsewhere is copied to `gpu` so the partition observes its
  /// predecessors' merged writes (sequential interpreter semantics).
  void gatherRmwMayArgs(KernelEntry& ke, std::span<const LaunchArg> args,
                        int gpu);
  /// Returns the per-launch plan for the read-sync phase when
  /// transferScheduling is on, or nullptr (paper behaviour: copies are
  /// issued inline by the tracker-query callback).
  std::unique_ptr<TransferPlan> makeTransferPlan() const;
  /// Schedules + issues a collected plan and folds its stats into stats_
  /// (peerCopies counts the post-merge copies actually issued).
  void issueTransferPlan(TransferPlan& plan);
  /// Dataflow-planning hook: issues the compiled flow edges of cycle
  /// position `step` right after the producing launch.  Every planned byte
  /// range is clipped against the live tracker (only segments the predicted
  /// source still owns, and the destination does not already share, are
  /// copied), issued with per-source floors at the producing kernels'
  /// modeled completions, then recorded as shared replicas so the
  /// consumer's reactive resolution skips them.
  void issuePrefetches(const PendingLaunch& pl, std::size_t step,
                       std::vector<double> kernelDone);
  /// Samples the FM-memoization and specialized-program cache counters into
  /// the stats meta-fields (end of every launch; engine thread).
  void sampleCacheCounters();
  void updateTrackers(KernelEntry& ke, const ir::LaunchConfig& cfg,
                      std::span<const LaunchArg> args,
                      std::span<const i64> scalars);

  // -- parallel resolution engine (RuntimeConfig::resolutionThreads > 0) -----
  /// Phase 1: acquires one launch plan per non-empty GPU partition,
  /// materializing cache misses concurrently on the pool (pure work) and
  /// committing them to the plan cache single-producer on this thread with
  /// the exact hit/miss/eviction accounting of the serial resolvePlan path.
  std::vector<PlanAcquisition> acquirePlans(KernelEntry& ke,
                                            const ir::LaunchConfig& cfg,
                                            std::span<const i64> scalars);
  /// Phases 2+3 for the read sets: per-buffer sharded tracker queries with
  /// task-local sharer scratch, then a deterministic ordered commit of the
  /// collected transfer decisions into the machine model.
  void synchronizeReadsParallel(KernelEntry& ke, const ir::LaunchConfig& cfg,
                                std::span<const LaunchArg> args,
                                std::span<const i64> scalars);
  /// Phases 2+3 for the write sets: per-buffer sharded tracker updates, then
  /// the ordered commit of the modeled bookkeeping costs.
  void updateTrackersParallel(KernelEntry& ke, const ir::LaunchConfig& cfg,
                              std::span<const LaunchArg> args,
                              std::span<const i64> scalars);
  /// Runs `n` tasks on the pool and accounts them in RuntimeStats; `label`
  /// names the enclosing trace span (must be a string literal).
  void runResolutionTasks(const char* label, i64 n,
                          const std::function<void(i64)>& body);

  // -- pipelined launch engine (RuntimeConfig::pipelineDepth > 0) ------------
  bool pipelined() const { return pipeline_ != nullptr; }
  /// Validates a launch request and captures everything executeLaunch()
  /// needs (the front half of the old launch(), minus any machine/tracker
  /// state).  Runs on the submitting thread.
  PendingLaunch prepareLaunch(const std::string& kernelName,
                              const ir::Dim3& grid, const ir::Dim3& block,
                              std::span<const LaunchArg> args, TenantId tenant);
  /// Pure plan pre-materialization on the submitting thread.  Caller holds
  /// submitMutex_, which makes the cache-FIFO prediction advance in epoch
  /// order.
  void prebuildPlans(PendingLaunch& pl);
  /// The Fig. 4 flow against a prepared launch: sync reads, launch the
  /// partitions, update trackers.  Engine thread (or the calling thread in
  /// serial mode) — all machine/tracker/stats state is touched here only.
  void executeLaunch(PendingLaunch& pl);
  /// executeLaunch() plus the per-tenant stats diff accounting.
  void commitLaunch(PendingLaunch& pl);
  /// The prebuilt plan for `key` of the launch currently committing, if the
  /// submitting thread materialized one.
  std::shared_ptr<const LaunchPlan> findPrebuilt(
      const codegen::EnumerationKey& key) const;
  std::optional<i64> submitImpl(const std::string& kernelName,
                                const ir::Dim3& grid, const ir::Dim3& block,
                                std::span<const LaunchArg> args,
                                TenantId tenant, bool blocking);
  /// Engine-thread main loop: pop, commit in epoch order, retire.
  void pipelineLoop();
  /// Rethrows (once) the first failure captured on the engine thread.
  void rethrowPipelineError();
  RuntimeStats statsSnapshot() const;

  RuntimeConfig config_;
  analysis::ApplicationModel model_;
  std::unique_ptr<sim::Machine> machine_;
  std::unique_ptr<support::ThreadPool> pool_;  // null in serial paper mode
  std::map<std::string, KernelEntry> kernels_;
  std::vector<std::unique_ptr<VirtualBuffer>> buffers_;
  /// Addresses of buffers released through free(): distinguishes a double
  /// free from a free of a pointer this runtime never allocated.
  std::vector<const VirtualBuffer*> freedBuffers_;
  RuntimeStats stats_;
  /// Cross-launch dataflow planners, one per tenant (empty unless
  /// dataflowPlanning is on and dependency resolution + transfers are
  /// enabled).  Buffers are tenant-owned, so cross-tenant flow edges cannot
  /// exist; per-tenant sequences keep each tenant's cycle detection — and
  /// therefore its stats slice — independent of how other tenants' launches
  /// interleave with it.  Touched only on the launch-commit path, which is
  /// serial by construction.
  std::vector<std::unique_ptr<DataflowPlanner>> planners_;
  /// FM-memoization counter baseline at construction: the memo table is
  /// process-wide, so per-runtime telemetry is the counter delta.
  i64 fmBaseHits_ = 0;
  i64 fmBaseMisses_ = 0;
  i64 fmBaseEvictions_ = 0;
  /// Guards the cross-thread RuntimeStats fields: submit threads accumulate
  /// resolutionWallSeconds while the engine thread owns everything else, and
  /// statsSnapshot() copies the whole struct under this lock.
  mutable std::mutex statsMutex_;

  // -- pipelined launch engine state -----------------------------------------
  std::unique_ptr<Pipeline> pipeline_;  // null when pipelineDepth == 0
  /// Serializes epoch issue + enqueue (and the cache-FIFO prediction), so
  /// concurrent submitters reach the queue in epoch order.
  std::mutex submitMutex_;
  /// Guards tenants_ (admission counters + per-tenant stats).
  mutable std::mutex tenantMutex_;
  std::condition_variable admissionCv_;
  struct TenantState {
    i64 inFlight = 0;  // submitted, not yet committed
    TenantStats stats;
  };
  std::vector<TenantState> tenants_;
  /// The launch currently committing (engine thread only); resolvePlan /
  /// acquirePlans consult its prebuilt plans through findPrebuilt().
  const PendingLaunch* activePending_ = nullptr;
  std::function<void(i64, TenantId)> commitObserver_;
  i64 serialNextTicket_ = 0;  // submit() tickets in serial mode
};

}  // namespace polypart::rt
