#include "rt/runtime.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <thread>
#include <tuple>
#include <unordered_map>
#include <unordered_set>

#include "pset/fm_internal.h"
#include "rt/checkpoint.h"
#include "rt/dataflow_plan.h"
#include "rt/transfer_plan.h"
#include "support/env.h"
#include "support/error.h"
#include "support/pipeline.h"
#include "support/thread_pool.h"
#include "support/trace.h"

namespace polypart::rt {

using analysis::ArrayModel;
using analysis::KernelModel;
using analysis::PartitionStrategy;
using codegen::Enumerator;
using codegen::PartitionTuple;
using ir::Dim3;
using ir::GridPartition;
using ir::LaunchConfig;

codegen::EnumTier defaultEnumeratorTier() {
  std::optional<std::string> v = env::value("POLYPART_ENUMERATOR_TIER");
  if (!v) return codegen::EnumTier::Interpret;
  try {
    return codegen::enumTierFromString(*v);
  } catch (const Error&) {
    throw Error("invalid POLYPART_ENUMERATOR_TIER value '" + *v +
                "' (accepted: interpret, bytecode, specialized)");
  }
}

bool defaultDataflowPlanning() {
  return env::flag("POLYPART_DATAFLOW_PLANNING", false);
}

bool defaultAllowRepartitioning() {
  return env::flag("POLYPART_ALLOW_REPARTITIONING", false);
}

bool defaultInspectorExecutor() {
  return env::flag("POLYPART_INSPECTOR_EXECUTOR", false);
}

namespace {

/// Storage element size: buffers hold 8-byte elements (ir::Type::I64/F64).
constexpr i64 kElemBytes = 8;

double wallSeconds(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - since)
      .count();
}

/// Field-wise difference accumulation for the per-tenant stats slices:
/// into += after - before.  Every RuntimeStats field must appear here.
void addStatsDiff(RuntimeStats& into, const RuntimeStats& before,
                  const RuntimeStats& after) {
  into.launches += after.launches - before.launches;
  into.rangesResolved += after.rangesResolved - before.rangesResolved;
  into.logicalRowsResolved +=
      after.logicalRowsResolved - before.logicalRowsResolved;
  into.trackerSegmentsVisited +=
      after.trackerSegmentsVisited - before.trackerSegmentsVisited;
  into.peerCopies += after.peerCopies - before.peerCopies;
  into.sharedCopyHits += after.sharedCopyHits - before.sharedCopyHits;
  into.enumCacheHits += after.enumCacheHits - before.enumCacheHits;
  into.enumCacheMisses += after.enumCacheMisses - before.enumCacheMisses;
  into.enumCacheEvictions +=
      after.enumCacheEvictions - before.enumCacheEvictions;
  into.transfersMerged += after.transfersMerged - before.transfersMerged;
  into.broadcastChains += after.broadcastChains - before.broadcastChains;
  into.bytesSavedByDedup += after.bytesSavedByDedup - before.bytesSavedByDedup;
  into.planActivations += after.planActivations - before.planActivations;
  into.planDivergences += after.planDivergences - before.planDivergences;
  into.plannedLaunches += after.plannedLaunches - before.plannedLaunches;
  into.prefetchCopies += after.prefetchCopies - before.prefetchCopies;
  into.bytesPrefetched += after.bytesPrefetched - before.bytesPrefetched;
  into.bytesElided += after.bytesElided - before.bytesElided;
  into.prefetchHits += after.prefetchHits - before.prefetchHits;
  into.repartitions += after.repartitions - before.repartitions;
  into.repartitionCopies += after.repartitionCopies - before.repartitionCopies;
  into.bytesRepartitioned +=
      after.bytesRepartitioned - before.bytesRepartitioned;
  into.bytesRepartitionFootprint +=
      after.bytesRepartitionFootprint - before.bytesRepartitionFootprint;
  into.checkpoints += after.checkpoints - before.checkpoints;
  into.bytesCheckpointed += after.bytesCheckpointed - before.bytesCheckpointed;
  into.recoveries += after.recoveries - before.recoveries;
  into.restoreCopies += after.restoreCopies - before.restoreCopies;
  into.bytesRestored += after.bytesRestored - before.bytesRestored;
  into.bytesAdopted += after.bytesAdopted - before.bytesAdopted;
  into.mayAccessLaunches += after.mayAccessLaunches - before.mayAccessLaunches;
  into.inspectorRuns += after.inspectorRuns - before.inspectorRuns;
  into.inspectorCacheHits += after.inspectorCacheHits - before.inspectorCacheHits;
  into.inspectorCacheMisses +=
      after.inspectorCacheMisses - before.inspectorCacheMisses;
  into.inspectorCacheInvalidations +=
      after.inspectorCacheInvalidations - before.inspectorCacheInvalidations;
  into.inspectedElements += after.inspectedElements - before.inspectedElements;
  into.resolutionTasks += after.resolutionTasks - before.resolutionTasks;
  into.resolutionWallSeconds +=
      after.resolutionWallSeconds - before.resolutionWallSeconds;
  into.parallelWallSeconds +=
      after.parallelWallSeconds - before.parallelWallSeconds;
  into.fmMemoHits += after.fmMemoHits - before.fmMemoHits;
  into.fmMemoMisses += after.fmMemoMisses - before.fmMemoMisses;
  into.fmMemoEvictions += after.fmMemoEvictions - before.fmMemoEvictions;
  into.specProgramHits += after.specProgramHits - before.specProgramHits;
  into.specProgramMisses += after.specProgramMisses - before.specProgramMisses;
  into.specProgramEvictions +=
      after.specProgramEvictions - before.specProgramEvictions;
}

}  // namespace

class Runtime::ResolutionTimer {
 public:
  explicit ResolutionTimer(Runtime& rt)
      : rt_(rt), prev_(activeWindow()), t0_(std::chrono::steady_clock::now()) {
    // Windows may overlap across threads (a submitter pre-materializing
    // launch N+1 while the engine thread resolves launch N), but must not
    // nest on one thread for the same runtime — that would count the same
    // real time twice.  The marker is thread-local, so cross-thread overlap
    // never trips it; the old per-runtime flag would have.
    PP_ASSERT_MSG(prev_ != &rt_, "overlapping resolution wall-time windows");
    activeWindow() = &rt_;
  }
  ~ResolutionTimer() {
    activeWindow() = prev_;
    const double secs = wallSeconds(t0_);
    std::lock_guard<std::mutex> lock(rt_.statsMutex_);
    rt_.stats_.resolutionWallSeconds += secs;
  }

  ResolutionTimer(const ResolutionTimer&) = delete;
  ResolutionTimer& operator=(const ResolutionTimer&) = delete;

  /// True when the calling thread has an open window for `rt`.
  static bool openOnThisThread(const Runtime& rt) {
    return activeWindow() == &rt;
  }

 private:
  static const Runtime*& activeWindow() {
    thread_local const Runtime* window = nullptr;
    return window;
  }

  Runtime& rt_;
  const Runtime* prev_ = nullptr;
  std::chrono::steady_clock::time_point t0_;
};

/// Pipeline machinery: the bounded submission queue, the epoch clock, the
/// engine thread, and the failure latch (first commit-side exception; held
/// until a wait()/drain() rethrows it).
struct Runtime::Pipeline {
  explicit Pipeline(int depth)
      : queue(static_cast<std::size_t>(depth)) {}

  support::BoundedQueue<PendingLaunch> queue;
  support::EpochClock epochs;
  std::thread engine;
  std::mutex errorMutex;
  std::exception_ptr error;
  std::atomic<bool> failed{false};
};

Runtime::Runtime(RuntimeConfig config, analysis::ApplicationModel model,
                 const ir::Module& kernels)
    : config_(config), model_(std::move(model)) {
  // FM-memoization telemetry baseline: taken before any enumerator is built
  // so this runtime's construction-time projections count toward its sample.
  const pset::FmMemoCounters fmBase = pset::fmMemoCounters();
  fmBaseHits_ = fmBase.hits;
  fmBaseMisses_ = fmBase.misses;
  fmBaseEvictions_ = fmBase.evictions;
  config_.machine.numDevices = config_.numGpus;
  machine_ = std::make_unique<sim::Machine>(config_.machine, config_.mode);
  if (config_.dataflowPlanning && config_.enableDependencyResolution &&
      config_.enableTransfers) {
    planners_.resize(static_cast<std::size_t>(std::max(1, config_.numTenants)));
    for (auto& p : planners_)
      p = std::make_unique<DataflowPlanner>(
          config_.numGpus, kElemBytes,
          [this](const KernelModel& m, const Dim3& g, int gpu) {
            return partitionFor(m, g, gpu);
          });
  }
  if (config_.resolutionThreads > 0)
    pool_ = std::make_unique<support::ThreadPool>(config_.resolutionThreads);
  machine_->setTracer(config_.tracer);
  if (pool_) pool_->setTracer(config_.tracer);

  // Per-kernel partitioning (Section 7) and enumerator generation
  // (Section 6) are independent across kernels; with a pool they build
  // concurrently into pre-sized slots and the name map is populated
  // afterwards in model order.
  const i64 numKernels = static_cast<i64>(model_.kernels.size());
  std::vector<KernelEntry> entries(static_cast<std::size_t>(numKernels));
  auto buildEntry = [&](i64 i) {
    const KernelModel& km = model_.kernels[static_cast<std::size_t>(i)];
    ir::KernelPtr k = kernels.find(km.kernel);
    PP_ASSERT_MSG(k != nullptr, "model references a kernel missing from the module");
    KernelEntry& ke = entries[static_cast<std::size_t>(i)];
    ke.model = &km;
    ke.partitioned = ir::partitionKernel(*k);
    ke.partitioning = Partitioning::even(config_.numGpus);
    ke.enumerators = codegen::buildEnumerators(km);
    for (Enumerator& e : ke.enumerators) {
      e.coalesce = config_.coalesceEnumerators;
      e.tier = config_.enumeratorTier;
    }
    // May-access tier metadata.  An arg is either instrumented or
    // may-written, never both (the analysis picks instrumented first), and
    // RMW may-args are excluded from the inspectable set: the pre-partition
    // gather already moves their whole extent.
    for (const ArrayModel& a : km.arrays) {
      if (a.writeMayAccess) {
        ke.mayWriteArgs.push_back(a.argIndex);
        if (a.hasReads()) ke.rmwMayArgs.push_back(a.argIndex);
      } else if (a.readMayAccess) {
        ke.mayReadArgs.push_back(a.argIndex);
      }
    }
    ke.enumIsMayRead.assign(ke.enumerators.size(), 0);
    for (std::size_t ei = 0; ei < ke.enumerators.size(); ++ei) {
      const Enumerator& e = ke.enumerators[ei];
      if (e.isWrite()) continue;
      if (std::find(ke.mayReadArgs.begin(), ke.mayReadArgs.end(),
                    e.argIndex()) != ke.mayReadArgs.end())
        ke.enumIsMayRead[ei] = 1;
    }
  };
  if (pool_) {
    pool_->parallelFor(numKernels, buildEntry);
  } else {
    for (i64 i = 0; i < numKernels; ++i) buildEntry(i);
  }
  for (std::size_t i = 0; i < entries.size(); ++i)
    kernels_.emplace(model_.kernels[i].kernel, std::move(entries[i]));

  // Tenancy + pipelined engine.
  PP_ASSERT_MSG(config_.numTenants >= 1, "numTenants must be >= 1");
  PP_ASSERT_MSG(config_.pipelineDepth >= 0, "pipelineDepth must be >= 0");
  PP_ASSERT_MSG(config_.maxInFlightPerTenant >= 0,
                "maxInFlightPerTenant must be >= 0");
  tenants_.resize(static_cast<std::size_t>(config_.numTenants));
  if (config_.tracer != nullptr &&
      (config_.numTenants > 1 || config_.pipelineDepth > 0))
    for (int t = 0; t < config_.numTenants; ++t)
      config_.tracer->nameTenantTrack(t, "tenant " + std::to_string(t));
  if (config_.pipelineDepth > 0) {
    pipeline_ = std::make_unique<Pipeline>(config_.pipelineDepth);
    pipeline_->engine = std::thread([this] { pipelineLoop(); });
  }
}

Runtime::~Runtime() {
  if (pipeline_ != nullptr) {
    // Stop accepting work and let the engine drain what was submitted; a
    // pending failure is dropped here (destruction is not a place to throw).
    pipeline_->queue.close();
    if (pipeline_->engine.joinable()) pipeline_->engine.join();
  }
}

const Runtime::KernelEntry& Runtime::entry(const std::string& name) const {
  auto it = kernels_.find(name);
  PP_ASSERT_MSG(it != kernels_.end(), "launch of unknown kernel");
  return it->second;
}

Runtime::KernelEntry& Runtime::entry(const std::string& name) {
  auto it = kernels_.find(name);
  PP_ASSERT_MSG(it != kernels_.end(), "launch of unknown kernel");
  return it->second;
}

std::shared_ptr<const Runtime::LaunchPlan> Runtime::findPrebuilt(
    const codegen::EnumerationKey& key) const {
  if (activePending_ == nullptr) return nullptr;
  for (const auto& [k, plan] : activePending_->prebuilt)
    if (k == key) return plan;
  return nullptr;
}

const Runtime::LaunchPlan* Runtime::resolvePlan(KernelEntry& ke,
                                                const PartitionTuple& tuple,
                                                const LaunchConfig& cfg,
                                                std::span<const i64> scalars,
                                                bool& wasHit) {
  if (!config_.enableEnumerationCache) {
    // Pipelined mode, cache off: replay the plan the submitting thread
    // pre-materialized.  Its ranges/info are exactly what the live
    // enumerate() below it would produce, and `wasHit` stays false, so
    // stats and modeled costs match the un-pipelined path byte for byte.
    if (activePending_ != nullptr && !activePending_->prebuilt.empty()) {
      wasHit = false;
      if (std::shared_ptr<const LaunchPlan> pre =
              findPrebuilt(codegen::EnumerationKey::of(tuple, cfg, scalars)))
        return pre.get();  // kept alive by the PendingLaunch until committed
    }
    return nullptr;
  }
  codegen::EnumerationKey key = codegen::EnumerationKey::of(tuple, cfg, scalars);
  auto it = ke.planCache.find(key);
  if (it != ke.planCache.end()) {
    wasHit = true;
    ++stats_.enumCacheHits;
    trace::instant(config_.tracer, "cache", "plan-hit");
    trace::counter(config_.tracer, "cache", "plan-cache-hits",
                   stats_.enumCacheHits);
    return it->second.get();
  }
  wasHit = false;
  ++stats_.enumCacheMisses;
  trace::instant(config_.tracer, "cache", "plan-miss");
  trace::counter(config_.tracer, "cache", "plan-cache-misses",
                 stats_.enumCacheMisses);
  const i64 cap = config_.enumerationCachePlansPerKernel;
  if (cap > 0 && static_cast<i64>(ke.planCache.size()) >= cap) {
    ke.planCache.erase(ke.planCacheOrder.front());
    ke.planCacheOrder.pop_front();
    ++stats_.enumCacheEvictions;
    trace::instant(config_.tracer, "cache", "plan-evict");
    trace::counter(config_.tracer, "cache", "plan-cache-evictions",
                   stats_.enumCacheEvictions);
  }
  // A plan pre-materialized at submission satisfies the miss without
  // enumerating here; a mispredict (or serial mode) falls back to building.
  std::shared_ptr<const LaunchPlan> plan = findPrebuilt(key);
  if (plan == nullptr) {
    auto fresh = std::make_shared<LaunchPlan>();
    fresh->reserve(ke.enumerators.size());
    for (const Enumerator& e : ke.enumerators)
      fresh->push_back(e.materialize(tuple, cfg, scalars));
    plan = std::move(fresh);
  }
  auto [pos, inserted] = ke.planCache.emplace(std::move(key), std::move(plan));
  PP_ASSERT(inserted);
  ke.planCacheOrder.push_back(pos->first);
  return pos->second.get();
}

const ir::Kernel& Runtime::partitionedKernel(const std::string& name) const {
  return *entry(name).partitioned;
}

VirtualBuffer* Runtime::malloc(i64 bytes, TenantId tenant) {
  PP_ASSERT(bytes >= 0);
  PP_ASSERT_MSG(tenant >= 0 && tenant < config_.numTenants,
                "malloc for unknown tenant");
  drain();  // machine allocations keep program order vs in-flight launches
  std::vector<sim::DevBuffer> instances;
  instances.reserve(static_cast<std::size_t>(config_.numGpus));
  for (int d = 0; d < config_.numGpus; ++d)
    instances.push_back(machine_->deviceFailed(d) ? sim::DevBuffer{}
                                                  : machine_->alloc(d, bytes));
  buffers_.push_back(std::unique_ptr<VirtualBuffer>(
      new VirtualBuffer(bytes, std::move(instances), tenant)));
  VirtualBuffer* vb = buffers_.back().get();
  // The heap may hand back the address of a previously freed VirtualBuffer;
  // a stale freed record for it would misdiagnose a later bad free of this
  // live buffer as a double free of the old one.
  freedBuffers_.erase(
      std::remove(freedBuffers_.begin(), freedBuffers_.end(), vb),
      freedBuffers_.end());
  return vb;
}

void Runtime::free(VirtualBuffer* buf) {
  PP_ASSERT_MSG(buf != nullptr, "free of null virtual buffer");
  drain();  // in-flight launches may still reference the buffer
  for (auto it = buffers_.begin(); it != buffers_.end(); ++it) {
    if (it->get() == buf) {
      // Recorded launch signatures hold buffer identities; dropping the
      // buffer invalidates them (a reused address must not match a stale
      // plan).  Only the owning tenant's planner can reference it — other
      // tenants' plans stay live, so their stats slices are unaffected by
      // this tenant's frees.  Read the tenant only now that the pointer is
      // known live (the double-free diagnosis below must not touch *buf).
      if (!planners_.empty())
        planners_[static_cast<std::size_t>(buf->tenant())]->reset();
      for (auto& [name, ke] : kernels_) {
        // Cached inspections key on buffer identity + content version; a
        // reallocation can reuse both, so footprints that referenced the
        // freed buffer must not survive it.
        std::erase_if(ke.inspections,
                      [&](const std::shared_ptr<const InspectedFootprints>& f) {
                        return std::find(f->buffers.begin(), f->buffers.end(),
                                         buf) != f->buffers.end();
                      });
        if (!ke.hasLastLaunch) continue;
        if (std::find(ke.lastBuffers.begin(), ke.lastBuffers.end(), buf) !=
            ke.lastBuffers.end())
          ke.hasLastLaunch = false;
      }
      for (const sim::DevBuffer& b : buf->instances_)
        if (b.valid()) machine_->free(b);
      freedBuffers_.push_back(buf);
      // Bounded diagnostic history: drop the oldest records beyond the cap
      // (the diagnosis below degrades gracefully for dropped entries — a
      // stale double free reports as a foreign-pointer free).
      constexpr std::size_t kMaxFreedRecords = 256;
      if (freedBuffers_.size() > kMaxFreedRecords)
        freedBuffers_.erase(freedBuffers_.begin());
      buffers_.erase(it);
      return;
    }
  }
  // Not live: diagnose which contract was broken before dying.
  PP_ASSERT_MSG(
      std::find(freedBuffers_.begin(), freedBuffers_.end(), buf) ==
          freedBuffers_.end(),
      "double free of virtual buffer");
  PP_ASSERT_MSG(false, "free of a pointer this runtime never allocated");
}

void Runtime::memcpy(void* dst, const void* src, i64 bytes, MemcpyKind kind) {
  PP_ASSERT(bytes >= 0);
  // Memcpy reads/writes tracker state and the machine; pipelined launches
  // ahead of it must land first so every machine operation keeps program
  // order (that order is what makes depth-0 and depth-N byte-identical).
  drain();
  trace::Span span(config_.tracer, "runtime", "memcpy", {}, {{"bytes", bytes}});
  switch (kind) {
    case MemcpyKind::HostToHost:
      machine_->chargeApiCall();
      if (machine_->mode() == sim::ExecutionMode::Functional && dst && src)
        std::memcpy(dst, src, static_cast<std::size_t>(bytes));
      return;

    case MemcpyKind::HostToDevice: {
      // 1:n movement (Section 8.2): distribute in a predefined pattern; any
      // mismatch with the kernels' read patterns is corrected by the
      // dependency resolution before the next launch.
      auto* vb = static_cast<VirtualBuffer*>(dst);
      PP_ASSERT(bytes <= vb->bytes_);
      // Kernels still writing this buffer must drain before the scatter
      // overwrites the device instances; the post-copy barrier alone would
      // let the copies race with in-flight kernels in the timing model.
      machine_->synchronizeAll();
      // Scatter only across live devices (identical arithmetic to scattering
      // across all of them while none has failed).
      std::vector<int> targets;
      targets.reserve(static_cast<std::size_t>(config_.numGpus));
      for (int d = 0; d < config_.numGpus; ++d)
        if (!machine_->deviceFailed(d)) targets.push_back(d);
      PP_ASSERT_MSG(!targets.empty(), "host-to-device copy with no live device");
      const int g = static_cast<int>(targets.size());
      if (config_.h2dDistribution == H2DDistribution::Linear) {
        const i64 elems = bytes / kElemBytes;
        for (int i = 0; i < g; ++i) {
          const int d = targets[static_cast<std::size_t>(i)];
          i64 lo = elems * i / g * kElemBytes;
          i64 hi = i + 1 == g ? bytes : elems * (i + 1) / g * kElemBytes;
          if (lo >= hi) continue;
          // src is null in TimingOnly mode; don't offset the null pointer.
          machine_->copyHostToDevice(vb->instances_[static_cast<std::size_t>(d)], lo,
                                     src ? static_cast<const char*>(src) + lo : nullptr,
                                     hi - lo);
          trace::instant(config_.tracer, "transfer", "h2d-copy",
                         {{"dst", d}, {"bytes", hi - lo}});
          vb->tracker_.update(lo, hi, d);
        }
      } else {
        // Round-robin pages (ablation): fragments ownership across GPUs.
        const i64 page = config_.h2dPageBytes;
        i64 off = 0;
        int i = 0;
        while (off < bytes) {
          const int d = targets[static_cast<std::size_t>(i)];
          i64 len = std::min(page, bytes - off);
          machine_->copyHostToDevice(vb->instances_[static_cast<std::size_t>(d)], off,
                                     src ? static_cast<const char*>(src) + off : nullptr,
                                     len);
          trace::instant(config_.tracer, "transfer", "h2d-copy",
                         {{"dst", d}, {"bytes", len}});
          vb->tracker_.update(off, off + len, d);
          off += len;
          i = (i + 1) % g;
        }
      }
      machine_->synchronizeAll();
      return;
    }

    case MemcpyKind::DeviceToHost: {
      // n:1 movement: gather each segment from the GPU the tracker records
      // as owning its most recent copy (Section 8.2).
      auto* vb = static_cast<VirtualBuffer*>(const_cast<void*>(src));
      PP_ASSERT(bytes <= vb->bytes_);
      machine_->synchronizeAll();  // kernels producing the data must finish
      vb->tracker_.query(0, bytes, [&](i64 b, i64 e, Owner owner) {
        if (owner < 0) return;  // never written: leave host bytes untouched
        machine_->copyDeviceToHost(
            dst ? static_cast<char*>(dst) + b : nullptr,
            vb->instances_[static_cast<std::size_t>(owner)], b, e - b);
        trace::instant(config_.tracer, "transfer", "d2h-copy",
                       {{"src", owner}, {"bytes", e - b}});
      });
      machine_->synchronizeAll();
      return;
    }

    case MemcpyKind::DeviceToDevice:
      // Duplicated device data has no equivalent in the partitioned model
      // (Section 8.2: "currently not supported").
      throw UnsupportedOperationError(
          "device-to-device memcpy is not supported by the partitioned runtime");
  }
}

void Runtime::deviceSynchronize() {
  drain();
  machine_->synchronizeAll();
}

double Runtime::elapsedSeconds() const { return machine_->completionTime(); }

GridPartition Runtime::partitionFor(const KernelModel& model, const Dim3& grid,
                                    int gpu) const {
  auto it = kernels_.find(model.kernel);
  if (it != kernels_.end())
    return partitionWith(model, grid, gpu, it->second.partitioning);
  // A model this runtime does not manage (test helper usage): even split.
  return partitionWith(model, grid, gpu, Partitioning::even(config_.numGpus));
}

GridPartition Runtime::partitionWith(const KernelModel& model, const Dim3& grid,
                                     int gpu, const Partitioning& part) {
  PP_ASSERT(gpu >= 0 && static_cast<std::size_t>(gpu) < part.weights.size());
  // Weighted generalization of the paper's even block split: device d covers
  // [extent * prefix(d) / total, extent * (prefix(d) + w(d)) / total).
  // All-equal weights reduce to the seed's extent*gpu/g arithmetic exactly.
  const i64 total = part.totalWeight();
  i64 pre = 0;
  for (int d = 0; d < gpu; ++d) pre += part.weights[static_cast<std::size_t>(d)];
  const i64 w = part.weights[static_cast<std::size_t>(gpu)];
  GridPartition p{{0, 0, 0}, grid};
  auto chunk = [&](i64 extent, i64& lo, i64& hi) {
    lo = extent * pre / total;
    hi = extent * (pre + w) / total;
  };
  switch (model.strategy) {
    case PartitionStrategy::SplitX: chunk(grid.x, p.lo.x, p.hi.x); break;
    case PartitionStrategy::SplitY: chunk(grid.y, p.lo.y, p.hi.y); break;
    case PartitionStrategy::SplitZ: chunk(grid.z, p.lo.z, p.hi.z); break;
  }
  return p;
}

std::unique_ptr<TransferPlan> Runtime::makeTransferPlan() const {
  if (!config_.transferScheduling || !config_.enableTransfers) return nullptr;
  TransferPlan::Options opts;
  opts.mergeRanges = true;
  // Chaining sources a copy from a replica instead of the owner, which is
  // exactly the reuse the sharer bitmap legitimizes; without it, replicas
  // are not tracked and the plan keeps every copy on its owner link.
  opts.chainBroadcasts = config_.trackSharedCopies;
  return std::make_unique<TransferPlan>(opts);
}

void Runtime::issueTransferPlan(TransferPlan& plan) {
  trace::Span span(config_.tracer, "runtime", "schedule-transfers", {},
                   {{"decisions", static_cast<i64>(plan.recordCount())}});
  // Pipelined commits attribute the plan's copies to the launch that issues
  // it; the serial paper path stays untagged (classic trace output).
  if (activePending_ != nullptr && activePending_->epoch >= 0)
    plan.setIssueTag(activePending_->epoch, activePending_->tenant);
  const TransferPlanStats& ps = plan.issue(*machine_, config_.tracer);
  stats_.peerCopies += ps.issued;
  stats_.transfersMerged += ps.merged;
  stats_.broadcastChains += ps.chains;
  stats_.bytesSavedByDedup += ps.bytesSaved;
}

void Runtime::issuePrefetches(const PendingLaunch& pl, std::size_t step,
                              std::vector<double> kernelDone) {
  const std::vector<FlowEdge>& edges =
      planners_[static_cast<std::size_t>(pl.tenant)]->edgesFor(step);
  if (edges.empty()) return;
  ResolutionTimer timer(*this);
  trace::Span span(config_.tracer, "runtime", "prefetch-flows", {},
                   {{"edges", static_cast<i64>(edges.size())}});

  TransferPlan::Options opts;
  opts.mergeRanges = true;
  opts.chainBroadcasts = false;  // prefetch replicas are sharer-tracked, but
                                 // flow edges are already per-destination
  TransferPlan plan(opts);
  plan.markPrefetch();
  plan.setSrcFloors(std::move(kernelDone));
  if (activePending_ != nullptr && activePending_->epoch >= 0)
    plan.setIssueTag(activePending_->epoch, activePending_->tenant);

  // Clip every planned range against the live tracker: only sub-segments
  // whose current owner is the predicted source — and that the destination
  // does not already share — are copied.  Any divergence from the plan
  // (host writes, mispredicted owners) silently degrades to the reactive
  // path, which is what keeps results byte-identical.
  struct Replica {
    VirtualBuffer* buf;
    i64 begin, end;
    int dst;
  };
  std::vector<Replica> replicas;
  for (const FlowEdge& edge : edges) {
    VirtualBuffer* vb = pl.args[edge.argIndex].buffer;
    if (vb == nullptr) continue;
    stats_.bytesElided += edge.elidedBytes;
    for (const PlannedTransfer& t : edge.transfers) {
      if (t.src < 0 || t.src >= config_.numGpus) continue;
      if (t.dst < 0 || t.dst >= config_.numGpus || t.dst >= 64) continue;
      for (const auto& [rb, re] : t.byteRanges) {
        vb->tracker_.querySharers(
            rb, re, [&](i64 b, i64 e, Owner owner, u64 sharers) {
              ++stats_.trackerSegmentsVisited;
              if (owner != t.src) return;  // plan/reality divergence: skip
              if ((sharers & (u64{1} << t.dst)) != 0) return;  // already there
              plan.add(vb, t.dst, t.src, b, e);
              replicas.push_back(Replica{vb, b, e, t.dst});
            });
      }
    }
  }

  i64 bytesQueued = 0;
  for (const Replica& r : replicas) bytesQueued += r.end - r.begin;
  if (!plan.empty()) {
    const TransferPlanStats& ps = plan.issue(*machine_, config_.tracer);
    stats_.prefetchCopies += ps.issued;
    stats_.bytesPrefetched += bytesQueued - ps.bytesSaved;
    trace::counter(config_.tracer, "plan", "bytes-prefetched",
                   stats_.bytesPrefetched);
    // Record the replicas after issuing (addSharer mutates the tracker the
    // query above walked); the consumer's reactive resolution will skip
    // exactly these segments via the sharer bit.
    for (const Replica& r : replicas)
      r.buf->tracker_.addSharer(r.begin, r.end, r.dst);
  }

  // Modeled host cost of assembling/issuing the prefetch copies — the same
  // per-row transfer-issue coefficient the reactive path is charged.
  double cost = config_.transferIssueCostPerRow *
                static_cast<double>(replicas.size());
  double simStart = machine_->now();
  machine_->advanceHost(cost);
  trace::simSpan(config_.tracer, "sim.pattern", "prefetch-issue",
                 sim::kSimHostTrack, simStart, cost,
                 {{"copies", static_cast<i64>(replicas.size())}});
}

void Runtime::sampleCacheCounters() {
  const pset::FmMemoCounters fm = pset::fmMemoCounters();
  i64 specHits = 0, specMisses = 0, specEvictions = 0;
  for (const auto& [name, ke] : kernels_)
    for (const Enumerator& e : ke.enumerators) {
      const codegen::Enumerator::SpecCacheCounters c = e.specCacheCounters();
      specHits += c.hits;
      specMisses += c.misses;
      specEvictions += c.evictions;
    }
  std::lock_guard<std::mutex> lock(statsMutex_);
  stats_.fmMemoHits = fm.hits - fmBaseHits_;
  stats_.fmMemoMisses = fm.misses - fmBaseMisses_;
  stats_.fmMemoEvictions = fm.evictions - fmBaseEvictions_;
  stats_.specProgramHits = specHits;
  stats_.specProgramMisses = specMisses;
  stats_.specProgramEvictions = specEvictions;
}

void Runtime::synchronizeReads(KernelEntry& ke, const LaunchConfig& cfg,
                               std::span<const LaunchArg> args,
                               std::span<const i64> scalars) {
  ResolutionTimer timer(*this);
  trace::Span span(config_.tracer, "runtime", "sync-reads");
  std::unique_ptr<TransferPlan> xferPlan = makeTransferPlan();
  // While the inspector is active, the whole-extent enumerators of
  // inspectable may-read args are skipped: synchronizeMayAccessReads()
  // replaces them with the exact inspected footprints.
  const bool inspector = inspectorActiveFor(ke);
  // Shared-copy bookkeeping scratch; call-local so the serial and parallel
  // engines have the same per-task-ownership shape (no cross-call aliasing).
  std::vector<std::pair<i64, i64>> sharerScratch;
  for (int gpu = 0; gpu < config_.numGpus; ++gpu) {
    GridPartition gp = partitionFor(*ke.model, cfg.grid, gpu);
    if (gp.blockCount() == 0) continue;
    PartitionTuple tuple = PartitionTuple::fromBlocks(gp, cfg.block);
    bool cached = false;
    const LaunchPlan* plan = resolvePlan(ke, tuple, cfg, scalars, cached);

    for (std::size_t ei = 0; ei < ke.enumerators.size(); ++ei) {
      const Enumerator& e = ke.enumerators[ei];
      if (e.isWrite()) continue;
      if (inspector && ke.enumIsMayRead[ei] != 0) continue;
      VirtualBuffer* vb = args[e.argIndex()].buffer;
      PP_ASSERT(vb != nullptr);
      codegen::EnumInfo info;
      i64 segments = 0;
      auto resolveRange = [&](i64 elemB, i64 elemE) {
        vb->tracker_.querySharers(
            elemB * kElemBytes, elemE * kElemBytes,
            [&](i64 b, i64 en, Owner owner, u64 sharers) {
              ++segments;
              if (owner == gpu || owner < 0) return;  // up to date / undefined
              // Sharer bits are consulted when either feature maintains
              // them: trackSharedCopies records reactive replicas, the
              // dataflow planner records prefetched ones.
              if ((config_.trackSharedCopies || config_.dataflowPlanning) &&
                  gpu < 64 && (sharers & (u64{1} << gpu)) != 0) {
                if (config_.trackSharedCopies)
                  ++stats_.sharedCopyHits;  // replica already valid here
                else
                  ++stats_.prefetchHits;  // prefetch landed: skip the copy
                return;
              }
              if (config_.enableTransfers) {
                if (xferPlan != nullptr) {
                  // Scheduled mode: record the decision; the whole launch's
                  // plan is merged and issued after the query loops.
                  xferPlan->add(vb, gpu, static_cast<int>(owner), b, en);
                } else {
                  machine_->copyPeer(
                      vb->instances_[static_cast<std::size_t>(gpu)], b,
                      vb->instances_[static_cast<std::size_t>(owner)], b,
                      en - b);
                  ++stats_.peerCopies;
                  trace::instant(config_.tracer, "transfer", "peer-copy",
                                 {{"src", owner}, {"dst", gpu}, {"bytes", en - b}});
                }
                if (config_.trackSharedCopies) sharerScratch.emplace_back(b, en);
              }
            });
        // Record the new replicas outside the query traversal (addSharer
        // mutates the tracker).
        for (const auto& [b, en] : sharerScratch)
          vb->tracker_.addSharer(b, en, gpu);
        sharerScratch.clear();
      };
      if (plan != nullptr) {
        // Replay the memoized ranges against the live tracker.
        const codegen::MaterializedRanges& mr = (*plan)[ei];
        for (const auto& [b, en] : mr.ranges) resolveRange(b, en);
        info = mr.info;
      } else {
        e.enumerate(tuple, cfg, scalars, resolveRange, &info);
      }
      stats_.rangesResolved += info.ranges;
      stats_.logicalRowsResolved += info.logicalRows;
      stats_.trackerSegmentsVisited += segments;
      double rowCost =
          cached ? config_.cachedResolutionCostPerRow : config_.resolutionCostPerRow;
      double perRow = rowCost +
                      (config_.enableTransfers ? config_.transferIssueCostPerRow : 0);
      double cost = config_.resolutionCostPerArray +
                    perRow * static_cast<double>(info.logicalRows + segments);
      double simStart = machine_->now();
      machine_->advanceHost(cost);
      trace::simSpan(config_.tracer, "sim.pattern", "resolve-reads",
                     sim::kSimHostTrack, simStart, cost, {{"gpu", gpu}});
    }
  }
  if (xferPlan != nullptr) issueTransferPlan(*xferPlan);
}

void Runtime::updateTrackers(KernelEntry& ke, const LaunchConfig& cfg,
                             std::span<const LaunchArg> args,
                             std::span<const i64> scalars) {
  ResolutionTimer timer(*this);
  trace::Span span(config_.tracer, "runtime", "update-trackers");
  for (int gpu = 0; gpu < config_.numGpus; ++gpu) {
    GridPartition gp = partitionFor(*ke.model, cfg.grid, gpu);
    if (gp.blockCount() == 0) continue;
    PartitionTuple tuple = PartitionTuple::fromBlocks(gp, cfg.block);
    bool cached = false;
    const LaunchPlan* plan = resolvePlan(ke, tuple, cfg, scalars, cached);

    for (std::size_t ei = 0; ei < ke.enumerators.size(); ++ei) {
      const Enumerator& e = ke.enumerators[ei];
      if (!e.isWrite()) continue;
      VirtualBuffer* vb = args[e.argIndex()].buffer;
      PP_ASSERT(vb != nullptr);
      codegen::EnumInfo info;
      if (plan != nullptr) {
        const codegen::MaterializedRanges& mr = (*plan)[ei];
        for (const auto& [b, en] : mr.ranges)
          vb->tracker_.update(b * kElemBytes, en * kElemBytes, gpu);
        info = mr.info;
      } else {
        e.enumerate(tuple, cfg, scalars, [&](i64 elemB, i64 elemE) {
          vb->tracker_.update(elemB * kElemBytes, elemE * kElemBytes, gpu);
        }, &info);
      }
      stats_.rangesResolved += info.ranges;
      stats_.logicalRowsResolved += info.logicalRows;
      double rowCost =
          cached ? config_.cachedResolutionCostPerRow : config_.resolutionCostPerRow;
      double cost = config_.resolutionCostPerArray +
                    rowCost * static_cast<double>(info.logicalRows);
      double simStart = machine_->now();
      machine_->advanceHost(cost);
      trace::simSpan(config_.tracer, "sim.pattern", "update-writes",
                     sim::kSimHostTrack, simStart, cost, {{"gpu", gpu}});
    }
  }
}

// ---------------------------------------------------------------------------
// May-access tier: inspector–executor (DESIGN.md "May-access tier").
// ---------------------------------------------------------------------------

bool Runtime::inspectorActiveFor(const KernelEntry& ke) const {
  return config_.inspectorExecutor && !ke.mayReadArgs.empty();
}

std::shared_ptr<const Runtime::InspectedFootprints> Runtime::inspectFootprints(
    KernelEntry& ke, const LaunchConfig& cfg, std::span<const LaunchArg> args,
    std::span<const i64> scalars) {
  PP_ASSERT_MSG(machine_->mode() == sim::ExecutionMode::Functional,
                "inspection walk without functional buffer contents");
  ResolutionTimer timer(*this);
  trace::Span span(config_.tracer, "runtime", "inspect:", ke.model->kernel);

  // Cache probe.  The geometry/scalars/buffer-identity/weights tuple is the
  // key; the content versions decide freshness.  Content versions move only
  // on Tracker::update() — which both engines perform in byte-identical
  // sequences — so hit/miss/invalidation counts are knob-invariant.  Only
  // *read* arguments enter the freshness vector: a write-only output cannot
  // influence the walk, and skipping its version is what lets the repeat
  // launch of an iterative kernel hit the cache despite writing its output.
  std::vector<const VirtualBuffer*> bufs;
  std::vector<u64> versions;
  for (std::size_t ai = 0; ai < args.size(); ++ai) {
    if (args[ai].buffer == nullptr) continue;
    bufs.push_back(args[ai].buffer);
    const analysis::ArrayModel* am = ke.model->arrayFor(ai);
    if (am != nullptr && am->hasReads())
      versions.push_back(args[ai].buffer->tracker().contentVersion());
  }
  auto sameKey = [&](const InspectedFootprints& f) {
    return f.cfg.grid.x == cfg.grid.x && f.cfg.grid.y == cfg.grid.y &&
           f.cfg.grid.z == cfg.grid.z && f.cfg.block.x == cfg.block.x &&
           f.cfg.block.y == cfg.block.y && f.cfg.block.z == cfg.block.z &&
           f.scalars.size() == scalars.size() &&
           std::equal(f.scalars.begin(), f.scalars.end(), scalars.begin()) &&
           f.buffers == bufs && f.weights == ke.partitioning.weights;
  };
  for (auto it = ke.inspections.begin(); it != ke.inspections.end(); ++it) {
    if (!sameKey(**it)) continue;
    if ((*it)->contentVersions == versions) {
      ++stats_.inspectorCacheHits;
      trace::instant(config_.tracer, "cache", "inspection-hit");
      return *it;
    }
    // Stale: an inspected buffer's content changed since the walk.
    ++stats_.inspectorCacheInvalidations;
    trace::instant(config_.tracer, "cache", "inspection-invalidate");
    ke.inspections.erase(it);
    break;
  }
  ++stats_.inspectorCacheMisses;

  // Host mirrors of every array argument, gathered segment-wise from the
  // owning device instances (undefined segments stay zero).  The walk runs
  // all partitions on these *shared* mirrors in ascending device order, so
  // stores of earlier partitions are visible to later ones — the same
  // sequential-interpreter semantics the launch itself reproduces.
  std::vector<std::vector<i64>> mirrors(bufs.size());
  std::vector<ir::ArgValue> argvals;
  argvals.reserve(args.size() + 6);
  {
    std::size_t bi = 0;
    for (const LaunchArg& a : args) {
      if (a.buffer == nullptr) {
        argvals.push_back(ir::ArgValue{a.scalar, nullptr, 0});
        continue;
      }
      std::vector<i64>& m = mirrors[bi++];
      m.assign(static_cast<std::size_t>(a.buffer->bytes() / kElemBytes), 0);
      a.buffer->tracker().query(0, a.buffer->bytes(), [&](i64 b, i64 e,
                                                          Owner owner) {
        if (owner < 0) return;
        const char* src = static_cast<const char*>(machine_->bufferData(
            a.buffer->instances_[static_cast<std::size_t>(owner)]));
        std::memcpy(reinterpret_cast<char*>(m.data()) + b, src + b,
                    static_cast<std::size_t>(e - b));
      });
      argvals.push_back(
          ir::ArgValue::ofBuffer(m.data(), static_cast<i64>(m.size())));
    }
  }

  auto fp = std::make_shared<InspectedFootprints>();
  fp->cfg = cfg;
  fp->scalars.assign(scalars.begin(), scalars.end());
  fp->buffers = std::move(bufs);
  fp->contentVersions = std::move(versions);
  fp->weights = ke.partitioning.weights;
  fp->ranges.assign(
      ke.mayReadArgs.size(),
      std::vector<std::vector<std::pair<i64, i64>>>(
          static_cast<std::size_t>(config_.numGpus)));

  std::vector<int> slotOf(args.size(), -1);
  for (std::size_t i = 0; i < ke.mayReadArgs.size(); ++i)
    slotOf[ke.mayReadArgs[i]] = static_cast<int>(i);

  i64 accesses = 0;
  for (int gpu = 0; gpu < config_.numGpus; ++gpu) {
    GridPartition gp = partitionFor(*ke.model, cfg.grid, gpu);
    if (gp.blockCount() == 0) continue;
    LaunchConfig partCfg{
        {gp.hi.x - gp.lo.x, gp.hi.y - gp.lo.y, gp.hi.z - gp.lo.z}, cfg.block};
    std::vector<ir::ArgValue> pargs = argvals;
    for (i64 v : {gp.lo.x, gp.lo.y, gp.lo.z, gp.hi.x, gp.hi.y, gp.hi.z})
      pargs.push_back(ir::ArgValue::ofInt(v));
    std::vector<std::vector<i64>> flats(ke.mayReadArgs.size());
    ir::AccessObserver observer = [&](std::size_t arg, bool isWrite, i64 flat,
                                      std::span<const i64, 12>) {
      if (isWrite || slotOf[arg] < 0) return;
      ++accesses;
      flats[static_cast<std::size_t>(slotOf[arg])].push_back(flat);
    };
    ir::execute(*ke.partitioned, partCfg, pargs, observer);
    for (std::size_t si = 0; si < flats.size(); ++si) {
      std::vector<i64>& fs = flats[si];
      std::sort(fs.begin(), fs.end());
      fs.erase(std::unique(fs.begin(), fs.end()), fs.end());
      auto& out = fp->ranges[si][static_cast<std::size_t>(gpu)];
      std::size_t i = 0;
      while (i < fs.size()) {
        std::size_t j = i;
        while (j + 1 < fs.size() && fs[j + 1] == fs[j] + 1) ++j;
        out.emplace_back(fs[i], fs[j] + 1);
        i = j + 1;
      }
    }
  }

  ++stats_.inspectorRuns;
  stats_.inspectedElements += accesses;
  const double cost =
      config_.inspectorCostPerElement * static_cast<double>(accesses);
  const double simStart = machine_->now();
  machine_->advanceHost(cost);
  trace::simSpan(config_.tracer, "sim.pattern", "inspect", sim::kSimHostTrack,
                 simStart, cost, {{"elements", accesses}});

  const i64 cap = config_.inspectionCacheEntriesPerKernel;
  if (cap > 0 && static_cast<i64>(ke.inspections.size()) >= cap)
    ke.inspections.pop_front();
  ke.inspections.push_back(fp);
  return fp;
}

void Runtime::synchronizeMayAccessReads(KernelEntry& ke,
                                        std::span<const LaunchArg> args,
                                        const InspectedFootprints& fp) {
  ResolutionTimer timer(*this);
  trace::Span span(config_.tracer, "runtime", "sync-may-reads");
  std::unique_ptr<TransferPlan> xferPlan = makeTransferPlan();
  std::vector<std::pair<i64, i64>> sharerScratch;
  // Same traversal shape and per-array modeled cost as synchronizeReads,
  // driven by the inspected footprints instead of the enumerators.  Called
  // identically by both resolution engines (it is already cheap and
  // footprint-exact), which keeps them byte-identical.
  for (int gpu = 0; gpu < config_.numGpus; ++gpu) {
    for (std::size_t si = 0; si < ke.mayReadArgs.size(); ++si) {
      const auto& ranges = fp.ranges[si][static_cast<std::size_t>(gpu)];
      if (ranges.empty()) continue;
      VirtualBuffer* vb = args[ke.mayReadArgs[si]].buffer;
      PP_ASSERT(vb != nullptr);
      i64 segments = 0;
      for (const auto& [elemB, elemE] : ranges) {
        vb->tracker_.querySharers(
            elemB * kElemBytes, elemE * kElemBytes,
            [&](i64 b, i64 en, Owner owner, u64 sharers) {
              ++segments;
              if (owner == gpu || owner < 0) return;
              if ((config_.trackSharedCopies || config_.dataflowPlanning) &&
                  gpu < 64 && (sharers & (u64{1} << gpu)) != 0) {
                if (config_.trackSharedCopies)
                  ++stats_.sharedCopyHits;
                else
                  ++stats_.prefetchHits;
                return;
              }
              if (config_.enableTransfers) {
                if (xferPlan != nullptr) {
                  xferPlan->add(vb, gpu, static_cast<int>(owner), b, en);
                } else {
                  machine_->copyPeer(
                      vb->instances_[static_cast<std::size_t>(gpu)], b,
                      vb->instances_[static_cast<std::size_t>(owner)], b,
                      en - b);
                  ++stats_.peerCopies;
                  trace::instant(
                      config_.tracer, "transfer", "peer-copy",
                      {{"src", owner}, {"dst", gpu}, {"bytes", en - b}});
                }
                if (config_.trackSharedCopies) sharerScratch.emplace_back(b, en);
              }
            });
        for (const auto& [b, en] : sharerScratch)
          vb->tracker_.addSharer(b, en, gpu);
        sharerScratch.clear();
      }
      stats_.rangesResolved += static_cast<i64>(ranges.size());
      stats_.trackerSegmentsVisited += segments;
      double perRow =
          config_.resolutionCostPerRow +
          (config_.enableTransfers ? config_.transferIssueCostPerRow : 0);
      double cost = config_.resolutionCostPerArray +
                    perRow * static_cast<double>(
                                 static_cast<i64>(ranges.size()) + segments);
      double simStart = machine_->now();
      machine_->advanceHost(cost);
      trace::simSpan(config_.tracer, "sim.pattern", "resolve-may-reads",
                     sim::kSimHostTrack, simStart, cost, {{"gpu", gpu}});
    }
  }
  if (xferPlan != nullptr) issueTransferPlan(*xferPlan);
}

void Runtime::gatherRmwMayArgs(KernelEntry& ke, std::span<const LaunchArg> args,
                               int gpu) {
  // Read-modify-write may-args carry no static read map, and each partition
  // must observe the merged writes of every earlier one (sequential
  // interpreter semantics): gather the whole buffer to this device right
  // before its partition launches.  The leading barrier also orders this
  // partition behind its predecessor, whose writes fold into the tracker
  // only after its kernel returns.
  trace::Span span(config_.tracer, "runtime", "gather-rmw");
  machine_->synchronizeAll();
  for (std::size_t arg : ke.rmwMayArgs) {
    VirtualBuffer* vb = args[arg].buffer;
    PP_ASSERT(vb != nullptr);
    vb->tracker_.query(0, vb->bytes(), [&](i64 b, i64 e, Owner owner) {
      if (owner < 0 || owner == gpu) return;
      machine_->copyPeer(vb->instances_[static_cast<std::size_t>(gpu)], b,
                         vb->instances_[static_cast<std::size_t>(owner)], b,
                         e - b);
      ++stats_.peerCopies;
      trace::instant(config_.tracer, "transfer", "peer-copy",
                     {{"src", owner}, {"dst", gpu}, {"bytes", e - b}});
    });
  }
  machine_->synchronizeAll();
}

// ---------------------------------------------------------------------------
// Parallel resolution engine (RuntimeConfig::resolutionThreads > 0).
//
// The serial paper loop above interleaves three kinds of work per
// (GPU partition, array) pair: pure polyhedral enumeration, tracker
// queries/updates, and machine-model bookkeeping (transfers + modeled host
// cost).  The engine splits them into three phases:
//
//   1. acquirePlans      — all missing (gpu, enumerator) materializations run
//                          concurrently (Enumerator::materialize is const and
//                          touches no shared state); the plan cache itself is
//                          only mutated on this thread, with the serial
//                          hit/miss/eviction accounting replayed verbatim.
//   2. sharded trackers  — one task per destination VirtualBuffer executes
//                          that buffer's work items in the canonical
//                          (gpu, enumerator, range) order.  Trackers of
//                          different buffers are independent, and the serial
//                          loop's tracker operations restricted to one buffer
//                          occur in exactly this order, so every tracker
//                          reaches a byte-identical state without locks.
//   3. ordered commit    — transfer decisions and modeled costs collected by
//                          the tasks are replayed into sim::Machine in the
//                          canonical serial order, so engine reservations,
//                          floating-point cost accumulation, MachineStats,
//                          and RuntimeStats are byte-identical as well.
// ---------------------------------------------------------------------------

void Runtime::runResolutionTasks(const char* label, i64 n,
                                 const std::function<void(i64)>& body) {
  if (n <= 0) return;
  // parallelWallSeconds is a sub-window of resolutionWallSeconds (the
  // fraction of resolution wall time spent inside pool fan-outs), so a
  // parallel window outside an open resolution window would make the subset
  // accounting meaningless.
  PP_ASSERT_MSG(ResolutionTimer::openOnThisThread(*this),
                "parallel resolution tasks outside a resolution wall-time window");
  trace::Span span(config_.tracer, "runtime", label, {}, {{"tasks", n}});
  auto t0 = std::chrono::steady_clock::now();
  pool_->parallelFor(n, body);
  stats_.resolutionTasks += n;
  stats_.parallelWallSeconds += wallSeconds(t0);
}

std::vector<Runtime::PlanAcquisition> Runtime::acquirePlans(
    KernelEntry& ke, const LaunchConfig& cfg, std::span<const i64> scalars) {
  trace::Span span(config_.tracer, "runtime", "phase1:acquire-plans");
  std::vector<PlanAcquisition> acqs;
  for (int gpu = 0; gpu < config_.numGpus; ++gpu) {
    GridPartition gp = partitionFor(*ke.model, cfg.grid, gpu);
    if (gp.blockCount() == 0) continue;
    acqs.push_back(
        PlanAcquisition{gpu, PartitionTuple::fromBlocks(gp, cfg.block), nullptr,
                        false});
  }
  const std::size_t numEnums = ke.enumerators.size();

  if (!config_.enableEnumerationCache) {
    // Cache off: the paper's runtime re-enumerates every launch.  The
    // enumeration is still materialized (concurrently) into pass-local plans
    // so the tracker phase can replay it; the recorded ranges are exactly
    // what a live enumerate() call would have emitted.  Plans the submitting
    // thread already pre-materialized (pipelined mode) are reused directly.
    std::vector<std::size_t> need;  // acq indices without a prebuilt plan
    for (std::size_t ai = 0; ai < acqs.size(); ++ai) {
      if (activePending_ != nullptr && !activePending_->prebuilt.empty())
        acqs[ai].plan = findPrebuilt(
            codegen::EnumerationKey::of(acqs[ai].tuple, cfg, scalars));
      if (acqs[ai].plan == nullptr) need.push_back(ai);
    }
    std::vector<std::shared_ptr<LaunchPlan>> fresh(need.size());
    for (auto& p : fresh) p = std::make_shared<LaunchPlan>(numEnums);
    runResolutionTasks(
        "phase1:materialize", static_cast<i64>(need.size() * numEnums),
        [&](i64 t) {
          const std::size_t ni = static_cast<std::size_t>(t) / numEnums;
          const std::size_t ei = static_cast<std::size_t>(t) % numEnums;
          (*fresh[ni])[ei] =
              ke.enumerators[ei].materialize(acqs[need[ni]].tuple, cfg, scalars);
        });
    for (std::size_t ni = 0; ni < need.size(); ++ni)
      acqs[need[ni]].plan = std::move(fresh[ni]);
    return acqs;
  }

  // Cache on: materialize only the keys that will miss at commit time.  A
  // key present now can still miss later — the FIFO may evict it while
  // earlier partitions of this very pass insert theirs — so the commit's
  // hit/miss sequence is predicted by simulating the FIFO against a copy of
  // the cache's key set.  Tasks write into pre-allocated pass-local plans;
  // the cache itself is never touched off this thread (single-producer, no
  // mutex).
  std::vector<codegen::EnumerationKey> keys;
  keys.reserve(acqs.size());
  for (const PlanAcquisition& a : acqs)
    keys.push_back(codegen::EnumerationKey::of(a.tuple, cfg, scalars));
  const i64 cap = config_.enumerationCachePlansPerKernel;
  std::deque<codegen::EnumerationKey> simOrder = ke.planCacheOrder;
  std::unordered_set<codegen::EnumerationKey, codegen::EnumerationKeyHash>
      simPresent(simOrder.begin(), simOrder.end());
  std::vector<std::size_t> missing;  // acq indices with unique missing keys
  for (std::size_t ai = 0; ai < acqs.size(); ++ai) {
    if (simPresent.count(keys[ai]) != 0) continue;  // will hit at commit time
    bool dup = false;
    for (std::size_t mj : missing)
      if (keys[mj] == keys[ai]) {
        dup = true;
        break;
      }
    if (!dup) missing.push_back(ai);
    if (cap > 0 && static_cast<i64>(simPresent.size()) >= cap) {
      simPresent.erase(simOrder.front());
      simOrder.pop_front();
    }
    simPresent.insert(keys[ai]);
    simOrder.push_back(keys[ai]);
  }
  // Predicted misses already pre-materialized at submission (pipelined mode)
  // are taken as-is; only the remainder fans out to the pool.
  std::vector<std::shared_ptr<const LaunchPlan>> built(missing.size());
  std::vector<std::size_t> toBuild;  // indices into `missing`
  for (std::size_t mi = 0; mi < missing.size(); ++mi) {
    if (activePending_ != nullptr && !activePending_->prebuilt.empty())
      built[mi] = findPrebuilt(keys[missing[mi]]);
    if (built[mi] == nullptr) toBuild.push_back(mi);
  }
  std::vector<std::shared_ptr<LaunchPlan>> freshBuilt(toBuild.size());
  for (auto& p : freshBuilt) p = std::make_shared<LaunchPlan>(numEnums);
  runResolutionTasks(
      "phase1:materialize", static_cast<i64>(toBuild.size() * numEnums),
      [&](i64 t) {
        const std::size_t ti = static_cast<std::size_t>(t) / numEnums;
        const std::size_t ei = static_cast<std::size_t>(t) % numEnums;
        (*freshBuilt[ti])[ei] = ke.enumerators[ei].materialize(
            acqs[missing[toBuild[ti]]].tuple, cfg, scalars);
      });
  for (std::size_t ti = 0; ti < toBuild.size(); ++ti)
    built[toBuild[ti]] = std::move(freshBuilt[ti]);

  // Commit in canonical GPU order, replaying resolvePlan's counter and FIFO
  // semantics exactly (including eviction thrash when the capacity is
  // smaller than the partitions of one launch).
  for (std::size_t ai = 0; ai < acqs.size(); ++ai) {
    auto it = ke.planCache.find(keys[ai]);
    if (it != ke.planCache.end()) {
      ++stats_.enumCacheHits;
      trace::instant(config_.tracer, "cache", "plan-hit");
      trace::counter(config_.tracer, "cache", "plan-cache-hits",
                     stats_.enumCacheHits);
      acqs[ai].cached = true;
      acqs[ai].plan = it->second;
      continue;
    }
    ++stats_.enumCacheMisses;
    trace::instant(config_.tracer, "cache", "plan-miss");
    trace::counter(config_.tracer, "cache", "plan-cache-misses",
                   stats_.enumCacheMisses);
    if (cap > 0 && static_cast<i64>(ke.planCache.size()) >= cap) {
      ke.planCache.erase(ke.planCacheOrder.front());
      ke.planCacheOrder.pop_front();
      ++stats_.enumCacheEvictions;
      trace::instant(config_.tracer, "cache", "plan-evict");
      trace::counter(config_.tracer, "cache", "plan-cache-evictions",
                     stats_.enumCacheEvictions);
    }
    std::shared_ptr<const LaunchPlan> plan;
    for (std::size_t mi = 0; mi < missing.size(); ++mi)
      if (keys[missing[mi]] == keys[ai]) {
        plan = built[mi];
        break;
      }
    PP_ASSERT_MSG(plan != nullptr, "missed key was not materialized");
    auto [pos, inserted] = ke.planCache.emplace(keys[ai], std::move(plan));
    PP_ASSERT(inserted);
    ke.planCacheOrder.push_back(pos->first);
    acqs[ai].plan = pos->second;
    acqs[ai].cached = false;
  }
  return acqs;
}

namespace {

/// Work items of one resolution pass grouped by destination buffer: shard s
/// owns every (acquisition, enumerator) pair that touches buffers[s], in
/// canonical order.
struct BufferShards {
  std::vector<VirtualBuffer*> buffers;
  std::vector<std::vector<std::pair<std::size_t, std::size_t>>> items;
};

BufferShards shardByBuffer(const std::vector<Enumerator>& enumerators,
                           std::span<const LaunchArg> args, std::size_t numAcqs,
                           bool writes,
                           const std::vector<char>* skipEnum = nullptr) {
  BufferShards shards;
  std::unordered_map<VirtualBuffer*, std::size_t> index;
  for (std::size_t ai = 0; ai < numAcqs; ++ai) {
    for (std::size_t ei = 0; ei < enumerators.size(); ++ei) {
      if (enumerators[ei].isWrite() != writes) continue;
      // Inspector-skipped enumerators must not shard at all: the phase-2
      // tasks mutate tracker sharer state, which the skip exists to avoid.
      if (skipEnum != nullptr && (*skipEnum)[ei] != 0) continue;
      VirtualBuffer* vb = args[enumerators[ei].argIndex()].buffer;
      PP_ASSERT(vb != nullptr);
      auto [it, fresh] = index.try_emplace(vb, shards.buffers.size());
      if (fresh) {
        shards.buffers.push_back(vb);
        shards.items.emplace_back();
      }
      shards.items[it->second].emplace_back(ai, ei);
    }
  }
  return shards;
}

}  // namespace

void Runtime::synchronizeReadsParallel(KernelEntry& ke, const LaunchConfig& cfg,
                                       std::span<const LaunchArg> args,
                                       std::span<const i64> scalars) {
  ResolutionTimer timer(*this);
  trace::Span span(config_.tracer, "runtime", "sync-reads");
  std::vector<PlanAcquisition> acqs = acquirePlans(ke, cfg, scalars);
  const std::size_t numEnums = ke.enumerators.size();

  struct Transfer {
    i64 begin = 0;
    i64 end = 0;
    Owner owner = kOwnerUndefined;
  };
  struct EnumResolution {
    i64 segments = 0;
    i64 sharedHits = 0;
    std::vector<Transfer> transfers;
  };
  std::vector<EnumResolution> results(acqs.size() * numEnums);

  const bool inspector = inspectorActiveFor(ke);
  BufferShards shards =
      shardByBuffer(ke.enumerators, args, acqs.size(), /*writes=*/false,
                    inspector ? &ke.enumIsMayRead : nullptr);
  runResolutionTasks("phase2:tracker-tasks",
                     static_cast<i64>(shards.buffers.size()), [&](i64 s) {
    VirtualBuffer* vb = shards.buffers[static_cast<std::size_t>(s)];
    std::vector<std::pair<i64, i64>> sharerScratch;  // task-local
    for (const auto& [ai, ei] : shards.items[static_cast<std::size_t>(s)]) {
      const PlanAcquisition& a = acqs[ai];
      const codegen::MaterializedRanges& mr = (*a.plan)[ei];
      EnumResolution& r = results[ai * numEnums + ei];
      const int gpu = a.gpu;
      for (const auto& [elemB, elemE] : mr.ranges) {
        vb->tracker_.querySharers(
            elemB * kElemBytes, elemE * kElemBytes,
            [&](i64 b, i64 en, Owner owner, u64 sharers) {
              ++r.segments;
              if (owner == gpu || owner < 0) return;  // up to date / undefined
              if ((config_.trackSharedCopies || config_.dataflowPlanning) &&
                  gpu < 64 && (sharers & (u64{1} << gpu)) != 0) {
                ++r.sharedHits;  // replica already valid here
                return;
              }
              if (config_.enableTransfers) {
                r.transfers.push_back(Transfer{b, en, owner});
                if (config_.trackSharedCopies) sharerScratch.emplace_back(b, en);
              }
            });
        // Record the new replicas outside the query traversal (addSharer
        // mutates the tracker).
        for (const auto& [b, en] : sharerScratch)
          vb->tracker_.addSharer(b, en, gpu);
        sharerScratch.clear();
      }
    }
  });

  // Ordered commit: identical machine-call and stats sequence as the serial
  // loop — (gpu ascending, enumerator ascending, transfers in decision
  // order, then the modeled per-array cost).  With scheduling on, the same
  // canonical order instead populates the TransferPlan, so the schedule —
  // and everything downstream of it — matches the serial engine byte for
  // byte.
  trace::Span phase3(config_.tracer, "runtime", "phase3:commit");
  std::unique_ptr<TransferPlan> xferPlan = makeTransferPlan();
  for (std::size_t ai = 0; ai < acqs.size(); ++ai) {
    const PlanAcquisition& a = acqs[ai];
    for (std::size_t ei = 0; ei < numEnums; ++ei) {
      const Enumerator& e = ke.enumerators[ei];
      if (e.isWrite()) continue;
      if (inspector && ke.enumIsMayRead[ei] != 0) continue;
      VirtualBuffer* vb = args[e.argIndex()].buffer;
      const EnumResolution& r = results[ai * numEnums + ei];
      for (const Transfer& t : r.transfers) {
        if (xferPlan != nullptr) {
          xferPlan->add(vb, a.gpu, static_cast<int>(t.owner), t.begin, t.end);
          continue;
        }
        machine_->copyPeer(vb->instances_[static_cast<std::size_t>(a.gpu)],
                           t.begin,
                           vb->instances_[static_cast<std::size_t>(t.owner)],
                           t.begin, t.end - t.begin);
        ++stats_.peerCopies;
        trace::instant(
            config_.tracer, "transfer", "peer-copy",
            {{"src", t.owner}, {"dst", a.gpu}, {"bytes", t.end - t.begin}});
      }
      // Same attribution rule as the serial path: with shared-copy tracking
      // on, sharer hits are its; otherwise only prefetched replicas can set
      // sharer bits, so they are the planner's.
      if (config_.trackSharedCopies)
        stats_.sharedCopyHits += r.sharedHits;
      else
        stats_.prefetchHits += r.sharedHits;
      const codegen::EnumInfo& info = (*a.plan)[ei].info;
      stats_.rangesResolved += info.ranges;
      stats_.logicalRowsResolved += info.logicalRows;
      stats_.trackerSegmentsVisited += r.segments;
      double rowCost = a.cached ? config_.cachedResolutionCostPerRow
                                : config_.resolutionCostPerRow;
      double perRow = rowCost + (config_.enableTransfers
                                     ? config_.transferIssueCostPerRow
                                     : 0);
      double cost =
          config_.resolutionCostPerArray +
          perRow * static_cast<double>(info.logicalRows + r.segments);
      double simStart = machine_->now();
      machine_->advanceHost(cost);
      trace::simSpan(config_.tracer, "sim.pattern", "resolve-reads",
                     sim::kSimHostTrack, simStart, cost, {{"gpu", a.gpu}});
    }
  }
  if (xferPlan != nullptr) issueTransferPlan(*xferPlan);
}

void Runtime::updateTrackersParallel(KernelEntry& ke, const LaunchConfig& cfg,
                                     std::span<const LaunchArg> args,
                                     std::span<const i64> scalars) {
  ResolutionTimer timer(*this);
  trace::Span span(config_.tracer, "runtime", "update-trackers");
  std::vector<PlanAcquisition> acqs = acquirePlans(ke, cfg, scalars);
  const std::size_t numEnums = ke.enumerators.size();

  BufferShards shards =
      shardByBuffer(ke.enumerators, args, acqs.size(), /*writes=*/true);
  runResolutionTasks("phase2:tracker-tasks",
                     static_cast<i64>(shards.buffers.size()), [&](i64 s) {
    VirtualBuffer* vb = shards.buffers[static_cast<std::size_t>(s)];
    for (const auto& [ai, ei] : shards.items[static_cast<std::size_t>(s)]) {
      const PlanAcquisition& a = acqs[ai];
      for (const auto& [elemB, elemE] : (*a.plan)[ei].ranges)
        vb->tracker_.update(elemB * kElemBytes, elemE * kElemBytes, a.gpu);
    }
  });

  trace::Span phase3(config_.tracer, "runtime", "phase3:commit");
  for (std::size_t ai = 0; ai < acqs.size(); ++ai) {
    const PlanAcquisition& a = acqs[ai];
    for (std::size_t ei = 0; ei < numEnums; ++ei) {
      if (!ke.enumerators[ei].isWrite()) continue;
      const codegen::EnumInfo& info = (*a.plan)[ei].info;
      stats_.rangesResolved += info.ranges;
      stats_.logicalRowsResolved += info.logicalRows;
      double rowCost = a.cached ? config_.cachedResolutionCostPerRow
                                : config_.resolutionCostPerRow;
      double cost = config_.resolutionCostPerArray +
                    rowCost * static_cast<double>(info.logicalRows);
      double simStart = machine_->now();
      machine_->advanceHost(cost);
      trace::simSpan(config_.tracer, "sim.pattern", "update-writes",
                     sim::kSimHostTrack, simStart, cost, {{"gpu", a.gpu}});
    }
  }
}

Runtime::PendingLaunch Runtime::prepareLaunch(const std::string& kernelName,
                                              const Dim3& grid,
                                              const Dim3& block,
                                              std::span<const LaunchArg> args,
                                              TenantId tenant) {
  PP_ASSERT_MSG(tenant >= 0 && tenant < config_.numTenants,
                "launch for unknown tenant");
  KernelEntry& ke = entry(kernelName);
  const KernelModel& model = *ke.model;
  PP_ASSERT_MSG(args.size() + 6 == ke.partitioned->numParams(),
                "kernel argument count mismatch");

  // Validate the model's launch assumptions (axes the kernel ignores).
  const i64 gridAxes[3] = {grid.x, grid.y, grid.z};
  const i64 blockAxes[3] = {block.x, block.y, block.z};
  for (int a = 0; a < 3; ++a) {
    if (model.requiresUnitGrid[static_cast<std::size_t>(a)] && gridAxes[a] != 1)
      throw Error("kernel '" + kernelName + "' requires gridDim." +
                  ir::axisName(static_cast<ir::Axis>(a)) + " == 1");
    if (model.requiresUnitBlock[static_cast<std::size_t>(a)] && blockAxes[a] != 1)
      throw Error("kernel '" + kernelName + "' requires blockDim." +
                  ir::axisName(static_cast<ir::Axis>(a)) + " == 1");
  }

  PendingLaunch pl;
  pl.tenant = tenant;
  pl.ke = &ke;
  pl.cfg = LaunchConfig{grid, block};
  pl.args.assign(args.begin(), args.end());

  // Scalars for the enumerators: i64 scalar args in declaration order.
  // The tenancy invariant is checked in the same walk: a launch may only
  // reference buffers of the tenant that submitted it.
  for (std::size_t i = 0; i < args.size(); ++i) {
    const analysis::ParamInfo& p = model.params[i];
    PP_ASSERT_MSG(p.isArray == (args[i].buffer != nullptr),
                  "scalar/array launch argument mismatch");
    if (args[i].buffer != nullptr)
      PP_ASSERT_MSG(args[i].buffer->tenant() == tenant,
                    "launch references another tenant's buffer");
    if (!p.isArray && p.type == ir::Type::I64)
      pl.scalars.push_back(args[i].scalar.i);
  }
  return pl;
}

void Runtime::prebuildPlans(PendingLaunch& pl) {
  // Pure pre-materialization on the submitting thread: this is the
  // resolve-of-launch-N+1 half of the pipeline overlap.  Nothing here
  // touches trackers, the machine, the real plan cache, or stats (beyond
  // the wall-clock window) — only the *predicted* cache state advances,
  // under submitMutex_, in epoch order, replaying the FIFO logic the
  // commits will perform.  Both commit phases (read sync, tracker update)
  // resolve the same keys, so the prediction simulates two passes.
  if (!config_.enableDependencyResolution) return;
  KernelEntry& ke = *pl.ke;
  ResolutionTimer timer(*this);
  trace::Span span(config_.tracer, "runtime", "pipeline:prebuild:",
                   ke.model->kernel);
  const LaunchConfig& cfg = pl.cfg;
  std::span<const i64> scalars(pl.scalars);

  std::vector<PartitionTuple> tuples;
  for (int gpu = 0; gpu < config_.numGpus; ++gpu) {
    GridPartition gp = partitionFor(*ke.model, cfg.grid, gpu);
    if (gp.blockCount() == 0) continue;
    tuples.push_back(PartitionTuple::fromBlocks(gp, cfg.block));
  }

  auto addPlan = [&](const codegen::EnumerationKey& key,
                     const PartitionTuple& tuple) {
    for (const auto& [k, plan] : pl.prebuilt)
      if (k == key) return;
    auto plan = std::make_shared<LaunchPlan>();
    plan->reserve(ke.enumerators.size());
    for (const Enumerator& e : ke.enumerators)
      plan->push_back(e.materialize(tuple, cfg, scalars));
    pl.prebuilt.emplace_back(key, std::move(plan));
  };

  if (!config_.enableEnumerationCache) {
    for (const PartitionTuple& tuple : tuples)
      addPlan(codegen::EnumerationKey::of(tuple, cfg, scalars), tuple);
    return;
  }

  const i64 cap = config_.enumerationCachePlansPerKernel;
  for (int pass = 0; pass < 2; ++pass) {
    for (const PartitionTuple& tuple : tuples) {
      codegen::EnumerationKey key =
          codegen::EnumerationKey::of(tuple, cfg, scalars);
      if (ke.predictedPresent.count(key) != 0) continue;  // predicted hit
      addPlan(key, tuple);
      if (cap > 0 && static_cast<i64>(ke.predictedPresent.size()) >= cap) {
        ke.predictedPresent.erase(ke.predictedOrder.front());
        ke.predictedOrder.pop_front();
      }
      ke.predictedPresent.insert(key);
      ke.predictedOrder.push_back(key);
    }
  }
}

void Runtime::executeLaunch(PendingLaunch& pl) {
  KernelEntry& ke = *pl.ke;
  const KernelModel& model = *ke.model;
  const std::string& kernelName = model.kernel;
  const LaunchConfig& cfg = pl.cfg;
  const Dim3& grid = cfg.grid;
  const Dim3& block = cfg.block;
  std::span<const LaunchArg> args(pl.args);
  std::span<const i64> scalars(pl.scalars);

  trace::LaunchScope launchScope(config_.tracer, kernelName);
  ++stats_.launches;
  if (!ke.mayWriteArgs.empty() || !ke.mayReadArgs.empty())
    ++stats_.mayAccessLaunches;

  // Arrays whose write patterns the static model could not capture are
  // tracked by instrumented execution (paper Section 11: "using
  // instrumentation to collect write patterns").  May-access writes and the
  // inspection walk reuse the same machinery, so all three need functional
  // buffer contents.
  std::vector<std::size_t> instrumentedArgs;
  for (const analysis::ArrayModel& a : model.arrays)
    if (a.writeInstrumented) instrumentedArgs.push_back(a.argIndex);
  if ((!instrumentedArgs.empty() || !ke.mayWriteArgs.empty() ||
       inspectorActiveFor(ke)) &&
      machine_->mode() != sim::ExecutionMode::Functional)
    throw UnsupportedOperationError(
        "kernel '" + kernelName +
        "' needs instrumented or may-access write tracking (or an inspection "
        "walk), which requires Functional execution");

  // (1b) Dataflow planner: record/match this launch against the detected
  // cycle.  A planned launch keeps the reactive resolution (the tracker
  // stays the source of truth) but drops the global barriers in favour of
  // per-device engine ordering, and issues its outgoing flow edges eagerly
  // after phase (4).
  DataflowPlanner::Observation obs;
  bool planned = false;
  DataflowPlanner* planner =
      planners_.empty() ? nullptr
                        : planners_[static_cast<std::size_t>(pl.tenant)].get();
  if (planner != nullptr) {
    std::vector<VirtualBuffer*> argBufs;
    argBufs.reserve(args.size());
    for (const LaunchArg& a : args) argBufs.push_back(a.buffer);
    obs = planner->observe(model, &ke, cfg, argBufs, scalars);
    if (obs.activated) {
      ++stats_.planActivations;
      trace::instant(config_.tracer, "plan", "dataflow-activated",
                     {{"period", static_cast<i64>(planner->period())}});
    }
    if (obs.diverged) {
      ++stats_.planDivergences;
      trace::instant(config_.tracer, "plan", "dataflow-diverged");
    }
    if (obs.planned) {
      planned = true;
      ++stats_.plannedLaunches;
      trace::instant(config_.tracer, "plan", "dataflow-planned",
                     {{"step", static_cast<i64>(obs.step)}});
    }
  }

  // (2) Synchronize all buffers the kernel reads (Fig. 4, first loop).  The
  // producing kernels must have completed before their output can be copied,
  // so the host first drains outstanding work, then issues the transfers,
  // then barriers again (all_devs_synchronize in Fig. 4).  A planned launch
  // skips both barriers: device-ordering mode makes each copy wait for the
  // endpoint devices' own engines instead, so transfers overlap *other*
  // devices' still-running kernels.
  if (config_.enableDependencyResolution) {
    machine_->setDeviceOrdering(planned);
    if (!planned) machine_->synchronizeAll();
    // Inspector–executor: resolve the exact per-device footprints of the
    // may-access reads (cached across launches) so the regular sync below
    // can skip their whole-extent enumerators.
    std::shared_ptr<const InspectedFootprints> fp;
    if (inspectorActiveFor(ke)) fp = inspectFootprints(ke, cfg, args, scalars);
    if (pool_)
      synchronizeReadsParallel(ke, cfg, args, scalars);
    else
      synchronizeReads(ke, cfg, args, scalars);
    if (fp != nullptr) synchronizeMayAccessReads(ke, args, *fp);
    if (!planned) machine_->synchronizeAll();
  }

  // Args whose writes must be observed during execution: instrumented ones
  // plus may-access writes.  The two collapse to the same collect-and-fold
  // machinery; they differ only in the hazard rule below (may-access write
  // overlaps between partitions are legal and merge in ascending device
  // order, which reproduces the sequential interpreter's last-write-wins).
  std::vector<std::size_t> observedArgs = instrumentedArgs;
  observedArgs.insert(observedArgs.end(), ke.mayWriteArgs.begin(),
                      ke.mayWriteArgs.end());
  std::sort(observedArgs.begin(), observedArgs.end());

  // Per instrumented array: (gpu, element range) for conflict detection.
  std::map<std::size_t, std::vector<std::tuple<i64, i64, int>>> observedRanges;

  // (3) Launch each partition on its GPU (Fig. 4, second loop).  The span is
  // reset before phase (4) so kernel dispatch and tracker update appear as
  // sibling phases on the timeline.
  std::optional<trace::Span> launchSpan(std::in_place, config_.tracer,
                                        "runtime", "launch-kernels:",
                                        kernelName);
  // Modeled completion per device of this launch's kernels; the planner
  // passes them as the earliest-start floors of eagerly issued flow copies.
  std::vector<double> kernelDone;
  if (planned) kernelDone.assign(static_cast<std::size_t>(config_.numGpus), 0.0);
  for (int gpu = 0; gpu < config_.numGpus; ++gpu) {
    GridPartition gp = partitionFor(model, grid, gpu);
    if (gp.blockCount() == 0) continue;
    // Read-modify-write may-args: this partition must see its predecessors'
    // merged writes before it runs.
    if (!ke.rmwMayArgs.empty()) gatherRmwMayArgs(ke, args, gpu);
    // Eq. 10: gridConf = partition.max - partition.min.
    LaunchConfig partCfg{{gp.hi.x - gp.lo.x, gp.hi.y - gp.lo.y, gp.hi.z - gp.lo.z},
                         block};
    std::vector<sim::KernelArg> kargs;
    kargs.reserve(args.size() + 6);
    for (const LaunchArg& a : args) {
      if (a.buffer)
        kargs.push_back(sim::KernelArg::ofBuffer(
            a.buffer->instances_[static_cast<std::size_t>(gpu)]));
      else
        kargs.push_back(sim::KernelArg{a.scalar, {}, false});
    }
    // Partition parameters in ir::kPartitionParamNames order:
    // min.x, min.y, min.z, max.x, max.y, max.z.
    for (i64 v : {gp.lo.x, gp.lo.y, gp.lo.z, gp.hi.x, gp.hi.y, gp.hi.z})
      kargs.push_back(sim::KernelArg::ofInt(v));

    if (observedArgs.empty()) {
      double done = machine_->launchKernel(gpu, *ke.partitioned, partCfg, kargs);
      if (planned) kernelDone[static_cast<std::size_t>(gpu)] = done;
      continue;
    }

    // Instrumented launch: observe the writes of this partition, then fold
    // them into the trackers as coalesced element ranges.
    std::map<std::size_t, std::vector<i64>> writes;
    ir::AccessObserver observer = [&](std::size_t arg, bool isWrite, i64 flat,
                                      std::span<const i64, 12>) {
      if (!isWrite) return;
      if (std::find(observedArgs.begin(), observedArgs.end(), arg) !=
          observedArgs.end())
        writes[arg].push_back(flat);
    };
    sim::LaunchOptions opts;
    opts.observer = &observer;
    opts.costMultiplier = config_.instrumentationSlowdown;
    machine_->launchKernel(gpu, *ke.partitioned, partCfg, kargs, opts);

    for (auto& [arg, flats] : writes) {
      std::sort(flats.begin(), flats.end());
      flats.erase(std::unique(flats.begin(), flats.end()), flats.end());
      VirtualBuffer* vb = args[arg].buffer;
      PP_ASSERT(vb != nullptr);
      // WAW detection applies to instrumented args only: the static model
      // claimed their writes were disjoint.  May-access args made no such
      // claim — overlapping partitions are expected there.
      const bool checkWaw =
          std::find(instrumentedArgs.begin(), instrumentedArgs.end(), arg) !=
          instrumentedArgs.end();
      std::size_t i = 0;
      while (i < flats.size()) {
        std::size_t j = i;
        while (j + 1 < flats.size() && flats[j + 1] == flats[j] + 1) ++j;
        i64 begin = flats[i], end = flats[j] + 1;
        vb->tracker_.update(begin * kElemBytes, end * kElemBytes, gpu);
        if (checkWaw) observedRanges[arg].emplace_back(begin, end, gpu);
        stats_.rangesResolved += 1;
        i = j + 1;
      }
      double cost = config_.resolutionCostPerArray +
                    config_.resolutionCostPerRow *
                        static_cast<double>(flats.size());
      double simStart = machine_->now();
      machine_->advanceHost(cost);
      trace::simSpan(config_.tracer, "sim.pattern", "instrumented-writes",
                     sim::kSimHostTrack, simStart, cost, {{"gpu", gpu}});
    }
  }

  // Write-after-write detection across partitions: instrumentation gives the
  // exact write sets, so overlapping ranges from different GPUs are the
  // hazard the static analysis would have rejected (Section 4.1).
  for (auto& [arg, ranges] : observedRanges) {
    std::sort(ranges.begin(), ranges.end());
    i64 frontierEnd = std::numeric_limits<i64>::min();
    int frontierGpu = -1;
    for (const auto& [b, e, g] : ranges) {
      if (b < frontierEnd && g != frontierGpu)
        throw Error("kernel '" + kernelName + "': instrumentation detected a "
                    "write-after-write hazard between GPUs " +
                    std::to_string(frontierGpu) + " and " + std::to_string(g));
      if (e > frontierEnd) {
        frontierEnd = e;
        frontierGpu = g;
      }
    }
  }

  launchSpan.reset();

  // (4) Update the trackers for all writes (Fig. 4, third loop); this runs
  // concurrently with the asynchronous kernels (host-side only).
  if (config_.enableDependencyResolution) {
    if (pool_)
      updateTrackersParallel(ke, cfg, args, scalars);
    else
      updateTrackers(ke, cfg, args, scalars);
  }

  // (5) Eager prefetch: issue this cycle position's compiled flow edges now
  // that the trackers reflect the launch's writes.  Floors keep the modeled
  // copies behind the producing kernels; device ordering (still on) keeps
  // them behind the destination's compute.
  if (planned) issuePrefetches(pl, obs.step, std::move(kernelDone));
  machine_->setDeviceOrdering(false);
  sampleCacheCounters();

  // Remember this launch's signature so a later repartition can recompute
  // the kernel's per-device write footprints under both geometries.
  ke.hasLastLaunch = true;
  ke.lastCfg = cfg;
  ke.lastBuffers.clear();
  ke.lastBuffers.reserve(args.size());
  for (const LaunchArg& a : args) ke.lastBuffers.push_back(a.buffer);
  ke.lastScalars.assign(scalars.begin(), scalars.end());
}

void Runtime::commitLaunch(PendingLaunch& pl) {
  // activePending_ exposes the prebuilt plans to resolvePlan/acquirePlans
  // and the issue tag to issueTransferPlan for the duration of this commit;
  // the guard clears it even when executeLaunch throws.
  struct ActiveGuard {
    Runtime& rt;
    ~ActiveGuard() {
      rt.activePending_ = nullptr;
      // Device-ordering mode is scoped to one planned launch; make sure a
      // throwing executeLaunch cannot leak it into the next commit.
      rt.machine_->setDeviceOrdering(false);
    }
  } guard{*this};
  activePending_ = &pl;
  machine_->setLaunchTag(pl.tenant);
  const RuntimeStats before = statsSnapshot();
  executeLaunch(pl);
  const RuntimeStats after = statsSnapshot();
  std::lock_guard<std::mutex> lock(tenantMutex_);
  TenantState& ts = tenants_[static_cast<std::size_t>(pl.tenant)];
  addStatsDiff(ts.stats.resolved, before, after);
  ++ts.stats.completed;
}

std::optional<i64> Runtime::submitImpl(const std::string& kernelName,
                                       const Dim3& grid, const Dim3& block,
                                       std::span<const LaunchArg> args,
                                       TenantId tenant, bool blocking) {
  if (!pipelined()) {
    // Serial paper path: validate, commit synchronously, retire the ticket
    // before returning.  epoch stays -1, so the trace output (no tags) is
    // the classic one.
    PendingLaunch pl = prepareLaunch(kernelName, grid, block, args, tenant);
    {
      std::lock_guard<std::mutex> lock(tenantMutex_);
      ++tenants_[static_cast<std::size_t>(tenant)].stats.submitted;
    }
    commitLaunch(pl);
    return serialNextTicket_++;
  }

  rethrowPipelineError();
  PendingLaunch pl = prepareLaunch(kernelName, grid, block, args, tenant);

  // Admission control: bound this tenant's outstanding launches before the
  // request may occupy pipeline capacity.
  {
    std::unique_lock<std::mutex> lock(tenantMutex_);
    TenantState& ts = tenants_[static_cast<std::size_t>(tenant)];
    const i64 cap = config_.maxInFlightPerTenant;
    if (cap > 0) {
      if (!blocking && ts.inFlight >= cap) {
        ++ts.stats.rejected;
        trace::tenantInstant(config_.tracer, tenant, "runtime",
                             "admission-reject", {{"in-flight", ts.inFlight}});
        return std::nullopt;
      }
      admissionCv_.wait(lock, [&] { return ts.inFlight < cap; });
    }
    ++ts.inFlight;
    ++ts.stats.submitted;
    trace::tenantCounter(config_.tracer, tenant, "runtime", "in-flight",
                         ts.inFlight);
  }

  // {prediction advance, epoch issue, queue push} is atomic under
  // submitMutex_, so queue order == epoch order (the EpochClock asserts
  // this) and the cache-FIFO prediction advances in epoch order.  push()
  // blocking on a full queue is the pipeline-depth backpressure.
  std::lock_guard<std::mutex> lock(submitMutex_);
  prebuildPlans(pl);
  const i64 epoch = pipeline_->epochs.issue();
  pl.epoch = epoch;
  trace::tenantInstant(config_.tracer, tenant, "runtime", "submit",
                       {{"epoch", epoch}});
  const bool accepted = pipeline_->queue.push(std::move(pl));
  PP_ASSERT_MSG(accepted, "submit to a shut-down runtime");
  return epoch;
}

i64 Runtime::submit(const std::string& kernelName, const Dim3& grid,
                    const Dim3& block, std::span<const LaunchArg> args,
                    TenantId tenant) {
  std::optional<i64> ticket =
      submitImpl(kernelName, grid, block, args, tenant, /*blocking=*/true);
  PP_ASSERT(ticket.has_value());
  return *ticket;
}

std::optional<i64> Runtime::trySubmit(const std::string& kernelName,
                                      const Dim3& grid, const Dim3& block,
                                      std::span<const LaunchArg> args,
                                      TenantId tenant) {
  return submitImpl(kernelName, grid, block, args, tenant, /*blocking=*/false);
}

void Runtime::launch(const std::string& kernelName, const Dim3& grid,
                     const Dim3& block, std::span<const LaunchArg> args,
                     TenantId tenant) {
  wait(submit(kernelName, grid, block, args, tenant));
}

void Runtime::wait(i64 ticket) {
  if (!pipelined()) return;  // serial tickets are retired at submit
  pipeline_->epochs.waitFor(ticket);
  rethrowPipelineError();
}

void Runtime::drain() {
  if (!pipelined()) return;
  pipeline_->epochs.waitIdle();
  rethrowPipelineError();
}

bool Runtime::pipelineIdle() const {
  return pipeline_ == nullptr || pipeline_->epochs.idle();
}

TenantStats Runtime::tenantStats(TenantId tenant) {
  PP_ASSERT_MSG(tenant >= 0 && tenant < config_.numTenants,
                "stats for unknown tenant");
  drain();
  std::lock_guard<std::mutex> lock(tenantMutex_);
  return tenants_[static_cast<std::size_t>(tenant)].stats;
}

void Runtime::setCommitObserver(std::function<void(i64, TenantId)> fn) {
  PP_ASSERT_MSG(pipelineIdle(),
                "commit observer may only change while the pipeline is idle");
  commitObserver_ = std::move(fn);
}

void Runtime::rethrowPipelineError() {
  if (pipeline_ == nullptr ||
      !pipeline_->failed.load(std::memory_order_acquire))
    return;
  std::lock_guard<std::mutex> lock(pipeline_->errorMutex);
  if (pipeline_->error != nullptr) {
    std::exception_ptr first = std::exchange(pipeline_->error, nullptr);
    std::rethrow_exception(first);
  }
  // The original failure was already delivered to some caller; everything
  // after it sees the pipeline as poisoned.
  throw Error("launch pipeline poisoned by an earlier failure");
}

RuntimeStats Runtime::statsSnapshot() const {
  std::lock_guard<std::mutex> lock(statsMutex_);
  return stats_;
}

void Runtime::pipelineLoop() {
  if (config_.tracer != nullptr)
    config_.tracer->nameCurrentThread("pipeline engine");
  while (std::optional<PendingLaunch> pl = pipeline_->queue.pop()) {
    const i64 epoch = pl->epoch;
    const TenantId tenant = pl->tenant;
    if (commitObserver_) commitObserver_(epoch, tenant);
    // A poisoned pipeline stops touching machine/tracker state, but epochs
    // still retire and in-flight counts still drop so no waiter hangs.
    if (!pipeline_->failed.load(std::memory_order_acquire)) {
      try {
        commitLaunch(*pl);
      } catch (...) {
        {
          std::lock_guard<std::mutex> lock(pipeline_->errorMutex);
          pipeline_->error = std::current_exception();
        }
        pipeline_->failed.store(true, std::memory_order_release);
      }
    }
    {
      std::lock_guard<std::mutex> lock(tenantMutex_);
      TenantState& ts = tenants_[static_cast<std::size_t>(tenant)];
      --ts.inFlight;
      trace::tenantCounter(config_.tracer, tenant, "runtime", "in-flight",
                           ts.inFlight);
    }
    admissionCv_.notify_all();
    trace::tenantInstant(config_.tracer, tenant, "runtime", "commit",
                         {{"epoch", epoch}});
    pipeline_->epochs.commit(epoch);
  }
}

}  // namespace polypart::rt
