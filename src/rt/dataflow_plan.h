#pragma once

// Cross-launch dataflow planner (extension; see DESIGN.md "Cross-launch
// dataflow planning").
//
// The paper's runtime is purely reactive: every launch queries the segment
// trackers for its read set and copies whatever is stale *at that moment*,
// bracketed by global barriers (Fig. 4).  Steady-state iterative
// applications, however, replay a fixed launch sequence — the same property
// the enumeration cache exploits — so the inter-launch data flow is known
// before the consumer ever launches.  The planner
//   1. records launch signatures (kernel, grid, block, i64 scalars, buffer
//      identities) and detects the smallest repeating cycle,
//   2. composes each producer partition's concrete write set with every
//      downstream consumer partition's concrete read set in `pset`
//      (Map::rangeUnderBox + intersection) to derive the exact per-device
//      flow sets of one cycle,
//   3. subtracts ranges overwritten before their next read (dead-transfer
//      elision, a Set::subtract of the accumulated kill set), and
//   4. emits per-cycle-step FlowEdges whose copies the runtime issues
//      *eagerly* — floored at the producing kernel's modeled completion on
//      its device — instead of waiting for the consumer's launch.
//
// The planner never becomes the source of truth: the runtime clips every
// planned range against the live tracker before copying, records the
// prefetched replicas as sharers, and the reactive resolution still runs at
// the consumer (skipping exactly the segments whose sharer bit proves the
// prefetch landed).  Any divergence — a launch off the recorded cycle, a
// host write, a mispredicted owner — degrades to the paper's reactive path,
// so functional results are byte-identical with planning on or off.

#include <array>
#include <cstddef>
#include <functional>
#include <vector>

#include "analysis/model.h"
#include "ir/interp.h"
#include "ir/transform.h"

namespace polypart::rt {

class VirtualBuffer;

/// One planned copy: element ranges (already scaled to byte ranges) that
/// flow from device `src`'s instance to device `dst`'s instance.
struct PlannedTransfer {
  int src = -1;
  int dst = -1;
  std::vector<std::pair<i64, i64>> byteRanges;  // half-open, merged, sorted
};

/// The live bytes flowing out of one producer step's writes to one argument
/// into one downstream consumer step's reads, after dead-transfer elision.
struct FlowEdge {
  std::size_t producerStep = 0;  // cycle position that writes the bytes
  std::size_t consumerStep = 0;  // cycle position that reads them next
  std::size_t argIndex = 0;      // producer-launch argument carrying the buffer
  /// Bytes the elision proved dead (overwritten before `consumerStep` reads
  /// them): the reactive path would have copied them, the plan does not.
  i64 elidedBytes = 0;
  std::vector<PlannedTransfer> transfers;
};

/// Sequence recorder + flow-set compiler.  Single-threaded: the runtime only
/// calls it from the launch-commit path (the engine thread in pipelined
/// mode, the calling thread otherwise), which is serial by construction.
class DataflowPlanner {
 public:
  /// Partition oracle: the runtime's partitionFor (kept as a callback so the
  /// planner does not depend on the Runtime type).
  using PartitionFn = std::function<ir::GridPartition(
      const analysis::KernelModel&, const ir::Dim3&, int)>;

  DataflowPlanner(int numGpus, i64 elemBytes, PartitionFn partitionFor);
  ~DataflowPlanner();

  /// What observe() decided for one committed launch.
  struct Observation {
    bool planned = false;    // launch matched the active plan at `step`
    bool activated = false;  // a cycle was detected and its plan compiled
    bool diverged = false;   // an active plan was abandoned at this launch
    std::size_t step = 0;    // cycle position when `planned`
  };

  /// Feeds one committed launch through the recorder/matcher.  Must be
  /// called for every launch, in commit (epoch) order.
  Observation observe(const analysis::KernelModel& model,
                      const void* kernelTag, const ir::LaunchConfig& cfg,
                      std::span<VirtualBuffer* const> buffers,
                      std::span<const i64> scalars);

  /// The flow edges whose producer is cycle position `step` of the active
  /// plan.  Valid only while a plan is active (between an activated and the
  /// next diverged observation).
  const std::vector<FlowEdge>& edgesFor(std::size_t step) const;

  bool active() const { return active_; }
  std::size_t period() const { return cycle_.size(); }

  /// Drops the active plan and the recorded history (buffer identities may
  /// have been invalidated, e.g. by free()).
  void reset();

 private:
  struct Step {
    const analysis::KernelModel* model = nullptr;
    const void* kernelTag = nullptr;
    ir::Dim3 grid;
    ir::Dim3 block;
    std::vector<i64> scalars;
    std::vector<VirtualBuffer*> buffers;  // per launch arg; null for scalars

    bool matches(const Step& o) const;
  };

  Step makeStep(const analysis::KernelModel& model, const void* kernelTag,
                const ir::LaunchConfig& cfg,
                std::span<VirtualBuffer* const> buffers,
                std::span<const i64> scalars) const;
  /// Smallest period p <= kMaxPeriod whose last 2p history entries form two
  /// equal halves, or 0 when none does.
  std::size_t detectPeriod() const;
  /// Compiles the flow edges of `cycle_` (positions the edges by producer
  /// step into edgesByStep_).  Returns false when nothing in the cycle can
  /// be planned (e.g. instrumented writes) — the plan is not activated.
  bool compilePlan();

  static constexpr std::size_t kMaxPeriod = 8;
  static constexpr std::size_t kMaxHistory = 64;
  /// Flattened-range explosion guard per edge: an edge whose live flow set
  /// scans to more ranges than this is dropped (no prefetch — the reactive
  /// path still moves the bytes).
  static constexpr std::size_t kMaxRangesPerEdge = 65536;

  int numGpus_ = 1;
  i64 elemBytes_ = 8;
  PartitionFn partitionFor_;

  std::vector<Step> history_;  // recording mode; cleared on activation
  std::vector<Step> cycle_;    // active plan's launch cycle
  std::vector<std::vector<FlowEdge>> edgesByStep_;
  std::size_t pos_ = 0;  // next expected cycle position while active
  bool active_ = false;
};

}  // namespace polypart::rt
