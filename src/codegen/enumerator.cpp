#include "codegen/enumerator.h"

#include <algorithm>
#include <atomic>
#include <deque>
#include <limits>
#include <mutex>
#include <unordered_map>

#include "support/str.h"

namespace polypart::codegen {

using analysis::ArrayModel;
using analysis::KernelModel;
using pset::AstExpr;
using pset::BasicSet;
using pset::Constraint;
using pset::DimId;
using pset::DimKind;
using pset::LinExpr;
using pset::ScanNest;
using pset::Space;

PartitionTuple PartitionTuple::fromBlocks(const ir::GridPartition& p,
                                          const ir::Dim3& blockDim) {
  PartitionTuple t;
  const i64 bidLo[3] = {p.lo.x, p.lo.y, p.lo.z};
  const i64 bidHi[3] = {p.hi.x, p.hi.y, p.hi.z};
  const i64 bd[3] = {blockDim.x, blockDim.y, blockDim.z};
  for (int a = 0; a < 3; ++a) {
    // blockOff = blockIdx * blockDim (Eq. 6).  The box must span exactly the
    // blockOff values of blocks inside the partition, so the (exclusive)
    // upper bound is the *last* block's blockOff plus one — using
    // bidHi*blockDim would admit phantom offsets up to a full block past the
    // partition edge and inflate the enumerated ranges.
    t.lo[static_cast<std::size_t>(a)] = checkedMul(bidLo[a], bd[a]);
    t.hi[static_cast<std::size_t>(a)] =
        checkedAdd(checkedMul(bidHi[a] - 1, bd[a]), 1);
    t.lo[static_cast<std::size_t>(3 + a)] = bidLo[a];
    t.hi[static_cast<std::size_t>(3 + a)] = bidHi[a];
  }
  return t;
}

EnumerationKey EnumerationKey::of(const PartitionTuple& partition,
                                  const ir::LaunchConfig& cfg,
                                  std::span<const i64> scalars) {
  EnumerationKey k;
  k.words.reserve(18 + scalars.size());
  k.words.insert(k.words.end(), {cfg.block.x, cfg.block.y, cfg.block.z,
                                 cfg.grid.x, cfg.grid.y, cfg.grid.z});
  k.words.insert(k.words.end(), scalars.begin(), scalars.end());
  k.words.insert(k.words.end(), partition.lo.begin(), partition.lo.end());
  k.words.insert(k.words.end(), partition.hi.begin(), partition.hi.end());
  return k;
}

std::size_t EnumerationKeyHash::operator()(std::span<const i64> words) const {
  u64 h = 1469598103934665603ull;
  for (i64 w : words) {
    h ^= static_cast<u64>(w);
    h *= 1099511628211ull;
  }
  return static_cast<std::size_t>(h);
}

namespace {

std::vector<std::string> partitionParamNames() {
  std::vector<std::string> names;
  for (const char* base : {"boxLo", "boyLo", "bozLo", "bxLo", "byLo", "bzLo",
                           "boxHi", "boyHi", "bozHi", "bxHi", "byHi", "bzHi"})
    names.push_back(base);
  return names;
}

/// Transparent key equality for the specialized-program cache: a stored
/// EnumerationKey and a raw parameter span compare word-for-word (the
/// parameter vector is the key words in ABI order).
struct SpecKeyEq {
  using is_transparent = void;
  static std::span<const i64> words(const EnumerationKey& k) { return k.words; }
  static std::span<const i64> words(std::span<const i64> s) { return s; }
  template <typename A, typename B>
  bool operator()(const A& a, const B& b) const {
    std::span<const i64> x = words(a), y = words(b);
    return x.size() == y.size() && std::equal(x.begin(), x.end(), y.begin());
  }
};

}  // namespace

/// Specialized-tier program cache: folded programs keyed exactly like the
/// runtime's enumeration cache (the parameter vector *is* the key words in
/// ABI order), FIFO-bounded, shared across Enumerator copies.
struct Enumerator::SpecCache {
  static constexpr std::size_t kMaxPrograms = 64;
  std::mutex mu;
  std::unordered_map<EnumerationKey, std::shared_ptr<const bc::Program>,
                     EnumerationKeyHash, SpecKeyEq>
      map;
  std::deque<EnumerationKey> order;
  // Observational counters (see specCacheCounters()); relaxed atomics so the
  // Interpret/Bytecode tiers pay nothing and Specialized pays one increment.
  std::atomic<i64> hits{0};
  std::atomic<i64> misses{0};
  std::atomic<i64> evictions{0};
};

Enumerator::SpecCacheCounters Enumerator::specCacheCounters() const {
  const SpecCache& c = *specCache_;
  return {c.hits.load(std::memory_order_relaxed),
          c.misses.load(std::memory_order_relaxed),
          c.evictions.load(std::memory_order_relaxed)};
}

Enumerator::Enumerator(const KernelModel& model, const ArrayModel& array,
                       bool isWrite)
    : argIndex_(array.argIndex), isWrite_(isWrite), rank_(array.rank()) {
  name_ = model.kernel + "_arg" + std::to_string(array.argIndex) +
          (isWrite ? "_write" : "_read");

  const pset::Map& accessMap = isWrite ? array.write : array.read;
  exact_ = accessMap.exact();

  Space paramSpace = model.paramSpace();
  numModelParams_ = paramSpace.numParams();
  shapeRows_ = array.shape;

  // Extended space: model params followed by the 12 partition parameters.
  std::vector<std::string> partNames = partitionParamNames();
  Space extMapSpace = accessMap.space().addParams(partNames);
  paramNames_ = extMapSpace.paramNames();

  // Partition box constraints: pLo_i <= in_i < pHi_i for the six inputs.
  BasicSet box(extMapSpace);
  for (std::size_t i = 0; i < 6; ++i) {
    LinExpr in = LinExpr::dim(extMapSpace, DimId::in(i));
    LinExpr lo = LinExpr::dim(extMapSpace, DimId::param(numModelParams_ + i));
    LinExpr hi = LinExpr::dim(extMapSpace, DimId::param(numModelParams_ + 6 + i));
    box.addGe(in - lo);
    box.addGe(hi - in + LinExpr::constant(extMapSpace, -1));
  }

  Space scanSpace = Space::set(extMapSpace.paramNames(), extMapSpace.outNames());
  for (const BasicSet& part : accessMap.parts()) {
    BasicSet constrained = part.alignToSpace(extMapSpace).intersect(box);
    // Project the six thread-grid inputs away; the image over the array
    // dimensions is what the partition accesses (Section 6).
    pset::Proj p = constrained.projectOut(DimKind::In, 0, 6);
    if (!p.exact) exact_ = false;
    p.set.simplify();
    if (p.set.markedEmpty()) continue;
    // Rebuild over a set space whose input dims are the array dims (same
    // column layout, so rows carry over unchanged).
    BasicSet scanSet(scanSpace);
    for (const Constraint& c : p.set.constraints()) scanSet.add(c);
    nests_.push_back(pset::buildScan(scanSet));
  }

  if (isWrite_ && !exact_)
    throw UnsupportedKernelError(
        "enumerator '" + name_ +
        "': write ranges would be over-approximated; the tracker update "
        "must be accurate (paper Section 4.1)");

  // Multi-disjunct read maps are enumerated through a *rectangular hull* at
  // run time (see enumerate()): per level the minimum of the live disjuncts'
  // lower bounds and the maximum of their uppers.  The hull covers every
  // disjunct, which is a sound over-approximation for reads (Section 4.1),
  // and usually collapses a stencil's five access disjuncts into one convex
  // nest that full-row coalescing then walks in O(1).
  if (!isWrite_ && nests_.size() > 1) {
    bool sameRank = true;
    for (const ScanNest& n : nests_)
      if (n.levels.size() != rank_) sameRank = false;
    hullable_ = sameRank;
    if (hullable_) exact_ = false;
  }

  // Compile the bytecode tier once per enumerator; copies share the program
  // and the specialized-program cache (both are reached through shared_ptr
  // and the cache is internally synchronized).
  program_ = std::make_shared<const bc::Program>(bc::compile(nests_));
  specCache_ = std::make_shared<SpecCache>();
}

std::shared_ptr<const bc::Program> Enumerator::specializedFor(
    const PartitionTuple& partition, const ir::LaunchConfig& cfg,
    std::span<const i64> scalars, std::span<const i64> params) const {
  SpecCache& cache = *specCache_;
  {
    // Heterogeneous probe: `params` already holds the key words in ABI
    // order, so the hit path hashes the span in place — no key vector is
    // built or copied on the fast path.
    std::lock_guard<std::mutex> lock(cache.mu);
    auto it = cache.map.find(params);
    if (it != cache.map.end()) {
      cache.hits.fetch_add(1, std::memory_order_relaxed);
      return it->second;
    }
  }
  cache.misses.fetch_add(1, std::memory_order_relaxed);
  // Fold outside the lock; racing misses on one key specialize twice and the
  // first insert wins (the fold is pure, so both programs are equivalent).
  auto fresh =
      std::make_shared<const bc::Program>(bc::specialize(*program_, params));
  EnumerationKey key;
  key.words.assign(params.begin(), params.end());
  PP_ASSERT_MSG(key == EnumerationKey::of(partition, cfg, scalars),
                "buildParams diverged from the enumeration-key ABI");
  std::lock_guard<std::mutex> lock(cache.mu);
  auto [it, inserted] = cache.map.try_emplace(std::move(key), std::move(fresh));
  if (inserted) {
    cache.order.push_back(it->first);
    while (cache.order.size() > SpecCache::kMaxPrograms) {
      cache.map.erase(cache.order.front());
      cache.order.pop_front();
      cache.evictions.fetch_add(1, std::memory_order_relaxed);
    }
  }
  return it->second;
}

Enumerator::ParamVec Enumerator::buildParams(const PartitionTuple& partition,
                                             const ir::LaunchConfig& cfg,
                                             std::span<const i64> scalars) const {
  PP_ASSERT_MSG(6 + scalars.size() == numModelParams_,
                "scalar argument count does not match the model");
  ParamVec params;
  for (i64 v : {cfg.block.x, cfg.block.y, cfg.block.z,
                cfg.grid.x, cfg.grid.y, cfg.grid.z})
    params.push_back(v);
  for (i64 v : scalars) params.push_back(v);
  for (i64 v : partition.lo) params.push_back(v);
  for (i64 v : partition.hi) params.push_back(v);
  return params;
}

namespace {

/// Pre-merge range scratch (std::pair is not trivially copyable, which
/// SmallVec requires); ordered like the pair it replaces.
struct FlatRange {
  i64 begin, end;
  auto operator<=>(const FlatRange&) const = default;
};

/// Evaluator policy for the interpreter tier: bounds come from the
/// pset::AstExpr trees (paper mode).
struct AstEval {
  std::span<const ScanNest* const> nests;
  std::span<const i64> params;

  std::size_t numLevels() const { return nests[0]->levels.size(); }
  std::size_t numNests() const { return nests.size(); }
  i64 lower(std::size_t n, std::size_t level, std::span<const i64> coords) const {
    return nests[n]->levels[level].lower.eval(params, coords);
  }
  i64 upper(std::size_t n, std::size_t level, std::span<const i64> coords) const {
    return nests[n]->levels[level].upper.eval(params, coords);
  }
  bool boundsIndependent(std::size_t level, std::size_t ofLevel) const {
    for (const ScanNest* n : nests)
      if (!n->levels[level].lower.independentOfLoopsFrom(ofLevel) ||
          !n->levels[level].upper.independentOfLoopsFrom(ofLevel))
        return false;
    return true;
  }
};

/// Evaluator policy for the bytecode VM; the specialized tier uses it too
/// with the folded program (whose loop-dependence metadata is copied from
/// the unspecialized code, so coalescing decisions are tier-invariant).
struct VmEval {
  const bc::Program& prog;
  std::span<const bc::CompiledNest* const> nests;
  std::span<const i64> params;
  i64* regs;

  std::size_t numLevels() const { return nests[0]->levels.size(); }
  std::size_t numNests() const { return nests.size(); }
  i64 lower(std::size_t n, std::size_t level, std::span<const i64> coords) const {
    return prog.eval(nests[n]->levels[level].lower, params, coords, regs);
  }
  i64 upper(std::size_t n, std::size_t level, std::span<const i64> coords) const {
    return prog.eval(nests[n]->levels[level].upper, params, coords, regs);
  }
  bool boundsIndependent(std::size_t level, std::size_t ofLevel) const {
    for (const bc::CompiledNest* n : nests)
      if (!n->levels[level].lower.independentOfLoopsFrom(ofLevel) ||
          !n->levels[level].upper.independentOfLoopsFrom(ofLevel))
        return false;
    return true;
  }
};

/// Emits the flattened ranges of one nest — or, with several nests, of
/// their rectangular hull (per-level min of lowers / max of uppers, a sound
/// cover of the union used for read maps only).  Templated over the bound
/// evaluator so every tier shares one control flow (identical coalescing
/// decisions, identical emission order, identical work accounting) and over
/// the emit callback so the per-row collector call inlines instead of going
/// through std::function.
template <typename Eval, typename EmitFn>
struct EmitCtx {
  const Eval& ev;
  std::span<const i64> strides;  // per level; strides[last] == 1
  std::span<const i64> dims;     // extent per level; <= 0 when unknown
  bool coalesce;
  const EmitFn& emit;
  support::SmallVec<i64, 8> coords;
  i64 logicalRows = 0;

  /// True when every level below `level` has bounds independent of loop
  /// variables >= `level` and spans its full extent: the tail then flattens
  /// into one contiguous run of strides[level] elements per iteration.
  std::size_t numLevels() const { return ev.numLevels(); }

  std::span<const i64> coordSpan() const {
    return {coords.data(), coords.size()};
  }

  i64 lowerAt(std::size_t level) const {
    std::span<const i64> c = coordSpan();
    i64 v = ev.lower(0, level, c);
    for (std::size_t i = 1; i < ev.numNests(); ++i)
      v = std::min(v, ev.lower(i, level, c));
    return v;
  }

  i64 upperAt(std::size_t level) const {
    std::span<const i64> c = coordSpan();
    i64 v = ev.upper(0, level, c);
    for (std::size_t i = 1; i < ev.numNests(); ++i)
      v = std::max(v, ev.upper(i, level, c));
    return v;
  }

  bool boundsIndependent(std::size_t level, std::size_t ofLevel) const {
    return ev.boundsIndependent(level, ofLevel);
  }

  bool tailIsFullRows(std::size_t level) {
    for (std::size_t j = level + 1; j < numLevels(); ++j) {
      if (dims[j] <= 0) return false;
      if (!boundsIndependent(j, level)) return false;
      if (lowerAt(j) != 0) return false;
      if (upperAt(j) != dims[j] - 1) return false;
    }
    return true;
  }

  void run(std::size_t level, i64 base) {
    i64 lo = lowerAt(level);
    i64 hi = upperAt(level);
    if (lo > hi) return;
    if (level + 1 == numLevels()) {
      ++logicalRows;
      emit(checkedAdd(base, lo), checkedAdd(base, hi + 1));
      return;
    }
    if (coalesce && tailIsFullRows(level)) {
      // Rows lo..hi are contiguous in row-major order: one range.  The
      // uncoalesced scheme would have walked every row below this level.
      i64 rows = hi - lo + 1;
      for (std::size_t j = level + 1; j + 1 < numLevels(); ++j)
        rows = checkedMul(rows, dims[j]);
      logicalRows += rows;
      emit(checkedAdd(base, checkedMul(lo, strides[level])),
           checkedAdd(base, checkedMul(hi + 1, strides[level])));
      return;
    }
    // Uniform tail: the innermost bounds do not depend on this loop
    // variable, so evaluate them once and emit the per-row ranges with pure
    // integer arithmetic (no AST re-evaluation per row).
    if (coalesce && level + 2 == numLevels() && boundsIndependent(level + 1, level)) {
      i64 ilo = lowerAt(level + 1);
      i64 ihi = upperAt(level + 1);
      if (ilo > ihi) return;
      logicalRows += hi - lo + 1;
      for (i64 v = lo; v <= hi; ++v) {
        i64 rowBase = checkedAdd(base, checkedMul(v, strides[level]));
        emit(rowBase + ilo, rowBase + ihi + 1);
      }
      return;
    }
    coords.push_back(lo);
    for (i64 v = lo; v <= hi; ++v) {
      coords.back() = v;
      run(level + 1, checkedAdd(base, checkedMul(v, strides[level])));
    }
    coords.pop_back();
  }
};

}  // namespace

void Enumerator::enumerate(const PartitionTuple& partition,
                           const ir::LaunchConfig& cfg,
                           std::span<const i64> scalars, const RangeFn& emit,
                           EnumInfo* info) const {
  ParamVec params = buildParams(partition, cfg, scalars);
  const std::span<const i64> pspan(params.data(), params.size());

  // Evaluate the array extents and row-major strides.
  support::SmallVec<i64, 4> dims(rank_, -1);
  for (std::size_t i = 0; i < shapeRows_.size(); ++i) {
    i64 acc = shapeRows_[i].constantTerm();
    for (std::size_t p = 0; p < numModelParams_; ++p)
      acc = checkedAdd(acc, checkedMul(shapeRows_[i][p + 1], params[p]));
    dims[i] = acc;
  }
  support::SmallVec<i64, 4> strides(rank_, 1);
  for (std::size_t i = rank_ - 1; i-- > 0;) {
    PP_ASSERT_MSG(dims[i + 1] > 0, "multi-dimensional array with unknown extent");
    strides[i] = checkedMul(strides[i + 1], dims[i + 1]);
  }

  // Collect ranges from every live disjunct, then sort and merge: disjuncts
  // of a union map overlap (a stencil reads the same centre row five times),
  // and merging keeps both transfer volume and tracker updates minimal.
  support::SmallVec<FlatRange, 16> ranges;
  auto collect = [&](i64 b, i64 e) {
    if (b < e) ranges.push_back({b, e});
  };
  i64 logicalRows = 0;
  support::SmallVec<std::size_t, 8> runEnds;  // ranges.size() after each nest

  auto emitWith = [&](const auto& ev) {
    EmitCtx<std::decay_t<decltype(ev)>, decltype(collect)> ctx{
        ev, {strides.data(), strides.size()}, {dims.data(), dims.size()},
        coalesce, collect, {}, 0};
    ctx.run(0, 0);
    logicalRows += ctx.logicalRows;
    if (ranges.size() > (runEnds.empty() ? 0 : runEnds.back()))
      runEnds.push_back(ranges.size());
  };

  if (tier == EnumTier::Interpret) {
    support::SmallVec<const ScanNest*, 8> live;
    for (const ScanNest& nest : nests_) {
      bool ok = true;
      // Guards short-circuit in order; later guards of a dead nest are
      // never evaluated (the tiers preserve this, including its lazy
      // overflow behaviour).
      for (const AstExpr& g : nest.guards)
        if (g.eval(pspan, {}) < 0) {
          ok = false;
          break;
        }
      if (ok) live.push_back(&nest);
    }
    if (coalesce && hullable_ && live.size() > 1) {
      // Rectangular hull over the live disjuncts (reads only).
      emitWith(AstEval{{live.data(), live.size()}, pspan});
    } else {
      for (const ScanNest* nest : live)
        emitWith(AstEval{std::span<const ScanNest* const>(&nest, 1), pspan});
    }
  } else {
    std::shared_ptr<const bc::Program> specialized;
    const bc::Program* prog = program_.get();
    if (tier == EnumTier::Specialized) {
      specialized = specializedFor(partition, cfg, scalars, pspan);
      prog = specialized.get();
    }
    // Register scratch lives on the stack for every program this system
    // compiles (file size = deepest single expression); the heap fallback
    // keeps pathological expressions correct.
    constexpr std::size_t kInlineRegs = 64;
    i64 regsInline[kInlineRegs];
    std::vector<i64> regsHeap;
    i64* regs = regsInline;
    if (prog->numRegs > kInlineRegs) {
      regsHeap.resize(prog->numRegs);
      regs = regsHeap.data();
    }
    support::SmallVec<const bc::CompiledNest*, 8> live;
    for (const bc::CompiledNest& nest : prog->nests) {
      bool ok = true;
      for (const bc::CompiledExpr& g : nest.guards)
        if (prog->eval(g, pspan, {}, regs) < 0) {
          ok = false;
          break;
        }
      if (ok) live.push_back(&nest);
    }
    if (coalesce && hullable_ && live.size() > 1) {
      emitWith(VmEval{*prog, {live.data(), live.size()}, pspan, regs});
    } else {
      for (const bc::CompiledNest* nest : live)
        emitWith(VmEval{*prog,
                        std::span<const bc::CompiledNest* const>(&nest, 1),
                        pspan, regs});
    }
  }

  // Establish sorted order.  Every nest walks its loops in increasing order,
  // so the scratch is a concatenation of sorted runs (one per emitWith call)
  // and merging the runs pairwise is O(n·k), not the O(n log n) a full sort
  // of the interleaved per-row ranges costs — on a stencil write this is the
  // single largest slice of enumeration time.  Both produce the same sorted
  // permutation, so the merge loop below sees identical input either way;
  // a run that is ever not ascending falls back to the full sort.
  bool sortedRuns = true;
  for (std::size_t r = 0, prev = 0; r < runEnds.size(); prev = runEnds[r++])
    if (!std::is_sorted(ranges.begin() + prev, ranges.begin() + runEnds[r])) {
      sortedRuns = false;
      break;
    }
  if (!sortedRuns) {
    std::sort(ranges.begin(), ranges.end());
  } else {
    for (std::size_t r = 1; r < runEnds.size(); ++r) {
      std::size_t sortedTo = runEnds[r - 1];
      if (ranges[sortedTo] < ranges[sortedTo - 1])
        std::inplace_merge(ranges.begin(), ranges.begin() + sortedTo,
                           ranges.begin() + runEnds[r]);
    }
  }
  i64 pendBegin = 0, pendEnd = -1;
  i64 emitted = 0;
  bool pending = false;
  for (const auto& [b, e] : ranges) {
    if (pending && b <= pendEnd) {
      pendEnd = std::max(pendEnd, e);
      continue;
    }
    if (pending) {
      emit(pendBegin, pendEnd);
      ++emitted;
    }
    pendBegin = b;
    pendEnd = e;
    pending = true;
  }
  if (pending) {
    emit(pendBegin, pendEnd);
    ++emitted;
  }
  if (info) {
    info->ranges += emitted;
    info->logicalRows += logicalRows;
  }
}

MaterializedRanges Enumerator::materialize(const PartitionTuple& partition,
                                           const ir::LaunchConfig& cfg,
                                           std::span<const i64> scalars) const {
  MaterializedRanges out;
  enumerate(partition, cfg, scalars,
            [&](i64 b, i64 e) { out.ranges.emplace_back(b, e); }, &out.info);
  return out;
}

i64 Enumerator::countElements(const PartitionTuple& partition,
                              const ir::LaunchConfig& cfg,
                              std::span<const i64> scalars) const {
  // Accumulate in 128-bit arithmetic.  The emitted ranges are merged and
  // clipped to the declared array shape, so the sum fits in i64 only by a
  // global argument (disjoint subranges of [0, 2^63) sum below 2^63); the
  // old code banked on that argument with an unchecked `e - b` subtraction.
  // Counting in 128 bits makes the invariant checkable instead of assumed,
  // and any future unclipped access path (or a hull over one) gets a
  // diagnosable error rather than a silently wrapped count.
  using i128 = __int128;
  i128 total = 0;
  enumerate(partition, cfg, scalars, [&](i64 b, i64 e) {
    total += static_cast<i128>(e) - static_cast<i128>(b);
  });
  if (total > static_cast<i128>(std::numeric_limits<i64>::max()))
    throw OverflowError(
        "enumerator '" + name_ +
        "': total element count exceeds the 64-bit range (grid extent times "
        "halo depth is too large to account); partition box and launch "
        "configuration produce an unrepresentable access-set size");
  return static_cast<i64>(total);
}

std::string Enumerator::emitC() const {
  std::string out;
  out += "// Generated by polypart codegen (paper Section 6.2).\n";
  out += "// Inputs are passed as arrays of 64-bit integers; the callback is\n";
  out += "// invoked once per element range to avoid dynamic allocation.\n";
  out += "void " + name_ +
         "(const int64_t* partition, const int64_t* launch,\n"
         "    const int64_t* scalars, void* ctx, polypart_range_cb cb) {\n";
  // Parameter unpacking.
  for (std::size_t i = 0; i < paramNames_.size(); ++i) {
    std::string src;
    if (i < 6) {
      src = "launch[" + std::to_string(i) + "]";
    } else if (i < numModelParams_) {
      src = "scalars[" + std::to_string(i - 6) + "]";
    } else {
      src = "partition[" + std::to_string(i - numModelParams_) + "]";
    }
    out += "  const int64_t " + paramNames_[i] + " = " + src + ";\n";
  }
  for (std::size_t d = 0; d < nests_.size(); ++d) {
    out += "  // Disjunct " + std::to_string(d) + "\n";
    std::string body = pset::scanToC(nests_[d], paramNames_, "cb");
    // Indent the generated nest.
    std::size_t pos = 0;
    while (pos < body.size()) {
      std::size_t nl = body.find('\n', pos);
      if (nl == std::string::npos) nl = body.size();
      out += "  " + body.substr(pos, nl - pos) + "\n";
      pos = nl + 1;
    }
  }
  out += "}\n";
  return out;
}

std::vector<Enumerator> buildEnumerators(const KernelModel& model) {
  std::vector<Enumerator> out;
  for (const ArrayModel& a : model.arrays) {
    if (a.hasReads()) out.emplace_back(model, a, /*isWrite=*/false);
    if (a.hasWrites()) out.emplace_back(model, a, /*isWrite=*/true);
  }
  return out;
}

}  // namespace polypart::codegen
