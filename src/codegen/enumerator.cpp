#include "codegen/enumerator.h"

#include <algorithm>

#include "support/str.h"

namespace polypart::codegen {

using analysis::ArrayModel;
using analysis::KernelModel;
using pset::AstExpr;
using pset::BasicSet;
using pset::Constraint;
using pset::DimId;
using pset::DimKind;
using pset::LinExpr;
using pset::ScanNest;
using pset::Space;

PartitionTuple PartitionTuple::fromBlocks(const ir::GridPartition& p,
                                          const ir::Dim3& blockDim) {
  PartitionTuple t;
  const i64 bidLo[3] = {p.lo.x, p.lo.y, p.lo.z};
  const i64 bidHi[3] = {p.hi.x, p.hi.y, p.hi.z};
  const i64 bd[3] = {blockDim.x, blockDim.y, blockDim.z};
  for (int a = 0; a < 3; ++a) {
    // blockOff = blockIdx * blockDim (Eq. 6).  The box must span exactly the
    // blockOff values of blocks inside the partition, so the (exclusive)
    // upper bound is the *last* block's blockOff plus one — using
    // bidHi*blockDim would admit phantom offsets up to a full block past the
    // partition edge and inflate the enumerated ranges.
    t.lo[static_cast<std::size_t>(a)] = checkedMul(bidLo[a], bd[a]);
    t.hi[static_cast<std::size_t>(a)] =
        checkedAdd(checkedMul(bidHi[a] - 1, bd[a]), 1);
    t.lo[static_cast<std::size_t>(3 + a)] = bidLo[a];
    t.hi[static_cast<std::size_t>(3 + a)] = bidHi[a];
  }
  return t;
}

EnumerationKey EnumerationKey::of(const PartitionTuple& partition,
                                  const ir::LaunchConfig& cfg,
                                  std::span<const i64> scalars) {
  EnumerationKey k;
  k.words.reserve(18 + scalars.size());
  k.words.insert(k.words.end(), {cfg.block.x, cfg.block.y, cfg.block.z,
                                 cfg.grid.x, cfg.grid.y, cfg.grid.z});
  k.words.insert(k.words.end(), scalars.begin(), scalars.end());
  k.words.insert(k.words.end(), partition.lo.begin(), partition.lo.end());
  k.words.insert(k.words.end(), partition.hi.begin(), partition.hi.end());
  return k;
}

std::size_t EnumerationKeyHash::operator()(const EnumerationKey& k) const {
  u64 h = 1469598103934665603ull;
  for (i64 w : k.words) {
    h ^= static_cast<u64>(w);
    h *= 1099511628211ull;
  }
  return static_cast<std::size_t>(h);
}

namespace {

std::vector<std::string> partitionParamNames() {
  std::vector<std::string> names;
  for (const char* base : {"boxLo", "boyLo", "bozLo", "bxLo", "byLo", "bzLo",
                           "boxHi", "boyHi", "bozHi", "bxHi", "byHi", "bzHi"})
    names.push_back(base);
  return names;
}

}  // namespace

Enumerator::Enumerator(const KernelModel& model, const ArrayModel& array,
                       bool isWrite)
    : argIndex_(array.argIndex), isWrite_(isWrite), rank_(array.rank()) {
  name_ = model.kernel + "_arg" + std::to_string(array.argIndex) +
          (isWrite ? "_write" : "_read");

  const pset::Map& accessMap = isWrite ? array.write : array.read;
  exact_ = accessMap.exact();

  Space paramSpace = model.paramSpace();
  numModelParams_ = paramSpace.numParams();
  shapeRows_ = array.shape;

  // Extended space: model params followed by the 12 partition parameters.
  std::vector<std::string> partNames = partitionParamNames();
  Space extMapSpace = accessMap.space().addParams(partNames);
  paramNames_ = extMapSpace.paramNames();

  // Partition box constraints: pLo_i <= in_i < pHi_i for the six inputs.
  BasicSet box(extMapSpace);
  for (std::size_t i = 0; i < 6; ++i) {
    LinExpr in = LinExpr::dim(extMapSpace, DimId::in(i));
    LinExpr lo = LinExpr::dim(extMapSpace, DimId::param(numModelParams_ + i));
    LinExpr hi = LinExpr::dim(extMapSpace, DimId::param(numModelParams_ + 6 + i));
    box.addGe(in - lo);
    box.addGe(hi - in + LinExpr::constant(extMapSpace, -1));
  }

  Space scanSpace = Space::set(extMapSpace.paramNames(), extMapSpace.outNames());
  for (const BasicSet& part : accessMap.parts()) {
    BasicSet constrained = part.alignToSpace(extMapSpace).intersect(box);
    // Project the six thread-grid inputs away; the image over the array
    // dimensions is what the partition accesses (Section 6).
    pset::Proj p = constrained.projectOut(DimKind::In, 0, 6);
    if (!p.exact) exact_ = false;
    p.set.simplify();
    if (p.set.markedEmpty()) continue;
    // Rebuild over a set space whose input dims are the array dims (same
    // column layout, so rows carry over unchanged).
    BasicSet scanSet(scanSpace);
    for (const Constraint& c : p.set.constraints()) scanSet.add(c);
    nests_.push_back(pset::buildScan(scanSet));
  }

  if (isWrite_ && !exact_)
    throw UnsupportedKernelError(
        "enumerator '" + name_ +
        "': write ranges would be over-approximated; the tracker update "
        "must be accurate (paper Section 4.1)");

  // Multi-disjunct read maps are enumerated through a *rectangular hull* at
  // run time (see enumerate()): per level the minimum of the live disjuncts'
  // lower bounds and the maximum of their uppers.  The hull covers every
  // disjunct, which is a sound over-approximation for reads (Section 4.1),
  // and usually collapses a stencil's five access disjuncts into one convex
  // nest that full-row coalescing then walks in O(1).
  if (!isWrite_ && nests_.size() > 1) {
    bool sameRank = true;
    for (const ScanNest& n : nests_)
      if (n.levels.size() != rank_) sameRank = false;
    hullable_ = sameRank;
    if (hullable_) exact_ = false;
  }
}

std::vector<i64> Enumerator::buildParams(const PartitionTuple& partition,
                                         const ir::LaunchConfig& cfg,
                                         std::span<const i64> scalars) const {
  PP_ASSERT_MSG(6 + scalars.size() == numModelParams_,
                "scalar argument count does not match the model");
  std::vector<i64> params;
  params.reserve(numModelParams_ + 12);
  params.insert(params.end(), {cfg.block.x, cfg.block.y, cfg.block.z,
                               cfg.grid.x, cfg.grid.y, cfg.grid.z});
  params.insert(params.end(), scalars.begin(), scalars.end());
  params.insert(params.end(), partition.lo.begin(), partition.lo.end());
  params.insert(params.end(), partition.hi.begin(), partition.hi.end());
  return params;
}

namespace {

/// Emits the flattened ranges of one nest — or, with several nests, of
/// their rectangular hull (per-level min of lowers / max of uppers, a sound
/// cover of the union used for read maps only).
struct EmitCtx {
  std::span<const ScanNest* const> nests;
  std::span<const i64> params;
  std::span<const i64> strides;  // per level; strides[last] == 1
  std::span<const i64> dims;     // extent per level; <= 0 when unknown
  bool coalesce;
  const RangeFn& emit;
  std::vector<i64> coords;
  i64 logicalRows = 0;

  /// True when every level below `level` has bounds independent of loop
  /// variables >= `level` and spans its full extent: the tail then flattens
  /// into one contiguous run of strides[level] elements per iteration.
  std::size_t numLevels() const { return nests[0]->levels.size(); }

  i64 lowerAt(std::size_t level) const {
    i64 v = nests[0]->levels[level].lower.eval(params, coords);
    for (std::size_t i = 1; i < nests.size(); ++i)
      v = std::min(v, nests[i]->levels[level].lower.eval(params, coords));
    return v;
  }

  i64 upperAt(std::size_t level) const {
    i64 v = nests[0]->levels[level].upper.eval(params, coords);
    for (std::size_t i = 1; i < nests.size(); ++i)
      v = std::max(v, nests[i]->levels[level].upper.eval(params, coords));
    return v;
  }

  bool boundsIndependent(std::size_t level, std::size_t ofLevel) const {
    for (const ScanNest* n : nests)
      if (!n->levels[level].lower.independentOfLoopsFrom(ofLevel) ||
          !n->levels[level].upper.independentOfLoopsFrom(ofLevel))
        return false;
    return true;
  }

  bool tailIsFullRows(std::size_t level) {
    for (std::size_t j = level + 1; j < numLevels(); ++j) {
      if (dims[j] <= 0) return false;
      if (!boundsIndependent(j, level)) return false;
      if (lowerAt(j) != 0) return false;
      if (upperAt(j) != dims[j] - 1) return false;
    }
    return true;
  }

  void run(std::size_t level, i64 base) {
    i64 lo = lowerAt(level);
    i64 hi = upperAt(level);
    if (lo > hi) return;
    if (level + 1 == numLevels()) {
      ++logicalRows;
      emit(checkedAdd(base, lo), checkedAdd(base, hi + 1));
      return;
    }
    if (coalesce && tailIsFullRows(level)) {
      // Rows lo..hi are contiguous in row-major order: one range.  The
      // uncoalesced scheme would have walked every row below this level.
      i64 rows = hi - lo + 1;
      for (std::size_t j = level + 1; j + 1 < numLevels(); ++j)
        rows = checkedMul(rows, dims[j]);
      logicalRows += rows;
      emit(checkedAdd(base, checkedMul(lo, strides[level])),
           checkedAdd(base, checkedMul(hi + 1, strides[level])));
      return;
    }
    // Uniform tail: the innermost bounds do not depend on this loop
    // variable, so evaluate them once and emit the per-row ranges with pure
    // integer arithmetic (no AST re-evaluation per row).
    if (coalesce && level + 2 == numLevels() && boundsIndependent(level + 1, level)) {
      i64 ilo = lowerAt(level + 1);
      i64 ihi = upperAt(level + 1);
      if (ilo > ihi) return;
      logicalRows += hi - lo + 1;
      for (i64 v = lo; v <= hi; ++v) {
        i64 rowBase = checkedAdd(base, checkedMul(v, strides[level]));
        emit(rowBase + ilo, rowBase + ihi + 1);
      }
      return;
    }
    coords.push_back(lo);
    for (i64 v = lo; v <= hi; ++v) {
      coords.back() = v;
      run(level + 1, checkedAdd(base, checkedMul(v, strides[level])));
    }
    coords.pop_back();
  }
};

}  // namespace

void Enumerator::enumerate(const PartitionTuple& partition,
                           const ir::LaunchConfig& cfg,
                           std::span<const i64> scalars, const RangeFn& emit,
                           EnumInfo* info) const {
  std::vector<i64> params = buildParams(partition, cfg, scalars);

  // Evaluate the array extents and row-major strides.
  std::vector<i64> dims(rank_, -1);
  for (std::size_t i = 0; i < shapeRows_.size(); ++i) {
    i64 acc = shapeRows_[i].constantTerm();
    for (std::size_t p = 0; p < numModelParams_; ++p)
      acc = checkedAdd(acc, checkedMul(shapeRows_[i][p + 1], params[p]));
    dims[i] = acc;
  }
  std::vector<i64> strides(rank_, 1);
  for (std::size_t i = rank_ - 1; i-- > 0;) {
    PP_ASSERT_MSG(dims[i + 1] > 0, "multi-dimensional array with unknown extent");
    strides[i] = checkedMul(strides[i + 1], dims[i + 1]);
  }

  // Collect ranges from every live disjunct, then sort and merge: disjuncts
  // of a union map overlap (a stencil reads the same centre row five times),
  // and merging keeps both transfer volume and tracker updates minimal.
  std::vector<std::pair<i64, i64>> ranges;
  RangeFn collect = [&](i64 b, i64 e) {
    if (b < e) ranges.emplace_back(b, e);
  };
  i64 logicalRows = 0;

  std::vector<const ScanNest*> live;
  live.reserve(nests_.size());
  for (const ScanNest& nest : nests_) {
    bool ok = true;
    for (const AstExpr& g : nest.guards)
      if (g.eval(params, {}) < 0) {
        ok = false;
        break;
      }
    if (ok) live.push_back(&nest);
  }

  if (coalesce && hullable_ && live.size() > 1) {
    // Rectangular hull over the live disjuncts (reads only).
    EmitCtx ctx{live, params, strides, dims, coalesce, collect, {}};
    ctx.coords.reserve(rank_);
    ctx.run(0, 0);
    logicalRows += ctx.logicalRows;
  } else {
    for (const ScanNest* nest : live) {
      EmitCtx ctx{std::span<const ScanNest* const>(&nest, 1), params, strides,
                  dims, coalesce, collect, {}};
      ctx.coords.reserve(rank_);
      ctx.run(0, 0);
      logicalRows += ctx.logicalRows;
    }
  }

  std::sort(ranges.begin(), ranges.end());
  i64 pendBegin = 0, pendEnd = -1;
  i64 emitted = 0;
  bool pending = false;
  for (const auto& [b, e] : ranges) {
    if (pending && b <= pendEnd) {
      pendEnd = std::max(pendEnd, e);
      continue;
    }
    if (pending) {
      emit(pendBegin, pendEnd);
      ++emitted;
    }
    pendBegin = b;
    pendEnd = e;
    pending = true;
  }
  if (pending) {
    emit(pendBegin, pendEnd);
    ++emitted;
  }
  if (info) {
    info->ranges += emitted;
    info->logicalRows += logicalRows;
  }
}

MaterializedRanges Enumerator::materialize(const PartitionTuple& partition,
                                           const ir::LaunchConfig& cfg,
                                           std::span<const i64> scalars) const {
  MaterializedRanges out;
  enumerate(partition, cfg, scalars,
            [&](i64 b, i64 e) { out.ranges.emplace_back(b, e); }, &out.info);
  return out;
}

i64 Enumerator::countElements(const PartitionTuple& partition,
                              const ir::LaunchConfig& cfg,
                              std::span<const i64> scalars) const {
  i64 total = 0;
  enumerate(partition, cfg, scalars,
            [&](i64 b, i64 e) { total = checkedAdd(total, e - b); });
  return total;
}

std::string Enumerator::emitC() const {
  std::string out;
  out += "// Generated by polypart codegen (paper Section 6.2).\n";
  out += "// Inputs are passed as arrays of 64-bit integers; the callback is\n";
  out += "// invoked once per element range to avoid dynamic allocation.\n";
  out += "void " + name_ +
         "(const int64_t* partition, const int64_t* launch,\n"
         "    const int64_t* scalars, void* ctx, polypart_range_cb cb) {\n";
  // Parameter unpacking.
  for (std::size_t i = 0; i < paramNames_.size(); ++i) {
    std::string src;
    if (i < 6) {
      src = "launch[" + std::to_string(i) + "]";
    } else if (i < numModelParams_) {
      src = "scalars[" + std::to_string(i - 6) + "]";
    } else {
      src = "partition[" + std::to_string(i - numModelParams_) + "]";
    }
    out += "  const int64_t " + paramNames_[i] + " = " + src + ";\n";
  }
  for (std::size_t d = 0; d < nests_.size(); ++d) {
    out += "  // Disjunct " + std::to_string(d) + "\n";
    std::string body = pset::scanToC(nests_[d], paramNames_, "cb");
    // Indent the generated nest.
    std::size_t pos = 0;
    while (pos < body.size()) {
      std::size_t nl = body.find('\n', pos);
      if (nl == std::string::npos) nl = body.size();
      out += "  " + body.substr(pos, nl - pos) + "\n";
      pos = nl + 1;
    }
  }
  out += "}\n";
  return out;
}

std::vector<Enumerator> buildEnumerators(const KernelModel& model) {
  std::vector<Enumerator> out;
  for (const ArrayModel& a : model.arrays) {
    if (a.hasReads()) out.emplace_back(model, a, /*isWrite=*/false);
    if (a.hasWrites()) out.emplace_back(model, a, /*isWrite=*/true);
  }
  return out;
}

}  // namespace polypart::codegen
