#pragma once

// Polyhedral code generation for buffer synchronization (paper Section 6).
//
// For every (kernel, array argument, read/write) triple, an Enumerator is
// generated from the access map: given a thread-grid partition it produces
// the flattened element ranges the partition accesses, enumerating "only the
// first and last element of each row" (Section 6.1) and reporting them
// through a callback to avoid dynamic allocation (Section 6.2).
//
// The paper lowers the isl AST to LLVM IR functions; here the same AST
// (pset::ScanNest) is executed by a small evaluator, and emitC() renders the
// function a native backend would compile.
//
// Parameter ABI (Section 6.2: "arrays of 64-bit integers"):
//   partition: 12 values — lower bounds of the six map inputs
//              (boxLo, boyLo, bozLo, bxLo, byLo, bzLo) then exclusive upper
//              bounds in the same order,
//   launch:    6 values — blockDim x/y/z then gridDim x/y/z,
//   scalars:   the kernel's i64 scalar arguments in declaration order.
//
// An optimization beyond the paper's scheme: when every inner dimension of a
// row range covers its full extent and is independent of the outer loop
// variable, whole loop levels collapse into one contiguous flattened range
// ("full-row coalescing").  This turns the per-iteration dependency
// resolution of a 36k x 36k stencil from tens of thousands of callbacks into
// one.  bench/ablation_coalescing measures the effect; disable with
// `coalesce = false`.

#include <array>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "analysis/model.h"
#include "codegen/bytecode.h"
#include "ir/interp.h"
#include "ir/transform.h"
#include "pset/ast.h"
#include "support/small_vec.h"

namespace polypart::codegen {

/// The 6-dimensional partition box of Section 6: per map input dimension a
/// half-open [lo, hi) interval, inputs ordered (box, boy, boz, bx, by, bz).
struct PartitionTuple {
  std::array<i64, 6> lo{};
  std::array<i64, 6> hi{};

  /// Derives the tuple from a thread-block partition: blockOff bounds are
  /// blockIdx bounds scaled by blockDim (the runtime guarantees
  /// blockOff = blockIdx * blockDim, Section 4.1).
  static PartitionTuple fromBlocks(const ir::GridPartition& p, const ir::Dim3& blockDim);
};

/// Callback receiving one flattened half-open element range [begin, end).
using RangeFn = std::function<void(i64 begin, i64 end)>;

/// Hashable identity of one enumeration request: the launch configuration,
/// the 6-dimensional partition box, and the i64 scalar arguments, flattened
/// in the Section 6.2 ABI order.  enumerate() is a pure function of these
/// values (plus the enumerator's compile-time state), so equal keys yield
/// identical range lists — the property the runtime's launch-plan cache
/// relies on.
struct EnumerationKey {
  std::vector<i64> words;

  static EnumerationKey of(const PartitionTuple& partition,
                           const ir::LaunchConfig& cfg,
                           std::span<const i64> scalars);
  bool operator==(const EnumerationKey&) const = default;
};

/// FNV-1a over the key words (launch shapes per application are few; this
/// only needs to separate them cheaply).  Transparent: a raw word span in
/// the same ABI order hashes identically, so the specialized-program cache
/// can probe with the enumerator's already-built parameter vector instead of
/// materializing a key per lookup.
struct EnumerationKeyHash {
  using is_transparent = void;
  std::size_t operator()(std::span<const i64> words) const;
  std::size_t operator()(const EnumerationKey& k) const {
    return (*this)(std::span<const i64>(k.words));
  }
};

/// Work accounting for one enumeration: `ranges` is the number of callback
/// invocations after coalescing/merging; `logicalRows` is the number of row
/// ranges the paper's uncoalesced scheme (first/last element of each array
/// row, Section 6.1) would have produced — the runtime charges modeled
/// dependency-resolution time on this quantity so the overhead analysis
/// reflects the published system rather than our coalescing optimization.
struct EnumInfo {
  i64 ranges = 0;
  i64 logicalRows = 0;

  bool operator==(const EnumInfo&) const = default;
};

/// One enumerator's output materialized for replay: the coalesced ranges in
/// emission order plus the work accounting a live enumerate() call would
/// have reported.  Stored by the runtime's enumeration cache.
struct MaterializedRanges {
  std::vector<std::pair<i64, i64>> ranges;
  EnumInfo info;
};

class Enumerator {
 public:
  /// Builds the enumerator for one access map of a kernel model.
  /// Throws UnsupportedKernelError when a write map would be enumerated
  /// approximately (reads may over-approximate).
  Enumerator(const analysis::KernelModel& model, const analysis::ArrayModel& array,
             bool isWrite);

  /// The interface name, "<kernel>_arg<i>_<read|write>" (Section 6.2).
  const std::string& name() const { return name_; }
  bool isWrite() const { return isWrite_; }
  std::size_t argIndex() const { return argIndex_; }
  std::size_t rank() const { return rank_; }
  /// False when the enumerated ranges over-approximate the true access set.
  bool exact() const { return exact_; }
  /// Full-row coalescing switch (on by default; ablation knob).
  bool coalesce = true;
  /// Execution tier (see codegen/bytecode.h).  All tiers emit byte-identical
  /// ranges and work accounting; `Interpret` walks the AST (paper mode),
  /// `Bytecode` runs the program compiled at construction, `Specialized`
  /// additionally constant-folds each parameter vector on first sight and
  /// caches the folded program under its EnumerationKey.
  EnumTier tier = EnumTier::Interpret;

  /// Enumerates the element ranges accessed by `partition`.  Ranges are
  /// emitted in non-decreasing order per disjunct and adjacent ranges are
  /// merged; disjuncts of a union map may overlap (the tracker tolerates
  /// duplicates, Section 6.1).
  ///
  /// Thread safety: enumerate()/materialize()/countElements() read only the
  /// enumerator's compile-time state (nests, compiled program, shape rows,
  /// `coalesce`, `tier`) and keep all evaluation scratch on the stack, so
  /// concurrent calls on one Enumerator from multiple threads are safe — the
  /// runtime's parallel resolution engine materializes every (partition,
  /// enumerator) pair of a launch concurrently.  The Specialized tier's
  /// program cache is shared across copies and internally synchronized.  Do
  /// not flip `coalesce`/`tier` while calls are in flight.
  void enumerate(const PartitionTuple& partition, const ir::LaunchConfig& cfg,
                 std::span<const i64> scalars, const RangeFn& emit,
                 EnumInfo* info = nullptr) const;

  /// Runs enumerate() once and records the emitted ranges for later replay
  /// under the same EnumerationKey.  Safe to call concurrently (see
  /// enumerate()).
  MaterializedRanges materialize(const PartitionTuple& partition,
                                 const ir::LaunchConfig& cfg,
                                 std::span<const i64> scalars) const;

  /// Total number of elements in all emitted ranges (overlapping disjunct
  /// ranges are merged by enumerate() and counted once).  Accumulates in
  /// 128-bit arithmetic and throws a diagnosable OverflowError naming the
  /// enumerator if the count ever exceeds the 64-bit range: today's merged,
  /// shape-clipped ranges keep the sum representable only by a global
  /// argument (disjoint subranges of [0, 2^63)), and the previous
  /// implementation silently relied on it with an unchecked per-range
  /// subtraction.
  i64 countElements(const PartitionTuple& partition, const ir::LaunchConfig& cfg,
                    std::span<const i64> scalars) const;

  /// Renders the generated function as C source (the shape a native backend
  /// would compile; used by documentation and tests).
  std::string emitC() const;

  /// Specialized-program cache counters since construction, shared across
  /// copies of this enumerator.  Observational: racing misses on one key
  /// under parallel resolution each count as a miss, so treat the values as
  /// monotone telemetry, not byte-deterministic state.
  struct SpecCacheCounters {
    i64 hits = 0;
    i64 misses = 0;
    i64 evictions = 0;
  };
  SpecCacheCounters specCacheCounters() const;

 private:
  /// Parameter vectors are short (6 launch words + scalars + 12 partition
  /// words) and built on every enumerate() call; inline storage keeps the
  /// hot path allocation-free.
  using ParamVec = support::SmallVec<i64, 32>;

  ParamVec buildParams(const PartitionTuple& partition,
                       const ir::LaunchConfig& cfg,
                       std::span<const i64> scalars) const;
  /// Specialized-tier cache lookup: returns the program folded for `params`,
  /// specializing and inserting (FIFO-bounded) on a miss.
  std::shared_ptr<const bc::Program> specializedFor(
      const PartitionTuple& partition, const ir::LaunchConfig& cfg,
      std::span<const i64> scalars, std::span<const i64> params) const;

  std::string name_;
  std::size_t argIndex_ = 0;
  bool isWrite_ = false;
  std::size_t rank_ = 1;
  bool exact_ = true;
  std::size_t numModelParams_ = 0;           // 6 + #scalars
  std::vector<pset::ScanNest> nests_;        // one per disjunct
  /// Whether a runtime rectangular hull over the disjuncts may be used
  /// (read maps with uniform rank); see enumerate().
  bool hullable_ = false;
  std::vector<pset::LinExpr> shapeRows_;     // over the model param space
  std::vector<std::string> paramNames_;      // extended space, for emitC
  /// Bytecode program for nests_, compiled once at construction and shared
  /// by copies (Enumerator is copyable; the program is immutable).
  std::shared_ptr<const bc::Program> program_;
  /// Specialized-tier program cache (keyed by EnumerationKey, FIFO-bounded,
  /// mutex-guarded); shared across copies like the program.
  struct SpecCache;
  std::shared_ptr<SpecCache> specCache_;
};

/// Builds all enumerators of a kernel model (reads and writes for every
/// array argument that has them).
std::vector<Enumerator> buildEnumerators(const analysis::KernelModel& model);

}  // namespace polypart::codegen
