#include "codegen/bytecode.h"

#include <algorithm>

#include "support/arith.h"
#include "support/error.h"

namespace polypart::codegen {

EnumTier enumTierFromString(const std::string& s) {
  if (s == "interpret") return EnumTier::Interpret;
  if (s == "bytecode") return EnumTier::Bytecode;
  if (s == "specialized") return EnumTier::Specialized;
  throw Error("unknown enumerator tier '" + s +
              "' (expected interpret, bytecode, or specialized)");
}

const char* enumTierName(EnumTier t) {
  switch (t) {
    case EnumTier::Interpret: return "interpret";
    case EnumTier::Bytecode: return "bytecode";
    case EnumTier::Specialized: return "specialized";
  }
  PP_ASSERT(false);
  return "";
}

namespace bc {

using pset::AstExpr;

namespace {

/// Expression compiler: post-order walk assigning one fresh register per
/// subexpression result.  Register numbering restarts at every expression,
/// so the register file is sized by the deepest single expression, and each
/// register is written exactly once within a slice (specialize() relies on
/// this to re-materialize folded operands).
class ExprCompiler {
 public:
  explicit ExprCompiler(std::vector<Insn>& code) : code_(code) {}

  CompiledExpr compile(const AstExpr& e) {
    CompiledExpr out;
    out.begin = static_cast<std::uint32_t>(code_.size());
    next_ = 0;
    dep_ = 0;
    out.out = emit(e);
    out.end = static_cast<std::uint32_t>(code_.size());
    out.loopDepNeeded = dep_;
    maxRegs_ = std::max(maxRegs_, next_);
    return out;
  }

  std::uint16_t maxRegs() const { return maxRegs_; }

 private:
  std::uint16_t fresh() {
    PP_ASSERT_MSG(next_ < 0xffff, "enumerator expression too deep");
    return next_++;
  }

  std::uint16_t emit(const AstExpr& e) {
    switch (e.kind()) {
      case AstExpr::Kind::Const: {
        std::uint16_t r = fresh();
        code_.push_back({Op::Const, r, 0, 0, e.value()});
        return r;
      }
      case AstExpr::Kind::Param: {
        std::uint16_t r = fresh();
        code_.push_back({Op::Param, r, 0, 0, static_cast<i64>(e.index())});
        return r;
      }
      case AstExpr::Kind::LoopVar: {
        std::uint16_t r = fresh();
        dep_ = std::max(dep_, static_cast<std::uint16_t>(e.index() + 1));
        code_.push_back({Op::Loop, r, 0, 0, static_cast<i64>(e.index())});
        return r;
      }
      case AstExpr::Kind::Add: return binary(Op::Add, e);
      case AstExpr::Kind::Sub: return binary(Op::Sub, e);
      case AstExpr::Kind::Mul: return binary(Op::Mul, e);
      case AstExpr::Kind::FloorDiv: return binary(Op::FloorDiv, e);
      case AstExpr::Kind::CeilDiv: return binary(Op::CeilDiv, e);
      case AstExpr::Kind::Neg: {
        std::uint16_t a = emit(e.kids()[0]);
        std::uint16_t r = fresh();
        code_.push_back({Op::Neg, r, a, 0, 0});
        return r;
      }
      // N-ary min/max fold left-to-right, matching the interpreter's
      // incremental evaluation order.
      case AstExpr::Kind::Min: return nary(Op::Min, e);
      case AstExpr::Kind::Max: return nary(Op::Max, e);
    }
    PP_ASSERT(false);
    return 0;
  }

  std::uint16_t binary(Op op, const AstExpr& e) {
    std::uint16_t a = emit(e.kids()[0]);
    std::uint16_t b = emit(e.kids()[1]);
    std::uint16_t r = fresh();
    code_.push_back({op, r, a, b, 0});
    return r;
  }

  std::uint16_t nary(Op op, const AstExpr& e) {
    std::uint16_t acc = emit(e.kids()[0]);
    for (std::size_t i = 1; i < e.kids().size(); ++i) {
      std::uint16_t b = emit(e.kids()[i]);
      std::uint16_t r = fresh();
      code_.push_back({op, r, acc, b, 0});
      acc = r;
    }
    return acc;
  }

  std::vector<Insn>& code_;
  std::uint16_t next_ = 0;
  std::uint16_t dep_ = 0;
  std::uint16_t maxRegs_ = 0;
};

}  // namespace

i64 Program::eval(const CompiledExpr& e, std::span<const i64> params,
                  std::span<const i64> loops, i64* regs) const {
  if (e.isConst) return e.constValue;
  for (std::uint32_t i = e.begin; i != e.end; ++i) {
    const Insn& in = code[i];
    switch (in.op) {
      case Op::Const: regs[in.dst] = in.imm; break;
      case Op::Param:
        PP_ASSERT(static_cast<std::size_t>(in.imm) < params.size());
        regs[in.dst] = params[static_cast<std::size_t>(in.imm)];
        break;
      case Op::Loop:
        PP_ASSERT(static_cast<std::size_t>(in.imm) < loops.size());
        regs[in.dst] = loops[static_cast<std::size_t>(in.imm)];
        break;
      case Op::Add: regs[in.dst] = checkedAdd(regs[in.a], regs[in.b]); break;
      case Op::Sub: regs[in.dst] = checkedSub(regs[in.a], regs[in.b]); break;
      case Op::Mul: regs[in.dst] = checkedMul(regs[in.a], regs[in.b]); break;
      case Op::FloorDiv:
        regs[in.dst] = polypart::floorDiv(regs[in.a], regs[in.b]);
        break;
      case Op::CeilDiv:
        regs[in.dst] = polypart::ceilDiv(regs[in.a], regs[in.b]);
        break;
      case Op::Neg: regs[in.dst] = checkedNeg(regs[in.a]); break;
      case Op::Min: regs[in.dst] = std::min(regs[in.a], regs[in.b]); break;
      case Op::Max: regs[in.dst] = std::max(regs[in.a], regs[in.b]); break;
    }
  }
  return regs[e.out];
}

Program compile(std::span<const pset::ScanNest> nests) {
  Program p;
  ExprCompiler ec(p.code);
  p.nests.reserve(nests.size());
  for (const pset::ScanNest& nest : nests) {
    CompiledNest cn;
    cn.guards.reserve(nest.guards.size());
    for (const AstExpr& g : nest.guards) cn.guards.push_back(ec.compile(g));
    cn.levels.reserve(nest.levels.size());
    for (const pset::ScanLevel& l : nest.levels)
      cn.levels.push_back({ec.compile(l.lower), ec.compile(l.upper)});
    p.nests.push_back(std::move(cn));
  }
  p.numRegs = std::max<std::uint16_t>(ec.maxRegs(), 1);
  return p;
}

namespace {

/// Specializes one expression slice against known parameter values.
/// Constant subresults propagate through a per-register value table; an
/// instruction folds away when all of its inputs are known and the checked
/// operation provably does not overflow, and is emitted otherwise (with any
/// folded operands re-materialized as Const loads first).
class Specializer {
 public:
  Specializer(const Program& src, Program& dst, std::span<const i64> params)
      : src_(src), dst_(dst), params_(params) {}

  CompiledExpr run(const CompiledExpr& e) {
    if (e.isConst) return e;
    CompiledExpr out = e;
    known_.assign(src_.numRegs, false);
    value_.assign(src_.numRegs, 0);
    materialized_.assign(src_.numRegs, false);
    out.begin = static_cast<std::uint32_t>(dst_.code.size());
    for (std::uint32_t i = e.begin; i != e.end; ++i) step(src_.code[i]);
    out.end = static_cast<std::uint32_t>(dst_.code.size());
    if (known_[e.out] && out.begin == out.end) {
      out.isConst = true;
      out.constValue = value_[e.out];
      return out;
    }
    // A partially folded slice: any still-constant final result would have
    // an empty slice (handled above); otherwise the emitted code computes
    // it.  loopDepNeeded stays that of the unspecialized expression so all
    // tiers make identical coalescing decisions.
    PP_ASSERT(!known_[e.out] || materialized_[e.out]);
    return out;
  }

 private:
  void step(const Insn& in) {
    switch (in.op) {
      case Op::Const: setKnown(in.dst, in.imm); return;
      case Op::Param:
        PP_ASSERT(static_cast<std::size_t>(in.imm) < params_.size());
        setKnown(in.dst, params_[static_cast<std::size_t>(in.imm)]);
        return;
      case Op::Loop:
        emit(in);
        return;
      case Op::Add: foldBinary(in, [](i64 a, i64 b, i64* r) {
          return !__builtin_add_overflow(a, b, r);
        });
        return;
      case Op::Sub: foldBinary(in, [](i64 a, i64 b, i64* r) {
          return !__builtin_sub_overflow(a, b, r);
        });
        return;
      case Op::Mul: foldBinary(in, [](i64 a, i64 b, i64* r) {
          return !__builtin_mul_overflow(a, b, r);
        });
        return;
      case Op::FloorDiv: foldBinary(in, [](i64 a, i64 b, i64* r) {
          if (b <= 0) return false;  // buildScan guarantees positive divisors
          *r = polypart::floorDiv(a, b);
          return true;
        });
        return;
      case Op::CeilDiv: foldBinary(in, [](i64 a, i64 b, i64* r) {
          if (b <= 0) return false;
          *r = polypart::ceilDiv(a, b);
          return true;
        });
        return;
      case Op::Neg:
        if (known_[in.a]) {
          i64 r;
          if (!__builtin_sub_overflow(i64{0}, value_[in.a], &r)) {
            setKnown(in.dst, r);
            return;
          }
        }
        emit(in);
        return;
      case Op::Min: foldBinary(in, [](i64 a, i64 b, i64* r) {
          *r = std::min(a, b);
          return true;
        });
        return;
      case Op::Max: foldBinary(in, [](i64 a, i64 b, i64* r) {
          *r = std::max(a, b);
          return true;
        });
        return;
    }
    PP_ASSERT(false);
  }

  template <typename Fold>
  void foldBinary(const Insn& in, Fold fold) {
    if (known_[in.a] && known_[in.b]) {
      i64 r;
      if (fold(value_[in.a], value_[in.b], &r)) {
        setKnown(in.dst, r);
        return;
      }
    }
    emit(in);
  }

  void setKnown(std::uint16_t reg, i64 v) {
    known_[reg] = true;
    value_[reg] = v;
  }

  /// Emits an instruction, materializing constant-known operand registers
  /// that have no emitted definition.  Registers are single-assignment per
  /// slice, so a materialized Const stays valid for later uses.
  void emit(const Insn& in) {
    if (in.op != Op::Const && in.op != Op::Param && in.op != Op::Loop) {
      materialize(in.a);
      bool unary = in.op == Op::Neg;
      if (!unary) materialize(in.b);
    }
    dst_.code.push_back(in);
    materialized_[in.dst] = true;
  }

  void materialize(std::uint16_t reg) {
    if (materialized_[reg] || !known_[reg]) return;
    dst_.code.push_back({Op::Const, reg, 0, 0, value_[reg]});
    materialized_[reg] = true;
  }

  const Program& src_;
  Program& dst_;
  std::span<const i64> params_;
  std::vector<bool> known_, materialized_;
  std::vector<i64> value_;
};

}  // namespace

Program specialize(const Program& p, std::span<const i64> params) {
  Program out;
  out.numRegs = p.numRegs;
  Specializer sp(p, out, params);
  out.nests.reserve(p.nests.size());
  for (const CompiledNest& cn : p.nests) {
    CompiledNest sn;
    sn.guards.reserve(cn.guards.size());
    for (const CompiledExpr& g : cn.guards) sn.guards.push_back(sp.run(g));
    sn.levels.reserve(cn.levels.size());
    for (const CompiledLevel& l : cn.levels)
      sn.levels.push_back({sp.run(l.lower), sp.run(l.upper)});
    out.nests.push_back(std::move(sn));
  }
  return out;
}

}  // namespace bc
}  // namespace polypart::codegen
