#pragma once

// Compiled execution tier for the range enumerators (DESIGN.md "Execution
// tiers").
//
// The paper compiles each enumerator's isl AST to LLVM IR once per kernel
// and calls the native function at run time; the interpreter tier here walks
// the pset::ScanNest expression trees instead.  This header closes most of
// that gap without a JIT: every bound and guard expression is flattened once
// into a register bytecode (`bc::Program`) executed by a tiny VM, and a
// specializing pass constant-folds the runtime parameter vector — launch
// configuration, scalar arguments, and the 6-tuple partition box — into the
// program, after which most guards and bounds are plain constants and the
// remaining code is a handful of instructions over loop variables.
//
// Semantics are bit-for-bit those of AstExpr::eval: operands are evaluated
// in the same order with the same checked 64-bit arithmetic, so all tiers
// throw the same OverflowError at the same operation or produce identical
// values (tests/enumerator_fuzz_test.cpp is the three-way differential
// oracle).  Specialization folds with *non-throwing* overflow probes and
// keeps any instruction whose folding would overflow, because the
// interpreter evaluates bounds lazily — an expression it never reaches must
// not throw during specialization either.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "pset/ast.h"

namespace polypart::codegen {

/// Which execution engine enumerate()/materialize()/countElements() use.
/// All tiers are byte-identical in emitted ranges, work accounting, and
/// error behaviour; `Interpret` is the paper-mode default.
enum class EnumTier {
  Interpret,    ///< walk the pset::AstExpr trees (paper mode)
  Bytecode,     ///< flat register bytecode, compiled once per enumerator
  Specialized,  ///< bytecode constant-folded per parameter vector, cached
};

/// Parses "interpret" / "bytecode" / "specialized"; throws Error otherwise.
EnumTier enumTierFromString(const std::string& s);
const char* enumTierName(EnumTier t);

namespace bc {

enum class Op : std::uint8_t {
  Const,     // r[dst] = imm
  Param,     // r[dst] = params[imm]
  Loop,      // r[dst] = loops[imm]
  Add,       // r[dst] = r[a] + r[b]   (checked)
  Sub,       // r[dst] = r[a] - r[b]   (checked)
  Mul,       // r[dst] = r[a] * r[b]   (checked)
  FloorDiv,  // r[dst] = floorDiv(r[a], r[b])
  CeilDiv,   // r[dst] = ceilDiv(r[a], r[b])
  Neg,       // r[dst] = -r[a]         (checked)
  Min,       // r[dst] = min(r[a], r[b])
  Max,       // r[dst] = max(r[a], r[b])
};

struct Insn {
  Op op = Op::Const;
  std::uint16_t dst = 0, a = 0, b = 0;
  i64 imm = 0;
};

/// One compiled expression: the half-open slice [begin, end) of
/// Program::code whose final result lands in register `out`.  Registers are
/// assigned single-static within a slice, so slices share one register file.
struct CompiledExpr {
  std::uint32_t begin = 0, end = 0;
  std::uint16_t out = 0;
  /// 1 + the highest loop-variable index the expression reads (0 = none).
  /// Mirrors AstExpr::independentOfLoopsFrom for the coalescing decisions;
  /// specialization copies it from the unspecialized expression so all tiers
  /// take identical coalescing paths.
  std::uint16_t loopDepNeeded = 0;
  /// Specialized tier: the expression folded to a constant (empty slice).
  bool isConst = false;
  i64 constValue = 0;

  bool independentOfLoopsFrom(std::size_t minLevel) const {
    return loopDepNeeded <= minLevel;
  }
};

struct CompiledLevel {
  CompiledExpr lower, upper;
};

/// One compiled ScanNest: parameter-only guards plus per-level bounds.
struct CompiledNest {
  std::vector<CompiledExpr> guards;
  std::vector<CompiledLevel> levels;
};

/// A whole enumerator body: every nest's expressions in one flat code
/// vector.  Immutable after compile()/specialize(); the register scratch is
/// caller-provided, so one Program may be executed concurrently.
struct Program {
  std::vector<Insn> code;
  std::uint16_t numRegs = 0;  // register file size shared by all slices
  std::vector<CompiledNest> nests;

  /// Executes one expression slice.  `regs` must have numRegs slots.
  i64 eval(const CompiledExpr& e, std::span<const i64> params,
           std::span<const i64> loops, i64* regs) const;
};

/// Compiles the nests' guard/bound AstExprs to bytecode (once per
/// enumerator, at construction).
Program compile(std::span<const pset::ScanNest> nests);

/// Partial evaluation for one parameter vector: Param loads become
/// constants and constant subexpressions fold (non-throwing probes; an
/// instruction whose folding would overflow is kept, preserving the lazy
/// error behaviour of the interpreter).  loopDepNeeded is copied unchanged.
Program specialize(const Program& p, std::span<const i64> params);

}  // namespace bc
}  // namespace polypart::codegen
