#include "support/env.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>

#include "support/error.h"

namespace polypart::env {

std::optional<std::string> value(const char* name) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || raw[0] == '\0') return std::nullopt;
  return std::string(raw);
}

bool flag(const char* name, bool fallback) {
  std::optional<std::string> v = value(name);
  if (!v) return fallback;
  std::string s = *v;
  for (char& c : s)
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  if (s == "1" || s == "on" || s == "true" || s == "yes") return true;
  if (s == "0" || s == "off" || s == "false" || s == "no") return false;
  throw Error("invalid " + std::string(name) + " value '" + *v +
              "' (accepted: 0, 1, on, off, true, false, yes, no; "
              "case-insensitive)");
}

std::optional<u64> u64Value(const char* name) {
  std::optional<std::string> v = value(name);
  if (!v) return std::nullopt;
  const std::string& s = *v;
  // strtoull silently wraps negative inputs; reject them up front.
  std::size_t first = s.find_first_not_of(" \t");
  if (first != std::string::npos && s[first] == '-') {
    throw Error("invalid " + std::string(name) + " value '" + s +
                "' (expected an unsigned integer)");
  }
  errno = 0;
  char* end = nullptr;
  unsigned long long parsed = std::strtoull(s.c_str(), &end, 0);
  if (end == s.c_str() || *end != '\0' || errno == ERANGE) {
    throw Error("invalid " + std::string(name) + " value '" + s +
                "' (expected an unsigned integer, e.g. 42 or 0x2a)");
  }
  return static_cast<u64>(parsed);
}

}  // namespace polypart::env
