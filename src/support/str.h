#pragma once

// Small string helpers shared across modules.

#include <string>
#include <vector>

namespace polypart {

/// printf-style formatting into a std::string.
std::string format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Joins `parts` with `sep`.
std::string join(const std::vector<std::string>& parts, const std::string& sep);

/// True when `s` starts with `prefix`.
bool startsWith(const std::string& s, const std::string& prefix);

/// Strips ASCII whitespace from both ends.
std::string trim(const std::string& s);

/// Reads a whole file; throws Error when the file cannot be opened.
std::string readFile(const std::string& path);

/// Writes `content` to `path`; throws Error on failure.
void writeFile(const std::string& path, const std::string& content);

}  // namespace polypart
