#pragma once

// A small fixed-size worker pool for host-side parallelism.
//
// The runtime's dependency-resolution engine (rt/runtime.cpp) fans the pure
// polyhedral enumeration and the per-buffer tracker phases out to this pool.
// Determinism over there comes from the task decomposition and the ordered
// commit, not from the pool: the pool itself is a plain work queue with no
// ordering guarantee beyond "parallelFor/submit complete before returning".

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

#include "support/arith.h"

namespace polypart::trace {
class Tracer;
}

namespace polypart::support {

class ThreadPool {
 public:
  /// Spawns `numThreads` workers (clamped to at least 1).
  explicit ThreadPool(int numThreads);
  /// Drains nothing: outstanding queued tasks still run to completion, then
  /// the workers exit and are joined.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return static_cast<int>(workers_.size()); }

  /// Attaches a tracer: every executed task is wrapped in a wall-domain span
  /// tagged with the worker index, and worker threads name their trace
  /// tracks on first use.  Null detaches.  May be called while workers are
  /// idle or running (atomic pointer; tasks pick up the change lazily).
  void setTracer(trace::Tracer* tracer) {
    tracer_.store(tracer, std::memory_order_relaxed);
  }

  /// Enqueues a fire-and-forget task.
  void enqueue(std::function<void()> task);

  /// Enqueues `f` and returns a future for its result (exceptions propagate
  /// through the future).
  template <typename F>
  auto submit(F f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::move(f));
    std::future<R> fut = task->get_future();
    enqueue([task] { (*task)(); });
    return fut;
  }

  /// Runs body(0) .. body(n-1) across the workers and blocks until every
  /// index has completed.  Indices are claimed dynamically off a shared
  /// counter (good load balance for irregular task costs).  If any body
  /// throws, remaining unclaimed indices are abandoned and the first
  /// exception is rethrown in the caller.  Must not be called from a worker
  /// thread (a nested call could deadlock a fully busy pool).
  void parallelFor(i64 n, const std::function<void(i64)>& body);

 private:
  void workerLoop(int workerIndex);

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
  std::atomic<trace::Tracer*> tracer_{nullptr};
};

}  // namespace polypart::support
