#pragma once

// Structured tracing for the launch pipeline.
//
// The paper's evaluation attributes runtime overhead to phases — Fig. 7
// splits each launch into transfers, dependency-resolution "patterns", and
// kernel execution — but aggregate counters (RuntimeStats / MachineStats)
// cannot show *where inside a launch* the time goes.  This module is the
// missing instrumentation layer:
//
//  - scoped spans, instant events, and counters, recorded into per-thread
//    buffers (no locks on the hot path; a mutex is taken only the first time
//    a thread touches a tracer),
//  - three event domains: *wall* events are timestamped with the host's
//    steady clock (what the profiler user experiences), *sim* events carry
//    timestamps from the simulated machine clock (so the modeled overlap of
//    compute and copy engines is visible on a timeline), and *tenant* events
//    put each client context of the multi-tenant runtime on its own track
//    (tid = tenant ordinal) so interleaved launch streams separate visually,
//  - a Chrome-trace-format JSON exporter (chrome://tracing, Perfetto); the
//    wall domain is pid 1, the simulated machine is pid 2, tenants are pid 3,
//  - a per-launch phase-breakdown summary computed directly from the trace
//    events, reproducing the Fig. 7 transfer/pattern/execution shares from a
//    single traced run instead of the three-run α/β/γ method.
//
// Recording is thread-safe; export and analysis require a quiescent tracer
// (the runtime's parallel phases join before returning, so exporting after a
// run is always safe).  Every hook is a free function taking `Tracer*`: with
// a null tracer it is a branch, and with POLYPART_TRACE_DISABLED defined the
// hooks compile to nothing.

#include <array>
#include <atomic>
#include <chrono>
#include <initializer_list>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "support/arith.h"
#include "support/json.h"

namespace polypart::trace {

/// One key/value annotation on an event.  Keys must be string literals (the
/// tracer stores the pointer); values are integers — byte counts, device
/// ordinals, cache totals.
struct Arg {
  const char* key = nullptr;
  i64 value = 0;
};

/// Maximum annotations per event; chosen for the largest user (peer-copy
/// events carry src/dst/bytes).
inline constexpr int kMaxArgs = 3;

/// Chrome-trace pid of each event domain (see the module comment).
inline constexpr int kWallPid = 1;
inline constexpr int kSimPid = 2;
inline constexpr int kTenantPid = 3;

struct Event {
  enum class Kind : unsigned char { Span, Instant, Counter };
  Kind kind = Kind::Instant;
  /// Event domain: kWallPid (host clock), kSimPid (simulated machine clock),
  /// or kTenantPid (per-client launch-stream tracks).
  int pid = kWallPid;
  /// Track within a non-wall domain: the engine ordinal for sim events
  /// (see sim/machine.h), the tenant ordinal for tenant events.  Wall events
  /// use the recording thread's track instead.
  int track = 0;
  /// Launch id current when the event began (-1 = outside any launch).
  i64 launch = -1;
  double tsMicros = 0;
  double durMicros = 0;  // spans only
  const char* category = "";
  std::string name;
  std::array<Arg, kMaxArgs> args{};
  int numArgs = 0;
};

struct TracerOptions {
  /// Replaces wall-clock timestamps with a per-tracer event ordinal and
  /// zeroes durations, making serial-mode trace output byte-deterministic
  /// across runs (sim-domain timestamps are deterministic either way).
  /// Useful for golden-file diffing; off for actual profiling.
  bool deterministicTimestamps = false;
};

/// Per-launch share of the three Fig. 7 overhead classes, in simulated time.
/// `executionSeconds` sums kernel spans, `transferSeconds` sums copy-engine
/// spans, `patternSeconds` sums the modeled host-side resolution cost —
/// all restricted to events recorded while this launch was current.
struct LaunchBreakdown {
  i64 launch = -1;
  std::string kernel;
  double executionSeconds = 0;
  double transferSeconds = 0;
  double patternSeconds = 0;

  double totalSeconds() const {
    return executionSeconds + transferSeconds + patternSeconds;
  }
  double executionShare() const {
    double t = totalSeconds();
    return t > 0 ? executionSeconds / t : 0;
  }
  double transferShare() const {
    double t = totalSeconds();
    return t > 0 ? transferSeconds / t : 0;
  }
  double patternShare() const {
    double t = totalSeconds();
    return t > 0 ? patternSeconds / t : 0;
  }
};

class Tracer {
 public:
  explicit Tracer(TracerOptions options = {});
  ~Tracer();

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  const TracerOptions& options() const { return options_; }

  // -- recording (thread-safe) ----------------------------------------------

  void instantImpl(const char* category, std::string name,
                   std::initializer_list<Arg> args);
  void counterImpl(const char* category, std::string name, i64 value);
  /// Tenant-domain instant/counter: recorded on tenant `tenant`'s track
  /// (tid) in the tenant process (pid kTenantPid).  Timestamps follow the
  /// wall clock (or the deterministic ordinal) like every host-side event.
  void tenantInstantImpl(int tenant, const char* category, std::string name,
                         std::initializer_list<Arg> args);
  void tenantCounterImpl(int tenant, const char* category, std::string name,
                         i64 value);
  /// Sim-domain span; timestamps are simulated seconds supplied by the
  /// caller (the machine model), not read from any real clock.
  void simSpanImpl(const char* category, std::string name, int simTid,
                   double startSeconds, double durationSeconds,
                   std::initializer_list<Arg> args);
  /// Wall-domain span completion; `tsStart` comes from beginTimestamp() and
  /// `launch` from currentLaunch() at span construction.
  void completeSpanImpl(const char* category, std::string&& name,
                        double tsStart, i64 launch,
                        const std::array<Arg, kMaxArgs>& args, int numArgs);
  /// Timestamp for a span start: wall microseconds since the tracer epoch,
  /// or the next event ordinal under deterministicTimestamps.
  double beginTimestamp();

  // -- launch context --------------------------------------------------------

  /// Marks the start of a partitioned launch; events recorded until
  /// endLaunch() are attributed to the returned id.  Ids are assigned by the
  /// tracer (monotone across every runtime sharing it).
  i64 beginLaunch(const std::string& kernelName);
  void endLaunch();
  i64 currentLaunch() const {
    return currentLaunch_.load(std::memory_order_relaxed);
  }

  // -- track naming ----------------------------------------------------------

  /// Names the calling thread's track in the wall domain ("worker 3").
  void nameCurrentThread(std::string name);
  /// Names a sim-domain track ("gpu0 compute").
  void nameSimTrack(int simTid, std::string name);
  /// Names a tenant-domain track ("tenant 2").
  void nameTenantTrack(int tenant, std::string name);

  // -- export / analysis (quiescent tracer only) -----------------------------

  std::size_t eventCount() const;
  /// The full Chrome trace object: {"traceEvents": [...], ...}.
  json::Value toJson() const;
  /// toJson() serialized (indent 1 — Perfetto accepts either).
  std::string exportChromeTrace() const;
  void writeFile(const std::string& path) const;

  /// Per-launch Fig. 7-style phase breakdown, computed from the recorded
  /// events; ordered by launch id.
  std::vector<LaunchBreakdown> phaseBreakdown() const;

 private:
  struct ThreadBuffer {
    std::thread::id threadId;
    int tid = 0;
    std::string name;
    std::vector<Event> events;
  };

  ThreadBuffer& buffer();
  double nowMicros() const;
  Event& append(Event::Kind kind, const char* category, std::string&& name,
                std::initializer_list<Arg> args);

  TracerOptions options_;
  /// Distinguishes this tracer in thread-local buffer caches, including from
  /// a destroyed tracer whose address was reused.
  u64 generation_ = 0;
  std::chrono::steady_clock::time_point epoch_;
  std::atomic<i64> seq_{0};  // deterministic-timestamp ordinal
  std::atomic<i64> currentLaunch_{-1};
  std::atomic<i64> nextLaunch_{0};

  /// Guards buffers_, launchNames_, simTrackNames_, tenantTrackNames_.
  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
  std::map<i64, std::string> launchNames_;
  std::map<int, std::string> simTrackNames_;
  std::map<int, std::string> tenantTrackNames_;
};

// -- hooks (the only API instrumentation sites use) ---------------------------

#ifdef POLYPART_TRACE_DISABLED
inline constexpr bool kTracingCompiledIn = false;
#else
inline constexpr bool kTracingCompiledIn = true;
#endif

inline void instant(Tracer* t, const char* category, std::string_view name,
                    std::initializer_list<Arg> args = {}) {
  if constexpr (kTracingCompiledIn)
    if (t) t->instantImpl(category, std::string(name), args);
}

inline void counter(Tracer* t, const char* category, std::string_view name,
                    i64 value) {
  if constexpr (kTracingCompiledIn)
    if (t) t->counterImpl(category, std::string(name), value);
}

inline void tenantInstant(Tracer* t, int tenant, const char* category,
                          std::string_view name,
                          std::initializer_list<Arg> args = {}) {
  if constexpr (kTracingCompiledIn)
    if (t) t->tenantInstantImpl(tenant, category, std::string(name), args);
}

inline void tenantCounter(Tracer* t, int tenant, const char* category,
                          std::string_view name, i64 value) {
  if constexpr (kTracingCompiledIn)
    if (t) t->tenantCounterImpl(tenant, category, std::string(name), value);
}

inline void simSpan(Tracer* t, const char* category, std::string_view name,
                    int simTid, double startSeconds, double durationSeconds,
                    std::initializer_list<Arg> args = {}) {
  if constexpr (kTracingCompiledIn)
    if (t)
      t->simSpanImpl(category, std::string(name), simTid, startSeconds,
                     durationSeconds, args);
}

/// Scoped wall-domain span.  Records its start timestamp and launch context
/// at construction and appends one complete event at destruction; with a
/// null tracer both are a branch.  `name` and `nameSuffix` are concatenated
/// only when tracing is live (no allocation on the disabled path).
class Span {
 public:
  Span(Tracer* t, const char* category, std::string_view name,
       std::string_view nameSuffix = {}, std::initializer_list<Arg> args = {}) {
    if constexpr (kTracingCompiledIn) {
      if (!t) return;
      tracer_ = t;
      category_ = category;
      name_.reserve(name.size() + nameSuffix.size());
      name_.append(name);
      name_.append(nameSuffix);
      for (const Arg& a : args)
        if (numArgs_ < kMaxArgs) args_[static_cast<std::size_t>(numArgs_++)] = a;
      launch_ = t->currentLaunch();
      ts_ = t->beginTimestamp();
    }
  }

  ~Span() {
    if constexpr (kTracingCompiledIn) {
      if (tracer_)
        tracer_->completeSpanImpl(category_, std::move(name_), ts_, launch_,
                                  args_, numArgs_);
    }
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  Tracer* tracer_ = nullptr;
  const char* category_ = "";
  std::string name_;
  double ts_ = 0;
  i64 launch_ = -1;
  std::array<Arg, kMaxArgs> args_{};
  int numArgs_ = 0;
};

/// Scoped launch context: beginLaunch at construction, a "launch:<kernel>"
/// span for the whole scope, endLaunch at destruction.
class LaunchScope {
 public:
  LaunchScope(Tracer* t, const std::string& kernelName) : tracer_(nullptr) {
    if constexpr (kTracingCompiledIn) {
      if (!t) return;
      tracer_ = t;
      t->beginLaunch(kernelName);
      span_.emplace(t, "runtime", "launch:", kernelName);
    }
  }
  ~LaunchScope() {
    if constexpr (kTracingCompiledIn) {
      if (tracer_) {
        span_.reset();  // the span still carries the launch id (captured at start)
        tracer_->endLaunch();
      }
    }
  }

  LaunchScope(const LaunchScope&) = delete;
  LaunchScope& operator=(const LaunchScope&) = delete;

 private:
  Tracer* tracer_;
  std::optional<Span> span_;
};

/// Fig. 7-style table over a breakdown (per-launch rows capped at
/// `maxLaunchRows`, aggregate row always included).
std::string formatPhaseBreakdown(const std::vector<LaunchBreakdown>& breakdown,
                                 std::size_t maxLaunchRows = 16);

/// The POLYPART_TRACE=<path> hook for examples and benches: construct one in
/// main(), attach tracer() to every RuntimeConfig.  When the environment
/// variable is unset, tracer() is null and nothing is recorded; when set,
/// the destructor writes the Chrome trace to <path> and prints the phase
/// breakdown summary to stderr.
class EnvTraceSession {
 public:
  EnvTraceSession();
  ~EnvTraceSession();

  EnvTraceSession(const EnvTraceSession&) = delete;
  EnvTraceSession& operator=(const EnvTraceSession&) = delete;

  Tracer* tracer() { return tracer_.get(); }

 private:
  std::unique_ptr<Tracer> tracer_;
  std::string path_;
};

}  // namespace polypart::trace
