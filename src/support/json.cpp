#include "support/json.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace polypart::json {

Value& Object::operator[](const std::string& key) {
  for (auto& [k, v] : entries_)
    if (k == key) return v;
  entries_.emplace_back(key, Value());
  return entries_.back().second;
}

const Value* Object::find(const std::string& key) const {
  for (const auto& [k, v] : entries_)
    if (k == key) return &v;
  return nullptr;
}

const Value& Object::at(const std::string& key) const {
  const Value* v = find(key);
  if (!v) throw ModelFormatError("missing JSON key: " + key);
  return *v;
}

bool Value::asBool() const {
  if (!isBool()) throw ModelFormatError("JSON value is not a bool");
  return std::get<bool>(storage_);
}

std::int64_t Value::asInt() const {
  if (isInt()) return std::get<std::int64_t>(storage_);
  throw ModelFormatError("JSON value is not an integer");
}

double Value::asDouble() const {
  if (isDouble()) return std::get<double>(storage_);
  if (isInt()) return static_cast<double>(std::get<std::int64_t>(storage_));
  throw ModelFormatError("JSON value is not a number");
}

const std::string& Value::asString() const {
  if (!isString()) throw ModelFormatError("JSON value is not a string");
  return std::get<std::string>(storage_);
}

Array& Value::asArray() {
  if (!isArray()) throw ModelFormatError("JSON value is not an array");
  return *std::get<std::shared_ptr<Array>>(storage_);
}

const Array& Value::asArray() const {
  if (!isArray()) throw ModelFormatError("JSON value is not an array");
  return *std::get<std::shared_ptr<Array>>(storage_);
}

Object& Value::asObject() {
  if (!isObject()) throw ModelFormatError("JSON value is not an object");
  return *std::get<std::shared_ptr<Object>>(storage_);
}

const Object& Value::asObject() const {
  if (!isObject()) throw ModelFormatError("JSON value is not an object");
  return *std::get<std::shared_ptr<Object>>(storage_);
}

namespace {

void escapeTo(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

struct Dumper {
  int indent;
  std::string out;

  void newline(int depth) {
    if (indent <= 0) return;
    out += '\n';
    out.append(static_cast<std::size_t>(indent * depth), ' ');
  }

  void dump(const Value& v, int depth) {
    if (v.isNull()) {
      out += "null";
    } else if (v.isBool()) {
      out += v.asBool() ? "true" : "false";
    } else if (v.isInt()) {
      out += std::to_string(v.asInt());
    } else if (v.isDouble()) {
      double d = v.asDouble();
      if (std::isfinite(d)) {
        char buf[64];
        std::snprintf(buf, sizeof buf, "%.17g", d);
        out += buf;
      } else {
        out += "null";
      }
    } else if (v.isString()) {
      escapeTo(out, v.asString());
    } else if (v.isArray()) {
      const Array& a = v.asArray();
      out += '[';
      for (std::size_t i = 0; i < a.size(); ++i) {
        if (i) out += ',';
        newline(depth + 1);
        dump(a[i], depth + 1);
      }
      if (!a.empty()) newline(depth);
      out += ']';
    } else {
      const Object& o = v.asObject();
      out += '{';
      bool first = true;
      for (const auto& [k, val] : o) {
        if (!first) out += ',';
        first = false;
        newline(depth + 1);
        escapeTo(out, k);
        out += indent > 0 ? ": " : ":";
        dump(val, depth + 1);
      }
      if (o.size() > 0) newline(depth);
      out += '}';
    }
  }
};

struct Parser {
  const std::string& text;
  std::size_t pos = 0;

  [[noreturn]] void fail(const std::string& msg) {
    throw ModelFormatError("JSON parse error at offset " + std::to_string(pos) +
                           ": " + msg);
  }

  void skipWs() {
    while (pos < text.size() && std::isspace(static_cast<unsigned char>(text[pos]))) ++pos;
  }

  char peek() {
    if (pos >= text.size()) fail("unexpected end of input");
    return text[pos];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos;
  }

  bool consume(char c) {
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }

  Value parseValue() {
    skipWs();
    char c = peek();
    switch (c) {
      case '{': return parseObject();
      case '[': return parseArray();
      case '"': return Value(parseString());
      case 't': literal("true"); return Value(true);
      case 'f': literal("false"); return Value(false);
      case 'n': literal("null"); return Value(nullptr);
      default: return parseNumber();
    }
  }

  void literal(const char* lit) {
    for (const char* p = lit; *p; ++p) {
      if (pos >= text.size() || text[pos] != *p) fail("bad literal");
      ++pos;
    }
  }

  std::string parseString() {
    expect('"');
    std::string s;
    while (true) {
      if (pos >= text.size()) fail("unterminated string");
      char c = text[pos++];
      if (c == '"') break;
      if (c == '\\') {
        if (pos >= text.size()) fail("bad escape");
        char e = text[pos++];
        switch (e) {
          case '"': s += '"'; break;
          case '\\': s += '\\'; break;
          case '/': s += '/'; break;
          case 'n': s += '\n'; break;
          case 't': s += '\t'; break;
          case 'r': s += '\r'; break;
          case 'b': s += '\b'; break;
          case 'f': s += '\f'; break;
          case 'u': {
            if (pos + 4 > text.size()) fail("bad \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = text[pos++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else fail("bad hex digit");
            }
            // Encode as UTF-8 (basic multilingual plane only).
            if (code < 0x80) {
              s += static_cast<char>(code);
            } else if (code < 0x800) {
              s += static_cast<char>(0xC0 | (code >> 6));
              s += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              s += static_cast<char>(0xE0 | (code >> 12));
              s += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              s += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default: fail("bad escape character");
        }
      } else {
        s += c;
      }
    }
    return s;
  }

  Value parseNumber() {
    std::size_t start = pos;
    if (consume('-')) {}
    while (pos < text.size() && std::isdigit(static_cast<unsigned char>(text[pos]))) ++pos;
    bool isDouble = false;
    if (consume('.')) {
      isDouble = true;
      while (pos < text.size() && std::isdigit(static_cast<unsigned char>(text[pos]))) ++pos;
    }
    if (pos < text.size() && (text[pos] == 'e' || text[pos] == 'E')) {
      isDouble = true;
      ++pos;
      if (pos < text.size() && (text[pos] == '+' || text[pos] == '-')) ++pos;
      while (pos < text.size() && std::isdigit(static_cast<unsigned char>(text[pos]))) ++pos;
    }
    if (pos == start || (pos == start + 1 && text[start] == '-')) fail("bad number");
    std::string tok = text.substr(start, pos - start);
    if (!isDouble) {
      std::int64_t v = 0;
      auto [p, ec] = std::from_chars(tok.data(), tok.data() + tok.size(), v);
      if (ec == std::errc() && p == tok.data() + tok.size()) return Value(v);
    }
    try {
      return Value(std::stod(tok));
    } catch (const std::exception&) {
      fail("bad number");
    }
  }

  Value parseArray() {
    expect('[');
    Array a;
    skipWs();
    if (consume(']')) return Value(std::move(a));
    while (true) {
      a.push_back(parseValue());
      skipWs();
      if (consume(']')) break;
      expect(',');
    }
    return Value(std::move(a));
  }

  Value parseObject() {
    expect('{');
    Object o;
    skipWs();
    if (consume('}')) return Value(std::move(o));
    while (true) {
      skipWs();
      std::string key = parseString();
      skipWs();
      expect(':');
      o[key] = parseValue();
      skipWs();
      if (consume('}')) break;
      expect(',');
    }
    return Value(std::move(o));
  }
};

}  // namespace

std::string Value::dump(int indent) const {
  Dumper d{indent, {}};
  d.dump(*this, 0);
  return d.out;
}

Value Value::parse(const std::string& text) {
  Parser p{text};
  Value v = p.parseValue();
  p.skipWs();
  if (p.pos != text.size()) p.fail("trailing content");
  return v;
}

}  // namespace polypart::json
