#include "support/thread_pool.h"

#include <atomic>

#include "support/error.h"
#include "support/trace.h"

namespace polypart::support {

ThreadPool::ThreadPool(int numThreads) {
  if (numThreads < 1) numThreads = 1;
  workers_.reserve(static_cast<std::size_t>(numThreads));
  for (int i = 0; i < numThreads; ++i)
    workers_.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::enqueue(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    PP_ASSERT_MSG(!stop_, "enqueue on a stopped thread pool");
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::workerLoop(int workerIndex) {
  // Tracer the worker last named its track for; re-naming happens only when
  // a different tracer is attached (cheap steady-state path).
  trace::Tracer* namedFor = nullptr;
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and the queue has drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    trace::Tracer* tracer = tracer_.load(std::memory_order_relaxed);
    if (tracer != nullptr && tracer != namedFor) {
      tracer->nameCurrentThread("worker " + std::to_string(workerIndex));
      namedFor = tracer;
    }
    trace::Span span(tracer, "pool", "task", {},
                     {{"worker", workerIndex}});
    task();
  }
}

void ThreadPool::parallelFor(i64 n, const std::function<void(i64)>& body) {
  if (n <= 0) return;
  // One claiming job per worker; each job pulls indices off the shared
  // counter until the range (or an exception) exhausts it.  The caller
  // blocks until every job has exited, so `shared` outliving the stack frame
  // via shared_ptr is belt-and-braces for early unwinds only.
  struct Shared {
    std::atomic<i64> next{0};
    i64 n = 0;
    const std::function<void(i64)>* body = nullptr;
    std::mutex m;
    std::condition_variable done;
    int jobsLeft = 0;
    std::exception_ptr error;
  };
  auto shared = std::make_shared<Shared>();
  shared->n = n;
  shared->body = &body;
  const int jobs = static_cast<int>(std::min<i64>(n, size()));
  shared->jobsLeft = jobs;
  for (int j = 0; j < jobs; ++j) {
    enqueue([shared] {
      for (;;) {
        i64 i = shared->next.fetch_add(1, std::memory_order_relaxed);
        if (i >= shared->n) break;
        try {
          (*shared->body)(i);
        } catch (...) {
          std::lock_guard<std::mutex> lock(shared->m);
          if (!shared->error) shared->error = std::current_exception();
          // Abandon unclaimed indices: callers treat parallelFor as one
          // all-or-nothing step.
          shared->next.store(shared->n, std::memory_order_relaxed);
          break;
        }
      }
      std::lock_guard<std::mutex> lock(shared->m);
      if (--shared->jobsLeft == 0) shared->done.notify_all();
    });
  }
  std::unique_lock<std::mutex> lock(shared->m);
  shared->done.wait(lock, [&] { return shared->jobsLeft == 0; });
  if (shared->error) std::rethrow_exception(shared->error);
}

}  // namespace polypart::support
