#pragma once

// Minimal JSON value, parser, and writer.
//
// The toolchain persists the polyhedral application model between the two
// compiler passes (paper Section 4: "the application model is saved to
// disk").  This module provides the serialization substrate.  It supports
// the JSON subset the model needs: null, bool, 64-bit integers, doubles,
// strings, arrays, objects (insertion-ordered).

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "support/error.h"

namespace polypart::json {

class Value;

using Array = std::vector<Value>;
/// Object preserves insertion order so emitted models diff cleanly.
class Object {
 public:
  Value& operator[](const std::string& key);
  const Value* find(const std::string& key) const;
  const Value& at(const std::string& key) const;
  bool contains(const std::string& key) const { return find(key) != nullptr; }
  std::size_t size() const { return entries_.size(); }
  auto begin() const { return entries_.begin(); }
  auto end() const { return entries_.end(); }

 private:
  std::vector<std::pair<std::string, Value>> entries_;
};

class Value {
 public:
  using Storage = std::variant<std::nullptr_t, bool, std::int64_t, double,
                               std::string, std::shared_ptr<Array>,
                               std::shared_ptr<Object>>;

  Value() : storage_(nullptr) {}
  Value(std::nullptr_t) : storage_(nullptr) {}
  Value(bool b) : storage_(b) {}
  Value(int v) : storage_(static_cast<std::int64_t>(v)) {}
  Value(std::int64_t v) : storage_(v) {}
  Value(std::uint64_t v) : storage_(static_cast<std::int64_t>(v)) {}
  Value(double v) : storage_(v) {}
  Value(const char* s) : storage_(std::string(s)) {}
  Value(std::string s) : storage_(std::move(s)) {}
  Value(Array a) : storage_(std::make_shared<Array>(std::move(a))) {}
  Value(Object o) : storage_(std::make_shared<Object>(std::move(o))) {}

  static Value array() { return Value(Array{}); }
  static Value object() { return Value(Object{}); }

  bool isNull() const { return std::holds_alternative<std::nullptr_t>(storage_); }
  bool isBool() const { return std::holds_alternative<bool>(storage_); }
  bool isInt() const { return std::holds_alternative<std::int64_t>(storage_); }
  bool isDouble() const { return std::holds_alternative<double>(storage_); }
  bool isString() const { return std::holds_alternative<std::string>(storage_); }
  bool isArray() const { return std::holds_alternative<std::shared_ptr<Array>>(storage_); }
  bool isObject() const { return std::holds_alternative<std::shared_ptr<Object>>(storage_); }

  bool asBool() const;
  std::int64_t asInt() const;
  double asDouble() const;
  const std::string& asString() const;
  Array& asArray();
  const Array& asArray() const;
  Object& asObject();
  const Object& asObject() const;

  /// Object member access; throws ModelFormatError when missing.
  const Value& at(const std::string& key) const { return asObject().at(key); }
  Value& operator[](const std::string& key) { return asObject()[key]; }
  void push(Value v) { asArray().push_back(std::move(v)); }

  /// Serializes to a compact string, or indented when `indent > 0`.
  std::string dump(int indent = 0) const;

  /// Parses a JSON document; throws ModelFormatError on malformed input.
  static Value parse(const std::string& text);

 private:
  Storage storage_;
};

}  // namespace polypart::json
