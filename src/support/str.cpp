#include "support/str.h"

#include <cstdarg>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "support/error.h"

namespace polypart {

std::string format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args2;
  va_copy(args2, args);
  int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  PP_ASSERT(n >= 0);
  std::string out(static_cast<std::size_t>(n), '\0');
  std::vsnprintf(out.data(), out.size() + 1, fmt, args2);
  va_end(args2);
  return out;
}

std::string join(const std::vector<std::string>& parts, const std::string& sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

bool startsWith(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() && s.compare(0, prefix.size(), prefix) == 0;
}

std::string trim(const std::string& s) {
  std::size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string readFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw Error("cannot open file for reading: " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void writeFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw Error("cannot open file for writing: " + path);
  out << content;
  if (!out) throw Error("failed writing file: " + path);
}

}  // namespace polypart
