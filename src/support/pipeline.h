#pragma once

// Queue and epoch primitives for the pipelined launch engine (see DESIGN.md
// "Pipelined launches & tenancy").
//
// The runtime's submission pipeline is a classic bounded producer/consumer
// stage: callers enqueue prepared launches, one engine thread dequeues and
// commits them in submission order.  Two small pieces keep that protocol
// honest and reusable:
//
//  - BoundedQueue<T>: a mutex/cv bounded FIFO.  push() blocks while the
//    queue is at capacity (that bound is the pipeline depth — how far ahead
//    submission may run), pop() blocks while it is empty, and close() wakes
//    everyone so producers stop and the consumer drains what remains.
//  - EpochClock: a monotone launch-sequence clock.  issue() hands out epoch
//    numbers at submission, commit() retires them strictly in order (the
//    deterministic ordered commit extended across in-flight launches), and
//    waitFor()/waitIdle() are the blocking primitives behind wait()/drain().
//
// Both are deliberately dumb — no lock-free tricks.  The pipeline's
// determinism comes from the single consumer and the in-order commit, not
// from the queue; contention is one launch descriptor per kernel launch,
// far off any hot path.

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

#include "support/arith.h"
#include "support/error.h"

namespace polypart::support {

template <typename T>
class BoundedQueue {
 public:
  /// Capacity must be positive: a zero-capacity queue could never accept a
  /// push, deadlocking the first producer.
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity) {
    PP_ASSERT(capacity >= 1);
  }

  /// Blocks while the queue is full.  Returns false (dropping `v`) when the
  /// queue was closed before space became available.
  bool push(T v) {
    std::unique_lock<std::mutex> lock(mutex_);
    notFull_.wait(lock, [&] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(v));
    notEmpty_.notify_one();
    return true;
  }

  /// Blocks while the queue is empty.  Returns nullopt once the queue is
  /// closed *and* drained, so a consumer loop processes every accepted item.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    notEmpty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T v = std::move(items_.front());
    items_.pop_front();
    notFull_.notify_one();
    return v;
  }

  /// Closes the queue: pending and future push() calls return false, pop()
  /// drains the remaining items then returns nullopt.
  void close() {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
    notFull_.notify_all();
    notEmpty_.notify_all();
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable notFull_;
  std::condition_variable notEmpty_;
  std::deque<T> items_;
  bool closed_ = false;
};

/// Monotone epoch clock: epochs are issued 0, 1, 2, ... at submission and
/// committed strictly in that order.  waitFor(e) blocks until epoch e has
/// committed; waitIdle() until every issued epoch has.
class EpochClock {
 public:
  /// Issues the next epoch number.
  i64 issue() {
    std::lock_guard<std::mutex> lock(mutex_);
    return nextIssue_++;
  }

  /// Retires `epoch`.  Commits must arrive in issue order — out-of-order
  /// commit would break the pipeline's determinism contract, so it asserts.
  void commit(i64 epoch) {
    std::lock_guard<std::mutex> lock(mutex_);
    PP_ASSERT_MSG(epoch == committed_ + 1, "epochs must commit in issue order");
    PP_ASSERT_MSG(epoch < nextIssue_, "commit of an epoch never issued");
    committed_ = epoch;
    cv_.notify_all();
  }

  /// Last committed epoch (-1 before any commit).
  i64 committed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return committed_;
  }

  i64 issued() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return nextIssue_;
  }

  /// Blocks until `epoch` has committed (returns immediately if it already
  /// has, including for negative epochs).
  void waitFor(i64 epoch) const {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [&] { return committed_ >= epoch; });
  }

  /// Blocks until every issued epoch has committed.
  void waitIdle() const {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [&] { return committed_ + 1 == nextIssue_; });
  }

  bool idle() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return committed_ + 1 == nextIssue_;
  }

 private:
  mutable std::mutex mutex_;
  mutable std::condition_variable cv_;
  i64 nextIssue_ = 0;
  i64 committed_ = -1;
};

}  // namespace polypart::support
