#pragma once

// Strict parsing for the POLYPART_* environment knobs.
//
// Every override that flips a RuntimeConfig default or a test harness
// setting goes through these helpers so an invalid value fails loudly with
// a diagnostic naming the variable and the accepted values, instead of
// silently falling back to the default (which hides typos like
// POLYPART_DATAFLOW_PLANNING=ture for an entire CI run).

#include <optional>
#include <string>

#include "support/arith.h"

namespace polypart::env {

/// The raw value of `name`, or nullopt when the variable is unset or empty.
/// An empty string is treated as unset: `env POLYPART_X= cmd` is how shells
/// clear a knob without unexporting it.
std::optional<std::string> value(const char* name);

/// Parses `name` as a boolean flag.  Accepted (case-sensitive): `1`, `on`,
/// `true`, `yes` => true; `0`, `off`, `false`, `no` => false.  Unset/empty
/// => `fallback`.  Anything else throws Error naming the variable and the
/// accepted spellings.
bool flag(const char* name, bool fallback);

/// Parses `name` as an unsigned 64-bit integer (base auto-detected: 0x...,
/// 0..., decimal).  Unset/empty => nullopt.  Anything unparseable — trailing
/// garbage, a leading minus, out-of-range — throws Error naming the
/// variable.
std::optional<u64> u64Value(const char* name);

}  // namespace polypart::env
