#pragma once

// Deterministic, seedable RNG (xoshiro256**) for tests, property sweeps, and
// workload generation.  Using our own generator keeps random test cases
// identical across standard libraries and platforms.

#include <cstdint>

namespace polypart {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) {
    // SplitMix64 seeding as recommended by the xoshiro authors.
    for (auto& word : state_) {
      seed += 0x9E3779B97F4A7C15ull;
      std::uint64_t z = seed;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      word = z ^ (z >> 31);
    }
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [lo, hi] (inclusive).
  std::int64_t range(std::int64_t lo, std::int64_t hi) {
    const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(next() % span);
  }

  /// Uniform double in [0, 1).
  double uniform() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

  bool chance(double p) { return uniform() < p; }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4];
};

}  // namespace polypart
