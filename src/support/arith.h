#pragma once

// Checked 64-bit integer arithmetic and number-theoretic helpers used by the
// polyhedral library.  Fourier-Motzkin elimination multiplies constraint
// coefficients, so every arithmetic operation here detects overflow and
// throws OverflowError instead of silently wrapping.

#include <cstdint>

#include "support/error.h"

namespace polypart {

using i64 = std::int64_t;
using u64 = std::uint64_t;

/// Adds with overflow detection.
inline i64 checkedAdd(i64 a, i64 b) {
  i64 r;
  if (__builtin_add_overflow(a, b, &r)) throw OverflowError("add overflow");
  return r;
}

/// Subtracts with overflow detection.
inline i64 checkedSub(i64 a, i64 b) {
  i64 r;
  if (__builtin_sub_overflow(a, b, &r)) throw OverflowError("sub overflow");
  return r;
}

/// Multiplies with overflow detection.
inline i64 checkedMul(i64 a, i64 b) {
  i64 r;
  if (__builtin_mul_overflow(a, b, &r)) throw OverflowError("mul overflow");
  return r;
}

/// Negates with overflow detection (INT64_MIN has no negation).
inline i64 checkedNeg(i64 a) { return checkedSub(0, a); }

/// Greatest common divisor of |a| and |b|; gcd(0, 0) == 0.
i64 gcd(i64 a, i64 b);

/// Least common multiple; throws on overflow.
i64 lcm(i64 a, i64 b);

/// Floor division: floorDiv(7, 2) == 3, floorDiv(-7, 2) == -4.
i64 floorDiv(i64 a, i64 b);

/// Ceiling division: ceilDiv(7, 2) == 4, ceilDiv(-7, 2) == -3.
i64 ceilDiv(i64 a, i64 b);

/// Mathematical modulo with result in [0, |b|).
i64 floorMod(i64 a, i64 b);

}  // namespace polypart
