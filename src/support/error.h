#pragma once

// Error handling for the polypart library.
//
// Contract violations (programming errors) abort via PP_ASSERT.  Recoverable
// conditions that depend on user input (unsupported kernels, malformed models,
// inexact analyses) throw one of the exception types below so the toolchain
// can reject an application and report why.

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace polypart {

/// Base class for all recoverable polypart errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// The analysis could not produce a sound model for a kernel (non-affine
/// accesses, non-injective writes, inexact projections of write maps, ...).
class UnsupportedKernelError : public Error {
 public:
  explicit UnsupportedKernelError(const std::string& what) : Error(what) {}
};

/// A serialized application model could not be parsed.
class ModelFormatError : public Error {
 public:
  explicit ModelFormatError(const std::string& what) : Error(what) {}
};

/// The runtime was asked to perform an operation the paper's system rejects
/// (e.g. device-to-device memcpy, Section 8.2).
class UnsupportedOperationError : public Error {
 public:
  explicit UnsupportedOperationError(const std::string& what) : Error(what) {}
};

/// Arithmetic left the representable range during polyhedral computations.
class OverflowError : public Error {
 public:
  explicit OverflowError(const std::string& what) : Error(what) {}
};

[[noreturn]] inline void assertFail(const char* cond, const char* file,
                                    int line, const char* msg) {
  std::fprintf(stderr, "polypart assertion failed: %s (%s:%d)%s%s\n", cond,
               file, line, msg ? ": " : "", msg ? msg : "");
  std::abort();
}

}  // namespace polypart

#define PP_ASSERT(cond)                                                \
  do {                                                                 \
    if (!(cond)) ::polypart::assertFail(#cond, __FILE__, __LINE__, nullptr); \
  } while (0)

#define PP_ASSERT_MSG(cond, msg)                                    \
  do {                                                              \
    if (!(cond)) ::polypart::assertFail(#cond, __FILE__, __LINE__, msg); \
  } while (0)
