#include "support/trace.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "support/error.h"

namespace polypart::trace {

namespace {

std::atomic<u64> nextGeneration{1};

/// Trace categories that feed the phase breakdown (see phaseBreakdown()).
constexpr const char* kCatSimKernel = "sim.kernel";
constexpr const char* kCatSimCopy = "sim.copy";
constexpr const char* kCatSimPattern = "sim.pattern";

}  // namespace

Tracer::Tracer(TracerOptions options)
    : options_(options),
      generation_(nextGeneration.fetch_add(1, std::memory_order_relaxed)),
      epoch_(std::chrono::steady_clock::now()) {}

Tracer::~Tracer() = default;

Tracer::ThreadBuffer& Tracer::buffer() {
  // Cache the (tracer, buffer) pair per thread; the generation check makes a
  // stale cache entry (other tracer, or a destroyed tracer whose address was
  // reused) miss instead of aliasing.
  thread_local Tracer* cachedOwner = nullptr;
  thread_local u64 cachedGen = 0;
  thread_local ThreadBuffer* cached = nullptr;
  if (cachedOwner == this && cachedGen == generation_) return *cached;

  std::lock_guard<std::mutex> lock(mutex_);
  const std::thread::id self = std::this_thread::get_id();
  ThreadBuffer* buf = nullptr;
  for (const auto& b : buffers_)
    if (b->threadId == self) {
      buf = b.get();
      break;
    }
  if (buf == nullptr) {
    buffers_.push_back(std::make_unique<ThreadBuffer>());
    buf = buffers_.back().get();
    buf->threadId = self;
    buf->tid = static_cast<int>(buffers_.size());
  }
  cachedOwner = this;
  cachedGen = generation_;
  cached = buf;
  return *buf;
}

double Tracer::nowMicros() const {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

double Tracer::beginTimestamp() {
  if (options_.deterministicTimestamps)
    return static_cast<double>(seq_.fetch_add(1, std::memory_order_relaxed));
  return nowMicros();
}

Event& Tracer::append(Event::Kind kind, const char* category,
                      std::string&& name, std::initializer_list<Arg> args) {
  ThreadBuffer& buf = buffer();
  buf.events.emplace_back();
  Event& e = buf.events.back();
  e.kind = kind;
  e.category = category;
  e.name = std::move(name);
  e.launch = currentLaunch();
  e.tsMicros = beginTimestamp();
  for (const Arg& a : args)
    if (e.numArgs < kMaxArgs) e.args[static_cast<std::size_t>(e.numArgs++)] = a;
  return e;
}

void Tracer::instantImpl(const char* category, std::string name,
                         std::initializer_list<Arg> args) {
  append(Event::Kind::Instant, category, std::move(name), args);
}

void Tracer::counterImpl(const char* category, std::string name, i64 value) {
  append(Event::Kind::Counter, category, std::move(name), {Arg{"value", value}});
}

void Tracer::tenantInstantImpl(int tenant, const char* category,
                               std::string name,
                               std::initializer_list<Arg> args) {
  Event& e = append(Event::Kind::Instant, category, std::move(name), args);
  e.pid = kTenantPid;
  e.track = tenant;
}

void Tracer::tenantCounterImpl(int tenant, const char* category,
                               std::string name, i64 value) {
  Event& e = append(Event::Kind::Counter, category, std::move(name),
                    {Arg{"value", value}});
  e.pid = kTenantPid;
  e.track = tenant;
}

void Tracer::simSpanImpl(const char* category, std::string name, int simTid,
                         double startSeconds, double durationSeconds,
                         std::initializer_list<Arg> args) {
  Event& e = append(Event::Kind::Span, category, std::move(name), args);
  e.pid = kSimPid;
  e.track = simTid;
  e.tsMicros = startSeconds * 1e6;
  e.durMicros = durationSeconds * 1e6;
}

void Tracer::completeSpanImpl(const char* category, std::string&& name,
                              double tsStart, i64 launch,
                              const std::array<Arg, kMaxArgs>& args,
                              int numArgs) {
  ThreadBuffer& buf = buffer();
  buf.events.emplace_back();
  Event& e = buf.events.back();
  e.kind = Event::Kind::Span;
  e.category = category;
  e.name = std::move(name);
  e.launch = launch;
  e.tsMicros = tsStart;
  e.durMicros =
      options_.deterministicTimestamps ? 0 : nowMicros() - tsStart;
  e.args = args;
  e.numArgs = numArgs;
}

i64 Tracer::beginLaunch(const std::string& kernelName) {
  const i64 id = nextLaunch_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    launchNames_.emplace(id, kernelName);
  }
  currentLaunch_.store(id, std::memory_order_relaxed);
  return id;
}

void Tracer::endLaunch() {
  currentLaunch_.store(-1, std::memory_order_relaxed);
}

void Tracer::nameCurrentThread(std::string name) {
  buffer().name = std::move(name);
}

void Tracer::nameSimTrack(int simTid, std::string name) {
  std::lock_guard<std::mutex> lock(mutex_);
  simTrackNames_[simTid] = std::move(name);
}

void Tracer::nameTenantTrack(int tenant, std::string name) {
  std::lock_guard<std::mutex> lock(mutex_);
  tenantTrackNames_[tenant] = std::move(name);
}

std::size_t Tracer::eventCount() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t n = 0;
  for (const auto& b : buffers_) n += b->events.size();
  return n;
}

json::Value Tracer::toJson() const {
  std::lock_guard<std::mutex> lock(mutex_);

  json::Value events = json::Value::array();
  auto meta = [&](int pid, int tid, const char* what, const std::string& name) {
    json::Value m = json::Value::object();
    m["name"] = what;
    m["ph"] = "M";
    m["pid"] = pid;
    m["tid"] = tid;
    json::Value args = json::Value::object();
    args["name"] = name;
    m["args"] = std::move(args);
    events.push(std::move(m));
  };
  meta(kWallPid, 0, "process_name", "host (wall clock)");
  meta(kSimPid, 0, "process_name", "machine (simulated time)");
  // The tenant process appears only when the runtime actually recorded
  // tenant-domain events (single-client traces stay two-process).
  bool anyTenant = !tenantTrackNames_.empty();
  for (const auto& b : buffers_)
    for (const Event& e : b->events) anyTenant |= e.pid == kTenantPid;
  if (anyTenant) meta(kTenantPid, 0, "process_name", "tenants (launch streams)");
  for (const auto& b : buffers_)
    meta(kWallPid, b->tid, "thread_name",
         b->name.empty() ? "thread " + std::to_string(b->tid) : b->name);
  for (const auto& [tid, name] : simTrackNames_)
    meta(kSimPid, tid, "thread_name", name);
  for (const auto& [tid, name] : tenantTrackNames_)
    meta(kTenantPid, tid, "thread_name", name);

  // Stable order: buffers in registration order, events in append order,
  // then a stable sort by timestamp (ordinals under deterministic mode, so
  // serial-mode output is byte-reproducible).
  std::vector<const Event*> ordered;
  for (const auto& b : buffers_)
    for (const Event& e : b->events) ordered.push_back(&e);
  std::vector<int> tidOf(ordered.size(), 0);
  {
    std::size_t i = 0;
    for (const auto& b : buffers_)
      for (std::size_t k = 0; k < b->events.size(); ++k) tidOf[i++] = b->tid;
  }
  std::vector<std::size_t> order(ordered.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return ordered[a]->tsMicros < ordered[b]->tsMicros;
  });

  for (std::size_t oi : order) {
    const Event& e = *ordered[oi];
    json::Value v = json::Value::object();
    v["name"] = e.name;
    v["cat"] = e.category;
    switch (e.kind) {
      case Event::Kind::Span: v["ph"] = "X"; break;
      case Event::Kind::Instant: v["ph"] = "i"; break;
      case Event::Kind::Counter: v["ph"] = "C"; break;
    }
    v["ts"] = e.tsMicros;
    if (e.kind == Event::Kind::Span) v["dur"] = e.durMicros;
    if (e.kind == Event::Kind::Instant) v["s"] = "t";
    v["pid"] = e.pid;
    v["tid"] = e.pid == kWallPid ? tidOf[oi] : e.track;
    json::Value args = json::Value::object();
    if (e.launch >= 0) args["launch"] = e.launch;
    for (int a = 0; a < e.numArgs; ++a)
      args[e.args[static_cast<std::size_t>(a)].key] =
          e.args[static_cast<std::size_t>(a)].value;
    if (args.asObject().size() > 0) v["args"] = std::move(args);
    events.push(std::move(v));
  }

  json::Value root = json::Value::object();
  root["traceEvents"] = std::move(events);
  root["displayTimeUnit"] = "ms";
  return root;
}

std::string Tracer::exportChromeTrace() const { return toJson().dump(1); }

void Tracer::writeFile(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  PP_ASSERT_MSG(out.good(), "cannot open trace output file");
  out << exportChromeTrace();
}

std::vector<LaunchBreakdown> Tracer::phaseBreakdown() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::map<i64, LaunchBreakdown> by;
  for (const auto& b : buffers_) {
    for (const Event& e : b->events) {
      if (e.kind != Event::Kind::Span || e.pid != kSimPid || e.launch < 0)
        continue;
      LaunchBreakdown& lb = by[e.launch];
      lb.launch = e.launch;
      const double secs = e.durMicros * 1e-6;
      if (e.category == std::string_view(kCatSimKernel))
        lb.executionSeconds += secs;
      else if (e.category == std::string_view(kCatSimCopy))
        lb.transferSeconds += secs;
      else if (e.category == std::string_view(kCatSimPattern))
        lb.patternSeconds += secs;
    }
  }
  std::vector<LaunchBreakdown> out;
  out.reserve(by.size());
  for (auto& [id, lb] : by) {
    auto it = launchNames_.find(id);
    if (it != launchNames_.end()) lb.kernel = it->second;
    out.push_back(std::move(lb));
  }
  return out;
}

std::string formatPhaseBreakdown(const std::vector<LaunchBreakdown>& breakdown,
                                 std::size_t maxLaunchRows) {
  std::string out;
  char line[160];
  std::snprintf(line, sizeof line, "%7s  %-16s  %11s  %11s  %11s\n", "launch",
                "kernel", "execution", "transfers", "patterns");
  out += line;
  LaunchBreakdown total;
  std::size_t rows = 0;
  for (const LaunchBreakdown& lb : breakdown) {
    total.executionSeconds += lb.executionSeconds;
    total.transferSeconds += lb.transferSeconds;
    total.patternSeconds += lb.patternSeconds;
    if (rows++ >= maxLaunchRows) continue;
    std::snprintf(line, sizeof line,
                  "%7lld  %-16s  %10.1f%%  %10.1f%%  %10.1f%%\n",
                  static_cast<long long>(lb.launch), lb.kernel.c_str(),
                  100 * lb.executionShare(), 100 * lb.transferShare(),
                  100 * lb.patternShare());
    out += line;
  }
  if (rows > maxLaunchRows) {
    std::snprintf(line, sizeof line, "%7s  (%zu more launches)\n", "...",
                  rows - maxLaunchRows);
    out += line;
  }
  std::snprintf(line, sizeof line,
                "%7s  %-16s  %10.1f%%  %10.1f%%  %10.1f%%  (busy-share of "
                "%.3f ms attributed sim time)\n",
                "total", "", 100 * total.executionShare(),
                100 * total.transferShare(), 100 * total.patternShare(),
                1e3 * total.totalSeconds());
  out += line;
  return out;
}

EnvTraceSession::EnvTraceSession() {
  if constexpr (!kTracingCompiledIn) return;
  const char* path = std::getenv("POLYPART_TRACE");
  if (path == nullptr || path[0] == '\0') return;
  // Probe writability up front: an unwritable path would otherwise be
  // discovered only in the destructor, after the traced run completed, with
  // the whole trace silently lost.
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr)
    throw Error(std::string("invalid POLYPART_TRACE value '") + path +
                "' (expected a writable file path)");
  std::fclose(f);
  path_ = path;
  tracer_ = std::make_unique<Tracer>();
}

EnvTraceSession::~EnvTraceSession() {
  if (!tracer_) return;
  tracer_->writeFile(path_);
  std::string summary = formatPhaseBreakdown(tracer_->phaseBreakdown());
  std::fprintf(stderr,
               "[trace] %zu events written to %s (chrome://tracing, Perfetto)\n"
               "[trace] per-launch phase breakdown:\n%s",
               tracer_->eventCount(), path_.c_str(), summary.c_str());
}

}  // namespace polypart::trace
