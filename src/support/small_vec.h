#pragma once

// Small-vector with inline storage for trivially copyable element types.
//
// LinExpr coefficient rows are short (constant + params + dims; under ~30
// columns for every space this system builds) but are copied and combined in
// the innermost loops of Fourier-Motzkin elimination, where a heap
// allocation per row dominates the arithmetic.  SmallVec keeps up to N
// elements inline and only touches the heap for wider rows, with the same
// subset of the std::vector interface the pset and codegen hot paths use
// (the enumerator keeps its per-call scratch — parameter vector, extents,
// loop coordinates, pre-merge ranges — in SmallVecs for the same reason).

#include <algorithm>
#include <cstddef>
#include <cstring>
#include <initializer_list>
#include <type_traits>

#include "support/error.h"

namespace polypart::support {

template <typename T, std::size_t N>
class SmallVec {
  static_assert(std::is_trivially_copyable_v<T>,
                "SmallVec only supports trivially copyable elements");

 public:
  using value_type = T;
  using iterator = T*;
  using const_iterator = const T*;

  SmallVec() = default;
  SmallVec(std::size_t n, const T& value) { assign(n, value); }
  SmallVec(std::initializer_list<T> init) {
    reserve(init.size());
    for (const T& v : init) data_[size_++] = v;
  }
  template <typename It, typename = std::enable_if_t<!std::is_integral_v<It>>>
  SmallVec(It first, It last) {
    for (; first != last; ++first) push_back(*first);
  }

  SmallVec(const SmallVec& o) { copyFrom(o); }
  SmallVec(SmallVec&& o) noexcept { moveFrom(o); }
  SmallVec& operator=(const SmallVec& o) {
    if (this != &o) {
      releaseHeap();
      copyFrom(o);
    }
    return *this;
  }
  SmallVec& operator=(SmallVec&& o) noexcept {
    if (this != &o) {
      releaseHeap();
      moveFrom(o);
    }
    return *this;
  }
  ~SmallVec() { releaseHeap(); }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  T& operator[](std::size_t i) { return data_[i]; }
  const T& operator[](std::size_t i) const { return data_[i]; }

  T* data() { return data_; }
  const T* data() const { return data_; }
  T& back() { return data_[size_ - 1]; }
  const T& back() const { return data_[size_ - 1]; }

  T* begin() { return data_; }
  T* end() { return data_ + size_; }
  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }

  void assign(std::size_t n, const T& value) {
    reserve(n);
    std::fill_n(data_, n, value);
    size_ = n;
  }

  void resize(std::size_t n) {
    reserve(n);
    if (n > size_) std::fill_n(data_ + size_, n - size_, T{});
    size_ = n;
  }

  void push_back(const T& v) {
    if (size_ == cap_) reserve(cap_ * 2);
    data_[size_++] = v;
  }

  void pop_back() { --size_; }

  void clear() { size_ = 0; }

  friend bool operator==(const SmallVec& a, const SmallVec& b) {
    return a.size_ == b.size_ &&
           std::memcmp(a.data_, b.data_, a.size_ * sizeof(T)) == 0;
  }

 private:
  void reserve(std::size_t n) {
    if (n <= cap_) return;
    std::size_t cap = std::max(n, cap_ * 2);
    T* mem = new T[cap];
    std::memcpy(mem, data_, size_ * sizeof(T));
    releaseHeap();
    data_ = mem;
    cap_ = cap;
  }

  void copyFrom(const SmallVec& o) {
    if (o.size_ <= N) {
      data_ = inline_;
      cap_ = N;
    } else {
      data_ = new T[o.size_];
      cap_ = o.size_;
    }
    size_ = o.size_;
    std::memcpy(data_, o.data_, size_ * sizeof(T));
  }

  void moveFrom(SmallVec& o) {
    if (o.data_ == o.inline_) {
      data_ = inline_;
      cap_ = N;
      size_ = o.size_;
      std::memcpy(data_, o.data_, size_ * sizeof(T));
    } else {
      data_ = o.data_;
      cap_ = o.cap_;
      size_ = o.size_;
      o.data_ = o.inline_;
      o.cap_ = N;
    }
    o.size_ = 0;
  }

  void releaseHeap() {
    if (data_ != inline_) delete[] data_;
    data_ = inline_;
    cap_ = N;
  }

  T* data_ = inline_;
  std::size_t size_ = 0;
  std::size_t cap_ = N;
  T inline_[N]{};
};

}  // namespace polypart::support
