#include "support/arith.h"

namespace polypart {

namespace {

i64 absChecked(i64 a) {
  if (a == INT64_MIN) throw OverflowError("abs overflow");
  return a < 0 ? -a : a;
}

}  // namespace

i64 gcd(i64 a, i64 b) {
  a = absChecked(a);
  b = absChecked(b);
  while (b != 0) {
    i64 t = a % b;
    a = b;
    b = t;
  }
  return a;
}

i64 lcm(i64 a, i64 b) {
  if (a == 0 || b == 0) return 0;
  i64 g = gcd(a, b);
  return checkedMul(absChecked(a) / g, absChecked(b));
}

i64 floorDiv(i64 a, i64 b) {
  PP_ASSERT_MSG(b != 0, "division by zero");
  i64 q = a / b;
  i64 r = a % b;
  if (r != 0 && ((r < 0) != (b < 0))) --q;
  return q;
}

i64 ceilDiv(i64 a, i64 b) {
  PP_ASSERT_MSG(b != 0, "division by zero");
  i64 q = a / b;
  i64 r = a % b;
  if (r != 0 && ((r < 0) == (b < 0))) ++q;
  return q;
}

i64 floorMod(i64 a, i64 b) { return checkedSub(a, checkedMul(floorDiv(a, b), b)); }

}  // namespace polypart
