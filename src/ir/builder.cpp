#include "ir/builder.h"

#include "ir/verify.h"

namespace polypart::ir {

KernelPtr KernelBuilder::build() {
  PP_ASSERT_MSG(stack_.size() == 1, "unbalanced builder scopes");
  auto kernel = std::make_shared<Kernel>(name_, std::move(params_), popBlock(), loadReuse_);
  verify(*kernel);
  return kernel;
}

}  // namespace polypart::ir
