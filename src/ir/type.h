#pragma once

// Scalar types and runtime values for the kernel IR.
//
// The IR models CUDA device code at the granularity the partitioning
// toolchain needs: 64-bit integers for index arithmetic and doubles for
// floating-point payloads.  (Narrower types would only change byte counts in
// the cost model; they are modeled via the element size of array parameters.)

#include <cstdint>
#include <string>

#include "support/arith.h"
#include "support/error.h"

namespace polypart::ir {

enum class Type { I64, F64 };

inline const char* typeName(Type t) { return t == Type::I64 ? "i64" : "f64"; }

/// A runtime scalar value.
struct Value {
  Type type = Type::I64;
  union {
    i64 i;
    double f;
  };

  Value() : i(0) {}
  static Value ofInt(i64 v) {
    Value x;
    x.type = Type::I64;
    x.i = v;
    return x;
  }
  static Value ofFloat(double v) {
    Value x;
    x.type = Type::F64;
    x.f = v;
    return x;
  }

  i64 asInt() const {
    PP_ASSERT(type == Type::I64);
    return i;
  }
  double asFloat() const {
    PP_ASSERT(type == Type::F64);
    return f;
  }
};

/// CUDA-style 3-component extent; `x` is the fastest-varying dimension.
struct Dim3 {
  i64 x = 1;
  i64 y = 1;
  i64 z = 1;

  i64 count() const { return checkedMul(checkedMul(x, y), z); }
  bool operator==(const Dim3&) const = default;
  std::string str() const {
    return "(" + std::to_string(x) + ", " + std::to_string(y) + ", " +
           std::to_string(z) + ")";
  }
};

/// Grid axes in the paper's notation, w in {z, y, x}.  Axis::X is the
/// innermost/fastest dimension.
enum class Axis { X = 0, Y = 1, Z = 2 };

inline i64 axisOf(const Dim3& d, Axis a) {
  switch (a) {
    case Axis::X: return d.x;
    case Axis::Y: return d.y;
    case Axis::Z: return d.z;
  }
  PP_ASSERT(false);
  return 0;
}

inline const char* axisName(Axis a) {
  switch (a) {
    case Axis::X: return "x";
    case Axis::Y: return "y";
    case Axis::Z: return "z";
  }
  return "?";
}

}  // namespace polypart::ir
