#pragma once

// Statement nodes of the kernel IR: structured control flow only (sequential
// loops, conditionals, blocks), matching the paper's restriction to reducible
// control flow (Section 4).

#include <memory>
#include <string>
#include <vector>

#include "ir/expr.h"

namespace polypart::ir {

class Stmt;
using StmtPtr = std::shared_ptr<const Stmt>;

class Stmt {
 public:
  enum class Kind {
    Block,   // body_
    Let,     // name_ := expr_ (immutable local)
    Assign,  // name_ := expr_ (re-assignment of a mutable local)
    Store,   // arrayArg_[index_] = expr_
    For,     // for (name_ = lo_; name_ < hi_; name_ += 1) body_[0]
    If,      // if (cond_) body_[0] else body_[1] (else may be null)
  };

  Kind kind() const { return kind_; }
  const std::string& varName() const { return name_; }
  const ExprPtr& value() const { return expr_; }
  std::size_t arrayArg() const { return argIndex_; }
  const ExprPtr& index() const { return index_; }
  const ExprPtr& lo() const { return lo_; }
  const ExprPtr& hi() const { return hi_; }
  const ExprPtr& cond() const { return cond_; }
  const std::vector<StmtPtr>& body() const { return body_; }

  static StmtPtr block(std::vector<StmtPtr> stmts);
  static StmtPtr let(std::string name, ExprPtr value);
  static StmtPtr assign(std::string name, ExprPtr value);
  static StmtPtr store(std::size_t arrayArg, ExprPtr flatIndex, ExprPtr value);
  /// `for (name = lo; name < hi; ++name) body` — `name` has type I64.
  static StmtPtr forLoop(std::string name, ExprPtr lo, ExprPtr hi, StmtPtr body);
  static StmtPtr ifThen(ExprPtr cond, StmtPtr then, StmtPtr otherwise = nullptr);

  /// C-like rendering with the given indent.
  std::string str(int indent = 0) const;

 private:
  Kind kind_ = Kind::Block;
  std::string name_;
  ExprPtr expr_;
  std::size_t argIndex_ = 0;
  ExprPtr index_;
  ExprPtr lo_, hi_;
  ExprPtr cond_;
  std::vector<StmtPtr> body_;
};

}  // namespace polypart::ir
