#include "ir/expr.h"

#include "support/str.h"

namespace polypart::ir {

const char* builtinName(Builtin b) {
  switch (b) {
    case Builtin::ThreadIdxX: return "threadIdx.x";
    case Builtin::ThreadIdxY: return "threadIdx.y";
    case Builtin::ThreadIdxZ: return "threadIdx.z";
    case Builtin::BlockIdxX: return "blockIdx.x";
    case Builtin::BlockIdxY: return "blockIdx.y";
    case Builtin::BlockIdxZ: return "blockIdx.z";
    case Builtin::BlockDimX: return "blockDim.x";
    case Builtin::BlockDimY: return "blockDim.y";
    case Builtin::BlockDimZ: return "blockDim.z";
    case Builtin::GridDimX: return "gridDim.x";
    case Builtin::GridDimY: return "gridDim.y";
    case Builtin::GridDimZ: return "gridDim.z";
  }
  return "?";
}

const char* binOpName(BinOp op) {
  switch (op) {
    case BinOp::Add: return "+";
    case BinOp::Sub: return "-";
    case BinOp::Mul: return "*";
    case BinOp::Div: return "/";
    case BinOp::Rem: return "%";
    case BinOp::Min: return "min";
    case BinOp::Max: return "max";
    case BinOp::Eq: return "==";
    case BinOp::Ne: return "!=";
    case BinOp::Lt: return "<";
    case BinOp::Le: return "<=";
    case BinOp::Gt: return ">";
    case BinOp::Ge: return ">=";
    case BinOp::And: return "&&";
    case BinOp::Or: return "||";
  }
  return "?";
}

const char* mathFnName(MathFn f) {
  switch (f) {
    case MathFn::Sqrt: return "sqrt";
    case MathFn::Rsqrt: return "rsqrt";
    case MathFn::Exp: return "exp";
    case MathFn::Fabs: return "fabs";
  }
  return "?";
}

namespace {

bool isComparison(BinOp op) {
  switch (op) {
    case BinOp::Eq: case BinOp::Ne: case BinOp::Lt:
    case BinOp::Le: case BinOp::Gt: case BinOp::Ge:
    case BinOp::And: case BinOp::Or:
      return true;
    default:
      return false;
  }
}

}  // namespace

ExprPtr Expr::intConst(i64 v) {
  auto e = std::make_shared<Expr>();
  e->kind_ = Kind::IntConst;
  e->type_ = Type::I64;
  e->value_ = v;
  return e;
}

ExprPtr Expr::floatConst(double v) {
  auto e = std::make_shared<Expr>();
  e->kind_ = Kind::FloatConst;
  e->type_ = Type::F64;
  e->fvalue_ = v;
  return e;
}

ExprPtr Expr::arg(std::size_t index, Type t) {
  auto e = std::make_shared<Expr>();
  e->kind_ = Kind::Arg;
  e->type_ = t;
  e->argIndex_ = index;
  return e;
}

ExprPtr Expr::local(std::string name, Type t) {
  auto e = std::make_shared<Expr>();
  e->kind_ = Kind::Local;
  e->type_ = t;
  e->name_ = std::move(name);
  return e;
}

ExprPtr Expr::builtinVar(Builtin b) {
  auto e = std::make_shared<Expr>();
  e->kind_ = Kind::BuiltinVar;
  e->type_ = Type::I64;
  e->builtin_ = b;
  return e;
}

ExprPtr Expr::load(std::size_t arrayArg, Type elemType, ExprPtr flatIndex) {
  PP_ASSERT(flatIndex && flatIndex->type() == Type::I64);
  auto e = std::make_shared<Expr>();
  e->kind_ = Kind::Load;
  e->type_ = elemType;
  e->argIndex_ = arrayArg;
  e->args_ = {std::move(flatIndex)};
  return e;
}

ExprPtr Expr::unary(UnOp op, ExprPtr a) {
  PP_ASSERT(a);
  auto e = std::make_shared<Expr>();
  e->kind_ = Kind::Unary;
  e->type_ = op == UnOp::Not ? Type::I64 : a->type();
  e->unOp_ = op;
  e->args_ = {std::move(a)};
  return e;
}

ExprPtr Expr::binary(BinOp op, ExprPtr a, ExprPtr b) {
  PP_ASSERT(a && b);
  PP_ASSERT_MSG(a->type() == b->type(), "binary operand type mismatch");
  auto e = std::make_shared<Expr>();
  e->kind_ = Kind::Binary;
  e->type_ = isComparison(op) ? Type::I64 : a->type();
  e->binOp_ = op;
  e->args_ = {std::move(a), std::move(b)};
  return e;
}

ExprPtr Expr::select(ExprPtr cond, ExprPtr ifTrue, ExprPtr ifFalse) {
  PP_ASSERT(cond && ifTrue && ifFalse);
  PP_ASSERT(cond->type() == Type::I64);
  PP_ASSERT(ifTrue->type() == ifFalse->type());
  auto e = std::make_shared<Expr>();
  e->kind_ = Kind::Select;
  e->type_ = ifTrue->type();
  e->args_ = {std::move(cond), std::move(ifTrue), std::move(ifFalse)};
  return e;
}

ExprPtr Expr::cast(Type to, ExprPtr a) {
  PP_ASSERT(a);
  if (a->type() == to) return a;
  auto e = std::make_shared<Expr>();
  e->kind_ = Kind::Cast;
  e->type_ = to;
  e->args_ = {std::move(a)};
  return e;
}

ExprPtr Expr::math(MathFn fn, ExprPtr a) {
  PP_ASSERT(a && a->type() == Type::F64);
  auto e = std::make_shared<Expr>();
  e->kind_ = Kind::Math;
  e->type_ = Type::F64;
  e->mathFn_ = fn;
  e->args_ = {std::move(a)};
  return e;
}

std::string Expr::str() const {
  switch (kind_) {
    case Kind::IntConst: return std::to_string(value_);
    case Kind::FloatConst: return format("%g", fvalue_);
    case Kind::Arg: return "arg" + std::to_string(argIndex_);
    case Kind::Local: return name_;
    case Kind::BuiltinVar: return builtinName(builtin_);
    case Kind::Load:
      return "arg" + std::to_string(argIndex_) + "[" + args_[0]->str() + "]";
    case Kind::Unary:
      return std::string(unOp_ == UnOp::Neg ? "-" : "!") + "(" + args_[0]->str() + ")";
    case Kind::Binary: {
      if (binOp_ == BinOp::Min || binOp_ == BinOp::Max)
        return std::string(binOpName(binOp_)) + "(" + args_[0]->str() + ", " +
               args_[1]->str() + ")";
      return "(" + args_[0]->str() + " " + binOpName(binOp_) + " " +
             args_[1]->str() + ")";
    }
    case Kind::Select:
      return "(" + args_[0]->str() + " ? " + args_[1]->str() + " : " +
             args_[2]->str() + ")";
    case Kind::Cast:
      return std::string("(") + typeName(type_) + ")(" + args_[0]->str() + ")";
    case Kind::Math:
      return std::string(mathFnName(mathFn_)) + "(" + args_[0]->str() + ")";
  }
  return "?";
}

}  // namespace polypart::ir
