#include "ir/transform.h"

#include "ir/verify.h"

namespace polypart::ir {

namespace {

struct Rewriter {
  std::size_t firstPartArg;  // index of __part_min_x

  ExprPtr partArg(std::size_t offset) const {
    return Expr::arg(firstPartArg + offset, Type::I64);
  }

  ExprPtr rewrite(const ExprPtr& e) {
    switch (e->kind()) {
      case Expr::Kind::BuiltinVar: {
        switch (e->builtin()) {
          // Eq. (8): blockIdx.w -> partition.min_w + blockIdx.w.
          case Builtin::BlockIdxX: return partArg(0) + e;
          case Builtin::BlockIdxY: return partArg(1) + e;
          case Builtin::BlockIdxZ: return partArg(2) + e;
          // Eq. (9): gridDim.w -> partition.max_w.
          case Builtin::GridDimX: return partArg(3);
          case Builtin::GridDimY: return partArg(4);
          case Builtin::GridDimZ: return partArg(5);
          default: return e;
        }
      }
      case Expr::Kind::IntConst:
      case Expr::Kind::FloatConst:
      case Expr::Kind::Arg:
      case Expr::Kind::Local:
        return e;
      default: break;
    }
    // Rebuild interior nodes whose operands changed.
    std::vector<ExprPtr> kids;
    kids.reserve(e->operands().size());
    bool changed = false;
    for (const ExprPtr& k : e->operands()) {
      ExprPtr nk = rewrite(k);
      changed |= (nk != k);
      kids.push_back(std::move(nk));
    }
    if (!changed) return e;
    switch (e->kind()) {
      case Expr::Kind::Load:
        return Expr::load(e->argIndex(), e->type(), std::move(kids[0]));
      case Expr::Kind::Unary:
        return Expr::unary(e->unOp(), std::move(kids[0]));
      case Expr::Kind::Binary:
        return Expr::binary(e->binOp(), std::move(kids[0]), std::move(kids[1]));
      case Expr::Kind::Select:
        return Expr::select(std::move(kids[0]), std::move(kids[1]), std::move(kids[2]));
      case Expr::Kind::Cast:
        return Expr::cast(e->type(), std::move(kids[0]));
      case Expr::Kind::Math:
        return Expr::math(e->mathFn(), std::move(kids[0]));
      default:
        PP_ASSERT(false);
        return e;
    }
  }

  StmtPtr rewrite(const StmtPtr& s) {
    switch (s->kind()) {
      case Stmt::Kind::Block: {
        std::vector<StmtPtr> body;
        body.reserve(s->body().size());
        bool changed = false;
        for (const StmtPtr& c : s->body()) {
          StmtPtr nc = rewrite(c);
          changed |= (nc != c);
          body.push_back(std::move(nc));
        }
        return changed ? Stmt::block(std::move(body)) : s;
      }
      case Stmt::Kind::Let:
        return Stmt::let(s->varName(), rewrite(s->value()));
      case Stmt::Kind::Assign:
        return Stmt::assign(s->varName(), rewrite(s->value()));
      case Stmt::Kind::Store:
        return Stmt::store(s->arrayArg(), rewrite(s->index()), rewrite(s->value()));
      case Stmt::Kind::For:
        return Stmt::forLoop(s->varName(), rewrite(s->lo()), rewrite(s->hi()),
                             rewrite(s->body()[0]));
      case Stmt::Kind::If: {
        StmtPtr otherwise = s->body()[1] ? rewrite(s->body()[1]) : nullptr;
        return Stmt::ifThen(rewrite(s->cond()), rewrite(s->body()[0]),
                            std::move(otherwise));
      }
    }
    PP_ASSERT(false);
    return s;
  }
};

}  // namespace

KernelPtr partitionKernel(const Kernel& kernel) {
  std::vector<Param> params = kernel.params();
  std::size_t firstPartArg = params.size();
  for (const char* name : kPartitionParamNames)
    params.push_back(Param{name, false, Type::I64, {}});

  Rewriter rw{firstPartArg};
  StmtPtr body = rw.rewrite(kernel.body());
  auto clone = std::make_shared<Kernel>(kernel.name() + "__part",
                                        std::move(params), std::move(body),
                                        kernel.loadReuse());
  verify(*clone);
  return clone;
}

}  // namespace polypart::ir
