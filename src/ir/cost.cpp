#include "ir/cost.h"

#include <optional>

namespace polypart::ir {

namespace {

struct CostCtx {
  std::span<const ArgValue> args;
  i64 builtins[12];
};

/// Integer-evaluates an expression when it only depends on scalars, builtins
/// and constants; returns nullopt when a load or local intervenes.
std::optional<i64> tryEvalInt(const Expr& e, const CostCtx& ctx) {
  switch (e.kind()) {
    case Expr::Kind::IntConst: return e.intValue();
    case Expr::Kind::Arg: {
      const ArgValue& a = ctx.args[e.argIndex()];
      if (a.buffer != nullptr || a.scalar.type != Type::I64) return std::nullopt;
      return a.scalar.i;
    }
    case Expr::Kind::BuiltinVar:
      return ctx.builtins[static_cast<int>(e.builtin())];
    case Expr::Kind::Binary: {
      auto a = tryEvalInt(*e.operands()[0], ctx);
      auto b = tryEvalInt(*e.operands()[1], ctx);
      if (!a || !b) return std::nullopt;
      switch (e.binOp()) {
        case BinOp::Add: return *a + *b;
        case BinOp::Sub: return *a - *b;
        case BinOp::Mul: return *a * *b;
        case BinOp::Div: return *b == 0 ? std::nullopt : std::optional<i64>(*a / *b);
        case BinOp::Rem: return *b == 0 ? std::nullopt : std::optional<i64>(*a % *b);
        case BinOp::Min: return std::min(*a, *b);
        case BinOp::Max: return std::max(*a, *b);
        default: return std::nullopt;
      }
    }
    case Expr::Kind::Unary:
      if (e.unOp() == UnOp::Neg) {
        auto a = tryEvalInt(*e.operands()[0], ctx);
        return a ? std::optional<i64>(-*a) : std::nullopt;
      }
      return std::nullopt;
    default:
      return std::nullopt;
  }
}

void countExpr(const Expr& e, const CostCtx& ctx, double weight, ThreadCost& out) {
  switch (e.kind()) {
    case Expr::Kind::Load:
      out.loads += weight;
      break;
    case Expr::Kind::Binary:
      if (e.type() == Type::F64 ||
          (e.operands()[0]->type() == Type::F64)) {
        out.flops += weight;
      }
      break;
    case Expr::Kind::Math:
      // Special functions cost several FP operations on real hardware.
      out.flops += 4 * weight;
      break;
    case Expr::Kind::Unary:
      if (e.type() == Type::F64) out.flops += weight;
      break;
    default:
      break;
  }
  for (const ExprPtr& k : e.operands()) countExpr(*k, ctx, weight, out);
}

void countStmt(const Stmt& s, const CostCtx& ctx, double weight, ThreadCost& out) {
  switch (s.kind()) {
    case Stmt::Kind::Block:
      for (const StmtPtr& c : s.body()) countStmt(*c, ctx, weight, out);
      break;
    case Stmt::Kind::Let:
    case Stmt::Kind::Assign:
      countExpr(*s.value(), ctx, weight, out);
      break;
    case Stmt::Kind::Store:
      out.stores += weight;
      countExpr(*s.index(), ctx, weight, out);
      countExpr(*s.value(), ctx, weight, out);
      break;
    case Stmt::Kind::For: {
      auto lo = tryEvalInt(*s.lo(), ctx);
      auto hi = tryEvalInt(*s.hi(), ctx);
      double trips = 1;
      if (lo && hi) trips = static_cast<double>(std::max<i64>(0, *hi - *lo));
      countExpr(*s.lo(), ctx, weight, out);
      countExpr(*s.hi(), ctx, weight, out);
      countStmt(*s.body()[0], ctx, weight * trips, out);
      break;
    }
    case Stmt::Kind::If:
      countExpr(*s.cond(), ctx, weight, out);
      // Branches are costed as taken: the overwhelmingly common pattern is a
      // grid-overhang guard that is true for nearly all threads.
      countStmt(*s.body()[0], ctx, weight, out);
      break;
  }
}

}  // namespace

ThreadCost estimateThreadCost(const Kernel& kernel, const LaunchConfig& cfg,
                              std::span<const ArgValue> args) {
  PP_ASSERT(args.size() == kernel.numParams());
  CostCtx ctx{args, {}};
  auto set = [&](Builtin b, i64 v) { ctx.builtins[static_cast<int>(b)] = v; };
  set(Builtin::BlockDimX, cfg.block.x);
  set(Builtin::BlockDimY, cfg.block.y);
  set(Builtin::BlockDimZ, cfg.block.z);
  set(Builtin::GridDimX, cfg.grid.x);
  set(Builtin::GridDimY, cfg.grid.y);
  set(Builtin::GridDimZ, cfg.grid.z);
  // Representative thread: the middle of the grid and block.
  set(Builtin::BlockIdxX, cfg.grid.x / 2);
  set(Builtin::BlockIdxY, cfg.grid.y / 2);
  set(Builtin::BlockIdxZ, cfg.grid.z / 2);
  set(Builtin::ThreadIdxX, cfg.block.x / 2);
  set(Builtin::ThreadIdxY, cfg.block.y / 2);
  set(Builtin::ThreadIdxZ, cfg.block.z / 2);

  ThreadCost out;
  countStmt(*kernel.body(), ctx, 1.0, out);
  return out;
}

}  // namespace polypart::ir
