#pragma once

// Functional execution of IR kernels — the stand-in for running device code
// on a GPU.  Executes every thread of a launch grid sequentially; results are
// bit-identical across runs, which the integration tests rely on when
// comparing single-device and partitioned multi-device execution.

#include <functional>
#include <span>

#include "ir/kernel.h"

namespace polypart::ir {

/// Grid and block extents of one launch.
struct LaunchConfig {
  Dim3 grid;
  Dim3 block;
};

/// Runtime value for one kernel argument.  Arrays point at host-side element
/// storage typed per the parameter's element type (i64 or double, 8 bytes per
/// element either way).
struct ArgValue {
  Value scalar;               // scalars only
  void* buffer = nullptr;     // arrays only
  i64 numElements = 0;        // array extent, for bounds checking

  static ArgValue ofInt(i64 v) { return ArgValue{Value::ofInt(v), nullptr, 0}; }
  static ArgValue ofFloat(double v) { return ArgValue{Value::ofFloat(v), nullptr, 0}; }
  static ArgValue ofBuffer(void* data, i64 elements) {
    return ArgValue{Value{}, data, elements};
  }
};

/// Observer invoked on every global-memory access during execution; used by
/// tests to validate the polyhedral model against observed behaviour.
/// `builtins` holds the 12 CUDA special registers indexed by ir::Builtin.
using AccessObserver = std::function<void(
    std::size_t argIndex, bool isWrite, i64 flatIndex, std::span<const i64, 12> builtins)>;

/// Executes all threads of `cfg` on `kernel`.  Throws Error on out-of-bounds
/// accesses or malformed argument lists.  `observer` may be null.
void execute(const Kernel& kernel, const LaunchConfig& cfg,
             std::span<const ArgValue> args,
             const AccessObserver& observer = nullptr);

}  // namespace polypart::ir
