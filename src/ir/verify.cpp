#include "ir/verify.h"

#include <map>
#include <set>

#include "support/error.h"

namespace polypart::ir {

namespace {

struct Verifier {
  const Kernel& kernel;
  // Locals in scope with their types; inner scopes push/pop.
  std::map<std::string, Type> locals;

  [[noreturn]] void fail(const std::string& msg) const {
    throw Error("kernel '" + kernel.name() + "': " + msg);
  }

  void checkShapeExpr(const Expr& e) const {
    switch (e.kind()) {
      case Expr::Kind::IntConst:
        return;
      case Expr::Kind::Arg: {
        if (e.argIndex() >= kernel.numParams()) fail("shape arg index out of range");
        const Param& p = kernel.param(e.argIndex());
        if (p.isArray) fail("array shape refers to array parameter '" + p.name + "'");
        if (p.type != Type::I64) fail("array shape refers to non-integer scalar");
        return;
      }
      case Expr::Kind::Binary:
        for (const ExprPtr& k : e.operands()) checkShapeExpr(*k);
        return;
      default:
        fail("array shape expression must be affine in scalar parameters");
    }
  }

  void checkExpr(const Expr& e) {
    switch (e.kind()) {
      case Expr::Kind::IntConst:
      case Expr::Kind::FloatConst:
      case Expr::Kind::BuiltinVar:
        break;
      case Expr::Kind::Arg: {
        if (e.argIndex() >= kernel.numParams()) fail("arg index out of range");
        const Param& p = kernel.param(e.argIndex());
        if (p.isArray) fail("array parameter '" + p.name + "' used as a scalar");
        if (p.type != e.type()) fail("scalar '" + p.name + "' used with wrong type");
        break;
      }
      case Expr::Kind::Local: {
        auto it = locals.find(e.localName());
        if (it == locals.end()) fail("use of undefined local '" + e.localName() + "'");
        if (it->second != e.type())
          fail("local '" + e.localName() + "' used with wrong type");
        break;
      }
      case Expr::Kind::Load: {
        if (e.argIndex() >= kernel.numParams()) fail("load arg index out of range");
        const Param& p = kernel.param(e.argIndex());
        if (!p.isArray) fail("load from scalar parameter '" + p.name + "'");
        if (p.type != e.type()) fail("load type mismatch on '" + p.name + "'");
        break;
      }
      case Expr::Kind::Unary:
      case Expr::Kind::Binary:
      case Expr::Kind::Select:
      case Expr::Kind::Cast:
      case Expr::Kind::Math:
        break;
    }
    for (const ExprPtr& k : e.operands()) checkExpr(*k);
  }

  void checkStmt(const Stmt& s) {
    switch (s.kind()) {
      case Stmt::Kind::Block: {
        // Locals declared in a block go out of scope at its end.
        std::map<std::string, Type> saved = locals;
        for (const StmtPtr& c : s.body()) checkStmt(*c);
        locals = std::move(saved);
        break;
      }
      case Stmt::Kind::Let: {
        checkExpr(*s.value());
        if (locals.count(s.varName()))
          fail("redefinition of local '" + s.varName() + "'");
        locals.emplace(s.varName(), s.value()->type());
        break;
      }
      case Stmt::Kind::Assign: {
        checkExpr(*s.value());
        auto it = locals.find(s.varName());
        if (it == locals.end())
          fail("assignment to undefined local '" + s.varName() + "'");
        if (it->second != s.value()->type())
          fail("assignment type mismatch on '" + s.varName() + "'");
        break;
      }
      case Stmt::Kind::Store: {
        checkExpr(*s.index());
        checkExpr(*s.value());
        if (s.arrayArg() >= kernel.numParams()) fail("store arg index out of range");
        const Param& p = kernel.param(s.arrayArg());
        if (!p.isArray) fail("store to scalar parameter '" + p.name + "'");
        if (p.type != s.value()->type())
          fail("store type mismatch on '" + p.name + "'");
        break;
      }
      case Stmt::Kind::For: {
        checkExpr(*s.lo());
        checkExpr(*s.hi());
        if (locals.count(s.varName()))
          fail("loop variable shadows local '" + s.varName() + "'");
        std::map<std::string, Type> saved = locals;
        locals.emplace(s.varName(), Type::I64);
        checkStmt(*s.body()[0]);
        locals = std::move(saved);
        break;
      }
      case Stmt::Kind::If: {
        checkExpr(*s.cond());
        std::map<std::string, Type> saved = locals;
        checkStmt(*s.body()[0]);
        locals = saved;
        if (s.body()[1]) checkStmt(*s.body()[1]);
        locals = std::move(saved);
        break;
      }
    }
  }
};

}  // namespace

void verify(const Kernel& kernel) {
  std::set<std::string> names;
  for (const Param& p : kernel.params()) {
    if (!names.insert(p.name).second)
      throw Error("kernel '" + kernel.name() + "': duplicate parameter '" + p.name + "'");
  }
  Verifier v{kernel, {}};
  for (const Param& p : kernel.params())
    for (const ExprPtr& d : p.shape) v.checkShapeExpr(*d);
  v.checkStmt(*kernel.body());
}

}  // namespace polypart::ir
