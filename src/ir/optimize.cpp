#include "ir/optimize.h"

#include <map>
#include <set>

#include "ir/verify.h"

namespace polypart::ir {

namespace {

bool isIntConst(const ExprPtr& e, i64 v) {
  return e->kind() == Expr::Kind::IntConst && e->intValue() == v;
}

bool isFloatConst(const ExprPtr& e, double v) {
  return e->kind() == Expr::Kind::FloatConst && e->floatValue() == v;
}

/// Folds a binary op over two integer constants.
ExprPtr foldIntBinary(BinOp op, i64 a, i64 b) {
  switch (op) {
    case BinOp::Add: return Expr::intConst(a + b);
    case BinOp::Sub: return Expr::intConst(a - b);
    case BinOp::Mul: return Expr::intConst(a * b);
    case BinOp::Div: return b == 0 ? nullptr : Expr::intConst(a / b);
    case BinOp::Rem: return b == 0 ? nullptr : Expr::intConst(a % b);
    case BinOp::Min: return Expr::intConst(std::min(a, b));
    case BinOp::Max: return Expr::intConst(std::max(a, b));
    case BinOp::Eq: return Expr::intConst(a == b);
    case BinOp::Ne: return Expr::intConst(a != b);
    case BinOp::Lt: return Expr::intConst(a < b);
    case BinOp::Le: return Expr::intConst(a <= b);
    case BinOp::Gt: return Expr::intConst(a > b);
    case BinOp::Ge: return Expr::intConst(a >= b);
    case BinOp::And: return Expr::intConst(a != 0 && b != 0);
    case BinOp::Or: return Expr::intConst(a != 0 || b != 0);
  }
  return nullptr;
}

struct Folder {
  OptimizeStats* stats;

  void count(int& field) {
    if (stats) ++field;
  }

  ExprPtr fold(const ExprPtr& e) {
    // Fold children first.
    std::vector<ExprPtr> kids;
    kids.reserve(e->operands().size());
    bool changed = false;
    for (const ExprPtr& k : e->operands()) {
      ExprPtr nk = fold(k);
      changed |= (nk != k);
      kids.push_back(std::move(nk));
    }

    switch (e->kind()) {
      case Expr::Kind::Binary: {
        const ExprPtr& a = kids[0];
        const ExprPtr& b = kids[1];
        BinOp op = e->binOp();
        if (a->kind() == Expr::Kind::IntConst && b->kind() == Expr::Kind::IntConst) {
          if (ExprPtr f = foldIntBinary(op, a->intValue(), b->intValue())) {
            count(stats->foldedExpressions);
            return f;
          }
        }
        // Algebraic identities (integer and floating; the floating-point
        // ones used here are exact in IEEE semantics for x+0.0 with x not
        // -0.0... be conservative: only fold float identities for * 1.0).
        if (a->type() == Type::I64) {
          if ((op == BinOp::Add && isIntConst(b, 0)) ||
              (op == BinOp::Sub && isIntConst(b, 0)) ||
              (op == BinOp::Mul && isIntConst(b, 1)) ||
              (op == BinOp::Div && isIntConst(b, 1))) {
            count(stats->foldedExpressions);
            return a;
          }
          if (op == BinOp::Add && isIntConst(a, 0)) {
            count(stats->foldedExpressions);
            return b;
          }
          if (op == BinOp::Mul && isIntConst(a, 1)) {
            count(stats->foldedExpressions);
            return b;
          }
          if (op == BinOp::Mul && (isIntConst(a, 0) || isIntConst(b, 0))) {
            count(stats->foldedExpressions);
            return Expr::intConst(0);
          }
        } else {
          if (op == BinOp::Mul && isFloatConst(b, 1.0)) {
            count(stats->foldedExpressions);
            return a;
          }
          if (op == BinOp::Mul && isFloatConst(a, 1.0)) {
            count(stats->foldedExpressions);
            return b;
          }
        }
        break;
      }
      case Expr::Kind::Select:
        if (kids[0]->kind() == Expr::Kind::IntConst) {
          count(stats->foldedExpressions);
          return kids[0]->intValue() != 0 ? kids[1] : kids[2];
        }
        break;
      case Expr::Kind::Unary:
        if (e->unOp() == UnOp::Neg && kids[0]->kind() == Expr::Kind::IntConst) {
          count(stats->foldedExpressions);
          return Expr::intConst(-kids[0]->intValue());
        }
        if (e->unOp() == UnOp::Not && kids[0]->kind() == Expr::Kind::IntConst) {
          count(stats->foldedExpressions);
          return Expr::intConst(kids[0]->intValue() == 0);
        }
        break;
      case Expr::Kind::Cast:
        if (kids[0]->kind() == Expr::Kind::IntConst && e->type() == Type::F64) {
          count(stats->foldedExpressions);
          return Expr::floatConst(static_cast<double>(kids[0]->intValue()));
        }
        break;
      default:
        break;
    }

    if (!changed) return e;
    // Rebuild with folded children.
    switch (e->kind()) {
      case Expr::Kind::Load: return Expr::load(e->argIndex(), e->type(), kids[0]);
      case Expr::Kind::Unary: return Expr::unary(e->unOp(), kids[0]);
      case Expr::Kind::Binary: return Expr::binary(e->binOp(), kids[0], kids[1]);
      case Expr::Kind::Select: return Expr::select(kids[0], kids[1], kids[2]);
      case Expr::Kind::Cast: return Expr::cast(e->type(), kids[0]);
      case Expr::Kind::Math: return Expr::math(e->mathFn(), kids[0]);
      default: return e;
    }
  }

  StmtPtr foldStmt(const StmtPtr& s) {
    switch (s->kind()) {
      case Stmt::Kind::Block: {
        std::vector<StmtPtr> body;
        bool changed = false;
        for (const StmtPtr& c : s->body()) {
          StmtPtr nc = foldStmt(c);
          changed |= (nc != c);
          if (nc) body.push_back(std::move(nc));
        }
        return changed ? Stmt::block(std::move(body)) : s;
      }
      case Stmt::Kind::Let:
        return Stmt::let(s->varName(), fold(s->value()));
      case Stmt::Kind::Assign:
        return Stmt::assign(s->varName(), fold(s->value()));
      case Stmt::Kind::Store:
        return Stmt::store(s->arrayArg(), fold(s->index()), fold(s->value()));
      case Stmt::Kind::For: {
        ExprPtr lo = fold(s->lo());
        ExprPtr hi = fold(s->hi());
        // Provably empty loop: drop it.
        if (lo->kind() == Expr::Kind::IntConst && hi->kind() == Expr::Kind::IntConst &&
            lo->intValue() >= hi->intValue()) {
          count(stats->simplifiedBranches);
          return Stmt::block({});
        }
        return Stmt::forLoop(s->varName(), std::move(lo), std::move(hi),
                             foldStmt(s->body()[0]));
      }
      case Stmt::Kind::If: {
        ExprPtr cond = fold(s->cond());
        if (cond->kind() == Expr::Kind::IntConst) {
          count(stats->simplifiedBranches);
          if (cond->intValue() != 0) return foldStmt(s->body()[0]);
          if (s->body()[1]) return foldStmt(s->body()[1]);
          return Stmt::block({});
        }
        StmtPtr otherwise = s->body()[1] ? foldStmt(s->body()[1]) : nullptr;
        return Stmt::ifThen(std::move(cond), foldStmt(s->body()[0]),
                            std::move(otherwise));
      }
    }
    PP_ASSERT(false);
    return s;
  }
};

/// Collects names of locals that are referenced anywhere.
void collectUses(const Expr& e, std::set<std::string>& used) {
  if (e.kind() == Expr::Kind::Local) used.insert(e.localName());
  for (const ExprPtr& k : e.operands()) collectUses(*k, used);
}

void collectUses(const Stmt& s, std::set<std::string>& used) {
  switch (s.kind()) {
    case Stmt::Kind::Block:
      for (const StmtPtr& c : s.body()) collectUses(*c, used);
      break;
    case Stmt::Kind::Let:
    case Stmt::Kind::Assign:
      collectUses(*s.value(), used);
      break;
    case Stmt::Kind::Store:
      collectUses(*s.index(), used);
      collectUses(*s.value(), used);
      break;
    case Stmt::Kind::For:
      collectUses(*s.lo(), used);
      collectUses(*s.hi(), used);
      collectUses(*s.body()[0], used);
      break;
    case Stmt::Kind::If:
      collectUses(*s.cond(), used);
      collectUses(*s.body()[0], used);
      if (s.body()[1]) collectUses(*s.body()[1], used);
      break;
  }
}

/// True when an expression has no side effects (loads are side-effect-free
/// in the IR; only stores/assignments mutate state).
bool isPure(const Expr&) { return true; }

struct Dce {
  const std::set<std::string>& used;
  OptimizeStats* stats;

  StmtPtr run(const StmtPtr& s) {
    switch (s->kind()) {
      case Stmt::Kind::Block: {
        std::vector<StmtPtr> body;
        bool changed = false;
        for (const StmtPtr& c : s->body()) {
          StmtPtr nc = run(c);
          changed |= (nc != c);
          if (nc) body.push_back(std::move(nc));
        }
        return changed ? Stmt::block(std::move(body)) : s;
      }
      case Stmt::Kind::Let:
        if (!used.count(s->varName()) && isPure(*s->value())) {
          if (stats) ++stats->eliminatedLets;
          return nullptr;
        }
        return s;
      case Stmt::Kind::Assign:
        if (!used.count(s->varName()) && isPure(*s->value())) {
          if (stats) ++stats->eliminatedLets;
          return nullptr;
        }
        return s;
      case Stmt::Kind::Store:
        return s;
      case Stmt::Kind::For:
        return Stmt::forLoop(s->varName(), s->lo(), s->hi(), run(s->body()[0]));
      case Stmt::Kind::If: {
        StmtPtr otherwise = s->body()[1] ? run(s->body()[1]) : nullptr;
        return Stmt::ifThen(s->cond(), run(s->body()[0]), std::move(otherwise));
      }
    }
    PP_ASSERT(false);
    return s;
  }
};

}  // namespace

ExprPtr foldExpr(const ExprPtr& e, OptimizeStats* stats) {
  OptimizeStats local;
  Folder f{stats ? stats : &local};
  return f.fold(e);
}

KernelPtr optimizeKernel(const Kernel& kernel, OptimizeStats* stats) {
  OptimizeStats local;
  OptimizeStats* st = stats ? stats : &local;
  StmtPtr body = kernel.body();
  // Iterate to a fixpoint: folding enables branch collapses which enable
  // further DCE; kernel bodies are small so a handful of rounds suffices.
  for (int round = 0; round < 8; ++round) {
    Folder f{st};
    StmtPtr folded = f.foldStmt(body);
    std::set<std::string> used;
    collectUses(*folded, used);
    Dce dce{used, st};
    StmtPtr cleaned = dce.run(folded);
    if (!cleaned) cleaned = Stmt::block({});
    if (cleaned == body) break;
    body = std::move(cleaned);
  }
  auto out = std::make_shared<Kernel>(kernel.name(), kernel.params(), std::move(body),
                                      kernel.loadReuse());
  verify(*out);
  return out;
}

Module optimizeModule(const Module& module, OptimizeStats* stats) {
  Module out;
  for (const KernelPtr& k : module.kernels()) out.addKernel(optimizeKernel(*k, stats));
  return out;
}

}  // namespace polypart::ir
