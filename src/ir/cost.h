#pragma once

// Static per-thread cost estimation used by the timing-only execution mode
// of the GPU simulator.  Counts floating-point operations and global-memory
// accesses per thread for a concrete launch (scalar argument values known,
// representative thread coordinates for data-dependent trip counts).

#include <span>

#include "ir/interp.h"

namespace polypart::ir {

struct ThreadCost {
  double flops = 0;   // floating-point operations
  double loads = 0;   // global-memory loads (elements)
  double stores = 0;  // global-memory stores (elements)
};

/// Estimates the cost of one representative thread of `cfg` (the thread in
/// the middle of the grid).  `args` supplies concrete scalar values; array
/// entries are ignored apart from existing.  Loop trip counts are evaluated
/// from the bounds; unevaluable bounds (data-dependent on loads) fall back
/// to a trip count of 1.  Branches are costed as taken.
ThreadCost estimateThreadCost(const Kernel& kernel, const LaunchConfig& cfg,
                              std::span<const ArgValue> args);

}  // namespace polypart::ir
