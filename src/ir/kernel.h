#pragma once

// Kernel definitions: parameter list plus a statement body.  A Module groups
// the kernels of one application, mirroring one CUDA translation unit's
// device code.

#include <memory>
#include <string>
#include <vector>

#include "ir/stmt.h"

namespace polypart::ir {

/// A kernel parameter: either a scalar (i64/f64) or a global-memory array.
/// Arrays carry their element type and an optional logical shape given as
/// expressions over the *scalar* parameters (outermost dimension first).
/// The shape feeds delinearization and row-major range enumeration; a
/// shapeless array is treated as one-dimensional.
struct Param {
  std::string name;
  bool isArray = false;
  Type type = Type::I64;          // scalar type or array element type
  std::vector<ExprPtr> shape;     // empty for scalars and 1-D arrays
};

class Kernel {
 public:
  Kernel(std::string name, std::vector<Param> params, StmtPtr body,
         double loadReuse = 1.0)
      : name_(std::move(name)), params_(std::move(params)), body_(std::move(body)),
        loadReuse_(loadReuse) {}

  const std::string& name() const { return name_; }
  const std::vector<Param>& params() const { return params_; }
  const Param& param(std::size_t i) const { return params_[i]; }
  const StmtPtr& body() const { return body_; }

  /// On-chip reuse factor for global loads: how many program-level loads
  /// are served per DRAM access (shared-memory tiles, L1/L2 hits).  The IR
  /// has no shared memory, so implementations that tile — the paper's
  /// "basic tiled" Matmul, shared-memory N-Body — declare their effective
  /// reuse here and the device timing model divides load traffic by it.
  double loadReuse() const { return loadReuse_; }

  std::size_t numParams() const { return params_.size(); }

  std::vector<std::size_t> arrayParamIndices() const {
    std::vector<std::size_t> out;
    for (std::size_t i = 0; i < params_.size(); ++i)
      if (params_[i].isArray) out.push_back(i);
    return out;
  }

  std::vector<std::size_t> scalarParamIndices() const {
    std::vector<std::size_t> out;
    for (std::size_t i = 0; i < params_.size(); ++i)
      if (!params_[i].isArray) out.push_back(i);
    return out;
  }

  /// C-like rendering of the whole kernel.
  std::string str() const;

 private:
  std::string name_;
  std::vector<Param> params_;
  StmtPtr body_;
  double loadReuse_ = 1.0;
};

using KernelPtr = std::shared_ptr<const Kernel>;

/// One application's device code.
class Module {
 public:
  void addKernel(KernelPtr k) { kernels_.push_back(std::move(k)); }
  const std::vector<KernelPtr>& kernels() const { return kernels_; }

  KernelPtr find(const std::string& name) const {
    for (const KernelPtr& k : kernels_)
      if (k->name() == name) return k;
    return nullptr;
  }

 private:
  std::vector<KernelPtr> kernels_;
};

}  // namespace polypart::ir
