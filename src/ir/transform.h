#pragma once

// Kernel partitioning transformation (paper Section 7).
//
// Given a kernel, produces a clone with six appended i64 parameters
// describing a half-open thread-block box, and applies the substitution
// rules of Eqs. (8) and (9):
//
//   blockIdx.w -> partition.min_w + blockIdx.w
//   gridDim.w  -> partition.max_w
//
// The transformed kernel must be launched with gridConf.w =
// partition.max_w - partition.min_w (Eq. 10); computing that configuration
// is the launcher's job (rt/launch.h).

#include "ir/kernel.h"

namespace polypart::ir {

/// A half-open box of thread blocks: blocks b with lo.w <= b.w < hi.w.
struct GridPartition {
  Dim3 lo;  // inclusive
  Dim3 hi;  // exclusive

  i64 blockCount() const {
    return checkedMul(checkedMul(hi.x - lo.x, hi.y - lo.y), hi.z - lo.z);
  }
  bool operator==(const GridPartition&) const = default;
};

/// Names of the appended partition parameters, in order:
/// min.x, min.y, min.z, max.x, max.y, max.z.
inline constexpr const char* kPartitionParamNames[6] = {
    "__part_min_x", "__part_min_y", "__part_min_z",
    "__part_max_x", "__part_max_y", "__part_max_z",
};

/// Returns the partitioned clone (name suffixed with "__part").  The clone
/// has numParams() + 6 parameters.
KernelPtr partitionKernel(const Kernel& kernel);

}  // namespace polypart::ir
