#include "ir/stmt.h"

#include "ir/kernel.h"
#include "support/str.h"

namespace polypart::ir {

StmtPtr Stmt::block(std::vector<StmtPtr> stmts) {
  auto s = std::make_shared<Stmt>();
  s->kind_ = Kind::Block;
  s->body_ = std::move(stmts);
  return s;
}

StmtPtr Stmt::let(std::string name, ExprPtr value) {
  PP_ASSERT(value);
  auto s = std::make_shared<Stmt>();
  s->kind_ = Kind::Let;
  s->name_ = std::move(name);
  s->expr_ = std::move(value);
  return s;
}

StmtPtr Stmt::assign(std::string name, ExprPtr value) {
  PP_ASSERT(value);
  auto s = std::make_shared<Stmt>();
  s->kind_ = Kind::Assign;
  s->name_ = std::move(name);
  s->expr_ = std::move(value);
  return s;
}

StmtPtr Stmt::store(std::size_t arrayArg, ExprPtr flatIndex, ExprPtr value) {
  PP_ASSERT(flatIndex && value);
  PP_ASSERT(flatIndex->type() == Type::I64);
  auto s = std::make_shared<Stmt>();
  s->kind_ = Kind::Store;
  s->argIndex_ = arrayArg;
  s->index_ = std::move(flatIndex);
  s->expr_ = std::move(value);
  return s;
}

StmtPtr Stmt::forLoop(std::string name, ExprPtr lo, ExprPtr hi, StmtPtr body) {
  PP_ASSERT(lo && hi && body);
  PP_ASSERT(lo->type() == Type::I64 && hi->type() == Type::I64);
  auto s = std::make_shared<Stmt>();
  s->kind_ = Kind::For;
  s->name_ = std::move(name);
  s->lo_ = std::move(lo);
  s->hi_ = std::move(hi);
  s->body_ = {std::move(body)};
  return s;
}

StmtPtr Stmt::ifThen(ExprPtr cond, StmtPtr then, StmtPtr otherwise) {
  PP_ASSERT(cond && then);
  PP_ASSERT(cond->type() == Type::I64);
  auto s = std::make_shared<Stmt>();
  s->kind_ = Kind::If;
  s->cond_ = std::move(cond);
  s->body_ = {std::move(then), std::move(otherwise)};
  return s;
}

namespace {

void render(const Stmt& s, int indent, std::string& out) {
  auto pad = [&] { out.append(static_cast<std::size_t>(indent) * 2, ' '); };
  switch (s.kind()) {
    case Stmt::Kind::Block:
      for (const StmtPtr& c : s.body()) render(*c, indent, out);
      break;
    case Stmt::Kind::Let:
      pad();
      out += "let " + s.varName() + " = " + s.value()->str() + ";\n";
      break;
    case Stmt::Kind::Assign:
      pad();
      out += s.varName() + " = " + s.value()->str() + ";\n";
      break;
    case Stmt::Kind::Store:
      pad();
      out += "arg" + std::to_string(s.arrayArg()) + "[" + s.index()->str() +
             "] = " + s.value()->str() + ";\n";
      break;
    case Stmt::Kind::For:
      pad();
      out += "for (" + s.varName() + " = " + s.lo()->str() + "; " + s.varName() +
             " < " + s.hi()->str() + "; ++" + s.varName() + ") {\n";
      render(*s.body()[0], indent + 1, out);
      pad();
      out += "}\n";
      break;
    case Stmt::Kind::If:
      pad();
      out += "if (" + s.cond()->str() + ") {\n";
      render(*s.body()[0], indent + 1, out);
      if (s.body()[1]) {
        pad();
        out += "} else {\n";
        render(*s.body()[1], indent + 1, out);
      }
      pad();
      out += "}\n";
      break;
  }
}

}  // namespace

std::string Stmt::str(int indent) const {
  std::string out;
  render(*this, indent, out);
  return out;
}

std::string Kernel::str() const {
  std::string out = "__global__ void " + name_ + "(";
  std::vector<std::string> ps;
  for (const Param& p : params_) {
    std::string decl = std::string(typeName(p.type)) + (p.isArray ? "* " : " ") + p.name;
    if (!p.shape.empty()) {
      decl += " /* shape:";
      for (const ExprPtr& d : p.shape) decl += " [" + d->str() + "]";
      decl += " */";
    }
    ps.push_back(decl);
  }
  out += join(ps, ", ") + ") {\n";
  out += body_->str(1);
  out += "}\n";
  return out;
}

}  // namespace polypart::ir
