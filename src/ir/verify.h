#pragma once

// Structural and type verification of IR kernels.  Throws Error with a
// description of the first problem found.  Checks:
//   - argument indices are in range and scalar/array uses match declarations,
//   - locals are defined before use and not redefined in the same scope,
//   - loop bounds and conditions have integer type,
//   - stored values match the array element type,
//   - array shape expressions only reference scalar parameters.

#include "ir/kernel.h"

namespace polypart::ir {

void verify(const Kernel& kernel);

}  // namespace polypart::ir
