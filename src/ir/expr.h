#pragma once

// Expression nodes of the kernel IR.
//
// Expressions are immutable trees shared via shared_ptr, so transformation
// passes (e.g. kernel partitioning, paper Section 7) rebuild only the spine
// they change.  The IR is deliberately small: CUDA builtin variables, kernel
// arguments, locals, arithmetic/comparison operators, array loads, selects,
// casts, and a few math intrinsics.

#include <memory>
#include <string>
#include <vector>

#include "ir/type.h"

namespace polypart::ir {

class Expr;
using ExprPtr = std::shared_ptr<const Expr>;

/// CUDA special registers: threadIdx/blockIdx/blockDim/gridDim × x/y/z.
enum class Builtin {
  ThreadIdxX, ThreadIdxY, ThreadIdxZ,
  BlockIdxX, BlockIdxY, BlockIdxZ,
  BlockDimX, BlockDimY, BlockDimZ,
  GridDimX, GridDimY, GridDimZ,
};

const char* builtinName(Builtin b);

enum class BinOp {
  Add, Sub, Mul, Div, Rem,  // Div/Rem on I64 truncate toward zero (C semantics)
  Min, Max,
  Eq, Ne, Lt, Le, Gt, Ge,   // comparisons yield I64 0/1
  And, Or,                  // logical on I64 0/1
};

const char* binOpName(BinOp op);

enum class UnOp { Neg, Not };

enum class MathFn { Sqrt, Rsqrt, Exp, Fabs };

const char* mathFnName(MathFn f);

class Expr {
 public:
  enum class Kind {
    IntConst,    // value_
    FloatConst,  // fvalue_
    Arg,         // kernel argument by index (scalar or pointer-less use)
    Local,       // local variable by name (let-bound or loop variable)
    BuiltinVar,  // builtin_
    Load,        // args_[0..] = flat index expr; argIndex_ = array argument
    Unary,       // op on args_[0]
    Binary,      // binOp_ on args_[0], args_[1]
    Select,      // args_[0] ? args_[1] : args_[2]
    Cast,        // args_[0] converted to type_
    Math,        // mathFn_ applied to args_[0]
  };

  Kind kind() const { return kind_; }
  Type type() const { return type_; }

  i64 intValue() const { return value_; }
  double floatValue() const { return fvalue_; }
  std::size_t argIndex() const { return argIndex_; }
  const std::string& localName() const { return name_; }
  Builtin builtin() const { return builtin_; }
  BinOp binOp() const { return binOp_; }
  UnOp unOp() const { return unOp_; }
  MathFn mathFn() const { return mathFn_; }
  const std::vector<ExprPtr>& operands() const { return args_; }

  // -- factories -----------------------------------------------------------
  static ExprPtr intConst(i64 v);
  static ExprPtr floatConst(double v);
  static ExprPtr arg(std::size_t index, Type t);
  static ExprPtr local(std::string name, Type t);
  static ExprPtr builtinVar(Builtin b);
  static ExprPtr load(std::size_t arrayArg, Type elemType, ExprPtr flatIndex);
  static ExprPtr unary(UnOp op, ExprPtr a);
  static ExprPtr binary(BinOp op, ExprPtr a, ExprPtr b);
  static ExprPtr select(ExprPtr cond, ExprPtr ifTrue, ExprPtr ifFalse);
  static ExprPtr cast(Type to, ExprPtr a);
  static ExprPtr math(MathFn fn, ExprPtr a);

  /// Renders the expression as C-like source.
  std::string str() const;

 private:
  Kind kind_ = Kind::IntConst;
  Type type_ = Type::I64;
  i64 value_ = 0;
  double fvalue_ = 0;
  std::size_t argIndex_ = 0;
  std::string name_;
  Builtin builtin_ = Builtin::ThreadIdxX;
  BinOp binOp_ = BinOp::Add;
  UnOp unOp_ = UnOp::Neg;
  MathFn mathFn_ = MathFn::Sqrt;
  std::vector<ExprPtr> args_;
};

// Convenience operators for building kernels; all work on ExprPtr.
inline ExprPtr operator+(ExprPtr a, ExprPtr b) { return Expr::binary(BinOp::Add, std::move(a), std::move(b)); }
inline ExprPtr operator-(ExprPtr a, ExprPtr b) { return Expr::binary(BinOp::Sub, std::move(a), std::move(b)); }
inline ExprPtr operator*(ExprPtr a, ExprPtr b) { return Expr::binary(BinOp::Mul, std::move(a), std::move(b)); }
inline ExprPtr operator/(ExprPtr a, ExprPtr b) { return Expr::binary(BinOp::Div, std::move(a), std::move(b)); }
inline ExprPtr operator%(ExprPtr a, ExprPtr b) { return Expr::binary(BinOp::Rem, std::move(a), std::move(b)); }

inline ExprPtr eq(ExprPtr a, ExprPtr b) { return Expr::binary(BinOp::Eq, std::move(a), std::move(b)); }
inline ExprPtr ne(ExprPtr a, ExprPtr b) { return Expr::binary(BinOp::Ne, std::move(a), std::move(b)); }
inline ExprPtr lt(ExprPtr a, ExprPtr b) { return Expr::binary(BinOp::Lt, std::move(a), std::move(b)); }
inline ExprPtr le(ExprPtr a, ExprPtr b) { return Expr::binary(BinOp::Le, std::move(a), std::move(b)); }
inline ExprPtr gt(ExprPtr a, ExprPtr b) { return Expr::binary(BinOp::Gt, std::move(a), std::move(b)); }
inline ExprPtr ge(ExprPtr a, ExprPtr b) { return Expr::binary(BinOp::Ge, std::move(a), std::move(b)); }
inline ExprPtr land(ExprPtr a, ExprPtr b) { return Expr::binary(BinOp::And, std::move(a), std::move(b)); }
inline ExprPtr lor(ExprPtr a, ExprPtr b) { return Expr::binary(BinOp::Or, std::move(a), std::move(b)); }

inline ExprPtr iconst(i64 v) { return Expr::intConst(v); }
inline ExprPtr fconst(double v) { return Expr::floatConst(v); }

}  // namespace polypart::ir
