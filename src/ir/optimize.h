#pragma once

// Middle-end optimization passes over the kernel IR.
//
// The real toolchain inherits LLVM's full pass pipeline; these passes are
// the equivalents the partitioning machinery actually benefits from:
//
//  - constant folding + algebraic simplification (x*1, x+0, 0*x, constant
//    comparisons, select-of-constant-condition): kernels produced by the
//    partitioning transformation contain `blockIdx.w + 0`-style expressions
//    whenever a partition starts at the origin;
//  - branch simplification: `if (1)` / `if (0)` collapse to a branch body;
//  - dead code elimination: lets whose value is never used (after the other
//    passes) disappear.
//
// All passes are semantics-preserving on well-formed kernels; the property
// tests in tests/optimize_test.cpp check optimized-vs-original execution
// equality on random inputs.

#include "ir/kernel.h"

namespace polypart::ir {

struct OptimizeStats {
  int foldedExpressions = 0;
  int simplifiedBranches = 0;
  int eliminatedLets = 0;
};

/// Folds constants and simplifies algebra in one expression tree.
ExprPtr foldExpr(const ExprPtr& e, OptimizeStats* stats = nullptr);

/// Runs the full pipeline (fold -> branch simplify -> DCE) to a fixpoint.
KernelPtr optimizeKernel(const Kernel& kernel, OptimizeStats* stats = nullptr);

/// Optimizes every kernel of a module.
Module optimizeModule(const Module& module, OptimizeStats* stats = nullptr);

}  // namespace polypart::ir
