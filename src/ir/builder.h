#pragma once

// Fluent construction of IR kernels.  Mirrors how CUDA kernels read:
//
//   KernelBuilder b("saxpy");
//   auto n = b.scalar("n", Type::I64);
//   auto a = b.scalar("a", Type::F64);
//   auto x = b.array("x", Type::F64);
//   auto y = b.array("y", Type::F64);
//   auto i = b.let("i", b.globalId(Axis::X));
//   b.iff(lt(i, n), [&] { b.store(y, i, a * b.load(x, i) + b.load(y, i)); });
//   KernelPtr k = b.build();

#include <functional>
#include <string>
#include <vector>

#include "ir/kernel.h"

namespace polypart::ir {

/// Handle to an array parameter within the kernel being built.
struct ArrayRef {
  std::size_t argIndex = 0;
  Type elemType = Type::F64;
};

class KernelBuilder {
 public:
  explicit KernelBuilder(std::string name) : name_(std::move(name)) {
    stack_.emplace_back();
  }

  // -- parameters ----------------------------------------------------------
  ExprPtr scalar(const std::string& name, Type t) {
    params_.push_back(Param{name, false, t, {}});
    return Expr::arg(params_.size() - 1, t);
  }

  ArrayRef array(const std::string& name, Type elemType,
                 std::vector<ExprPtr> shape = {}) {
    params_.push_back(Param{name, true, elemType, std::move(shape)});
    return ArrayRef{params_.size() - 1, elemType};
  }

  // -- builtins ------------------------------------------------------------
  ExprPtr threadIdx(Axis a) const { return Expr::builtinVar(pick(a, Builtin::ThreadIdxX, Builtin::ThreadIdxY, Builtin::ThreadIdxZ)); }
  ExprPtr blockIdx(Axis a) const { return Expr::builtinVar(pick(a, Builtin::BlockIdxX, Builtin::BlockIdxY, Builtin::BlockIdxZ)); }
  ExprPtr blockDim(Axis a) const { return Expr::builtinVar(pick(a, Builtin::BlockDimX, Builtin::BlockDimY, Builtin::BlockDimZ)); }
  ExprPtr gridDim(Axis a) const { return Expr::builtinVar(pick(a, Builtin::GridDimX, Builtin::GridDimY, Builtin::GridDimZ)); }

  /// threadIdx.w + blockIdx.w * blockDim.w (paper Eq. 5).
  ExprPtr globalId(Axis a) const {
    return threadIdx(a) + blockIdx(a) * blockDim(a);
  }

  // -- memory --------------------------------------------------------------
  ExprPtr load(ArrayRef arr, ExprPtr flatIndex) const {
    return Expr::load(arr.argIndex, arr.elemType, std::move(flatIndex));
  }

  void store(ArrayRef arr, ExprPtr flatIndex, ExprPtr value) {
    emit(Stmt::store(arr.argIndex, std::move(flatIndex), std::move(value)));
  }

  // -- locals & control flow ------------------------------------------------
  ExprPtr let(const std::string& name, ExprPtr value) {
    Type t = value->type();
    emit(Stmt::let(name, std::move(value)));
    return Expr::local(name, t);
  }

  void assign(const ExprPtr& localRef, ExprPtr value) {
    PP_ASSERT(localRef->kind() == Expr::Kind::Local);
    emit(Stmt::assign(localRef->localName(), std::move(value)));
  }

  void iff(ExprPtr cond, const std::function<void()>& thenBody,
           const std::function<void()>& elseBody = nullptr) {
    stack_.emplace_back();
    thenBody();
    StmtPtr thenBlock = popBlock();
    StmtPtr elseBlock;
    if (elseBody) {
      stack_.emplace_back();
      elseBody();
      elseBlock = popBlock();
    }
    emit(Stmt::ifThen(std::move(cond), std::move(thenBlock), std::move(elseBlock)));
  }

  void forLoop(const std::string& var, ExprPtr lo, ExprPtr hi,
               const std::function<void(ExprPtr)>& body) {
    stack_.emplace_back();
    body(Expr::local(var, Type::I64));
    StmtPtr bodyBlock = popBlock();
    emit(Stmt::forLoop(var, std::move(lo), std::move(hi), std::move(bodyBlock)));
  }

  /// Declares the on-chip load reuse factor (see Kernel::loadReuse).
  void setLoadReuse(double factor) { loadReuse_ = factor; }

  /// Finalizes the kernel; runs the verifier (ir/verify.h).
  KernelPtr build();

 private:
  static Builtin pick(Axis a, Builtin x, Builtin y, Builtin z) {
    switch (a) {
      case Axis::X: return x;
      case Axis::Y: return y;
      case Axis::Z: return z;
    }
    PP_ASSERT(false);
    return x;
  }

  void emit(StmtPtr s) { stack_.back().push_back(std::move(s)); }

  StmtPtr popBlock() {
    StmtPtr b = Stmt::block(std::move(stack_.back()));
    stack_.pop_back();
    return b;
  }

  std::string name_;
  std::vector<Param> params_;
  std::vector<std::vector<StmtPtr>> stack_;
  double loadReuse_ = 1.0;
};

}  // namespace polypart::ir
