#include "ir/interp.h"

#include <cmath>

#include "support/error.h"

namespace polypart::ir {

namespace {

struct ThreadCtx {
  const Kernel& kernel;
  std::span<const ArgValue> args;
  const AccessObserver* observer = nullptr;
  i64 builtins[12];  // indexed by Builtin enum order
  // Small scoped environment; locals per thread are few, linear scan wins
  // over hashing.
  std::vector<std::pair<const std::string*, Value>> env;

  Value* findLocal(const std::string& name) {
    for (auto it = env.rbegin(); it != env.rend(); ++it)
      if (*it->first == name) return &it->second;
    return nullptr;
  }
};

Value evalExpr(const Expr& e, ThreadCtx& ctx);

Value evalBinary(const Expr& e, ThreadCtx& ctx) {
  Value a = evalExpr(*e.operands()[0], ctx);
  Value b = evalExpr(*e.operands()[1], ctx);
  BinOp op = e.binOp();
  if (a.type == Type::I64) {
    i64 x = a.i, y = b.i;
    switch (op) {
      case BinOp::Add: return Value::ofInt(x + y);
      case BinOp::Sub: return Value::ofInt(x - y);
      case BinOp::Mul: return Value::ofInt(x * y);
      case BinOp::Div:
        PP_ASSERT_MSG(y != 0, "integer division by zero");
        return Value::ofInt(x / y);
      case BinOp::Rem:
        PP_ASSERT_MSG(y != 0, "integer remainder by zero");
        return Value::ofInt(x % y);
      case BinOp::Min: return Value::ofInt(x < y ? x : y);
      case BinOp::Max: return Value::ofInt(x > y ? x : y);
      case BinOp::Eq: return Value::ofInt(x == y);
      case BinOp::Ne: return Value::ofInt(x != y);
      case BinOp::Lt: return Value::ofInt(x < y);
      case BinOp::Le: return Value::ofInt(x <= y);
      case BinOp::Gt: return Value::ofInt(x > y);
      case BinOp::Ge: return Value::ofInt(x >= y);
      case BinOp::And: return Value::ofInt(x != 0 && y != 0);
      case BinOp::Or: return Value::ofInt(x != 0 || y != 0);
    }
  } else {
    double x = a.f, y = b.f;
    switch (op) {
      case BinOp::Add: return Value::ofFloat(x + y);
      case BinOp::Sub: return Value::ofFloat(x - y);
      case BinOp::Mul: return Value::ofFloat(x * y);
      case BinOp::Div: return Value::ofFloat(x / y);
      case BinOp::Min: return Value::ofFloat(x < y ? x : y);
      case BinOp::Max: return Value::ofFloat(x > y ? x : y);
      case BinOp::Eq: return Value::ofInt(x == y);
      case BinOp::Ne: return Value::ofInt(x != y);
      case BinOp::Lt: return Value::ofInt(x < y);
      case BinOp::Le: return Value::ofInt(x <= y);
      case BinOp::Gt: return Value::ofInt(x > y);
      case BinOp::Ge: return Value::ofInt(x >= y);
      case BinOp::Rem:
      case BinOp::And:
      case BinOp::Or:
        PP_ASSERT_MSG(false, "operator not defined on f64");
    }
  }
  PP_ASSERT(false);
  return {};
}

Value evalExpr(const Expr& e, ThreadCtx& ctx) {
  switch (e.kind()) {
    case Expr::Kind::IntConst: return Value::ofInt(e.intValue());
    case Expr::Kind::FloatConst: return Value::ofFloat(e.floatValue());
    case Expr::Kind::Arg: {
      const ArgValue& a = ctx.args[e.argIndex()];
      return a.scalar;
    }
    case Expr::Kind::Local: {
      Value* v = ctx.findLocal(e.localName());
      PP_ASSERT_MSG(v != nullptr, "undefined local at runtime");
      return *v;
    }
    case Expr::Kind::BuiltinVar:
      return Value::ofInt(ctx.builtins[static_cast<int>(e.builtin())]);
    case Expr::Kind::Load: {
      const ArgValue& a = ctx.args[e.argIndex()];
      i64 idx = evalExpr(*e.operands()[0], ctx).asInt();
      if (ctx.observer && *ctx.observer)
        (*ctx.observer)(e.argIndex(), false, idx, std::span<const i64, 12>(ctx.builtins));
      if (idx < 0 || idx >= a.numElements)
        throw Error("out-of-bounds load in kernel '" + ctx.kernel.name() +
                    "' on '" + ctx.kernel.param(e.argIndex()).name + "' index " +
                    std::to_string(idx) + " of " + std::to_string(a.numElements));
      if (e.type() == Type::F64)
        return Value::ofFloat(static_cast<const double*>(a.buffer)[idx]);
      return Value::ofInt(static_cast<const i64*>(a.buffer)[idx]);
    }
    case Expr::Kind::Unary: {
      Value v = evalExpr(*e.operands()[0], ctx);
      if (e.unOp() == UnOp::Neg)
        return v.type == Type::I64 ? Value::ofInt(-v.i) : Value::ofFloat(-v.f);
      return Value::ofInt(v.asInt() == 0);
    }
    case Expr::Kind::Binary: return evalBinary(e, ctx);
    case Expr::Kind::Select: {
      Value c = evalExpr(*e.operands()[0], ctx);
      return evalExpr(*e.operands()[c.asInt() != 0 ? 1 : 2], ctx);
    }
    case Expr::Kind::Cast: {
      Value v = evalExpr(*e.operands()[0], ctx);
      if (e.type() == v.type) return v;
      if (e.type() == Type::F64) return Value::ofFloat(static_cast<double>(v.i));
      return Value::ofInt(static_cast<i64>(v.f));
    }
    case Expr::Kind::Math: {
      double x = evalExpr(*e.operands()[0], ctx).asFloat();
      switch (e.mathFn()) {
        case MathFn::Sqrt: return Value::ofFloat(std::sqrt(x));
        case MathFn::Rsqrt: return Value::ofFloat(1.0 / std::sqrt(x));
        case MathFn::Exp: return Value::ofFloat(std::exp(x));
        case MathFn::Fabs: return Value::ofFloat(std::fabs(x));
      }
      PP_ASSERT(false);
    }
  }
  PP_ASSERT(false);
  return {};
}

void execStmt(const Stmt& s, ThreadCtx& ctx) {
  switch (s.kind()) {
    case Stmt::Kind::Block: {
      std::size_t mark = ctx.env.size();
      for (const StmtPtr& c : s.body()) execStmt(*c, ctx);
      ctx.env.resize(mark);
      break;
    }
    case Stmt::Kind::Let:
      ctx.env.emplace_back(&s.varName(), evalExpr(*s.value(), ctx));
      break;
    case Stmt::Kind::Assign: {
      Value* v = ctx.findLocal(s.varName());
      PP_ASSERT_MSG(v != nullptr, "assignment to undefined local at runtime");
      *v = evalExpr(*s.value(), ctx);
      break;
    }
    case Stmt::Kind::Store: {
      const ArgValue& a = ctx.args[s.arrayArg()];
      i64 idx = evalExpr(*s.index(), ctx).asInt();
      if (ctx.observer && *ctx.observer)
        (*ctx.observer)(s.arrayArg(), true, idx, std::span<const i64, 12>(ctx.builtins));
      if (idx < 0 || idx >= a.numElements)
        throw Error("out-of-bounds store in kernel '" + ctx.kernel.name() +
                    "' on '" + ctx.kernel.param(s.arrayArg()).name + "' index " +
                    std::to_string(idx) + " of " + std::to_string(a.numElements));
      Value v = evalExpr(*s.value(), ctx);
      if (v.type == Type::F64)
        static_cast<double*>(a.buffer)[idx] = v.f;
      else
        static_cast<i64*>(a.buffer)[idx] = v.i;
      break;
    }
    case Stmt::Kind::For: {
      i64 lo = evalExpr(*s.lo(), ctx).asInt();
      i64 hi = evalExpr(*s.hi(), ctx).asInt();
      std::size_t mark = ctx.env.size();
      ctx.env.emplace_back(&s.varName(), Value::ofInt(lo));
      for (i64 v = lo; v < hi; ++v) {
        ctx.env[mark].second = Value::ofInt(v);
        execStmt(*s.body()[0], ctx);
        ctx.env.resize(mark + 1);
      }
      ctx.env.resize(mark);
      break;
    }
    case Stmt::Kind::If: {
      i64 c = evalExpr(*s.cond(), ctx).asInt();
      std::size_t mark = ctx.env.size();
      if (c != 0)
        execStmt(*s.body()[0], ctx);
      else if (s.body()[1])
        execStmt(*s.body()[1], ctx);
      ctx.env.resize(mark);
      break;
    }
  }
}

}  // namespace

void execute(const Kernel& kernel, const LaunchConfig& cfg,
             std::span<const ArgValue> args,
             const AccessObserver& observer) {
  PP_ASSERT_MSG(args.size() == kernel.numParams(), "argument count mismatch");
  for (std::size_t i = 0; i < args.size(); ++i) {
    bool isArray = kernel.param(i).isArray;
    PP_ASSERT_MSG(isArray == (args[i].buffer != nullptr),
                  "scalar/array argument mismatch");
  }

  ThreadCtx ctx{kernel, args, &observer, {}, {}};
  ctx.env.reserve(16);
  auto set = [&](Builtin b, i64 v) { ctx.builtins[static_cast<int>(b)] = v; };
  set(Builtin::BlockDimX, cfg.block.x);
  set(Builtin::BlockDimY, cfg.block.y);
  set(Builtin::BlockDimZ, cfg.block.z);
  set(Builtin::GridDimX, cfg.grid.x);
  set(Builtin::GridDimY, cfg.grid.y);
  set(Builtin::GridDimZ, cfg.grid.z);

  for (i64 bz = 0; bz < cfg.grid.z; ++bz) {
    set(Builtin::BlockIdxZ, bz);
    for (i64 by = 0; by < cfg.grid.y; ++by) {
      set(Builtin::BlockIdxY, by);
      for (i64 bx = 0; bx < cfg.grid.x; ++bx) {
        set(Builtin::BlockIdxX, bx);
        for (i64 tz = 0; tz < cfg.block.z; ++tz) {
          set(Builtin::ThreadIdxZ, tz);
          for (i64 ty = 0; ty < cfg.block.y; ++ty) {
            set(Builtin::ThreadIdxY, ty);
            for (i64 tx = 0; tx < cfg.block.x; ++tx) {
              set(Builtin::ThreadIdxX, tx);
              ctx.env.clear();
              execStmt(*kernel.body(), ctx);
            }
          }
        }
      }
    }
  }
}

}  // namespace polypart::ir
