#!/usr/bin/env bash
# One-command CI gate: tier-1 build + full ctest, an ASan+UBSan configuration,
# and a TSan configuration covering the parallel resolution engine — the same
# recipes .claude/skills/verify/SKILL.md documents, run back to back.
#
#   scripts/check.sh            # everything (tier-1, asan, tsan, bytecode, dataflow, repartition, irregular)
#   scripts/check.sh tier1      # just the default build + full test suite
#   scripts/check.sh asan tsan  # just the sanitizer configurations
#   scripts/check.sh bytecode   # sanitizer trees re-run under the bytecode tier
#   scripts/check.sh dataflow   # sanitizer trees re-run with dataflow planning on
#   scripts/check.sh repartition # sanitizer trees re-run with repartitioning allowed
#   scripts/check.sh irregular  # sanitizer trees re-run with the inspector-executor on
#
# Each configuration uses its own build tree (build/, build-asan/, build-tsan/;
# all gitignored).  TSan cannot be combined with ASan in one tree — the
# top-level CMakeLists enforces that — hence the separate configurations.
set -euo pipefail

cd "$(dirname "$0")/.."
jobs=$(nproc 2>/dev/null || echo 4)
stages=("$@")
[ ${#stages[@]} -eq 0 ] && stages=(tier1 asan tsan bytecode dataflow repartition irregular)

run() {
  echo
  echo "== $* =="
  "$@"
}

for stage in "${stages[@]}"; do
  case "$stage" in
    tier1)
      # The seed's build/ tree uses Unix Makefiles; never pass -G here.
      run cmake -B build -S .
      run cmake --build build -j "$jobs"
      run ctest --test-dir build -j "$jobs" --output-on-failure
      # Fastest end-to-end smoke of the whole pipeline, with tracing live:
      # quickstart self-verifies and the exported trace must be parseable
      # (the trace_test suite parses it properly; this just proves the env
      # hook writes a file).
      trace_out=$(mktemp /tmp/polypart-trace.XXXXXX.json)
      run env POLYPART_TRACE="$trace_out" ./build/examples/quickstart
      [ -s "$trace_out" ] || { echo "POLYPART_TRACE wrote no trace"; exit 1; }
      rm -f "$trace_out"
      # Pipelined configuration smoke: drives submit()/drain() with
      # pipelineDepth > 0 and two tenant streams end to end (the determinism
      # suites assert equivalence; this proves the bench harness runs).
      run ./build/bench/pipelined_launch --iters-scale=0.1
      ;;
    asan)
      run cmake -B build-asan -S . -DPOLYPART_SANITIZE=address,undefined
      run cmake --build build-asan -j "$jobs"
      run ctest --test-dir build-asan -j "$jobs" --output-on-failure -LE fuzz
      # The randomized differential suites (label `fuzz`, tests/fuzz_util.h)
      # run as their own step so a generator regression is visible at a
      # glance; failures print a POLYPART_FUZZ_SEED replay line.
      run ctest --test-dir build-asan -j "$jobs" --output-on-failure -L fuzz
      ;;
    tsan)
      run cmake -B build-tsan -S . -DPOLYPART_SANITIZE=thread
      run cmake --build build-tsan -j "$jobs"
      # The thread-sensitive suites (pool, parallel engine, pipelined launch
      # engine, runtime, cache, tracker, tracer) — the full suite under TSan
      # is needlessly slow.
      run ctest --test-dir build-tsan -j "$jobs" --output-on-failure \
        -R 'ThreadPool|ParallelResolution|Pipelined|Pipeline|Runtime|EnumCache|Tracker|Trace' \
        -LE fuzz
      run ctest --test-dir build-tsan -j "$jobs" --output-on-failure -L fuzz
      ;;
    bytecode)
      # Enumerator bytecode-VM tier pass: POLYPART_ENUMERATOR_TIER flips the
      # RuntimeConfig *default*, so every suite that does not pin the knob
      # re-runs on the compiled tier (configs that set enumeratorTier
      # explicitly — e.g. the tier sweep — still test what they name).
      # Reuses the sanitizer trees the asan/tsan stages configure.
      run cmake -B build-asan -S . -DPOLYPART_SANITIZE=address,undefined
      run cmake --build build-asan -j "$jobs"
      run env POLYPART_ENUMERATOR_TIER=bytecode \
        ctest --test-dir build-asan -j "$jobs" --output-on-failure -LE fuzz
      run env POLYPART_ENUMERATOR_TIER=bytecode \
        ctest --test-dir build-asan -j "$jobs" --output-on-failure -L fuzz
      run cmake -B build-tsan -S . -DPOLYPART_SANITIZE=thread
      run cmake --build build-tsan -j "$jobs"
      # Same thread-sensitive selection as the tsan stage: the compiled tier
      # adds a shared specialized-program cache to the concurrent
      # materialization paths, which is exactly what TSan should see.
      run env POLYPART_ENUMERATOR_TIER=bytecode \
        ctest --test-dir build-tsan -j "$jobs" --output-on-failure \
        -R 'ThreadPool|ParallelResolution|Pipelined|Pipeline|Runtime|EnumCache|Tracker|Trace' \
        -LE fuzz
      run env POLYPART_ENUMERATOR_TIER=bytecode \
        ctest --test-dir build-tsan -j "$jobs" --output-on-failure -L fuzz
      ;;
    dataflow)
      # Cross-launch dataflow planning pass: POLYPART_DATAFLOW_PLANNING=1
      # flips the RuntimeConfig *default* (rt/runtime.cpp), so every suite
      # that does not pin the knob re-runs with plan compilation, eager
      # prefetch, and dead-transfer elision live on the launch path.  The
      # planner touches the tracker from the commit path and skips the
      # per-launch barriers, so ASan/UBSan and TSan both matter here; the
      # dataflow and determinism suites plus the randomized differential
      # fuzz runs are the selection.  Reuses the sanitizer trees the
      # asan/tsan stages configure.
      run cmake -B build-asan -S . -DPOLYPART_SANITIZE=address,undefined
      run cmake --build build-asan -j "$jobs"
      run env POLYPART_DATAFLOW_PLANNING=1 \
        ctest --test-dir build-asan -j "$jobs" --output-on-failure \
        -R 'Dataflow|CacheCounters|Runtime|Pipelined|ParallelResolution|TransferPlan|Tracker' \
        -LE fuzz
      run env POLYPART_DATAFLOW_PLANNING=1 \
        ctest --test-dir build-asan -j "$jobs" --output-on-failure -L fuzz
      run cmake -B build-tsan -S . -DPOLYPART_SANITIZE=thread
      run cmake --build build-tsan -j "$jobs"
      # Planning composes with the threaded resolution engine and the
      # pipelined launch engine; those suites under TSan are the point.
      run env POLYPART_DATAFLOW_PLANNING=1 \
        ctest --test-dir build-tsan -j "$jobs" --output-on-failure \
        -R 'Dataflow|CacheCounters|Runtime|Pipelined|ParallelResolution|TransferPlan|Tracker' \
        -LE fuzz
      run env POLYPART_DATAFLOW_PLANNING=1 \
        ctest --test-dir build-tsan -j "$jobs" --output-on-failure -L fuzz
      ;;
    repartition)
      # Elastic repartitioning pass: POLYPART_ALLOW_REPARTITIONING=1 flips
      # the RuntimeConfig *default* (rt/runtime.cpp), so every suite runs
      # with the repartition entry points armed — the knob-off error paths
      # pin allowRepartitioning=false explicitly and still test what they
      # name.  The repartition/checkpoint suites exercise migration,
      # host-side checkpointing, and device-failure recovery under ASan/
      # UBSan; under TSan the point is migration and recovery composing
      # with the threaded resolution and pipelined launch engines.  Reuses
      # the sanitizer trees the asan/tsan stages configure.
      run cmake -B build-asan -S . -DPOLYPART_SANITIZE=address,undefined
      run cmake --build build-asan -j "$jobs"
      run env POLYPART_ALLOW_REPARTITIONING=1 \
        ctest --test-dir build-asan -j "$jobs" --output-on-failure \
        -R 'Repartition|Checkpoint|EnvKnobs|Dataflow|Runtime|TransferPlan|Tracker' \
        -LE fuzz
      run env POLYPART_ALLOW_REPARTITIONING=1 \
        ctest --test-dir build-asan -j "$jobs" --output-on-failure -L fuzz
      run cmake -B build-tsan -S . -DPOLYPART_SANITIZE=thread
      run cmake --build build-tsan -j "$jobs"
      run env POLYPART_ALLOW_REPARTITIONING=1 \
        ctest --test-dir build-tsan -j "$jobs" --output-on-failure \
        -R 'Repartition|Checkpoint|Pipelined|ParallelResolution|Runtime' \
        -LE fuzz
      run env POLYPART_ALLOW_REPARTITIONING=1 \
        ctest --test-dir build-tsan -j "$jobs" --output-on-failure -L fuzz
      ;;
    irregular)
      # May-access tier pass: POLYPART_INSPECTOR_EXECUTOR=1 flips the
      # RuntimeConfig *default* (rt/runtime.cpp), so the irregular battery
      # and the inspector fuzz suite re-run with the inspection walk, the
      # footprint cache, and the tightened synchronization live on the
      # launch path (configs that pin inspectorExecutor explicitly — the
      # whole-buffer halves of the differential tests — still test what
      # they name).  ASan/UBSan covers the host-side mirrors and range
      # coalescing; under TSan the point is the inspector composing with
      # the threaded resolution and pipelined launch engines.  Reuses the
      # sanitizer trees the asan/tsan stages configure.
      run cmake -B build-asan -S . -DPOLYPART_SANITIZE=address,undefined
      run cmake --build build-asan -j "$jobs"
      run env POLYPART_INSPECTOR_EXECUTOR=1 \
        ctest --test-dir build-asan -j "$jobs" --output-on-failure \
        -R 'Irregular|Dynamic|Analysis|EnvKnobs|Runtime|Sweep|Repartition|Checkpoint' \
        -LE fuzz
      run env POLYPART_INSPECTOR_EXECUTOR=1 \
        ctest --test-dir build-asan -j "$jobs" --output-on-failure -L fuzz
      run cmake -B build-tsan -S . -DPOLYPART_SANITIZE=thread
      run cmake --build build-tsan -j "$jobs"
      run env POLYPART_INSPECTOR_EXECUTOR=1 \
        ctest --test-dir build-tsan -j "$jobs" --output-on-failure \
        -R 'Irregular|InspectorFuzz|Pipelined|ParallelResolution|Runtime' \
        -LE fuzz
      run env POLYPART_INSPECTOR_EXECUTOR=1 \
        ctest --test-dir build-tsan -j "$jobs" --output-on-failure -L fuzz
      ;;
    *)
      echo "unknown stage '$stage' (expected: tier1, asan, tsan, bytecode, dataflow, repartition, irregular)" >&2
      exit 2
      ;;
  esac
done

echo
echo "check.sh: all stages passed (${stages[*]})"
