file(REMOVE_RECURSE
  "CMakeFiles/polypartc.dir/polypartc.cpp.o"
  "CMakeFiles/polypartc.dir/polypartc.cpp.o.d"
  "polypartc"
  "polypartc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/polypartc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
