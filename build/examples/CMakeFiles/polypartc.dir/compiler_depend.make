# Empty compiler generated dependencies file for polypartc.
# This may be replaced when dependencies are built.
