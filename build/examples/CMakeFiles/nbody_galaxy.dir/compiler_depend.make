# Empty compiler generated dependencies file for nbody_galaxy.
# This may be replaced when dependencies are built.
