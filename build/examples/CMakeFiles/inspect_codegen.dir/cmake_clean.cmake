file(REMOVE_RECURSE
  "CMakeFiles/inspect_codegen.dir/inspect_codegen.cpp.o"
  "CMakeFiles/inspect_codegen.dir/inspect_codegen.cpp.o.d"
  "inspect_codegen"
  "inspect_codegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inspect_codegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
