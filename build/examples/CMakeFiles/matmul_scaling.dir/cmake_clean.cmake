file(REMOVE_RECURSE
  "CMakeFiles/matmul_scaling.dir/matmul_scaling.cpp.o"
  "CMakeFiles/matmul_scaling.dir/matmul_scaling.cpp.o.d"
  "matmul_scaling"
  "matmul_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/matmul_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
