# Empty dependencies file for matmul_scaling.
# This may be replaced when dependencies are built.
