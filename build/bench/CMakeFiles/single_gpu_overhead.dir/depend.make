# Empty dependencies file for single_gpu_overhead.
# This may be replaced when dependencies are built.
