file(REMOVE_RECURSE
  "CMakeFiles/single_gpu_overhead.dir/single_gpu_overhead.cpp.o"
  "CMakeFiles/single_gpu_overhead.dir/single_gpu_overhead.cpp.o.d"
  "single_gpu_overhead"
  "single_gpu_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/single_gpu_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
