file(REMOVE_RECURSE
  "CMakeFiles/ablation_h2d.dir/ablation_h2d.cpp.o"
  "CMakeFiles/ablation_h2d.dir/ablation_h2d.cpp.o.d"
  "ablation_h2d"
  "ablation_h2d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_h2d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
