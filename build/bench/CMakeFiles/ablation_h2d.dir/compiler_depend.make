# Empty compiler generated dependencies file for ablation_h2d.
# This may be replaced when dependencies are built.
