file(REMOVE_RECURSE
  "CMakeFiles/ablation_tracker.dir/ablation_tracker.cpp.o"
  "CMakeFiles/ablation_tracker.dir/ablation_tracker.cpp.o.d"
  "ablation_tracker"
  "ablation_tracker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_tracker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
