# Empty compiler generated dependencies file for ablation_tracker.
# This may be replaced when dependencies are built.
