# Empty dependencies file for micro_polyhedral.
# This may be replaced when dependencies are built.
