file(REMOVE_RECURSE
  "CMakeFiles/micro_polyhedral.dir/micro_polyhedral.cpp.o"
  "CMakeFiles/micro_polyhedral.dir/micro_polyhedral.cpp.o.d"
  "micro_polyhedral"
  "micro_polyhedral.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_polyhedral.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
