
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/cache_repeat_launch.cpp" "bench/CMakeFiles/cache_repeat_launch.dir/cache_repeat_launch.cpp.o" "gcc" "bench/CMakeFiles/cache_repeat_launch.dir/cache_repeat_launch.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/pp_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/tool/CMakeFiles/pp_tool.dir/DependInfo.cmake"
  "/root/repo/build/src/rt/CMakeFiles/pp_rt.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/codegen/CMakeFiles/pp_codegen.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/pp_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/pp_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/pset/CMakeFiles/pp_pset.dir/DependInfo.cmake"
  "/root/repo/build/src/rewrite/CMakeFiles/pp_rewrite.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/pp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
