file(REMOVE_RECURSE
  "CMakeFiles/cache_repeat_launch.dir/cache_repeat_launch.cpp.o"
  "CMakeFiles/cache_repeat_launch.dir/cache_repeat_launch.cpp.o.d"
  "cache_repeat_launch"
  "cache_repeat_launch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cache_repeat_launch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
