# Empty dependencies file for cache_repeat_launch.
# This may be replaced when dependencies are built.
