file(REMOVE_RECURSE
  "CMakeFiles/ablation_shared_copies.dir/ablation_shared_copies.cpp.o"
  "CMakeFiles/ablation_shared_copies.dir/ablation_shared_copies.cpp.o.d"
  "ablation_shared_copies"
  "ablation_shared_copies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_shared_copies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
