# Empty dependencies file for ablation_shared_copies.
# This may be replaced when dependencies are built.
