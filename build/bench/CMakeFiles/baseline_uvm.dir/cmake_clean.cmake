file(REMOVE_RECURSE
  "CMakeFiles/baseline_uvm.dir/baseline_uvm.cpp.o"
  "CMakeFiles/baseline_uvm.dir/baseline_uvm.cpp.o.d"
  "baseline_uvm"
  "baseline_uvm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_uvm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
