# Empty compiler generated dependencies file for baseline_uvm.
# This may be replaced when dependencies are built.
