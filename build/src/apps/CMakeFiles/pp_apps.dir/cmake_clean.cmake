file(REMOVE_RECURSE
  "CMakeFiles/pp_apps.dir/drivers.cpp.o"
  "CMakeFiles/pp_apps.dir/drivers.cpp.o.d"
  "CMakeFiles/pp_apps.dir/kernels.cpp.o"
  "CMakeFiles/pp_apps.dir/kernels.cpp.o.d"
  "CMakeFiles/pp_apps.dir/reference.cpp.o"
  "CMakeFiles/pp_apps.dir/reference.cpp.o.d"
  "libpp_apps.a"
  "libpp_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pp_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
