# Empty dependencies file for pp_apps.
# This may be replaced when dependencies are built.
