file(REMOVE_RECURSE
  "libpp_apps.a"
)
