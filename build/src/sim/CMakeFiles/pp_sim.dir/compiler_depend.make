# Empty compiler generated dependencies file for pp_sim.
# This may be replaced when dependencies are built.
