file(REMOVE_RECURSE
  "CMakeFiles/pp_sim.dir/machine.cpp.o"
  "CMakeFiles/pp_sim.dir/machine.cpp.o.d"
  "libpp_sim.a"
  "libpp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
