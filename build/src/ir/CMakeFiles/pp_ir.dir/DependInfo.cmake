
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ir/builder.cpp" "src/ir/CMakeFiles/pp_ir.dir/builder.cpp.o" "gcc" "src/ir/CMakeFiles/pp_ir.dir/builder.cpp.o.d"
  "/root/repo/src/ir/cost.cpp" "src/ir/CMakeFiles/pp_ir.dir/cost.cpp.o" "gcc" "src/ir/CMakeFiles/pp_ir.dir/cost.cpp.o.d"
  "/root/repo/src/ir/expr.cpp" "src/ir/CMakeFiles/pp_ir.dir/expr.cpp.o" "gcc" "src/ir/CMakeFiles/pp_ir.dir/expr.cpp.o.d"
  "/root/repo/src/ir/interp.cpp" "src/ir/CMakeFiles/pp_ir.dir/interp.cpp.o" "gcc" "src/ir/CMakeFiles/pp_ir.dir/interp.cpp.o.d"
  "/root/repo/src/ir/optimize.cpp" "src/ir/CMakeFiles/pp_ir.dir/optimize.cpp.o" "gcc" "src/ir/CMakeFiles/pp_ir.dir/optimize.cpp.o.d"
  "/root/repo/src/ir/stmt.cpp" "src/ir/CMakeFiles/pp_ir.dir/stmt.cpp.o" "gcc" "src/ir/CMakeFiles/pp_ir.dir/stmt.cpp.o.d"
  "/root/repo/src/ir/transform.cpp" "src/ir/CMakeFiles/pp_ir.dir/transform.cpp.o" "gcc" "src/ir/CMakeFiles/pp_ir.dir/transform.cpp.o.d"
  "/root/repo/src/ir/verify.cpp" "src/ir/CMakeFiles/pp_ir.dir/verify.cpp.o" "gcc" "src/ir/CMakeFiles/pp_ir.dir/verify.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/pp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
