file(REMOVE_RECURSE
  "CMakeFiles/pp_ir.dir/builder.cpp.o"
  "CMakeFiles/pp_ir.dir/builder.cpp.o.d"
  "CMakeFiles/pp_ir.dir/cost.cpp.o"
  "CMakeFiles/pp_ir.dir/cost.cpp.o.d"
  "CMakeFiles/pp_ir.dir/expr.cpp.o"
  "CMakeFiles/pp_ir.dir/expr.cpp.o.d"
  "CMakeFiles/pp_ir.dir/interp.cpp.o"
  "CMakeFiles/pp_ir.dir/interp.cpp.o.d"
  "CMakeFiles/pp_ir.dir/optimize.cpp.o"
  "CMakeFiles/pp_ir.dir/optimize.cpp.o.d"
  "CMakeFiles/pp_ir.dir/stmt.cpp.o"
  "CMakeFiles/pp_ir.dir/stmt.cpp.o.d"
  "CMakeFiles/pp_ir.dir/transform.cpp.o"
  "CMakeFiles/pp_ir.dir/transform.cpp.o.d"
  "CMakeFiles/pp_ir.dir/verify.cpp.o"
  "CMakeFiles/pp_ir.dir/verify.cpp.o.d"
  "libpp_ir.a"
  "libpp_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pp_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
