# Empty dependencies file for pp_pset.
# This may be replaced when dependencies are built.
