
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pset/ast.cpp" "src/pset/CMakeFiles/pp_pset.dir/ast.cpp.o" "gcc" "src/pset/CMakeFiles/pp_pset.dir/ast.cpp.o.d"
  "/root/repo/src/pset/basic_set.cpp" "src/pset/CMakeFiles/pp_pset.dir/basic_set.cpp.o" "gcc" "src/pset/CMakeFiles/pp_pset.dir/basic_set.cpp.o.d"
  "/root/repo/src/pset/fm.cpp" "src/pset/CMakeFiles/pp_pset.dir/fm.cpp.o" "gcc" "src/pset/CMakeFiles/pp_pset.dir/fm.cpp.o.d"
  "/root/repo/src/pset/map.cpp" "src/pset/CMakeFiles/pp_pset.dir/map.cpp.o" "gcc" "src/pset/CMakeFiles/pp_pset.dir/map.cpp.o.d"
  "/root/repo/src/pset/set.cpp" "src/pset/CMakeFiles/pp_pset.dir/set.cpp.o" "gcc" "src/pset/CMakeFiles/pp_pset.dir/set.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/pp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
