file(REMOVE_RECURSE
  "CMakeFiles/pp_pset.dir/ast.cpp.o"
  "CMakeFiles/pp_pset.dir/ast.cpp.o.d"
  "CMakeFiles/pp_pset.dir/basic_set.cpp.o"
  "CMakeFiles/pp_pset.dir/basic_set.cpp.o.d"
  "CMakeFiles/pp_pset.dir/fm.cpp.o"
  "CMakeFiles/pp_pset.dir/fm.cpp.o.d"
  "CMakeFiles/pp_pset.dir/map.cpp.o"
  "CMakeFiles/pp_pset.dir/map.cpp.o.d"
  "CMakeFiles/pp_pset.dir/set.cpp.o"
  "CMakeFiles/pp_pset.dir/set.cpp.o.d"
  "libpp_pset.a"
  "libpp_pset.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pp_pset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
