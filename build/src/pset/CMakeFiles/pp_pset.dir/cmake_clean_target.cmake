file(REMOVE_RECURSE
  "libpp_pset.a"
)
