file(REMOVE_RECURSE
  "CMakeFiles/pp_rt.dir/cuda_api.cpp.o"
  "CMakeFiles/pp_rt.dir/cuda_api.cpp.o.d"
  "CMakeFiles/pp_rt.dir/runtime.cpp.o"
  "CMakeFiles/pp_rt.dir/runtime.cpp.o.d"
  "CMakeFiles/pp_rt.dir/uvm_baseline.cpp.o"
  "CMakeFiles/pp_rt.dir/uvm_baseline.cpp.o.d"
  "libpp_rt.a"
  "libpp_rt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pp_rt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
