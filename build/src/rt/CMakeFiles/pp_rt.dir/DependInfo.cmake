
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rt/cuda_api.cpp" "src/rt/CMakeFiles/pp_rt.dir/cuda_api.cpp.o" "gcc" "src/rt/CMakeFiles/pp_rt.dir/cuda_api.cpp.o.d"
  "/root/repo/src/rt/runtime.cpp" "src/rt/CMakeFiles/pp_rt.dir/runtime.cpp.o" "gcc" "src/rt/CMakeFiles/pp_rt.dir/runtime.cpp.o.d"
  "/root/repo/src/rt/uvm_baseline.cpp" "src/rt/CMakeFiles/pp_rt.dir/uvm_baseline.cpp.o" "gcc" "src/rt/CMakeFiles/pp_rt.dir/uvm_baseline.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/codegen/CMakeFiles/pp_codegen.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/pp_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/pset/CMakeFiles/pp_pset.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/pp_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/pp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
