# Empty compiler generated dependencies file for pp_rt.
# This may be replaced when dependencies are built.
