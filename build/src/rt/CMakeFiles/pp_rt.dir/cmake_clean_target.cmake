file(REMOVE_RECURSE
  "libpp_rt.a"
)
