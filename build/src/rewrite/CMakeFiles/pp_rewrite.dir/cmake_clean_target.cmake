file(REMOVE_RECURSE
  "libpp_rewrite.a"
)
