# Empty compiler generated dependencies file for pp_rewrite.
# This may be replaced when dependencies are built.
