file(REMOVE_RECURSE
  "CMakeFiles/pp_rewrite.dir/rewriter.cpp.o"
  "CMakeFiles/pp_rewrite.dir/rewriter.cpp.o.d"
  "libpp_rewrite.a"
  "libpp_rewrite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pp_rewrite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
