file(REMOVE_RECURSE
  "CMakeFiles/pp_codegen.dir/enumerator.cpp.o"
  "CMakeFiles/pp_codegen.dir/enumerator.cpp.o.d"
  "libpp_codegen.a"
  "libpp_codegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pp_codegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
