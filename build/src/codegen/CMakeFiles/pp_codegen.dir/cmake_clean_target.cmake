file(REMOVE_RECURSE
  "libpp_codegen.a"
)
