# Empty dependencies file for pp_codegen.
# This may be replaced when dependencies are built.
