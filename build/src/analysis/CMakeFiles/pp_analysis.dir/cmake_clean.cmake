file(REMOVE_RECURSE
  "CMakeFiles/pp_analysis.dir/extract.cpp.o"
  "CMakeFiles/pp_analysis.dir/extract.cpp.o.d"
  "CMakeFiles/pp_analysis.dir/model.cpp.o"
  "CMakeFiles/pp_analysis.dir/model.cpp.o.d"
  "CMakeFiles/pp_analysis.dir/poly.cpp.o"
  "CMakeFiles/pp_analysis.dir/poly.cpp.o.d"
  "libpp_analysis.a"
  "libpp_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pp_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
