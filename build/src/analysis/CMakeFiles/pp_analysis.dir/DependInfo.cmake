
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/extract.cpp" "src/analysis/CMakeFiles/pp_analysis.dir/extract.cpp.o" "gcc" "src/analysis/CMakeFiles/pp_analysis.dir/extract.cpp.o.d"
  "/root/repo/src/analysis/model.cpp" "src/analysis/CMakeFiles/pp_analysis.dir/model.cpp.o" "gcc" "src/analysis/CMakeFiles/pp_analysis.dir/model.cpp.o.d"
  "/root/repo/src/analysis/poly.cpp" "src/analysis/CMakeFiles/pp_analysis.dir/poly.cpp.o" "gcc" "src/analysis/CMakeFiles/pp_analysis.dir/poly.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/pp_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/pset/CMakeFiles/pp_pset.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/pp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
