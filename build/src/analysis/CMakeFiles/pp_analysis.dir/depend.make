# Empty dependencies file for pp_analysis.
# This may be replaced when dependencies are built.
