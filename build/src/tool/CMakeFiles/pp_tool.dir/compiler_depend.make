# Empty compiler generated dependencies file for pp_tool.
# This may be replaced when dependencies are built.
