file(REMOVE_RECURSE
  "CMakeFiles/pp_tool.dir/compiler.cpp.o"
  "CMakeFiles/pp_tool.dir/compiler.cpp.o.d"
  "libpp_tool.a"
  "libpp_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pp_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
