file(REMOVE_RECURSE
  "libpp_tool.a"
)
