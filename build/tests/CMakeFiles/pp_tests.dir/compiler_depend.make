# Empty compiler generated dependencies file for pp_tests.
# This may be replaced when dependencies are built.
