
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/analysis_more_test.cpp" "tests/CMakeFiles/pp_tests.dir/analysis_more_test.cpp.o" "gcc" "tests/CMakeFiles/pp_tests.dir/analysis_more_test.cpp.o.d"
  "/root/repo/tests/analysis_test.cpp" "tests/CMakeFiles/pp_tests.dir/analysis_test.cpp.o" "gcc" "tests/CMakeFiles/pp_tests.dir/analysis_test.cpp.o.d"
  "/root/repo/tests/btree_test.cpp" "tests/CMakeFiles/pp_tests.dir/btree_test.cpp.o" "gcc" "tests/CMakeFiles/pp_tests.dir/btree_test.cpp.o.d"
  "/root/repo/tests/codegen_test.cpp" "tests/CMakeFiles/pp_tests.dir/codegen_test.cpp.o" "gcc" "tests/CMakeFiles/pp_tests.dir/codegen_test.cpp.o.d"
  "/root/repo/tests/dynamic_test.cpp" "tests/CMakeFiles/pp_tests.dir/dynamic_test.cpp.o" "gcc" "tests/CMakeFiles/pp_tests.dir/dynamic_test.cpp.o.d"
  "/root/repo/tests/enum_cache_test.cpp" "tests/CMakeFiles/pp_tests.dir/enum_cache_test.cpp.o" "gcc" "tests/CMakeFiles/pp_tests.dir/enum_cache_test.cpp.o.d"
  "/root/repo/tests/ir_test.cpp" "tests/CMakeFiles/pp_tests.dir/ir_test.cpp.o" "gcc" "tests/CMakeFiles/pp_tests.dir/ir_test.cpp.o.d"
  "/root/repo/tests/optimize_test.cpp" "tests/CMakeFiles/pp_tests.dir/optimize_test.cpp.o" "gcc" "tests/CMakeFiles/pp_tests.dir/optimize_test.cpp.o.d"
  "/root/repo/tests/pipeline_fuzz_test.cpp" "tests/CMakeFiles/pp_tests.dir/pipeline_fuzz_test.cpp.o" "gcc" "tests/CMakeFiles/pp_tests.dir/pipeline_fuzz_test.cpp.o.d"
  "/root/repo/tests/poly_test.cpp" "tests/CMakeFiles/pp_tests.dir/poly_test.cpp.o" "gcc" "tests/CMakeFiles/pp_tests.dir/poly_test.cpp.o.d"
  "/root/repo/tests/pset_basic_test.cpp" "tests/CMakeFiles/pp_tests.dir/pset_basic_test.cpp.o" "gcc" "tests/CMakeFiles/pp_tests.dir/pset_basic_test.cpp.o.d"
  "/root/repo/tests/pset_more_test.cpp" "tests/CMakeFiles/pp_tests.dir/pset_more_test.cpp.o" "gcc" "tests/CMakeFiles/pp_tests.dir/pset_more_test.cpp.o.d"
  "/root/repo/tests/rewrite_test.cpp" "tests/CMakeFiles/pp_tests.dir/rewrite_test.cpp.o" "gcc" "tests/CMakeFiles/pp_tests.dir/rewrite_test.cpp.o.d"
  "/root/repo/tests/runtime_test.cpp" "tests/CMakeFiles/pp_tests.dir/runtime_test.cpp.o" "gcc" "tests/CMakeFiles/pp_tests.dir/runtime_test.cpp.o.d"
  "/root/repo/tests/sim_test.cpp" "tests/CMakeFiles/pp_tests.dir/sim_test.cpp.o" "gcc" "tests/CMakeFiles/pp_tests.dir/sim_test.cpp.o.d"
  "/root/repo/tests/support_test.cpp" "tests/CMakeFiles/pp_tests.dir/support_test.cpp.o" "gcc" "tests/CMakeFiles/pp_tests.dir/support_test.cpp.o.d"
  "/root/repo/tests/sweep_test.cpp" "tests/CMakeFiles/pp_tests.dir/sweep_test.cpp.o" "gcc" "tests/CMakeFiles/pp_tests.dir/sweep_test.cpp.o.d"
  "/root/repo/tests/tool_test.cpp" "tests/CMakeFiles/pp_tests.dir/tool_test.cpp.o" "gcc" "tests/CMakeFiles/pp_tests.dir/tool_test.cpp.o.d"
  "/root/repo/tests/tracker_test.cpp" "tests/CMakeFiles/pp_tests.dir/tracker_test.cpp.o" "gcc" "tests/CMakeFiles/pp_tests.dir/tracker_test.cpp.o.d"
  "/root/repo/tests/uvm_test.cpp" "tests/CMakeFiles/pp_tests.dir/uvm_test.cpp.o" "gcc" "tests/CMakeFiles/pp_tests.dir/uvm_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/pset/CMakeFiles/pp_pset.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/pp_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/pp_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/codegen/CMakeFiles/pp_codegen.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/pp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/rt/CMakeFiles/pp_rt.dir/DependInfo.cmake"
  "/root/repo/build/src/rewrite/CMakeFiles/pp_rewrite.dir/DependInfo.cmake"
  "/root/repo/build/src/tool/CMakeFiles/pp_tool.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/pp_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/pp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
