#pragma once

// Shared random-kernel generator for the fuzz suites (pipeline, enumerator).
//
// Builds a random affine kernel: out[gid] (1-D) or out[y][x] (2-D) computed
// from 1-3 inputs read at random affine offsets, optionally inside a small
// sequential loop, under the grid guard plus an interior guard with a
// border copy-through — every generated kernel is analyzable (exact write
// map) by construction, and every output element is written.
//
// The generator consumes a fixed number of RNG draws per structural choice,
// so a case replays exactly from its seed (tests/fuzz_util.h).

#include <string>
#include <vector>

#include "ir/builder.h"
#include "support/rng.h"

namespace polypart::fuzz {

struct GeneratedKernel {
  ir::KernelPtr kernel;
  bool is2d = false;
  int numInputs = 1;
};

inline GeneratedKernel generate(Rng& rng, int index) {
  using ir::ArrayRef;
  using ir::Axis;
  using ir::ExprPtr;
  using ir::fconst;
  using ir::ge;
  using ir::iconst;
  using ir::KernelBuilder;
  using ir::land;
  using ir::le;
  using ir::lt;
  using ir::Type;

  GeneratedKernel g;
  g.is2d = rng.chance(0.5);
  g.numInputs = static_cast<int>(rng.range(1, 3));
  KernelBuilder b("fuzz" + std::to_string(index));
  auto n = b.scalar("n", Type::I64);
  std::vector<ArrayRef> ins;
  for (int i = 0; i < g.numInputs; ++i) {
    ins.push_back(g.is2d
                      ? b.array("in" + std::to_string(i), Type::F64, {n, n})
                      : b.array("in" + std::to_string(i), Type::F64, {n}));
  }
  ArrayRef out = g.is2d ? b.array("out", Type::F64, {n, n})
                        : b.array("out", Type::F64, {n});

  auto x = b.let("x", b.globalId(Axis::X));
  ExprPtr y;
  ExprPtr guard;
  if (g.is2d) {
    y = b.let("y", b.globalId(Axis::Y));
    guard = land(lt(x, n), lt(y, n));
  } else {
    guard = lt(x, n);
  }

  b.iff(guard, [&] {
    // Clamped-free interior guard so random offsets stay in bounds.
    const i64 margin = 2;
    ExprPtr interior = land(ge(x, iconst(margin)), le(x, n - iconst(margin + 1)));
    if (g.is2d)
      interior = land(interior,
                      land(ge(y, iconst(margin)), le(y, n - iconst(margin + 1))));

    b.iff(
        interior,
        [&] {
          auto acc = b.let("acc", fconst(0.5));
          auto body = [&](ExprPtr base) {
            for (int i = 0; i < g.numInputs; ++i) {
              i64 dx = rng.range(-2, 2);
              ExprPtr idx;
              if (g.is2d) {
                i64 dy = rng.range(-2, 2);
                idx = (y + iconst(dy)) * n + (x + iconst(dx));
              } else {
                idx = x + iconst(dx);
              }
              b.assign(acc, acc + b.load(ins[static_cast<std::size_t>(i)], idx) * base);
            }
          };
          if (rng.chance(0.4)) {
            b.forLoop("k", iconst(0), iconst(3),
                      [&](ExprPtr k) { body(ir::Expr::cast(Type::F64, k + iconst(1))); });
          } else {
            body(fconst(1.25));
          }
          b.store(out, g.is2d ? y * n + x : x, acc);
        },
        [&] {
          // Border: write a marker so the whole output is covered.
          b.store(out, g.is2d ? y * n + x : x, fconst(-3.0));
        });
  });
  g.kernel = b.build();
  return g;
}

}  // namespace polypart::fuzz
