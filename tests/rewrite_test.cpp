// Tests for the source-to-source host code rewriter (paper Section 5).

#include <gtest/gtest.h>

#include "rewrite/rewriter.h"

namespace polypart::rewrite {
namespace {

TEST(Rewrite, InsertsPrologue) {
  Rewriter rw("hotspot.model.json");
  std::string out = rw.rewrite("int main() { return 0; }");
  EXPECT_NE(out.find("#include \"gpart_runtime.h\""), std::string::npos);
  EXPECT_NE(out.find("GPART_REGISTER_MODEL(\"hotspot.model.json\")"), std::string::npos);
  EXPECT_NE(out.find("int main() { return 0; }"), std::string::npos);
}

TEST(Rewrite, SubstitutesMemoryApi) {
  Rewriter rw;
  RewriteReport report;
  std::string src = R"(
    float* d_a;
    cudaMalloc(&d_a, n * sizeof(float));
    cudaMemcpy(d_a, h_a, n * sizeof(float), cudaMemcpyHostToDevice);
    cudaMemcpyAsync(h_a, d_a, n * sizeof(float), cudaMemcpyDeviceToHost);
    cudaDeviceSynchronize();
    cudaFree(d_a);
  )";
  std::string out = rw.rewrite(src, &report);
  EXPECT_NE(out.find("gpartMalloc(&d_a, n * sizeof(float))"), std::string::npos);
  EXPECT_NE(out.find("gpartMemcpy(d_a, h_a"), std::string::npos);
  EXPECT_NE(out.find("gpartMemcpyHostToDevice"), std::string::npos);
  EXPECT_NE(out.find("gpartMemcpyAsync(h_a, d_a"), std::string::npos);
  EXPECT_NE(out.find("gpartDeviceSynchronize()"), std::string::npos);
  EXPECT_NE(out.find("gpartFree(d_a)"), std::string::npos);
  EXPECT_EQ(out.find("cudaMalloc"), std::string::npos);
  EXPECT_EQ(report.apiSubstitutions, 7);
}

TEST(Rewrite, RewritesKernelLaunch) {
  Rewriter rw;
  RewriteReport report;
  std::string out = rw.rewrite("hotspot<<<grid, block>>>(n, k, dt, tin, power, tout);",
                               &report);
  EXPECT_NE(out.find("gpartLaunchKernel(\"hotspot\", grid, block, "
                     "{gpartArgOf(n), gpartArgOf(k), gpartArgOf(dt), "
                     "gpartArgOf(tin), gpartArgOf(power), gpartArgOf(tout)});"),
            std::string::npos);
  EXPECT_EQ(report.launchesRewritten, 1);
  ASSERT_EQ(report.kernelsLaunched.size(), 1u);
  EXPECT_EQ(report.kernelsLaunched[0], "hotspot");
}

TEST(Rewrite, LaunchWithNestedParensAndCalls) {
  Rewriter rw;
  std::string out = rw.rewrite(
      "matmul<<<dim3(gx, gy), dim3(16, 16)>>>(n, a + off(1), b, c);");
  EXPECT_NE(out.find("gpartLaunchKernel(\"matmul\", dim3(gx, gy), dim3(16, 16), "
                     "{gpartArgOf(n), gpartArgOf(a + off(1)), gpartArgOf(b), "
                     "gpartArgOf(c)});"),
            std::string::npos);
}

TEST(Rewrite, LeavesCommentsAndStringsAlone) {
  Rewriter rw;
  std::string src = R"(
    // cudaMalloc in a comment stays put
    /* k<<<g, b>>>(x); also in a comment */
    const char* s = "cudaMemcpy inside a string";
    printf("%s", s);
  )";
  std::string out = rw.rewrite(src);
  EXPECT_NE(out.find("// cudaMalloc in a comment stays put"), std::string::npos);
  EXPECT_NE(out.find("/* k<<<g, b>>>(x); also in a comment */"), std::string::npos);
  EXPECT_NE(out.find("\"cudaMemcpy inside a string\""), std::string::npos);
}

TEST(Rewrite, UntouchedIdentifiersPassThrough) {
  Rewriter rw;
  std::string src = "int cudaMallocCount = 0; mycudaMemcpy();";
  std::string out = rw.rewrite(src);
  // Longest-identifier tokenization: names merely containing API names are
  // not rewritten.
  EXPECT_NE(out.find("int cudaMallocCount = 0;"), std::string::npos);
  EXPECT_NE(out.find("mycudaMemcpy();"), std::string::npos);
}

TEST(Rewrite, FullApplicationEndToEnd) {
  Rewriter rw("app.model.json");
  RewriteReport report;
  std::string src = R"(
#include <cstdio>
#include <cuda_runtime.h>

int main() {
  int n = 1 << 20;
  float *x, *y;
  cudaMalloc(&x, n * sizeof(float));
  cudaMalloc(&y, n * sizeof(float));
  cudaMemcpy(x, hx, n * sizeof(float), cudaMemcpyHostToDevice);
  cudaMemcpy(y, hy, n * sizeof(float), cudaMemcpyHostToDevice);
  saxpy<<<(n + 255) / 256, 256>>>(n, 2.0f, x, y);
  cudaDeviceSynchronize();
  cudaMemcpy(hy, y, n * sizeof(float), cudaMemcpyDeviceToHost);
  cudaFree(x);
  cudaFree(y);
  return 0;
}
)";
  std::string out = rw.rewrite(src, &report);
  EXPECT_EQ(report.launchesRewritten, 1);
  EXPECT_EQ(report.apiSubstitutions, 11);
  EXPECT_NE(out.find("gpartLaunchKernel(\"saxpy\", (n + 255) / 256, 256, "), std::string::npos);
  EXPECT_EQ(out.find("<<<"), std::string::npos);
}

}  // namespace
}  // namespace polypart::rewrite
