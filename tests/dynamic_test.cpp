// Tests for the dynamic fallbacks the paper's conclusion proposes:
// instrumentation-collected write patterns, conservative whole-array read
// synchronization, and programmer annotations of access maps.

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "analysis/analyze.h"
#include "apps/kernels.h"
#include "ir/builder.h"
#include "rt/runtime.h"
#include "support/rng.h"

namespace polypart::rt {
namespace {

using analysis::AnalysisOptions;
using analysis::ApplicationModel;
using ir::ArrayRef;
using ir::Axis;
using ir::ExprPtr;
using ir::fconst;
using ir::iconst;
using ir::KernelBuilder;
using ir::KernelPtr;
using ir::lt;
using ir::Type;

/// Scatter kernel: out[idx[i]] = in[i].  The write index is a load — far
/// outside the polyhedral model.
KernelPtr buildScatter() {
  KernelBuilder b("scatter");
  auto n = b.scalar("n", Type::I64);
  auto idx = b.array("idx", Type::I64, {n});
  auto in = b.array("in", Type::F64, {n});
  auto out = b.array("out", Type::F64, {n});
  auto i = b.let("i", b.globalId(Axis::X));
  b.iff(lt(i, n), [&] { b.store(out, b.load(idx, i), b.load(in, i)); });
  return b.build();
}

/// Gather kernel: out[i] = in[idx[i]].  Non-affine *read*.
KernelPtr buildGather() {
  KernelBuilder b("gather");
  auto n = b.scalar("n", Type::I64);
  auto idx = b.array("idx", Type::I64, {n});
  auto in = b.array("in", Type::F64, {n});
  auto out = b.array("out", Type::F64, {n});
  auto i = b.let("i", b.globalId(Axis::X));
  b.iff(lt(i, n), [&] { b.store(out, i, b.load(in, b.load(idx, i))); });
  return b.build();
}

std::unique_ptr<Runtime> makeRuntime(const ir::Module& mod,
                                     const ApplicationModel& model, int gpus) {
  RuntimeConfig cfg;
  cfg.numGpus = gpus;
  cfg.mode = sim::ExecutionMode::Functional;
  return std::make_unique<Runtime>(cfg, model, mod);
}

TEST(Dynamic, ScatterDemotesToMayWriteByDefault) {
  // The default tier ladder ends in may-access: the indirect write demotes
  // instead of rejecting the kernel.  POLYPART_STRICT_AFFINE / the
  // allowMayAccess option restore the paper's hard reject.
  KernelPtr k = buildScatter();
  analysis::KernelModel m = analysis::analyzeKernel(*k);
  const analysis::ArrayModel* out = m.arrayFor(3);
  ASSERT_NE(out, nullptr);
  EXPECT_TRUE(out->writeMayAccess);
  EXPECT_FALSE(out->hasWrites());
  EXPECT_FALSE(out->writeInstrumented);
  EXPECT_NE(out->mayAccessWhy.find("out"), std::string::npos)
      << out->mayAccessWhy;

  AnalysisOptions strict;
  strict.allowMayAccess = false;
  EXPECT_THROW(analysis::analyzeKernel(*k, strict), UnsupportedKernelError);
}

TEST(Dynamic, ScatterModelMarksInstrumentedWrite) {
  KernelPtr k = buildScatter();
  AnalysisOptions opts;
  opts.allowInstrumentedWrites = true;
  analysis::KernelModel m = analysis::analyzeKernel(*k, opts);
  const analysis::ArrayModel* out = m.arrayFor(3);
  ASSERT_NE(out, nullptr);
  EXPECT_TRUE(out->writeInstrumented);
  EXPECT_FALSE(out->hasWrites());
  // The serialized model round-trips the flag (pass 1 -> disk -> pass 2).
  analysis::KernelModel re = analysis::KernelModel::fromJson(
      json::Value::parse(m.toJson().dump()));
  EXPECT_TRUE(re.arrayFor(3)->writeInstrumented);
}

TEST(Dynamic, ScatterExecutesCorrectlyWithInstrumentation) {
  KernelPtr k = buildScatter();
  ir::Module mod;
  mod.addKernel(k);
  AnalysisOptions opts;
  opts.allowInstrumentedWrites = true;
  ApplicationModel model = analysis::analyzeModule(mod, opts);

  const i64 n = 512;
  Rng rng(17);
  // A random permutation keeps writes injective across partitions.
  std::vector<i64> perm(static_cast<std::size_t>(n));
  std::iota(perm.begin(), perm.end(), 0);
  for (i64 i = n - 1; i > 0; --i)
    std::swap(perm[static_cast<std::size_t>(i)],
              perm[static_cast<std::size_t>(rng.range(0, i))]);
  std::vector<double> in(static_cast<std::size_t>(n));
  for (i64 i = 0; i < n; ++i) in[static_cast<std::size_t>(i)] = 100.0 + static_cast<double>(i);

  for (int gpus : {1, 3, 8}) {
    auto rt = makeRuntime(mod, model, gpus);
    VirtualBuffer* dIdx = rt->malloc(n * 8);
    VirtualBuffer* dIn = rt->malloc(n * 8);
    VirtualBuffer* dOut = rt->malloc(n * 8);
    rt->memcpy(dIdx, perm.data(), n * 8, MemcpyKind::HostToDevice);
    rt->memcpy(dIn, in.data(), n * 8, MemcpyKind::HostToDevice);
    LaunchArg args[] = {LaunchArg::ofInt(n), LaunchArg::ofBuffer(dIdx),
                        LaunchArg::ofBuffer(dIn), LaunchArg::ofBuffer(dOut)};
    rt->launch("scatter", {n / 64, 1, 1}, {64, 1, 1}, args);
    std::vector<double> out(static_cast<std::size_t>(n), -1.0);
    rt->memcpy(out.data(), dOut, n * 8, MemcpyKind::DeviceToHost);
    for (i64 i = 0; i < n; ++i)
      EXPECT_EQ(out[static_cast<std::size_t>(perm[static_cast<std::size_t>(i)])],
                in[static_cast<std::size_t>(i)])
          << gpus << " GPUs, element " << i;
    rt->free(dIdx);
    rt->free(dIn);
    rt->free(dOut);
  }
}

TEST(Dynamic, InstrumentationDetectsWriteAfterWriteHazard) {
  KernelPtr k = buildScatter();
  ir::Module mod;
  mod.addKernel(k);
  AnalysisOptions opts;
  opts.allowInstrumentedWrites = true;
  ApplicationModel model = analysis::analyzeModule(mod, opts);

  const i64 n = 256;
  // All threads write element 0: partitions collide.
  std::vector<i64> idx(static_cast<std::size_t>(n), 0);
  std::vector<double> in(static_cast<std::size_t>(n), 1.0);
  auto rt = makeRuntime(mod, model, 4);
  VirtualBuffer* dIdx = rt->malloc(n * 8);
  VirtualBuffer* dIn = rt->malloc(n * 8);
  VirtualBuffer* dOut = rt->malloc(n * 8);
  rt->memcpy(dIdx, idx.data(), n * 8, MemcpyKind::HostToDevice);
  rt->memcpy(dIn, in.data(), n * 8, MemcpyKind::HostToDevice);
  LaunchArg args[] = {LaunchArg::ofInt(n), LaunchArg::ofBuffer(dIdx),
                      LaunchArg::ofBuffer(dIn), LaunchArg::ofBuffer(dOut)};
  EXPECT_THROW(rt->launch("scatter", {n / 64, 1, 1}, {64, 1, 1}, args), Error);
}

TEST(Dynamic, InstrumentationRequiresFunctionalMode) {
  KernelPtr k = buildScatter();
  ir::Module mod;
  mod.addKernel(k);
  AnalysisOptions opts;
  opts.allowInstrumentedWrites = true;
  ApplicationModel model = analysis::analyzeModule(mod, opts);
  RuntimeConfig cfg;
  cfg.numGpus = 2;
  cfg.mode = sim::ExecutionMode::TimingOnly;
  Runtime rt(cfg, model, mod);
  VirtualBuffer* dIdx = rt.malloc(256 * 8);
  VirtualBuffer* dIn = rt.malloc(256 * 8);
  VirtualBuffer* dOut = rt.malloc(256 * 8);
  LaunchArg args[] = {LaunchArg::ofInt(256), LaunchArg::ofBuffer(dIdx),
                      LaunchArg::ofBuffer(dIn), LaunchArg::ofBuffer(dOut)};
  EXPECT_THROW(rt.launch("scatter", {4, 1, 1}, {64, 1, 1}, args),
               UnsupportedOperationError);
}

TEST(Dynamic, GatherUsesWholeArrayReadFallback) {
  KernelPtr k = buildGather();
  // Default: the indirect read demotes to the may-access tier; strict mode
  // restores the reject.
  EXPECT_TRUE(analysis::analyzeKernel(*k).arrayFor(2)->readMayAccess);
  {
    AnalysisOptions strict;
    strict.allowMayAccess = false;
    EXPECT_THROW(analysis::analyzeKernel(*k, strict), UnsupportedKernelError);
  }

  AnalysisOptions opts;
  opts.allowWholeArrayReadFallback = true;
  analysis::KernelModel m = analysis::analyzeKernel(*k, opts);
  const analysis::ArrayModel* in = m.arrayFor(2);
  ASSERT_NE(in, nullptr);
  EXPECT_TRUE(in->readWholeArray);
  EXPECT_TRUE(in->hasReads());
  EXPECT_FALSE(in->read.exact());
  // Whatever the partition, the read covers the full array.
  std::vector<i64> params = {64, 1, 1, 4, 1, 1, /*n=*/256};
  std::vector<i64> ins = {128, 0, 0, 2, 0, 0};
  EXPECT_TRUE(in->read.contains(params, ins, std::vector<i64>{0}));
  EXPECT_TRUE(in->read.contains(params, ins, std::vector<i64>{255}));
  EXPECT_FALSE(in->read.contains(params, ins, std::vector<i64>{256}));
}

TEST(Dynamic, GatherExecutesCorrectlyWithFallback) {
  KernelPtr k = buildGather();
  ir::Module mod;
  mod.addKernel(k);
  AnalysisOptions opts;
  opts.allowWholeArrayReadFallback = true;
  ApplicationModel model = analysis::analyzeModule(mod, opts);

  const i64 n = 384;
  Rng rng(9);
  std::vector<i64> idx(static_cast<std::size_t>(n));
  for (auto& v : idx) v = rng.range(0, n - 1);  // arbitrary gather sources
  std::vector<double> in(static_cast<std::size_t>(n));
  for (i64 i = 0; i < n; ++i) in[static_cast<std::size_t>(i)] = static_cast<double>(i) * 0.5;

  for (int gpus : {1, 4, 6}) {
    auto rt = makeRuntime(mod, model, gpus);
    VirtualBuffer* dIdx = rt->malloc(n * 8);
    VirtualBuffer* dIn = rt->malloc(n * 8);
    VirtualBuffer* dOut = rt->malloc(n * 8);
    rt->memcpy(dIdx, idx.data(), n * 8, MemcpyKind::HostToDevice);
    rt->memcpy(dIn, in.data(), n * 8, MemcpyKind::HostToDevice);
    LaunchArg args[] = {LaunchArg::ofInt(n), LaunchArg::ofBuffer(dIdx),
                        LaunchArg::ofBuffer(dIn), LaunchArg::ofBuffer(dOut)};
    rt->launch("gather", {n / 64, 1, 1}, {64, 1, 1}, args);
    std::vector<double> out(static_cast<std::size_t>(n), -1.0);
    rt->memcpy(out.data(), dOut, n * 8, MemcpyKind::DeviceToHost);
    for (i64 i = 0; i < n; ++i)
      EXPECT_EQ(out[static_cast<std::size_t>(i)],
                in[static_cast<std::size_t>(idx[static_cast<std::size_t>(i)])])
          << gpus << " GPUs, element " << i;
    rt->free(dIdx);
    rt->free(dIn);
    rt->free(dOut);
  }
}

TEST(Dynamic, AnnotationsOverrideExtractedMaps) {
  // Annotate hotspot's output with the map its own analysis derives; the
  // annotated model must behave identically.
  KernelPtr k = apps::buildHotspot();
  analysis::KernelModel base = analysis::analyzeKernel(*k);
  const analysis::ArrayModel* tout = base.arrayFor(5);
  ASSERT_NE(tout, nullptr);

  analysis::KernelAnnotations ann;
  ann.annotateWrite(5, tout->write);
  AnalysisOptions opts;
  opts.annotations = &ann;
  analysis::KernelModel annotated = analysis::analyzeKernel(*k, opts);
  const analysis::ArrayModel* tout2 = annotated.arrayFor(5);
  ASSERT_NE(tout2, nullptr);
  EXPECT_FALSE(tout2->writeInstrumented);
  std::vector<i64> params = {4, 4, 1, 4, 4, 1, 16};
  std::vector<i64> ins = {0, 4, 0, 0, 1, 0};
  EXPECT_TRUE(tout2->write.contains(params, ins, std::vector<i64>{4, 0}));
  EXPECT_FALSE(tout2->write.contains(params, ins, std::vector<i64>{3, 2}));
}

TEST(Dynamic, AnnotationRescuesScatterWithKnownPattern) {
  // A "scatter" whose index buffer the programmer knows is the identity can
  // be annotated with the identity write map, avoiding instrumentation.
  KernelPtr k = buildScatter();
  analysis::KernelModel base;
  {
    AnalysisOptions opts;
    opts.allowInstrumentedWrites = true;
    base = analysis::analyzeKernel(*k, opts);
  }
  // Identity map: out dim a0 == box + tx projected => box <= a0 < box+bdx,
  // bounded by n.  Reuse saxpy's write map shape by building it directly.
  pset::Space space = analysis::accessMapSpace(base.paramSpace(), 1);
  pset::BasicSet bs(space);
  pset::LinExpr a0 = pset::LinExpr::dim(space, pset::DimId::out(0));
  pset::LinExpr box = pset::LinExpr::dim(space, pset::DimId::in(0));
  pset::LinExpr bdx = pset::LinExpr::dim(space, pset::DimId::param(0));
  pset::LinExpr n = pset::LinExpr::dim(space, pset::DimId::param(6));
  bs.addGe(a0 - box);
  bs.addGe(box + bdx - a0 + pset::LinExpr::constant(space, -1));
  bs.addGe(n - a0 + pset::LinExpr::constant(space, -1));
  bs.addGe(a0);
  pset::Map identity(space);
  identity.addPart(std::move(bs));

  analysis::KernelAnnotations ann;
  ann.annotateWrite(3, identity);
  AnalysisOptions opts;
  opts.allowInstrumentedWrites = true;
  opts.annotations = &ann;
  analysis::KernelModel m = analysis::analyzeKernel(*k, opts);
  EXPECT_FALSE(m.arrayFor(3)->writeInstrumented);
  EXPECT_TRUE(m.arrayFor(3)->hasWrites());
}

}  // namespace
}  // namespace polypart::rt
