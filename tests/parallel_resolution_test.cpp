// Determinism suite for the parallel resolution engine
// (rt::RuntimeConfig::resolutionThreads): the three-phase engine — parallel
// plan materialization, per-buffer sharded tracker phases, ordered commit —
// must leave functional results, modeled timing, RuntimeStats, MachineStats,
// and tracker state byte-identical for every thread count, with the
// enumeration cache on or off.  Wall-clock/task meta-counters are the
// documented exception (see RuntimeStats).

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "analysis/analyze.h"
#include "apps/drivers.h"
#include "apps/kernels.h"
#include "apps/workloads.h"
#include "rt/runtime.h"
#include "support/rng.h"

namespace polypart::rt {
namespace {

using analysis::ApplicationModel;

const ir::Module& benchModule() {
  static ir::Module mod = apps::buildBenchmarkModule();
  return mod;
}

const ApplicationModel& benchModel() {
  static ApplicationModel model = analysis::analyzeModule(benchModule());
  return model;
}

/// Zeroes the engine meta-counters RuntimeStats documents as excluded from
/// the determinism guarantee (wall clocks are real time; task counts are 0
/// in serial mode by definition).
RuntimeStats canonical(RuntimeStats s) {
  s.resolutionTasks = 0;
  s.resolutionWallSeconds = 0;
  s.parallelWallSeconds = 0;
  s.fmMemoHits = s.fmMemoMisses = s.fmMemoEvictions = 0;
  s.specProgramHits = s.specProgramMisses = s.specProgramEvictions = 0;
  return s;
}

RuntimeConfig engineCfg(int gpus, int threads, bool cache) {
  RuntimeConfig cfg;
  cfg.numGpus = gpus;
  cfg.mode = sim::ExecutionMode::Functional;
  cfg.resolutionThreads = threads;
  cfg.enableEnumerationCache = cache;
  return cfg;
}

struct AppRun {
  std::vector<double> bytes;  // D2H-gathered results
  RuntimeStats stats;
  sim::MachineStats machine;
  double simSeconds = 0;
};

AppRun runApp(apps::Benchmark b, int threads, bool cache, int gpus) {
  Runtime rt(engineCfg(gpus, threads, cache), benchModel(), benchModule());
  AppRun out;
  switch (b) {
    case apps::Benchmark::Hotspot: {
      const i64 n = 64;
      Rng rng(11);
      std::vector<double> temp(static_cast<std::size_t>(n * n));
      std::vector<double> power(static_cast<std::size_t>(n * n));
      for (auto& v : temp) v = rng.uniform() * 100.0;
      for (auto& v : power) v = rng.uniform();
      apps::runHotspot(rt, n, 8, temp.data(), power.data());
      out.bytes = std::move(temp);
      break;
    }
    case apps::Benchmark::NBody: {
      const i64 n = 192;
      Rng rng(23);
      std::vector<double> px(n), py(n), pz(n), vx(n, 0), vy(n, 0), vz(n, 0),
          mass(n, 1.0);
      for (i64 i = 0; i < n; ++i) {
        px[static_cast<std::size_t>(i)] = rng.uniform();
        py[static_cast<std::size_t>(i)] = rng.uniform();
        pz[static_cast<std::size_t>(i)] = rng.uniform();
      }
      apps::NBodyState st{px.data(), py.data(), pz.data(),
                          vx.data(), vy.data(), vz.data(), mass.data()};
      apps::runNBody(rt, n, 4, st);
      out.bytes = px;
      out.bytes.insert(out.bytes.end(), vx.begin(), vx.end());
      break;
    }
    case apps::Benchmark::Matmul: {
      const i64 n = 48;
      Rng rng(7);
      std::vector<double> a(static_cast<std::size_t>(n * n));
      std::vector<double> bm(static_cast<std::size_t>(n * n));
      for (auto& v : a) v = rng.uniform();
      for (auto& v : bm) v = rng.uniform();
      std::vector<double> c(static_cast<std::size_t>(n * n), -1.0);
      apps::runMatmul(rt, n, a.data(), bm.data(), c.data());
      out.bytes = std::move(c);
      break;
    }
  }
  out.stats = rt.stats();
  out.machine = rt.machineStats();
  out.simSeconds = rt.elapsedSeconds();
  return out;
}

TEST(ParallelResolution, ExampleAppsAreByteIdenticalAcrossThreadCounts) {
  for (apps::Benchmark b :
       {apps::Benchmark::Hotspot, apps::Benchmark::NBody, apps::Benchmark::Matmul}) {
    for (bool cache : {false, true}) {
      AppRun serial = runApp(b, /*threads=*/0, cache, /*gpus=*/4);
      for (int threads : {1, 4}) {
        AppRun par = runApp(b, threads, cache, 4);
        EXPECT_EQ(par.bytes, serial.bytes)
            << apps::benchmarkName(b) << " threads=" << threads
            << " cache=" << cache;
        EXPECT_EQ(canonical(par.stats), canonical(serial.stats))
            << apps::benchmarkName(b) << " threads=" << threads
            << " cache=" << cache;
        EXPECT_EQ(par.machine, serial.machine)
            << apps::benchmarkName(b) << " threads=" << threads
            << " cache=" << cache;
        EXPECT_EQ(par.simSeconds, serial.simSeconds)
            << apps::benchmarkName(b) << " threads=" << threads
            << " cache=" << cache;
        if (threads > 0) {
          EXPECT_GT(par.stats.resolutionTasks, 0);
        }
      }
    }
  }
}

/// Tracker dump: every segment with owner and sharer set.
using TrackerDump = std::vector<std::tuple<i64, i64, int, u64>>;

TrackerDump dumpTracker(const VirtualBuffer* vb) {
  TrackerDump dump;
  vb->tracker().querySharers(0, vb->bytes(),
                             [&](i64 b, i64 e, Owner o, u64 sharers) {
                               dump.emplace_back(b, e, o, sharers);
                             });
  return dump;
}

/// Runs a hotspot ping-pong with buffers held open so the final tracker
/// state of every virtual buffer can be compared across engine configs.
struct TrackerRun {
  std::vector<TrackerDump> trackers;
  std::vector<double> gathered;
  RuntimeStats stats;
};

TrackerRun runTrackedHotspot(int threads, bool cache, bool sharedCopies) {
  const i64 n = 64;
  const i64 cells = n * n;
  Rng rng(101);
  std::vector<double> temp(static_cast<std::size_t>(cells));
  std::vector<double> power(static_cast<std::size_t>(cells));
  for (auto& v : temp) v = rng.uniform() * 80.0;
  for (auto& v : power) v = rng.uniform();

  RuntimeConfig cfg = engineCfg(4, threads, cache);
  cfg.trackSharedCopies = sharedCopies;
  Runtime rt(cfg, benchModel(), benchModule());
  VirtualBuffer* t0 = rt.malloc(cells * 8);
  VirtualBuffer* t1 = rt.malloc(cells * 8);
  VirtualBuffer* pw = rt.malloc(cells * 8);
  rt.memcpy(t0, temp.data(), cells * 8, MemcpyKind::HostToDevice);
  rt.memcpy(pw, power.data(), cells * 8, MemcpyKind::HostToDevice);

  const i64 blocks = (n + apps::kBlock2D - 1) / apps::kBlock2D;
  VirtualBuffer* src = t0;
  VirtualBuffer* dst = t1;
  for (int it = 0; it < 5; ++it) {
    LaunchArg args[] = {LaunchArg::ofInt(n),      LaunchArg::ofFloat(0.4),
                        LaunchArg::ofFloat(0.05), LaunchArg::ofBuffer(src),
                        LaunchArg::ofBuffer(pw),  LaunchArg::ofBuffer(dst)};
    rt.launch("hotspot", {blocks, blocks, 1}, {apps::kBlock2D, apps::kBlock2D, 1},
              args);
    std::swap(src, dst);
  }
  TrackerRun out;
  out.gathered.assign(static_cast<std::size_t>(cells), -1.0);
  rt.memcpy(out.gathered.data(), src, cells * 8, MemcpyKind::DeviceToHost);
  rt.deviceSynchronize();
  out.trackers = {dumpTracker(t0), dumpTracker(t1), dumpTracker(pw)};
  out.stats = rt.stats();
  rt.free(t0);
  rt.free(t1);
  rt.free(pw);
  return out;
}

TEST(ParallelResolution, TrackerStateAndGatherBytesIdentical) {
  for (bool cache : {false, true}) {
    for (bool sharedCopies : {false, true}) {
      TrackerRun serial = runTrackedHotspot(0, cache, sharedCopies);
      for (int threads : {1, 4}) {
        TrackerRun par = runTrackedHotspot(threads, cache, sharedCopies);
        EXPECT_EQ(par.trackers, serial.trackers)
            << "threads=" << threads << " cache=" << cache
            << " sharedCopies=" << sharedCopies;
        EXPECT_EQ(par.gathered, serial.gathered)
            << "threads=" << threads << " cache=" << cache
            << " sharedCopies=" << sharedCopies;
        EXPECT_EQ(canonical(par.stats), canonical(serial.stats))
            << "threads=" << threads << " cache=" << cache
            << " sharedCopies=" << sharedCopies;
      }
    }
  }
}

TEST(ParallelResolution, SharedCopyHitsAreDeterministic) {
  // Hotspot's ping-pong writes invalidate replicas every iteration, so it
  // never re-reads a still-valid peer copy; n-body's broadcast position
  // reads do.  This pins the sharer-set fast path (tracker hit, no machine
  // traffic) to identical counters under the sharded engine.
  auto run = [&](int threads) {
    const i64 n = 192;
    Rng rng(23);
    std::vector<double> px(n), py(n), pz(n), vx(n, 0), vy(n, 0), vz(n, 0),
        mass(n, 1.0);
    for (i64 i = 0; i < n; ++i) {
      px[static_cast<std::size_t>(i)] = rng.uniform();
      py[static_cast<std::size_t>(i)] = rng.uniform();
      pz[static_cast<std::size_t>(i)] = rng.uniform();
    }
    RuntimeConfig cfg = engineCfg(4, threads, /*cache=*/true);
    cfg.trackSharedCopies = true;
    Runtime rt(cfg, benchModel(), benchModule());
    apps::NBodyState st{px.data(), py.data(), pz.data(),
                        vx.data(), vy.data(), vz.data(), mass.data()};
    apps::runNBody(rt, n, 4, st);
    return std::make_pair(px, rt.stats());
  };
  auto [bytes0, stats0] = run(0);
  EXPECT_GT(stats0.sharedCopyHits, 0);
  for (int threads : {1, 4}) {
    auto [bytesN, statsN] = run(threads);
    EXPECT_EQ(bytesN, bytes0) << threads;
    EXPECT_EQ(canonical(statsN), canonical(stats0)) << threads;
  }
}

TEST(ParallelResolution, EvictionThrashKeepsCountersIdentical) {
  // A plan-cache capacity smaller than the partitions of one launch forces
  // the miss→evict→insert path on every acquisition; the parallel engine
  // must replay the serial FIFO accounting exactly.
  auto run = [&](int threads) {
    const i64 n = 64;
    Rng rng(55);
    std::vector<double> temp(static_cast<std::size_t>(n * n));
    std::vector<double> power(static_cast<std::size_t>(n * n));
    for (auto& v : temp) v = rng.uniform() * 50.0;
    for (auto& v : power) v = rng.uniform();
    RuntimeConfig cfg = engineCfg(4, threads, /*cache=*/true);
    cfg.enumerationCachePlansPerKernel = 1;
    Runtime rt(cfg, benchModel(), benchModule());
    apps::runHotspot(rt, n, 6, temp.data(), power.data());
    return std::make_pair(temp, rt.stats());
  };
  auto [bytes0, stats0] = run(0);
  for (int threads : {1, 4}) {
    auto [bytesN, statsN] = run(threads);
    EXPECT_EQ(bytesN, bytes0) << threads;
    EXPECT_EQ(canonical(statsN), canonical(stats0)) << threads;
    EXPECT_GT(statsN.enumCacheEvictions, 0) << threads;
  }
}

TEST(ParallelResolution, ResolutionWallTimeIsCountedOnce) {
  // resolutionWallSeconds is accumulated by non-overlapping RAII windows
  // (Runtime::ResolutionTimer asserts non-nesting at runtime); the parallel
  // window is a sub-interval of a resolution window, so its wall time can
  // never exceed the resolution total.  A double-counted overlap would show
  // up here as parallelWallSeconds > resolutionWallSeconds.
  for (int threads : {1, 4}) {
    AppRun par = runApp(apps::Benchmark::Hotspot, threads, /*cache=*/true, 4);
    EXPECT_GT(par.stats.resolutionWallSeconds, 0.0) << threads;
    EXPECT_GT(par.stats.resolutionTasks, 0) << threads;
    EXPECT_LE(par.stats.parallelWallSeconds, par.stats.resolutionWallSeconds)
        << threads;
  }
}

TEST(ParallelResolution, SerialModeHasNoParallelMetaCounters) {
  // In serial mode the parallel engine never runs: its meta-counters must
  // stay exactly zero while the resolution wall clock still accumulates.
  AppRun serial = runApp(apps::Benchmark::Hotspot, /*threads=*/0,
                         /*cache=*/true, 4);
  EXPECT_GT(serial.stats.resolutionWallSeconds, 0.0);
  EXPECT_EQ(serial.stats.resolutionTasks, 0);
  EXPECT_EQ(serial.stats.parallelWallSeconds, 0.0);
}

TEST(ParallelResolution, BetaConfigurationIsDeterministicToo) {
  // β mode (transfers off, resolution on) exercises the no-transfer branch
  // of the sharded read phase: decisions are recorded but nothing is issued.
  auto run = [&](int threads) {
    const i64 n = 64;
    RuntimeConfig cfg = engineCfg(4, threads, /*cache=*/true);
    cfg.mode = sim::ExecutionMode::TimingOnly;
    cfg.enableTransfers = false;
    Runtime rt(cfg, benchModel(), benchModule());
    apps::runHotspot(rt, n, 6, nullptr, nullptr);
    return std::make_pair(rt.stats(), rt.elapsedSeconds());
  };
  auto [stats0, sim0] = run(0);
  for (int threads : {1, 4}) {
    auto [statsN, simN] = run(threads);
    EXPECT_EQ(canonical(statsN), canonical(stats0)) << threads;
    EXPECT_EQ(simN, sim0) << threads;
    EXPECT_EQ(statsN.peerCopies, 0) << threads;
  }
}

}  // namespace
}  // namespace polypart::rt
