// Launch-pipeline tracer tests (support/trace.h).
//
// The exported trace must be valid Chrome-trace-format JSON (parsed back
// with support/json, the same parser Perfetto-bound tooling would exercise),
// wall-domain spans must nest properly, the per-launch phase breakdown must
// agree with both the raw trace events and the machine's busy-time counters,
// serial-mode deterministic traces must be byte-identical across runs, and —
// the no-observer-effect guarantee — tracing must not change results,
// modeled timing, RuntimeStats, or MachineStats.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "analysis/analyze.h"
#include "apps/drivers.h"
#include "apps/kernels.h"
#include "rt/runtime.h"
#include "support/json.h"
#include "support/trace.h"

namespace polypart::trace {
namespace {

/// Numeric JSON accessor (ts/dur serialize as doubles, ids as integers).
double num(const json::Value& v) {
  return v.isInt() ? static_cast<double>(v.asInt()) : v.asDouble();
}

struct TracedRun {
  rt::RuntimeStats stats;
  sim::MachineStats machine;
  double elapsed = 0;
  std::vector<double> temp;
};

/// Runs a small functional Hotspot workload (several launches, real peer
/// transfers) with the given tracer and thread count.
TracedRun runHotspot(Tracer* tracer, int threads, int gpus = 4, i64 n = 48,
                     int iters = 3) {
  rt::RuntimeConfig cfg;
  cfg.numGpus = gpus;
  cfg.mode = sim::ExecutionMode::Functional;
  cfg.resolutionThreads = threads;
  cfg.tracer = tracer;
  static ir::Module mod = apps::buildBenchmarkModule();
  static analysis::ApplicationModel model = analysis::analyzeModule(mod);
  rt::Runtime rt(cfg, model, mod);
  TracedRun r;
  r.temp.assign(static_cast<std::size_t>(n * n), 30.0);
  std::vector<double> power(static_cast<std::size_t>(n * n), 0.5);
  apps::runHotspot(rt, n, iters, r.temp.data(), power.data());
  r.stats = rt.stats();
  r.machine = rt.machineStats();
  r.elapsed = rt.elapsedSeconds();
  return r;
}

TEST(Trace, ExportIsValidChromeTraceJson) {
  Tracer tracer;
  runHotspot(&tracer, 0);
  ASSERT_GT(tracer.eventCount(), 0u);

  json::Value root = json::Value::parse(tracer.exportChromeTrace());
  ASSERT_TRUE(root.isObject());
  const json::Value& events = root.at("traceEvents");
  ASSERT_TRUE(events.isArray());
  ASSERT_GT(events.asArray().size(), 0u);

  std::set<std::string> phases;
  for (const json::Value& e : events.asArray()) {
    ASSERT_TRUE(e.isObject());
    const std::string& ph = e.at("ph").asString();
    phases.insert(ph);
    ASSERT_TRUE(ph == "X" || ph == "i" || ph == "C" || ph == "M") << ph;
    EXPECT_TRUE(e.at("name").isString());
    i64 pid = e.at("pid").asInt();
    EXPECT_TRUE(pid == 1 || pid == 2 || pid == 3);
    if (ph == "M") continue;  // metadata carries no timestamp
    EXPECT_GE(num(e.at("ts")), 0.0);
    if (ph == "X") {
      EXPECT_GE(num(e.at("dur")), 0.0);
    }
    if (ph == "i") {
      EXPECT_EQ(e.at("s").asString(), "t");
    }
    if (ph == "C") {
      EXPECT_TRUE(e.at("args").isObject());
    }
  }
  // All four event classes must actually be exercised by a traced run.
  EXPECT_EQ(phases, (std::set<std::string>{"X", "i", "C", "M"}));
}

TEST(Trace, WallSpansNestProperly) {
  Tracer tracer;  // real timestamps: nesting is a wall-clock property
  runHotspot(&tracer, 0);

  json::Value root = tracer.toJson();
  // Group wall-domain complete events per tid and check the classic
  // balanced-interval property: spans on one thread either nest or are
  // disjoint, never partially overlap.
  struct Iv {
    double b, e;
    std::string name;
  };
  std::map<i64, std::vector<Iv>> byTid;
  for (const json::Value& ev : root.at("traceEvents").asArray()) {
    if (ev.at("ph").asString() != "X") continue;
    if (ev.at("pid").asInt() != 1) continue;
    double ts = num(ev.at("ts")), dur = num(ev.at("dur"));
    byTid[ev.at("tid").asInt()].push_back(
        Iv{ts, ts + dur, ev.at("name").asString()});
  }
  ASSERT_FALSE(byTid.empty());
  i64 launchSpans = 0, childSpans = 0;
  for (auto& [tid, ivs] : byTid) {
    for (const Iv& a : ivs)
      for (const Iv& b : ivs) {
        if (&a == &b) continue;
        bool disjoint = a.e <= b.b || b.e <= a.b;
        bool nested = (a.b >= b.b && a.e <= b.e) || (b.b >= a.b && b.e <= a.e);
        EXPECT_TRUE(disjoint || nested)
            << a.name << " [" << a.b << "," << a.e << ") vs " << b.name
            << " [" << b.b << "," << b.e << ")";
      }
    // Every sync-reads / update-trackers span sits inside a launch span.
    for (const Iv& child : ivs) {
      if (child.name != "sync-reads" && child.name != "update-trackers")
        continue;
      ++childSpans;
      bool contained = false;
      for (const Iv& outer : ivs)
        if (outer.name.starts_with("launch:") && outer.b <= child.b &&
            child.e <= outer.e)
          contained = true;
      EXPECT_TRUE(contained) << child.name;
    }
    for (const Iv& iv : ivs)
      if (iv.name.starts_with("launch:")) ++launchSpans;
  }
  EXPECT_GT(launchSpans, 0);
  EXPECT_GT(childSpans, 0);
}

TEST(Trace, PhaseBreakdownMatchesTraceAndMachineStats) {
  Tracer tracer;
  TracedRun run = runHotspot(&tracer, 0);

  std::vector<LaunchBreakdown> breakdown = tracer.phaseBreakdown();
  ASSERT_EQ(breakdown.size(), static_cast<std::size_t>(run.stats.launches));

  // (a) The breakdown must equal a direct aggregation of the exported JSON:
  // sim-domain complete events bucketed by category and launch id.
  std::map<i64, LaunchBreakdown> fromJson;
  json::Value root = tracer.toJson();
  for (const json::Value& ev : root.at("traceEvents").asArray()) {
    if (ev.at("ph").asString() != "X" || ev.at("pid").asInt() != 2) continue;
    const json::Value* args = ev.asObject().find("args");
    if (args == nullptr || !args->asObject().contains("launch")) continue;
    i64 launch = args->at("launch").asInt();
    double secs = num(ev.at("dur")) * 1e-6;
    const std::string& cat = ev.at("cat").asString();
    if (cat == "sim.kernel") fromJson[launch].executionSeconds += secs;
    if (cat == "sim.copy") fromJson[launch].transferSeconds += secs;
    if (cat == "sim.pattern") fromJson[launch].patternSeconds += secs;
  }
  ASSERT_EQ(fromJson.size(), breakdown.size());
  double executionTotal = 0, transferTotal = 0, patternTotal = 0;
  for (const LaunchBreakdown& lb : breakdown) {
    ASSERT_TRUE(fromJson.count(lb.launch)) << lb.launch;
    const LaunchBreakdown& j = fromJson[lb.launch];
    EXPECT_NEAR(lb.executionSeconds, j.executionSeconds, 1e-12);
    EXPECT_NEAR(lb.transferSeconds, j.transferSeconds, 1e-12);
    EXPECT_NEAR(lb.patternSeconds, j.patternSeconds, 1e-12);
    EXPECT_FALSE(lb.kernel.empty());
    // Shares sum to 1 for non-empty launches.
    if (lb.totalSeconds() > 0) {
      EXPECT_NEAR(
          lb.executionShare() + lb.transferShare() + lb.patternShare(), 1.0,
          1e-9);
    }
    executionTotal += lb.executionSeconds;
    transferTotal += lb.transferSeconds;
    patternTotal += lb.patternSeconds;
  }

  // (b) Execution time attributed to launches must equal the machine's
  // kernel busy time exactly (every kernel runs inside a launch scope), and
  // launch-attributed transfer time must be a positive part of the total
  // transfer busy time (the H2D scatter / D2H gather run outside launches).
  EXPECT_NEAR(executionTotal, run.machine.kernelBusySeconds,
              1e-12 * std::max(1.0, run.machine.kernelBusySeconds));
  EXPECT_GT(transferTotal, 0.0);
  EXPECT_LT(transferTotal, run.machine.transferBusySeconds);
  EXPECT_GT(patternTotal, 0.0);
}

TEST(Trace, SerialDeterministicTracesAreByteIdentical) {
  TracerOptions opts;
  opts.deterministicTimestamps = true;

  Tracer a(opts);
  runHotspot(&a, 0);
  Tracer b(opts);
  runHotspot(&b, 0);

  ASSERT_GT(a.eventCount(), 0u);
  EXPECT_EQ(a.exportChromeTrace(), b.exportChromeTrace());
}

TEST(Trace, CacheEventsAppearInTrace) {
  Tracer tracer;
  runHotspot(&tracer, 0, /*gpus=*/4, /*n=*/48, /*iters=*/4);
  json::Value root = tracer.toJson();
  i64 hits = 0, misses = 0, counters = 0;
  for (const json::Value& ev : root.at("traceEvents").asArray()) {
    const std::string& name = ev.at("name").asString();
    if (ev.at("ph").asString() == "i" && name == "plan-hit") ++hits;
    if (ev.at("ph").asString() == "i" && name == "plan-miss") ++misses;
    if (ev.at("ph").asString() == "C" && name == "plan-cache-hits") ++counters;
  }
  // Iterative relaunches replay cached plans: both outcomes must be visible.
  EXPECT_GT(hits, 0);
  EXPECT_GT(misses, 0);
  EXPECT_EQ(counters, hits);
}

TEST(Trace, PeerCopyEventsCarrySrcDstBytes) {
  Tracer tracer;
  TracedRun run = runHotspot(&tracer, 0);
  ASSERT_GT(run.stats.peerCopies, 0);
  json::Value root = tracer.toJson();
  i64 peerEvents = 0;
  for (const json::Value& ev : root.at("traceEvents").asArray()) {
    if (ev.at("ph").asString() != "i" || ev.at("name").asString() != "peer-copy")
      continue;
    ++peerEvents;
    const json::Value& args = ev.at("args");
    EXPECT_GE(args.at("src").asInt(), 0);
    EXPECT_GE(args.at("dst").asInt(), 0);
    EXPECT_NE(args.at("src").asInt(), args.at("dst").asInt());
    EXPECT_GT(args.at("bytes").asInt(), 0);
    EXPECT_GE(args.at("launch").asInt(), 0);  // peer copies happen in launches
  }
  // One instant per transfer decision, in serial and parallel mode alike.
  EXPECT_EQ(peerEvents, run.stats.peerCopies);
}

// The tracing-off smoke test (see also scripts/check.sh): attaching a tracer
// must not perturb results, modeled timing, or any deterministic counter, in
// serial and parallel resolution mode alike.
TEST(TraceSmoke, TracingOffAndOnProduceIdenticalStats) {
  for (int threads : {0, 4}) {
    TracedRun off = runHotspot(nullptr, threads);
    Tracer tracer;
    TracedRun on = runHotspot(&tracer, threads);

    EXPECT_EQ(on.temp, off.temp) << threads;
    EXPECT_EQ(on.elapsed, off.elapsed) << threads;
    EXPECT_EQ(on.machine, off.machine) << threads;
    // Wall-clock meta-counters are nondeterministic by nature (documented in
    // RuntimeStats); everything else must match field by field.
    rt::RuntimeStats a = on.stats, b = off.stats;
    a.resolutionWallSeconds = b.resolutionWallSeconds = 0;
    a.parallelWallSeconds = b.parallelWallSeconds = 0;
    a.fmMemoHits = b.fmMemoHits = a.fmMemoMisses = b.fmMemoMisses = 0;
    a.fmMemoEvictions = b.fmMemoEvictions = 0;
    a.specProgramHits = b.specProgramHits = 0;
    a.specProgramMisses = b.specProgramMisses = 0;
    a.specProgramEvictions = b.specProgramEvictions = 0;
    EXPECT_EQ(a, b) << threads;
  }
}

TEST(Trace, ParallelModeTraceIsWellFormed) {
  // Worker-thread buffers must merge into one consistent export: pool task
  // spans present, thread tracks named, still-parseable JSON.
  Tracer tracer;
  runHotspot(&tracer, 4);
  json::Value root = json::Value::parse(tracer.exportChromeTrace());
  i64 poolSpans = 0, workerTracks = 0;
  for (const json::Value& ev : root.at("traceEvents").asArray()) {
    if (ev.at("ph").asString() == "X" && ev.at("cat").asString() == "pool")
      ++poolSpans;
    if (ev.at("ph").asString() == "M" &&
        ev.at("name").asString() == "thread_name" &&
        ev.at("args").at("name").asString().starts_with("worker "))
      ++workerTracks;
  }
  EXPECT_GT(poolSpans, 0);
  EXPECT_GT(workerTracks, 0);
}

TEST(Trace, LaunchIdsAreMonotoneAcrossRuntimes) {
  // One tracer shared by several runtimes keeps launch ids distinct.
  Tracer tracer;
  runHotspot(&tracer, 0, 2, 32, 2);
  runHotspot(&tracer, 0, 2, 32, 2);
  std::vector<LaunchBreakdown> breakdown = tracer.phaseBreakdown();
  std::set<i64> ids;
  for (const LaunchBreakdown& lb : breakdown) ids.insert(lb.launch);
  EXPECT_EQ(ids.size(), breakdown.size());
}

}  // namespace
}  // namespace polypart::trace
