// Whole-pipeline fuzzing: randomly generated affine kernels are analyzed,
// partitioned, and executed on multiple simulated GPUs; the result must be
// bit-identical to direct single-device execution of the original kernel.
//
// This exercises every layer at once — polynomial extraction, DNF guards,
// delinearization, FM projections, injectivity, enumerator generation,
// coalescing, tracker coherence, and the launch orchestration — on shapes
// no hand-written test enumerates.

#include <gtest/gtest.h>

#include <vector>

#include "analysis/analyze.h"
#include "fuzz_kernels.h"
#include "fuzz_util.h"
#include "ir/interp.h"
#include "rt/runtime.h"

namespace polypart::rt {
namespace {

using fuzz::GeneratedKernel;
using fuzz::generate;

TEST(PipelineFuzz, RandomAffineKernelsPartitionExactly) {
  // One RNG drives the whole sweep, so each case's seed is reseeded per
  // iteration to stay individually replayable via POLYPART_FUZZ_SEED.
  const int iters = fuzz::caseCount(25);
  int accepted = 0;
  for (int iter = 0; iter < iters; ++iter) {
    fuzz::SeededRng rng(fuzz::seedFor(4242, iter));
    SCOPED_TRACE(rng.replay());
    GeneratedKernel g = generate(rng, iter);
    ir::Module mod;
    mod.addKernel(g.kernel);
    analysis::ApplicationModel model;
    try {
      model = analysis::analyzeModule(mod);
    } catch (const UnsupportedKernelError& e) {
      ADD_FAILURE() << "generated kernel rejected: " << e.what() << "\n"
                    << g.kernel->str();
      continue;
    }
    ++accepted;

    const i64 n = g.is2d ? 21 : 333;
    const i64 elems = g.is2d ? n * n : n;
    std::vector<std::vector<double>> inputs(
        static_cast<std::size_t>(g.numInputs));
    for (auto& buf : inputs) {
      buf.resize(static_cast<std::size_t>(elems));
      for (auto& v : buf) v = rng.uniform() * 4 - 2;
    }

    // Ground truth: single-device interpretation of the original kernel.
    ir::LaunchConfig cfg = g.is2d
                               ? ir::LaunchConfig{{(n + 4) / 5, (n + 4) / 5, 1}, {5, 5, 1}}
                               : ir::LaunchConfig{{(n + 63) / 64, 1, 1}, {64, 1, 1}};
    std::vector<double> truth(static_cast<std::size_t>(elems), 99.0);
    {
      std::vector<ir::ArgValue> args;
      args.push_back(ir::ArgValue::ofInt(n));
      for (auto& buf : inputs)
        args.push_back(ir::ArgValue::ofBuffer(buf.data(), elems));
      args.push_back(ir::ArgValue::ofBuffer(truth.data(), elems));
      ir::execute(*g.kernel, cfg, args);
    }

    // Partitioned execution on several GPU counts.
    for (int gpus : {2, 5}) {
      RuntimeConfig rc;
      rc.numGpus = gpus;
      rc.mode = sim::ExecutionMode::Functional;
      Runtime rt(rc, model, mod);
      std::vector<VirtualBuffer*> bufs;
      for (auto& buf : inputs) {
        VirtualBuffer* vb = rt.malloc(elems * 8);
        rt.memcpy(vb, buf.data(), elems * 8, MemcpyKind::HostToDevice);
        bufs.push_back(vb);
      }
      VirtualBuffer* vout = rt.malloc(elems * 8);
      std::vector<LaunchArg> args;
      args.push_back(LaunchArg::ofInt(n));
      for (VirtualBuffer* vb : bufs) args.push_back(LaunchArg::ofBuffer(vb));
      args.push_back(LaunchArg::ofBuffer(vout));
      rt.launch(g.kernel->name(), cfg.grid, cfg.block, args);
      std::vector<double> got(static_cast<std::size_t>(elems), -99.0);
      rt.memcpy(got.data(), vout, elems * 8, MemcpyKind::DeviceToHost);
      ASSERT_EQ(got, truth) << "kernel:\n" << g.kernel->str() << "\ngpus " << gpus;
    }
  }
  EXPECT_EQ(accepted, iters);
}

}  // namespace
}  // namespace polypart::rt
