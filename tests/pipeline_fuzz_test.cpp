// Whole-pipeline fuzzing: randomly generated affine kernels are analyzed,
// partitioned, and executed on multiple simulated GPUs; the result must be
// bit-identical to direct single-device execution of the original kernel.
//
// This exercises every layer at once — polynomial extraction, DNF guards,
// delinearization, FM projections, injectivity, enumerator generation,
// coalescing, tracker coherence, and the launch orchestration — on shapes
// no hand-written test enumerates.

#include <gtest/gtest.h>

#include <vector>

#include "analysis/analyze.h"
#include "ir/builder.h"
#include "ir/interp.h"
#include "rt/runtime.h"
#include "support/rng.h"

namespace polypart::rt {
namespace {

using ir::ArrayRef;
using ir::Axis;
using ir::ExprPtr;
using ir::fconst;
using ir::iconst;
using ir::KernelBuilder;
using ir::KernelPtr;
using ir::land;
using ir::lt;
using ir::ge;
using ir::le;
using ir::Type;

struct GeneratedKernel {
  KernelPtr kernel;
  bool is2d = false;
  int numInputs = 1;
};

/// Builds a random affine kernel: out[gid] (1-D) or out[y][x] (2-D) computed
/// from 1-3 inputs read at random affine offsets, optionally inside a small
/// sequential loop, under the grid guard plus an optional extra affine guard.
GeneratedKernel generate(Rng& rng, int index) {
  GeneratedKernel g;
  g.is2d = rng.chance(0.5);
  g.numInputs = static_cast<int>(rng.range(1, 3));
  KernelBuilder b("fuzz" + std::to_string(index));
  auto n = b.scalar("n", Type::I64);
  std::vector<ArrayRef> ins;
  for (int i = 0; i < g.numInputs; ++i) {
    ins.push_back(g.is2d
                      ? b.array("in" + std::to_string(i), Type::F64, {n, n})
                      : b.array("in" + std::to_string(i), Type::F64, {n}));
  }
  ArrayRef out = g.is2d ? b.array("out", Type::F64, {n, n})
                        : b.array("out", Type::F64, {n});

  auto x = b.let("x", b.globalId(Axis::X));
  ExprPtr y;
  ExprPtr guard;
  if (g.is2d) {
    y = b.let("y", b.globalId(Axis::Y));
    guard = land(lt(x, n), lt(y, n));
  } else {
    guard = lt(x, n);
  }

  b.iff(guard, [&] {
    // Clamped-free interior guard so random offsets stay in bounds.
    const i64 margin = 2;
    ExprPtr interior = land(ge(x, iconst(margin)), le(x, n - iconst(margin + 1)));
    if (g.is2d)
      interior = land(interior,
                      land(ge(y, iconst(margin)), le(y, n - iconst(margin + 1))));

    b.iff(
        interior,
        [&] {
          auto acc = b.let("acc", fconst(0.5));
          auto body = [&](ExprPtr base) {
            for (int i = 0; i < g.numInputs; ++i) {
              i64 dx = rng.range(-2, 2);
              ExprPtr idx;
              if (g.is2d) {
                i64 dy = rng.range(-2, 2);
                idx = (y + iconst(dy)) * n + (x + iconst(dx));
              } else {
                idx = x + iconst(dx);
              }
              b.assign(acc, acc + b.load(ins[static_cast<std::size_t>(i)], idx) * base);
            }
          };
          if (rng.chance(0.4)) {
            b.forLoop("k", iconst(0), iconst(3),
                      [&](ExprPtr k) { body(ir::Expr::cast(Type::F64, k + iconst(1))); });
          } else {
            body(fconst(1.25));
          }
          b.store(out, g.is2d ? y * n + x : x, acc);
        },
        [&] {
          // Border: write a marker so the whole output is covered.
          b.store(out, g.is2d ? y * n + x : x, fconst(-3.0));
        });
  });
  g.kernel = b.build();
  return g;
}

TEST(PipelineFuzz, RandomAffineKernelsPartitionExactly) {
  Rng rng(4242);
  int accepted = 0;
  for (int iter = 0; iter < 25; ++iter) {
    GeneratedKernel g = generate(rng, iter);
    ir::Module mod;
    mod.addKernel(g.kernel);
    analysis::ApplicationModel model;
    try {
      model = analysis::analyzeModule(mod);
    } catch (const UnsupportedKernelError& e) {
      ADD_FAILURE() << "generated kernel rejected: " << e.what() << "\n"
                    << g.kernel->str();
      continue;
    }
    ++accepted;

    const i64 n = g.is2d ? 21 : 333;
    const i64 elems = g.is2d ? n * n : n;
    std::vector<std::vector<double>> inputs(
        static_cast<std::size_t>(g.numInputs));
    for (auto& buf : inputs) {
      buf.resize(static_cast<std::size_t>(elems));
      for (auto& v : buf) v = rng.uniform() * 4 - 2;
    }

    // Ground truth: single-device interpretation of the original kernel.
    ir::LaunchConfig cfg = g.is2d
                               ? ir::LaunchConfig{{(n + 4) / 5, (n + 4) / 5, 1}, {5, 5, 1}}
                               : ir::LaunchConfig{{(n + 63) / 64, 1, 1}, {64, 1, 1}};
    std::vector<double> truth(static_cast<std::size_t>(elems), 99.0);
    {
      std::vector<ir::ArgValue> args;
      args.push_back(ir::ArgValue::ofInt(n));
      for (auto& buf : inputs)
        args.push_back(ir::ArgValue::ofBuffer(buf.data(), elems));
      args.push_back(ir::ArgValue::ofBuffer(truth.data(), elems));
      ir::execute(*g.kernel, cfg, args);
    }

    // Partitioned execution on several GPU counts.
    for (int gpus : {2, 5}) {
      RuntimeConfig rc;
      rc.numGpus = gpus;
      rc.mode = sim::ExecutionMode::Functional;
      Runtime rt(rc, model, mod);
      std::vector<VirtualBuffer*> bufs;
      for (auto& buf : inputs) {
        VirtualBuffer* vb = rt.malloc(elems * 8);
        rt.memcpy(vb, buf.data(), elems * 8, MemcpyKind::HostToDevice);
        bufs.push_back(vb);
      }
      VirtualBuffer* vout = rt.malloc(elems * 8);
      std::vector<LaunchArg> args;
      args.push_back(LaunchArg::ofInt(n));
      for (VirtualBuffer* vb : bufs) args.push_back(LaunchArg::ofBuffer(vb));
      args.push_back(LaunchArg::ofBuffer(vout));
      rt.launch(g.kernel->name(), cfg.grid, cfg.block, args);
      std::vector<double> got(static_cast<std::size_t>(elems), -99.0);
      rt.memcpy(got.data(), vout, elems * 8, MemcpyKind::DeviceToHost);
      ASSERT_EQ(got, truth) << "kernel:\n" << g.kernel->str() << "\ngpus " << gpus;
    }
  }
  EXPECT_EQ(accepted, 25);
}

}  // namespace
}  // namespace polypart::rt
