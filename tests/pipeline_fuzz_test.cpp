// Whole-pipeline fuzzing: randomly generated affine kernels are analyzed,
// partitioned, and executed on multiple simulated GPUs; the result must be
// bit-identical to direct single-device execution of the original kernel.
//
// This exercises every layer at once — polynomial extraction, DNF guards,
// delinearization, FM projections, injectivity, enumerator generation,
// coalescing, tracker coherence, and the launch orchestration — on shapes
// no hand-written test enumerates.

#include <gtest/gtest.h>

#include <vector>

#include "analysis/analyze.h"
#include "fuzz_kernels.h"
#include "fuzz_util.h"
#include "ir/interp.h"
#include "rt/runtime.h"

namespace polypart::rt {
namespace {

using fuzz::GeneratedKernel;
using fuzz::generate;

TEST(PipelineFuzz, RandomAffineKernelsPartitionExactly) {
  // One RNG drives the whole sweep, so each case's seed is reseeded per
  // iteration to stay individually replayable via POLYPART_FUZZ_SEED.
  const int iters = fuzz::caseCount(25);
  int accepted = 0;
  for (int iter = 0; iter < iters; ++iter) {
    fuzz::SeededRng rng(fuzz::seedFor(4242, iter));
    SCOPED_TRACE(rng.replay());
    GeneratedKernel g = generate(rng, iter);
    ir::Module mod;
    mod.addKernel(g.kernel);
    analysis::ApplicationModel model;
    try {
      model = analysis::analyzeModule(mod);
    } catch (const UnsupportedKernelError& e) {
      ADD_FAILURE() << "generated kernel rejected: " << e.what() << "\n"
                    << g.kernel->str();
      continue;
    }
    ++accepted;

    const i64 n = g.is2d ? 21 : 333;
    const i64 elems = g.is2d ? n * n : n;
    std::vector<std::vector<double>> inputs(
        static_cast<std::size_t>(g.numInputs));
    for (auto& buf : inputs) {
      buf.resize(static_cast<std::size_t>(elems));
      for (auto& v : buf) v = rng.uniform() * 4 - 2;
    }

    // Ground truth: single-device interpretation of the original kernel.
    ir::LaunchConfig cfg = g.is2d
                               ? ir::LaunchConfig{{(n + 4) / 5, (n + 4) / 5, 1}, {5, 5, 1}}
                               : ir::LaunchConfig{{(n + 63) / 64, 1, 1}, {64, 1, 1}};
    std::vector<double> truth(static_cast<std::size_t>(elems), 99.0);
    {
      std::vector<ir::ArgValue> args;
      args.push_back(ir::ArgValue::ofInt(n));
      for (auto& buf : inputs)
        args.push_back(ir::ArgValue::ofBuffer(buf.data(), elems));
      args.push_back(ir::ArgValue::ofBuffer(truth.data(), elems));
      ir::execute(*g.kernel, cfg, args);
    }

    // Partitioned execution on several GPU counts.
    for (int gpus : {2, 5}) {
      RuntimeConfig rc;
      rc.numGpus = gpus;
      rc.mode = sim::ExecutionMode::Functional;
      Runtime rt(rc, model, mod);
      std::vector<VirtualBuffer*> bufs;
      for (auto& buf : inputs) {
        VirtualBuffer* vb = rt.malloc(elems * 8);
        rt.memcpy(vb, buf.data(), elems * 8, MemcpyKind::HostToDevice);
        bufs.push_back(vb);
      }
      VirtualBuffer* vout = rt.malloc(elems * 8);
      std::vector<LaunchArg> args;
      args.push_back(LaunchArg::ofInt(n));
      for (VirtualBuffer* vb : bufs) args.push_back(LaunchArg::ofBuffer(vb));
      args.push_back(LaunchArg::ofBuffer(vout));
      rt.launch(g.kernel->name(), cfg.grid, cfg.block, args);
      std::vector<double> got(static_cast<std::size_t>(elems), -99.0);
      rt.memcpy(got.data(), vout, elems * 8, MemcpyKind::DeviceToHost);
      ASSERT_EQ(got, truth) << "kernel:\n" << g.kernel->str() << "\ngpus " << gpus;
    }
  }
  EXPECT_EQ(accepted, iters);
}

/// One generated kernel's state inside a tenant's launch stream: the kernel,
/// its device buffers, and the host-side reference buffers the serial
/// baseline runs against.
struct TenantStream {
  GeneratedKernel g;
  i64 n = 0;
  i64 elems = 0;
  ir::LaunchConfig cfg;
  std::vector<std::vector<double>> inputs;
  std::vector<VirtualBuffer*> bufs;  // inputs... then the output buffer
};

TEST(PipelineFuzz, InterleavedTenantStreamsMatchSerialExecution) {
  // Random multi-tenant launch streams: each tenant owns one generated
  // kernel and its buffers; a randomized round-robin interleaves their
  // submissions through the pipelined engine across pipeline depths, engine
  // thread counts, cache settings, and transfer scheduling.  Every
  // configuration must gather byte-identical outputs to the serial
  // (depth 0, threads 0) runtime executing the same per-tenant streams.
  const int iters = fuzz::caseCount(6);
  for (int iter = 0; iter < iters; ++iter) {
    fuzz::SeededRng rng(fuzz::seedFor(9393, iter));
    SCOPED_TRACE(rng.replay());

    // Generate one kernel per tenant; regenerate on the rare shapes the
    // analyzer cannot accept is unnecessary (generate() only emits supported
    // kernels), but keep module assembly shared across tenants.
    const int tenants = 2 + static_cast<int>(rng.next() % 2);  // 2..3
    ir::Module mod;
    std::vector<TenantStream> streams(static_cast<std::size_t>(tenants));
    for (int t = 0; t < tenants; ++t) {
      TenantStream& s = streams[static_cast<std::size_t>(t)];
      s.g = generate(rng, iter * 7 + t);
      mod.addKernel(s.g.kernel);
      s.n = s.g.is2d ? 17 : 257;
      s.elems = s.g.is2d ? s.n * s.n : s.n;
      s.cfg = s.g.is2d
                  ? ir::LaunchConfig{{(s.n + 4) / 5, (s.n + 4) / 5, 1}, {5, 5, 1}}
                  : ir::LaunchConfig{{(s.n + 63) / 64, 1, 1}, {64, 1, 1}};
      s.inputs.resize(static_cast<std::size_t>(s.g.numInputs));
      for (auto& buf : s.inputs) {
        buf.resize(static_cast<std::size_t>(s.elems));
        for (auto& v : buf) v = rng.uniform() * 4 - 2;
      }
    }
    analysis::ApplicationModel model;
    try {
      model = analysis::analyzeModule(mod);
    } catch (const UnsupportedKernelError& e) {
      ADD_FAILURE() << "generated kernel rejected: " << e.what();
      continue;
    }

    // The interleave order and per-tenant launch counts are drawn once and
    // replayed identically under every engine configuration.
    std::vector<int> order;
    for (int t = 0; t < tenants; ++t) {
      const int launches = 2 + static_cast<int>(rng.next() % 3);  // 2..4
      for (int l = 0; l < launches; ++l) order.push_back(t);
    }
    for (std::size_t i = order.size(); i > 1; --i)
      std::swap(order[i - 1], order[rng.next() % i]);

    auto run = [&](int depth, int threads, bool cache, bool xferSched) {
      RuntimeConfig rc;
      rc.numGpus = 3;
      rc.mode = sim::ExecutionMode::Functional;
      rc.pipelineDepth = depth;
      rc.resolutionThreads = threads;
      rc.enableEnumerationCache = cache;
      rc.transferScheduling = xferSched;
      rc.numTenants = tenants;
      Runtime rt(rc, model, mod);
      for (int t = 0; t < tenants; ++t) {
        TenantStream& s = streams[static_cast<std::size_t>(t)];
        s.bufs.clear();
        for (auto& buf : s.inputs) {
          VirtualBuffer* vb = rt.malloc(s.elems * 8, t);
          rt.memcpy(vb, buf.data(), s.elems * 8, MemcpyKind::HostToDevice);
          s.bufs.push_back(vb);
        }
        s.bufs.push_back(rt.malloc(s.elems * 8, t));
      }
      for (int t : order) {
        TenantStream& s = streams[static_cast<std::size_t>(t)];
        std::vector<LaunchArg> args;
        args.push_back(LaunchArg::ofInt(s.n));
        for (VirtualBuffer* vb : s.bufs) args.push_back(LaunchArg::ofBuffer(vb));
        rt.submit(s.g.kernel->name(), s.cfg.grid, s.cfg.block, args, t);
      }
      rt.drain();
      std::vector<std::vector<double>> outs;
      for (int t = 0; t < tenants; ++t) {
        TenantStream& s = streams[static_cast<std::size_t>(t)];
        std::vector<double> got(static_cast<std::size_t>(s.elems), -99.0);
        rt.memcpy(got.data(), s.bufs.back(), s.elems * 8,
                  MemcpyKind::DeviceToHost);
        outs.push_back(std::move(got));
      }
      return outs;
    };

    const std::vector<std::vector<double>> serial =
        run(/*depth=*/0, /*threads=*/0, /*cache=*/true, /*xferSched=*/false);
    for (int depth : {1, 3})
      for (int threads : {0, 2})
        for (bool cache : {false, true})
          for (bool xferSched : {false, true})
            ASSERT_EQ(run(depth, threads, cache, xferSched), serial)
                << "depth " << depth << " threads " << threads << " cache "
                << cache << " xferSched " << xferSched;
  }
}

}  // namespace
}  // namespace polypart::rt
