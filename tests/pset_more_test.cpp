// Additional polyhedral-substrate tests: space manipulation, set algebra,
// map domain/range, exactness propagation, overflow safety, scan-AST C
// emission, and randomized projection-vs-enumeration properties.

#include <gtest/gtest.h>

#include <set>

#include "pset/ast.h"
#include "pset/map.h"
#include "pset/set.h"
#include "support/rng.h"

namespace polypart::pset {
namespace {

TEST(SpaceMore, AddParamsAndRangeSpace) {
  Space s = Space::map({"N"}, {"i", "j"}, {"a"});
  Space wider = s.addParams({"p", "q"});
  EXPECT_EQ(wider.numParams(), 3u);
  EXPECT_EQ(wider.paramIndex("q"), 2u);
  EXPECT_EQ(wider.paramIndex("zzz"), Space::npos);
  Space range = s.rangeSpace();
  EXPECT_TRUE(range.isSet());
  EXPECT_EQ(range.numIn(), 1u);
  EXPECT_EQ(range.name(DimId::in(0)), "a");
  Space dom = s.domainSpace();
  EXPECT_EQ(dom.numIn(), 2u);
}

TEST(BasicSetMore, AlignToSpaceWidensParams) {
  Space narrow = Space::set({"N"}, {"i"});
  BasicSet bs(narrow);
  bs.addBounds(DimId::in(0), LinExpr(narrow), LinExpr::dim(narrow, DimId::param(0)));
  Space wide = narrow.addParams({"extra"});
  BasicSet aligned = bs.alignToSpace(wide);
  i64 params[] = {5, 999};
  i64 in4[] = {4}, in5[] = {5};
  EXPECT_TRUE(aligned.containsPoint(params, in4, {}));
  EXPECT_FALSE(aligned.containsPoint(params, in5, {}));
}

TEST(BasicSetMore, FixDimPinsValue) {
  Space s = Space::set({}, {"i", "j"});
  BasicSet bs(s);
  bs.addBounds(DimId::in(0), LinExpr(s), LinExpr::constant(s, 10));
  bs.addBounds(DimId::in(1), LinExpr(s), LinExpr::constant(s, 10));
  bs.fixDim(DimId::in(0), 3);
  i64 a[] = {3, 7}, b[] = {4, 7};
  EXPECT_TRUE(bs.containsPoint({}, a, {}));
  EXPECT_FALSE(bs.containsPoint({}, b, {}));
}

TEST(BasicSetMore, ProjectOutAllDimsLeavesParamConstraints) {
  // { [i] : 0 <= i < N } projected to params implies N >= 1.
  Space s = Space::set({"N"}, {"i"});
  BasicSet bs(s);
  bs.addBounds(DimId::in(0), LinExpr(s), LinExpr::dim(s, DimId::param(0)));
  Proj p = bs.projectOutAllDims();
  EXPECT_TRUE(p.exact);
  EXPECT_EQ(p.set.space().numIn(), 0u);
  i64 n0[] = {0}, n1[] = {1};
  EXPECT_FALSE(p.set.containsPoint(n0, {}, {}));
  EXPECT_TRUE(p.set.containsPoint(n1, {}, {}));
}

TEST(BasicSetMore, StrMentionsNamesAndConstraints) {
  Space s = Space::set({"N"}, {"i"});
  BasicSet bs(s);
  bs.addGe(LinExpr::dim(s, DimId::in(0)) * 2 - LinExpr::dim(s, DimId::param(0)));
  std::string str = bs.str();
  EXPECT_NE(str.find("[N] -> "), std::string::npos);
  EXPECT_NE(str.find("2*i"), std::string::npos);
  EXPECT_NE(str.find(">= 0"), std::string::npos);
}

TEST(BasicSetMore, OverflowInEliminationThrows) {
  Space s = Space::set({}, {"x", "y"});
  BasicSet bs(s);
  // Constraints with near-max coefficients: combining them must not wrap.
  LinExpr a(s);
  a.setCoef(s, DimId::in(0), INT64_MAX / 2);
  a.setCoef(s, DimId::in(1), 3);
  bs.addGe(a);
  LinExpr b(s);
  b.setCoef(s, DimId::in(0), -(INT64_MAX / 2 - 1));
  b.setCoef(s, DimId::in(1), 5);
  bs.addGe(b);
  EXPECT_THROW((void)bs.projectOut(DimKind::In, 0, 1), OverflowError);
}

TEST(SetMore, IntersectAndPrune) {
  Space s = Space::set({}, {"i"});
  BasicSet lowHalf(s);
  lowHalf.addBounds(DimId::in(0), LinExpr(s), LinExpr::constant(s, 5));
  BasicSet highHalf(s);
  highHalf.addBounds(DimId::in(0), LinExpr::constant(s, 5), LinExpr::constant(s, 10));
  Set a(s), b(s);
  a.addPart(lowHalf);
  b.addPart(highHalf);
  Set inter = a.intersect(b);
  EXPECT_EQ(inter.emptiness(), Tri::Yes);

  Set uni = a.unionWith(b);
  EXPECT_EQ(uni.parts().size(), 2u);
  uni.pruneEmptyParts();
  EXPECT_EQ(uni.parts().size(), 2u);
  i64 p3[] = {3}, p7[] = {7}, p10[] = {10};
  EXPECT_TRUE(uni.containsPoint({}, p3));
  EXPECT_TRUE(uni.containsPoint({}, p7));
  EXPECT_FALSE(uni.containsPoint({}, p10));
}

TEST(SetMore, ExactnessPropagatesThroughOps) {
  Space s = Space::set({}, {"i", "j"});
  BasicSet bs(s);
  LinExpr i = LinExpr::dim(s, DimId::in(0));
  LinExpr j = LinExpr::dim(s, DimId::in(1));
  bs.addGe(j);
  bs.addGe(LinExpr::constant(s, 5) - j);
  bs.addEq(i - j * 2);  // projection of j is integer-inexact
  Set set(s);
  set.addPart(bs);
  Set projected = set.projectOut(DimKind::In, 1, 1);
  EXPECT_FALSE(projected.exact());
  // Union with an inexact set is inexact.
  Set exactSet = Set::universe(projected.space());
  EXPECT_TRUE(exactSet.exact());
  EXPECT_FALSE(exactSet.unionWith(projected).exact());
}

TEST(MapMore, DomainOfShiftMap) {
  Space s = Space::map({}, {"i"}, {"a"});
  Map m(s);
  BasicSet bs(s);
  bs.addEq(LinExpr::dim(s, DimId::out(0)) - LinExpr::dim(s, DimId::in(0)) -
           LinExpr::constant(s, 3));
  bs.addBounds(DimId::out(0), LinExpr::constant(s, 10), LinExpr::constant(s, 20));
  m.addPart(bs);
  Set dom = m.domain();
  // a in [10, 20) <=> i in [7, 17).
  i64 i7[] = {7}, i16[] = {16}, i17[] = {17}, i6[] = {6};
  EXPECT_TRUE(dom.containsPoint({}, i7));
  EXPECT_TRUE(dom.containsPoint({}, i16));
  EXPECT_FALSE(dom.containsPoint({}, i17));
  EXPECT_FALSE(dom.containsPoint({}, i6));
}

TEST(MapMore, InjectivityWithParamContext) {
  // { [i] -> [i + N] } is injective for any N (translation).
  Space s = Space::map({"N"}, {"i"}, {"a"});
  Map m(s);
  BasicSet bs(s);
  bs.addEq(LinExpr::dim(s, DimId::out(0)) - LinExpr::dim(s, DimId::in(0)) -
           LinExpr::dim(s, DimId::param(0)));
  bs.addBounds(DimId::in(0), LinExpr(s), LinExpr::constant(s, 100));
  m.addPart(bs);
  BasicSet ctx(Space::set({"N"}, {}));
  EXPECT_EQ(m.isInjective(ctx), Tri::Yes);
}

TEST(MapMore, TwoPartUnionInjectivity) {
  // Parts { [i] -> [2i] } and { [i] -> [2i+1] } are individually and jointly
  // injective (disjoint images).
  Space s = Space::map({}, {"i"}, {"a"});
  Map m(s);
  for (int off = 0; off < 2; ++off) {
    BasicSet bs(s);
    LinExpr a = LinExpr::dim(s, DimId::out(0));
    LinExpr i = LinExpr::dim(s, DimId::in(0));
    bs.addEq(a - i * 2 - LinExpr::constant(s, off));
    bs.addBounds(DimId::in(0), LinExpr(s), LinExpr::constant(s, 50));
    m.addPart(bs);
  }
  BasicSet ctx(Space::set({}, {}));
  EXPECT_EQ(m.isInjective(ctx), Tri::Yes);

  // Shifting the second part to overlap the first breaks injectivity.
  Map bad(s);
  for (int off : {0, 2}) {
    BasicSet bs(s);
    LinExpr a = LinExpr::dim(s, DimId::out(0));
    LinExpr i = LinExpr::dim(s, DimId::in(0));
    bs.addEq(a - i * 2 - LinExpr::constant(s, off));
    bs.addBounds(DimId::in(0), LinExpr(s), LinExpr::constant(s, 50));
    bad.addPart(bs);
  }
  // The conflict system needs a divisibility argument (2i == 2i' + 2), which
  // rational FM cannot decide exactly: the check must at least refuse to
  // claim injectivity (No or Unknown are both sound rejections).
  EXPECT_NE(bad.isInjective(ctx), Tri::Yes);
}

TEST(AstMore, ScanToCEmitsLoopNest) {
  Space s = Space::set({"N"}, {"y", "x"});
  BasicSet bs(s);
  bs.addBounds(DimId::in(0), LinExpr(s), LinExpr::dim(s, DimId::param(0)));
  bs.addBounds(DimId::in(1), LinExpr(s), LinExpr::dim(s, DimId::param(0)));
  ScanNest nest = buildScan(bs);
  std::string c = scanToC(nest, {"N"}, "emit_range");
  EXPECT_NE(c.find("for (int64_t d0 ="), std::string::npos);
  EXPECT_NE(c.find("emit_range(ctx, d0, lo, hi);"), std::string::npos);
  EXPECT_NE(c.find("N"), std::string::npos);
}

TEST(AstMore, UnboundedDimensionRejected) {
  Space s = Space::set({}, {"i"});
  BasicSet bs(s);
  bs.addGe(LinExpr::dim(s, DimId::in(0)));  // i >= 0, no upper bound
  EXPECT_THROW(buildScan(bs), UnsupportedKernelError);
}

TEST(AstMore, ExprEvalAndPrinting) {
  AstExpr e = AstExpr::maxOf({AstExpr::constant(3),
                              AstExpr::ceilDiv(AstExpr::param(0), 4)});
  i64 params[] = {10};
  EXPECT_EQ(e.eval(params, {}), 3);
  i64 params2[] = {30};
  EXPECT_EQ(e.eval(params2, {}), 8);
  std::string s = e.str({"n"});
  EXPECT_NE(s.find("max("), std::string::npos);
  EXPECT_NE(s.find("ceild"), std::string::npos);
  EXPECT_NE(s.find("n"), std::string::npos);
}

TEST(AstMore, ConstantFoldingInFactories) {
  EXPECT_EQ(AstExpr::add(AstExpr::constant(2), AstExpr::constant(3)).value(), 5);
  EXPECT_EQ(AstExpr::mul(AstExpr::constant(0), AstExpr::param(3)).value(), 0);
  EXPECT_EQ(AstExpr::floorDiv(AstExpr::constant(-7), 2).value(), -4);
  EXPECT_EQ(AstExpr::ceilDiv(AstExpr::constant(-7), 2).value(), -3);
  // x * 1 and x + 0 collapse to x.
  AstExpr x = AstExpr::loopVar(0);
  EXPECT_EQ(AstExpr::mul(x, AstExpr::constant(1)).kind(), AstExpr::Kind::LoopVar);
  EXPECT_EQ(AstExpr::add(AstExpr::constant(0), x).kind(), AstExpr::Kind::LoopVar);
}

/// Randomized property: projection is a sound over-approximation, and exact
/// projections match brute-force enumeration.
TEST(ProjectionProperty, SoundAndExactWhenClaimed) {
  Rng rng(555);
  for (int iter = 0; iter < 120; ++iter) {
    Space s = Space::set({}, {"i", "j"});
    BasicSet bs(s);
    bs.addBounds(DimId::in(0), LinExpr::constant(s, -4), LinExpr::constant(s, 5));
    bs.addBounds(DimId::in(1), LinExpr::constant(s, -4), LinExpr::constant(s, 5));
    for (int k = 0; k < 2; ++k) {
      LinExpr e(s);
      e.setCoef(s, DimId::in(0), rng.range(-3, 3));
      e.setCoef(s, DimId::in(1), rng.range(-3, 3));
      e.addConstant(rng.range(-5, 9));
      if (rng.chance(0.25))
        bs.addEq(std::move(e));
      else
        bs.addGe(std::move(e));
    }
    BasicSet original = bs;
    Proj p = bs.projectOut(DimKind::In, 1, 1);

    std::set<i64> truth;
    for (i64 i = -4; i < 5; ++i)
      for (i64 j = -4; j < 5; ++j) {
        i64 ins[] = {i, j};
        if (original.containsPoint({}, ins, {})) truth.insert(i);
      }
    for (i64 i = -4; i < 5; ++i) {
      i64 ins[] = {i};
      bool inProj = p.set.containsPoint({}, ins, {});
      if (truth.count(i)) {
        EXPECT_TRUE(inProj) << "projection lost i=" << i << " of " << original.str();
      } else if (p.exact) {
        EXPECT_FALSE(inProj) << "exact projection gained i=" << i << " of "
                             << original.str();
      }
    }
  }
}

/// Randomized property: Map::range() over-approximates the true image and is
/// exact when it says so.
TEST(ProjectionProperty, RangeMatchesImage) {
  Rng rng(901);
  for (int iter = 0; iter < 80; ++iter) {
    Space s = Space::map({}, {"i"}, {"a"});
    Map m(s);
    BasicSet bs(s);
    bs.addBounds(DimId::in(0), LinExpr(s), LinExpr::constant(s, 8));
    LinExpr a = LinExpr::dim(s, DimId::out(0));
    LinExpr i = LinExpr::dim(s, DimId::in(0));
    i64 scale = rng.range(1, 3);
    i64 off = rng.range(-3, 3);
    bs.addEq(a - i * scale - LinExpr::constant(s, off));
    m.addPart(bs);
    Set r = m.range();

    std::set<i64> truth;
    for (i64 ii = 0; ii < 8; ++ii) truth.insert(ii * scale + off);
    for (i64 v = -10; v < 30; ++v) {
      i64 outs[] = {v};
      bool inRange = r.containsPoint({}, outs);
      if (truth.count(v)) EXPECT_TRUE(inRange) << "scale " << scale;
      else if (r.exact()) EXPECT_FALSE(inRange) << "scale " << scale << " v " << v;
    }
  }
}

}  // namespace
}  // namespace polypart::pset
