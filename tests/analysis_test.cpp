// Tests for the polyhedral access analysis (paper Section 4): model
// extraction on the benchmark kernels, rejection of unsupported kernels,
// serialization, and a trace-based property check that the maps match the
// accesses the interpreter actually performs.

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "analysis/analyze.h"
#include "apps/kernels.h"
#include "ir/builder.h"
#include "ir/interp.h"

namespace polypart::analysis {
namespace {

using ir::ArgValue;
using ir::fconst;
using ir::iconst;
using ir::gt;
using ir::lt;
using ir::Axis;
using ir::ExprPtr;
using ir::KernelBuilder;
using ir::KernelPtr;
using ir::LaunchConfig;
using ir::Type;

/// Builds the model parameter vector for a concrete launch.
std::vector<i64> paramVector(const KernelModel& model, const LaunchConfig& cfg,
                             std::span<const ArgValue> args) {
  std::vector<i64> params = {cfg.block.x, cfg.block.y, cfg.block.z,
                             cfg.grid.x, cfg.grid.y, cfg.grid.z};
  for (std::size_t i = 0; i < model.params.size(); ++i) {
    const ParamInfo& p = model.params[i];
    if (!p.isArray && p.type == Type::I64) params.push_back(args[i].scalar.i);
  }
  return params;
}

i64 evalRow(const pset::LinExpr& row, std::span<const i64> params) {
  i64 acc = row.constantTerm();
  for (std::size_t i = 0; i < params.size(); ++i)
    acc += row[i + 1] * params[i];
  return acc;
}

/// Converts a flat element index to multi-dim subscripts (row-major).
std::vector<i64> unflatten(i64 flat, const std::vector<i64>& dims) {
  std::vector<i64> subs(dims.size());
  for (std::size_t i = dims.size(); i-- > 1;) {
    subs[i] = flat % dims[i];
    flat /= dims[i];
  }
  subs[0] = flat;
  return subs;
}

/// Runs the kernel under the interpreter and checks every observed access is
/// contained in the model's maps; also checks write-map exactness per block.
void checkModelAgainstTrace(const KernelPtr& kernel, const KernelModel& model,
                            const LaunchConfig& cfg, std::span<ArgValue> args) {
  std::vector<i64> params = paramVector(model, cfg, args);

  // Evaluated shapes per array arg.
  std::map<std::size_t, std::vector<i64>> shapes;
  for (const ArrayModel& am : model.arrays) {
    std::vector<i64> dims;
    for (const pset::LinExpr& s : am.shape) dims.push_back(evalRow(s, params));
    if (dims.empty()) dims.push_back(args[am.argIndex].numElements);
    shapes[am.argIndex] = dims;
  }

  // block (boff,bid per axis) -> set of flat writes, per array.
  std::map<std::size_t, std::map<std::array<i64, 6>, std::set<i64>>> writes;

  ir::AccessObserver obs = [&](std::size_t arg, bool isWrite, i64 flat,
                               std::span<const i64, 12> b) {
    const ArrayModel* am = model.arrayFor(arg);
    ASSERT_NE(am, nullptr) << "access to unmodeled array arg " << arg;
    auto bi = [&](ir::Builtin x) { return b[static_cast<std::size_t>(x)]; };
    std::array<i64, 6> ins = {
        bi(ir::Builtin::BlockIdxX) * cfg.block.x,
        bi(ir::Builtin::BlockIdxY) * cfg.block.y,
        bi(ir::Builtin::BlockIdxZ) * cfg.block.z,
        bi(ir::Builtin::BlockIdxX), bi(ir::Builtin::BlockIdxY),
        bi(ir::Builtin::BlockIdxZ)};
    std::vector<i64> outs = unflatten(flat, shapes[arg]);
    const pset::Map& m = isWrite ? am->write : am->read;
    EXPECT_TRUE(m.contains(params, ins, outs))
        << (isWrite ? "write" : "read") << " to '" << am->name << "' at flat "
        << flat << " not in model map " << m.str();
    if (isWrite) writes[arg][ins].insert(flat);
  };

  ir::execute(*kernel, cfg, args, obs);

  // Exactness: for every block, the write map's contents must equal the
  // observed writes (paper Section 4.1: "write maps need to be accurate").
  for (const ArrayModel& am : model.arrays) {
    if (!am.hasWrites()) continue;
    const std::vector<i64>& dims = shapes[am.argIndex];
    i64 total = 1;
    for (i64 d : dims) total *= d;
    for (i64 bz = 0; bz < cfg.grid.z; ++bz)
      for (i64 by = 0; by < cfg.grid.y; ++by)
        for (i64 bx = 0; bx < cfg.grid.x; ++bx) {
          std::array<i64, 6> ins = {bx * cfg.block.x, by * cfg.block.y,
                                    bz * cfg.block.z, bx, by, bz};
          const std::set<i64>& observed = writes[am.argIndex][ins];
          for (i64 flat = 0; flat < total; ++flat) {
            bool inMap = am.write.contains(params, ins, unflatten(flat, dims));
            bool wasWritten = observed.count(flat) > 0;
            EXPECT_EQ(inMap, wasWritten)
                << "write map of '" << am.name << "' inexact at flat " << flat
                << " for block (" << bx << "," << by << "," << bz << ")";
            if (inMap != wasWritten) return;  // avoid error spam
          }
        }
  }
}

TEST(Analysis, SaxpyModel) {
  KernelPtr k = apps::buildSaxpy();
  KernelModel m = analyzeKernel(*k);
  EXPECT_EQ(m.kernel, "saxpy");
  EXPECT_EQ(m.strategy, PartitionStrategy::SplitX);
  EXPECT_FALSE(m.requiresUnitGrid[0]);
  EXPECT_TRUE(m.requiresUnitGrid[1]);
  EXPECT_TRUE(m.requiresUnitGrid[2]);
  ASSERT_EQ(m.arrays.size(), 2u);
  const ArrayModel* x = m.arrayFor(2);
  const ArrayModel* y = m.arrayFor(3);
  ASSERT_NE(x, nullptr);
  ASSERT_NE(y, nullptr);
  EXPECT_TRUE(x->hasReads());
  EXPECT_FALSE(x->hasWrites());
  EXPECT_TRUE(y->hasReads());
  EXPECT_TRUE(y->hasWrites());
  EXPECT_TRUE(y->write.exact());
}

TEST(Analysis, SaxpyTraceContainment) {
  KernelPtr k = apps::buildSaxpy();
  KernelModel m = analyzeKernel(*k);
  const i64 n = 100;
  std::vector<double> x(n, 1.0), y(n, 2.0);
  std::vector<ArgValue> args = {ArgValue::ofInt(n), ArgValue::ofFloat(2.0),
                                ArgValue::ofBuffer(x.data(), n),
                                ArgValue::ofBuffer(y.data(), n)};
  checkModelAgainstTrace(k, m, LaunchConfig{{7, 1, 1}, {16, 1, 1}}, args);
}

TEST(Analysis, HotspotModel) {
  KernelPtr k = apps::buildHotspot();
  KernelModel m = analyzeKernel(*k);
  EXPECT_EQ(m.strategy, PartitionStrategy::SplitY);
  const ArrayModel* tin = m.arrayFor(3);
  const ArrayModel* tout = m.arrayFor(5);
  ASSERT_NE(tin, nullptr);
  ASSERT_NE(tout, nullptr);
  EXPECT_TRUE(tin->hasReads());
  EXPECT_FALSE(tin->hasWrites());
  EXPECT_TRUE(tout->hasWrites());
  EXPECT_TRUE(tout->write.exact());
  EXPECT_EQ(tout->rank(), 2u);

  // Halo: a block covering rows [4, 8) with full x coverage must read row 3.
  // Launch: n = 16, block 4x4, grid 4x4; block (by=1) covers rows 4..7.
  std::vector<i64> params = {4, 4, 1, 4, 4, 1, /*n=*/16};
  // ins: box, boy, boz, bx, by, bz for block (0, 1).
  std::vector<i64> ins = {0, 4, 0, 0, 1, 0};
  EXPECT_TRUE(tin->read.contains(params, ins, std::vector<i64>{3, 2}));
  EXPECT_TRUE(tin->read.contains(params, ins, std::vector<i64>{8, 1}));
  EXPECT_FALSE(tin->read.contains(params, ins, std::vector<i64>{9, 2}));
  EXPECT_FALSE(tin->read.contains(params, ins, std::vector<i64>{2, 2}));
  // Writes stay within the block's own rows.
  EXPECT_TRUE(tout->write.contains(params, ins, std::vector<i64>{4, 0}));
  EXPECT_FALSE(tout->write.contains(params, ins, std::vector<i64>{3, 2}));
  EXPECT_FALSE(tout->write.contains(params, ins, std::vector<i64>{8, 2}));
}

TEST(Analysis, HotspotTraceContainment) {
  KernelPtr k = apps::buildHotspot();
  KernelModel m = analyzeKernel(*k);
  const i64 n = 12;
  std::vector<double> tin(static_cast<std::size_t>(n * n), 1.0);
  std::vector<double> power(static_cast<std::size_t>(n * n), 0.1);
  std::vector<double> tout(static_cast<std::size_t>(n * n), 0.0);
  std::vector<ArgValue> args = {
      ArgValue::ofInt(n), ArgValue::ofFloat(0.2), ArgValue::ofFloat(0.05),
      ArgValue::ofBuffer(tin.data(), n * n), ArgValue::ofBuffer(power.data(), n * n),
      ArgValue::ofBuffer(tout.data(), n * n)};
  // 4x4 blocks, 4x4 grid covers 16 > 12 (grid overhang in both axes).
  checkModelAgainstTrace(k, m, LaunchConfig{{4, 4, 1}, {4, 4, 1}}, args);
}

TEST(Analysis, MatmulModel) {
  KernelPtr k = apps::buildMatmul();
  KernelModel m = analyzeKernel(*k);
  EXPECT_EQ(m.strategy, PartitionStrategy::SplitY);
  const ArrayModel* a = m.arrayFor(1);
  const ArrayModel* b = m.arrayFor(2);
  const ArrayModel* c = m.arrayFor(3);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  ASSERT_NE(c, nullptr);
  // Each block reads whole rows of A and whole columns of B.
  std::vector<i64> params = {2, 2, 1, 2, 2, 1, /*n=*/4};
  std::vector<i64> ins = {0, 2, 0, 0, 1, 0};  // block row 1: rows 2..3
  EXPECT_TRUE(a->read.contains(params, ins, std::vector<i64>{2, 0}));
  EXPECT_TRUE(a->read.contains(params, ins, std::vector<i64>{3, 3}));
  EXPECT_FALSE(a->read.contains(params, ins, std::vector<i64>{0, 0}));
  // B is read column-wise: all rows of columns 0..1 for block x=0.
  EXPECT_TRUE(b->read.contains(params, ins, std::vector<i64>{0, 0}));
  EXPECT_TRUE(b->read.contains(params, ins, std::vector<i64>{3, 1}));
  EXPECT_FALSE(b->read.contains(params, ins, std::vector<i64>{0, 2}));
  EXPECT_TRUE(c->write.exact());
}

TEST(Analysis, MatmulTraceContainment) {
  KernelPtr k = apps::buildMatmul();
  KernelModel m = analyzeKernel(*k);
  const i64 n = 6;
  std::vector<double> a(static_cast<std::size_t>(n * n), 1.0);
  std::vector<double> b(static_cast<std::size_t>(n * n), 2.0);
  std::vector<double> c(static_cast<std::size_t>(n * n), 0.0);
  std::vector<ArgValue> args = {ArgValue::ofInt(n), ArgValue::ofBuffer(a.data(), n * n),
                                ArgValue::ofBuffer(b.data(), n * n),
                                ArgValue::ofBuffer(c.data(), n * n)};
  checkModelAgainstTrace(k, m, LaunchConfig{{2, 2, 1}, {4, 4, 1}}, args);
}

TEST(Analysis, NBodyModel) {
  KernelPtr k = apps::buildNBodyForces();
  KernelModel m = analyzeKernel(*k);
  EXPECT_EQ(m.strategy, PartitionStrategy::SplitX);
  const ArrayModel* px = m.arrayFor(1);
  ASSERT_NE(px, nullptr);
  // Positions are read for every body regardless of the block (broadcast).
  std::vector<i64> params = {4, 1, 1, 4, 1, 1, /*n=*/16};
  std::vector<i64> ins = {8, 0, 0, 2, 0, 0};
  EXPECT_TRUE(px->read.contains(params, ins, std::vector<i64>{0}));
  EXPECT_TRUE(px->read.contains(params, ins, std::vector<i64>{15}));
  const ArrayModel* ax = m.arrayFor(5);
  ASSERT_NE(ax, nullptr);
  EXPECT_TRUE(ax->write.exact());
  // Accelerations are written only for the block's own bodies.
  EXPECT_TRUE(ax->write.contains(params, ins, std::vector<i64>{8}));
  EXPECT_FALSE(ax->write.contains(params, ins, std::vector<i64>{7}));
  EXPECT_FALSE(ax->write.contains(params, ins, std::vector<i64>{12}));
}

TEST(Analysis, NBodyTraceContainment) {
  KernelPtr k = apps::buildNBodyForces();
  KernelModel m = analyzeKernel(*k);
  const i64 n = 10;
  std::vector<double> px(n, 1.0), py(n, 2.0), pz(n, 3.0), mass(n, 1.0);
  std::vector<double> ax(n), ay(n), az(n);
  std::vector<ArgValue> args = {
      ArgValue::ofInt(n),
      ArgValue::ofBuffer(px.data(), n), ArgValue::ofBuffer(py.data(), n),
      ArgValue::ofBuffer(pz.data(), n), ArgValue::ofBuffer(mass.data(), n),
      ArgValue::ofBuffer(ax.data(), n), ArgValue::ofBuffer(ay.data(), n),
      ArgValue::ofBuffer(az.data(), n)};
  checkModelAgainstTrace(k, m, LaunchConfig{{3, 1, 1}, {4, 1, 1}}, args);
}

TEST(Analysis, NBodyUpdateTraceContainment) {
  KernelPtr k = apps::buildNBodyUpdate();
  KernelModel m = analyzeKernel(*k);
  const i64 n = 9;
  std::vector<double> px(n, 1.0), py(n, 1.0), pz(n, 1.0);
  std::vector<double> vx(n, 0.0), vy(n, 0.0), vz(n, 0.0);
  std::vector<double> ax(n, 0.5), ay(n, 0.5), az(n, 0.5);
  std::vector<ArgValue> args = {
      ArgValue::ofInt(n), ArgValue::ofFloat(0.1),
      ArgValue::ofBuffer(px.data(), n), ArgValue::ofBuffer(py.data(), n),
      ArgValue::ofBuffer(pz.data(), n), ArgValue::ofBuffer(vx.data(), n),
      ArgValue::ofBuffer(vy.data(), n), ArgValue::ofBuffer(vz.data(), n),
      ArgValue::ofBuffer(ax.data(), n), ArgValue::ofBuffer(ay.data(), n),
      ArgValue::ofBuffer(az.data(), n)};
  checkModelAgainstTrace(k, m, LaunchConfig{{3, 1, 1}, {4, 1, 1}}, args);
}

TEST(Analysis, RejectsNonInjectiveWrite) {
  // Every thread writes element 0: a write-after-write hazard.
  KernelBuilder b("allwrite");
  auto n = b.scalar("n", Type::I64);
  auto x = b.array("x", Type::F64, {n});
  auto i = b.let("i", b.globalId(Axis::X));
  b.iff(lt(i, n), [&] { b.store(x, iconst(0), fconst(1.0)); });
  KernelPtr k = b.build();
  EXPECT_THROW(analyzeKernel(*k), UnsupportedKernelError);
}

TEST(Analysis, RejectsOverlappingBlockWrites) {
  // Thread i writes i and i+1: adjacent threads collide.
  KernelBuilder b("overlap");
  auto n = b.scalar("n", Type::I64);
  auto x = b.array("x", Type::F64, {n});
  auto i = b.let("i", b.globalId(Axis::X));
  b.iff(lt(i + iconst(1), n), [&] {
    b.store(x, i, fconst(1.0));
    b.store(x, i + iconst(1), fconst(2.0));
  });
  KernelPtr k = b.build();
  EXPECT_THROW(analyzeKernel(*k), UnsupportedKernelError);
}

TEST(Analysis, RejectsStridedWrite) {
  // Thread i writes 2i: injective, but the projected write set {2i} needs a
  // divisibility (existential div) constraint.  isl can represent that; our
  // Fourier-Motzkin library cannot, so the analysis must notice the lost
  // accuracy and reject rather than emit an over-approximate write map
  // (documented limitation; see DESIGN.md).
  KernelBuilder b("strided");
  auto n = b.scalar("n", Type::I64);
  auto x = b.array("x", Type::F64);
  auto i = b.let("i", b.globalId(Axis::X));
  b.iff(lt(i * iconst(2), n), [&] { b.store(x, i * iconst(2), fconst(1.0)); });
  KernelPtr k = b.build();
  EXPECT_THROW(analyzeKernel(*k), UnsupportedKernelError);

  // Strided *reads* are fine: they only over-approximate.
  KernelBuilder b2("strided_read");
  auto n2 = b2.scalar("n", Type::I64);
  auto x2 = b2.array("x", Type::F64, {n2});
  auto y2 = b2.array("y", Type::F64, {n2});
  auto i2 = b2.let("i", b2.globalId(Axis::X));
  b2.iff(lt(i2 * iconst(2), n2),
         [&] { b2.store(y2, i2, b2.load(x2, i2 * iconst(2))); });
  KernelPtr k2 = b2.build();
  KernelModel m2 = analyzeKernel(*k2);
  const ArrayModel* xm = m2.arrayFor(1);
  ASSERT_NE(xm, nullptr);
  EXPECT_TRUE(xm->hasReads());
  EXPECT_FALSE(xm->read.exact());
}

TEST(Analysis, RejectsWriteUnderNonAffineGuard) {
  KernelBuilder b("dataguard");
  auto n = b.scalar("n", Type::I64);
  auto flags = b.array("flags", Type::I64, {n});
  auto x = b.array("x", Type::F64, {n});
  auto i = b.let("i", b.globalId(Axis::X));
  b.iff(lt(i, n), [&] {
    b.iff(gt(b.load(flags, i), iconst(0)), [&] { b.store(x, i, fconst(1.0)); });
  });
  KernelPtr k = b.build();
  // Default: the data-dependent write guard demotes x to the may-access
  // tier (the write set is unknowable statically); strict mode restores
  // the paper's hard reject.
  KernelModel m = analyzeKernel(*k);
  const ArrayModel* xm = m.arrayFor(2);
  ASSERT_NE(xm, nullptr);
  EXPECT_TRUE(xm->writeMayAccess);
  EXPECT_FALSE(xm->hasWrites());
  EXPECT_NE(xm->mayAccessWhy.find("x"), std::string::npos) << xm->mayAccessWhy;
  AnalysisOptions strict;
  strict.allowMayAccess = false;
  EXPECT_THROW(analyzeKernel(*k, strict), UnsupportedKernelError);
}

TEST(Analysis, RejectsNonAffineIndex) {
  KernelBuilder b("quadratic");
  auto n = b.scalar("n", Type::I64);
  auto x = b.array("x", Type::F64);
  auto i = b.let("i", b.globalId(Axis::X));
  b.iff(lt(i * i, n), [&] { b.store(x, i * i, fconst(1.0)); });
  KernelPtr k = b.build();
  // Default: the quadratic subscript demotes to may-access; strict mode
  // restores the reject.
  KernelModel m = analyzeKernel(*k);
  ASSERT_NE(m.arrayFor(1), nullptr);
  EXPECT_TRUE(m.arrayFor(1)->writeMayAccess);
  AnalysisOptions strict;
  strict.allowMayAccess = false;
  EXPECT_THROW(analyzeKernel(*k, strict), UnsupportedKernelError);
}

TEST(Analysis, ModelSerializationRoundTrip) {
  ir::Module mod = apps::buildBenchmarkModule();
  ApplicationModel app = analyzeModule(mod);
  std::string dumped = app.toJson().dump(2);
  ApplicationModel reloaded = ApplicationModel::fromJson(json::Value::parse(dumped));
  ASSERT_EQ(reloaded.kernels.size(), app.kernels.size());
  EXPECT_EQ(reloaded.toJson().dump(2), dumped);
  // Behavioural equality of a reloaded map.
  const KernelModel* hs = reloaded.find("hotspot");
  ASSERT_NE(hs, nullptr);
  EXPECT_EQ(hs->strategy, PartitionStrategy::SplitY);
  std::vector<i64> params = {4, 4, 1, 4, 4, 1, 16};
  std::vector<i64> ins = {0, 4, 0, 0, 1, 0};
  EXPECT_TRUE(hs->arrayFor(3)->read.contains(params, ins, std::vector<i64>{3, 2}));
}

TEST(Analysis, ModuleAnalysisCoversAllKernels) {
  ir::Module mod = apps::buildBenchmarkModule();
  ApplicationModel app = analyzeModule(mod);
  EXPECT_EQ(app.kernels.size(), 5u);
  for (const char* name : {"saxpy", "hotspot", "nbody_forces", "nbody_update", "matmul"})
    EXPECT_NE(app.find(name), nullptr) << name;
}

}  // namespace
}  // namespace polypart::analysis
