// The cache-telemetry meta-counters (RuntimeStats::fmMemo* and
// specProgram*): observational samples of the process-wide Fourier-Motzkin
// memo table and the specialized-program caches, excluded from the
// determinism guarantee but pinned here to be monotone non-decreasing and
// internally consistent across a repeated-launch run.

#include <gtest/gtest.h>

#include <vector>

#include "analysis/analyze.h"
#include "apps/drivers.h"
#include "apps/kernels.h"
#include "rt/runtime.h"
#include "support/rng.h"

namespace polypart::rt {
namespace {

const ir::Module& benchModule() {
  static ir::Module mod = apps::buildBenchmarkModule();
  return mod;
}

const analysis::ApplicationModel& benchModel() {
  static analysis::ApplicationModel model = analysis::analyzeModule(benchModule());
  return model;
}

void expectMonotone(const RuntimeStats& prev, const RuntimeStats& cur,
                    int step) {
  EXPECT_GE(cur.fmMemoHits, prev.fmMemoHits) << step;
  EXPECT_GE(cur.fmMemoMisses, prev.fmMemoMisses) << step;
  EXPECT_GE(cur.fmMemoEvictions, prev.fmMemoEvictions) << step;
  EXPECT_GE(cur.specProgramHits, prev.specProgramHits) << step;
  EXPECT_GE(cur.specProgramMisses, prev.specProgramMisses) << step;
  EXPECT_GE(cur.specProgramEvictions, prev.specProgramEvictions) << step;
}

TEST(CacheCounters, MonotoneAndConsistentAcrossRepeatedLaunches) {
  const i64 n = 64;
  const i64 cells = n * n;
  Rng rng(33);
  std::vector<double> temp(static_cast<std::size_t>(cells));
  std::vector<double> power(static_cast<std::size_t>(cells));
  for (auto& v : temp) v = rng.uniform() * 60.0;
  for (auto& v : power) v = rng.uniform();

  RuntimeConfig cfg;
  cfg.numGpus = 4;
  cfg.mode = sim::ExecutionMode::Functional;
  cfg.enumeratorTier = codegen::EnumTier::Specialized;
  // Cache off: every launch re-enumerates, so the specialized-program cache
  // sees the repeat traffic directly (with the plan cache on, replayed
  // launches would bypass enumeration entirely).
  cfg.enableEnumerationCache = false;
  Runtime rt(cfg, benchModel(), benchModule());

  VirtualBuffer* t0 = rt.malloc(cells * 8);
  VirtualBuffer* t1 = rt.malloc(cells * 8);
  VirtualBuffer* pw = rt.malloc(cells * 8);
  rt.memcpy(t0, temp.data(), cells * 8, MemcpyKind::HostToDevice);
  rt.memcpy(pw, power.data(), cells * 8, MemcpyKind::HostToDevice);

  const i64 blocks = (n + apps::kBlock2D - 1) / apps::kBlock2D;
  VirtualBuffer* src = t0;
  VirtualBuffer* dst = t1;
  RuntimeStats prev = rt.stats();
  // A fresh runtime starts its FM baseline at construction: samples are
  // deltas, never negative.
  EXPECT_GE(prev.fmMemoHits, 0);
  EXPECT_GE(prev.fmMemoMisses, 0);
  for (int it = 0; it < 6; ++it) {
    LaunchArg args[] = {LaunchArg::ofInt(n),      LaunchArg::ofFloat(0.4),
                        LaunchArg::ofFloat(0.05), LaunchArg::ofBuffer(src),
                        LaunchArg::ofBuffer(pw),  LaunchArg::ofBuffer(dst)};
    rt.launch("hotspot", {blocks, blocks, 1},
              {apps::kBlock2D, apps::kBlock2D, 1}, args);
    std::swap(src, dst);
    RuntimeStats cur = rt.stats();
    expectMonotone(prev, cur, it);
    prev = cur;
  }

  // Consistency: the first launch compiled specialized programs (misses);
  // the repeats with identical geometry replayed them (hits); nothing can
  // be evicted that was never inserted.
  EXPECT_GT(prev.specProgramMisses, 0);
  EXPECT_GT(prev.specProgramHits, 0);
  EXPECT_LE(prev.specProgramEvictions, prev.specProgramMisses);
  // The FM memo saw traffic from enumeration-time projections.
  EXPECT_GT(prev.fmMemoHits + prev.fmMemoMisses, 0);
  EXPECT_LE(prev.fmMemoEvictions, prev.fmMemoMisses);
}

TEST(CacheCounters, InterpreterTierLeavesSpecCountersFlat) {
  // The interpreter tier never touches the specialized-program cache: its
  // counters must not move between launches of an interpreting runtime.
  const i64 n = 48;
  const i64 cells = n * n;
  std::vector<double> temp(static_cast<std::size_t>(cells), 1.0);
  std::vector<double> power(static_cast<std::size_t>(cells), 0.5);

  RuntimeConfig cfg;
  cfg.numGpus = 3;
  cfg.mode = sim::ExecutionMode::Functional;
  cfg.enumeratorTier = codegen::EnumTier::Interpret;
  cfg.enableEnumerationCache = false;
  Runtime rt(cfg, benchModel(), benchModule());
  VirtualBuffer* t0 = rt.malloc(cells * 8);
  VirtualBuffer* t1 = rt.malloc(cells * 8);
  VirtualBuffer* pw = rt.malloc(cells * 8);
  rt.memcpy(t0, temp.data(), cells * 8, MemcpyKind::HostToDevice);
  rt.memcpy(pw, power.data(), cells * 8, MemcpyKind::HostToDevice);
  const i64 blocks = (n + apps::kBlock2D - 1) / apps::kBlock2D;
  RuntimeStats before = rt.stats();
  VirtualBuffer* src = t0;
  VirtualBuffer* dst = t1;
  for (int it = 0; it < 3; ++it) {
    LaunchArg args[] = {LaunchArg::ofInt(n),      LaunchArg::ofFloat(0.4),
                        LaunchArg::ofFloat(0.05), LaunchArg::ofBuffer(src),
                        LaunchArg::ofBuffer(pw),  LaunchArg::ofBuffer(dst)};
    rt.launch("hotspot", {blocks, blocks, 1},
              {apps::kBlock2D, apps::kBlock2D, 1}, args);
    std::swap(src, dst);
  }
  RuntimeStats after = rt.stats();
  EXPECT_EQ(after.specProgramHits, before.specProgramHits);
  EXPECT_EQ(after.specProgramMisses, before.specProgramMisses);
  EXPECT_EQ(after.specProgramEvictions, before.specProgramEvictions);
}

}  // namespace
}  // namespace polypart::rt
