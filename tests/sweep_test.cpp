// Parameterized end-to-end sweeps (TEST_P): for every (benchmark, GPU count)
// combination, partitioned multi-GPU execution must be bit-identical to the
// CPU reference, and the runtime statistics must be internally consistent.

#include <gtest/gtest.h>

#include <vector>

#include "analysis/analyze.h"
#include "apps/drivers.h"
#include "apps/workloads.h"
#include "apps/kernels.h"
#include "apps/reference.h"
#include "rt/runtime.h"
#include "support/rng.h"

namespace polypart::rt {
namespace {

const ir::Module& sharedModule() {
  static ir::Module m = apps::buildBenchmarkModule();
  return m;
}

const analysis::ApplicationModel& sharedModel() {
  static analysis::ApplicationModel m = analysis::analyzeModule(sharedModule());
  return m;
}

std::unique_ptr<Runtime> makeRuntime(int gpus) {
  RuntimeConfig cfg;
  cfg.numGpus = gpus;
  cfg.mode = sim::ExecutionMode::Functional;
  return std::make_unique<Runtime>(cfg, sharedModel(), sharedModule());
}

struct SweepParam {
  apps::Benchmark bench;
  int gpus;

  friend std::ostream& operator<<(std::ostream& os, const SweepParam& p) {
    return os << apps::benchmarkName(p.bench) << "_" << p.gpus << "gpus";
  }
};

class EndToEndSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(EndToEndSweep, MatchesCpuReferenceBitForBit) {
  const SweepParam p = GetParam();
  auto rt = makeRuntime(p.gpus);
  Rng rng(static_cast<unsigned>(1000 + p.gpus));

  switch (p.bench) {
    case apps::Benchmark::Hotspot: {
      const i64 n = 48;
      const int iters = 5;
      std::vector<double> init(static_cast<std::size_t>(n * n));
      std::vector<double> power(static_cast<std::size_t>(n * n));
      for (auto& v : init) v = rng.uniform() * 50;
      for (auto& v : power) v = rng.uniform();
      std::vector<double> expect = init, scratch(init.size());
      for (int it = 0; it < iters; ++it) {
        apps::refHotspotStep(n, 0.175, 0.05, expect, power, scratch);
        std::swap(expect, scratch);
      }
      std::vector<double> got = init;
      apps::runHotspot(*rt, n, iters, got.data(), power.data());
      ASSERT_EQ(got, expect);
      break;
    }
    case apps::Benchmark::NBody: {
      const i64 n = 48;
      const int iters = 3;
      std::vector<double> px(n), py(n), pz(n), vx(n), vy(n), vz(n), mass(n);
      for (auto* v : {&px, &py, &pz, &vx, &vy, &vz})
        for (auto& x : *v) x = rng.uniform() - 0.5;
      for (auto& m : mass) m = 0.2 + rng.uniform();
      std::vector<double> rpx = px, rpy = py, rpz = pz, rvx = vx, rvy = vy, rvz = vz;
      std::vector<double> ax(static_cast<std::size_t>(n)), ay(ax), az(ax);
      for (int it = 0; it < iters; ++it) {
        apps::refNBodyForces(n, rpx, rpy, rpz, mass, ax, ay, az);
        apps::refNBodyUpdate(n, 0.01, rpx, rpy, rpz, rvx, rvy, rvz, ax, ay, az);
      }
      apps::NBodyState st{px.data(), py.data(), pz.data(),
                          vx.data(), vy.data(), vz.data(), mass.data()};
      apps::runNBody(*rt, n, iters, st);
      ASSERT_EQ(px, rpx);
      ASSERT_EQ(py, rpy);
      ASSERT_EQ(vz, rvz);
      break;
    }
    case apps::Benchmark::Matmul: {
      const i64 n = 24;
      std::vector<double> a(static_cast<std::size_t>(n * n));
      std::vector<double> b(static_cast<std::size_t>(n * n));
      for (auto& v : a) v = rng.uniform();
      for (auto& v : b) v = rng.uniform();
      std::vector<double> expect(static_cast<std::size_t>(n * n));
      apps::refMatmul(n, a, b, expect);
      std::vector<double> got(static_cast<std::size_t>(n * n), -7.0);
      apps::runMatmul(*rt, n, a.data(), b.data(), got.data());
      ASSERT_EQ(got, expect);
      break;
    }
  }

  // Statistics sanity: launches happened; resolution ran; simulated time is
  // positive and finite.
  EXPECT_GT(rt->stats().launches, 0);
  EXPECT_GT(rt->stats().rangesResolved, 0);
  EXPECT_GT(rt->elapsedSeconds(), 0.0);
  if (p.gpus == 1) EXPECT_EQ(rt->stats().peerCopies, 0);
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarksAllGpuCounts, EndToEndSweep,
    ::testing::Values(
        SweepParam{apps::Benchmark::Hotspot, 1}, SweepParam{apps::Benchmark::Hotspot, 2},
        SweepParam{apps::Benchmark::Hotspot, 3}, SweepParam{apps::Benchmark::Hotspot, 4},
        SweepParam{apps::Benchmark::Hotspot, 5}, SweepParam{apps::Benchmark::Hotspot, 6},
        SweepParam{apps::Benchmark::Hotspot, 8}, SweepParam{apps::Benchmark::Hotspot, 12},
        SweepParam{apps::Benchmark::Hotspot, 16},
        SweepParam{apps::Benchmark::NBody, 1}, SweepParam{apps::Benchmark::NBody, 2},
        SweepParam{apps::Benchmark::NBody, 3}, SweepParam{apps::Benchmark::NBody, 4},
        SweepParam{apps::Benchmark::NBody, 6}, SweepParam{apps::Benchmark::NBody, 8},
        SweepParam{apps::Benchmark::NBody, 12}, SweepParam{apps::Benchmark::NBody, 16},
        SweepParam{apps::Benchmark::Matmul, 1}, SweepParam{apps::Benchmark::Matmul, 2},
        SweepParam{apps::Benchmark::Matmul, 3}, SweepParam{apps::Benchmark::Matmul, 4},
        SweepParam{apps::Benchmark::Matmul, 6}, SweepParam{apps::Benchmark::Matmul, 8},
        SweepParam{apps::Benchmark::Matmul, 12}, SweepParam{apps::Benchmark::Matmul, 16}),
    [](const ::testing::TestParamInfo<SweepParam>& info) {
      return std::string(apps::benchmarkName(info.param.bench) ==
                                 std::string("N-Body")
                             ? "NBody"
                             : apps::benchmarkName(info.param.bench)) +
             "_" + std::to_string(info.param.gpus) + "gpus";
    });

/// Execution-tier sweep (see DESIGN.md "Execution tiers"): functional
/// results must be byte-identical and the deterministic RuntimeStats fields
/// tier-invariant across enumeratorTier x enableEnumerationCache x
/// resolutionThreads x pipelineDepth.  Hotspot with an odd n guarantees
/// grid overhang, so the guard expressions the tiers evaluate are
/// non-trivial.
TEST(EnumeratorTierSweep, ByteIdenticalAcrossTierCacheThreadsDepth) {
  const i64 n = 37;
  const int iters = 4;
  Rng rng(91);
  std::vector<double> init(static_cast<std::size_t>(n * n));
  std::vector<double> power(static_cast<std::size_t>(n * n));
  for (auto& v : init) v = rng.uniform() * 40;
  for (auto& v : power) v = rng.uniform();
  std::vector<double> expect = init, scratch(init.size());
  for (int it = 0; it < iters; ++it) {
    apps::refHotspotStep(n, 0.175, 0.05, expect, power, scratch);
    std::swap(expect, scratch);
  }

  auto run = [&](codegen::EnumTier tier, bool cache, int threads, int depth,
                 RuntimeStats* statsOut) {
    RuntimeConfig cfg;
    cfg.numGpus = 3;
    cfg.mode = sim::ExecutionMode::Functional;
    cfg.enumeratorTier = tier;
    cfg.enableEnumerationCache = cache;
    cfg.resolutionThreads = threads;
    cfg.pipelineDepth = depth;
    Runtime rt(cfg, sharedModel(), sharedModule());
    VirtualBuffer* t0 = rt.malloc(n * n * 8);
    VirtualBuffer* t1 = rt.malloc(n * n * 8);
    VirtualBuffer* pw = rt.malloc(n * n * 8);
    rt.memcpy(t0, init.data(), n * n * 8, MemcpyKind::HostToDevice);
    rt.memcpy(pw, power.data(), n * n * 8, MemcpyKind::HostToDevice);
    VirtualBuffer* src = t0;
    VirtualBuffer* dst = t1;
    for (int it = 0; it < iters; ++it) {
      LaunchArg args[] = {LaunchArg::ofInt(n), LaunchArg::ofFloat(0.175),
                          LaunchArg::ofFloat(0.05), LaunchArg::ofBuffer(src),
                          LaunchArg::ofBuffer(pw), LaunchArg::ofBuffer(dst)};
      rt.launch("hotspot", {(n + 7) / 8, (n + 7) / 8, 1}, {8, 8, 1}, args);
      std::swap(src, dst);
    }
    std::vector<double> got(static_cast<std::size_t>(n * n));
    rt.memcpy(got.data(), src, n * n * 8, MemcpyKind::DeviceToHost);
    // The wall-clock/task meta-counters are nondeterministic by design;
    // everything else must be tier-invariant.
    RuntimeStats s = rt.stats();
    s.resolutionTasks = 0;
    s.resolutionWallSeconds = 0;
    s.parallelWallSeconds = 0;
    s.fmMemoHits = s.fmMemoMisses = s.fmMemoEvictions = 0;
    s.specProgramHits = s.specProgramMisses = s.specProgramEvictions = 0;
    *statsOut = s;
    return got;
  };

  for (bool cache : {false, true}) {
    for (int threads : {0, 3}) {
      for (int depth : {0, 2}) {
        SCOPED_TRACE("cache=" + std::to_string(cache) + " threads=" +
                     std::to_string(threads) + " depth=" +
                     std::to_string(depth));
        RuntimeStats refStats;
        std::vector<double> ref =
            run(codegen::EnumTier::Interpret, cache, threads, depth, &refStats);
        ASSERT_EQ(ref, expect) << "interpreter tier diverges from reference";
        for (codegen::EnumTier tier :
             {codegen::EnumTier::Bytecode, codegen::EnumTier::Specialized}) {
          RuntimeStats s;
          std::vector<double> got = run(tier, cache, threads, depth, &s);
          EXPECT_EQ(got, ref)
              << "tier " << codegen::enumTierName(tier) << " diverges";
          EXPECT_EQ(s, refStats)
              << "tier " << codegen::enumTierName(tier)
              << " perturbs deterministic runtime statistics";
        }
      }
    }
  }
}

/// Dataflow-planning axis (see DESIGN.md "Cross-launch dataflow planning"):
/// the hotspot ping-pong is a period-2 launch cycle, so with enough
/// iterations the planner activates and runs planned launches.  Functional
/// results must match the reactive reference bit-for-bit for every
/// combination of planning x tier x cache x threads x depth, and the
/// deterministic stats must be engine-invariant within each planning value
/// (planner counters legitimately differ between planning on and off, like
/// transferScheduling's).
TEST(DataflowPlanningSweep, ByteIdenticalAcrossPlanningTierCacheThreadsDepth) {
  const i64 n = 37;
  const int iters = 8;
  Rng rng(93);
  std::vector<double> init(static_cast<std::size_t>(n * n));
  std::vector<double> power(static_cast<std::size_t>(n * n));
  for (auto& v : init) v = rng.uniform() * 40;
  for (auto& v : power) v = rng.uniform();
  std::vector<double> expect = init, scratch(init.size());
  for (int it = 0; it < iters; ++it) {
    apps::refHotspotStep(n, 0.175, 0.05, expect, power, scratch);
    std::swap(expect, scratch);
  }

  auto run = [&](bool planning, codegen::EnumTier tier, bool cache,
                 int threads, int depth, RuntimeStats* statsOut) {
    RuntimeConfig cfg;
    cfg.numGpus = 4;
    cfg.mode = sim::ExecutionMode::Functional;
    cfg.dataflowPlanning = planning;
    cfg.enumeratorTier = tier;
    cfg.enableEnumerationCache = cache;
    cfg.resolutionThreads = threads;
    cfg.pipelineDepth = depth;
    Runtime rt(cfg, sharedModel(), sharedModule());
    VirtualBuffer* t0 = rt.malloc(n * n * 8);
    VirtualBuffer* t1 = rt.malloc(n * n * 8);
    VirtualBuffer* pw = rt.malloc(n * n * 8);
    rt.memcpy(t0, init.data(), n * n * 8, MemcpyKind::HostToDevice);
    rt.memcpy(pw, power.data(), n * n * 8, MemcpyKind::HostToDevice);
    VirtualBuffer* src = t0;
    VirtualBuffer* dst = t1;
    for (int it = 0; it < iters; ++it) {
      LaunchArg args[] = {LaunchArg::ofInt(n), LaunchArg::ofFloat(0.175),
                          LaunchArg::ofFloat(0.05), LaunchArg::ofBuffer(src),
                          LaunchArg::ofBuffer(pw), LaunchArg::ofBuffer(dst)};
      rt.launch("hotspot", {(n + 7) / 8, (n + 7) / 8, 1}, {8, 8, 1}, args);
      std::swap(src, dst);
    }
    std::vector<double> got(static_cast<std::size_t>(n * n));
    rt.memcpy(got.data(), src, n * n * 8, MemcpyKind::DeviceToHost);
    RuntimeStats s = rt.stats();
    s.resolutionTasks = 0;
    s.resolutionWallSeconds = 0;
    s.parallelWallSeconds = 0;
    s.fmMemoHits = s.fmMemoMisses = s.fmMemoEvictions = 0;
    s.specProgramHits = s.specProgramMisses = s.specProgramEvictions = 0;
    *statsOut = s;
    return got;
  };

  // Stats are compared within fixed (planning, cache): the plan-cache
  // counters differ by design between cache on and off, just as the planner
  // counters differ between planning on and off.  Bytes are compared against
  // the one CPU reference everywhere.
  for (bool planning : {false, true}) {
    for (bool cache : {false, true}) {
      RuntimeStats refStats;
      std::vector<double> ref = run(planning, codegen::EnumTier::Interpret,
                                    cache, /*threads=*/0, /*depth=*/0,
                                    &refStats);
      ASSERT_EQ(ref, expect) << "planning=" << planning << " cache=" << cache
                             << " diverges from the CPU reference";
      if (planning) {
        EXPECT_GE(refStats.planActivations, 1);
        EXPECT_GT(refStats.plannedLaunches, 0);
      } else {
        EXPECT_EQ(refStats.planActivations, 0);
        EXPECT_EQ(refStats.plannedLaunches, 0);
      }
      for (codegen::EnumTier tier :
           {codegen::EnumTier::Interpret, codegen::EnumTier::Bytecode,
            codegen::EnumTier::Specialized}) {
        for (int threads : {0, 3}) {
          for (int depth : {0, 2}) {
            SCOPED_TRACE("planning=" + std::to_string(planning) + " tier=" +
                         codegen::enumTierName(tier) + " cache=" +
                         std::to_string(cache) + " threads=" +
                         std::to_string(threads) + " depth=" +
                         std::to_string(depth));
            RuntimeStats s;
            std::vector<double> got = run(planning, tier, cache, threads,
                                          depth, &s);
            EXPECT_EQ(got, ref);
            EXPECT_EQ(s, refStats);
          }
        }
      }
    }
  }
}

/// Parameterized block-shape sweep: hotspot with non-square and non-dividing
/// block shapes must still be exact (grid overhang both axes).
class BlockShapeSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(BlockShapeSweep, HotspotExactUnderOddGeometry) {
  auto [bx, by] = GetParam();
  const i64 n = 37;  // prime-ish: guarantees overhang
  const int iters = 3;
  Rng rng(77);
  std::vector<double> init(static_cast<std::size_t>(n * n));
  std::vector<double> power(static_cast<std::size_t>(n * n));
  for (auto& v : init) v = rng.uniform() * 10;
  for (auto& v : power) v = rng.uniform();
  std::vector<double> expect = init, scratch(init.size());
  for (int it = 0; it < iters; ++it) {
    apps::refHotspotStep(n, 0.175, 0.05, expect, power, scratch);
    std::swap(expect, scratch);
  }

  auto rt = makeRuntime(3);
  VirtualBuffer* t0 = rt->malloc(n * n * 8);
  VirtualBuffer* t1 = rt->malloc(n * n * 8);
  VirtualBuffer* pw = rt->malloc(n * n * 8);
  rt->memcpy(t0, init.data(), n * n * 8, MemcpyKind::HostToDevice);
  rt->memcpy(pw, power.data(), n * n * 8, MemcpyKind::HostToDevice);
  ir::Dim3 grid{(n + bx - 1) / bx, (n + by - 1) / by, 1};
  ir::Dim3 block{bx, by, 1};
  VirtualBuffer* src = t0;
  VirtualBuffer* dst = t1;
  for (int it = 0; it < iters; ++it) {
    LaunchArg args[] = {LaunchArg::ofInt(n), LaunchArg::ofFloat(0.175),
                        LaunchArg::ofFloat(0.05), LaunchArg::ofBuffer(src),
                        LaunchArg::ofBuffer(pw), LaunchArg::ofBuffer(dst)};
    rt->launch("hotspot", grid, block, args);
    std::swap(src, dst);
  }
  std::vector<double> got(static_cast<std::size_t>(n * n));
  rt->memcpy(got.data(), src, n * n * 8, MemcpyKind::DeviceToHost);
  EXPECT_EQ(got, expect) << "block " << bx << "x" << by;
}

INSTANTIATE_TEST_SUITE_P(OddBlockShapes, BlockShapeSweep,
                         ::testing::Values(std::tuple<int, int>{8, 8},
                                           std::tuple<int, int>{16, 4},
                                           std::tuple<int, int>{4, 16},
                                           std::tuple<int, int>{5, 7},
                                           std::tuple<int, int>{1, 32},
                                           std::tuple<int, int>{32, 1},
                                           std::tuple<int, int>{3, 3}));

}  // namespace
}  // namespace polypart::rt
