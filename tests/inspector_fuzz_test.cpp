// Differential fuzzing of the inspector–executor against randomized
// indirection structures (duplicate indices, empty rows, out-of-order
// columns, degenerate frontiers).
//
// The coverage contract under test: the inspection walk's per-device
// footprints must cover every access the partitioned interpreter performs.
// A missed element would leave that gather source stale on the executing
// device, so running each case under BOTH fallback modes and comparing
// against the CPU reference detects any coverage hole byte-for-byte.  On
// top of the differential check, the walk's access count is pinned against
// the analytically known gather count of each workload.
//
// Seeds follow tests/fuzz_util.h; a failing case replays alone via
// POLYPART_FUZZ_SEED.

#include <gtest/gtest.h>

#include <vector>

#include "analysis/analyze.h"
#include "apps/drivers.h"
#include "apps/kernels.h"
#include "apps/reference.h"
#include "fuzz_util.h"
#include "rt/runtime.h"

namespace polypart::rt {
namespace {

const ir::Module& fuzzModule() {
  static ir::Module m = apps::buildIrregularModule();
  return m;
}

const analysis::ApplicationModel& fuzzModel() {
  static analysis::ApplicationModel m = analysis::analyzeModule(fuzzModule());
  return m;
}

struct RandomCsr {
  i64 n = 0;
  std::vector<i64> rowPtr;
  std::vector<i64> colIdx;
  std::vector<double> vals;
  i64 nnz() const { return static_cast<i64>(colIdx.size()); }
};

/// Adversarial CSR: a random share of rows are empty, the rest draw a random
/// number of columns uniformly (duplicates and arbitrary order included —
/// nothing sorts or dedups them).
RandomCsr makeRandomCsr(fuzz::SeededRng& rng, i64 n) {
  RandomCsr a;
  a.n = n;
  a.rowPtr.push_back(0);
  for (i64 r = 0; r < n; ++r) {
    if (rng.range(0, 3) != 0) {  // ~25% empty rows
      const i64 deg = rng.range(1, 9);
      for (i64 d = 0; d < deg; ++d) {
        a.colIdx.push_back(rng.range(0, n - 1));
        a.vals.push_back(rng.uniform() - 0.5);
      }
    }
    a.rowPtr.push_back(a.nnz());
  }
  return a;
}

TEST(InspectorFuzz, SpmvFootprintsCoverEveryGatherSource) {
  const int cases = fuzz::caseCount(25);
  for (int c = 0; c < cases; ++c) {
    fuzz::SeededRng rng(fuzz::seedFor(31, c));
    const i64 n = rng.range(17, 200);
    RandomCsr a = makeRandomCsr(rng, n);
    if (a.nnz() == 0) continue;
    std::vector<double> x(static_cast<std::size_t>(n));
    for (auto& v : x) v = rng.uniform() * 4 - 2;
    std::vector<double> expect(static_cast<std::size_t>(n));
    apps::refSpmv(a.rowPtr, a.colIdx, a.vals, x, expect);
    const apps::CsrMatrix view{n, n, a.nnz(), a.rowPtr.data(), a.colIdx.data(),
                               a.vals.data()};

    const int gpus = static_cast<int>(rng.range(2, 8));
    for (bool inspector : {false, true}) {
      RuntimeConfig cfg;
      cfg.numGpus = gpus;
      cfg.mode = sim::ExecutionMode::Functional;
      cfg.inspectorExecutor = inspector;
      Runtime rt(cfg, fuzzModel(), fuzzModule());
      std::vector<double> got(static_cast<std::size_t>(n), -3.0);
      apps::runSpmv(rt, view, x.data(), got.data());
      ASSERT_EQ(got, expect)
          << rng.replay() << ", " << gpus << " GPUs, inspector=" << inspector;
      if (inspector) {
        ASSERT_EQ(rt.stats().inspectorRuns, 1) << rng.replay();
        // Independent oracle: x is gathered once per stored nonzero.
        ASSERT_EQ(rt.stats().inspectedElements, a.nnz()) << rng.replay();
      }
    }
  }
}

TEST(InspectorFuzz, BfsFrontiersWithDuplicatesAndEmptyRows) {
  const int cases = fuzz::caseCount(25);
  for (int c = 0; c < cases; ++c) {
    fuzz::SeededRng rng(fuzz::seedFor(32, c));
    const i64 n = rng.range(9, 150);
    RandomCsr g = makeRandomCsr(rng, n);
    // Frontier of random nodes: duplicates are likely, order is arbitrary,
    // and an empty frontier is a legal degenerate case.
    const i64 nfront = rng.range(1, n);
    std::vector<i64> front(static_cast<std::size_t>(nfront));
    for (auto& u : front) u = rng.range(0, n - 1);
    std::vector<double> expect(static_cast<std::size_t>(n), 0.0);
    apps::refBfsPush(g.rowPtr, g.colIdx, front, expect);

    const int gpus = static_cast<int>(rng.range(2, 8));
    for (bool inspector : {false, true}) {
      RuntimeConfig cfg;
      cfg.numGpus = gpus;
      cfg.mode = sim::ExecutionMode::Functional;
      cfg.inspectorExecutor = inspector;
      Runtime rt(cfg, fuzzModel(), fuzzModule());
      std::vector<double> got(static_cast<std::size_t>(n), 0.0);
      apps::runBfsPush(rt, n, g.nnz(), g.rowPtr.data(), g.colIdx.data(),
                       nfront, front.data(), got.data());
      ASSERT_EQ(got, expect)
          << rng.replay() << ", " << gpus << " GPUs, inspector=" << inspector;
      if (inspector)
        ASSERT_EQ(rt.stats().inspectedElements, 2 * nfront) << rng.replay();
    }
  }
}

TEST(InspectorFuzz, HistogramCollisionsAcrossPartitions) {
  const int cases = fuzz::caseCount(20);
  for (int c = 0; c < cases; ++c) {
    fuzz::SeededRng rng(fuzz::seedFor(33, c));
    const i64 nkeys = rng.range(5, 400);
    // Few bins relative to keys: heavy cross-partition collisions, the
    // worst case for the serialized read-modify-write gather path.
    const i64 nbins = rng.range(1, 16);
    std::vector<i64> keys(static_cast<std::size_t>(nkeys));
    for (auto& k : keys) k = rng.range(0, nbins - 1);
    std::vector<double> expect(static_cast<std::size_t>(nbins), 0.0);
    apps::refHistogram(keys, expect);

    const int gpus = static_cast<int>(rng.range(2, 8));
    for (bool inspector : {false, true}) {
      RuntimeConfig cfg;
      cfg.numGpus = gpus;
      cfg.mode = sim::ExecutionMode::Functional;
      cfg.inspectorExecutor = inspector;
      Runtime rt(cfg, fuzzModel(), fuzzModule());
      std::vector<double> got(static_cast<std::size_t>(nbins), 0.0);
      apps::runHistogram(rt, nkeys, nbins, keys.data(), got.data());
      ASSERT_EQ(got, expect)
          << rng.replay() << ", " << gpus << " GPUs, inspector=" << inspector;
    }
  }
}

}  // namespace
}  // namespace polypart::rt
