// Tests for the multi-GPU simulator: timing semantics (engine overlap,
// synchronization), functional data movement, and kernel cost modeling.

#include <gtest/gtest.h>

#include <vector>

#include "apps/kernels.h"
#include "sim/machine.h"

namespace polypart::sim {
namespace {

MachineSpec flatSpec(int gpus) {
  MachineSpec s = MachineSpec::k80Node(gpus);
  // Round numbers so expected times are easy to state.
  s.device.flops = 1e12;
  s.device.memBandwidth = 1e11;
  s.device.launchLatency = 0;
  s.hostLink = {1e9, 0};
  s.peerLink = {1e9, 0};
  s.host.apiOverhead = 0;
  s.bytesPerElement = 8;  // storage width == modeled width in these tests
  s.fabricBandwidth = 1e18;  // effectively unlimited unless a test sets it
  return s;
}

TEST(Sim, AllocFreeAndStorage) {
  Machine m(flatSpec(2), ExecutionMode::Functional);
  DevBuffer a = m.alloc(0, 1024);
  DevBuffer b = m.alloc(1, 2048);
  EXPECT_EQ(m.bufferBytes(a), 1024);
  EXPECT_EQ(m.bufferBytes(b), 2048);
  EXPECT_NE(m.bufferData(a), nullptr);
  m.free(a);
  DevBuffer c = m.alloc(0, 64);  // slot reuse
  EXPECT_EQ(c.id, a.id);
}

TEST(Sim, FunctionalCopiesMoveBytes) {
  Machine m(flatSpec(2), ExecutionMode::Functional);
  DevBuffer a = m.alloc(0, 80);
  DevBuffer b = m.alloc(1, 80);
  std::vector<double> host(10);
  for (int i = 0; i < 10; ++i) host[static_cast<std::size_t>(i)] = i * 1.5;
  m.copyHostToDevice(a, 0, host.data(), 80);
  m.copyPeer(b, 0, a, 0, 80);
  std::vector<double> back(10, -1);
  m.copyDeviceToHost(back.data(), b, 0, 80);
  EXPECT_EQ(back, host);
}

TEST(Sim, TransferTiming) {
  Machine m(flatSpec(2), ExecutionMode::TimingOnly);
  DevBuffer a = m.alloc(0, 1'000'000);
  // 1 MB at 1 GB/s = 1 ms.
  m.copyHostToDevice(a, 0, nullptr, 1'000'000);
  m.synchronizeAll();
  EXPECT_NEAR(m.now(), 1e-3, 1e-9);
}

TEST(Sim, ParallelCopiesToDistinctDevicesOverlap) {
  Machine m(flatSpec(4), ExecutionMode::TimingOnly);
  for (int d = 0; d < 4; ++d) {
    DevBuffer b = m.alloc(d, 1'000'000);
    m.copyHostToDevice(b, 0, nullptr, 1'000'000);
  }
  m.synchronizeAll();
  // Four 1 ms copies to four devices run concurrently.
  EXPECT_NEAR(m.now(), 1e-3, 1e-9);
}

TEST(Sim, CopiesToSameDeviceSerialize) {
  Machine m(flatSpec(1), ExecutionMode::TimingOnly);
  DevBuffer b = m.alloc(0, 2'000'000);
  m.copyHostToDevice(b, 0, nullptr, 1'000'000);
  m.copyHostToDevice(b, 1'000'000, nullptr, 1'000'000);
  m.synchronizeAll();
  EXPECT_NEAR(m.now(), 2e-3, 1e-9);
}

TEST(Sim, KernelComputeAndCopyOverlap) {
  Machine m(flatSpec(1), ExecutionMode::TimingOnly);
  DevBuffer b = m.alloc(0, 8'000'000);
  // A memory-bound kernel: 4096*256 threads x (2 loads + 1 store) x 8B at
  // 1e11 B/s = 0.2517 ms.
  const double kernelSecs = 4096.0 * 256.0 * 3 * 8 / 1e11;
  ir::KernelPtr k = apps::buildSaxpy();
  KernelArg args[] = {KernelArg::ofInt(1'000'000), KernelArg::ofFloat(2.0),
                      KernelArg::ofBuffer(b), KernelArg::ofBuffer(b)};
  m.launchKernel(0, *k, ir::LaunchConfig{{4096, 1, 1}, {256, 1, 1}}, args);
  // Concurrent 1 MB host copy (1 ms) uses the copy engine.
  m.copyHostToDevice(b, 0, nullptr, 1'000'000);
  m.synchronizeAll();
  // Total is the max of both, not the sum.
  EXPECT_NEAR(m.now(), 1e-3, 1e-6);
  EXPECT_NEAR(m.stats().kernelBusySeconds, kernelSecs, 1e-9);
}

TEST(Sim, KernelsOnOneDeviceSerialize) {
  Machine m(flatSpec(2), ExecutionMode::TimingOnly);
  DevBuffer b0 = m.alloc(0, 8'000'000);
  DevBuffer b1 = m.alloc(1, 8'000'000);
  ir::KernelPtr k = apps::buildSaxpy();
  auto launch = [&](int dev, DevBuffer buf) {
    KernelArg args[] = {KernelArg::ofInt(1'000'000), KernelArg::ofFloat(2.0),
                        KernelArg::ofBuffer(buf), KernelArg::ofBuffer(buf)};
    m.launchKernel(dev, *k, ir::LaunchConfig{{4096, 1, 1}, {256, 1, 1}}, args);
  };
  launch(0, b0);
  launch(0, b0);  // serializes with the first
  launch(1, b1);  // overlaps on the other device
  m.synchronizeAll();
  const double kernelSecs = 4096.0 * 256.0 * 3 * 8 / 1e11;
  EXPECT_NEAR(m.now(), 2 * kernelSecs, 1e-9);
}

TEST(Sim, HostApiOverheadAccumulates) {
  MachineSpec spec = flatSpec(1);
  spec.host.apiOverhead = 10e-6;
  Machine m(spec, ExecutionMode::TimingOnly);
  DevBuffer b = m.alloc(0, 8);  // 1 call
  for (int i = 0; i < 9; ++i) m.copyHostToDevice(b, 0, nullptr, 8);
  EXPECT_EQ(m.stats().apiCalls, 10);
  EXPECT_GE(m.now(), 100e-6);
}

TEST(Sim, FunctionalKernelExecutesSaxpy) {
  MachineSpec spec = flatSpec(1);
  Machine m(spec, ExecutionMode::Functional);
  const i64 n = 1000;
  DevBuffer x = m.alloc(0, n * 8);
  DevBuffer y = m.alloc(0, n * 8);
  std::vector<double> hx(n, 2.0), hy(n, 3.0);
  m.copyHostToDevice(x, 0, hx.data(), n * 8);
  m.copyHostToDevice(y, 0, hy.data(), n * 8);
  ir::KernelPtr k = apps::buildSaxpy();
  KernelArg args[] = {KernelArg::ofInt(n), KernelArg::ofFloat(10.0),
                      KernelArg::ofBuffer(x), KernelArg::ofBuffer(y)};
  m.launchKernel(0, *k, ir::LaunchConfig{{4, 1, 1}, {256, 1, 1}}, args);
  std::vector<double> out(n);
  m.copyDeviceToHost(out.data(), y, 0, n * 8);
  for (double v : out) EXPECT_DOUBLE_EQ(v, 23.0);
}

TEST(Sim, FabricContentionSerializesAggregateTraffic) {
  MachineSpec spec = flatSpec(4);
  spec.fabricBandwidth = 1e9;  // fabric as fast as one link
  Machine m(spec, ExecutionMode::TimingOnly);
  for (int d = 0; d < 4; ++d) {
    DevBuffer b = m.alloc(d, 1'000'000);
    m.copyHostToDevice(b, 0, nullptr, 1'000'000);
  }
  m.synchronizeAll();
  // Individually the copies could overlap (distinct devices), but the
  // shared fabric caps aggregate throughput: the last copy starts only
  // after 3 MB of fabric time.
  EXPECT_NEAR(m.now(), 4e-3, 1e-9);
}

TEST(Sim, PeerCopiesToDistinctDestinationsOverlap) {
  Machine m(flatSpec(3), ExecutionMode::TimingOnly);
  DevBuffer a = m.alloc(0, 1'000'000);
  DevBuffer b = m.alloc(1, 1'000'000);
  DevBuffer c = m.alloc(2, 1'000'000);
  // Peer copies are driven by the destination's DMA engine, so one source
  // can feed two destinations concurrently (bar fabric pressure).
  m.copyPeer(b, 0, a, 0, 1'000'000);
  m.copyPeer(c, 0, a, 0, 1'000'000);
  m.synchronizeAll();
  EXPECT_NEAR(m.now(), 1e-3, 1e-9);
  EXPECT_EQ(m.stats().bytesPeerToPeer, 2'000'000);

  // To the same destination they serialize.
  m.copyPeer(b, 0, a, 0, 1'000'000);
  m.copyPeer(b, 0, c, 0, 1'000'000);
  m.synchronizeAll();
  EXPECT_NEAR(m.now(), 3e-3, 1e-9);
}

TEST(Sim, ByteCountersAccumulateFractionalModeledBytes) {
  // With a 4-byte modeled element on 8-byte storage every copy counts half
  // its storage bytes; small copies produce fractional modeled bytes that
  // must not be truncated per transfer (128 one-byte copies used to count 0).
  MachineSpec spec = flatSpec(2);
  spec.bytesPerElement = 4;
  Machine m(spec, ExecutionMode::TimingOnly);
  DevBuffer a = m.alloc(0, 128);
  DevBuffer b = m.alloc(1, 128);
  for (i64 off = 0; off < 128; ++off) {
    m.copyHostToDevice(a, off, nullptr, 1);
    m.copyPeer(b, off, a, off, 1);
    m.copyDeviceToHost(nullptr, b, off, 1);
  }
  EXPECT_DOUBLE_EQ(m.stats().bytesHostToDevice, 64.0);
  EXPECT_DOUBLE_EQ(m.stats().bytesPeerToPeer, 64.0);
  EXPECT_DOUBLE_EQ(m.stats().bytesDeviceToHost, 64.0);

  // Consistency: one bulk copy of the same payload counts the same traffic.
  Machine bulk(spec, ExecutionMode::TimingOnly);
  DevBuffer c = bulk.alloc(0, 128);
  bulk.copyHostToDevice(c, 0, nullptr, 128);
  EXPECT_DOUBLE_EQ(bulk.stats().bytesHostToDevice, m.stats().bytesHostToDevice);
}

}  // namespace
}  // namespace polypart::sim
