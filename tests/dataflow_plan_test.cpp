// Correctness suite for the cross-launch dataflow planner
// (rt::RuntimeConfig::dataflowPlanning; see DESIGN.md "Cross-launch dataflow
// planning").  The planner is a pure timing optimization: cycle detection,
// flow-set prefetch, and dead-transfer elision must never change where bytes
// land.  Every test here compares a planning-on run byte-for-byte against
// the reactive paper path (planning off) — including runs whose launch
// sequence deliberately diverges from the detected cycle mid-stream.

#include <gtest/gtest.h>

#include <vector>

#include "analysis/analyze.h"
#include "fuzz_util.h"
#include "ir/builder.h"
#include "rt/runtime.h"
#include "support/rng.h"

namespace polypart::rt {
namespace {

/// Three-kernel iteration loop with real cross-device flow and a dead write
/// window:
///   scale: y[i] = x[i] * 0.5 + 1.0            (writes all of y)
///   fill:  y[i] = 1.25 for i < m              (overwrites a prefix of y)
///   fold:  x[i] = y[i] + y[n-1-i]             (reversed read: cross-device)
/// In the cycle scale->fill->fold, the prefix of `scale`'s writes that flows
/// to remote `fold` readers is killed by `fill` first — exactly the shape
/// dead-transfer elision prunes.
ir::Module buildLoopModule() {
  ir::Module mod;
  {
    ir::KernelBuilder b("scale");
    auto n = b.scalar("n", ir::Type::I64);
    auto x = b.array("x", ir::Type::F64, {n});
    auto y = b.array("y", ir::Type::F64, {n});
    auto i = b.let("i", b.globalId(ir::Axis::X));
    b.iff(ir::lt(i, n), [&] {
      b.store(y, i, b.load(x, i) * ir::fconst(0.5) + ir::fconst(1.0));
    });
    mod.addKernel(b.build());
  }
  {
    ir::KernelBuilder b("fill");
    auto n = b.scalar("n", ir::Type::I64);
    auto m = b.scalar("m", ir::Type::I64);
    auto y = b.array("y", ir::Type::F64, {n});
    auto i = b.let("i", b.globalId(ir::Axis::X));
    b.iff(ir::land(ir::lt(i, n), ir::lt(i, m)),
          [&] { b.store(y, i, ir::fconst(1.25)); });
    mod.addKernel(b.build());
  }
  {
    ir::KernelBuilder b("fold");
    auto n = b.scalar("n", ir::Type::I64);
    auto y = b.array("y", ir::Type::F64, {n});
    auto x = b.array("x", ir::Type::F64, {n});
    auto i = b.let("i", b.globalId(ir::Axis::X));
    b.iff(ir::lt(i, n), [&] {
      b.store(x, i, b.load(y, i) + b.load(y, n - ir::iconst(1) - i));
    });
    mod.addKernel(b.build());
  }
  return mod;
}

const ir::Module& loopModule() {
  static ir::Module mod = buildLoopModule();
  return mod;
}

const analysis::ApplicationModel& loopModel() {
  static analysis::ApplicationModel model = analysis::analyzeModule(loopModule());
  return model;
}

constexpr i64 kN = 512;
constexpr i64 kBlock = 64;

/// One step of the loop on the CPU, mirroring the kernels exactly.
void refStep(std::vector<double>& x, std::vector<double>& y, i64 m) {
  const i64 n = static_cast<i64>(x.size());
  for (i64 i = 0; i < n; ++i)
    y[static_cast<std::size_t>(i)] = x[static_cast<std::size_t>(i)] * 0.5 + 1.0;
  for (i64 i = 0; i < std::min(m, n); ++i) y[static_cast<std::size_t>(i)] = 1.25;
  std::vector<double> yr = y;
  for (i64 i = 0; i < n; ++i)
    x[static_cast<std::size_t>(i)] =
        yr[static_cast<std::size_t>(i)] + yr[static_cast<std::size_t>(n - 1 - i)];
}

/// A launch script: per step, which kernel of the loop to run and (for fill)
/// the prefix length.  Lets the divergence tests replay the exact same
/// possibly-irregular sequence on both runtimes and on the CPU.
struct ScriptStep {
  int op = 0;  // 0 = scale, 1 = fill, 2 = fold
  i64 m = 0;   // fill prefix
};

struct RunOut {
  std::vector<double> x, y;
  RuntimeStats stats;
};

RunOut runScript(bool planning, int gpus, const std::vector<ScriptStep>& script,
                 const std::vector<double>& x0) {
  RuntimeConfig cfg;
  cfg.numGpus = gpus;
  cfg.mode = sim::ExecutionMode::Functional;
  cfg.dataflowPlanning = planning;
  Runtime rt(cfg, loopModel(), loopModule());
  const i64 bytes = kN * 8;
  VirtualBuffer* vx = rt.malloc(bytes);
  VirtualBuffer* vy = rt.malloc(bytes);
  std::vector<double> y0(static_cast<std::size_t>(kN), 0.0);
  rt.memcpy(vx, x0.data(), bytes, MemcpyKind::HostToDevice);
  rt.memcpy(vy, y0.data(), bytes, MemcpyKind::HostToDevice);

  const ir::Dim3 grid{kN / kBlock, 1, 1}, block{kBlock, 1, 1};
  for (const ScriptStep& s : script) {
    switch (s.op) {
      case 0: {
        LaunchArg args[] = {LaunchArg::ofInt(kN), LaunchArg::ofBuffer(vx),
                            LaunchArg::ofBuffer(vy)};
        rt.launch("scale", grid, block, args);
        break;
      }
      case 1: {
        LaunchArg args[] = {LaunchArg::ofInt(kN), LaunchArg::ofInt(s.m),
                            LaunchArg::ofBuffer(vy)};
        rt.launch("fill", grid, block, args);
        break;
      }
      default: {
        LaunchArg args[] = {LaunchArg::ofInt(kN), LaunchArg::ofBuffer(vy),
                            LaunchArg::ofBuffer(vx)};
        rt.launch("fold", grid, block, args);
        break;
      }
    }
  }
  RunOut out;
  out.x.assign(static_cast<std::size_t>(kN), -1.0);
  out.y.assign(static_cast<std::size_t>(kN), -1.0);
  rt.memcpy(out.x.data(), vx, bytes, MemcpyKind::DeviceToHost);
  rt.memcpy(out.y.data(), vy, bytes, MemcpyKind::DeviceToHost);
  out.stats = rt.stats();
  return out;
}

std::vector<ScriptStep> regularScript(int iters, i64 m) {
  std::vector<ScriptStep> script;
  for (int it = 0; it < iters; ++it) {
    script.push_back({0, 0});
    script.push_back({1, m});
    script.push_back({2, 0});
  }
  return script;
}

std::vector<double> seededInput(u64 seed) {
  Rng rng(seed);
  std::vector<double> x(static_cast<std::size_t>(kN));
  for (auto& v : x) v = rng.uniform() * 4.0 - 2.0;
  return x;
}

TEST(DataflowPlan, SteadyLoopActivatesPlansAndElides) {
  const std::vector<double> x0 = seededInput(17);
  const std::vector<ScriptStep> script = regularScript(/*iters=*/8, kN / 2);

  RunOut off = runScript(/*planning=*/false, /*gpus=*/4, script, x0);
  RunOut on = runScript(/*planning=*/true, /*gpus=*/4, script, x0);

  // Byte identity against the reactive path and against the CPU reference.
  EXPECT_EQ(on.x, off.x);
  EXPECT_EQ(on.y, off.y);
  std::vector<double> rx = x0, ry(static_cast<std::size_t>(kN), 0.0);
  for (int it = 0; it < 8; ++it) refStep(rx, ry, kN / 2);
  EXPECT_EQ(on.x, rx);
  EXPECT_EQ(on.y, ry);

  // The period-3 cycle must have been detected, planned launches executed,
  // prefetches issued, and the fill-killed prefix elided.
  EXPECT_GE(on.stats.planActivations, 1);
  EXPECT_EQ(on.stats.planDivergences, 0);
  EXPECT_GT(on.stats.plannedLaunches, 0);
  EXPECT_GT(on.stats.prefetchCopies, 0);
  EXPECT_GT(on.stats.bytesPrefetched, 0);
  EXPECT_GT(on.stats.bytesElided, 0);
  EXPECT_GT(on.stats.prefetchHits, 0);

  // Planning off: all planner counters pinned to zero.
  EXPECT_EQ(off.stats.planActivations, 0);
  EXPECT_EQ(off.stats.plannedLaunches, 0);
  EXPECT_EQ(off.stats.prefetchCopies, 0);
  EXPECT_EQ(off.stats.bytesElided, 0);
  EXPECT_EQ(off.stats.prefetchHits, 0);
}

TEST(DataflowPlan, ElisionGrowsWithTheKilledPrefix) {
  // A larger fill prefix kills more of scale's flow to fold: elided bytes
  // must be monotone in m, and zero when nothing is overwritten.
  const std::vector<double> x0 = seededInput(18);
  i64 prevElided = -1;
  for (i64 m : {i64{0}, kN / 4, kN / 2}) {
    RunOut off = runScript(false, 4, regularScript(6, m), x0);
    RunOut on = runScript(true, 4, regularScript(6, m), x0);
    EXPECT_EQ(on.x, off.x) << "m=" << m;
    EXPECT_EQ(on.y, off.y) << "m=" << m;
    EXPECT_GE(on.stats.bytesElided, prevElided) << "m=" << m;
    prevElided = on.stats.bytesElided;
  }
  EXPECT_GT(prevElided, 0);
}

TEST(DataflowPlan, MispredictedSequenceFallsBackReactively) {
  // Warm up the plan with 4 regular iterations, then break the cycle: a
  // fill with a different prefix scalar (off-plan signature), an extra
  // back-to-back fold, then resume the regular pattern.  The planner must
  // record a divergence, and the bytes must stay identical to the reactive
  // path running the very same irregular script.
  std::vector<ScriptStep> script = regularScript(4, kN / 2);
  script.push_back({0, 0});
  script.push_back({1, kN / 4});  // scalar change: breaks the signature match
  script.push_back({2, 0});
  script.push_back({2, 0});  // duplicated fold: breaks the kernel sequence
  for (int it = 0; it < 4; ++it) {
    script.push_back({0, 0});
    script.push_back({1, kN / 2});
    script.push_back({2, 0});
  }

  const std::vector<double> x0 = seededInput(19);
  RunOut off = runScript(false, 4, script, x0);
  RunOut on = runScript(true, 4, script, x0);
  EXPECT_EQ(on.x, off.x);
  EXPECT_EQ(on.y, off.y);
  EXPECT_GE(on.stats.planActivations, 1);
  EXPECT_GE(on.stats.planDivergences, 1);
}

TEST(DataflowPlan, SingleGpuPlansMoveNoBytes) {
  // With one device there is no peer flow: planning may activate but must
  // issue no copies and elide nothing.
  const std::vector<double> x0 = seededInput(20);
  RunOut on = runScript(true, 1, regularScript(6, kN / 2), x0);
  std::vector<double> rx = x0, ry(static_cast<std::size_t>(kN), 0.0);
  for (int it = 0; it < 6; ++it) refStep(rx, ry, kN / 2);
  EXPECT_EQ(on.x, rx);
  EXPECT_EQ(on.stats.prefetchCopies, 0);
  EXPECT_EQ(on.stats.bytesPrefetched, 0);
}

TEST(DataflowPlan, RandomizedDivergenceFuzz) {
  // Random scripts biased toward the regular cycle but sprinkled with
  // perturbations (changed fill prefixes, dropped or duplicated steps):
  // every script must land identical bytes with planning on and off, no
  // matter where the plan activates or diverges.  Seeds follow
  // tests/fuzz_util.h (replay one case with POLYPART_FUZZ_SEED=<seed>).
  for (int c = 0; c < fuzz::caseCount(12); ++c) {
    fuzz::SeededRng rng(fuzz::seedFor(21, c));
    SCOPED_TRACE(rng.replay());
    const int gpus = static_cast<int>(rng.range(2, 5));
    std::vector<ScriptStep> script;
    int op = 0;
    i64 m = kN / 2;
    const int steps = static_cast<int>(rng.range(18, 36));
    for (int s = 0; s < steps; ++s) {
      if (rng.chance(0.12)) {
        // Perturb: re-roll the fill prefix and/or jump to a random op.
        m = rng.range(0, kN);
        if (rng.chance(0.5)) op = static_cast<int>(rng.range(0, 2));
      }
      script.push_back({op, m});
      op = (op + 1) % 3;
    }
    const std::vector<double> x0 = seededInput(rng.seed());
    RunOut off = runScript(false, gpus, script, x0);
    RunOut on = runScript(true, gpus, script, x0);
    EXPECT_EQ(on.x, off.x) << rng.replay() << " gpus=" << gpus;
    EXPECT_EQ(on.y, off.y) << rng.replay() << " gpus=" << gpus;
    if (::testing::Test::HasFailure()) return;
  }
}

TEST(DataflowPlan, PlanningComposesWithPipelineAndThreads) {
  // The planner observes launches on the commit path, which is serial at
  // every pipeline depth and thread count: results and deterministic stats
  // must be invariant across the engine axes with planning on.
  const std::vector<double> x0 = seededInput(22);
  const std::vector<ScriptStep> script = regularScript(6, kN / 2);
  auto runWith = [&](int depth, int threads) {
    RuntimeConfig cfg;
    cfg.numGpus = 4;
    cfg.mode = sim::ExecutionMode::Functional;
    cfg.dataflowPlanning = true;
    cfg.pipelineDepth = depth;
    cfg.resolutionThreads = threads;
    Runtime rt(cfg, loopModel(), loopModule());
    const i64 bytes = kN * 8;
    VirtualBuffer* vx = rt.malloc(bytes);
    VirtualBuffer* vy = rt.malloc(bytes);
    std::vector<double> y0(static_cast<std::size_t>(kN), 0.0);
    rt.memcpy(vx, x0.data(), bytes, MemcpyKind::HostToDevice);
    rt.memcpy(vy, y0.data(), bytes, MemcpyKind::HostToDevice);
    const ir::Dim3 grid{kN / kBlock, 1, 1}, block{kBlock, 1, 1};
    for (const ScriptStep& s : script) {
      if (s.op == 0) {
        LaunchArg args[] = {LaunchArg::ofInt(kN), LaunchArg::ofBuffer(vx),
                            LaunchArg::ofBuffer(vy)};
        rt.launch("scale", grid, block, args);
      } else if (s.op == 1) {
        LaunchArg args[] = {LaunchArg::ofInt(kN), LaunchArg::ofInt(s.m),
                            LaunchArg::ofBuffer(vy)};
        rt.launch("fill", grid, block, args);
      } else {
        LaunchArg args[] = {LaunchArg::ofInt(kN), LaunchArg::ofBuffer(vy),
                            LaunchArg::ofBuffer(vx)};
        rt.launch("fold", grid, block, args);
      }
    }
    rt.deviceSynchronize();
    RunOut out;
    out.x.assign(static_cast<std::size_t>(kN), -1.0);
    rt.memcpy(out.x.data(), vx, bytes, MemcpyKind::DeviceToHost);
    RuntimeStats s = rt.stats();
    s.resolutionTasks = 0;
    s.resolutionWallSeconds = 0;
    s.parallelWallSeconds = 0;
    s.fmMemoHits = s.fmMemoMisses = s.fmMemoEvictions = 0;
    s.specProgramHits = s.specProgramMisses = s.specProgramEvictions = 0;
    out.stats = s;
    return out;
  };
  RunOut ref = runWith(0, 0);
  EXPECT_GT(ref.stats.plannedLaunches, 0);
  for (int depth : {0, 2}) {
    for (int threads : {0, 3}) {
      if (depth == 0 && threads == 0) continue;
      RunOut got = runWith(depth, threads);
      EXPECT_EQ(got.x, ref.x) << "depth=" << depth << " threads=" << threads;
      EXPECT_EQ(got.stats, ref.stats)
          << "depth=" << depth << " threads=" << threads;
    }
  }
}

TEST(DataflowPlan, PlannedCycleSurvivesRepartition) {
  // Regression: a repartition changes every kernel's footprint geometry, so
  // any cycle the planner detected beforehand prefetches the *old* flow sets.
  // Repartitioning must invalidate the cached plans of every tenant; a stale
  // plan would prefetch to the wrong devices and (worse) elide transfers that
  // are no longer dead.  Byte-identity against the reactive path running the
  // same schedule is the strongest possible check.
  const std::vector<double> x0 = seededInput(23);
  const i64 bytes = kN * 8;
  const Partitioning skew{{3, 1, 1, 3}};

  auto runWith = [&](bool planning) {
    RuntimeConfig cfg;
    cfg.numGpus = 4;
    cfg.mode = sim::ExecutionMode::Functional;
    cfg.dataflowPlanning = planning;
    cfg.allowRepartitioning = true;
    Runtime rt(cfg, loopModel(), loopModule());
    VirtualBuffer* vx = rt.malloc(bytes);
    VirtualBuffer* vy = rt.malloc(bytes);
    std::vector<double> y0(static_cast<std::size_t>(kN), 0.0);
    rt.memcpy(vx, x0.data(), bytes, MemcpyKind::HostToDevice);
    rt.memcpy(vy, y0.data(), bytes, MemcpyKind::HostToDevice);
    const ir::Dim3 grid{kN / kBlock, 1, 1}, block{kBlock, 1, 1};
    auto iterate = [&](int iters) {
      for (int it = 0; it < iters; ++it) {
        LaunchArg a0[] = {LaunchArg::ofInt(kN), LaunchArg::ofBuffer(vx),
                          LaunchArg::ofBuffer(vy)};
        rt.launch("scale", grid, block, a0);
        LaunchArg a1[] = {LaunchArg::ofInt(kN), LaunchArg::ofInt(kN / 2),
                          LaunchArg::ofBuffer(vy)};
        rt.launch("fill", grid, block, a1);
        LaunchArg a2[] = {LaunchArg::ofInt(kN), LaunchArg::ofBuffer(vy),
                          LaunchArg::ofBuffer(vx)};
        rt.launch("fold", grid, block, a2);
      }
    };
    iterate(6);  // long enough for the cycle to activate and run planned
    rt.repartitionAll(skew);
    iterate(6);  // the plan must re-learn the new geometry, not replay stale
    RunOut out;
    out.x.assign(static_cast<std::size_t>(kN), -1.0);
    out.y.assign(static_cast<std::size_t>(kN), -1.0);
    rt.memcpy(out.x.data(), vx, bytes, MemcpyKind::DeviceToHost);
    rt.memcpy(out.y.data(), vy, bytes, MemcpyKind::DeviceToHost);
    out.stats = rt.stats();
    return out;
  };

  RunOut off = runWith(false);
  RunOut on = runWith(true);
  EXPECT_EQ(on.x, off.x);
  EXPECT_EQ(on.y, off.y);
  std::vector<double> rx = x0, ry(static_cast<std::size_t>(kN), 0.0);
  for (int it = 0; it < 12; ++it) refStep(rx, ry, kN / 2);
  EXPECT_EQ(on.x, rx);
  EXPECT_EQ(on.y, ry);
  // The plan was live before the repartition and re-activated on the new
  // geometry afterwards: at least two activations, and planned launches on
  // both sides of the transition.
  EXPECT_GE(on.stats.planActivations, 2);
  EXPECT_GT(on.stats.plannedLaunches, 0);
}

}  // namespace
}  // namespace polypart::rt
