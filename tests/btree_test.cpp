// Tests for the B+ tree map (rt/btree.h), including a randomized property
// check against std::map covering inserts, overwrites, erases, ordered
// iteration, and predecessor queries.

#include <gtest/gtest.h>

#include <map>

#include "rt/btree.h"
#include "rt/tracker.h"
#include "support/arith.h"
#include "support/rng.h"

namespace polypart::rt {
namespace {

TEST(BTree, EmptyTree) {
  BTreeMap<i64, int> t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.size(), 0u);
  EXPECT_TRUE(t.begin().atEnd());
  EXPECT_TRUE(t.lowerBound(0).atEnd());
  EXPECT_TRUE(t.floorEntry(100).atEnd());
  EXPECT_FALSE(t.erase(3));
}

TEST(BTree, InsertAndFind) {
  BTreeMap<i64, int> t;
  for (i64 k : {5, 1, 9, 3, 7}) t.insert(k, static_cast<int>(k * 10));
  EXPECT_EQ(t.size(), 5u);
  EXPECT_EQ(t.find(3).value(), 30);
  EXPECT_EQ(t.find(9).value(), 90);
  EXPECT_TRUE(t.find(4).atEnd());
  // Overwrite does not grow the tree.
  t.insert(3, 333);
  EXPECT_EQ(t.size(), 5u);
  EXPECT_EQ(t.find(3).value(), 333);
}

TEST(BTree, OrderedIteration) {
  BTreeMap<i64, int> t;
  for (i64 k = 99; k >= 0; --k) t.insert(k, static_cast<int>(k));
  i64 expect = 0;
  for (auto it = t.begin(); !it.atEnd(); it.next()) {
    EXPECT_EQ(it.key(), expect);
    ++expect;
  }
  EXPECT_EQ(expect, 100);
}

TEST(BTree, LowerBoundAndFloor) {
  BTreeMap<i64, int> t;
  for (i64 k = 0; k < 100; k += 10) t.insert(k, static_cast<int>(k));
  EXPECT_EQ(t.lowerBound(35).key(), 40);
  EXPECT_EQ(t.lowerBound(40).key(), 40);
  EXPECT_TRUE(t.lowerBound(91).atEnd());
  EXPECT_EQ(t.floorEntry(35).key(), 30);
  EXPECT_EQ(t.floorEntry(40).key(), 40);
  EXPECT_TRUE(t.floorEntry(-1).atEnd());
  EXPECT_EQ(t.floorEntry(1000).key(), 90);
}

TEST(BTree, EraseRebalances) {
  BTreeMap<i64, int, 4> t;  // tiny order forces splits and merges
  const i64 n = 500;
  for (i64 k = 0; k < n; ++k) t.insert(k, static_cast<int>(k));
  EXPECT_GE(t.height(), 3);
  for (i64 k = 0; k < n; k += 2) EXPECT_TRUE(t.erase(k));
  EXPECT_EQ(t.size(), static_cast<std::size_t>(n / 2));
  for (i64 k = 0; k < n; ++k)
    EXPECT_EQ(!t.find(k).atEnd(), k % 2 == 1) << k;
  for (i64 k = 1; k < n; k += 2) EXPECT_TRUE(t.erase(k));
  EXPECT_TRUE(t.empty());
}

TEST(BTree, HeightStaysLogarithmic) {
  BTreeMap<i64, int> t;  // order 16
  for (i64 k = 0; k < 100000; ++k) t.insert(k * 7919 % 1000003, 0);
  // 16-ary tree: 100k entries fit comfortably in 5 levels.
  EXPECT_LE(t.height(), 6);
}

TEST(BTree, RandomizedAgainstStdMap) {
  Rng rng(42);
  for (int order : {0, 1}) {
    BTreeMap<i64, i64, 4> small;
    BTreeMap<i64, i64, 16> big;
    std::map<i64, i64> ref;
    for (int step = 0; step < 20000; ++step) {
      i64 k = rng.range(0, 400);
      double roll = rng.uniform();
      if (roll < 0.55) {
        i64 v = rng.range(0, 1000000);
        if (order == 0) small.insert(k, v); else big.insert(k, v);
        ref[k] = v;
      } else if (roll < 0.85) {
        bool a = order == 0 ? small.erase(k) : big.erase(k);
        bool b = ref.erase(k) > 0;
        ASSERT_EQ(a, b) << "erase mismatch at step " << step;
      } else {
        // Compare lowerBound.
        auto refIt = ref.lower_bound(k);
        if (order == 0) {
          auto it = small.lowerBound(k);
          ASSERT_EQ(it.atEnd(), refIt == ref.end());
          if (!it.atEnd()) {
            ASSERT_EQ(it.key(), refIt->first);
            ASSERT_EQ(it.value(), refIt->second);
          }
        } else {
          auto it = big.lowerBound(k);
          ASSERT_EQ(it.atEnd(), refIt == ref.end());
          if (!it.atEnd()) {
            ASSERT_EQ(it.key(), refIt->first);
            ASSERT_EQ(it.value(), refIt->second);
          }
        }
      }
      if (step % 997 == 0) {
        // Full in-order comparison.
        std::size_t sz = order == 0 ? small.size() : big.size();
        ASSERT_EQ(sz, ref.size());
        auto refIt = ref.begin();
        if (order == 0) {
          for (auto it = small.begin(); !it.atEnd(); it.next(), ++refIt) {
            ASSERT_EQ(it.key(), refIt->first);
            ASSERT_EQ(it.value(), refIt->second);
          }
        } else {
          for (auto it = big.begin(); !it.atEnd(); it.next(), ++refIt) {
            ASSERT_EQ(it.key(), refIt->first);
            ASSERT_EQ(it.value(), refIt->second);
          }
        }
        ASSERT_EQ(refIt, ref.end());
      }
    }
  }
}

TEST(Tracker, InitialStateUndefined) {
  SegmentTracker t(1000);
  EXPECT_EQ(t.segmentCount(), 1u);
  EXPECT_EQ(t.ownerAt(0), kOwnerUndefined);
  EXPECT_EQ(t.ownerAt(999), kOwnerUndefined);
  EXPECT_TRUE(t.checkInvariants());
}

TEST(Tracker, UpdateAndQuery) {
  SegmentTracker t(1000);
  t.update(100, 200, 0);
  t.update(200, 300, 1);
  EXPECT_TRUE(t.checkInvariants());
  std::vector<std::tuple<i64, i64, Owner>> segs;
  t.query(50, 350, [&](i64 b, i64 e, Owner o) { segs.emplace_back(b, e, o); });
  ASSERT_EQ(segs.size(), 4u);
  EXPECT_EQ(segs[0], (std::tuple<i64, i64, Owner>{50, 100, kOwnerUndefined}));
  EXPECT_EQ(segs[1], (std::tuple<i64, i64, Owner>{100, 200, 0}));
  EXPECT_EQ(segs[2], (std::tuple<i64, i64, Owner>{200, 300, 1}));
  EXPECT_EQ(segs[3], (std::tuple<i64, i64, Owner>{300, 350, kOwnerUndefined}));
}

TEST(Tracker, CoalescesSameOwner) {
  SegmentTracker t(1000);
  t.update(0, 100, 2);
  t.update(100, 200, 2);
  t.update(200, 300, 2);
  // One owned segment plus the undefined tail.
  EXPECT_EQ(t.segmentCount(), 2u);
  EXPECT_TRUE(t.checkInvariants());
}

TEST(Tracker, OverwriteSplitsSegments) {
  SegmentTracker t(100);
  t.update(0, 100, 0);
  t.update(40, 60, 1);
  EXPECT_EQ(t.ownerAt(39), 0);
  EXPECT_EQ(t.ownerAt(40), 1);
  EXPECT_EQ(t.ownerAt(59), 1);
  EXPECT_EQ(t.ownerAt(60), 0);
  EXPECT_EQ(t.segmentCount(), 3u);
  EXPECT_TRUE(t.checkInvariants());
  // Writing it back re-coalesces.
  t.update(40, 60, 0);
  EXPECT_EQ(t.segmentCount(), 1u);
  EXPECT_TRUE(t.checkInvariants());
}

TEST(Tracker, ClampsOutOfRange) {
  SegmentTracker t(100);
  t.update(-50, 150, 3);
  EXPECT_EQ(t.segmentCount(), 1u);
  EXPECT_EQ(t.ownerAt(0), 3);
  EXPECT_EQ(t.ownerAt(99), 3);
  int calls = 0;
  t.query(200, 300, [&](i64, i64, Owner) { ++calls; });
  EXPECT_EQ(calls, 0);
}

/// Property: tracker behaviour matches a flat per-byte ownership array, for
/// both map back-ends.
template <typename Tracker>
void randomTrackerCheck(unsigned seed) {
  Rng rng(seed);
  const i64 size = 512;
  Tracker t(size);
  std::vector<Owner> ref(static_cast<std::size_t>(size), kOwnerUndefined);
  for (int step = 0; step < 3000; ++step) {
    i64 b = rng.range(0, size - 1);
    i64 e = rng.range(b + 1, size);
    if (rng.chance(0.7)) {
      Owner o = static_cast<Owner>(rng.range(0, 5));
      t.update(b, e, o);
      for (i64 i = b; i < e; ++i) ref[static_cast<std::size_t>(i)] = o;
      ASSERT_TRUE(t.checkInvariants()) << "step " << step;
    } else {
      std::vector<Owner> got(static_cast<std::size_t>(e - b), kOwnerUndefined);
      i64 covered = 0;
      i64 prevEnd = b;
      t.query(b, e, [&](i64 sb, i64 se, Owner o) {
        ASSERT_EQ(sb, prevEnd) << "query gap";
        prevEnd = se;
        covered += se - sb;
        for (i64 i = sb; i < se; ++i) got[static_cast<std::size_t>(i - b)] = o;
      });
      ASSERT_EQ(covered, e - b);
      for (i64 i = b; i < e; ++i)
        ASSERT_EQ(got[static_cast<std::size_t>(i - b)], ref[static_cast<std::size_t>(i)])
            << "step " << step << " pos " << i;
    }
  }
}

TEST(Tracker, RandomizedBTreeBackend) { randomTrackerCheck<SegmentTracker>(7); }
TEST(Tracker, RandomizedStdMapBackend) { randomTrackerCheck<SegmentTrackerStdMap>(8); }

TEST(Tracker, SharedCopiesRecordedAndInvalidated) {
  SegmentTracker t(1000);
  t.update(0, 1000, 0);
  t.addSharer(200, 600, 1);
  t.addSharer(400, 800, 2);
  EXPECT_TRUE(t.checkInvariants());
  std::vector<std::tuple<i64, i64, Owner, u64>> segs;
  t.querySharers(0, 1000, [&](i64 b, i64 e, Owner o, u64 s) {
    segs.emplace_back(b, e, o, s);
  });
  ASSERT_EQ(segs.size(), 5u);
  EXPECT_EQ(segs[0], (std::tuple<i64, i64, Owner, u64>{0, 200, 0, 0b001}));
  EXPECT_EQ(segs[1], (std::tuple<i64, i64, Owner, u64>{200, 400, 0, 0b011}));
  EXPECT_EQ(segs[2], (std::tuple<i64, i64, Owner, u64>{400, 600, 0, 0b111}));
  EXPECT_EQ(segs[3], (std::tuple<i64, i64, Owner, u64>{600, 800, 0, 0b101}));
  EXPECT_EQ(segs[4], (std::tuple<i64, i64, Owner, u64>{800, 1000, 0, 0b001}));

  // A write by device 3 invalidates the replicas in its range.
  t.update(300, 700, 3);
  EXPECT_TRUE(t.checkInvariants());
  t.querySharers(300, 700, [&](i64, i64, Owner o, u64 s) {
    EXPECT_EQ(o, 3);
    EXPECT_EQ(s, u64{0b1000});
  });
}

TEST(Tracker, AddSharerRecoalesces) {
  SegmentTracker t(100);
  t.update(0, 100, 0);
  // Fragment the sharer state, then make it uniform again.
  t.addSharer(20, 40, 1);
  EXPECT_EQ(t.segmentCount(), 3u);
  t.addSharer(0, 20, 1);
  t.addSharer(40, 100, 1);
  EXPECT_TRUE(t.checkInvariants());
  EXPECT_EQ(t.segmentCount(), 1u);
}

TEST(Tracker, SharerPropertyAgainstReference) {
  Rng rng(41);
  const i64 size = 256;
  SegmentTracker t(size);
  std::vector<Owner> refOwner(static_cast<std::size_t>(size), kOwnerUndefined);
  std::vector<u64> refSharers(static_cast<std::size_t>(size), 0);
  for (int step = 0; step < 2000; ++step) {
    i64 b = rng.range(0, size - 1);
    i64 e = rng.range(b + 1, size);
    if (rng.chance(0.5)) {
      Owner o = static_cast<Owner>(rng.range(0, 7));
      t.update(b, e, o);
      for (i64 i = b; i < e; ++i) {
        refOwner[static_cast<std::size_t>(i)] = o;
        refSharers[static_cast<std::size_t>(i)] = u64{1} << o;
      }
    } else if (rng.chance(0.6)) {
      int d = static_cast<int>(rng.range(0, 7));
      t.addSharer(b, e, d);
      for (i64 i = b; i < e; ++i) refSharers[static_cast<std::size_t>(i)] |= u64{1} << d;
    } else {
      t.querySharers(b, e, [&](i64 sb, i64 se, Owner o, u64 s) {
        for (i64 i = sb; i < se; ++i) {
          ASSERT_EQ(o, refOwner[static_cast<std::size_t>(i)]) << "pos " << i;
          ASSERT_EQ(s, refSharers[static_cast<std::size_t>(i)]) << "pos " << i;
        }
      });
    }
    ASSERT_TRUE(t.checkInvariants()) << "step " << step;
  }
}

}  // namespace
}  // namespace polypart::rt
