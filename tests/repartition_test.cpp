// Elastic repartitioning tests (Runtime::repartition; DESIGN.md "Elastic
// repartitioning").
//
// Layers:
//   1. Contract tests: the knob gate, partitioning validation, and the
//      guarantee that all-even weights reproduce the paper's fixed split.
//   2. A minimality test on a known geometry: the transition moves exactly
//      the old/new footprint difference, asserted against the full
//      new-footprint upper bound (what naive re-distribution would move).
//   3. A byte-identity sweep: a workload with a mid-run repartition produces
//      CPU-reference results under every cache x threads x pipeline-depth x
//      transferScheduling combination, with full stats determinism across
//      thread counts and depths.
//   4. Elasticity (shrink/grow the active device set) and the
//      load-rebalancing policy on a heterogeneous MachineSpec.

#include <gtest/gtest.h>

#include <map>
#include <tuple>
#include <vector>

#include "analysis/analyze.h"
#include "ir/builder.h"
#include "rt/runtime.h"

namespace polypart::rt {
namespace {

using ir::fconst;
using ir::ge;
using ir::iconst;
using ir::land;
using ir::le;
using ir::lt;

constexpr i64 kN = 512;

/// Two kernels ping-ponged over one pair of buffers: an affine map (writes
/// exactly its partition) and a 3-point stencil (halo reads cross partition
/// boundaries, so every transition geometry is exercised by the reactive
/// resolution too).
ir::Module buildWorkload() {
  ir::Module mod;
  {
    ir::KernelBuilder b("scale");
    auto n = b.scalar("n", ir::Type::I64);
    auto in = b.array("in", ir::Type::F64, {n});
    auto out = b.array("out", ir::Type::F64, {n});
    auto x = b.let("x", b.globalId(ir::Axis::X));
    b.iff(lt(x, n),
          [&] { b.store(out, x, b.load(in, x) * fconst(0.5) + fconst(1.0)); });
    mod.addKernel(b.build());
  }
  {
    ir::KernelBuilder b("stencil");
    auto n = b.scalar("n", ir::Type::I64);
    auto in = b.array("in", ir::Type::F64, {n});
    auto out = b.array("out", ir::Type::F64, {n});
    auto x = b.let("x", b.globalId(ir::Axis::X));
    b.iff(lt(x, n), [&] {
      b.iff(
          land(ge(x, iconst(1)), le(x, n - iconst(2))),
          [&] {
            b.store(out, x,
                    b.load(in, x - iconst(1)) + b.load(in, x) +
                        b.load(in, x + iconst(1)));
          },
          [&] { b.store(out, x, fconst(-2.0)); });
    });
    mod.addKernel(b.build());
  }
  return mod;
}

void refScale(const std::vector<double>& in, std::vector<double>& out) {
  for (std::size_t i = 0; i < in.size(); ++i) out[i] = in[i] * 0.5 + 1.0;
}

void refStencil(const std::vector<double>& in, std::vector<double>& out) {
  const std::size_t n = in.size();
  for (std::size_t i = 0; i < n; ++i)
    out[i] = (i >= 1 && i + 2 <= n) ? in[i - 1] + in[i] + in[i + 1] : -2.0;
}

std::vector<double> makeInput() {
  std::vector<double> v(kN);
  for (i64 i = 0; i < kN; ++i)
    v[static_cast<std::size_t>(i)] = static_cast<double>(i % 23) * 0.5 - 4.0;
  return v;
}

RuntimeConfig baseConfig(int gpus) {
  RuntimeConfig rc;
  rc.numGpus = gpus;
  rc.machine = sim::MachineSpec::k80Node(gpus);
  rc.allowRepartitioning = true;
  return rc;
}

// --------------------------------------------------------------------------
// Contract tests.

TEST(Repartition, DisabledByDefaultThrows) {
  RuntimeConfig rc = baseConfig(2);
  rc.allowRepartitioning = false;  // explicit: the env knob may force it on
  ir::Module mod = buildWorkload();
  Runtime rt(rc, analysis::analyzeModule(mod), mod);
  EXPECT_THROW(rt.repartition("scale", Partitioning{{2, 1}}), Error);
  EXPECT_THROW(rt.repartitionAll(Partitioning{{2, 1}}), Error);
}

TEST(Repartition, InvalidPartitioningThrows) {
  ir::Module mod = buildWorkload();
  Runtime rt(baseConfig(4), analysis::analyzeModule(mod), mod);
  EXPECT_THROW(rt.repartition("scale", Partitioning{{1, 1}}), Error);  // arity
  EXPECT_THROW(rt.repartition("scale", Partitioning{{1, -1, 1, 1}}), Error);
  EXPECT_THROW(rt.repartition("scale", Partitioning{{0, 0, 0, 0}}), Error);
  EXPECT_THROW(
      rt.repartition("scale", Partitioning{{i64{1} << 30, 1, 1, 1}}), Error);
  // Unchanged by the failed attempts.
  EXPECT_EQ(rt.partitioning("scale"), Partitioning::even(4));
}

TEST(Repartition, EvenWeightsReproduceTheSeedSplit) {
  ir::Module mod = buildWorkload();
  analysis::ApplicationModel model = analysis::analyzeModule(mod);
  Runtime rt(baseConfig(3), model, mod);
  const analysis::KernelModel* km = nullptr;
  for (const analysis::KernelModel& k : model.kernels)
    if (k.kernel == "scale") km = &k;
  ASSERT_NE(km, nullptr);
  const ir::Dim3 grid{8, 1, 1};
  for (int g = 0; g < 3; ++g) {
    ir::GridPartition p = rt.partitionFor(*km, grid, g);
    // The paper's arithmetic: [extent * g / n, extent * (g+1) / n).
    EXPECT_EQ(p.lo.x, 8 * g / 3);
    EXPECT_EQ(p.hi.x, 8 * (g + 1) / 3);
  }
  // Weight 0 gives an empty partition (elasticity).
  ASSERT_NO_THROW(rt.repartition("scale", Partitioning{{1, 0, 1}}));
  EXPECT_EQ(rt.partitionFor(*km, grid, 1).blockCount(), 0);
}

TEST(Repartition, NoOpAndPreLaunchTransitionsMoveNothing) {
  ir::Module mod = buildWorkload();
  Runtime rt(baseConfig(4), analysis::analyzeModule(mod), mod);
  // Same weights: no-op, not even counted.
  RepartitionResult r = rt.repartition("scale", Partitioning::even(4));
  EXPECT_EQ(r.bytesMoved, 0);
  EXPECT_EQ(rt.stats().repartitions, 0);
  // Changed weights before any launch: counted, but there is no recorded
  // footprint to migrate.
  r = rt.repartition("scale", Partitioning{{2, 1, 1, 2}});
  EXPECT_EQ(r.bytesMoved, 0);
  EXPECT_EQ(r.copies, 0);
  EXPECT_EQ(rt.stats().repartitions, 1);
  EXPECT_EQ(rt.partitioning("scale"), (Partitioning{{2, 1, 1, 2}}));
}

// --------------------------------------------------------------------------
// Minimality: the transition is the footprint difference, not the footprint.

TEST(Repartition, TransitionMovesOnlyTheFootprintDifference) {
  ir::Module mod = buildWorkload();
  RuntimeConfig rc = baseConfig(4);
  Runtime rt(rc, analysis::analyzeModule(mod), mod);
  const i64 bytes = kN * 8;
  std::vector<double> in = makeInput();
  VirtualBuffer* vin = rt.malloc(bytes);
  VirtualBuffer* vout = rt.malloc(bytes);
  rt.memcpy(vin, in.data(), bytes, MemcpyKind::HostToDevice);

  const ir::Dim3 grid{kN / 64, 1, 1}, block{64, 1, 1};
  std::vector<LaunchArg> args = {LaunchArg::ofInt(kN), LaunchArg::ofBuffer(vin),
                                 LaunchArg::ofBuffer(vout)};
  rt.launch("scale", grid, block, args);

  // Even over 4 GPUs: device d owns elements [128d, 128d+128) of `out`.
  // Weights {3,1,1,3} (total 8) give block ranges [0,3) [3,4) [4,5) [5,8),
  // i.e. elements [0,192) [192,256) [256,320) [320,512).  New-minus-old:
  //   d0 gains [128,192) from d1, d3 gains [320,384) from d2 — 128 elements
  //   = 1024 bytes in 2 copies, against a 512-element (4096-byte) footprint.
  const i64 p2pBefore = rt.machineStats().bytesPeerToPeer;
  RepartitionResult r = rt.repartition("scale", Partitioning{{3, 1, 1, 3}});
  EXPECT_EQ(r.bytesMoved, 128 * 8);
  EXPECT_EQ(r.copies, 2);
  EXPECT_EQ(r.bytesFootprint, kN * 8);
  EXPECT_LT(r.bytesMoved, r.bytesFootprint);  // the minimality guarantee
  // The simulator counts *modeled* bytes (bytesPerElement-wide elements over
  // the 8-byte functional storage), so scale the storage bytes accordingly.
  EXPECT_EQ(rt.machineStats().bytesPeerToPeer - p2pBefore,
            static_cast<double>(r.bytesMoved) * rc.machine.bytesPerElement /
                8.0);
  EXPECT_EQ(rt.stats().bytesRepartitioned, r.bytesMoved);
  EXPECT_EQ(rt.stats().repartitionCopies, r.copies);

  // The migrated layout is live: the next launch under the new weights
  // produces reference results, and `out` ownership follows the new split.
  rt.launch("scale", grid, block, args);
  std::vector<double> got(kN), expect(kN);
  rt.memcpy(got.data(), vout, bytes, MemcpyKind::DeviceToHost);
  refScale(in, expect);
  EXPECT_EQ(got, expect);
  EXPECT_EQ(vout->tracker().ownerAt(0), 0);
  EXPECT_EQ(vout->tracker().ownerAt(200 * 8), 1);
  EXPECT_EQ(vout->tracker().ownerAt(300 * 8), 2);
  EXPECT_EQ(vout->tracker().ownerAt(kN * 8 - 1), 3);
}

// --------------------------------------------------------------------------
// Byte-identity sweep.

struct Snapshot {
  std::vector<double> out;
  RuntimeStats rstats;  // meta-counters zeroed
  i64 h2d = 0, d2h = 0;
};

/// Runs iterations of scale/stencil ping-pong with repartitions mid-run:
/// even -> {3,1,1,3} after iteration 1, load-shift {1,2,2,1} after 3.
Snapshot runTransitionWorkload(RuntimeConfig rc,
                               const analysis::ApplicationModel& model,
                               const ir::Module& mod) {
  const i64 bytes = kN * 8;
  Runtime rt(rc, model, mod);
  std::vector<double> in = makeInput();
  VirtualBuffer* va = rt.malloc(bytes);
  VirtualBuffer* vb = rt.malloc(bytes);
  rt.memcpy(va, in.data(), bytes, MemcpyKind::HostToDevice);

  const ir::Dim3 grid{kN / 64, 1, 1}, block{64, 1, 1};
  VirtualBuffer* src = va;
  VirtualBuffer* dst = vb;
  for (int it = 0; it < 6; ++it) {
    std::vector<LaunchArg> args = {LaunchArg::ofInt(kN),
                                   LaunchArg::ofBuffer(src),
                                   LaunchArg::ofBuffer(dst)};
    rt.launch(it % 2 == 0 ? "scale" : "stencil", grid, block, args);
    std::swap(src, dst);
    if (it == 1) rt.repartitionAll(Partitioning{{3, 1, 1, 3}});
    if (it == 3) rt.repartitionAll(Partitioning{{1, 2, 2, 1}});
  }
  rt.deviceSynchronize();

  Snapshot snap;
  snap.out.resize(kN);
  rt.memcpy(snap.out.data(), src, bytes, MemcpyKind::DeviceToHost);
  snap.rstats = rt.stats();
  snap.rstats.resolutionTasks = 0;
  snap.rstats.resolutionWallSeconds = 0;
  snap.rstats.parallelWallSeconds = 0;
  snap.rstats.fmMemoHits = snap.rstats.fmMemoMisses = 0;
  snap.rstats.fmMemoEvictions = 0;
  snap.rstats.specProgramHits = snap.rstats.specProgramMisses = 0;
  snap.rstats.specProgramEvictions = 0;
  snap.h2d = rt.machineStats().bytesHostToDevice;
  snap.d2h = rt.machineStats().bytesDeviceToHost;
  return snap;
}

TEST(RepartitionEquivalence, TransitionsAreByteIdenticalAcrossAllKnobs) {
  ir::Module mod = buildWorkload();
  analysis::ApplicationModel model = analysis::analyzeModule(mod);

  // CPU reference for the 6-iteration ping-pong.
  std::vector<double> a = makeInput(), b(kN, 0.0);
  for (int it = 0; it < 6; ++it) {
    if (it % 2 == 0)
      refScale(a, b);
    else
      refStencil(a, b);
    std::swap(a, b);
  }

  using Key = std::tuple<bool, bool, int, int>;  // sched, cache, threads, depth
  std::map<Key, Snapshot> snaps;
  for (bool sched : {false, true})
    for (bool cache : {true, false})
      for (int threads : {0, 4})
        for (int depth : {0, 2}) {
          RuntimeConfig rc = baseConfig(4);
          rc.transferScheduling = sched;
          rc.enableEnumerationCache = cache;
          rc.resolutionThreads = threads;
          rc.pipelineDepth = depth;
          snaps.emplace(Key{sched, cache, threads, depth},
                        runTransitionWorkload(rc, model, mod));
        }

  for (const auto& [key, snap] : snaps) {
    const auto& [sched, cache, threads, depth] = key;
    SCOPED_TRACE("sched=" + std::to_string(sched) + " cache=" +
                 std::to_string(cache) + " threads=" + std::to_string(threads) +
                 " depth=" + std::to_string(depth));
    EXPECT_EQ(snap.out, a) << "diverged from the CPU reference";
    const Snapshot& ref = snaps.at(Key{false, true, 0, 0});
    EXPECT_EQ(snap.h2d, ref.h2d);
    EXPECT_EQ(snap.d2h, ref.d2h);
    EXPECT_GT(snap.rstats.repartitions, 0);
    // Full stats determinism across the engine knobs (threads, depth) at
    // fixed data-movement knobs (sched, cache).
    const Snapshot& serial = snaps.at(Key{sched, cache, 0, 0});
    EXPECT_EQ(snap.rstats, serial.rstats);
  }
}

// --------------------------------------------------------------------------
// Elasticity: growing and shrinking the active device set mid-run.

TEST(Repartition, ElasticShrinkAndGrowKeepsResultsExact) {
  ir::Module mod = buildWorkload();
  Runtime rt(baseConfig(4), analysis::analyzeModule(mod), mod);
  const i64 bytes = kN * 8;
  std::vector<double> in = makeInput();
  VirtualBuffer* va = rt.malloc(bytes);
  VirtualBuffer* vb = rt.malloc(bytes);
  rt.memcpy(va, in.data(), bytes, MemcpyKind::HostToDevice);

  const ir::Dim3 grid{kN / 64, 1, 1}, block{64, 1, 1};
  VirtualBuffer* src = va;
  VirtualBuffer* dst = vb;
  const std::vector<Partitioning> phases = {
      Partitioning::even(4),          // all four devices
      Partitioning{{1, 1, 0, 0}},     // shrink to two
      Partitioning{{1, 1, 1, 1}},     // grow back to four
      Partitioning{{0, 2, 1, 0}},     // shrink to the middle pair, skewed
  };
  std::vector<double> expect = in, tmp(kN, 0.0);
  for (std::size_t ph = 0; ph < phases.size(); ++ph) {
    if (ph > 0) rt.repartitionAll(phases[ph]);
    for (int it = 0; it < 2; ++it) {
      std::vector<LaunchArg> args = {LaunchArg::ofInt(kN),
                                     LaunchArg::ofBuffer(src),
                                     LaunchArg::ofBuffer(dst)};
      rt.launch("scale", grid, block, args);
      std::swap(src, dst);
      refScale(expect, tmp);
      std::swap(expect, tmp);
    }
  }
  rt.deviceSynchronize();
  std::vector<double> got(kN);
  rt.memcpy(got.data(), src, bytes, MemcpyKind::DeviceToHost);
  EXPECT_EQ(got, expect);
  // During the last phase only devices 1 and 2 computed: the final output
  // buffer's owners are drawn from {1, 2}.
  src->tracker().query(0, bytes, [&](i64, i64, Owner o) {
    EXPECT_TRUE(o == 1 || o == 2) << "owner " << o;
  });
}

// --------------------------------------------------------------------------
// Load rebalancing on a heterogeneous machine.

TEST(Repartition, LoadBalancedPartitioningShiftsWorkOffTheSlowDevice) {
  RuntimeConfig rc = baseConfig(4);
  // Compute-bound regime (kernel time far above launch latency), with
  // device 0 sustaining a quarter of the FLOP/s of its peers.
  rc.machine.device.flops = 1e5;
  rc.machine.perDevice.assign(4, rc.machine.device);
  rc.machine.perDevice[0].flops = rc.machine.device.flops / 4;
  ir::Module mod = buildWorkload();
  Runtime rt(rc, analysis::analyzeModule(mod), mod);

  // No measured load yet: the policy refuses to guess.
  EXPECT_EQ(rt.loadBalancedPartitioning("scale"), Partitioning::even(4));

  const i64 bytes = kN * 8;
  std::vector<double> in = makeInput();
  VirtualBuffer* vin = rt.malloc(bytes);
  VirtualBuffer* vout = rt.malloc(bytes);
  rt.memcpy(vin, in.data(), bytes, MemcpyKind::HostToDevice);
  std::vector<LaunchArg> args = {LaunchArg::ofInt(kN), LaunchArg::ofBuffer(vin),
                                 LaunchArg::ofBuffer(vout)};
  const ir::Dim3 grid{kN / 64, 1, 1}, block{64, 1, 1};
  rt.launch("scale", grid, block, args);

  Partitioning bal = rt.loadBalancedPartitioning("scale");
  // The slow device's share shrinks relative to every fast peer's, and the
  // fast peers stay balanced among themselves.
  EXPECT_LT(bal.weights[0], bal.weights[1]);
  EXPECT_EQ(bal.weights[1], bal.weights[2]);
  EXPECT_EQ(bal.weights[2], bal.weights[3]);
  EXPECT_GE(bal.weights[0], 1);  // active devices never drop to zero

  // Rebalancing improves the modeled end-to-end time of the next launch.
  RepartitionResult r = rt.repartition("scale", bal);
  EXPECT_GT(r.bytesMoved, 0);
  double t0 = rt.elapsedSeconds();
  rt.launch("scale", grid, block, args);
  rt.deviceSynchronize();
  double balanced = rt.elapsedSeconds() - t0;

  // Compare with a fresh even-split run of the same launch.
  Runtime even(rc, analysis::analyzeModule(mod), mod);
  VirtualBuffer* evin = even.malloc(bytes);
  VirtualBuffer* evout = even.malloc(bytes);
  even.memcpy(evin, in.data(), bytes, MemcpyKind::HostToDevice);
  std::vector<LaunchArg> eargs = {LaunchArg::ofInt(kN),
                                  LaunchArg::ofBuffer(evin),
                                  LaunchArg::ofBuffer(evout)};
  even.launch("scale", grid, block, eargs);  // warm-up, mirrors the first run
  double e0 = even.elapsedSeconds();
  even.launch("scale", grid, block, eargs);
  even.deviceSynchronize();
  double evenTime = even.elapsedSeconds() - e0;
  EXPECT_LT(balanced, evenTime);

  std::vector<double> got(kN), expect(kN);
  rt.memcpy(got.data(), vout, bytes, MemcpyKind::DeviceToHost);
  refScale(in, expect);
  EXPECT_EQ(got, expect);
}

}  // namespace
}  // namespace polypart::rt
