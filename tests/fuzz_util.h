#pragma once

// Shared helpers for the fuzz suites (tracker, pipeline, pset, enumerator).
//
// Every suite derives its per-case seeds from one base seed and reports the
// *case* seed on failure, so a single failing case replays without re-running
// the whole sweep:
//
//   POLYPART_FUZZ_SEED=<n> ./build/tests/pp_fuzz_tests --gtest_filter=...
//
// When POLYPART_FUZZ_SEED is set, each suite runs exactly one case with that
// seed (replay mode) instead of its full sweep.

#include <cstdint>
#include <string>

#include "support/env.h"
#include "support/rng.h"

namespace polypart::fuzz {

/// True when POLYPART_FUZZ_SEED pins a single case for replay (empty string
/// counts as unset, matching every other POLYPART_* knob).
inline bool seedPinned() {
  return env::value("POLYPART_FUZZ_SEED").has_value();
}

/// The base seed: POLYPART_FUZZ_SEED when set, else the suite's default.
/// A malformed value throws (support/env.h) instead of silently running the
/// full sweep the caller thought they had pinned to one case.
inline std::uint64_t baseSeed(std::uint64_t fallback) {
  return env::u64Value("POLYPART_FUZZ_SEED").value_or(fallback);
}

/// Derives the seed of case `index` from the base seed (one SplitMix64
/// step): case seeds are decorrelated, and each is individually replayable
/// by exporting it as POLYPART_FUZZ_SEED.
inline std::uint64_t caseSeed(std::uint64_t base, int index) {
  std::uint64_t z =
      base + 0x9E3779B97F4A7C15ull * (static_cast<std::uint64_t>(index) + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

/// Number of cases to run: 1 in replay mode, `sweep` otherwise.
inline int caseCount(int sweep) { return seedPinned() ? 1 : sweep; }

/// Seed of case `index`: the pinned seed itself in replay mode.
inline std::uint64_t seedFor(std::uint64_t fallbackBase, int index) {
  std::uint64_t base = baseSeed(fallbackBase);
  return seedPinned() ? base : caseSeed(base, index);
}

/// Rng that remembers its seed and renders the replay instructions failure
/// messages carry.
class SeededRng : public Rng {
 public:
  explicit SeededRng(std::uint64_t seed) : Rng(seed), seed_(seed) {}
  std::uint64_t seed() const { return seed_; }
  std::string replay() const {
    return "seed " + std::to_string(seed_) + " (replay: POLYPART_FUZZ_SEED=" +
           std::to_string(seed_) + ")";
  }

 private:
  std::uint64_t seed_ = 0;
};

}  // namespace polypart::fuzz
