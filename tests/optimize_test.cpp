// Tests for the IR optimizer: folding rules, branch simplification, DCE, and
// the property that optimization never changes observable behaviour.

#include <gtest/gtest.h>

#include <vector>

#include "apps/kernels.h"
#include "ir/builder.h"
#include "ir/interp.h"
#include "ir/optimize.h"
#include "support/rng.h"

namespace polypart::ir {
namespace {

TEST(Optimize, FoldsConstantArithmetic) {
  ExprPtr e = iconst(3) * iconst(4) + iconst(5);
  ExprPtr f = foldExpr(e);
  ASSERT_EQ(f->kind(), Expr::Kind::IntConst);
  EXPECT_EQ(f->intValue(), 17);
}

TEST(Optimize, FoldsComparisonsAndLogic) {
  ExprPtr e = land(lt(iconst(1), iconst(2)), ge(iconst(5), iconst(5)));
  ExprPtr f = foldExpr(e);
  ASSERT_EQ(f->kind(), Expr::Kind::IntConst);
  EXPECT_EQ(f->intValue(), 1);
}

TEST(Optimize, AlgebraicIdentities) {
  ExprPtr x = Expr::local("x", Type::I64);
  EXPECT_EQ(foldExpr(x + iconst(0)), x);
  EXPECT_EQ(foldExpr(x * iconst(1)), x);
  EXPECT_EQ(foldExpr(iconst(0) + x), x);
  ExprPtr zero = foldExpr(x * iconst(0));
  ASSERT_EQ(zero->kind(), Expr::Kind::IntConst);
  EXPECT_EQ(zero->intValue(), 0);
  // Division is NOT folded for x/1? It is: x / 1 == x.
  EXPECT_EQ(foldExpr(x / iconst(1)), x);
  // But constant division by zero must not fold (runtime trap semantics).
  ExprPtr divz = iconst(4) / iconst(0);
  EXPECT_EQ(foldExpr(divz)->kind(), Expr::Kind::Binary);
}

TEST(Optimize, FoldsSelectAndCast) {
  ExprPtr sel = Expr::select(iconst(1), fconst(2.0), fconst(3.0));
  ExprPtr f = foldExpr(sel);
  ASSERT_EQ(f->kind(), Expr::Kind::FloatConst);
  EXPECT_DOUBLE_EQ(f->floatValue(), 2.0);
  ExprPtr cast = Expr::cast(Type::F64, iconst(7));
  ExprPtr fc = foldExpr(cast);
  ASSERT_EQ(fc->kind(), Expr::Kind::FloatConst);
  EXPECT_DOUBLE_EQ(fc->floatValue(), 7.0);
}

TEST(Optimize, CollapsesConstantBranches) {
  KernelBuilder b("branchy");
  auto x = b.array("x", Type::F64);
  b.iff(lt(iconst(1), iconst(2)), [&] { b.store(x, iconst(0), fconst(1.0)); },
        [&] { b.store(x, iconst(0), fconst(2.0)); });
  b.iff(lt(iconst(2), iconst(1)), [&] { b.store(x, iconst(1), fconst(3.0)); });
  KernelPtr k = b.build();
  OptimizeStats stats;
  KernelPtr opt = optimizeKernel(*k, &stats);
  EXPECT_GE(stats.simplifiedBranches, 2);
  std::string src = opt->str();
  EXPECT_EQ(src.find("if"), std::string::npos);
  EXPECT_NE(src.find("= 1;"), std::string::npos);   // kept then-branch
  EXPECT_EQ(src.find("= 2;"), std::string::npos);   // dropped else
  EXPECT_EQ(src.find("= 3;"), std::string::npos);   // dropped false branch
}

TEST(Optimize, DropsEmptyConstantLoops) {
  KernelBuilder b("looped");
  auto x = b.array("x", Type::F64);
  b.forLoop("i", iconst(5), iconst(5), [&](ExprPtr i) {
    b.store(x, i, fconst(1.0));
  });
  b.store(x, iconst(0), fconst(9.0));
  KernelPtr opt = optimizeKernel(*b.build());
  EXPECT_EQ(opt->str().find("for"), std::string::npos);
}

TEST(Optimize, EliminatesDeadLets) {
  KernelBuilder b("deadlets");
  auto x = b.array("x", Type::F64);
  b.let("unused1", iconst(1) + iconst(2));
  auto used = b.let("used", iconst(3));
  b.let("unused2", b.load(x, iconst(0)));  // loads are pure: removable
  b.store(x, used, fconst(1.0));
  OptimizeStats stats;
  KernelPtr opt = optimizeKernel(*b.build(), &stats);
  EXPECT_GE(stats.eliminatedLets, 2);
  EXPECT_EQ(opt->str().find("unused1"), std::string::npos);
  EXPECT_EQ(opt->str().find("unused2"), std::string::npos);
}

TEST(Optimize, PartitionedKernelAtOriginSimplifies) {
  // Partitioned kernels add `partMin + blockIdx`; folding cannot remove it
  // in general (partMin is an argument), but a copy specialized to constants
  // collapses.  Check at expression level: arg replaced by 0 folds away.
  ExprPtr bid = Expr::builtinVar(Builtin::BlockIdxX);
  ExprPtr e = iconst(0) + bid;
  EXPECT_EQ(foldExpr(e), bid);
}

/// Property: optimized kernels compute exactly what the originals compute.
TEST(Optimize, SemanticsPreservedOnBenchmarks) {
  Rng rng(31);
  ir::Module mod = apps::buildBenchmarkModule();
  for (const KernelPtr& k : mod.kernels()) {
    KernelPtr opt = optimizeKernel(*k);
    const i64 n = 20;
    // Allocate per-parameter buffers/scalars for both variants.
    std::vector<std::vector<double>> bufA, bufB;
    std::vector<ArgValue> argsA, argsB;
    for (const Param& p : k->params()) {
      if (p.isArray) {
        std::size_t elems = static_cast<std::size_t>(p.shape.size() == 2 ? n * n : n);
        bufA.emplace_back(elems);
        for (auto& v : bufA.back()) v = rng.uniform() + 0.1;
        bufB.push_back(bufA.back());
      } else if (p.type == Type::I64) {
        argsA.push_back(ArgValue::ofInt(n));
        argsB.push_back(ArgValue::ofInt(n));
      } else {
        argsA.push_back(ArgValue::ofFloat(0.5));
        argsB.push_back(ArgValue::ofFloat(0.5));
      }
    }
    // Bind buffers after all allocations (stable addresses).
    std::size_t bufIdx = 0;
    std::vector<ArgValue> fullA, fullB;
    std::size_t scalarIdx = 0;
    for (const Param& p : k->params()) {
      if (p.isArray) {
        fullA.push_back(ArgValue::ofBuffer(bufA[bufIdx].data(),
                                           static_cast<i64>(bufA[bufIdx].size())));
        fullB.push_back(ArgValue::ofBuffer(bufB[bufIdx].data(),
                                           static_cast<i64>(bufB[bufIdx].size())));
        ++bufIdx;
      } else {
        fullA.push_back(argsA[scalarIdx]);
        fullB.push_back(argsB[scalarIdx]);
        ++scalarIdx;
      }
    }
    LaunchConfig cfg = k->params().size() >= 4 && k->param(3).shape.size() == 2
                           ? LaunchConfig{{2, 2, 1}, {10, 10, 1}}
                           : LaunchConfig{{2, 2, 1}, {10, 10, 1}};
    // Use a 1-D launch for 1-D kernels, 2-D for 2-D ones.
    bool is2d = false;
    for (const Param& p : k->params()) is2d |= p.shape.size() == 2;
    cfg = is2d ? LaunchConfig{{2, 2, 1}, {10, 10, 1}}
               : LaunchConfig{{4, 1, 1}, {8, 1, 1}};
    execute(*k, cfg, fullA);
    execute(*opt, cfg, fullB);
    for (std::size_t i = 0; i < bufA.size(); ++i)
      EXPECT_EQ(bufA[i], bufB[i]) << "kernel " << k->name() << " buffer " << i;
  }
}

/// Property: random expression trees fold to the same value they evaluate to.
TEST(Optimize, RandomExpressionFoldingMatchesEvaluation) {
  Rng rng(77);
  for (int iter = 0; iter < 200; ++iter) {
    // Build a random integer expression tree over constants.
    std::function<ExprPtr(int)> gen = [&](int depth) -> ExprPtr {
      if (depth == 0 || rng.chance(0.3)) return iconst(rng.range(-20, 20));
      BinOp ops[] = {BinOp::Add, BinOp::Sub, BinOp::Mul, BinOp::Min, BinOp::Max,
                     BinOp::Lt, BinOp::Ge, BinOp::Eq};
      BinOp op = ops[rng.range(0, 7)];
      return Expr::binary(op, gen(depth - 1), gen(depth - 1));
    };
    ExprPtr e = gen(4);
    ExprPtr f = foldExpr(e);
    ASSERT_EQ(f->kind(), Expr::Kind::IntConst);
    // Evaluate the original through the interpreter via a tiny kernel.
    KernelBuilder b("probe");
    auto out = b.array("out", Type::I64);
    b.store(out, iconst(0), e);
    std::vector<i64> sink(1, 0);
    ArgValue args[] = {ArgValue::ofBuffer(sink.data(), 1)};
    execute(*b.build(), LaunchConfig{{1, 1, 1}, {1, 1, 1}}, args);
    EXPECT_EQ(sink[0], f->intValue());
  }
}

}  // namespace
}  // namespace polypart::ir
