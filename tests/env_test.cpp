// Environment-knob parsing tests (support/env.h and the POLYPART_* defaults
// built on it).  The contract under test: a malformed override fails fast
// with a diagnostic naming the variable and the accepted values — it never
// silently falls back to a default the user did not ask for.

#include <gtest/gtest.h>

#include <cstdlib>
#include <functional>
#include <optional>
#include <string>

#include "analysis/analyze.h"
#include "codegen/enumerator.h"
#include "fuzz_util.h"
#include "rt/runtime.h"
#include "support/env.h"
#include "support/error.h"
#include "support/trace.h"

namespace polypart {
namespace {

/// RAII environment override restoring the previous value on destruction —
/// required because check.sh legitimately runs this binary with knobs like
/// POLYPART_ALLOW_REPARTITIONING=1 already exported.
class EnvVar {
 public:
  EnvVar(const char* name, const char* value) : name_(name) {
    if (const char* old = std::getenv(name)) saved_ = old;
    if (value)
      ::setenv(name, value, 1);
    else
      ::unsetenv(name);
  }
  ~EnvVar() {
    if (saved_)
      ::setenv(name_, saved_->c_str(), 1);
    else
      ::unsetenv(name_);
  }

 private:
  const char* name_;
  std::optional<std::string> saved_;
};

std::string message(const std::function<void()>& fn) {
  try {
    fn();
  } catch (const Error& e) {
    return e.what();
  }
  return "";
}

TEST(EnvKnobs, ValueTreatsEmptyAsUnset) {
  EnvVar v("POLYPART_TEST_KNOB", nullptr);
  EXPECT_FALSE(env::value("POLYPART_TEST_KNOB").has_value());
  ::setenv("POLYPART_TEST_KNOB", "", 1);
  EXPECT_FALSE(env::value("POLYPART_TEST_KNOB").has_value());
  ::setenv("POLYPART_TEST_KNOB", "x", 1);
  EXPECT_EQ(env::value("POLYPART_TEST_KNOB"), "x");
}

TEST(EnvKnobs, FlagAcceptsAllDocumentedSpellingsAndRejectsTheRest) {
  EnvVar v("POLYPART_TEST_KNOB", nullptr);
  EXPECT_TRUE(env::flag("POLYPART_TEST_KNOB", true));
  EXPECT_FALSE(env::flag("POLYPART_TEST_KNOB", false));
  for (const char* on : {"1", "on", "true", "yes", "ON", "True", "YES"}) {
    ::setenv("POLYPART_TEST_KNOB", on, 1);
    EXPECT_TRUE(env::flag("POLYPART_TEST_KNOB", false)) << on;
  }
  for (const char* off : {"0", "off", "false", "no", "OFF", "False", "NO"}) {
    ::setenv("POLYPART_TEST_KNOB", off, 1);
    EXPECT_FALSE(env::flag("POLYPART_TEST_KNOB", true)) << off;
  }
  ::setenv("POLYPART_TEST_KNOB", "maybe", 1);
  std::string msg =
      message([] { (void)env::flag("POLYPART_TEST_KNOB", false); });
  EXPECT_NE(msg.find("POLYPART_TEST_KNOB"), std::string::npos) << msg;
  EXPECT_NE(msg.find("maybe"), std::string::npos) << msg;
  EXPECT_NE(msg.find("accepted"), std::string::npos) << msg;
}

TEST(EnvKnobs, U64ParsesDecimalAndHexAndRejectsGarbage) {
  EnvVar v("POLYPART_TEST_KNOB", nullptr);
  EXPECT_FALSE(env::u64Value("POLYPART_TEST_KNOB").has_value());
  ::setenv("POLYPART_TEST_KNOB", "42", 1);
  EXPECT_EQ(env::u64Value("POLYPART_TEST_KNOB"), u64{42});
  ::setenv("POLYPART_TEST_KNOB", "0x2a", 1);
  EXPECT_EQ(env::u64Value("POLYPART_TEST_KNOB"), u64{42});
  ::setenv("POLYPART_TEST_KNOB", "18446744073709551615", 1);
  EXPECT_EQ(env::u64Value("POLYPART_TEST_KNOB"), ~u64{0});
  for (const char* bad :
       {"pony", "12abc", "-3", "99999999999999999999999", "4.2"}) {
    ::setenv("POLYPART_TEST_KNOB", bad, 1);
    std::string msg =
        message([] { (void)env::u64Value("POLYPART_TEST_KNOB"); });
    EXPECT_NE(msg.find("POLYPART_TEST_KNOB"), std::string::npos)
        << bad << ": " << msg;
  }
}

TEST(EnvKnobs, EnumeratorTierNamesTheVariableOnBadValues) {
  EnvVar v("POLYPART_ENUMERATOR_TIER", nullptr);
  EXPECT_EQ(rt::defaultEnumeratorTier(), codegen::EnumTier::Interpret);
  ::setenv("POLYPART_ENUMERATOR_TIER", "bytecode", 1);
  EXPECT_EQ(rt::defaultEnumeratorTier(), codegen::EnumTier::Bytecode);
  ::setenv("POLYPART_ENUMERATOR_TIER", "specialized", 1);
  EXPECT_EQ(rt::defaultEnumeratorTier(), codegen::EnumTier::Specialized);
  ::setenv("POLYPART_ENUMERATOR_TIER", "turbo", 1);
  std::string msg = message([] { (void)rt::defaultEnumeratorTier(); });
  EXPECT_NE(msg.find("POLYPART_ENUMERATOR_TIER"), std::string::npos) << msg;
  EXPECT_NE(msg.find("turbo"), std::string::npos) << msg;
  EXPECT_NE(msg.find("interpret"), std::string::npos) << msg;
}

TEST(EnvKnobs, BooleanDefaultsRejectInvalidSpellings) {
  {
    EnvVar v("POLYPART_DATAFLOW_PLANNING", nullptr);
    EXPECT_FALSE(rt::defaultDataflowPlanning());
    ::setenv("POLYPART_DATAFLOW_PLANNING", "yes", 1);
    EXPECT_TRUE(rt::defaultDataflowPlanning());
    ::setenv("POLYPART_DATAFLOW_PLANNING", "2", 1);
    std::string msg = message([] { (void)rt::defaultDataflowPlanning(); });
    EXPECT_NE(msg.find("POLYPART_DATAFLOW_PLANNING"), std::string::npos) << msg;
  }
  {
    EnvVar v("POLYPART_ALLOW_REPARTITIONING", nullptr);
    EXPECT_FALSE(rt::defaultAllowRepartitioning());
    ::setenv("POLYPART_ALLOW_REPARTITIONING", "on", 1);
    EXPECT_TRUE(rt::defaultAllowRepartitioning());
    ::setenv("POLYPART_ALLOW_REPARTITIONING", "enable", 1);
    std::string msg = message([] { (void)rt::defaultAllowRepartitioning(); });
    EXPECT_NE(msg.find("POLYPART_ALLOW_REPARTITIONING"), std::string::npos)
        << msg;
  }
}

TEST(EnvKnobs, StrictAffineRestoresHardReject) {
  EnvVar v("POLYPART_STRICT_AFFINE", nullptr);
  // Default: may-access demotion is on (allowMayAccess = true).
  EXPECT_TRUE(analysis::defaultAllowMayAccess());
  ::setenv("POLYPART_STRICT_AFFINE", "1", 1);
  EXPECT_FALSE(analysis::defaultAllowMayAccess());
  ::setenv("POLYPART_STRICT_AFFINE", "off", 1);
  EXPECT_TRUE(analysis::defaultAllowMayAccess());
  ::setenv("POLYPART_STRICT_AFFINE", "2", 1);
  std::string msg = message([] { (void)analysis::defaultAllowMayAccess(); });
  EXPECT_NE(msg.find("POLYPART_STRICT_AFFINE"), std::string::npos) << msg;
}

TEST(EnvKnobs, InspectorExecutorKnob) {
  EnvVar v("POLYPART_INSPECTOR_EXECUTOR", nullptr);
  EXPECT_FALSE(rt::defaultInspectorExecutor());
  ::setenv("POLYPART_INSPECTOR_EXECUTOR", "on", 1);
  EXPECT_TRUE(rt::defaultInspectorExecutor());
  ::setenv("POLYPART_INSPECTOR_EXECUTOR", "enable", 1);
  std::string msg = message([] { (void)rt::defaultInspectorExecutor(); });
  EXPECT_NE(msg.find("POLYPART_INSPECTOR_EXECUTOR"), std::string::npos) << msg;
}

TEST(EnvKnobs, FuzzSeedPinsReplayAndRejectsGarbage) {
  EnvVar v("POLYPART_FUZZ_SEED", nullptr);
  EXPECT_FALSE(fuzz::seedPinned());
  EXPECT_EQ(fuzz::baseSeed(7), u64{7});
  ::setenv("POLYPART_FUZZ_SEED", "", 1);
  EXPECT_FALSE(fuzz::seedPinned());  // empty = unset, like every other knob
  ::setenv("POLYPART_FUZZ_SEED", "12345", 1);
  EXPECT_TRUE(fuzz::seedPinned());
  EXPECT_EQ(fuzz::baseSeed(7), u64{12345});
  EXPECT_EQ(fuzz::caseCount(100), 1);
  // The old parser silently ran the full sweep on a typo'd seed; now the
  // typo is an error naming the variable.
  ::setenv("POLYPART_FUZZ_SEED", "12x45", 1);
  std::string msg = message([] { (void)fuzz::baseSeed(7); });
  EXPECT_NE(msg.find("POLYPART_FUZZ_SEED"), std::string::npos) << msg;
}

TEST(EnvKnobs, TraceSessionRejectsUnwritablePaths) {
  if constexpr (!trace::kTracingCompiledIn) GTEST_SKIP();
  EnvVar v("POLYPART_TRACE", "/nonexistent-dir-polypart/trace.json");
  std::string msg = message([] { trace::EnvTraceSession session; });
  EXPECT_NE(msg.find("POLYPART_TRACE"), std::string::npos) << msg;
}

}  // namespace
}  // namespace polypart
