// Tests for the polynomial abstract domain of the access analysis:
// arithmetic, the blockOff substitution (paper Eq. 6), and delinearization.

#include <gtest/gtest.h>

#include "analysis/poly.h"

namespace polypart::analysis {
namespace {

PVar tidX() { return {PVar::Kind::Tid, 0}; }
PVar bidX() { return {PVar::Kind::Bid, 0}; }
PVar bidY() { return {PVar::Kind::Bid, 1}; }
PVar bdimX() { return {PVar::Kind::Param, 0}; }  // params 0..2 are blockDim
PVar bdimY() { return {PVar::Kind::Param, 1}; }
PVar boffX() { return {PVar::Kind::Boff, 0}; }
PVar paramN() { return {PVar::Kind::Param, 6}; }

TEST(Poly, ArithmeticBasics) {
  Poly a = Poly::constant(3) + Poly::var(tidX()) * Poly::constant(2);
  Poly b = Poly::var(tidX()) * Poly::constant(-2);
  Poly sum = a + b;
  EXPECT_EQ(sum.asConstant(), std::optional<i64>(3));
  EXPECT_TRUE((a - a).isZero());
  EXPECT_EQ((Poly::constant(0)).asConstant(), std::optional<i64>(0));
  EXPECT_FALSE(a.asConstant().has_value());
}

TEST(Poly, ProductsAreSortedMonomials) {
  Poly p = Poly::var(bidX()) * Poly::var(bdimX());
  Poly q = Poly::var(bdimX()) * Poly::var(bidX());
  EXPECT_EQ((p - q).isZero(), true);  // canonical monomial ordering
}

TEST(Poly, BlockOffSubstitution) {
  // tid + bid*bdim -> tid + boff (Eq. 6).
  Poly globalId = Poly::var(tidX()) + Poly::var(bidX()) * Poly::var(bdimX());
  Poly subst = globalId.substituteBlockOffsets();
  Poly expect = Poly::var(tidX()) + Poly::var(boffX());
  EXPECT_TRUE((subst - expect).isZero());
  EXPECT_TRUE(subst.isAffine());
}

TEST(Poly, BlockOffSubstitutionIsPerAxis) {
  // bid.x * bdim.y is NOT a blockOff: axes must match.
  Poly cross = Poly::var(bidX()) * Poly::var(bdimY());
  EXPECT_TRUE((cross.substituteBlockOffsets() - cross).isZero());
  EXPECT_FALSE(cross.isAffine());
  // bid.y * bdim.y is.
  Poly straight = Poly::var(bidY()) * Poly::var(bdimY());
  Poly sub = straight.substituteBlockOffsets();
  EXPECT_TRUE(sub.isAffine());
}

TEST(Poly, NestedBlockOffInsideProduct) {
  // (bid*bdim) * N -> boff * N: still one substitution inside a larger
  // monomial (which stays non-affine: dim * param).
  Poly p = Poly::var(bidX()) * Poly::var(bdimX()) * Poly::var(paramN());
  Poly sub = p.substituteBlockOffsets();
  Poly expect = Poly::var(boffX()) * Poly::var(paramN());
  EXPECT_TRUE((sub - expect).isZero());
  EXPECT_FALSE(sub.isAffine());
}

TEST(Poly, DelinearizeRowMajor2D) {
  // flat = (tid + boff) * N + tid2 against shape [N, N].
  Poly row = Poly::var(tidX()) + Poly::var(boffX());
  Poly col = Poly::var({PVar::Kind::Tid, 1});
  Poly flat = row * Poly::var(paramN()) + col;
  auto subs = delinearize(flat, {Poly::var(paramN()), Poly::var(paramN())});
  ASSERT_TRUE(subs.has_value());
  ASSERT_EQ(subs->size(), 2u);
  EXPECT_TRUE(((*subs)[0] - row).isZero());
  EXPECT_TRUE(((*subs)[1] - col).isZero());
}

TEST(Poly, DelinearizeConstantInnerDim) {
  // Array-of-struct layout: flat = i*4 + k with shape [N, 4].
  Poly i = Poly::var(tidX());
  Poly k = Poly::var({PVar::Kind::Loop, 0});
  Poly flat = i * Poly::constant(4) + k;
  auto subs = delinearize(flat, {Poly::var(paramN()), Poly::constant(4)});
  ASSERT_TRUE(subs.has_value());
  EXPECT_TRUE(((*subs)[0] - i).isZero());
  EXPECT_TRUE(((*subs)[1] - k).isZero());
}

TEST(Poly, Delinearize3D) {
  // flat = ((z*N)+y)*M + x with shape [K, N, M] where N, M are params.
  PVar n = paramN();
  PVar m = {PVar::Kind::Param, 7};
  Poly z = Poly::var({PVar::Kind::Tid, 2});
  Poly y = Poly::var({PVar::Kind::Tid, 1});
  Poly x = Poly::var(tidX());
  Poly flat = (z * Poly::var(n) + y) * Poly::var(m) + x;
  auto subs = delinearize(flat, {Poly::var({PVar::Kind::Param, 8}), Poly::var(n),
                                 Poly::var(m)});
  ASSERT_TRUE(subs.has_value());
  ASSERT_EQ(subs->size(), 3u);
  EXPECT_TRUE(((*subs)[0] - z).isZero());
  EXPECT_TRUE(((*subs)[1] - y).isZero());
  EXPECT_TRUE(((*subs)[2] - x).isZero());
}

TEST(Poly, DelinearizeFailsOnNonAffineResidue) {
  // flat = tid * tid cannot be a row-major index of any declared shape.
  Poly flat = Poly::var(tidX()) * Poly::var(tidX());
  auto subs = delinearize(flat, {Poly::var(paramN()), Poly::var(paramN())});
  EXPECT_FALSE(subs.has_value());
  // And a 1-D "shape" check: non-affine stays non-affine.
  auto flat1d = delinearize(flat, {Poly::var(paramN())});
  EXPECT_FALSE(flat1d.has_value());
}

TEST(Poly, DelinearizeOneDimensionalPassThrough) {
  Poly flat = Poly::var(tidX()) + Poly::var(boffX());
  auto subs = delinearize(flat, {Poly::var(paramN())});
  ASSERT_TRUE(subs.has_value());
  ASSERT_EQ(subs->size(), 1u);
  EXPECT_TRUE(((*subs)[0] - flat).isZero());
}

TEST(Poly, DivideByMonomial) {
  // 6*N*tid + 3*tid + N -> divide by N: quotient 6*tid + 1? No: the N term
  // has coefficient 1 divisible by 3? Divide by (N, coef 3):
  Poly p = Poly::var(paramN()) * Poly::var(tidX()) * Poly::constant(6) +
           Poly::var(tidX()) * Poly::constant(3) + Poly::var(paramN());
  auto dv = p.divideByMonomial({paramN()}, 3);
  // 6*N*tid is divisible by 3*N -> quotient 2*tid; N alone has coef 1, not
  // divisible by 3 -> remainder keeps it; 3*tid lacks the N factor.
  Poly expectQ = Poly::var(tidX()) * Poly::constant(2);
  Poly expectR = Poly::var(tidX()) * Poly::constant(3) + Poly::var(paramN());
  EXPECT_TRUE((dv.quotient - expectQ).isZero());
  EXPECT_TRUE((dv.remainder - expectR).isZero());
}

TEST(Poly, StrIsReadable) {
  Poly p = Poly::var(tidX()) * Poly::constant(2) + Poly::constant(5);
  std::string s = p.str();
  EXPECT_NE(s.find("2*tx"), std::string::npos);
  EXPECT_NE(s.find("5"), std::string::npos);
}

}  // namespace
}  // namespace polypart::analysis
