// Equivalence tests for the launch-plan enumeration cache
// (rt::RuntimeConfig::enableEnumerationCache): only the pure enumeration is
// memoized — tracker queries, transfer decisions, and tracker updates stay
// live — so repeated launches must produce byte-identical buffers and
// identical resolution/transfer statistics with the cache on or off.

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "analysis/analyze.h"
#include "apps/drivers.h"
#include "apps/kernels.h"
#include "apps/reference.h"
#include "ir/builder.h"
#include "rt/runtime.h"
#include "support/rng.h"

namespace polypart::rt {
namespace {

using analysis::ApplicationModel;

RuntimeConfig cacheCfg(int gpus, bool cache) {
  RuntimeConfig cfg;
  cfg.numGpus = gpus;
  cfg.mode = sim::ExecutionMode::Functional;
  cfg.enableEnumerationCache = cache;
  return cfg;
}

TEST(EnumCache, HotspotRepeatedLaunchesAreBitIdentical) {
  ir::Module mod = apps::buildBenchmarkModule();
  ApplicationModel model = analysis::analyzeModule(mod);
  // n = 64 gives a 4x4 grid: every GPU count below yields a non-empty
  // partition per device, so the first launch misses exactly `gpus` times.
  const i64 n = 64;
  const int iters = 9;
  Rng rng(31);
  std::vector<double> init(static_cast<std::size_t>(n * n));
  std::vector<double> power(static_cast<std::size_t>(n * n));
  for (auto& v : init) v = rng.uniform() * 100.0;
  for (auto& v : power) v = rng.uniform();

  for (int gpus : {1, 3, 4}) {
    auto run = [&](bool cache) {
      Runtime rt(cacheCfg(gpus, cache), model, mod);
      std::vector<double> temp = init;
      apps::runHotspot(rt, n, iters, temp.data(), power.data());
      return std::make_pair(temp, rt.stats());
    };
    auto [tempOff, statsOff] = run(false);
    auto [tempOn, statsOn] = run(true);
    EXPECT_EQ(tempOn, tempOff) << gpus << " GPUs";
    // The replayed plans feed the trackers the same ranges the live
    // enumeration would, so the resolution and transfer counters agree.
    EXPECT_EQ(statsOn.peerCopies, statsOff.peerCopies) << gpus;
    EXPECT_EQ(statsOn.rangesResolved, statsOff.rangesResolved) << gpus;
    EXPECT_EQ(statsOn.logicalRowsResolved, statsOff.logicalRowsResolved) << gpus;
    EXPECT_EQ(statsOff.enumCacheHits, 0);
    EXPECT_EQ(statsOff.enumCacheMisses, 0);
    EXPECT_GT(statsOn.enumCacheHits, 0) << gpus;
    EXPECT_GT(statsOn.enumCacheMisses, 0) << gpus;
    // The iterative ping-pong relaunches one configuration: after the first
    // launch materializes a plan per partition, everything is a hit.
    EXPECT_EQ(statsOn.enumCacheMisses, gpus) << gpus;
    EXPECT_EQ(statsOn.enumCacheEvictions, 0) << gpus;
  }
}

TEST(EnumCache, MatmulMatchesReferenceWithCache) {
  ir::Module mod = apps::buildBenchmarkModule();
  ApplicationModel model = analysis::analyzeModule(mod);
  const i64 n = 32;
  Rng rng(5);
  std::vector<double> a(static_cast<std::size_t>(n * n));
  std::vector<double> b(static_cast<std::size_t>(n * n));
  for (auto& v : a) v = rng.uniform();
  for (auto& v : b) v = rng.uniform();
  std::vector<double> expect(static_cast<std::size_t>(n * n));
  apps::refMatmul(n, a, b, expect);

  for (int gpus : {1, 3, 8}) {
    auto run = [&](bool cache) {
      Runtime rt(cacheCfg(gpus, cache), model, mod);
      std::vector<double> c(static_cast<std::size_t>(n * n), -1.0);
      apps::runMatmul(rt, n, a.data(), b.data(), c.data());
      return std::make_pair(c, rt.stats());
    };
    auto [cOff, statsOff] = run(false);
    auto [cOn, statsOn] = run(true);
    EXPECT_EQ(cOn, expect) << gpus << " GPUs";
    EXPECT_EQ(cOn, cOff) << gpus << " GPUs";
    EXPECT_EQ(statsOn.peerCopies, statsOff.peerCopies) << gpus;
    EXPECT_EQ(statsOn.rangesResolved, statsOff.rangesResolved) << gpus;
    // A one-shot launch still replays its plan in the tracker-update loop.
    EXPECT_GT(statsOn.enumCacheHits, 0) << gpus;
  }
}

TEST(EnumCache, InstrumentedScatterIsUnaffectedByCache) {
  // Instrumented writes bypass the enumerators entirely; the static read
  // maps (idx, in) still go through the cache.
  ir::KernelBuilder kb("scatter");
  auto n = kb.scalar("n", ir::Type::I64);
  auto idx = kb.array("idx", ir::Type::I64, {n});
  auto in = kb.array("in", ir::Type::F64, {n});
  auto out = kb.array("out", ir::Type::F64, {n});
  auto i = kb.let("i", kb.globalId(ir::Axis::X));
  kb.iff(ir::lt(i, n), [&] { kb.store(out, kb.load(idx, i), kb.load(in, i)); });
  ir::Module mod;
  mod.addKernel(kb.build());
  analysis::AnalysisOptions opts;
  opts.allowInstrumentedWrites = true;
  ApplicationModel model = analysis::analyzeModule(mod, opts);

  const i64 count = 512;
  Rng rng(17);
  std::vector<i64> perm(static_cast<std::size_t>(count));
  std::iota(perm.begin(), perm.end(), 0);
  for (i64 k = count - 1; k > 0; --k)
    std::swap(perm[static_cast<std::size_t>(k)],
              perm[static_cast<std::size_t>(rng.range(0, k))]);
  std::vector<double> src(static_cast<std::size_t>(count));
  for (i64 k = 0; k < count; ++k)
    src[static_cast<std::size_t>(k)] = 100.0 + static_cast<double>(k);

  for (int gpus : {1, 4}) {
    auto run = [&](bool cache) {
      Runtime rt(cacheCfg(gpus, cache), model, mod);
      VirtualBuffer* dIdx = rt.malloc(count * 8);
      VirtualBuffer* dIn = rt.malloc(count * 8);
      VirtualBuffer* dOut = rt.malloc(count * 8);
      rt.memcpy(dIdx, perm.data(), count * 8, MemcpyKind::HostToDevice);
      rt.memcpy(dIn, src.data(), count * 8, MemcpyKind::HostToDevice);
      LaunchArg args[] = {LaunchArg::ofInt(count), LaunchArg::ofBuffer(dIdx),
                          LaunchArg::ofBuffer(dIn), LaunchArg::ofBuffer(dOut)};
      // Launch twice so read plans are replayed against evolved trackers.
      rt.launch("scatter", {count / 64, 1, 1}, {64, 1, 1}, args);
      rt.launch("scatter", {count / 64, 1, 1}, {64, 1, 1}, args);
      std::vector<double> host(static_cast<std::size_t>(count), -1.0);
      rt.memcpy(host.data(), dOut, count * 8, MemcpyKind::DeviceToHost);
      return std::make_pair(host, rt.stats());
    };
    auto [outOff, statsOff] = run(false);
    auto [outOn, statsOn] = run(true);
    EXPECT_EQ(outOn, outOff) << gpus << " GPUs";
    EXPECT_EQ(statsOn.peerCopies, statsOff.peerCopies) << gpus;
    EXPECT_EQ(statsOn.rangesResolved, statsOff.rangesResolved) << gpus;
    EXPECT_GT(statsOn.enumCacheHits, 0) << gpus;
    for (i64 k = 0; k < count; ++k)
      ASSERT_EQ(outOn[static_cast<std::size_t>(perm[static_cast<std::size_t>(k)])],
                src[static_cast<std::size_t>(k)]);
  }
}

TEST(EnumCache, SharedCopyTrackingComposesWithCache) {
  // Sharer-set decisions are made against the live tracker during replay,
  // so the shared-copy extension behaves identically with the cache on.
  ir::Module mod = apps::buildBenchmarkModule();
  ApplicationModel model = analysis::analyzeModule(mod);
  const i64 n = 256;
  auto run = [&](bool cache) {
    RuntimeConfig cfg = cacheCfg(4, cache);
    cfg.trackSharedCopies = true;
    Runtime rt(cfg, model, mod);
    std::vector<double> px(n, 1), py(n, 2), pz(n, 3), vx(n, 0), vy(n, 0),
        vz(n, 0), mass(n, 1);
    apps::NBodyState st{px.data(), py.data(), pz.data(),
                        vx.data(), vy.data(), vz.data(), mass.data()};
    apps::runNBody(rt, n, 4, st);
    return std::make_pair(px, rt.stats());
  };
  auto [pxOff, statsOff] = run(false);
  auto [pxOn, statsOn] = run(true);
  EXPECT_EQ(pxOn, pxOff);
  EXPECT_EQ(statsOn.sharedCopyHits, statsOff.sharedCopyHits);
  EXPECT_EQ(statsOn.peerCopies, statsOff.peerCopies);
  EXPECT_GT(statsOn.sharedCopyHits, 0);
  EXPECT_GT(statsOn.enumCacheHits, 0);
}

TEST(EnumCache, BoundedCacheEvictsFifoAndStaysCorrect) {
  ir::Module mod = apps::buildBenchmarkModule();
  ApplicationModel model = analysis::analyzeModule(mod);
  const i64 n = 64;  // 4x4 grid: four non-empty partitions on four GPUs
  const int iters = 6;
  Rng rng(77);
  std::vector<double> init(static_cast<std::size_t>(n * n));
  std::vector<double> power(static_cast<std::size_t>(n * n));
  for (auto& v : init) v = rng.uniform() * 50.0;
  for (auto& v : power) v = rng.uniform();

  auto run = [&](bool cache, i64 capacity) {
    RuntimeConfig cfg = cacheCfg(4, cache);
    cfg.enumerationCachePlansPerKernel = capacity;
    Runtime rt(cfg, model, mod);
    std::vector<double> temp = init;
    apps::runHotspot(rt, n, iters, temp.data(), power.data());
    return std::make_pair(temp, rt.stats());
  };
  auto [tempOff, statsOff] = run(false, 64);
  // A capacity of 1 cannot hold the four per-partition plans of one launch:
  // every lookup evicts, so the cache degrades to materialize-and-replay
  // but must stay functionally identical.
  auto [tempTiny, statsTiny] = run(true, 1);
  EXPECT_EQ(tempTiny, tempOff);
  EXPECT_EQ(statsTiny.peerCopies, statsOff.peerCopies);
  EXPECT_EQ(statsTiny.rangesResolved, statsOff.rangesResolved);
  EXPECT_GT(statsTiny.enumCacheEvictions, 0);
  // A roomy cache holds all plans: misses only on the first launch and no
  // evictions.
  auto [tempBig, statsBig] = run(true, 64);
  EXPECT_EQ(tempBig, tempOff);
  EXPECT_EQ(statsBig.enumCacheEvictions, 0);
  EXPECT_EQ(statsBig.enumCacheMisses, 4);
}

}  // namespace
}  // namespace polypart::rt
