// Irregular-workload battery for the may-access tier (DESIGN.md "May-access
// tier & inspector–executor").
//
// Three data-dependent kernels — CSR sparse matvec (indirect gather), BFS
// push (indirect scatter), histogram (data-dependent read-modify-write) —
// must match their CPU references bit-for-bit under BOTH runtime fallback
// modes (conservative whole-buffer sharing and the inspector–executor) for
// every engine-knob combination, the same contract sweep_test.cpp pins for
// the affine benchmarks.  On top of byte-identity:
//   - the analysis demotes exactly the irregular arguments (nothing else),
//   - the inspection walk touches exactly the accesses the kernel performs,
//   - repeated launches hit the inspection cache; writing an indirection
//     buffer between launches invalidates it (the stale-footprint bug class),
//   - the inspector moves strictly fewer peer bytes than whole-buffer
//     sharing on a banded matrix at 8+ GPUs,
//   - repartition() and checkpoint()/recoverDevice() handle may-access
//     kernels (conservatively shared writes are covered by checkpoints).

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "analysis/analyze.h"
#include "apps/drivers.h"
#include "apps/kernels.h"
#include "apps/reference.h"
#include "rt/checkpoint.h"
#include "rt/runtime.h"
#include "support/rng.h"

namespace polypart::rt {
namespace {

const ir::Module& irregularModule() {
  static ir::Module m = apps::buildIrregularModule();
  return m;
}

const analysis::ApplicationModel& irregularModel() {
  static analysis::ApplicationModel m = analysis::analyzeModule(irregularModule());
  return m;
}

/// Explicit inspector flag everywhere: check.sh legitimately runs this
/// binary with POLYPART_INSPECTOR_EXECUTOR=1 exported.
RuntimeConfig irregularConfig(int gpus, bool inspector) {
  RuntimeConfig cfg;
  cfg.numGpus = gpus;
  cfg.mode = sim::ExecutionMode::Functional;
  cfg.inspectorExecutor = inspector;
  return cfg;
}

struct Csr {
  i64 n = 0;  // square: nrows == ncols
  std::vector<i64> rowPtr;
  std::vector<i64> colIdx;
  std::vector<double> vals;
  i64 nnz() const { return static_cast<i64>(colIdx.size()); }
  apps::CsrMatrix view() const {
    return apps::CsrMatrix{n, n, nnz(), rowPtr.data(), colIdx.data(),
                           vals.data()};
  }
};

/// Banded matrix: row r holds [max(0, r-band), min(n, r+band+1)).  A row
/// partition's gather footprint is its band neighbourhood — the geometry
/// where the inspector's win over whole-buffer sharing is largest.
Csr makeBandedCsr(i64 n, i64 band, Rng& rng) {
  Csr a;
  a.n = n;
  a.rowPtr.reserve(static_cast<std::size_t>(n + 1));
  a.rowPtr.push_back(0);
  for (i64 r = 0; r < n; ++r) {
    const i64 lo = std::max<i64>(0, r - band);
    const i64 hi = std::min<i64>(n, r + band + 1);
    for (i64 c = lo; c < hi; ++c) {
      a.colIdx.push_back(c);
      a.vals.push_back(rng.uniform() - 0.5);
    }
    a.rowPtr.push_back(a.nnz());
  }
  return a;
}

std::vector<double> makeVector(i64 n, Rng& rng) {
  std::vector<double> v(static_cast<std::size_t>(n));
  for (auto& x : v) x = rng.uniform() * 2 - 1;
  return v;
}

// --------------------------------------------------------------------------
// Analysis contract: exactly the irregular arguments demote.

TEST(Irregular, ModelDemotesExactlyTheIrregularArgs) {
  const analysis::ApplicationModel& app = irregularModel();

  // spmv(nrows, ncols, nnz, row_ptr, col_idx, vals, x, y): only the gather
  // operand x is may-access; row_ptr stays affine, col_idx/vals become
  // inexact whole-extent reads (dynamic loop bounds), y stays an exact
  // affine write.
  const analysis::KernelModel* spmv = app.find("spmv");
  ASSERT_NE(spmv, nullptr);
  EXPECT_FALSE(spmv->arrayFor(3)->readMayAccess);  // row_ptr
  EXPECT_TRUE(spmv->arrayFor(3)->read.exact());
  EXPECT_FALSE(spmv->arrayFor(4)->readMayAccess);  // col_idx
  EXPECT_FALSE(spmv->arrayFor(4)->read.exact());
  EXPECT_FALSE(spmv->arrayFor(5)->readMayAccess);  // vals
  EXPECT_TRUE(spmv->arrayFor(6)->readMayAccess);   // x
  EXPECT_FALSE(spmv->arrayFor(6)->writeMayAccess);
  EXPECT_NE(spmv->arrayFor(6)->mayAccessWhy.find("x"), std::string::npos)
      << spmv->arrayFor(6)->mayAccessWhy;
  EXPECT_TRUE(spmv->arrayFor(7)->hasWrites());  // y
  EXPECT_FALSE(spmv->arrayFor(7)->writeMayAccess);

  // bfs_push(nfront, nnodes, nedges, front, row_ptr, col_idx, next):
  // row_ptr is indexed through the frontier (may-read, inspectable), next
  // is an indirect scatter (may-write).
  const analysis::KernelModel* bfs = app.find("bfs_push");
  ASSERT_NE(bfs, nullptr);
  EXPECT_FALSE(bfs->arrayFor(3)->readMayAccess);  // front: affine
  EXPECT_TRUE(bfs->arrayFor(3)->read.exact());
  EXPECT_TRUE(bfs->arrayFor(4)->readMayAccess);   // row_ptr
  EXPECT_FALSE(bfs->arrayFor(5)->readMayAccess);  // col_idx: clamped
  EXPECT_TRUE(bfs->arrayFor(6)->writeMayAccess);  // next
  EXPECT_FALSE(bfs->arrayFor(6)->hasWrites());

  // histogram(n, nbins, keys, hist): hist demotes on both sides (RMW).
  const analysis::KernelModel* hist = app.find("histogram");
  ASSERT_NE(hist, nullptr);
  EXPECT_FALSE(hist->arrayFor(2)->readMayAccess);  // keys: affine
  EXPECT_TRUE(hist->arrayFor(3)->readMayAccess);
  EXPECT_TRUE(hist->arrayFor(3)->writeMayAccess);
}

// --------------------------------------------------------------------------
// Differential byte-identity, both fallback modes.

class IrregularModes : public ::testing::TestWithParam<bool> {};

TEST_P(IrregularModes, SpmvMatchesCpuReference) {
  const bool inspector = GetParam();
  Rng rng(411);
  const i64 n = 300;
  Csr a = makeBandedCsr(n, 7, rng);
  std::vector<double> x = makeVector(n, rng);
  std::vector<double> expect(static_cast<std::size_t>(n));
  apps::refSpmv(a.rowPtr, a.colIdx, a.vals, x, expect);

  for (int gpus : {1, 2, 3, 4, 8}) {
    Runtime rt(irregularConfig(gpus, inspector), irregularModel(),
               irregularModule());
    std::vector<double> got(static_cast<std::size_t>(n), -9.0);
    apps::runSpmv(rt, a.view(), x.data(), got.data());
    ASSERT_EQ(got, expect) << gpus << " GPUs, inspector=" << inspector;
    EXPECT_GT(rt.stats().mayAccessLaunches, 0);
    if (inspector) {
      EXPECT_EQ(rt.stats().inspectorRuns, 1);
      // The walk touches x exactly once per nonzero.
      EXPECT_EQ(rt.stats().inspectedElements, a.nnz());
    } else {
      EXPECT_EQ(rt.stats().inspectorRuns, 0);
    }
  }
}

TEST_P(IrregularModes, BfsPushMatchesCpuReference) {
  const bool inspector = GetParam();
  Rng rng(412);
  const i64 n = 257;
  Csr g = makeBandedCsr(n, 5, rng);
  // Frontier with duplicates and out-of-order nodes.
  const i64 nfront = 61;
  std::vector<i64> front(static_cast<std::size_t>(nfront));
  for (auto& u : front) u = rng.range(0, n - 1);
  std::vector<double> expect(static_cast<std::size_t>(n), 0.0);
  apps::refBfsPush(g.rowPtr, g.colIdx, front, expect);

  for (int gpus : {1, 3, 8}) {
    Runtime rt(irregularConfig(gpus, inspector), irregularModel(),
               irregularModule());
    std::vector<double> got(static_cast<std::size_t>(n), 0.0);
    apps::runBfsPush(rt, n, g.nnz(), g.rowPtr.data(), g.colIdx.data(), nfront,
                     front.data(), got.data());
    ASSERT_EQ(got, expect) << gpus << " GPUs, inspector=" << inspector;
    if (inspector) {
      EXPECT_EQ(rt.stats().inspectorRuns, 1);
      // row_ptr is read twice per frontier thread (lo and hi).
      EXPECT_EQ(rt.stats().inspectedElements, 2 * nfront);
    }
  }
}

TEST_P(IrregularModes, HistogramMatchesCpuReference) {
  const bool inspector = GetParam();
  Rng rng(413);
  const i64 nkeys = 500;
  const i64 nbins = 37;
  std::vector<i64> keys(static_cast<std::size_t>(nkeys));
  for (auto& k : keys) k = rng.range(0, nbins - 1);
  std::vector<double> expect(static_cast<std::size_t>(nbins), 0.0);
  apps::refHistogram(keys, expect);

  for (int gpus : {1, 3, 8}) {
    Runtime rt(irregularConfig(gpus, inspector), irregularModel(),
               irregularModule());
    std::vector<double> got(static_cast<std::size_t>(nbins), 0.0);
    apps::runHistogram(rt, nkeys, nbins, keys.data(), got.data());
    ASSERT_EQ(got, expect) << gpus << " GPUs, inspector=" << inspector;
    // hist is read-modify-write: no inspectable (read-only may-access)
    // argument exists, so the inspector never runs — the serialized
    // pre-partition gather path handles it in both modes.
    EXPECT_EQ(rt.stats().inspectorRuns, 0);
    EXPECT_GT(rt.stats().mayAccessLaunches, 0);
  }
}

INSTANTIATE_TEST_SUITE_P(BothModes, IrregularModes, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "Inspector" : "WholeBuffer";
                         });

// --------------------------------------------------------------------------
// Full knob sweep: inspectorExecutor x enumerationCache x resolutionThreads
// x pipelineDepth x dataflowPlanning, all three workloads.  Bytes compare
// against the CPU reference everywhere; the deterministic stats must be
// engine-invariant within each (inspector, cache, planning) cell (threads
// and depth may never perturb them).

TEST(Irregular, ByteIdenticalAcrossAllKnobs) {
  Rng rng(414);
  const i64 n = 193;
  Csr a = makeBandedCsr(n, 4, rng);
  std::vector<double> x = makeVector(n, rng);
  const i64 nfront = 41;
  std::vector<i64> front(static_cast<std::size_t>(nfront));
  for (auto& u : front) u = rng.range(0, n - 1);
  const i64 nkeys = 200, nbins = 23;
  std::vector<i64> keys(static_cast<std::size_t>(nkeys));
  for (auto& k : keys) k = rng.range(0, nbins - 1);

  std::vector<double> expSpmv(static_cast<std::size_t>(n));
  apps::refSpmv(a.rowPtr, a.colIdx, a.vals, x, expSpmv);
  std::vector<double> expBfs(static_cast<std::size_t>(n), 0.0);
  apps::refBfsPush(a.rowPtr, a.colIdx, front, expBfs);
  std::vector<double> expHist(static_cast<std::size_t>(nbins), 0.0);
  apps::refHistogram(keys, expHist);

  auto run = [&](bool inspector, bool cache, int threads, int depth,
                 bool planning, RuntimeStats* statsOut) {
    RuntimeConfig cfg = irregularConfig(4, inspector);
    cfg.enableEnumerationCache = cache;
    cfg.resolutionThreads = threads;
    cfg.pipelineDepth = depth;
    cfg.dataflowPlanning = planning;
    Runtime rt(cfg, irregularModel(), irregularModule());

    std::vector<double> gotSpmv(static_cast<std::size_t>(n), -9.0);
    apps::runSpmv(rt, a.view(), x.data(), gotSpmv.data());
    std::vector<double> gotBfs(static_cast<std::size_t>(n), 0.0);
    apps::runBfsPush(rt, n, a.nnz(), a.rowPtr.data(), a.colIdx.data(), nfront,
                     front.data(), gotBfs.data());
    std::vector<double> gotHist(static_cast<std::size_t>(nbins), 0.0);
    apps::runHistogram(rt, nkeys, nbins, keys.data(), gotHist.data());

    EXPECT_EQ(gotSpmv, expSpmv);
    EXPECT_EQ(gotBfs, expBfs);
    EXPECT_EQ(gotHist, expHist);

    RuntimeStats s = rt.stats();
    s.resolutionTasks = 0;
    s.resolutionWallSeconds = 0;
    s.parallelWallSeconds = 0;
    s.fmMemoHits = s.fmMemoMisses = s.fmMemoEvictions = 0;
    s.specProgramHits = s.specProgramMisses = s.specProgramEvictions = 0;
    *statsOut = s;
  };

  for (bool inspector : {false, true}) {
    for (bool cache : {false, true}) {
      for (bool planning : {false, true}) {
        RuntimeStats refStats;
        {
          SCOPED_TRACE("reference: inspector=" + std::to_string(inspector) +
                       " cache=" + std::to_string(cache) + " planning=" +
                       std::to_string(planning));
          run(inspector, cache, /*threads=*/0, /*depth=*/0, planning,
              &refStats);
        }
        EXPECT_EQ(refStats.inspectorRuns > 0, inspector);
        for (int threads : {0, 3}) {
          for (int depth : {0, 2}) {
            if (threads == 0 && depth == 0) continue;
            SCOPED_TRACE("inspector=" + std::to_string(inspector) + " cache=" +
                         std::to_string(cache) + " planning=" +
                         std::to_string(planning) + " threads=" +
                         std::to_string(threads) + " depth=" +
                         std::to_string(depth));
            RuntimeStats s;
            run(inspector, cache, threads, depth, planning, &s);
            EXPECT_EQ(s, refStats)
                << "threads/depth perturb deterministic runtime statistics";
          }
        }
      }
    }
  }
}

// --------------------------------------------------------------------------
// Inspection cache: repeat launches hit; writing an indirection buffer
// between launches invalidates (the stale-footprint bug class — a cached
// footprint from the old col_idx would leave the new gather sources stale
// on the executing devices).

TEST(Irregular, RepeatLaunchHitsInspectionCache) {
  Rng rng(415);
  const i64 n = 192;
  Csr a = makeBandedCsr(n, 3, rng);
  std::vector<double> x = makeVector(n, rng);
  std::vector<double> expect(static_cast<std::size_t>(n));
  apps::refSpmv(a.rowPtr, a.colIdx, a.vals, x, expect);

  Runtime rt(irregularConfig(4, /*inspector=*/true), irregularModel(),
             irregularModule());
  VirtualBuffer* dRow = rt.malloc((n + 1) * 8);
  VirtualBuffer* dCol = rt.malloc(a.nnz() * 8);
  VirtualBuffer* dVal = rt.malloc(a.nnz() * 8);
  VirtualBuffer* dX = rt.malloc(n * 8);
  VirtualBuffer* dY = rt.malloc(n * 8);
  rt.memcpy(dRow, a.rowPtr.data(), (n + 1) * 8, MemcpyKind::HostToDevice);
  rt.memcpy(dCol, a.colIdx.data(), a.nnz() * 8, MemcpyKind::HostToDevice);
  rt.memcpy(dVal, a.vals.data(), a.nnz() * 8, MemcpyKind::HostToDevice);
  rt.memcpy(dX, x.data(), n * 8, MemcpyKind::HostToDevice);
  LaunchArg args[] = {LaunchArg::ofInt(n),        LaunchArg::ofInt(n),
                      LaunchArg::ofInt(a.nnz()),  LaunchArg::ofBuffer(dRow),
                      LaunchArg::ofBuffer(dCol),  LaunchArg::ofBuffer(dVal),
                      LaunchArg::ofBuffer(dX),    LaunchArg::ofBuffer(dY)};
  const ir::Dim3 grid{(n + 63) / 64, 1, 1}, block{64, 1, 1};

  rt.launch("spmv", grid, block, args);
  EXPECT_EQ(rt.stats().inspectorRuns, 1);
  EXPECT_EQ(rt.stats().inspectorCacheMisses, 1);
  EXPECT_EQ(rt.stats().inspectorCacheHits, 0);

  // Same geometry, same buffer contents (y is write-only: its new contents
  // cannot influence the walk): the second launch reuses the footprints.
  rt.launch("spmv", grid, block, args);
  EXPECT_EQ(rt.stats().inspectorRuns, 1);
  EXPECT_EQ(rt.stats().inspectorCacheHits, 1);
  EXPECT_EQ(rt.stats().inspectorCacheInvalidations, 0);

  std::vector<double> got(static_cast<std::size_t>(n));
  rt.memcpy(got.data(), dY, n * 8, MemcpyKind::DeviceToHost);
  EXPECT_EQ(got, expect);
}

TEST(Irregular, WriteToIndirectionBufferInvalidatesInspection) {
  Rng rng(416);
  const i64 n = 192;
  Csr a = makeBandedCsr(n, 3, rng);
  std::vector<double> x = makeVector(n, rng);

  Runtime rt(irregularConfig(4, /*inspector=*/true), irregularModel(),
             irregularModule());
  VirtualBuffer* dRow = rt.malloc((n + 1) * 8);
  VirtualBuffer* dCol = rt.malloc(a.nnz() * 8);
  VirtualBuffer* dVal = rt.malloc(a.nnz() * 8);
  VirtualBuffer* dX = rt.malloc(n * 8);
  VirtualBuffer* dY = rt.malloc(n * 8);
  rt.memcpy(dRow, a.rowPtr.data(), (n + 1) * 8, MemcpyKind::HostToDevice);
  rt.memcpy(dCol, a.colIdx.data(), a.nnz() * 8, MemcpyKind::HostToDevice);
  rt.memcpy(dVal, a.vals.data(), a.nnz() * 8, MemcpyKind::HostToDevice);
  rt.memcpy(dX, x.data(), n * 8, MemcpyKind::HostToDevice);
  LaunchArg args[] = {LaunchArg::ofInt(n),        LaunchArg::ofInt(n),
                      LaunchArg::ofInt(a.nnz()),  LaunchArg::ofBuffer(dRow),
                      LaunchArg::ofBuffer(dCol),  LaunchArg::ofBuffer(dVal),
                      LaunchArg::ofBuffer(dX),    LaunchArg::ofBuffer(dY)};
  const ir::Dim3 grid{(n + 63) / 64, 1, 1}, block{64, 1, 1};
  rt.launch("spmv", grid, block, args);
  EXPECT_EQ(rt.stats().inspectorRuns, 1);

  // Re-point every row's gather sources (reverse each row's columns) and
  // overwrite the device copy: the cached footprints are now wrong.
  Csr b = a;
  for (i64 r = 0; r < n; ++r)
    std::reverse(b.colIdx.begin() + b.rowPtr[static_cast<std::size_t>(r)],
                 b.colIdx.begin() + b.rowPtr[static_cast<std::size_t>(r) + 1]);
  rt.memcpy(dCol, b.colIdx.data(), b.nnz() * 8, MemcpyKind::HostToDevice);

  rt.launch("spmv", grid, block, args);
  EXPECT_EQ(rt.stats().inspectorCacheInvalidations, 1);
  EXPECT_EQ(rt.stats().inspectorRuns, 2);

  std::vector<double> expect(static_cast<std::size_t>(n));
  apps::refSpmv(b.rowPtr, b.colIdx, b.vals, x, expect);
  std::vector<double> got(static_cast<std::size_t>(n));
  rt.memcpy(got.data(), dY, n * 8, MemcpyKind::DeviceToHost);
  EXPECT_EQ(got, expect) << "stale inspection footprint survived the write";
}

// --------------------------------------------------------------------------
// The inspector's reason to exist: strictly fewer peer bytes than
// whole-buffer sharing on a banded matrix at 8+ GPUs.

TEST(Irregular, InspectorMovesStrictlyFewerBytesAtScale) {
  Rng rng(417);
  const i64 n = 2048;
  Csr a = makeBandedCsr(n, 8, rng);
  std::vector<double> x = makeVector(n, rng);
  std::vector<double> expect(static_cast<std::size_t>(n));
  apps::refSpmv(a.rowPtr, a.colIdx, a.vals, x, expect);

  for (int gpus : {8, 16, 32}) {
    double peerBytes[2] = {0, 0};
    for (bool inspector : {false, true}) {
      RuntimeConfig cfg = irregularConfig(gpus, inspector);
      cfg.machine = sim::MachineSpec::k80Node(gpus);
      Runtime rt(cfg, irregularModel(), irregularModule());
      std::vector<double> got(static_cast<std::size_t>(n), -9.0);
      apps::runSpmv(rt, a.view(), x.data(), got.data());
      ASSERT_EQ(got, expect) << gpus << " GPUs, inspector=" << inspector;
      peerBytes[inspector ? 1 : 0] = rt.machineStats().bytesPeerToPeer;
    }
    EXPECT_LT(peerBytes[1], peerBytes[0])
        << gpus << " GPUs: the inspector must move strictly fewer peer "
        << "bytes than whole-buffer sharing";
  }
}

// --------------------------------------------------------------------------
// Elastic extensions: repartition and device-failure recovery must handle
// may-access kernels.

TEST(Irregular, RepartitionHandlesMayAccessKernels) {
  Rng rng(418);
  const i64 n = 256;
  Csr a = makeBandedCsr(n, 4, rng);
  std::vector<double> x = makeVector(n, rng);
  std::vector<double> expect(static_cast<std::size_t>(n));
  apps::refSpmv(a.rowPtr, a.colIdx, a.vals, x, expect);

  for (bool inspector : {false, true}) {
    RuntimeConfig cfg = irregularConfig(4, inspector);
    cfg.allowRepartitioning = true;
    Runtime rt(cfg, irregularModel(), irregularModule());
    VirtualBuffer* dRow = rt.malloc((n + 1) * 8);
    VirtualBuffer* dCol = rt.malloc(a.nnz() * 8);
    VirtualBuffer* dVal = rt.malloc(a.nnz() * 8);
    VirtualBuffer* dX = rt.malloc(n * 8);
    VirtualBuffer* dY = rt.malloc(n * 8);
    rt.memcpy(dRow, a.rowPtr.data(), (n + 1) * 8, MemcpyKind::HostToDevice);
    rt.memcpy(dCol, a.colIdx.data(), a.nnz() * 8, MemcpyKind::HostToDevice);
    rt.memcpy(dVal, a.vals.data(), a.nnz() * 8, MemcpyKind::HostToDevice);
    rt.memcpy(dX, x.data(), n * 8, MemcpyKind::HostToDevice);
    LaunchArg args[] = {LaunchArg::ofInt(n),        LaunchArg::ofInt(n),
                        LaunchArg::ofInt(a.nnz()),  LaunchArg::ofBuffer(dRow),
                        LaunchArg::ofBuffer(dCol),  LaunchArg::ofBuffer(dVal),
                        LaunchArg::ofBuffer(dX),    LaunchArg::ofBuffer(dY)};
    const ir::Dim3 grid{(n + 63) / 64, 1, 1}, block{64, 1, 1};
    rt.launch("spmv", grid, block, args);
    rt.repartitionAll(Partitioning{{3, 1, 1, 3}});
    EXPECT_EQ(rt.stats().repartitions, 3);  // one per kernel in the module
    rt.launch("spmv", grid, block, args);
    std::vector<double> got(static_cast<std::size_t>(n));
    rt.memcpy(got.data(), dY, n * 8, MemcpyKind::DeviceToHost);
    EXPECT_EQ(got, expect) << "inspector=" << inspector;
  }
}

TEST(Irregular, RecoverDeviceCoversMayAccessWrites) {
  // BFS push scatters into `next` via the conservatively-shared may-write
  // path; histogram read-modify-writes `hist`.  After a checkpoint, a
  // device failure, and recovery onto the survivors, both must still
  // produce reference results.
  Rng rng(419);
  const i64 n = 192;
  Csr g = makeBandedCsr(n, 3, rng);
  const i64 nfront = 31;
  std::vector<i64> front(static_cast<std::size_t>(nfront));
  for (auto& u : front) u = rng.range(0, n - 1);
  std::vector<double> expect(static_cast<std::size_t>(n), 0.0);
  apps::refBfsPush(g.rowPtr, g.colIdx, front, expect);

  for (bool inspector : {false, true}) {
    RuntimeConfig cfg = irregularConfig(4, inspector);
    cfg.allowRepartitioning = true;
    Runtime rt(cfg, irregularModel(), irregularModule());
    VirtualBuffer* dFront = rt.malloc(nfront * 8);
    VirtualBuffer* dRow = rt.malloc((n + 1) * 8);
    VirtualBuffer* dCol = rt.malloc(g.nnz() * 8);
    VirtualBuffer* dNext = rt.malloc(n * 8);
    rt.memcpy(dFront, front.data(), nfront * 8, MemcpyKind::HostToDevice);
    rt.memcpy(dRow, g.rowPtr.data(), (n + 1) * 8, MemcpyKind::HostToDevice);
    rt.memcpy(dCol, g.colIdx.data(), g.nnz() * 8, MemcpyKind::HostToDevice);
    std::vector<double> zeros(static_cast<std::size_t>(n), 0.0);
    rt.memcpy(dNext, zeros.data(), n * 8, MemcpyKind::HostToDevice);
    LaunchArg args[] = {LaunchArg::ofInt(nfront),  LaunchArg::ofInt(n),
                        LaunchArg::ofInt(g.nnz()), LaunchArg::ofBuffer(dFront),
                        LaunchArg::ofBuffer(dRow), LaunchArg::ofBuffer(dCol),
                        LaunchArg::ofBuffer(dNext)};
    const ir::Dim3 grid{(nfront + 63) / 64, 1, 1}, block{64, 1, 1};
    rt.launch("bfs_push", grid, block, args);
    rt.deviceSynchronize();

    Checkpoint cp = rt.checkpoint();
    rt.machine().failDevice(1);
    rt.recoverDevice(1, cp, Partitioning{{1, 0, 1, 1}});
    EXPECT_EQ(rt.stats().recoveries, 1);

    // Keep computing on the survivors: relaunch and re-check.
    rt.launch("bfs_push", grid, block, args);
    std::vector<double> got(static_cast<std::size_t>(n));
    rt.memcpy(got.data(), dNext, n * 8, MemcpyKind::DeviceToHost);
    EXPECT_EQ(got, expect) << "inspector=" << inspector;
  }
}

// --------------------------------------------------------------------------
// Mode gate: may-access tracking (and the inspection walk) needs buffer
// contents, i.e. Functional execution.

TEST(Irregular, MayAccessRequiresFunctionalMode) {
  RuntimeConfig cfg = irregularConfig(2, /*inspector=*/false);
  cfg.mode = sim::ExecutionMode::TimingOnly;
  Runtime rt(cfg, irregularModel(), irregularModule());
  const i64 n = 64;
  VirtualBuffer* dKeys = rt.malloc(n * 8);
  VirtualBuffer* dHist = rt.malloc(16 * 8);
  LaunchArg args[] = {LaunchArg::ofInt(n), LaunchArg::ofInt(16),
                      LaunchArg::ofBuffer(dKeys), LaunchArg::ofBuffer(dHist)};
  EXPECT_THROW(rt.launch("histogram", {1, 1, 1}, {64, 1, 1}, args),
               UnsupportedOperationError);
}

}  // namespace
}  // namespace polypart::rt
