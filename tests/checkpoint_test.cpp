// Device-failure recovery tests (rt/checkpoint.h; DESIGN.md "Elastic
// repartitioning").
//
// The headline scenario: iterate a workload, checkpoint, kill one GPU
// (sim::Machine::failDevice), recover onto the survivors, keep iterating —
// and end with exactly the CPU-reference answer.  Failure injection poisons
// the dead device's storage with NaN, so a recovery that silently read stale
// or lost data could not pass the byte-equality assertions.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "analysis/analyze.h"
#include "ir/builder.h"
#include "rt/checkpoint.h"
#include "rt/runtime.h"

namespace polypart::rt {
namespace {

using ir::fconst;
using ir::iconst;
using ir::lt;

constexpr i64 kN = 512;

ir::Module buildWorkload() {
  ir::Module mod;
  {
    ir::KernelBuilder b("scale");
    auto n = b.scalar("n", ir::Type::I64);
    auto in = b.array("in", ir::Type::F64, {n});
    auto out = b.array("out", ir::Type::F64, {n});
    auto x = b.let("x", b.globalId(ir::Axis::X));
    b.iff(lt(x, n),
          [&] { b.store(out, x, b.load(in, x) * fconst(0.5) + fconst(1.0)); });
    mod.addKernel(b.build());
  }
  {
    // Every thread also reads w[0..3]: the broadcast pattern that leaves
    // replicas on every device when shared-copy tracking is on.
    ir::KernelBuilder b("bcast");
    auto n = b.scalar("n", ir::Type::I64);
    auto in = b.array("in", ir::Type::F64, {n});
    auto w = b.array("w", ir::Type::F64, {n});
    auto out = b.array("out", ir::Type::F64, {n});
    auto x = b.let("x", b.globalId(ir::Axis::X));
    b.iff(lt(x, n), [&] {
      auto acc = b.let("acc", b.load(in, x));
      b.forLoop("k", iconst(0), iconst(4),
                [&](ir::ExprPtr k) { b.assign(acc, acc + b.load(w, k)); });
      b.store(out, x, acc);
    });
    mod.addKernel(b.build());
  }
  return mod;
}

void refScale(const std::vector<double>& in, std::vector<double>& out) {
  for (std::size_t i = 0; i < in.size(); ++i) out[i] = in[i] * 0.5 + 1.0;
}

std::vector<double> makeInput() {
  std::vector<double> v(kN);
  for (i64 i = 0; i < kN; ++i)
    v[static_cast<std::size_t>(i)] = static_cast<double>(i % 29) * 0.25 - 2.0;
  return v;
}

RuntimeConfig baseConfig(int gpus) {
  RuntimeConfig rc;
  rc.numGpus = gpus;
  rc.machine = sim::MachineSpec::k80Node(gpus);
  rc.allowRepartitioning = true;
  return rc;
}

TEST(Checkpoint, CoversExactlyTheExclusivelyOwnedBytes) {
  ir::Module mod = buildWorkload();
  Runtime rt(baseConfig(4), analysis::analyzeModule(mod), mod);
  const i64 bytes = kN * 8;
  std::vector<double> in = makeInput();
  VirtualBuffer* vin = rt.malloc(bytes);
  VirtualBuffer* vout = rt.malloc(bytes);  // never written: not checkpointed
  rt.memcpy(vin, in.data(), bytes, MemcpyKind::HostToDevice);

  Checkpoint cp = rt.checkpoint();
  // Only vin has defined bytes; the linear scatter made every byte exclusive
  // to one device, so the payload is exactly the buffer.
  EXPECT_EQ(cp.payloadBytes(), bytes);
  EXPECT_EQ(cp.bufferCount(), 1u);
  EXPECT_EQ(cp.segmentCount(), 4u);
  EXPECT_EQ(rt.stats().checkpoints, 1);
  EXPECT_EQ(rt.stats().bytesCheckpointed, bytes);
  (void)vout;
}

TEST(Checkpoint, KillOneGpuRecoveryProducesTheReferenceAnswer) {
  ir::Module mod = buildWorkload();
  analysis::ApplicationModel model = analysis::analyzeModule(mod);
  Runtime rt(baseConfig(4), model, mod);
  const i64 bytes = kN * 8;
  std::vector<double> in = makeInput();
  VirtualBuffer* va = rt.malloc(bytes);
  VirtualBuffer* vb = rt.malloc(bytes);
  rt.memcpy(va, in.data(), bytes, MemcpyKind::HostToDevice);

  const ir::Dim3 grid{kN / 64, 1, 1}, block{64, 1, 1};
  VirtualBuffer* src = va;
  VirtualBuffer* dst = vb;
  auto step = [&] {
    std::vector<LaunchArg> args = {LaunchArg::ofInt(kN),
                                   LaunchArg::ofBuffer(src),
                                   LaunchArg::ofBuffer(dst)};
    rt.launch("scale", grid, block, args);
    std::swap(src, dst);
  };
  std::vector<double> expect = in, tmp(kN, 0.0);
  auto refStep = [&] {
    refScale(expect, tmp);
    std::swap(expect, tmp);
  };

  for (int it = 0; it < 3; ++it) {
    step();
    refStep();
  }
  Checkpoint cp = rt.checkpoint();
  EXPECT_GT(cp.payloadBytes(), 0);

  // Device 1 dies.  Its storage is NaN-poisoned, so from here on any read of
  // unrecovered data would contaminate the result visibly.
  rt.machine().failDevice(1);
  EXPECT_EQ(rt.machine().liveDeviceCount(), 3);
  rt.recoverDevice(1, cp, Partitioning{{1, 0, 1, 1}});
  EXPECT_EQ(rt.stats().recoveries, 1);
  EXPECT_GT(rt.stats().bytesRestored, 0);
  EXPECT_GT(rt.stats().restoreCopies, 0);

  for (int it = 0; it < 3; ++it) {
    step();
    refStep();
  }
  rt.deviceSynchronize();
  std::vector<double> got(kN);
  rt.memcpy(got.data(), src, bytes, MemcpyKind::DeviceToHost);
  EXPECT_EQ(got, expect);
  for (double v : got) EXPECT_FALSE(std::isnan(v));
  // The dead device owns nothing anywhere.
  for (const VirtualBuffer* v : {va, vb})
    v->tracker().query(0, bytes,
                       [&](i64, i64, Owner o) { EXPECT_NE(o, 1); });
}

TEST(Checkpoint, RecoveryAdoptsSurvivingReplicasWithoutRestoreCopies) {
  ir::Module mod = buildWorkload();
  RuntimeConfig rc = baseConfig(4);
  rc.trackSharedCopies = true;
  Runtime rt(rc, analysis::analyzeModule(mod), mod);
  const i64 bytes = kN * 8;
  std::vector<double> in = makeInput(), w(kN, 0.125);
  VirtualBuffer* vin = rt.malloc(bytes);
  VirtualBuffer* vw = rt.malloc(bytes);
  VirtualBuffer* vout = rt.malloc(bytes);
  rt.memcpy(vin, in.data(), bytes, MemcpyKind::HostToDevice);
  rt.memcpy(vw, w.data(), bytes, MemcpyKind::HostToDevice);

  const ir::Dim3 grid{kN / 64, 1, 1}, block{64, 1, 1};
  std::vector<LaunchArg> args = {LaunchArg::ofInt(kN), LaunchArg::ofBuffer(vin),
                                 LaunchArg::ofBuffer(vw),
                                 LaunchArg::ofBuffer(vout)};
  // w[0..3] lives on device 0 (linear scatter) and is broadcast-read by all:
  // shared-copy tracking records replicas on devices 1..3.
  rt.launch("bcast", grid, block, args);

  Checkpoint cp = rt.checkpoint();
  rt.machine().failDevice(0);
  rt.recoverDevice(0, cp, Partitioning{{0, 1, 1, 1}});
  // The broadcast head of w was replicated: adopted, not restored.
  EXPECT_GT(rt.stats().bytesAdopted, 0);

  // Survivors still compute the right answer from the adopted bytes.
  rt.launch("bcast", grid, block, args);
  rt.deviceSynchronize();
  std::vector<double> got(kN), expect(kN);
  rt.memcpy(got.data(), vout, bytes, MemcpyKind::DeviceToHost);
  for (i64 i = 0; i < kN; ++i)
    expect[static_cast<std::size_t>(i)] =
        in[static_cast<std::size_t>(i)] + 4 * 0.125;
  EXPECT_EQ(got, expect);
}

TEST(Checkpoint, RecoveryWithoutCoverageThrows) {
  ir::Module mod = buildWorkload();
  Runtime rt(baseConfig(4), analysis::analyzeModule(mod), mod);
  const i64 bytes = kN * 8;
  std::vector<double> in = makeInput();
  VirtualBuffer* vin = rt.malloc(bytes);
  rt.memcpy(vin, in.data(), bytes, MemcpyKind::HostToDevice);

  rt.machine().failDevice(1);
  // Device 1 exclusively owned its quarter of vin; an empty checkpoint
  // cannot cover it.
  Checkpoint empty;
  EXPECT_THROW(rt.recoverDevice(1, empty, Partitioning{{1, 0, 1, 1}}), Error);
}

TEST(Checkpoint, RecoveryValidatesItsArguments) {
  ir::Module mod = buildWorkload();
  {
    RuntimeConfig rc = baseConfig(2);
    rc.allowRepartitioning = false;
    Runtime rt(rc, analysis::analyzeModule(mod), mod);
    Checkpoint cp;
    EXPECT_THROW(rt.recoverDevice(0, cp, Partitioning{{0, 1}}), Error);
  }
  {
    Runtime rt(baseConfig(2), analysis::analyzeModule(mod), mod);
    Checkpoint cp;
    // Healthy device: nothing to recover.
    EXPECT_THROW(rt.recoverDevice(0, cp, Partitioning{{0, 1}}), Error);
    rt.machine().failDevice(0);
    // The failed device must get weight 0.
    EXPECT_THROW(rt.recoverDevice(0, cp, Partitioning{{1, 1}}), Error);
  }
}

}  // namespace
}  // namespace polypart::rt
