// Tests for the page-migration (SVM/UVM) baseline runtime used by the
// Section 10 related-work comparison bench.

#include <gtest/gtest.h>

#include "analysis/analyze.h"
#include "apps/kernels.h"
#include "rt/runtime.h"
#include "rt/uvm_baseline.h"

namespace polypart::rt {
namespace {

struct UvmFixture : ::testing::Test {
  ir::Module mod = apps::buildBenchmarkModule();
  analysis::ApplicationModel model = analysis::analyzeModule(mod);

  std::unique_ptr<UvmRuntime> make(int gpus, i64 pageBytes = 64 << 10) {
    UvmConfig cfg;
    cfg.numGpus = gpus;
    cfg.pageBytes = pageBytes;
    return std::make_unique<UvmRuntime>(cfg, model, mod);
  }
};

TEST_F(UvmFixture, FirstTouchFaultsFromHost) {
  auto uvm = make(2);
  // 8 x 64KB pages per buffer; the 2-GPU partition boundary is page-aligned,
  // so each page is touched by exactly one partition.
  const i64 n = 65536;
  UvmBuffer* x = uvm->malloc(n * 8);
  UvmBuffer* y = uvm->malloc(n * 8);
  uvm->populate(x, n * 8);
  uvm->populate(y, n * 8);
  i64 scalars[] = {n};
  UvmBuffer* arrays[] = {x, y};
  uvm->launch("saxpy", {n / 256, 1, 1}, {256, 1, 1}, arrays, scalars);
  uvm->synchronize();
  // Every touched page faulted exactly once from the host: x and y pages of
  // each partition's half (the final page may be partial -> ceil).
  const i64 pagesPerBuf = (n * 8 + (64 << 10) - 1) / (64 << 10);
  EXPECT_EQ(uvm->stats().pageFaults, 2 * pagesPerBuf);
  EXPECT_GT(uvm->elapsedSeconds(), 0.0);
}

TEST_F(UvmFixture, SecondLaunchOnResidentPagesIsFaultFree) {
  auto uvm = make(2);
  const i64 n = 65536;
  UvmBuffer* x = uvm->malloc(n * 8);
  UvmBuffer* y = uvm->malloc(n * 8);
  uvm->populate(x, n * 8);
  uvm->populate(y, n * 8);
  i64 scalars[] = {n};
  UvmBuffer* arrays[] = {x, y};
  uvm->launch("saxpy", {n / 256, 1, 1}, {256, 1, 1}, arrays, scalars);
  i64 firstFaults = uvm->stats().pageFaults;
  uvm->launch("saxpy", {n / 256, 1, 1}, {256, 1, 1}, arrays, scalars);
  uvm->synchronize();
  // saxpy's accesses are partition-local: pages stay where they migrated.
  EXPECT_EQ(uvm->stats().pageFaults, firstFaults);
}

TEST_F(UvmFixture, ReadSharingThrashesPages) {
  // N-Body forces: every GPU reads all positions; migrate-on-touch bounces
  // every position page to every GPU on every launch.
  auto uvm = make(4);
  const i64 n = 65536;
  UvmBuffer* bufs[7];
  for (auto& b : bufs) {
    b = uvm->malloc(n * 8);
    uvm->populate(b, n * 8);
  }
  i64 scalars[] = {n};
  UvmBuffer* arrays[] = {bufs[0], bufs[1], bufs[2], bufs[3],
                         bufs[4], bufs[5], bufs[6]};
  uvm->launch("nbody_forces", {n / 256, 1, 1}, {256, 1, 1}, arrays, scalars);
  i64 first = uvm->stats().pagesMigrated;
  uvm->launch("nbody_forces", {n / 256, 1, 1}, {256, 1, 1}, arrays, scalars);
  i64 second = uvm->stats().pagesMigrated - first;
  // The second launch migrates pages again (thrash), unlike saxpy above.
  EXPECT_GT(second, 0);
  uvm->synchronize();
}

TEST_F(UvmFixture, BulkTransfersBeatPageMigrationOnMatmul) {
  const i64 n = 2048;
  // Page-migration baseline.
  auto uvm = make(8);
  UvmBuffer* a = uvm->malloc(n * n * 8);
  UvmBuffer* b = uvm->malloc(n * n * 8);
  UvmBuffer* c = uvm->malloc(n * n * 8);
  uvm->populate(a, n * n * 8);
  uvm->populate(b, n * n * 8);
  i64 scalars[] = {n};
  UvmBuffer* arrays[] = {a, b, c};
  uvm->launch("matmul", {n / 16, n / 16, 1}, {16, 16, 1}, arrays, scalars);
  uvm->synchronize();

  // Polypart runtime on the same problem.
  RuntimeConfig rc;
  rc.numGpus = 8;
  rc.mode = sim::ExecutionMode::TimingOnly;
  Runtime rt(rc, model, mod);
  VirtualBuffer* da = rt.malloc(n * n * 8);
  VirtualBuffer* db = rt.malloc(n * n * 8);
  VirtualBuffer* dc = rt.malloc(n * n * 8);
  rt.memcpy(da, nullptr, n * n * 8, MemcpyKind::HostToDevice);
  rt.memcpy(db, nullptr, n * n * 8, MemcpyKind::HostToDevice);
  LaunchArg args[] = {LaunchArg::ofInt(n), LaunchArg::ofBuffer(da),
                      LaunchArg::ofBuffer(db), LaunchArg::ofBuffer(dc)};
  rt.launch("matmul", {n / 16, n / 16, 1}, {16, 16, 1}, args);
  rt.deviceSynchronize();

  EXPECT_LT(rt.elapsedSeconds(), uvm->elapsedSeconds());
}

}  // namespace
}  // namespace polypart::rt
