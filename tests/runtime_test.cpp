// Integration tests for the runtime (paper Section 8): virtual buffers,
// memcpy translation, the Fig. 4 partitioned launch, and the end-to-end
// property that multi-GPU partitioned execution is bit-identical to the CPU
// reference for every benchmark and GPU count.

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "analysis/analyze.h"
#include "apps/drivers.h"
#include "apps/kernels.h"
#include "apps/reference.h"
#include "rt/cuda_api.h"
#include "rt/runtime.h"
#include "support/rng.h"

namespace polypart::rt {
namespace {

using analysis::ApplicationModel;

std::unique_ptr<Runtime> makeRuntime(int gpus,
                                     sim::ExecutionMode mode = sim::ExecutionMode::Functional) {
  RuntimeConfig cfg;
  cfg.numGpus = gpus;
  cfg.mode = mode;
  ir::Module mod = apps::buildBenchmarkModule();
  ApplicationModel model = analysis::analyzeModule(mod);
  return std::make_unique<Runtime>(cfg, std::move(model), mod);
}

TEST(Runtime, DeviceCountIsAlwaysOne) {
  auto rt = makeRuntime(8);
  // Section 8.4: the replacement hides the real device count.
  EXPECT_EQ(rt->getDeviceCount(), 1);
}

TEST(Runtime, MemcpyRoundTripLinearDistribution) {
  auto rt = makeRuntime(4);
  const i64 n = 1000;
  std::vector<double> src(n), dst(n, -1.0);
  std::iota(src.begin(), src.end(), 0.0);
  VirtualBuffer* vb = rt->malloc(n * 8);
  rt->memcpy(vb, src.data(), n * 8, MemcpyKind::HostToDevice);
  // H2D distributes linearly: four ownership segments.
  EXPECT_EQ(vb->tracker().segmentCount(), 4u);
  EXPECT_EQ(vb->tracker().ownerAt(0), 0);
  EXPECT_EQ(vb->tracker().ownerAt(n * 8 - 1), 3);
  rt->memcpy(dst.data(), vb, n * 8, MemcpyKind::DeviceToHost);
  EXPECT_EQ(src, dst);
  rt->free(vb);
}

TEST(Runtime, DeviceToDeviceMemcpyRejected) {
  auto rt = makeRuntime(2);
  VirtualBuffer* a = rt->malloc(64);
  VirtualBuffer* b = rt->malloc(64);
  EXPECT_THROW(rt->memcpy(a, b, 64, MemcpyKind::DeviceToDevice),
               UnsupportedOperationError);
  rt->free(a);
  rt->free(b);
}

TEST(Runtime, UndefinedRegionsNotCopiedBack) {
  auto rt = makeRuntime(2);
  const i64 n = 100;
  VirtualBuffer* vb = rt->malloc(n * 8);
  std::vector<double> dst(n, 7.0);
  rt->memcpy(dst.data(), vb, n * 8, MemcpyKind::DeviceToHost);
  // Never written: host buffer untouched.
  for (double v : dst) EXPECT_EQ(v, 7.0);
  rt->free(vb);
}

TEST(Runtime, LaunchValidatesUnitAxes) {
  auto rt = makeRuntime(2);
  VirtualBuffer* x = rt->malloc(800);
  VirtualBuffer* y = rt->malloc(800);
  LaunchArg args[] = {LaunchArg::ofInt(100), LaunchArg::ofFloat(1.0),
                      LaunchArg::ofBuffer(x), LaunchArg::ofBuffer(y)};
  // saxpy ignores the y axis entirely: a 2-D launch must be rejected.
  EXPECT_THROW(rt->launch("saxpy", {1, 2, 1}, {128, 1, 1}, args), Error);
  EXPECT_THROW(rt->launch("saxpy", {1, 1, 1}, {128, 2, 1}, args), Error);
  rt->free(x);
  rt->free(y);
}

TEST(Runtime, SaxpyMatchesReferenceOnManyGpuCounts) {
  const i64 n = 5000;
  for (int gpus : {1, 2, 3, 4, 7, 16}) {
    auto rt = makeRuntime(gpus);
    std::vector<double> x(n), y(n), expect(n);
    for (i64 i = 0; i < n; ++i) {
      x[static_cast<std::size_t>(i)] = 0.25 * static_cast<double>(i);
      y[static_cast<std::size_t>(i)] = 1.0 + static_cast<double>(i % 17);
    }
    expect = y;
    apps::refSaxpy(3.5, x, expect);
    apps::runSaxpy(*rt, n, 3.5, x.data(), y.data());
    EXPECT_EQ(y, expect) << gpus << " GPUs";
  }
}

TEST(Runtime, HotspotMatchesReferenceAcrossIterations) {
  const i64 n = 40;
  const int iters = 7;
  Rng rng(11);
  std::vector<double> init(static_cast<std::size_t>(n * n));
  std::vector<double> power(static_cast<std::size_t>(n * n));
  for (auto& v : init) v = rng.uniform() * 100.0;
  for (auto& v : power) v = rng.uniform();

  // CPU reference: ping-pong exactly like the driver.
  std::vector<double> a = init, b(static_cast<std::size_t>(n * n), 0.0);
  for (int it = 0; it < iters; ++it) {
    apps::refHotspotStep(n, 0.175, 0.05, a, power, b);
    std::swap(a, b);
  }

  for (int gpus : {1, 2, 3, 5, 16}) {
    auto rt = makeRuntime(gpus);
    std::vector<double> temp = init;
    apps::runHotspot(*rt, n, iters, temp.data(), power.data());
    EXPECT_EQ(temp, a) << gpus << " GPUs";
    // Halo exchange must have happened for gpus > 1 and iters > 1.
    if (gpus > 1) EXPECT_GT(rt->stats().peerCopies, 0) << gpus;
  }
}

TEST(Runtime, NBodyMatchesReference) {
  const i64 n = 60;
  const int iters = 4;
  Rng rng(23);
  auto fill = [&](std::vector<double>& v) {
    v.resize(static_cast<std::size_t>(n));
    for (auto& x : v) x = rng.uniform() * 2.0 - 1.0;
  };
  std::vector<double> px, py, pz, vx, vy, vz, mass;
  fill(px); fill(py); fill(pz); fill(vx); fill(vy); fill(vz); fill(mass);
  for (auto& m : mass) m = std::abs(m) + 0.1;

  // CPU reference.
  std::vector<double> rpx = px, rpy = py, rpz = pz, rvx = vx, rvy = vy, rvz = vz;
  std::vector<double> ax(static_cast<std::size_t>(n)), ay(ax), az(ax);
  for (int it = 0; it < iters; ++it) {
    apps::refNBodyForces(n, rpx, rpy, rpz, mass, ax, ay, az);
    apps::refNBodyUpdate(n, 0.01, rpx, rpy, rpz, rvx, rvy, rvz, ax, ay, az);
  }

  for (int gpus : {1, 2, 4, 9}) {
    auto rt = makeRuntime(gpus);
    std::vector<double> tpx = px, tpy = py, tpz = pz, tvx = vx, tvy = vy, tvz = vz;
    apps::NBodyState st{tpx.data(), tpy.data(), tpz.data(),
                        tvx.data(), tvy.data(), tvz.data(), mass.data()};
    apps::runNBody(*rt, n, iters, st);
    EXPECT_EQ(tpx, rpx) << gpus;
    EXPECT_EQ(tvx, rvx) << gpus;
    EXPECT_EQ(tpz, rpz) << gpus;
  }
}

TEST(Runtime, MatmulMatchesReference) {
  const i64 n = 32;
  Rng rng(5);
  std::vector<double> a(static_cast<std::size_t>(n * n));
  std::vector<double> b(static_cast<std::size_t>(n * n));
  for (auto& v : a) v = rng.uniform();
  for (auto& v : b) v = rng.uniform();
  std::vector<double> expect(static_cast<std::size_t>(n * n));
  apps::refMatmul(n, a, b, expect);

  for (int gpus : {1, 2, 3, 8}) {
    auto rt = makeRuntime(gpus);
    std::vector<double> c(static_cast<std::size_t>(n * n), -1.0);
    apps::runMatmul(*rt, n, a.data(), b.data(), c.data());
    EXPECT_EQ(c, expect) << gpus << " GPUs";
  }
}

TEST(Runtime, BetaGammaSwitchesReduceWork) {
  // α: full run; β: no transfers; γ: no resolution.  The switches drive the
  // overhead decomposition of Section 9.2.
  const i64 n = 64;
  auto run = [&](bool transfers, bool resolution) {
    RuntimeConfig cfg;
    cfg.numGpus = 4;
    cfg.mode = sim::ExecutionMode::TimingOnly;
    cfg.enableTransfers = transfers;
    cfg.enableDependencyResolution = resolution;
    ir::Module mod = apps::buildBenchmarkModule();
    Runtime rt(cfg, analysis::analyzeModule(mod), mod);
    apps::runHotspot(rt, n, 10, nullptr, nullptr);
    return std::make_tuple(rt.elapsedSeconds(), rt.machineStats().bytesPeerToPeer,
                           rt.stats().rangesResolved);
  };
  auto [alphaT, alphaBytes, alphaRanges] = run(true, true);
  auto [betaT, betaBytes, betaRanges] = run(false, true);
  auto [gammaT, gammaBytes, gammaRanges] = run(false, false);
  EXPECT_GT(alphaBytes, 0);
  EXPECT_EQ(betaBytes, 0);
  EXPECT_EQ(gammaBytes, 0);
  EXPECT_GT(betaRanges, 0);
  EXPECT_EQ(gammaRanges, 0);
  EXPECT_GE(alphaT, betaT);
  EXPECT_GE(betaT, gammaT);
  EXPECT_GT(gammaT, 0.0);
}

TEST(Runtime, SingleGpuPartitionedOverheadIsSmall) {
  // Section 9.2: running the partitioned binary on one GPU costs a few
  // percent over the reference (median 2.1 % on paper-sized problems).
  const i64 n = 8192;  // the paper's "Small" Hotspot configuration
  const int iters = 20;
  auto rt = makeRuntime(1, sim::ExecutionMode::TimingOnly);
  apps::runHotspot(*rt, n, iters, nullptr, nullptr);
  double partitioned = rt->elapsedSeconds();

  sim::Machine ref(sim::MachineSpec::k80Node(1), sim::ExecutionMode::TimingOnly);
  apps::referenceHotspot(ref, n, iters, nullptr, nullptr);
  double reference = ref.completionTime();

  EXPECT_GT(partitioned, reference);
  EXPECT_LT(partitioned, reference * 1.10);
}

TEST(Runtime, MultiGpuIsFasterOnLargeProblems) {
  // Paper-scale iterative problem: fixed H2D/D2H costs amortize and the
  // kernels dominate, so adding GPUs must pay off clearly.
  const i64 n = 16384;
  const int iters = 60;
  auto time = [&](int gpus) {
    auto rt = makeRuntime(gpus, sim::ExecutionMode::TimingOnly);
    apps::runHotspot(*rt, n, iters, nullptr, nullptr);
    return rt->elapsedSeconds();
  };
  double t1 = time(1);
  double t4 = time(4);
  double t8 = time(8);
  EXPECT_LT(t4, t1 / 2.0);
  EXPECT_LT(t8, t4);
}

TEST(Runtime, CudaApiShims) {
  auto rt = makeRuntime(2);
  ScopedGpartRuntime scope(*rt);
  void* p = nullptr;
  ASSERT_EQ(gpartMalloc(&p, 800), gpartSuccess);
  ASSERT_NE(p, nullptr);
  std::vector<double> host(100, 2.5), back(100, 0.0);
  EXPECT_EQ(gpartMemcpy(p, host.data(), 800, gpartMemcpyHostToDevice), gpartSuccess);
  EXPECT_EQ(gpartMemcpy(back.data(), p, 800, gpartMemcpyDeviceToHost), gpartSuccess);
  EXPECT_EQ(back, host);
  int count = -1;
  EXPECT_EQ(gpartGetDeviceCount(&count), gpartSuccess);
  EXPECT_EQ(count, 1);
  EXPECT_EQ(gpartDeviceSynchronize(), gpartSuccess);
  EXPECT_EQ(gpartFree(p), gpartSuccess);
  EXPECT_EQ(gpartMalloc(nullptr, 8), gpartErrorInvalidValue);
}

TEST(Runtime, TrackerStaysCompactOnRegularKernels) {
  // Section 8.1: contiguous partitions keep the tracker at one segment per
  // partition.
  auto rt = makeRuntime(4);
  const i64 n = 64;
  std::vector<double> temp(static_cast<std::size_t>(n * n), 1.0);
  std::vector<double> power(static_cast<std::size_t>(n * n), 0.0);
  VirtualBuffer* t0 = rt->malloc(n * n * 8);
  VirtualBuffer* t1 = rt->malloc(n * n * 8);
  VirtualBuffer* pw = rt->malloc(n * n * 8);
  rt->memcpy(t0, temp.data(), n * n * 8, MemcpyKind::HostToDevice);
  rt->memcpy(pw, power.data(), n * n * 8, MemcpyKind::HostToDevice);
  LaunchArg args[] = {LaunchArg::ofInt(n), LaunchArg::ofFloat(0.1),
                      LaunchArg::ofFloat(0.1), LaunchArg::ofBuffer(t0),
                      LaunchArg::ofBuffer(pw), LaunchArg::ofBuffer(t1)};
  rt->launch("hotspot", {4, 4, 1}, {16, 16, 1}, args);
  // Output tracker: one segment per GPU (4), no fragmentation.
  EXPECT_EQ(t1->tracker().segmentCount(), 4u);
  rt->free(t0);
  rt->free(t1);
  rt->free(pw);
}

TEST(Runtime, HostToDeviceMemcpyDrainsInFlightKernels) {
  // cudaMemcpy is blocking: a host-to-device scatter must wait for kernels
  // that are still writing the device instances.  Regression test for the
  // scatter racing ahead of in-flight kernels in the timing model (the
  // barrier used to come only after the copies were issued).
  const i64 n = i64{1} << 22;

  // Baseline: the H2D scatter alone on an idle machine.
  double copySeconds = 0;
  {
    auto rt = makeRuntime(2, sim::ExecutionMode::TimingOnly);
    VirtualBuffer* y = rt->malloc(n * 8);
    double before = rt->elapsedSeconds();
    rt->memcpy(y, nullptr, n * 8, MemcpyKind::HostToDevice);
    copySeconds = rt->elapsedSeconds() - before;
    ASSERT_GT(copySeconds, 0);
  }

  auto rt = makeRuntime(2, sim::ExecutionMode::TimingOnly);
  VirtualBuffer* x = rt->malloc(n * 8);
  VirtualBuffer* y = rt->malloc(n * 8);
  LaunchArg args[] = {LaunchArg::ofInt(n), LaunchArg::ofFloat(2.0),
                      LaunchArg::ofBuffer(x), LaunchArg::ofBuffer(y)};
  rt->launch("saxpy", {n / 256, 1, 1}, {256, 1, 1}, args);
  double kernelDone = rt->elapsedSeconds();  // kernels still in flight
  rt->memcpy(y, nullptr, n * 8, MemcpyKind::HostToDevice);
  // The copies may only start after the kernels finish, so the total is at
  // least sequential (small slack for API-call bookkeeping differences).
  // Without the pre-scatter synchronize the copies overlap the kernels and
  // the total collapses towards max(kernel, copy) instead of the sum.
  EXPECT_GE(rt->elapsedSeconds(), kernelDone + 0.95 * copySeconds);
}

TEST(RuntimeDeathTest, DoubleFreeIsDiagnosed) {
  auto rt = makeRuntime(2);
  VirtualBuffer* vb = rt->malloc(64);
  rt->free(vb);
  EXPECT_DEATH(rt->free(vb), "double free of virtual buffer");
}

TEST(RuntimeDeathTest, FreeOfForeignPointerIsDiagnosed) {
  auto rt = makeRuntime(2);
  auto other = makeRuntime(2);
  VirtualBuffer* foreign = other->malloc(64);
  // A live buffer of a *different* runtime was never allocated by `rt`.
  EXPECT_DEATH(rt->free(foreign), "never allocated");
  other->free(foreign);
}

TEST(RuntimeDeathTest, FreeOfNullIsDiagnosed) {
  auto rt = makeRuntime(1);
  EXPECT_DEATH(rt->free(nullptr), "free of null virtual buffer");
}

TEST(Runtime, FreedRecordIsPrunedWhenTheHeapReusesTheAddress) {
  // Free/malloc in a tight loop so the allocator reuses addresses.  Each
  // reuse must evict the stale freed record: otherwise a later bad free of
  // the recycled pointer would be misdiagnosed as a double free of the
  // long-gone original buffer.
  auto rt = makeRuntime(2);
  bool reused = false;
  for (int i = 0; i < 64 && !reused; ++i) {
    VirtualBuffer* a = rt->malloc(64);
    rt->free(a);
    VirtualBuffer* b = rt->malloc(64);
    if (b == a) {
      reused = true;
      // The record of the old `a` is gone; only live-buffer state remains.
      EXPECT_EQ(rt->freedRecordCount(), 0u);
    }
    rt->free(b);
  }
  // ASan quarantines freed chunks, so reuse may legitimately never happen
  // there; on the regular allocator the tight loop recycles within a few
  // iterations and the assertion above runs.
  if (!reused)
    GTEST_SKIP() << "allocator never recycled an address; pruning not "
                    "exercisable under this allocator";
}

TEST(RuntimeDeathTest, FreedRecordListIsBoundedButStillCatchesRecentFrees) {
  auto rt = makeRuntime(2);
  // Keep every buffer live while allocating so no address is ever recycled,
  // then free them all: the record list must stay bounded instead of growing
  // one entry per free for the life of the runtime.
  std::vector<VirtualBuffer*> bufs;
  for (int i = 0; i < 300; ++i) bufs.push_back(rt->malloc(64));
  for (VirtualBuffer* b : bufs) rt->free(b);
  EXPECT_LE(rt->freedRecordCount(), 256u);
  EXPECT_GT(rt->freedRecordCount(), 0u);
  // The most recent free is still on record, so its double free is still
  // diagnosed precisely.
  EXPECT_DEATH(rt->free(bufs.back()), "double free of virtual buffer");
}

TEST(Runtime, SharedCopyTrackingSkipsRedundantBroadcasts) {
  // N-Body masses are read by every GPU and never written: with shared-copy
  // tracking the second iteration must not re-transfer them.
  ir::Module mod = apps::buildBenchmarkModule();
  analysis::ApplicationModel model = analysis::analyzeModule(mod);
  auto run = [&](bool shared) {
    RuntimeConfig cfg;
    cfg.numGpus = 4;
    cfg.mode = sim::ExecutionMode::Functional;
    cfg.trackSharedCopies = shared;
    Runtime rt(cfg, model, mod);
    const i64 n = 256;
    std::vector<double> px(n, 1), py(n, 2), pz(n, 3), vx(n, 0), vy(n, 0), vz(n, 0),
        mass(n, 1);
    apps::NBodyState st{px.data(), py.data(), pz.data(),
                        vx.data(), vy.data(), vz.data(), mass.data()};
    apps::runNBody(rt, n, 4, st);
    return std::make_tuple(rt.stats().peerCopies, rt.stats().sharedCopyHits, px);
  };
  auto [copiesOff, hitsOff, pxOff] = run(false);
  auto [copiesOn, hitsOn, pxOn] = run(true);
  EXPECT_EQ(hitsOff, 0);
  EXPECT_GT(hitsOn, 0);
  EXPECT_LT(copiesOn, copiesOff);
  // Functional results are identical either way.
  EXPECT_EQ(pxOn, pxOff);
}

}  // namespace
}  // namespace polypart::rt
