// Unit tests for support::ThreadPool, the worker pool behind the runtime's
// parallel resolution engine.

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "support/thread_pool.h"

namespace polypart::support {
namespace {

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  for (int workers : {1, 2, 4}) {
    ThreadPool pool(workers);
    const i64 n = 1000;
    std::vector<std::atomic<int>> hits(static_cast<std::size_t>(n));
    pool.parallelFor(n, [&](i64 i) {
      hits[static_cast<std::size_t>(i)].fetch_add(1, std::memory_order_relaxed);
    });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1) << workers << " workers";
  }
}

TEST(ThreadPool, ParallelForHandlesEmptyAndSmallRanges) {
  ThreadPool pool(4);
  pool.parallelFor(0, [&](i64) { FAIL() << "body called for n == 0"; });
  std::atomic<i64> sum{0};
  pool.parallelFor(1, [&](i64 i) { sum += i + 7; });
  EXPECT_EQ(sum.load(), 7);
}

TEST(ThreadPool, ParallelForRethrowsFirstException) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  EXPECT_THROW(
      pool.parallelFor(100,
                       [&](i64 i) {
                         ran.fetch_add(1);
                         if (i == 3) throw std::runtime_error("boom");
                       }),
      std::runtime_error);
  // The failing index ran; unclaimed indices may have been abandoned.
  EXPECT_GE(ran.load(), 1);
  EXPECT_LE(ran.load(), 100);
  // The pool is still usable afterwards.
  std::atomic<i64> sum{0};
  pool.parallelFor(10, [&](i64 i) { sum += i; });
  EXPECT_EQ(sum.load(), 45);
}

TEST(ThreadPool, SubmitReturnsFutureWithResultAndException) {
  ThreadPool pool(2);
  auto fut = pool.submit([] { return 6 * 7; });
  EXPECT_EQ(fut.get(), 42);
  auto bad = pool.submit([]() -> int { throw std::logic_error("nope"); });
  EXPECT_THROW(bad.get(), std::logic_error);
}

TEST(ThreadPool, SizeClampsToAtLeastOneWorker) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1);
  std::atomic<i64> sum{0};
  pool.parallelFor(5, [&](i64 i) { sum += i; });
  EXPECT_EQ(sum.load(), 10);
}

TEST(ThreadPool, DestructorDrainsQueuedTasks) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 50; ++i)
      pool.enqueue([&done] { done.fetch_add(1, std::memory_order_relaxed); });
  }  // ~ThreadPool joins after the queue drains
  EXPECT_EQ(done.load(), 50);
}

}  // namespace
}  // namespace polypart::support
