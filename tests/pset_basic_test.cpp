// Unit tests for the polyhedral substrate: spaces, affine expressions,
// basic-set simplification, projection, feasibility, and map operations.

#include <gtest/gtest.h>

#include "pset/ast.h"
#include "pset/map.h"
#include "pset/set.h"
#include "support/rng.h"

namespace polypart::pset {
namespace {

Space set1d() { return Space::set({"N"}, {"i"}); }

TEST(Space, ColumnLayout) {
  Space s = Space::map({"N", "M"}, {"i", "j"}, {"a"});
  EXPECT_EQ(s.cols(), 6u);
  EXPECT_EQ(s.col(DimId::param(0)), 1u);
  EXPECT_EQ(s.col(DimId::param(1)), 2u);
  EXPECT_EQ(s.col(DimId::in(0)), 3u);
  EXPECT_EQ(s.col(DimId::in(1)), 4u);
  EXPECT_EQ(s.col(DimId::out(0)), 5u);
  EXPECT_EQ(s.dimAt(4), DimId::in(1));
  EXPECT_EQ(s.name(DimId::out(0)), "a");
}

TEST(LinExpr, Arithmetic) {
  Space s = set1d();
  LinExpr i = LinExpr::dim(s, DimId::in(0));
  LinExpr n = LinExpr::dim(s, DimId::param(0));
  LinExpr e = i * 2 + n - LinExpr::constant(s, 3);
  EXPECT_EQ(e.coef(s, DimId::in(0)), 2);
  EXPECT_EQ(e.coef(s, DimId::param(0)), 1);
  EXPECT_EQ(e.constantTerm(), -3);
  EXPECT_FALSE(e.isZero());
  EXPECT_TRUE((e - e).isZero());
}

TEST(BasicSet, ContainsPoint) {
  // { [i] : 0 <= i < N }
  Space s = set1d();
  BasicSet bs(s);
  bs.addBounds(DimId::in(0), LinExpr(s), LinExpr::dim(s, DimId::param(0)));
  i64 params[] = {10};
  i64 in0[] = {0}, in9[] = {9}, in10[] = {10}, inm1[] = {-1};
  EXPECT_TRUE(bs.containsPoint(params, in0, {}));
  EXPECT_TRUE(bs.containsPoint(params, in9, {}));
  EXPECT_FALSE(bs.containsPoint(params, in10, {}));
  EXPECT_FALSE(bs.containsPoint(params, inm1, {}));
}

TEST(BasicSet, SimplifyDetectsEmpty) {
  Space s = set1d();
  BasicSet bs(s);
  // i >= 5 and i <= 3  -> empty.
  LinExpr i = LinExpr::dim(s, DimId::in(0));
  bs.addGe(i - LinExpr::constant(s, 5));
  bs.addGe(LinExpr::constant(s, 3) - i);
  bs.simplify();
  EXPECT_TRUE(bs.markedEmpty());
}

TEST(BasicSet, SimplifyPromotesEquality) {
  Space s = set1d();
  BasicSet bs(s);
  LinExpr i = LinExpr::dim(s, DimId::in(0));
  bs.addGe(i - LinExpr::constant(s, 4));
  bs.addGe(LinExpr::constant(s, 4) - i);
  bs.simplify();
  EXPECT_FALSE(bs.markedEmpty());
  bool hasEq = false;
  for (const Constraint& c : bs.constraints()) hasEq |= c.isEquality;
  EXPECT_TRUE(hasEq);
}

TEST(BasicSet, GcdTightening) {
  // 2i >= 3  ==>  i >= 2 over the integers.
  Space s = Space::set({}, {"i"});
  BasicSet bs(s);
  LinExpr e = LinExpr::dim(s, DimId::in(0)) * 2;
  e.addConstant(-3);
  bs.addGe(std::move(e));
  bs.simplify();
  i64 one[] = {1}, two[] = {2};
  EXPECT_FALSE(bs.containsPoint({}, one, {}));
  EXPECT_TRUE(bs.containsPoint({}, two, {}));
}

TEST(BasicSet, EqualityWithoutIntegerSolutionIsEmpty) {
  // 2i == 5 has no integer solution.
  Space s = Space::set({}, {"i"});
  BasicSet bs(s);
  LinExpr e = LinExpr::dim(s, DimId::in(0)) * 2;
  e.addConstant(-5);
  bs.addEq(std::move(e));
  bs.simplify();
  EXPECT_TRUE(bs.markedEmpty());
}

TEST(BasicSet, ProjectOutExactUnitCoefficient) {
  // { [i, j] : j == i + 1 and 0 <= i < 10 }  project j  -> { [i] : 0 <= i < 10 }
  Space s = Space::set({}, {"i", "j"});
  BasicSet bs(s);
  LinExpr i = LinExpr::dim(s, DimId::in(0));
  LinExpr j = LinExpr::dim(s, DimId::in(1));
  bs.addEq(j - i - LinExpr::constant(s, 1));
  bs.addBounds(DimId::in(0), LinExpr(s), LinExpr::constant(s, 10));
  auto p = bs.projectOut(DimKind::In, 1, 1);
  EXPECT_TRUE(p.exact);
  EXPECT_EQ(p.set.space().numIn(), 1u);
  i64 in0[] = {0}, in9[] = {9}, in10[] = {10};
  EXPECT_TRUE(p.set.containsPoint({}, in0, {}));
  EXPECT_TRUE(p.set.containsPoint({}, in9, {}));
  EXPECT_FALSE(p.set.containsPoint({}, in10, {}));
}

TEST(BasicSet, ProjectOutFourierMotzkin) {
  // { [i, j] : 0 <= j <= 5 and i == 2j } -- eliminating j via the equality
  // with coefficient 2 on j ... use i - 2j >= 0 and 2j - i >= 0 forms.
  Space s = Space::set({}, {"i", "j"});
  BasicSet bs(s);
  LinExpr i = LinExpr::dim(s, DimId::in(0));
  LinExpr j = LinExpr::dim(s, DimId::in(1));
  bs.addGe(j);
  bs.addGe(LinExpr::constant(s, 5) - j);
  bs.addEq(i - j * 2);
  auto p = bs.projectOut(DimKind::In, 1, 1);
  // Integer-exact projection would be { i : 0 <= i <= 10 and i even }; we
  // over-approximate and must report that.
  EXPECT_FALSE(p.exact);
  i64 in0[] = {0}, in10[] = {10}, in11[] = {11};
  EXPECT_TRUE(p.set.containsPoint({}, in0, {}));
  EXPECT_TRUE(p.set.containsPoint({}, in10, {}));
  EXPECT_FALSE(p.set.containsPoint({}, in11, {}));
}

TEST(BasicSet, DuplicateConstraintsDedupBeforeProjection) {
  // Access-map construction routinely produces the same inequality many
  // times (one copy per load of the same row, plus GCD-scaled variants from
  // stride normalization).  simplify() must canonicalize and dedup them so
  // Fourier-Motzkin sees each constraint once — otherwise k duplicated
  // lower bounds times k duplicated uppers produce k^2 redundant rows per
  // eliminated column.  { [i, j] : 0 <= i < N and 0 <= j <= i }.
  Space s = Space::set({"N"}, {"i", "j"});
  auto build = [&](int copies, i64 scale) {
    BasicSet bs(s);
    LinExpr i = LinExpr::dim(s, DimId::in(0));
    LinExpr j = LinExpr::dim(s, DimId::in(1));
    LinExpr n = LinExpr::dim(s, DimId::param(0));
    for (int c = 0; c < copies; ++c) {
      // Odd copies are scaled by a common factor; GCD tightening must
      // normalize them back onto the base form before dedup.
      i64 f = (c % 2 == 0) ? 1 : scale;
      bs.addGe(i * f);
      bs.addGe((n - i - LinExpr::constant(s, 1)) * f);
      bs.addGe(j * f);
      bs.addGe((i - j) * f);
    }
    return bs;
  };

  BasicSet clean = build(1, 1);
  BasicSet fat = build(8, 3);

  // Direct dedup check: simplification collapses the 32 rows to the 4
  // distinct constraints.
  BasicSet deduped = fat;
  deduped.simplify();
  EXPECT_EQ(deduped.constraints().size(), 4u);

  // Projection of j behaves exactly as on the clean system: same exactness,
  // same constraint count (no duplicate-driven row blowup), same points.
  auto pc = clean.projectOut(DimKind::In, 1, 1);
  auto pf = fat.projectOut(DimKind::In, 1, 1);
  EXPECT_EQ(pf.exact, pc.exact);
  EXPECT_EQ(pf.set.constraints().size(), pc.set.constraints().size());
  i64 params[] = {10};
  for (i64 v = -2; v <= 12; ++v) {
    i64 in0[] = {v};
    EXPECT_EQ(pf.set.containsPoint(params, in0, {}),
              pc.set.containsPoint(params, in0, {}))
        << "projections disagree at i = " << v;
  }
}

TEST(BasicSet, FeasibilityDefinite) {
  Space s = set1d();
  BasicSet bs(s);
  bs.addBounds(DimId::in(0), LinExpr(s), LinExpr::dim(s, DimId::param(0)));
  // With N unconstrained there is some N making it non-empty.
  EXPECT_EQ(bs.feasibility(), BasicSet::Feas::NonEmpty);

  BasicSet e(s);
  LinExpr i = LinExpr::dim(s, DimId::in(0));
  e.addGe(i - LinExpr::constant(s, 2));
  e.addGe(LinExpr::constant(s, 1) - i);
  EXPECT_EQ(e.feasibility(), BasicSet::Feas::Empty);
}

TEST(Set, UnionAndEmptiness) {
  Space s = set1d();
  BasicSet a(s);
  a.addBounds(DimId::in(0), LinExpr(s), LinExpr::constant(s, 4));
  Set u(s);
  u.addPart(a);
  EXPECT_EQ(u.emptiness(), Tri::No);
  Set v = Set::empty(s);
  EXPECT_EQ(v.emptiness(), Tri::Yes);
  Set w = u.unionWith(v);
  EXPECT_EQ(w.parts().size(), 1u);
}

TEST(Set, SubtractSplitsInterval) {
  // { [i] : 0 <= i < 10 } \ { [i] : 3 <= i < 6 } keeps 0..2 and 6..9.
  Space s = Space::set({}, {"i"});
  BasicSet a(s), b(s);
  a.addBounds(DimId::in(0), LinExpr(s), LinExpr::constant(s, 10));
  b.addBounds(DimId::in(0), LinExpr::constant(s, 3), LinExpr::constant(s, 6));
  Set sa(s), sb(s);
  sa.addPart(a);
  sb.addPart(b);
  Set d = sa.subtract(sb);
  EXPECT_TRUE(d.exact());
  for (i64 i = -2; i < 12; ++i) {
    i64 pt[] = {i};
    const bool want = i >= 0 && i < 10 && !(i >= 3 && i < 6);
    EXPECT_EQ(d.containsPoint({}, pt), want) << "i=" << i;
  }
}

TEST(Set, SubtractDisjointAndCovering) {
  Space s = Space::set({}, {"i"});
  BasicSet a(s);
  a.addBounds(DimId::in(0), LinExpr(s), LinExpr::constant(s, 4));
  Set sa(s);
  sa.addPart(a);
  // Disjoint subtrahend: membership unchanged.
  BasicSet far(s);
  far.addBounds(DimId::in(0), LinExpr::constant(s, 100),
                LinExpr::constant(s, 200));
  Set sFar(s);
  sFar.addPart(far);
  Set d1 = sa.subtract(sFar);
  for (i64 i = 0; i < 4; ++i) {
    i64 pt[] = {i};
    EXPECT_TRUE(d1.containsPoint({}, pt)) << i;
  }
  // Covering subtrahend: definitely empty.
  BasicSet cover(s);
  cover.addBounds(DimId::in(0), LinExpr::constant(s, -1),
                  LinExpr::constant(s, 5));
  Set sCover(s);
  sCover.addPart(cover);
  EXPECT_EQ(sa.subtract(sCover).emptiness(), Tri::Yes);
  // Subtracting the empty set is the identity.
  Set d2 = sa.subtract(Set::empty(s));
  i64 p0[] = {0}, p4[] = {4};
  EXPECT_TRUE(d2.containsPoint({}, p0));
  EXPECT_FALSE(d2.containsPoint({}, p4));
}

TEST(Map, RangeUnderBoxOfStencilMap) {
  // { [i] -> [a] : i-1 <= a <= i+1 and 0 <= i < N } restricted to the box
  // i in [4, 8) with N = 100 touches exactly a in [3, 8].
  Space s = Space::map({"N"}, {"i"}, {"a"});
  Map m(s);
  BasicSet bs(s);
  LinExpr i = LinExpr::dim(s, DimId::in(0));
  LinExpr a = LinExpr::dim(s, DimId::out(0));
  bs.addGe(a - i + LinExpr::constant(s, 1));   // a >= i - 1
  bs.addGe(i - a + LinExpr::constant(s, 1));   // a <= i + 1
  bs.addBounds(DimId::in(0), LinExpr(s), LinExpr::dim(s, DimId::param(0)));
  m.addPart(bs);
  i64 params[] = {100};
  i64 lo[] = {4}, hi[] = {8};
  Set fp = m.rangeUnderBox(params, lo, hi);
  EXPECT_TRUE(fp.exact());
  for (i64 v = 0; v < 12; ++v) {
    i64 pt[] = {v};
    EXPECT_EQ(fp.containsPoint({}, pt), v >= 3 && v <= 8) << "a=" << v;
  }
  // An empty box has an empty footprint.
  i64 eLo[] = {5}, eHi[] = {5};
  EXPECT_NE(m.rangeUnderBox(params, eLo, eHi).emptiness(), Tri::No);
}

TEST(Map, RangeOfShiftMap) {
  // { [i] -> [a] : a == i + 3 and 0 <= i < 7 } has range { [a] : 3 <= a < 10 }.
  Space s = Space::map({}, {"i"}, {"a"});
  Map m(s);
  BasicSet bs(s);
  LinExpr i = LinExpr::dim(s, DimId::in(0));
  LinExpr a = LinExpr::dim(s, DimId::out(0));
  bs.addEq(a - i - LinExpr::constant(s, 3));
  bs.addBounds(DimId::in(0), LinExpr(s), LinExpr::constant(s, 7));
  m.addPart(bs);
  Set r = m.range();
  EXPECT_TRUE(r.exact());
  i64 a3[] = {3}, a9[] = {9}, a2[] = {2}, a10[] = {10};
  EXPECT_TRUE(r.containsPoint({}, a3));
  EXPECT_TRUE(r.containsPoint({}, a9));
  EXPECT_FALSE(r.containsPoint({}, a2));
  EXPECT_FALSE(r.containsPoint({}, a10));
}

TEST(Map, InjectiveIdentity) {
  Space s = Space::map({"N"}, {"i"}, {"a"});
  Map m(s);
  BasicSet bs(s);
  bs.addEq(LinExpr::dim(s, DimId::out(0)) - LinExpr::dim(s, DimId::in(0)));
  bs.addBounds(DimId::in(0), LinExpr(s), LinExpr::dim(s, DimId::param(0)));
  m.addPart(bs);
  BasicSet context(Space::set({"N"}, {}));
  EXPECT_EQ(m.isInjective(context), Tri::Yes);
}

TEST(Map, NonInjectiveConstantMap) {
  // { [i] -> [0] : 0 <= i < 4 } maps several inputs to one output.
  Space s = Space::map({}, {"i"}, {"a"});
  Map m(s);
  BasicSet bs(s);
  bs.addEq(LinExpr::dim(s, DimId::out(0)));
  bs.addBounds(DimId::in(0), LinExpr(s), LinExpr::constant(s, 4));
  m.addPart(bs);
  BasicSet context(Space::set({}, {}));
  EXPECT_EQ(m.isInjective(context), Tri::No);
}

TEST(Ast, ScanOneDim) {
  // { [i] : 2 <= i < N } with N = 6 -> single row [2, 5].
  Space s = set1d();
  BasicSet bs(s);
  bs.addBounds(DimId::in(0), LinExpr::constant(s, 2), LinExpr::dim(s, DimId::param(0)));
  ScanNest nest = buildScan(bs);
  ASSERT_EQ(nest.levels.size(), 1u);
  int rows = 0;
  i64 params[] = {6};
  scanRows(nest, params, [&](std::span<const i64> outer, i64 lo, i64 hi) {
    EXPECT_TRUE(outer.empty());
    EXPECT_EQ(lo, 2);
    EXPECT_EQ(hi, 5);
    ++rows;
  });
  EXPECT_EQ(rows, 1);
}

TEST(Ast, ScanTriangle) {
  // { [i, j] : 0 <= i < 4 and 0 <= j <= i }.
  Space s = Space::set({}, {"i", "j"});
  BasicSet bs(s);
  bs.addBounds(DimId::in(0), LinExpr(s), LinExpr::constant(s, 4));
  bs.addGe(LinExpr::dim(s, DimId::in(1)));
  bs.addGe(LinExpr::dim(s, DimId::in(0)) - LinExpr::dim(s, DimId::in(1)));
  ScanNest nest = buildScan(bs);
  std::vector<std::pair<i64, i64>> rows;
  scanRows(nest, {}, [&](std::span<const i64> outer, i64 lo, i64 hi) {
    ASSERT_EQ(outer.size(), 1u);
    rows.emplace_back(lo, hi);
  });
  ASSERT_EQ(rows.size(), 4u);
  for (i64 i = 0; i < 4; ++i) {
    EXPECT_EQ(rows[static_cast<std::size_t>(i)].first, 0);
    EXPECT_EQ(rows[static_cast<std::size_t>(i)].second, i);
  }
}

TEST(Ast, ScanEmptyGuard) {
  Space s = set1d();
  BasicSet bs(s);
  bs.addBounds(DimId::in(0), LinExpr(s), LinExpr::dim(s, DimId::param(0)));
  // Param-only constraint: N >= 100.
  LinExpr n = LinExpr::dim(s, DimId::param(0));
  bs.addGe(n - LinExpr::constant(s, 100));
  ScanNest nest = buildScan(bs);
  int rows = 0;
  i64 small[] = {6};
  scanRows(nest, small, [&](std::span<const i64>, i64, i64) { ++rows; });
  EXPECT_EQ(rows, 0);
  i64 big[] = {101};
  scanRows(nest, big, [&](std::span<const i64>, i64, i64) { ++rows; });
  EXPECT_EQ(rows, 1);
}

TEST(Ast, ScanMatchesContainsPointProperty) {
  // Random 2-D sets: scanning must enumerate exactly the contained points.
  Rng rng(1234);
  for (int iter = 0; iter < 50; ++iter) {
    Space s = Space::set({}, {"i", "j"});
    BasicSet bs(s);
    bs.addBounds(DimId::in(0), LinExpr::constant(s, -3), LinExpr::constant(s, 6));
    bs.addBounds(DimId::in(1), LinExpr::constant(s, -3), LinExpr::constant(s, 6));
    // Two random extra inequalities.
    for (int k = 0; k < 2; ++k) {
      LinExpr e(s);
      e.setCoef(s, DimId::in(0), rng.range(-2, 2));
      e.setCoef(s, DimId::in(1), rng.range(-2, 2));
      e.addConstant(rng.range(-4, 8));
      bs.addGe(std::move(e));
    }
    BasicSet check = bs;
    std::vector<std::pair<i64, i64>> points;
    ScanNest nest = buildScan(bs);
    scanRows(nest, {}, [&](std::span<const i64> outer, i64 lo, i64 hi) {
      for (i64 j = lo; j <= hi; ++j) points.emplace_back(outer[0], j);
    });
    std::size_t expected = 0;
    for (i64 i = -3; i < 6; ++i)
      for (i64 j = -3; j < 6; ++j) {
        i64 ins[] = {i, j};
        if (check.containsPoint({}, ins, {})) {
          ++expected;
          EXPECT_NE(std::find(points.begin(), points.end(), std::make_pair(i, j)),
                    points.end())
              << "missing point (" << i << ", " << j << ") in " << check.str();
        }
      }
    EXPECT_EQ(points.size(), expected) << check.str();
  }
}

}  // namespace
}  // namespace polypart::pset
