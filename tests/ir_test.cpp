// Unit tests for the kernel IR: builder, verifier, interpreter, cost model,
// and the partitioning transformation (paper Section 7).

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "ir/builder.h"
#include "ir/cost.h"
#include "ir/interp.h"
#include "ir/transform.h"
#include "ir/verify.h"

namespace polypart::ir {
namespace {

KernelPtr makeSaxpy() {
  KernelBuilder b("saxpy");
  auto n = b.scalar("n", Type::I64);
  auto a = b.scalar("a", Type::F64);
  auto x = b.array("x", Type::F64);
  auto y = b.array("y", Type::F64);
  auto i = b.let("i", b.globalId(Axis::X));
  b.iff(lt(i, n), [&] { b.store(y, i, a * b.load(x, i) + b.load(y, i)); });
  return b.build();
}

TEST(IrBuilder, SaxpyStructure) {
  KernelPtr k = makeSaxpy();
  EXPECT_EQ(k->name(), "saxpy");
  EXPECT_EQ(k->numParams(), 4u);
  EXPECT_EQ(k->arrayParamIndices(), (std::vector<std::size_t>{2, 3}));
  EXPECT_EQ(k->scalarParamIndices(), (std::vector<std::size_t>{0, 1}));
  std::string src = k->str();
  EXPECT_NE(src.find("__global__ void saxpy"), std::string::npos);
  EXPECT_NE(src.find("threadIdx.x"), std::string::npos);
}

TEST(IrInterp, SaxpyComputesCorrectly) {
  KernelPtr k = makeSaxpy();
  const i64 n = 1000;
  std::vector<double> x(n), y(n), expect(n);
  for (i64 i = 0; i < n; ++i) {
    x[static_cast<std::size_t>(i)] = static_cast<double>(i);
    y[static_cast<std::size_t>(i)] = 2.0 * static_cast<double>(i);
    expect[static_cast<std::size_t>(i)] = 3.0 * static_cast<double>(i) +
                                          2.0 * static_cast<double>(i);
  }
  ArgValue args[] = {
      ArgValue::ofInt(n), ArgValue::ofFloat(3.0),
      ArgValue::ofBuffer(x.data(), n), ArgValue::ofBuffer(y.data(), n)};
  // Grid overhang: 4 blocks of 256 threads cover 1024 > 1000 threads.
  execute(*k, LaunchConfig{{4, 1, 1}, {256, 1, 1}}, args);
  EXPECT_EQ(y, expect);
}

TEST(IrInterp, OutOfBoundsThrows) {
  KernelBuilder b("oob");
  auto x = b.array("x", Type::F64);
  b.store(x, b.globalId(Axis::X) + iconst(100), fconst(1.0));
  KernelPtr k = b.build();
  std::vector<double> buf(10);
  ArgValue args[] = {ArgValue::ofBuffer(buf.data(), 10)};
  EXPECT_THROW(execute(*k, LaunchConfig{{1, 1, 1}, {1, 1, 1}}, args), Error);
}

TEST(IrInterp, SequentialLoopAndAccumulator) {
  // sum[i] = sum of m[i*cols .. i*cols+cols)
  KernelBuilder b("rowsum");
  auto cols = b.scalar("cols", Type::I64);
  auto m = b.array("m", Type::F64);
  auto sum = b.array("sum", Type::F64);
  auto i = b.let("i", b.globalId(Axis::X));
  auto acc = b.let("acc", fconst(0.0));
  b.forLoop("j", iconst(0), cols, [&](ExprPtr j) {
    b.assign(acc, acc + b.load(m, i * cols + j));
  });
  b.store(sum, i, acc);
  KernelPtr k = b.build();

  const i64 rows = 8, ncols = 5;
  std::vector<double> mat(static_cast<std::size_t>(rows * ncols));
  std::iota(mat.begin(), mat.end(), 0.0);
  std::vector<double> out(static_cast<std::size_t>(rows), -1.0);
  ArgValue args[] = {ArgValue::ofInt(ncols), ArgValue::ofBuffer(mat.data(), rows * ncols),
                     ArgValue::ofBuffer(out.data(), rows)};
  execute(*k, LaunchConfig{{2, 1, 1}, {4, 1, 1}}, args);
  for (i64 r = 0; r < rows; ++r) {
    double want = 0;
    for (i64 c = 0; c < ncols; ++c) want += static_cast<double>(r * ncols + c);
    EXPECT_DOUBLE_EQ(out[static_cast<std::size_t>(r)], want);
  }
}

TEST(IrVerify, RejectsUndefinedLocal) {
  KernelBuilder b("bad");
  auto x = b.array("x", Type::F64);
  b.store(x, Expr::local("ghost", Type::I64), fconst(0.0));
  EXPECT_THROW(b.build(), Error);
}

TEST(IrVerify, RejectsTypeMismatchedStore) {
  KernelBuilder b("bad2");
  auto x = b.array("x", Type::F64);
  b.store(x, iconst(0), iconst(1));  // storing i64 into f64 array
  EXPECT_THROW(b.build(), Error);
}

TEST(IrVerify, RejectsDuplicateParams) {
  KernelBuilder b("bad3");
  b.scalar("n", Type::I64);
  auto x = b.array("n", Type::F64);
  b.store(x, iconst(0), fconst(0.0));
  EXPECT_THROW(b.build(), Error);
}

TEST(IrTransform, PartitionAppendsParamsAndRewrites) {
  KernelPtr k = makeSaxpy();
  KernelPtr p = partitionKernel(*k);
  EXPECT_EQ(p->name(), "saxpy__part");
  ASSERT_EQ(p->numParams(), 10u);
  EXPECT_EQ(p->param(4).name, "__part_min_x");
  EXPECT_EQ(p->param(9).name, "__part_max_z");
  std::string src = p->str();
  // blockIdx.x must now appear offset by the partition minimum.
  EXPECT_NE(src.find("arg4 + blockIdx.x"), std::string::npos);
}

TEST(IrTransform, PartitionedHalvesEqualWhole) {
  KernelPtr k = makeSaxpy();
  KernelPtr part = partitionKernel(*k);
  const i64 n = 2048;
  auto runFull = [&] {
    std::vector<double> x(n), y(n);
    for (i64 i = 0; i < n; ++i) {
      x[static_cast<std::size_t>(i)] = static_cast<double>(i) * 0.5;
      y[static_cast<std::size_t>(i)] = static_cast<double>(i);
    }
    ArgValue args[] = {ArgValue::ofInt(n), ArgValue::ofFloat(1.5),
                       ArgValue::ofBuffer(x.data(), n), ArgValue::ofBuffer(y.data(), n)};
    execute(*k, LaunchConfig{{8, 1, 1}, {256, 1, 1}}, args);
    return y;
  };
  auto runParts = [&] {
    std::vector<double> x(n), y(n);
    for (i64 i = 0; i < n; ++i) {
      x[static_cast<std::size_t>(i)] = static_cast<double>(i) * 0.5;
      y[static_cast<std::size_t>(i)] = static_cast<double>(i);
    }
    // Two partitions of the 8-block grid: [0,3) and [3,8).
    for (auto [lo, hi] : {std::pair<i64, i64>{0, 3}, {3, 8}}) {
      ArgValue args[] = {ArgValue::ofInt(n), ArgValue::ofFloat(1.5),
                         ArgValue::ofBuffer(x.data(), n), ArgValue::ofBuffer(y.data(), n),
                         // min x,y,z then max x,y,z (Eq. 10 grid config).
                         ArgValue::ofInt(lo), ArgValue::ofInt(0), ArgValue::ofInt(0),
                         ArgValue::ofInt(8), ArgValue::ofInt(1), ArgValue::ofInt(1)};
      execute(*part, LaunchConfig{{hi - lo, 1, 1}, {256, 1, 1}}, args);
    }
    return y;
  };
  EXPECT_EQ(runFull(), runParts());
}

TEST(IrCost, SaxpyCounts) {
  KernelPtr k = makeSaxpy();
  ArgValue args[] = {ArgValue::ofInt(1 << 20), ArgValue::ofFloat(2.0),
                     ArgValue::ofBuffer(reinterpret_cast<void*>(8), 1 << 20),
                     ArgValue::ofBuffer(reinterpret_cast<void*>(8), 1 << 20)};
  ThreadCost c = estimateThreadCost(*k, LaunchConfig{{4096, 1, 1}, {256, 1, 1}}, args);
  EXPECT_DOUBLE_EQ(c.loads, 2);
  EXPECT_DOUBLE_EQ(c.stores, 1);
  EXPECT_DOUBLE_EQ(c.flops, 2);  // one multiply, one add
}

TEST(IrCost, LoopTripCountsScaleCost) {
  KernelBuilder b("loopy");
  auto n = b.scalar("n", Type::I64);
  auto x = b.array("x", Type::F64);
  auto acc = b.let("acc", fconst(0.0));
  b.forLoop("j", iconst(0), n, [&](ExprPtr j) {
    b.assign(acc, acc + b.load(x, j));
  });
  b.store(x, iconst(0), acc);
  KernelPtr k = b.build();
  ArgValue args[] = {ArgValue::ofInt(100),
                     ArgValue::ofBuffer(reinterpret_cast<void*>(8), 100)};
  ThreadCost c = estimateThreadCost(*k, LaunchConfig{{1, 1, 1}, {1, 1, 1}}, args);
  EXPECT_DOUBLE_EQ(c.loads, 100);
  EXPECT_DOUBLE_EQ(c.flops, 100);
}

}  // namespace
}  // namespace polypart::ir
